package speedupstack

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"testing"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// goldenHash pins the SHA-256 of the full `experiments all` artifact set —
// every figure formatter plus the Figure 5 CSV — as regenerated on the
// default machine. The simulation engine is deterministic by contract, so
// this hash only moves when simulated behavior moves: any hot-path change
// that perturbs results (rather than just making them faster) fails loudly
// here. If a change intentionally alters simulated behavior, regenerate
// with `go test -run TestGoldenExperimentsAll -v .` and update the
// constant alongside a CHANGES.md note.
//
// Coverage note: the hash spans exactly the paper-reproduction sections
// `experiments all` prints (Figures 1 and 4-9 plus the validation table).
// On-demand sections — `experiments advise` and `experiments whatif` — are
// deliberately outside the artifact set, so growing them cannot move the
// hash; their behavior is pinned instead by the advise tests and the
// what-if prediction-error regression in internal/exp.
const goldenHash = "095d6b27e2582d8672b31613ce2078de527279cde9450a2b31d59b0d24733bff"

// TestGoldenExperimentsAll regenerates every section of `experiments all`
// through one shared engine (the cmd/experiments code path) and hashes the
// concatenated output.
func TestGoldenExperimentsAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation regeneration is not a -short test")
	}
	e := exp.NewEngine(sim.Default(), exp.WithWorkers(runtime.NumCPU()))
	ctx := context.Background()
	var buf bytes.Buffer

	curves, err := exp.Figure1(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(exp.FormatCurves(curves))

	rows, err := exp.Validation(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(exp.FormatValidation(rows))

	f4, err := exp.Figure4(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(exp.FormatFigure4(f4))

	bars, err := exp.Figure5(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(stack.Table(bars))
	if err := exp.WriteStacksCSV(&buf, bars); err != nil {
		t.Fatal(err)
	}

	f6, err := exp.Figure6(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(exp.FormatFigure6(f6))

	f7, err := exp.Figure7(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(exp.FormatFigure7(f7))

	f8, err := exp.Figure8(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(exp.FormatInterference(f8))

	f9, err := exp.Figure9(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(exp.FormatInterference(f9))

	sum := sha256.Sum256(buf.Bytes())
	got := hex.EncodeToString(sum[:])
	if got != goldenHash {
		t.Fatalf("experiments-all output hash drifted:\n  got  %s\n  want %s\n"+
			"simulated behavior changed; if intentional, update goldenHash", got, goldenHash)
	}
}

// TestZeroSteadyStateAllocs pins the allocation behavior of the pooled
// hot path: once a machine for a configuration exists, re-running a small
// registry workload allocates a small per-run constant (programs, spin
// detectors, result slices) and nothing per simulated op.
func TestZeroSteadyStateAllocs(t *testing.T) {
	bench, ok := workload.ByName("swaptions_parsec_small")
	if !ok {
		t.Fatal("swaptions_parsec_small not registered")
	}
	cfg := sim.Default().WithCores(4)
	cfg.Policy = bench.Spec.TunePolicy(cfg.Policy)
	run := func() sim.Result {
		progs, err := bench.Spec.Parallel(4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(cfg, progs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	warm := run() // populate the machine pool for cfg
	if warm.TotalOps == 0 {
		t.Fatal("no ops simulated")
	}
	allocs := testing.AllocsPerRun(3, func() { run() })
	t.Logf("allocs/run = %.0f over %d ops (%.6f allocs/op)",
		allocs, warm.TotalOps, allocs/float64(warm.TotalOps))

	// Zero per-op allocations means the total is a per-run constant
	// (programs, spin detectors, per-phase barriers, result slices):
	// quadrupling the simulated work must not move it. Quadrupling the
	// sweep count quadruples the op stream on the same machine
	// configuration with an identical synchronization structure.
	big := bench.Spec
	big.SweepsPerPhase *= 4
	big.Name = bench.Spec.Name + "-x4"
	runBig := func() sim.Result {
		progs, err := big.Parallel(4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(cfg, progs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	warmBig := runBig()
	if warmBig.TotalOps < 3*warm.TotalOps {
		t.Fatalf("x4 workload did not scale ops: %d vs %d", warmBig.TotalOps, warm.TotalOps)
	}
	allocsBig := testing.AllocsPerRun(3, func() { runBig() })
	t.Logf("x4 workload: allocs/run = %.0f over %d ops", allocsBig, warmBig.TotalOps)
	if allocsBig > allocs+0.25*allocs+16 {
		t.Fatalf("allocations scale with simulated ops (not a per-run constant): %.0f for %d ops vs %.0f for %d ops",
			allocsBig, warmBig.TotalOps, allocs, warm.TotalOps)
	}
}
