// Fleet benchmarks: cached-query throughput through the full HTTP surface
// at one and three in-process nodes. These are the committed-baseline twins
// of scripts/fleetbench.sh (which measures separate OS processes pinned to
// one CPU each); here all nodes share the test process, so the point is
// the relative per-request routing overhead, not multi-core scaling.
package speedupstack

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/sim"
)

// benchFleetQueries is the warmed working set: cheap cells only, so the
// warmup cost stays a small fraction of -benchtime=1x runs.
func benchFleetQueries() []string {
	var qs []string
	for _, bench := range []string{"blackscholes_parsec_small", "swaptions_parsec_small"} {
		for _, n := range []int{1, 2, 4} {
			qs = append(qs, fmt.Sprintf("/v1/stack?bench=%s&threads=%d", bench, n))
		}
	}
	return qs
}

// swappableHandler lets fleet nodes be installed after their listener
// addresses exist.
type swappableHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swappableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

// bootFleet starts n in-process fleet nodes and returns their base URLs.
func bootFleet(b *testing.B, n int) []string {
	b.Helper()
	swaps := make([]*swappableHandler, n)
	urls := make([]string, n)
	for i := range swaps {
		swaps[i] = &swappableHandler{}
		srv := httptest.NewServer(swaps[i])
		b.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	for i := range swaps {
		svc := service.New(service.Options{
			Engine: exp.NewEngine(sim.Default(), exp.WithWorkers(2)),
		})
		h := http.Handler(svc.Handler())
		if n > 1 {
			fh, err := fleet.Wrap(h, fleet.Options{Self: urls[i], Peers: urls})
			if err != nil {
				b.Fatal(err)
			}
			h = fh
		}
		swaps[i].mu.Lock()
		swaps[i].h = h
		swaps[i].mu.Unlock()
	}
	return urls
}

func benchFleetCachedQuery(b *testing.B, nodes int) {
	urls := bootFleet(b, nodes)
	queries := benchFleetQueries()
	client := &http.Client{}
	// Warm every (node, query) pair: the measured loop is the pure cached
	// path — engine memo on home nodes, peer-response cache elsewhere.
	for _, u := range urls {
		for _, q := range queries {
			if err := fleetGet(client, u+q); err != nil {
				b.Fatal(err)
			}
		}
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1))
			u := urls[i%len(urls)] + queries[i%len(queries)]
			if err := fleetGet(client, u); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func fleetGet(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return nil
}

// BenchmarkFleetCachedQuery1Node is the single-node cached-query baseline
// through real HTTP.
func BenchmarkFleetCachedQuery1Node(b *testing.B) {
	benchFleetCachedQuery(b, 1)
}

// BenchmarkFleetCachedQuery3Nodes is the same warmed working set spread
// over a three-node fleet; the delta against the 1-node baseline is the
// routing and peer-cache overhead.
func BenchmarkFleetCachedQuery3Nodes(b *testing.B) {
	benchFleetCachedQuery(b, 3)
}
