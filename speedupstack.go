// Package speedupstack reproduces "Speedup Stacks: Identifying Scaling
// Bottlenecks in Multi-Threaded Applications" (Eyerman, Du Bois, Eeckhout,
// ISPASS 2012) as a Go library.
//
// A speedup stack decomposes the gap between the ideal speedup N and the
// speedup a multi-threaded program actually achieves on an N-core machine
// into additive scaling delimiters: negative and positive last-level-cache
// interference, memory-subsystem interference, spinning, yielding and load
// imbalance. The library contains the paper's hardware cycle-accounting
// architecture (sampled auxiliary tag directories, open-row arrays, a
// Tian-style spin detector, OS yield bookkeeping), a deterministic
// cycle-level CMP simulator it runs on, 28 calibrated benchmark analogues,
// and the harness that regenerates every figure of the paper's evaluation.
//
// Quick start:
//
//	st, err := speedupstack.Measure("cholesky", 16)
//	if err != nil { ... }
//	fmt.Println(speedupstack.Render(st))
//
// Batch measurements go through MeasureAll, which deduplicates shared
// work (one sequential reference per benchmark) and runs the grid on all
// CPUs via the exp sweep engine:
//
//	results, err := speedupstack.MeasureAll(
//		speedupstack.Benchmarks(), []int{2, 4, 8, 16})
//
// Custom workloads are first-class: build a Workload (or parse one from
// JSON with ParseWorkload) and measure it with MeasureSpec/MeasureSpecAll —
// it flows through the same engine, dedup and caching as the registered
// analogues, keyed by the spec's canonical fingerprint:
//
//	w, err := speedupstack.ParseWorkload(jsonBytes)
//	st, err := speedupstack.MeasureSpec(w, 16)
package speedupstack

import (
	"context"
	"io"
	"runtime"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// Stack is the speedup stack of one measured run: the estimate produced by
// the accounting hardware plus the measured actual speedup.
type Stack = core.Stack

// Components are the cycle-valued stack components.
type Components = core.Components

// Result couples a stack with the benchmark identity it came from.
type Result struct {
	Benchmark string
	Threads   int
	Stack     Stack
}

// Benchmarks lists the registered benchmark analogues (name_suite form).
func Benchmarks() []string { return workload.Names() }

// Workload is a behavioural workload description — the serializable
// bring-your-own-benchmark input. Construct one in Go or parse it from JSON
// with ParseWorkload; its methods carry the contract: Validate (actionable
// consistency checks), Canonical (inert fields zeroed) and Fingerprint (the
// stable, name-independent identity every cache layer keys on).
type Workload = workload.Spec

// WorkloadStage describes one pipeline stage of a Workload.
type WorkloadStage = workload.StageSpec

// WorkloadKind selects a Workload's structural family.
type WorkloadKind = workload.Kind

// The workload families: barrier-phased data-parallel, lock-dispensed
// task-queue, and queue-connected pipeline.
const (
	WorkloadDataParallel = workload.KindDataParallel
	WorkloadTaskQueue    = workload.KindTaskQueue
	WorkloadPipeline     = workload.KindPipeline
)

// WorkloadFingerprint is the canonical identity of a Workload: equal
// fingerprints mean behaviourally identical workloads, whatever their names.
type WorkloadFingerprint = workload.Fingerprint

// ParseWorkload decodes, validates and canonicalizes a JSON workload spec —
// the same format the speedup-stack CLI accepts via -spec and the speedupd
// service accepts inline. Unknown fields are errors.
func ParseWorkload(data []byte) (Workload, error) { return workload.ParseSpec(data) }

// ValidateWorkload checks a workload for consistency without running
// anything; the error names the offending field and the accepted range.
func ValidateWorkload(w Workload) error { return w.Validate() }

// Measure runs the named benchmark analogue with the given thread count on
// the paper's default 16-core-class machine (threads = cores), plus its
// single-threaded reference, and returns the speedup stack with the actual
// speedup attached.
func Measure(benchmark string, threads int) (Result, error) {
	b, ok := workload.ByName(benchmark)
	if !ok {
		return Result{}, workload.UnknownBenchmarkError(benchmark)
	}
	r := exp.NewRunner(sim.Default())
	out, err := r.Run(b, threads)
	if err != nil {
		return Result{}, err
	}
	return Result{Benchmark: b.FullName(), Threads: threads, Stack: out.Stack}, nil
}

// MeasureFast is Measure in sampled fast mode (sim.ModeFast): only a
// deterministic 1-in-2^shift subset of LLC sets runs the detailed cache and
// memory model and the rest is extrapolated, cutting wall-clock by >3x on
// the full machine while keeping every stack component within the
// documented sim.FastErrorBounds of the exact-mode result. Fast mode is
// deterministic for a fixed (benchmark, threads) — just not byte-identical
// to Measure. Use it for interactive exploration and wide sweeps; use
// Measure when results must be reproducible against the golden hashes.
func MeasureFast(benchmark string, threads int) (Result, error) {
	b, ok := workload.ByName(benchmark)
	if !ok {
		return Result{}, workload.UnknownBenchmarkError(benchmark)
	}
	r := exp.NewRunner(sim.Default().WithMode(sim.ModeFast))
	out, err := r.Run(b, threads)
	if err != nil {
		return Result{}, err
	}
	return Result{Benchmark: b.FullName(), Threads: threads, Stack: out.Stack}, nil
}

// MeasureSpecFast is MeasureSpec in sampled fast mode — the custom-workload
// counterpart of MeasureFast, with the same accuracy contract.
func MeasureSpecFast(w Workload, threads int) (Result, error) {
	r := exp.NewRunner(sim.Default().WithMode(sim.ModeFast))
	out, err := r.Run(workload.Benchmark{Spec: w}, threads)
	if err != nil {
		return Result{}, err
	}
	return Result{Benchmark: out.Bench.FullName(), Threads: threads, Stack: out.Stack}, nil
}

// MeasureSpec is Measure for a custom workload: it runs w (which need not —
// and usually does not — exist in the registry) with the given thread count
// on the default machine and returns its speedup stack. A spec identical to
// a registered analogue produces the identical stack, and through MeasureAll
// and the speedupd service would share the identical cached simulation.
func MeasureSpec(w Workload, threads int) (Result, error) {
	r := exp.NewRunner(sim.Default())
	out, err := r.Run(workload.Benchmark{Spec: w}, threads)
	if err != nil {
		return Result{}, err
	}
	return Result{Benchmark: out.Bench.FullName(), Threads: threads, Stack: out.Stack}, nil
}

// MeasureSpecAll measures every (workload, thread-count) combination of the
// cross product, exactly like MeasureAll does for registered benchmarks:
// one engine, shared sequential references, fingerprint-keyed dedup (two
// identical specs under different names cost one simulation), results in
// declared order.
func MeasureSpecAll(ws []Workload, threads []int) ([]Result, error) {
	return MeasureSpecAllContext(context.Background(), ws, threads)
}

// MeasureSpecAllContext is MeasureSpecAll with cancellation.
func MeasureSpecAllContext(ctx context.Context, ws []Workload, threads []int) ([]Result, error) {
	cells := make([]exp.Cell, 0, len(ws)*len(threads))
	for i := range ws {
		for _, n := range threads {
			cells = append(cells, exp.Cell{Spec: &ws[i], Threads: n})
		}
	}
	return measureCells(ctx, cells)
}

// MeasureAll measures every (benchmark, thread-count) combination of the
// cross product on the paper's default machine, deduplicating shared work
// (one sequential reference per benchmark) and fanning the simulations out
// over all CPUs. Results come back in declared order: benchmark-major,
// then by thread count. It is the batch counterpart of Measure.
func MeasureAll(benchmarks []string, threads []int) ([]Result, error) {
	return MeasureAllContext(context.Background(), benchmarks, threads)
}

// MeasureAllContext is MeasureAll with cancellation: canceling ctx aborts
// the remaining simulations promptly.
func MeasureAllContext(ctx context.Context, benchmarks []string, threads []int) ([]Result, error) {
	cells := make([]exp.Cell, 0, len(benchmarks)*len(threads))
	for _, b := range benchmarks {
		for _, n := range threads {
			cells = append(cells, exp.Cell{Bench: b, Threads: n})
		}
	}
	return measureCells(ctx, cells)
}

// measureCells sweeps the cells on a fresh all-CPU engine against the
// default machine — the shared back end of MeasureAll and MeasureSpecAll.
func measureCells(ctx context.Context, cells []exp.Cell) ([]Result, error) {
	e := exp.NewEngine(sim.Default(), exp.WithWorkers(runtime.NumCPU()))
	outs, err := e.Sweep(ctx, cells)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(outs))
	for i, out := range outs {
		results[i] = Result{
			Benchmark: out.Bench.FullName(),
			Threads:   out.Threads,
			Stack:     out.Stack,
		}
	}
	return results, nil
}

// StackRow is one speedup stack in tabular wire form: the JSON/CSV row the
// library encoders and the speedupd service emit (per-component values next
// to the actual and estimated speedups). The client package decodes service
// responses into it.
type StackRow = stack.ReportRow

// TimeSeriesReport is the wire form of a time-resolved stack: run metadata,
// the aggregate exact-cycle decomposition, and one entry per interval.
type TimeSeriesReport = stack.TimeSeriesReport

// TimeSeries is the time-resolved form of one speedup stack: the aggregate
// decomposition plus per-interval component breakdowns whose integer-cycle
// values sum exactly to the aggregate. Produce one with MeasureIntervals or
// MeasureSpecIntervals; render it with EncodeTimeSeries or
// RenderTimelineSVG.
type TimeSeries = stack.TimeSeries

// TimeSeriesInterval is one time slice of a TimeSeries.
type TimeSeriesInterval = stack.Interval

// IntervalComponents are the exact integer-cycle stack components of one
// TimeSeries interval (or of its aggregate).
type IntervalComponents = core.IntComponents

// MaxIntervals bounds the interval count of a time-resolved measurement.
const MaxIntervals = exp.MaxIntervals

// MeasureIntervals is Measure with time resolution: it runs the named
// benchmark analogue at the given thread count, divides the run into
// intervals equal slices of its committed trace operations, and returns the
// per-interval speedup-stack decomposition next to the aggregate. The
// aggregate stack (and its sequential reference) is shared with a plain
// Measure of the same cell through the engine memo; interval accounting
// itself never perturbs results (the simulator only snapshots counters).
func MeasureIntervals(benchmark string, threads, intervals int) (TimeSeries, error) {
	return measureIntervals(exp.Cell{Bench: benchmark, Threads: threads}, intervals)
}

// MeasureSpecIntervals is MeasureIntervals for a custom workload: the same
// time-resolved measurement for a spec that need not be registered, keyed —
// like every other cache layer — by the spec's canonical fingerprint.
func MeasureSpecIntervals(w Workload, threads, intervals int) (TimeSeries, error) {
	return measureIntervals(exp.Cell{Spec: &w, Threads: threads}, intervals)
}

// measureIntervals runs one time-resolved cell on a fresh default-machine
// engine — the shared back end of MeasureIntervals and MeasureSpecIntervals.
func measureIntervals(cell exp.Cell, intervals int) (TimeSeries, error) {
	e := exp.NewEngine(sim.Default())
	out, err := e.MeasureIntervals(context.Background(), exp.Request{Cell: cell}, intervals)
	if err != nil {
		return TimeSeries{}, err
	}
	return out.Series, nil
}

// EncodeTimeSeries writes a time-resolved stack to w in the requested
// format: FormatText is a fixed-width interval table, FormatJSON one report
// object (metadata, aggregate, exact per-interval cycles), FormatCSV one
// record per interval plus a total record, and FormatSVG a standalone
// stacked-timeline chart.
func EncodeTimeSeries(w io.Writer, f Format, ts TimeSeries) error {
	return stack.EncodeTimeSeries(w, f, ts)
}

// RenderTimelineSVG draws a time-resolved stack as a standalone SVG stacked
// timeline: committed ops on the x axis, and per interval the fraction of
// thread-cycle capacity lost to each scaling delimiter.
func RenderTimelineSVG(ts TimeSeries) string {
	return stack.TimelineSVG(ts)
}

// Render draws a result as an ASCII speedup stack with a legend.
func Render(r Result) string {
	return stack.Render([]stack.Bar{{Label: r.Benchmark, Stack: r.Stack}}, 64)
}

// Format selects a report encoding for Encode. The speedup-stack CLI
// (-format) and the speedupd HTTP service (?format=) understand the same
// names.
type Format = stack.Format

// The supported report formats.
const (
	FormatText = stack.FormatText
	FormatJSON = stack.FormatJSON
	FormatCSV  = stack.FormatCSV
	FormatSVG  = stack.FormatSVG
)

// Formats lists the supported report formats.
func Formats() []Format { return stack.Formats() }

// ParseFormat resolves a format name case-insensitively.
func ParseFormat(s string) (Format, error) { return stack.ParseFormat(s) }

// Encode writes the results to w in the requested format: FormatText is
// the ASCII rendering plus the numeric table, FormatJSON an indented JSON
// array, FormatCSV a header plus one record per result, and FormatSVG a
// standalone SVG chart.
func Encode(w io.Writer, f Format, rs ...Result) error {
	return stack.Encode(w, f, bars(rs))
}

// RenderSVG draws the results as a standalone SVG speedup-stack chart.
func RenderSVG(rs ...Result) string {
	return stack.SVG(bars(rs))
}

func bars(rs []Result) []stack.Bar {
	out := make([]stack.Bar, len(rs))
	for i, r := range rs {
		out[i] = stack.Bar{Label: r.Benchmark, Stack: r.Stack}
	}
	return out
}

// Table renders a numeric component table for one or more results.
func Table(rs ...Result) string {
	return stack.Table(bars(rs))
}

// TopBottlenecks names the largest scaling delimiters of a result, largest
// first, using the paper's component vocabulary (cache, memory, spinning,
// yielding, imbalance).
func TopBottlenecks(r Result, k int) []string {
	return stack.TopComponents(r.Stack, k)
}

// HardwareCost returns the per-core byte cost of the accounting hardware
// with the paper's geometry (≈1.1 KB per core, Section 4.7).
func HardwareCost() core.HardwareBudget {
	return core.Cost(core.PaperCostParams())
}
