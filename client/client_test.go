package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	speedupstack "repro"
	"repro/internal/exp"
	"repro/internal/service"
	"repro/internal/sim"
)

const testBench = "blackscholes_parsec_small"

// newTestClient serves a real service over a loopback listener, so the
// client is exercised through the full HTTP stack.
func newTestClient(t *testing.T) *Client {
	t.Helper()
	e := exp.NewEngine(sim.Default(), exp.WithWorkers(2))
	srv := httptest.NewServer(service.New(service.Options{Engine: e}).Handler())
	t.Cleanup(srv.Close)
	return New(srv.URL)
}

func TestClientStackAndBenchmarks(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	names, err := c.Benchmarks(ctx)
	if err != nil {
		t.Fatalf("benchmarks: %v", err)
	}
	if len(names) < 20 {
		t.Errorf("only %d benchmarks", len(names))
	}

	row, err := c.Stack(ctx, testBench, 2, 0)
	if err != nil {
		t.Fatalf("stack: %v", err)
	}
	if row.Benchmark != testBench || row.Threads != 2 || row.Actual <= 0 {
		t.Errorf("unexpected row: %+v", row)
	}

	rep, err := c.StackIntervals(ctx, testBench, 2, 0, 4)
	if err != nil {
		t.Fatalf("intervals: %v", err)
	}
	if rep.Benchmark != testBench || len(rep.Intervals) == 0 {
		t.Errorf("unexpected report: %+v", rep)
	}

	rows, err := c.Sweep(ctx, []SweepCell{
		{Bench: testBench, Threads: 2},
		{Bench: "swaptions", Threads: 2},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(rows) != 2 || rows[1].Benchmark != "swaptions_parsec_medium" {
		t.Errorf("unexpected sweep rows: %+v", rows)
	}
}

func TestClientAnalyzeAndValidate(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	spec := speedupstack.Workload{
		Name: "client-kernel", Kind: speedupstack.WorkloadDataParallel,
		ArrayBytes: 524288, SweepsPerPhase: 1, Phases: 1,
		InstrPerAccess: 2500, StoreFrac: 0.1, Seed: 7,
	}
	row, err := c.Analyze(ctx, spec, 2, 0)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if row.Benchmark != "client-kernel" || row.Actual <= 0 {
		t.Errorf("unexpected row: %+v", row)
	}

	v, err := c.Validate(ctx, []byte(`{"name":"x","kind":"data_parallel","array_bytes":524288,"sweeps_per_phase":1,"phases":1}`))
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !v.Valid || len(v.Fingerprint) != 64 || v.Canonical == nil {
		t.Errorf("unexpected validate result: %+v", v)
	}
	v, err = c.Validate(ctx, []byte(`{"name":"x","kind":"data_parallel"}`))
	if err != nil {
		t.Fatalf("validate invalid spec: %v", err)
	}
	if v.Valid || !strings.Contains(v.Error, "array_bytes") {
		t.Errorf("invalid spec not reported: %+v", v)
	}
}

func TestClientAdvise(t *testing.T) {
	c := newTestClient(t)
	a, err := c.Advise(context.Background(), testBench, 4)
	if err != nil {
		t.Fatalf("advise: %v", err)
	}
	if a.Benchmark != testBench || a.MaxThreads != 4 || len(a.Points) != 3 || a.Class == "" {
		t.Errorf("unexpected advice: %+v", a)
	}

	// The Raw escape hatch serves the negotiated text report.
	body, ct, err := c.Raw(context.Background(), "/v1/advise",
		url.Values{"bench": {testBench}, "max_threads": {"4"}, "format": {"text"}}, "")
	if err != nil {
		t.Fatalf("raw advise: %v", err)
	}
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(string(body), "amdahl") {
		t.Errorf("text advise: content type %q, body %.60q", ct, string(body))
	}
}

func TestClientAPIError(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()

	_, err := c.Stack(ctx, "choleski", 2, 0)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error is %T (%v), want *APIError", err, err)
	}
	if ae.StatusCode != 404 || ae.Code != "unknown_benchmark" || ae.Suggestion != "cholesky" {
		t.Errorf("unexpected APIError: %+v", ae)
	}
	if !strings.Contains(ae.Error(), "unknown_benchmark") {
		t.Errorf("Error() = %q", ae.Error())
	}

	_, err = c.Advise(ctx, testBench, 2)
	if !errors.As(err, &ae) || ae.StatusCode != 400 || ae.Code != "invalid_argument" {
		t.Errorf("bad max_threads: %v", err)
	}

	// A plain-text error body still decodes into an APIError.
	_, _, err = c.Raw(ctx, "/v1/stack",
		url.Values{"bench": {testBench}, "threads": {"zero"}, "format": {"text"}}, "")
	if !errors.As(err, &ae) {
		t.Fatalf("text error is %T, want *APIError", err)
	}
	if ae.Code != "" || !strings.Contains(ae.Message, "threads") {
		t.Errorf("text error: %+v", ae)
	}
}

// TestClientMode pins the client's fidelity knob: Mode="fast" rides every
// simulating call as ?mode=fast, the server counts the runs as sampled, and
// a bogus mode fails with the uniform invalid_argument envelope.
func TestClientMode(t *testing.T) {
	e := exp.NewEngine(sim.Default(), exp.WithWorkers(2))
	srv := httptest.NewServer(service.New(service.Options{Engine: e}).Handler())
	t.Cleanup(srv.Close)
	c := New(srv.URL)
	c.Mode = "fast"
	ctx := context.Background()

	row, err := c.Stack(ctx, testBench, 2, 0)
	if err != nil {
		t.Fatalf("fast stack: %v", err)
	}
	if row.Benchmark != testBench || row.Actual <= 0 {
		t.Errorf("unexpected row: %+v", row)
	}
	if st := e.Stats(); st.FastCellRuns != 1 || st.CellRuns != 1 {
		t.Fatalf("fast run not counted: %+v", st)
	}

	if _, err := c.Sweep(ctx, []SweepCell{{Bench: testBench, Threads: 4}}); err != nil {
		t.Fatalf("fast sweep: %v", err)
	}
	if st := e.Stats(); st.FastCellRuns != st.CellRuns {
		t.Fatalf("sweep cell not fast: %+v", st)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(m, "speedupd_sim_cell_runs_fast_total") ||
		!strings.Contains(m, "speedupd_sim_cell_runs_exact_total") {
		t.Errorf("metrics missing fidelity split:\n%s", m)
	}

	c.Mode = "bogus"
	_, err = c.Stack(ctx, testBench, 2, 0)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "invalid_argument" {
		t.Fatalf("bogus mode error = %v", err)
	}
}
