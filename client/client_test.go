package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	speedupstack "repro"
	"repro/internal/exp"
	"repro/internal/service"
	"repro/internal/sim"
)

const testBench = "blackscholes_parsec_small"

// newTestClient serves a real service over a loopback listener, so the
// client is exercised through the full HTTP stack.
func newTestClient(t *testing.T) *Client {
	t.Helper()
	e := exp.NewEngine(sim.Default(), exp.WithWorkers(2))
	srv := httptest.NewServer(service.New(service.Options{Engine: e}).Handler())
	t.Cleanup(srv.Close)
	return New(srv.URL)
}

func TestClientStackAndBenchmarks(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	names, err := c.Benchmarks(ctx)
	if err != nil {
		t.Fatalf("benchmarks: %v", err)
	}
	if len(names) < 20 {
		t.Errorf("only %d benchmarks", len(names))
	}

	row, err := c.Stack(ctx, testBench, 2, 0)
	if err != nil {
		t.Fatalf("stack: %v", err)
	}
	if row.Benchmark != testBench || row.Threads != 2 || row.Actual <= 0 {
		t.Errorf("unexpected row: %+v", row)
	}

	rep, err := c.StackIntervals(ctx, testBench, 2, 0, 4)
	if err != nil {
		t.Fatalf("intervals: %v", err)
	}
	if rep.Benchmark != testBench || len(rep.Intervals) == 0 {
		t.Errorf("unexpected report: %+v", rep)
	}

	rows, err := c.Sweep(ctx, []SweepCell{
		{Bench: testBench, Threads: 2},
		{Bench: "swaptions", Threads: 2},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(rows) != 2 || rows[1].Benchmark != "swaptions_parsec_medium" {
		t.Errorf("unexpected sweep rows: %+v", rows)
	}
}

func TestClientAnalyzeAndValidate(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	spec := speedupstack.Workload{
		Name: "client-kernel", Kind: speedupstack.WorkloadDataParallel,
		ArrayBytes: 524288, SweepsPerPhase: 1, Phases: 1,
		InstrPerAccess: 2500, StoreFrac: 0.1, Seed: 7,
	}
	row, err := c.Analyze(ctx, spec, 2, 0)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if row.Benchmark != "client-kernel" || row.Actual <= 0 {
		t.Errorf("unexpected row: %+v", row)
	}

	v, err := c.Validate(ctx, []byte(`{"name":"x","kind":"data_parallel","array_bytes":524288,"sweeps_per_phase":1,"phases":1}`))
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !v.Valid || len(v.Fingerprint) != 64 || v.Canonical == nil {
		t.Errorf("unexpected validate result: %+v", v)
	}
	v, err = c.Validate(ctx, []byte(`{"name":"x","kind":"data_parallel"}`))
	if err != nil {
		t.Fatalf("validate invalid spec: %v", err)
	}
	if v.Valid || !strings.Contains(v.Error, "array_bytes") {
		t.Errorf("invalid spec not reported: %+v", v)
	}
}

func TestClientAdvise(t *testing.T) {
	c := newTestClient(t)
	a, err := c.Advise(context.Background(), testBench, 4)
	if err != nil {
		t.Fatalf("advise: %v", err)
	}
	if a.Benchmark != testBench || a.MaxThreads != 4 || len(a.Points) != 3 || a.Class == "" {
		t.Errorf("unexpected advice: %+v", a)
	}

	// The Raw escape hatch serves the negotiated text report.
	body, ct, err := c.Raw(context.Background(), "/v1/advise",
		url.Values{"bench": {testBench}, "max_threads": {"4"}, "format": {"text"}}, "")
	if err != nil {
		t.Fatalf("raw advise: %v", err)
	}
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(string(body), "amdahl") {
		t.Errorf("text advise: content type %q, body %.60q", ct, string(body))
	}
}

func TestClientAPIError(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()

	_, err := c.Stack(ctx, "choleski", 2, 0)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error is %T (%v), want *APIError", err, err)
	}
	if ae.StatusCode != 404 || ae.Code != "unknown_benchmark" || ae.Suggestion != "cholesky" {
		t.Errorf("unexpected APIError: %+v", ae)
	}
	if !strings.Contains(ae.Error(), "unknown_benchmark") {
		t.Errorf("Error() = %q", ae.Error())
	}

	_, err = c.Advise(ctx, testBench, 2)
	if !errors.As(err, &ae) || ae.StatusCode != 400 || ae.Code != "invalid_argument" {
		t.Errorf("bad max_threads: %v", err)
	}

	// A plain-text error body still decodes into an APIError.
	_, _, err = c.Raw(ctx, "/v1/stack",
		url.Values{"bench": {testBench}, "threads": {"zero"}, "format": {"text"}}, "")
	if !errors.As(err, &ae) {
		t.Fatalf("text error is %T, want *APIError", err)
	}
	if ae.Code != "" || !strings.Contains(ae.Message, "threads") {
		t.Errorf("text error: %+v", ae)
	}
}

// TestClientMode pins the client's fidelity knob: Mode="fast" rides every
// simulating call as ?mode=fast, the server counts the runs as sampled, and
// a bogus mode fails with the uniform invalid_argument envelope.
func TestClientMode(t *testing.T) {
	e := exp.NewEngine(sim.Default(), exp.WithWorkers(2))
	srv := httptest.NewServer(service.New(service.Options{Engine: e}).Handler())
	t.Cleanup(srv.Close)
	c := New(srv.URL)
	c.Mode = "fast"
	ctx := context.Background()

	row, err := c.Stack(ctx, testBench, 2, 0)
	if err != nil {
		t.Fatalf("fast stack: %v", err)
	}
	if row.Benchmark != testBench || row.Actual <= 0 {
		t.Errorf("unexpected row: %+v", row)
	}
	if st := e.Stats(); st.FastCellRuns != 1 || st.CellRuns != 1 {
		t.Fatalf("fast run not counted: %+v", st)
	}

	if _, err := c.Sweep(ctx, []SweepCell{{Bench: testBench, Threads: 4}}); err != nil {
		t.Fatalf("fast sweep: %v", err)
	}
	if st := e.Stats(); st.FastCellRuns != st.CellRuns {
		t.Fatalf("sweep cell not fast: %+v", st)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(m, "speedupd_sim_cell_runs_fast_total") ||
		!strings.Contains(m, "speedupd_sim_cell_runs_exact_total") {
		t.Errorf("metrics missing fidelity split:\n%s", m)
	}

	c.Mode = "bogus"
	_, err = c.Stack(ctx, testBench, 2, 0)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "invalid_argument" {
		t.Fatalf("bogus mode error = %v", err)
	}
}

// flakyServer answers fail429 requests with the service's shed envelope
// (Retry-After: 0 keeps the test fast), then succeeds.
func flakyServer(t *testing.T, fail int, status int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int64(fail) {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			io.WriteString(w, `{"error":{"code":"overloaded","message":"shed"}}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"benchmarks":["a"]}`)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

// TestClientRetries pins the retry contract: with Retries set, a GET rides
// out 429s and 503s and succeeds on a later attempt; with the zero default
// the first 429 is surfaced as *APIError.
func TestClientRetries(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		srv, hits := flakyServer(t, 2, status)
		c := New(srv.URL)
		c.Retries = 3
		names, err := c.Benchmarks(context.Background())
		if err != nil {
			t.Fatalf("status %d with retries: %v", status, err)
		}
		if len(names) != 1 || hits.Load() != 3 {
			t.Errorf("status %d: names %v after %d attempts, want 1 name after 3", status, names, hits.Load())
		}
	}

	// Default: no retrying.
	srv, hits := flakyServer(t, 1, http.StatusTooManyRequests)
	c := New(srv.URL)
	_, err := c.Benchmarks(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != 429 || ae.Code != "overloaded" {
		t.Fatalf("zero-retries error = %v, want 429 overloaded APIError", err)
	}
	if hits.Load() != 1 {
		t.Errorf("%d attempts without Retries, want 1", hits.Load())
	}
}

// TestClientRetriesExhausted pins that a server that never recovers
// surfaces the final shed response, after exactly 1+Retries attempts.
func TestClientRetriesExhausted(t *testing.T) {
	srv, hits := flakyServer(t, 100, http.StatusTooManyRequests)
	c := New(srv.URL)
	c.Retries = 2
	_, err := c.Benchmarks(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != 429 {
		t.Fatalf("exhausted retries error = %v, want 429 APIError", err)
	}
	if hits.Load() != 3 {
		t.Errorf("%d attempts with Retries=2, want 3", hits.Load())
	}
}

// TestClientNoRetryOnPost pins that POSTs are never retried, even with
// Retries set — re-sending could simulate a sweep twice.
func TestClientNoRetryOnPost(t *testing.T) {
	srv, hits := flakyServer(t, 100, http.StatusTooManyRequests)
	c := New(srv.URL)
	c.Retries = 3
	_, err := c.Sweep(context.Background(), []SweepCell{{Bench: testBench, Threads: 2}})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != 429 {
		t.Fatalf("POST error = %v, want 429 APIError", err)
	}
	if hits.Load() != 1 {
		t.Errorf("POST issued %d times with Retries=3, want 1", hits.Load())
	}
}

// TestClientRetryHonorsContext pins that cancellation interrupts the
// backoff wait instead of letting the retry fire.
func TestClientRetryHonorsContext(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	t.Cleanup(srv.Close)
	c := New(srv.URL)
	c.Retries = 1
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Benchmarks(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context deadline", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v — backoff not interruptible", d)
	}
	if hits.Load() != 1 {
		t.Errorf("%d attempts, want 1 (retry must not fire after cancel)", hits.Load())
	}
}

// TestClientAnalyzeTrace drives the trace-upload wrapper through the full
// HTTP stack: record in-process, upload, replay at the recorded thread
// count, and get the uniform envelope back for a corrupt body.
func TestClientAnalyzeTrace(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	var tr bytes.Buffer
	if err := speedupstack.RecordTrace(&tr, testBench, 2); err != nil {
		t.Fatalf("record: %v", err)
	}
	row, err := c.AnalyzeTrace(ctx, bytes.NewReader(tr.Bytes()), 0)
	if err != nil {
		t.Fatalf("analyze trace: %v", err)
	}
	if row.Benchmark != testBench || row.Threads != 2 || row.Actual <= 0 {
		t.Errorf("unexpected row: %+v", row)
	}

	_, err = c.AnalyzeTrace(ctx, strings.NewReader("not a trace"), 0)
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != 400 || ae.Code != "invalid_argument" ||
		!strings.Contains(ae.Message, "bad trace") {
		t.Errorf("corrupt trace error = %v", err)
	}
}
