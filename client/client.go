// Package client is the Go client for the speedupd HTTP service: typed
// wrappers over every /v1 endpoint, sharing the root package's wire types
// (speedupstack.StackRow, speedupstack.Advice, ...) so a program can move
// between the in-process library and the service without translating.
//
// Setting Client.Mode to "fast" asks the server for sampled fast-mode
// simulation on every simulating call — several times faster, deterministic,
// with its deviation from exact mode bounded by sim.FastErrorBounds.
// Setting Client.Retries lets idempotent GETs ride out the server's
// overload shedding (429, 503) with jittered backoff that honors
// Retry-After; POSTs are never retried.
//
// Failures follow the service's uniform envelope: any 4xx/5xx response
// decodes into an *APIError carrying the machine-readable code, the
// human-readable message, and — on unknown-benchmark 404s — the
// nearest-name suggestion:
//
//	rows, err := c.Stack(ctx, "choleski", 16, 0)
//	var ae *client.APIError
//	if errors.As(err, &ae) && ae.Suggestion != "" {
//	    // retry with ae.Suggestion ("cholesky")
//	}
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	speedupstack "repro"
)

// Client talks to one speedupd server. The zero value is not usable; build
// one with New.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Mode selects the simulation fidelity for every simulating call:
	// "exact" (full detail, byte-identical), "fast" (deterministic sampled
	// sets, several times faster, error-bounded — see sim.FastErrorBounds),
	// or empty for the server default (exact). It is sent as ?mode= on
	// Stack, StackIntervals, Sweep, Analyze, AnalyzeIntervals and Advise;
	// an unrecognized value fails with code "invalid_argument".
	Mode string
	// Retries is the number of extra attempts for idempotent GET requests
	// answered 429 (shed or rate-limited) or 503. Zero, the default,
	// disables retrying. Each retry waits the server's Retry-After when
	// the response carries one, otherwise an exponential backoff from
	// 100ms, with jitter either way; the request context bounds the total
	// wait. POSTs are never retried — a sweep or analyze could otherwise
	// run twice.
	Retries int
}

// New builds a Client for the server at baseURL (scheme and host, no
// trailing slash required).
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// addMode appends the client's Mode to a query, when set.
func (c *Client) addMode(q url.Values) url.Values {
	if c.Mode != "" {
		q.Set("mode", c.Mode)
	}
	return q
}

// pathWithMode appends the client's Mode to a bare POST path, when set.
func (c *Client) pathWithMode(path string) string {
	if c.Mode == "" {
		return path
	}
	return path + "?mode=" + url.QueryEscape(c.Mode)
}

// APIError is one failed request: the HTTP status plus the service's error
// envelope. Responses that are not a JSON envelope (a plain text error
// line, a proxy page) still produce an APIError with the body as Message
// and an empty Code.
type APIError struct {
	StatusCode int
	// Code is the stable machine-readable identifier ("invalid_argument",
	// "unknown_benchmark", "unknown_parameter", ...).
	Code    string
	Message string
	// Suggestion is the machine-readable hint, when the service has one —
	// the nearest registered benchmark name on a 404.
	Suggestion string
}

// Error renders the failure with its code and status for logs.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("speedupd: %s (%s, HTTP %d)", e.Message, e.Code, e.StatusCode)
	}
	return fmt.Sprintf("speedupd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// SweepCell is one cell of a Sweep batch: a registered benchmark by name,
// or an inline workload spec (exactly one of Bench and Spec).
type SweepCell struct {
	Bench   string                 `json:"bench,omitempty"`
	Spec    *speedupstack.Workload `json:"spec,omitempty"`
	Threads int                    `json:"threads"`
	Cores   int                    `json:"cores,omitempty"`
}

// ValidateResult is the answer of Validate: a dry run of the spec pipeline.
// Valid=false comes with the actionable validation error; Valid=true with
// the canonical spec and its fingerprint (the cache key).
type ValidateResult struct {
	Valid       bool                   `json:"valid"`
	Error       string                 `json:"error,omitempty"`
	Fingerprint string                 `json:"fingerprint,omitempty"`
	Name        string                 `json:"name,omitempty"`
	Canonical   *speedupstack.Workload `json:"canonical,omitempty"`
}

// Benchmarks lists the registered benchmark analogues.
func (c *Client) Benchmarks(ctx context.Context) ([]string, error) {
	var resp struct {
		Benchmarks []string `json:"benchmarks"`
	}
	if err := c.getJSON(ctx, "/v1/benchmarks", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Benchmarks, nil
}

// Stack measures one (benchmark, threads[, cores]) cell. cores 0 means
// cores = threads (the paper's pairing).
func (c *Client) Stack(ctx context.Context, bench string, threads, cores int) (speedupstack.StackRow, error) {
	q := url.Values{"bench": {bench}, "threads": {strconv.Itoa(threads)}}
	if cores != 0 {
		q.Set("cores", strconv.Itoa(cores))
	}
	var rows []speedupstack.StackRow
	if err := c.getJSON(ctx, "/v1/stack", c.addMode(q), &rows); err != nil {
		return speedupstack.StackRow{}, err
	}
	if len(rows) != 1 {
		return speedupstack.StackRow{}, fmt.Errorf("speedupd: %d rows for one cell", len(rows))
	}
	return rows[0], nil
}

// StackIntervals measures one cell time-resolved: the run split into
// intervals equal slices (0 means the server default).
func (c *Client) StackIntervals(ctx context.Context, bench string, threads, cores, intervals int) (speedupstack.TimeSeriesReport, error) {
	q := url.Values{"bench": {bench}, "threads": {strconv.Itoa(threads)}}
	if cores != 0 {
		q.Set("cores", strconv.Itoa(cores))
	}
	if intervals != 0 {
		q.Set("intervals", strconv.Itoa(intervals))
	}
	var rep speedupstack.TimeSeriesReport
	err := c.getJSON(ctx, "/v1/stack/intervals", c.addMode(q), &rep)
	return rep, err
}

// Sweep measures a batch of cells in one engine pass, deduplicated against
// each other and the server's cache.
func (c *Client) Sweep(ctx context.Context, cells []SweepCell) ([]speedupstack.StackRow, error) {
	var rows []speedupstack.StackRow
	err := c.postJSON(ctx, c.pathWithMode("/v1/sweep"), map[string]any{"cells": cells}, &rows)
	return rows, err
}

// Analyze measures one custom workload spec end to end.
func (c *Client) Analyze(ctx context.Context, spec speedupstack.Workload, threads, cores int) (speedupstack.StackRow, error) {
	body := map[string]any{"spec": spec, "threads": threads}
	if cores != 0 {
		body["cores"] = cores
	}
	var rows []speedupstack.StackRow
	if err := c.postJSON(ctx, c.pathWithMode("/v1/workloads/analyze"), body, &rows); err != nil {
		return speedupstack.StackRow{}, err
	}
	if len(rows) != 1 {
		return speedupstack.StackRow{}, fmt.Errorf("speedupd: %d rows for one spec", len(rows))
	}
	return rows[0], nil
}

// AnalyzeTrace uploads a recorded binary op trace (the speedup-stack
// -record format, written by speedupstack.RecordTrace) and measures its
// replay. The trace replays at its recorded thread count; cores 0 means
// cores = threads. Re-uploading the same trace is a server-side cache hit —
// the replay is memoized under the trace's content hash.
func (c *Client) AnalyzeTrace(ctx context.Context, tr io.Reader, cores int) (speedupstack.StackRow, error) {
	q := url.Values{}
	if cores != 0 {
		q.Set("cores", strconv.Itoa(cores))
	}
	target := c.BaseURL + "/v1/traces/analyze"
	if q = c.addMode(q); len(q) > 0 {
		target += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, tr)
	if err != nil {
		return speedupstack.StackRow{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var rows []speedupstack.StackRow
	if err := c.do(req, &rows); err != nil {
		return speedupstack.StackRow{}, err
	}
	if len(rows) != 1 {
		return speedupstack.StackRow{}, fmt.Errorf("speedupd: %d rows for one trace", len(rows))
	}
	return rows[0], nil
}

// AnalyzeIntervals is Analyze time-resolved.
func (c *Client) AnalyzeIntervals(ctx context.Context, spec speedupstack.Workload, threads, cores, intervals int) (speedupstack.TimeSeriesReport, error) {
	body := map[string]any{"spec": spec, "threads": threads, "intervals": intervals}
	if cores != 0 {
		body["cores"] = cores
	}
	var rep speedupstack.TimeSeriesReport
	err := c.postJSON(ctx, c.pathWithMode("/v1/workloads/analyze"), body, &rep)
	return rep, err
}

// Validate dry-runs the spec pipeline on raw spec JSON without simulating.
// An invalid spec is a clean ValidateResult{Valid: false, Error: ...}, not
// an APIError.
func (c *Client) Validate(ctx context.Context, specJSON []byte) (ValidateResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/workloads/validate", bytes.NewReader(specJSON))
	if err != nil {
		return ValidateResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp ValidateResult
	err = c.do(req, &resp)
	return resp, err
}

// Advise runs the scaling advisor: a memoized thread sweep up to maxThreads
// (0 means the server default, 16), Amdahl and USL fits, the classification,
// the serial-fraction cross-check and ranked recommendations.
func (c *Client) Advise(ctx context.Context, bench string, maxThreads int) (speedupstack.Advice, error) {
	q := url.Values{"bench": {bench}}
	if maxThreads != 0 {
		q.Set("max_threads", strconv.Itoa(maxThreads))
	}
	var a speedupstack.Advice
	err := c.getJSON(ctx, "/v1/advise", c.addMode(q), &a)
	return a, err
}

// WhatIf runs the causal what-if engine on one (benchmark, threads) cell:
// each applicable catalog intervention's predicted speedup gain, validated
// by re-simulating the mutated workload/machine, ranked by predicted gain.
// interventions selects catalog entries by ID (nil means the full catalog);
// an unknown ID is a 404 *APIError with code "unknown_intervention" and the
// nearest catalog ID as Suggestion.
func (c *Client) WhatIf(ctx context.Context, bench string, threads int, interventions []string) (speedupstack.WhatIfReport, error) {
	body := map[string]any{"bench": bench, "threads": threads}
	if len(interventions) > 0 {
		body["interventions"] = interventions
	}
	var rep speedupstack.WhatIfReport
	err := c.postJSON(ctx, "/v1/whatif", body, &rep)
	return rep, err
}

// WhatIfSpec is WhatIf for an inline custom workload spec.
func (c *Client) WhatIfSpec(ctx context.Context, spec speedupstack.Workload, threads int, interventions []string) (speedupstack.WhatIfReport, error) {
	body := map[string]any{"spec": spec, "threads": threads}
	if len(interventions) > 0 {
		body["interventions"] = interventions
	}
	var rep speedupstack.WhatIfReport
	err := c.postJSON(ctx, "/v1/whatif", body, &rep)
	return rep, err
}

// Healthz checks the liveness probe.
func (c *Client) Healthz(ctx context.Context) error {
	body, _, err := c.Raw(ctx, "/healthz", nil, "")
	if err != nil {
		return err
	}
	if got := strings.TrimSpace(string(body)); got != "ok" {
		return fmt.Errorf("speedupd: healthz answered %q", got)
	}
	return nil
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	body, _, err := c.Raw(ctx, "/metrics", nil, "")
	return string(body), err
}

// Raw performs one GET and returns the raw body and its Content-Type — the
// escape hatch for non-JSON formats (?format=text|csv|svg). Error statuses
// still decode into *APIError.
func (c *Client) Raw(ctx context.Context, path string, query url.Values, accept string) ([]byte, string, error) {
	target := c.BaseURL + path
	if len(query) > 0 {
		target += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, "", err
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.send(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode >= 400 {
		return nil, "", decodeAPIError(resp.StatusCode, body)
	}
	return body, resp.Header.Get("Content-Type"), nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// send issues req, retrying idempotent GETs up to Retries times on 429 and
// 503 — the statuses the service sheds load with. Anything else (other
// statuses, transport errors, non-GET methods) returns on the first
// attempt, so a sweep is never simulated twice by its own client.
func (c *Client) send(req *http.Request) (*http.Response, error) {
	resp, err := c.httpClient().Do(req)
	if c.Retries <= 0 || req.Method != http.MethodGet {
		return resp, err
	}
	for attempt := 0; attempt < c.Retries; attempt++ {
		if err != nil ||
			(resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable) {
			return resp, err
		}
		delay := retryDelay(resp, attempt)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		timer := time.NewTimer(delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
		resp, err = c.httpClient().Do(req)
	}
	return resp, err
}

// retryDelay picks the wait before retry number attempt: the server's
// Retry-After when the response names one, otherwise exponential backoff
// from 100ms, plus up to 50% random jitter so synchronized clients spread
// out instead of re-colliding.
func retryDelay(resp *http.Response, attempt int) time.Duration {
	base := time.Duration(100*(1<<attempt)) * time.Millisecond
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			base = time.Duration(secs) * time.Second
		}
	}
	return base + time.Duration(rand.Int63n(int64(base)/2+1))
}

// getJSON GETs path and decodes the JSON answer into v.
func (c *Client) getJSON(ctx context.Context, path string, query url.Values, v any) error {
	target := c.BaseURL + path
	if len(query) > 0 {
		target += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return err
	}
	return c.do(req, v)
}

// postJSON POSTs body as JSON to path and decodes the answer into v.
func (c *Client) postJSON(ctx context.Context, path string, body, v any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, v)
}

// do runs one request, mapping error statuses to *APIError and decoding a
// success into v.
func (c *Client) do(req *http.Request, v any) error {
	resp, err := c.send(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return decodeAPIError(resp.StatusCode, body)
	}
	if v == nil {
		return nil
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("speedupd: decoding response: %v", err)
	}
	return nil
}

// decodeAPIError lifts an error response into *APIError: the structured
// envelope when the body is one, the raw body as the message otherwise
// (text-format errors, intermediaries).
func decodeAPIError(status int, body []byte) *APIError {
	var env struct {
		Error struct {
			Code       string `json:"code"`
			Message    string `json:"message"`
			Suggestion string `json:"suggestion"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Message != "" {
		return &APIError{StatusCode: status, Code: env.Error.Code,
			Message: env.Error.Message, Suggestion: env.Error.Suggestion}
	}
	msg := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(string(body)), "error:"))
	if msg == "" {
		msg = http.StatusText(status)
	}
	return &APIError{StatusCode: status, Message: strings.TrimSpace(msg)}
}
