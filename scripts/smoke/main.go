// Command smoke drives a running speedupd server end to end through the
// public client package: every /v1 endpoint, format negotiation, the
// scaling advisor, and the uniform error envelope. CI starts a server and
// runs it; it exits non-zero on the first failed check.
//
// With -fleet it additionally drives a separate two-node fleet (started
// with -self/-peers): peer cache-fill byte-identity, fleet-wide
// exactly-once simulation, forwarding counters, and streamed NDJSON
// sweeps. With -limited it checks the 429 envelope of a rate-limited
// server (started with -rate-limit 0.001 -rate-burst 1). These use their
// own servers because the main suite pins literal run counts on -base.
//
// Usage:
//
//	go run ./scripts/smoke -base http://127.0.0.1:8091 [-pprof]
//	    [-fleet http://127.0.0.1:8092,http://127.0.0.1:8093]
//	    [-limited http://127.0.0.1:8094]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	speedupstack "repro"
	"repro/client"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8080", "server base URL")
	pprof := flag.Bool("pprof", false, "also probe /debug/pprof (server must run with -pprof)")
	fleet := flag.String("fleet", "", "two comma-separated base URLs of a 2-node fleet (fleet checks)")
	limited := flag.String("limited", "", "base URL of a server running -rate-limit 0.001 -rate-burst 1 (429 envelope check)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	c := client.New(*base)

	// Readiness: the server may still be binding when CI launches us.
	var err error
	for i := 0; i < 100; i++ {
		if err = c.Healthz(ctx); err == nil {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	check("healthz", err)

	names, err := c.Benchmarks(ctx)
	check("benchmarks", err)
	expect("benchmarks", len(names) >= 20, "only %d registered", len(names))

	const bench = "cholesky_splash2"
	row, err := c.Stack(ctx, bench, 8, 0)
	check("stack", err)
	expect("stack", row.Benchmark == bench && row.Actual > 0, "row %+v", row)

	svg, ct, err := c.Raw(ctx, "/v1/stack",
		url.Values{"bench": {bench}, "threads": {"8"}, "format": {"svg"}}, "")
	check("stack svg", err)
	expect("stack svg", strings.HasPrefix(string(svg), "<svg") && ct == "image/svg+xml",
		"content type %q", ct)

	rep, err := c.StackIntervals(ctx, bench, 8, 0, 8)
	check("intervals", err)
	expect("intervals", rep.Benchmark == bench && len(rep.Intervals) > 0,
		"%d intervals", len(rep.Intervals))

	spec := []byte(`{"name":"ci-kernel","kind":"data_parallel","array_bytes":524288,` +
		`"sweeps_per_phase":1,"phases":1,"instr_per_access":2500,"store_frac":0.1,"seed":11}`)
	v, err := c.Validate(ctx, spec)
	check("validate", err)
	expect("validate", v.Valid && len(v.Fingerprint) == 64 && v.Canonical != nil, "result %+v", v)

	arow, err := c.Analyze(ctx, *v.Canonical, 8, 0)
	check("analyze", err)
	expect("analyze", arow.Benchmark == "ci-kernel" && arow.Actual >= 1, "row %+v", arow)

	// The scaling advisor, JSON and text.
	a, err := c.Advise(ctx, bench, 8)
	check("advise", err)
	expect("advise", a.Benchmark == bench && a.MaxThreads == 8 && len(a.Points) == 4,
		"advice %+v", a)
	expect("advise", a.Class != "" && a.USL.R2 > 0, "fits not populated: %+v", a)
	text, ct, err := c.Raw(ctx, "/v1/advise",
		url.Values{"bench": {bench}, "max_threads": {"8"}, "format": {"text"}}, "")
	check("advise text", err)
	expect("advise text", strings.HasPrefix(ct, "text/plain") &&
		strings.Contains(string(text), "amdahl:") && strings.Contains(string(text), "usl:"),
		"content type %q, body %.80q", ct, string(text))

	// The causal what-if engine. The baseline cell (cholesky x8) is already
	// memoized by the stack and advise calls above, so this run simulates
	// only the mutated cells: all four catalog interventions apply to
	// cholesky (a task queue with a dispatch lock and skewed shares), hence
	// exactly four new cell runs — asserted by the metrics block below.
	wrep, err := c.WhatIf(ctx, bench, 8, nil)
	check("whatif", err)
	expect("whatif", wrep.Benchmark == bench && wrep.Threads == 8 &&
		len(wrep.Predictions) == 4, "report %+v", wrep)
	expect("whatif", wrep.BaselineSpeedup > 0, "baseline not populated: %+v", wrep)
	for i, p := range wrep.Predictions {
		expect("whatif", p.Intervention != "" && p.Mutation != "" && p.ActualSpeedup > 0,
			"prediction %d incomplete: %+v", i, p)
		expect("whatif", i == 0 || p.PredictedGain <= wrep.Predictions[i-1].PredictedGain,
			"predictions not ranked by predicted gain: %+v", wrep.Predictions)
	}
	// Repeating the what-if — and narrowing it to a subset — is pure memo.
	wrep2, err := c.WhatIf(ctx, bench, 8, []string{"double_llc"})
	check("whatif repeat", err)
	expect("whatif repeat", len(wrep2.Predictions) == 1 &&
		wrep2.Predictions[0].Intervention == "double_llc", "report %+v", wrep2)

	// Fast mode: the sampled fidelity rides the same wire surface via
	// Client.Mode. The fast cell never aliases the exact one in the memo,
	// so this is exactly one new (sampled) cell run — visible in the
	// fidelity split of the metrics block below — and its estimate stays
	// within the documented bounds of the exact estimate (the full
	// per-component contract, sim.FastErrorBounds, is pinned by CI's
	// fast-vs-exact regression test).
	fc := client.New(*base)
	fc.Mode = "fast"
	frow, err := fc.Stack(ctx, bench, 8, 0)
	check("fast stack", err)
	expect("fast stack", frow.Benchmark == bench && frow.Actual > 0, "row %+v", frow)
	d := frow.Estimated - row.Estimated
	expect("fast stack", d < 3.6 && d > -3.6,
		"fast estimate %v too far from exact %v", frow.Estimated, row.Estimated)
	// Repeating the fast cell is a memo hit, like any other cell.
	frow2, err := fc.Stack(ctx, bench, 8, 0)
	check("fast stack repeat", err)
	expect("fast stack repeat", frow2 == frow, "fast rows differ: %+v vs %+v", frow2, frow)

	// Recorded traces: record a cheap cell in-process (the same binary
	// format speedup-stack -record writes), upload it, and replay it at its
	// recorded thread count. Repeating the upload must ride the trace's
	// content-hash identity into the memo: zero extra simulations — pinned
	// by the run totals in the metrics block below.
	var tr bytes.Buffer
	const traceBench = "blackscholes_parsec_small"
	check("trace record", speedupstack.RecordTrace(&tr, traceBench, 2))
	trow, err := c.AnalyzeTrace(ctx, bytes.NewReader(tr.Bytes()), 0)
	check("trace analyze", err)
	expect("trace analyze", trow.Benchmark == traceBench && trow.Threads == 2 && trow.Actual > 0,
		"row %+v", trow)
	trow2, err := c.AnalyzeTrace(ctx, bytes.NewReader(tr.Bytes()), 0)
	check("trace analyze repeat", err)
	expect("trace analyze repeat", trow2 == trow, "trace rows differ: %+v vs %+v", trow2, trow)

	// The uniform error envelope: a typo'd benchmark is a 404 whose
	// suggestion is machine-readable, an undeclared query parameter is
	// a 400 with its own stable code, and a typo'd what-if intervention is
	// a 404 carrying the nearest catalog ID.
	_, err = c.Stack(ctx, "choleski", 8, 0)
	var ae *client.APIError
	expect("404 envelope", errors.As(err, &ae), "error %v", err)
	expect("404 envelope", ae.StatusCode == 404 && ae.Code == "unknown_benchmark" &&
		ae.Suggestion == "cholesky", "APIError %+v", ae)
	_, _, err = c.Raw(ctx, "/v1/advise",
		url.Values{"bench": {bench}, "threads": {"8"}}, "")
	expect("unknown-param envelope", errors.As(err, &ae), "error %v", err)
	expect("unknown-param envelope", ae.StatusCode == 400 && ae.Code == "unknown_parameter",
		"APIError %+v", ae)
	_, err = c.WhatIf(ctx, bench, 8, []string{"double_lcc"})
	expect("unknown-intervention envelope", errors.As(err, &ae), "error %v", err)
	expect("unknown-intervention envelope", ae.StatusCode == 404 &&
		ae.Code == "unknown_intervention" && ae.Suggestion == "double_llc",
		"APIError %+v", ae)
	// An unknown simulation mode is a 400 with the uniform invalid_argument
	// envelope, like any other malformed value.
	fc.Mode = "bogus"
	_, err = fc.Stack(ctx, bench, 8, 0)
	expect("bad-mode envelope", errors.As(err, &ae), "error %v", err)
	expect("bad-mode envelope", ae.StatusCode == 400 && ae.Code == "invalid_argument",
		"APIError %+v", ae)
	// A corrupt trace body answers the same envelope, and simulates nothing.
	_, err = c.AnalyzeTrace(ctx, strings.NewReader("not a trace"), 0)
	expect("corrupt-trace envelope", errors.As(err, &ae), "error %v", err)
	expect("corrupt-trace envelope", ae.StatusCode == 400 && ae.Code == "invalid_argument" &&
		strings.Contains(ae.Message, "bad trace"), "APIError %+v", ae)

	// Metrics: the run count pins the cache discipline of everything above —
	// stack (1 run, shared by svg/intervals), analyze (1), advise (threads
	// 1/2/4 new, 8 cached: 3), what-if (baseline cached, 4 mutated cells),
	// fast stack (1 sampled run, repeat cached), trace analyze (1 replay,
	// repeat cached under the trace's content hash); the what-if repeat, the
	// subset, and every error ran nothing. The fidelity split counts the
	// sampled run separately from the ten exact ones.
	metrics, err := c.Metrics(ctx)
	check("metrics", err)
	for _, want := range []string{
		"speedupd_sim_cell_runs_total 11",
		"speedupd_sim_cell_runs_exact_total 10",
		"speedupd_sim_cell_runs_fast_total 1",
		"speedupd_simulated_ops_total",
		"speedupd_simulated_ops_per_second",
		`speedupd_requests_total{path="/v1/advise"}`,
	} {
		expect("metrics", strings.Contains(metrics, want), "missing %q in:\n%s", want, metrics)
	}

	if *pprof {
		_, _, err := c.Raw(ctx, "/debug/pprof/cmdline", nil, "")
		check("pprof", err)
	}
	if *fleet != "" {
		fleetChecks(ctx, *fleet)
	}
	if *limited != "" {
		limitedChecks(ctx, *limited)
	}
	fmt.Println("smoke: all checks passed")
}

// fleetChecks drives a separate two-node fleet: the same cell through
// either node answers byte-identically and costs the fleet exactly one
// simulation, sweeps stream as NDJSON, and the fleet counters are live.
func fleetChecks(ctx context.Context, pair string) {
	urls := strings.Split(pair, ",")
	expect("fleet", len(urls) == 2, "-fleet wants two comma-separated URLs, got %q", pair)
	a, b := client.New(urls[0]), client.New(urls[1])
	for _, node := range []*client.Client{a, b} {
		var err error
		for i := 0; i < 100; i++ {
			if err = node.Healthz(ctx); err == nil {
				break
			}
			time.Sleep(200 * time.Millisecond)
		}
		check("fleet healthz", err)
	}

	// Peer cache-fill: one cell through both nodes. Whichever node is not
	// the cell's home forwards one hop and caches the home's bytes, so the
	// two answers are byte-identical.
	const bench = "canneal_parsec_small"
	q := url.Values{"bench": {bench}, "threads": {"2"}}
	bodyA, ctA, err := a.Raw(ctx, "/v1/stack", q, "")
	check("fleet stack A", err)
	bodyB, ctB, err := b.Raw(ctx, "/v1/stack", q, "")
	check("fleet stack B", err)
	expect("fleet byte-identity", string(bodyA) == string(bodyB) && ctA == ctB,
		"nodes disagree: %q (%s) vs %q (%s)", bodyA, ctA, bodyB, ctB)

	// Streamed NDJSON sweep through node A: one compact row line per cell,
	// in declared order.
	sweep := `{"cells":[{"bench":"canneal_parsec_small","threads":2},` +
		`{"bench":"blackscholes_parsec_small","threads":2}]}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		urls[0]+"/v1/sweep", strings.NewReader(sweep))
	check("fleet ndjson request", err)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	check("fleet ndjson", err)
	nb, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	check("fleet ndjson read", err)
	expect("fleet ndjson", resp.StatusCode == 200 &&
		strings.HasPrefix(resp.Header.Get("Content-Type"), "application/x-ndjson"),
		"status %d, content type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	lines := strings.Split(strings.TrimSuffix(string(nb), "\n"), "\n")
	expect("fleet ndjson", len(lines) == 2, "%d lines: %q", len(lines), nb)
	for i, want := range []string{"canneal_parsec_small", "blackscholes_parsec_small"} {
		expect("fleet ndjson", json.Valid([]byte(lines[i])) &&
			strings.Contains(lines[i], `"benchmark":"`+want+`"`) &&
			!strings.Contains(lines[i], "  "),
			"line %d not a compact %s row: %q", i, want, lines[i])
	}

	// Exactly-once plus live counters: two unique cells were touched above
	// (canneal x2 twice, blackscholes x2 once), so the fleet-wide run total
	// is 2, and at least one request was forwarded to its home.
	ma, err := a.Metrics(ctx)
	check("fleet metrics A", err)
	mb, err := b.Metrics(ctx)
	check("fleet metrics B", err)
	for _, m := range []string{ma, mb} {
		expect("fleet metrics", strings.Contains(m, "speedupd_fleet_nodes 2"),
			"speedupd_fleet_nodes 2 missing in:\n%s", m)
	}
	runs := metricValue(ma, "speedupd_sim_cell_runs_total") +
		metricValue(mb, "speedupd_sim_cell_runs_total")
	expect("fleet exactly-once", runs == 2,
		"fleet simulated %d cells for 2 unique cells", runs)
	forwarded := metricValue(ma, "speedupd_fleet_forwarded_total") +
		metricValue(mb, "speedupd_fleet_forwarded_total")
	expect("fleet forwarding", forwarded >= 1, "no request was forwarded")
}

// limitedChecks pins the shed envelope of a server started with
// -rate-limit 0.001 -rate-burst 1: the first simulating request drains
// the bucket, the second is a 429 with the uniform envelope and a
// Retry-After hint.
func limitedChecks(ctx context.Context, baseURL string) {
	c := client.New(baseURL)
	var err error
	for i := 0; i < 100; i++ {
		if err = c.Healthz(ctx); err == nil {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	check("limited healthz", err)
	_, err = c.Stack(ctx, "blackscholes_parsec_small", 1, 0)
	check("limited first request", err)
	_, err = c.Stack(ctx, "blackscholes_parsec_small", 1, 0)
	var ae *client.APIError
	expect("429 envelope", errors.As(err, &ae), "error %v", err)
	expect("429 envelope", ae.StatusCode == 429 && ae.Code == "rate_limited",
		"APIError %+v", ae)
}

// metricValue extracts one counter from a Prometheus text exposition; a
// missing metric is 0.
func metricValue(metrics, name string) int {
	for _, line := range strings.Split(metrics, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.Atoi(fields[1])
			if err == nil {
				return v
			}
		}
	}
	return 0
}

// check exits on a hard error.
func check(step string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "smoke: %s: %v\n", step, err)
		os.Exit(1)
	}
}

// expect exits when a check's condition does not hold.
func expect(step string, ok bool, format string, args ...any) {
	if !ok {
		fmt.Fprintf(os.Stderr, "smoke: %s: "+format+"\n", append([]any{step}, args...)...)
		os.Exit(1)
	}
}
