// Command doccheck lints doc comments the way the revive "exported" rule
// does, without pulling in a dependency: every exported top-level
// identifier of the given package directories (functions, methods on
// exported receivers, types, and each exported constant or variable) must
// carry a doc comment, and the comment must start with the identifier it
// documents (an optional leading article is accepted). Test files are
// skipped.
//
// Usage:
//
//	go run ./scripts/doccheck DIR...
//
// Exit status is non-zero when any finding is reported; CI keeps the
// audited packages warn-free.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck DIR...")
		os.Exit(2)
	}
	findings := 0
	for _, dir := range os.Args[1:] {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// checkDir parses one package directory and reports findings to stdout.
func checkDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	findings := 0
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		rel := p.Filename
		if r, err := filepath.Rel(".", p.Filename); err == nil {
			rel = r
		}
		fmt.Printf("%s:%d: %s\n", rel, p.Line, fmt.Sprintf(format, args...))
		findings++
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			checkFile(f, report)
		}
	}
	return findings, nil
}

// checkFile walks one file's top-level declarations.
func checkFile(f *ast.File, report func(token.Pos, string, ...any)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			checkComment(d.Doc, d.Name.Name, d.Pos(), kindOf(d), report)
		case *ast.GenDecl:
			checkGenDecl(d, report)
		}
	}
}

// exportedReceiver reports whether a method's receiver type (or a plain
// function) is exported; methods on unexported types are internal API.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// checkGenDecl handles type/const/var blocks: a doc comment on the block
// covers its specs, otherwise each exported spec needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			checkComment(doc, s.Name.Name, s.Pos(), "type", report)
		case *ast.ValueSpec:
			kind := "const"
			if d.Tok == token.VAR {
				kind = "var"
			}
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if s.Doc == nil && s.Comment == nil && d.Doc == nil {
					report(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
					continue
				}
				// Grouped constants document the group; only a spec's own
				// doc is held to the starts-with convention.
				if s.Doc != nil && len(s.Names) == 1 {
					checkComment(s.Doc, name.Name, name.Pos(), kind, report)
				}
			}
		}
	}
}

// checkComment enforces presence and the "comment starts with the name"
// convention (a leading article is fine, and a deprecation notice is
// exempt).
func checkComment(doc *ast.CommentGroup, name string, pos token.Pos, kind string,
	report func(token.Pos, string, ...any)) {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		report(pos, "exported %s %s has no doc comment", kind, name)
		return
	}
	text := strings.TrimSpace(doc.Text())
	for _, article := range []string{"A ", "An ", "The "} {
		text = strings.TrimPrefix(text, article)
	}
	if !strings.HasPrefix(text, name) && !strings.HasPrefix(text, "Deprecated:") {
		report(pos, "doc comment of exported %s %s should start with %q", kind, name, name)
	}
}

// kindOf names a func declaration for findings.
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
