#!/usr/bin/env bash
# bench.sh — regenerate the benchmark baseline.
#
# Runs the full bench_test.go suite and emits two artifacts:
#
#   BENCH_PR9.txt   raw `go test -bench` output (benchstat-compatible; CI
#                   compares fresh runs against it, warn-only)
#   BENCH_PR9.json  machine-readable trajectory: benchmark name -> metric
#                   -> mean value (ns/op, B/op, allocs/op, sim-ops/sec, ...)
#
# Environment knobs:
#   BENCHTIME  go -benchtime value   (default 1x: one full regeneration)
#   COUNT      go -count value       (default 1; raise for stable means)
#   BENCH      go -bench regexp      (default . : everything)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
COUNT="${COUNT:-1}"
BENCH="${BENCH:-.}"
OUT_TXT="${OUT_TXT:-BENCH_PR9.txt}"
OUT_JSON="${OUT_JSON:-BENCH_PR9.json}"

go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . \
  | tee "$OUT_TXT"

python3 - "$OUT_TXT" "$OUT_JSON" <<'EOF'
import json, sys

src, dst = sys.argv[1], sys.argv[2]
bench = {}
with open(src) as f:
    for line in f:
        parts = line.split()
        if not parts or not parts[0].startswith("Benchmark"):
            continue
        # Benchmark lines: name, iterations, then (value, unit) pairs.
        name = parts[0].split("-")[0]  # strip the -GOMAXPROCS suffix
        metrics = bench.setdefault(name, {})
        vals = parts[2:]
        for v, unit in zip(vals[::2], vals[1::2]):
            try:
                val = float(v)
            except ValueError:
                continue
            metrics.setdefault(unit, []).append(val)

out = {
    name: {unit: sum(vs) / len(vs) for unit, vs in metrics.items()}
    for name, metrics in sorted(bench.items())
}
with open(dst, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {dst} ({len(out)} benchmarks)")
EOF
