// Command mdcheck is an offline markdown link checker for the repo's doc
// set: every inline link in the given files is resolved, relative links
// must point at an existing file (and, with a #fragment, at a heading
// anchor that exists in the target, using GitHub's slug rules), and
// intra-document fragments must match a local heading. External http(s)
// and mailto links are syntax-checked only — CI has no business depending
// on the network. Links inside fenced code blocks are ignored.
//
// Usage:
//
//	go run ./scripts/mdcheck FILE.md...
//
// Exit status is non-zero when any finding is reported; CI keeps the doc
// set warn-free.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline links and images: [text](target) / ![alt](target).
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRE matches ATX headings.
var headingRE = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdcheck FILE.md...")
		os.Exit(2)
	}
	findings := 0
	for _, path := range os.Args[1:] {
		n, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcheck: %s: %v\n", path, err)
			os.Exit(2)
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// checkFile reports broken links of one document to stdout.
func checkFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	findings := 0
	for _, l := range links(string(data)) {
		if err := checkLink(path, l.target); err != nil {
			fmt.Printf("%s:%d: %s: %v\n", path, l.line, l.target, err)
			findings++
		}
	}
	return findings, nil
}

// link is one extracted target with its source line.
type link struct {
	line   int
	target string
}

// links extracts every link target outside fenced code blocks, in document
// order (a line may carry several links).
func links(doc string) []link {
	var out []link
	fenced := false
	for i, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			out = append(out, link{line: i + 1, target: m[1]})
		}
	}
	return out
}

// checkLink validates one target relative to the document's directory.
func checkLink(docPath, target string) error {
	switch {
	case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return nil // external: syntax only
	case strings.HasPrefix(target, "#"):
		return checkAnchor(docPath, target[1:])
	}
	file, frag, _ := strings.Cut(target, "#")
	resolved := filepath.Join(filepath.Dir(docPath), file)
	if _, err := os.Stat(resolved); err != nil {
		return fmt.Errorf("target does not exist")
	}
	if frag != "" {
		return checkAnchor(resolved, frag)
	}
	return nil
}

// checkAnchor verifies that a #fragment names a heading of the target
// markdown document.
func checkAnchor(path, frag string) error {
	if !strings.HasSuffix(path, ".md") {
		return nil // fragments into non-markdown files are viewer-defined
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("anchor target unreadable: %v", err)
	}
	fenced := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced {
			continue
		}
		if m := headingRE.FindStringSubmatch(line); m != nil && slug(m[1]) == frag {
			return nil
		}
	}
	return fmt.Errorf("no heading with anchor %q", frag)
}

// slugRE strips everything GitHub drops from heading anchors.
var slugRE = regexp.MustCompile(`[^\p{L}\p{N}\s_-]`)

// slug converts a heading to its GitHub anchor: lowercase, punctuation
// removed, spaces to hyphens.
func slug(heading string) string {
	// Inline code/emphasis markers render as text content.
	heading = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(heading)
	heading = slugRE.ReplaceAllString(strings.ToLower(heading), "")
	return strings.ReplaceAll(strings.TrimSpace(heading), " ", "-")
}
