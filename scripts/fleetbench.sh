#!/usr/bin/env bash
# fleetbench.sh — multi-process fleet scaling proof.
#
# Boots real speedupd processes and measures two things with
# cmd/speedup-load:
#
#   1. exactly-once: a cold 3-node fleet hit with concurrent duplicate
#      requests from every node must simulate the unique cell once,
#      fleet-wide (asserted from speedupd_sim_cell_runs_total).
#   2. cached-query throughput at 1 node vs 3 nodes: open-loop load over a
#      pre-warmed working set; near-linear scaling is the point of the
#      fleet (the README table is regenerated from this output).
#
# Each node's admission capacity is pinned at CAP requests/second with the
# server's own -rate-limit gate (excess load is shed 429, which the
# generator counts separately), and each process runs GOMAXPROCS=1. The
# pinned capacity makes the scaling measurement host-independent: fleet
# throughput is bounded by per-node capacity x node count, not by however
# many cores the benchmark host happens to have — on a single-core CI
# container, unpinned CPU-bound numbers would measure scheduler contention,
# not fleet routing.
#
# Environment knobs:
#   CAP        per-node admitted capacity, req/s  (default 300)
#   RATE       offered arrival rate, req/s        (default 5*CAP: saturating)
#   DURATION   measurement length                 (default 8s)
#   PORT_BASE  first listen port                  (default 9640)
set -euo pipefail
cd "$(dirname "$0")/.."

CAP="${CAP:-300}"
RATE="${RATE:-$((CAP * 5))}"
DURATION="${DURATION:-8s}"
PORT_BASE="${PORT_BASE:-9640}"
COLD_BENCH="bodytrack_parsec_small"

go build -o /tmp/speedupd ./cmd/speedupd
go build -o /tmp/speedup-load ./cmd/speedup-load

SERVER_PIDS=()
cleanup() {
  kill "${SERVER_PIDS[@]}" 2>/dev/null || true
  wait "${SERVER_PIDS[@]}" 2>/dev/null || true
}
trap cleanup EXIT

wait_ready() {
  for _ in $(seq 1 100); do
    curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "fleetbench: node $1 never became ready" >&2
  exit 1
}

metric() { curl -fsS "$1/metrics" | awk -v m="$2" '$1==m{print $2}'; }

P1=$((PORT_BASE)); P2=$((PORT_BASE + 1)); P3=$((PORT_BASE + 2)); PS=$((PORT_BASE + 3))
PEERS="127.0.0.1:$P1,127.0.0.1:$P2,127.0.0.1:$P3"
FLEET_URLS="http://127.0.0.1:$P1,http://127.0.0.1:$P2,http://127.0.0.1:$P3"

echo "== exactly-once: cold 3-node fleet under concurrent duplicate load =="
for p in $P1 $P2 $P3; do
  GOMAXPROCS=1 /tmp/speedupd -addr "127.0.0.1:$p" \
    -self "127.0.0.1:$p" -peers "$PEERS" \
    -rate-limit "$CAP" -rate-burst 50 >/dev/null 2>&1 &
  SERVER_PIDS+=($!)
done
for p in $P1 $P2 $P3; do wait_ready "http://127.0.0.1:$p"; done

CURL_PIDS=()
for p in $P1 $P2 $P3; do
  for _ in 1 2 3 4; do
    curl -fsS "http://127.0.0.1:$p/v1/stack?bench=$COLD_BENCH&threads=2" >/dev/null &
    CURL_PIDS+=($!)
  done
done
for pid in "${CURL_PIDS[@]}"; do wait "$pid"; done

RUNS=0
for p in $P1 $P2 $P3; do
  n="$(metric "http://127.0.0.1:$p" speedupd_sim_cell_runs_total)"
  echo "  node :$p cell runs: $n"
  RUNS=$((RUNS + n))
done
if [ "$RUNS" -ne 1 ]; then
  echo "fleetbench: FAIL — fleet simulated the unique cell $RUNS times, want 1" >&2
  exit 1
fi
echo "  fleet-wide simulations for 12 concurrent duplicate requests: $RUNS (exactly once)"

echo "== cached-query throughput: 3 nodes (GOMAXPROCS=1 each) =="
/tmp/speedup-load -targets "$FLEET_URLS" -rate "$RATE" -duration "$DURATION" -json \
  | tee /tmp/fleetbench_3.json

cleanup
SERVER_PIDS=()

echo "== cached-query throughput: 1 node (GOMAXPROCS=1) =="
GOMAXPROCS=1 /tmp/speedupd -addr "127.0.0.1:$PS" \
  -rate-limit "$CAP" -rate-burst 50 >/dev/null 2>&1 &
SERVER_PIDS+=($!)
wait_ready "http://127.0.0.1:$PS"
/tmp/speedup-load -targets "http://127.0.0.1:$PS" -rate "$RATE" -duration "$DURATION" -json \
  | tee /tmp/fleetbench_1.json

python3 - /tmp/fleetbench_1.json /tmp/fleetbench_3.json <<'EOF'
import json, sys
one = json.load(open(sys.argv[1]))
three = json.load(open(sys.argv[2]))
ratio = three["achieved_rps"] / one["achieved_rps"] if one["achieved_rps"] else 0
print()
print("| nodes | achieved req/s | p50 ms | p99 ms | scaling |")
print("|------:|---------------:|-------:|-------:|--------:|")
print(f"| 1 | {one['achieved_rps']:.0f} | {one['latency_ms']['p50']:.2f} | {one['latency_ms']['p99']:.2f} | 1.00x |")
print(f"| 3 | {three['achieved_rps']:.0f} | {three['latency_ms']['p50']:.2f} | {three['latency_ms']['p99']:.2f} | {ratio:.2f}x |")
if ratio < 2.5:
    print(f"fleetbench: WARNING — 3-node scaling {ratio:.2f}x below the 2.5x target", file=sys.stderr)
EOF
