package speedupstack

import (
	"strings"
	"testing"
)

func TestBenchmarksListed(t *testing.T) {
	// 28 paper analogues + the 10-pattern contention suite: the lookup
	// registry lists both (the figure set stays 28 — see workload.All).
	names := Benchmarks()
	if len(names) != 38 {
		t.Fatalf("benchmarks = %d, want 38", len(names))
	}
}

func TestMeasureUnknownBenchmark(t *testing.T) {
	if _, err := Measure("no-such-benchmark", 4); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	// Near-miss names carry the nearest registered name, so the CLI (which
	// prints this error verbatim) suggests the fix.
	_, err := Measure("choleski", 4)
	if err == nil || !strings.Contains(err.Error(), `did you mean "cholesky"?`) {
		t.Fatalf("no suggestion in %v", err)
	}
}

// specJSON is a custom workload the registry has never seen.
const specJSON = `{"name":"roottest","kind":"data_parallel","array_bytes":524288,
	"sweeps_per_phase":1,"phases":1,"instr_per_access":2500,"store_frac":0.1,"seed":5}`

func TestParseWorkloadAndMeasureSpec(t *testing.T) {
	w, err := ParseWorkload([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateWorkload(w); err != nil {
		t.Fatal(err)
	}
	res, err := MeasureSpec(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "roottest" || res.Threads != 4 {
		t.Fatalf("unexpected result identity: %+v", res)
	}
	if res.Stack.ActualSpeedup <= 1 {
		t.Fatalf("implausible speedup %v", res.Stack.ActualSpeedup)
	}

	// MeasureSpecAll: two names, one behaviour -> same stacks, own labels.
	w2 := w
	w2.Name = "roottest-twin"
	results, err := MeasureSpecAll([]Workload{w, w2}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Benchmark != "roottest" || results[1].Benchmark != "roottest-twin" {
		t.Fatalf("unexpected results: %+v", results)
	}
	if results[0].Stack != results[1].Stack {
		t.Fatal("fingerprint-identical workloads measured differently")
	}
	if results[0].Stack != res.Stack {
		t.Fatal("MeasureSpecAll disagrees with MeasureSpec")
	}
}

func TestParseWorkloadRejects(t *testing.T) {
	if _, err := ParseWorkload([]byte(`{"name":"x","kind":"data_parallel"}`)); err == nil {
		t.Fatal("invalid workload accepted")
	}
	if _, err := ParseWorkload([]byte(`{"name":"x","kind":"data_parallel","array_byts":64}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestMeasureAndRender(t *testing.T) {
	res, err := Measure("swaptions_parsec_small", 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 16 || res.Stack.N != 16 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	if res.Stack.ActualSpeedup <= 1 {
		t.Fatalf("actual speedup %v", res.Stack.ActualSpeedup)
	}
	out := Render(res)
	if !strings.Contains(out, "swaptions_parsec_small") || !strings.Contains(out, "legend:") {
		t.Fatalf("render output incomplete:\n%s", out)
	}
	tbl := Table(res)
	if !strings.Contains(tbl, "yield") {
		t.Fatalf("table output incomplete:\n%s", tbl)
	}
	if tops := TopBottlenecks(res, 3); len(tops) == 0 {
		t.Fatal("no bottlenecks reported for a skewed benchmark")
	}
}

// TestMeasureFast pins the root fast-mode API: sampled runs produce a
// well-formed stack within the documented bounds of the exact result, both
// for registered analogues and custom specs, and are themselves
// deterministic.
func TestMeasureFast(t *testing.T) {
	exact, err := Measure("swaptions_parsec_small", 8)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := MeasureFast("swaptions_parsec_small", 8)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Threads != 8 || fast.Stack.N != 8 {
		t.Fatalf("unexpected shape: %+v", fast)
	}
	if d := fast.Stack.Estimated() - exact.Stack.Estimated(); d > 3.6 || d < -3.6 {
		t.Fatalf("fast estimate %v too far from exact %v",
			fast.Stack.Estimated(), exact.Stack.Estimated())
	}
	again, err := MeasureFast("swaptions_parsec_small", 8)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stack != fast.Stack {
		t.Fatal("MeasureFast is not deterministic")
	}
	if _, err := MeasureFast("no-such-benchmark", 4); err == nil {
		t.Fatal("unknown benchmark accepted")
	}

	w, err := ParseWorkload([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := MeasureSpecFast(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Benchmark != "roottest" || sf.Stack.N != 4 {
		t.Fatalf("unexpected spec result: %+v", sf)
	}
}

func TestMeasureAllBatch(t *testing.T) {
	benches := []string{"swaptions_parsec_small", "blackscholes_parsec_small"}
	results, err := MeasureAll(benches, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	// Declared order: benchmark-major, then thread count.
	want := []struct {
		bench   string
		threads int
	}{
		{"swaptions_parsec_small", 2},
		{"swaptions_parsec_small", 4},
		{"blackscholes_parsec_small", 2},
		{"blackscholes_parsec_small", 4},
	}
	for i, w := range want {
		if results[i].Benchmark != w.bench || results[i].Threads != w.threads {
			t.Fatalf("result %d = %s x%d, want %s x%d",
				i, results[i].Benchmark, results[i].Threads, w.bench, w.threads)
		}
		if results[i].Stack.ActualSpeedup <= 1 {
			t.Fatalf("%s x%d speedup %v", w.bench, w.threads, results[i].Stack.ActualSpeedup)
		}
	}
}

func TestMeasureAllUnknownBenchmark(t *testing.T) {
	if _, err := MeasureAll([]string{"no-such-benchmark"}, []int{2}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestFigurePathSmoke is the CI smoke gate: it exercises the end-to-end
// figure path (cell declaration, sweep engine, simulator, stack assembly,
// text rendering) on a grid small enough for every PR.
func TestFigurePathSmoke(t *testing.T) {
	res, err := MeasureAll([]string{"swaptions_parsec_small"}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if out := Render(res[0]); !strings.Contains(out, "legend:") {
		t.Fatalf("render output incomplete:\n%s", out)
	}
}

func TestHardwareCost(t *testing.T) {
	hw := HardwareCost()
	if hw.InterferenceBytes() != 952 || hw.SpinTableBytes != 217 {
		t.Fatalf("budget mismatch: %+v", hw)
	}
}
