package speedupstack

import (
	"strings"
	"testing"
)

func TestBenchmarksListed(t *testing.T) {
	names := Benchmarks()
	if len(names) != 28 {
		t.Fatalf("benchmarks = %d, want 28", len(names))
	}
}

func TestMeasureUnknownBenchmark(t *testing.T) {
	if _, err := Measure("no-such-benchmark", 4); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMeasureAndRender(t *testing.T) {
	res, err := Measure("swaptions_parsec_small", 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 16 || res.Stack.N != 16 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	if res.Stack.ActualSpeedup <= 1 {
		t.Fatalf("actual speedup %v", res.Stack.ActualSpeedup)
	}
	out := Render(res)
	if !strings.Contains(out, "swaptions_parsec_small") || !strings.Contains(out, "legend:") {
		t.Fatalf("render output incomplete:\n%s", out)
	}
	tbl := Table(res)
	if !strings.Contains(tbl, "yield") {
		t.Fatalf("table output incomplete:\n%s", tbl)
	}
	if tops := TopBottlenecks(res, 3); len(tops) == 0 {
		t.Fatal("no bottlenecks reported for a skewed benchmark")
	}
}

func TestHardwareCost(t *testing.T) {
	hw := HardwareCost()
	if hw.InterferenceBytes() != 952 || hw.SpinTableBytes != 217 {
		t.Fatalf("budget mismatch: %+v", hw)
	}
}
