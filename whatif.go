package speedupstack

import (
	"context"
	"io"
	"runtime"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/whatif"
)

// WhatIfReport is the causal what-if engine's answer for one (workload,
// threads) cell: every applicable catalog intervention's predicted speedup
// gain — the Section 3/4 estimator re-evaluated with the intervention's
// stack components virtually scaled — validated by re-simulating the
// concretely mutated workload or machine, ranked by predicted gain.
type WhatIfReport = whatif.Report

// WhatIfPrediction is one evaluated intervention: predicted and
// re-simulated speedups, their gains, and the prediction error normalized
// the paper's way ((predicted − actual)/N, Formula (6)).
type WhatIfPrediction = whatif.Prediction

// WhatIfIntervention is one catalog entry: a named, virtually-scalable
// change to the workload or the machine.
type WhatIfIntervention = whatif.Intervention

// Catalog intervention IDs, usable with WhatIf's variadic selection.
const (
	WhatIfHalveLockHold   = whatif.HalveLockHold
	WhatIfRemoveImbalance = whatif.RemoveImbalance
	WhatIfDoubleLLC       = whatif.DoubleLLC
	WhatIfHalveMemLatency = whatif.HalveMemLatency
)

// MinWhatIfThreads is the smallest thread count the what-if engine accepts.
const MinWhatIfThreads = exp.MinWhatIfThreads

// Interventions returns the what-if catalog, in presentation order.
func Interventions() []WhatIfIntervention { return whatif.Catalog() }

// WhatIf runs the causal what-if analysis for a registered benchmark
// analogue at a thread count on the default machine. interventions selects
// catalog entries by ID; none means the full catalog. Interventions that do
// not apply to the workload are skipped.
func WhatIf(benchmark string, threads int, interventions ...string) (WhatIfReport, error) {
	return WhatIfContext(context.Background(), benchmark, threads, interventions...)
}

// WhatIfContext is WhatIf with cancellation.
func WhatIfContext(ctx context.Context, benchmark string, threads int, interventions ...string) (WhatIfReport, error) {
	return runWhatIf(ctx, exp.Cell{Bench: benchmark, Threads: threads}, interventions)
}

// WhatIfSpec is WhatIf for a custom workload: the same predictions and
// re-simulated validations for a spec that need not be registered, sharing
// — like every other entry point — the fingerprint-keyed simulation
// identity.
func WhatIfSpec(w Workload, threads int, interventions ...string) (WhatIfReport, error) {
	return WhatIfSpecContext(context.Background(), w, threads, interventions...)
}

// WhatIfSpecContext is WhatIfSpec with cancellation.
func WhatIfSpecContext(ctx context.Context, w Workload, threads int, interventions ...string) (WhatIfReport, error) {
	return runWhatIf(ctx, exp.Cell{Spec: &w, Threads: threads}, interventions)
}

// runWhatIf executes the what-if engine on a fresh all-CPU default-machine
// engine — the shared back end of WhatIf and WhatIfSpec.
func runWhatIf(ctx context.Context, cell exp.Cell, ids []string) (WhatIfReport, error) {
	e := exp.NewEngine(sim.Default(), exp.WithWorkers(runtime.NumCPU()))
	return e.WhatIf(ctx, exp.Request{Cell: cell}, ids)
}

// EncodeWhatIf writes a WhatIfReport to w in the requested format:
// FormatText is the human-readable ranking, FormatJSON the report object,
// FormatCSV one record per prediction, and FormatSVG the baseline and
// per-intervention re-simulated stacks as one bar chart.
func EncodeWhatIf(w io.Writer, f Format, rep WhatIfReport) error {
	return whatif.Encode(w, f, rep)
}
