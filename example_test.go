package speedupstack_test

import (
	"fmt"

	speedupstack "repro"
)

// ExampleMeasure runs one benchmark analogue and asks the accounting
// hardware what limits its scaling. The simulator is deterministic, so the
// numbers are stable across runs and machines.
func ExampleMeasure() {
	r, err := speedupstack.Measure("cholesky_splash2", 16)
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimated %.2fx, measured %.2fx on %d cores\n",
		r.Stack.Estimated(), r.Stack.ActualSpeedup, r.Threads)
	fmt.Println("bottlenecks:", speedupstack.TopBottlenecks(r, 2))
	// Output:
	// estimated 6.61x, measured 4.38x on 16 cores
	// bottlenecks: [spinning memory]
}

// ExampleMeasureAll measures a (benchmark, thread-count) grid in one batch:
// shared work is deduplicated (one sequential reference per benchmark) and
// the simulations fan out over all CPUs.
func ExampleMeasureAll() {
	rs, err := speedupstack.MeasureAll(
		[]string{"radix_splash2", "fft_splash2"}, []int{4, 8})
	if err != nil {
		panic(err)
	}
	for _, r := range rs {
		fmt.Printf("%-14s x%-2d actual %5.2f\n",
			r.Benchmark, r.Threads, r.Stack.ActualSpeedup)
	}
	// Output:
	// radix_splash2  x4  actual  3.41
	// radix_splash2  x8  actual  6.35
	// fft_splash2    x4  actual  3.17
	// fft_splash2    x8  actual  5.75
}

// ExampleRender draws a measured stack as ASCII art; Encode produces the
// same report as JSON, CSV or a standalone SVG chart.
func ExampleRender() {
	r, err := speedupstack.Measure("cholesky_splash2", 16)
	if err != nil {
		panic(err)
	}
	fmt.Print(speedupstack.Render(r))
	// Output:
	// cholesky_splash2             N=16  est= 6.61 act= 4.38 |#######################+++mmmmmmmmmmmmmmssssssssssssssyyyyyyyyy |
	// legend: #=base speedup  +=positive LLC  .=net negative LLC  m=memory  s=spinning  y=yielding  i=imbalance
}

// ExampleMeasureIntervals time-resolves a phase-structured run: each
// interval carries exact integer-cycle components that sum to the
// aggregate stack, so phase-local bottlenecks (here: barrier convergence
// at the end of each of bodytrack's six phases) become visible.
func ExampleMeasureIntervals() {
	ts, err := speedupstack.MeasureIntervals("bodytrack_parsec_small", 16, 6)
	if err != nil {
		panic(err)
	}
	var sum speedupstack.IntervalComponents
	for _, iv := range ts.Intervals {
		sum = sum.Add(iv.Components)
	}
	fmt.Printf("%d intervals over %d ops; exact sum: %v\n",
		len(ts.Intervals), ts.TotalOps, sum == ts.Aggregate)
	// Output:
	// 6 intervals over 411196 ops; exact sum: true
}
