package scaling

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stack"
	"repro/internal/workload"
)

// amdahlPoints samples an exact Amdahl curve.
func amdahlPoints(sigma float64, threads ...int) []Point {
	pts := make([]Point, len(threads))
	for i, n := range threads {
		pts[i] = Point{Threads: n, Speedup: float64(n) / (1 + sigma*float64(n-1))}
	}
	return pts
}

// uslPoints samples an exact USL curve.
func uslPoints(sigma, kappa float64, threads ...int) []Point {
	pts := make([]Point, len(threads))
	for i, n := range threads {
		nf := float64(n)
		pts[i] = Point{Threads: n, Speedup: nf / (1 + sigma*(nf-1) + kappa*nf*(nf-1))}
	}
	return pts
}

func TestFitTooFewPoints(t *testing.T) {
	cases := [][]Point{
		nil,
		{{1, 1}},
		{{1, 1}, {16, 8}},          // below MinPoints
		{{1, 1}, {1, 1}, {16, 8}},  // duplicate thread count
		{{1, 1}, {16, 8}, {8, 6}},  // not ascending
		{{1, 1}, {2, 0}, {4, 3}},   // non-positive speedup
		{{1, 1}, {2, 1.9}, {2, 2}}, // only one distinct multi-threaded count
	}
	for i, pts := range cases {
		if _, err := FitAmdahl(pts); err == nil {
			t.Errorf("case %d: FitAmdahl accepted %v", i, pts)
		}
		if _, err := FitUSL(pts); err == nil {
			t.Errorf("case %d: FitUSL accepted %v", i, pts)
		}
		if _, err := Build("x", nil, pts, nil); err == nil {
			t.Errorf("case %d: Build accepted %v", i, pts)
		}
	}
}

// TestFitPerfectlyLinear is the κ→0 edge: ideal data must fit σ=0, κ=0 with
// no division blowup, an unbounded N* (encoded as 0), and classify linear.
func TestFitPerfectlyLinear(t *testing.T) {
	pts := amdahlPoints(0, 1, 2, 4, 8, 16)
	a, err := Build("ideal", nil, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Amdahl.Sigma != 0 || a.USL.Sigma != 0 || a.USL.Kappa != 0 {
		t.Errorf("ideal data fit sigma=%v/%v kappa=%v, want zeros", a.Amdahl.Sigma, a.USL.Sigma, a.USL.Kappa)
	}
	if a.NStar != 0 {
		t.Errorf("NStar = %v, want 0 (unbounded)", a.NStar)
	}
	for _, f := range []Fit{a.Amdahl, a.USL} {
		if math.IsNaN(f.R2) || math.IsInf(f.R2, 0) || f.R2 != 1 || f.RMSE != 0 {
			t.Errorf("ideal fit quality R2=%v RMSE=%v, want 1 and 0", f.R2, f.RMSE)
		}
	}
	if a.Class != ClassLinear {
		t.Errorf("class = %s, want linear", a.Class)
	}
}

func TestFitRecoversAmdahl(t *testing.T) {
	const sigma = 0.08
	f, err := FitAmdahl(amdahlPoints(sigma, 1, 2, 4, 8, 16))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Sigma-sigma) > 1e-9 {
		t.Errorf("recovered sigma %v, want %v", f.Sigma, sigma)
	}
	u, err := FitUSL(amdahlPoints(sigma, 1, 2, 4, 8, 16))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.Sigma-sigma) > 1e-9 || math.Abs(u.Kappa) > 1e-12 {
		t.Errorf("USL on Amdahl data: sigma=%v kappa=%v, want %v and 0", u.Sigma, u.Kappa, sigma)
	}
}

func TestFitRecoversUSL(t *testing.T) {
	const sigma, kappa = 0.05, 0.004
	f, err := FitUSL(uslPoints(sigma, kappa, 1, 2, 4, 8, 16, 32))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Sigma-sigma) > 1e-9 || math.Abs(f.Kappa-kappa) > 1e-9 {
		t.Errorf("recovered sigma=%v kappa=%v, want %v and %v", f.Sigma, f.Kappa, sigma, kappa)
	}
	wantN := math.Sqrt((1 - sigma) / kappa)
	if math.Abs(f.NStar()-wantN) > 1e-6 {
		t.Errorf("NStar = %v, want %v", f.NStar(), wantN)
	}
	if f.R2 < 0.9999 {
		t.Errorf("exact data R2 = %v", f.R2)
	}
}

// TestFitNegativeScaling: a curve that turns over classifies negative and
// still produces a constrained, finite fit.
func TestFitNegativeScaling(t *testing.T) {
	pts := []Point{{1, 1}, {2, 1.8}, {4, 2.8}, {8, 2.2}, {16, 1.2}}
	a, err := Build("turnover", nil, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Class != ClassNegative {
		t.Errorf("class = %s, want negative", a.Class)
	}
	if a.PeakThreads != 4 || a.PeakSpeedup != 2.8 {
		t.Errorf("peak = %.2f@%d, want 2.80@4", a.PeakSpeedup, a.PeakThreads)
	}
	if a.USL.Kappa <= 0 {
		t.Errorf("turnover curve fit kappa=%v, want > 0", a.USL.Kappa)
	}
	if a.NStar <= 0 || a.NStar >= 16 {
		t.Errorf("NStar = %v, want inside the swept range", a.NStar)
	}
	if a.USL.Sigma < 0 || a.USL.Sigma > 1 {
		t.Errorf("sigma=%v outside [0,1]", a.USL.Sigma)
	}
}

// TestFitSuperlinear: speedup above ideal drives the unconstrained solution
// negative; the constrained refit must stay in the feasible region.
func TestFitSuperlinear(t *testing.T) {
	pts := []Point{{1, 1}, {2, 2.2}, {4, 4.4}, {8, 8.8}}
	for _, fit := range []func([]Point) (Fit, error){FitAmdahl, FitUSL} {
		f, err := fit(pts)
		if err != nil {
			t.Fatal(err)
		}
		if f.Sigma < 0 || f.Sigma > 1 || f.Kappa < 0 {
			t.Errorf("superlinear data fit %+v escapes constraints", f)
		}
	}
}

func TestClassifyBoundaries(t *testing.T) {
	cases := []struct {
		pts  []Point
		want Class
	}{
		{amdahlPoints(0.02, 1, 2, 4, 8, 16), ClassLinear}, // S16=12.3, eff 0.77
		{amdahlPoints(0.2, 1, 2, 4, 8, 16), ClassSaturated},
		{[]Point{{1, 1}, {2, 1.9}, {4, 3.0}, {8, 3.2}, {16, 2.0}}, ClassNegative},
		// Exactly the paper's good-scaling boundary: 10x at 16.
		{[]Point{{1, 1}, {2, 2}, {4, 3.9}, {8, 7}, {16, 10}}, ClassLinear},
	}
	for i, c := range cases {
		if got := Classify(c.pts); got != c.want {
			t.Errorf("case %d: Classify = %s, want %s", i, got, c.want)
		}
	}
}

func TestSigmaFromStack(t *testing.T) {
	// A stack losing fraction s of capacity to serialization implies
	// sigma = s/((1-s)(N-1)); check the round trip through an Amdahl curve:
	// at sigma=0.1, N=16, the lost fraction is sigma*15/(1+sigma*15) = 0.6.
	st := core.Stack{N: 16, Tp: 1000, Components: core.Components{Spin: 3600, Yield: 3600, Imbalance: 2400}}
	got := SigmaFromStack(st)
	if math.Abs(got-0.1) > 1e-9 {
		t.Errorf("SigmaFromStack = %v, want 0.1", got)
	}
	if SigmaFromStack(core.Stack{N: 1, Tp: 100}) != 0 {
		t.Error("single-threaded stack should imply sigma 0")
	}
	over := core.Stack{N: 2, Tp: 100, Components: core.Components{Spin: 300}}
	if s := SigmaFromStack(over); s != 1 {
		t.Errorf("overloaded stack sigma = %v, want clamp to 1", s)
	}
}

func TestBuildCrossCheckAndRecommendations(t *testing.T) {
	b, ok := workload.ByName("cholesky_splash2")
	if !ok {
		t.Fatal("cholesky_splash2 not registered")
	}
	pts := amdahlPoints(0.12, 1, 2, 4, 8, 16)
	// A spinning-dominated stack whose implied sigma (~0.117) matches the fit.
	st := core.Stack{N: 16, Tp: 1000, Components: core.Components{Spin: 8000, Yield: 1500, Imbalance: 500}}
	a, err := Build(b.FullName(), &b.Spec, pts, &st)
	if err != nil {
		t.Fatal(err)
	}
	if !a.SigmaAgrees {
		t.Errorf("sigma %.4f vs stack %.4f should agree", a.Amdahl.Sigma, a.SigmaStack)
	}
	if a.Bottleneck != stack.CompSpinning {
		t.Errorf("bottleneck = %q, want spinning", a.Bottleneck)
	}
	if len(a.Recommendations) == 0 {
		t.Fatal("no recommendations for a spinning-dominated stack")
	}
	top := a.Recommendations[0]
	if top.Component != stack.CompSpinning {
		t.Errorf("top recommendation component = %q, want spinning", top.Component)
	}
	if top.Field == "" || top.Action == "" || top.Detail == "" {
		t.Errorf("recommendation missing fields: %+v", top)
	}
	if top.Impact < a.Recommendations[len(a.Recommendations)-1].Impact {
		t.Error("recommendations not ranked by impact")
	}
	// Disagreement: a steep serialized-looking curve whose stack blames
	// memory instead — the fitted sigma has no serialization to match.
	memSt := core.Stack{N: 16, Tp: 1000, Components: core.Components{NegMem: 9000}}
	d, err := Build(b.FullName(), &b.Spec, amdahlPoints(0.25, 1, 2, 4, 8, 16), &memSt)
	if err != nil {
		t.Fatal(err)
	}
	if d.SigmaAgrees {
		t.Errorf("memory-only stack (implied sigma %.4f) should disagree with fitted %.4f", d.SigmaStack, d.Amdahl.Sigma)
	}
	if d.Bottleneck != stack.CompMemory {
		t.Errorf("bottleneck = %q, want memory", d.Bottleneck)
	}
}

func TestRecommendationFieldsPerFamily(t *testing.T) {
	cases := []struct {
		bench     string
		component string
		wantField string
	}{
		{"cholesky_splash2", stack.CompSpinning, "dispatch_instr"}, // task queue
		{"ferret_parsec_small", stack.CompYielding, "stages["},     // pipeline serial stage
		{"lud_rodinia", stack.CompYielding, "effective_parallelism"},
		{"srad_rodinia", stack.CompMemory, "instr_per_access"},
		{"fft_splash2", stack.CompCache, "array_bytes"},
	}
	for _, c := range cases {
		b, ok := workload.ByName(c.bench)
		if !ok {
			t.Fatalf("%s not registered", c.bench)
		}
		r := recommendOne(&b.Spec, c.component, Fit{Sigma: 0.1, Kappa: 0.005})
		if !strings.HasPrefix(r.Field, c.wantField) {
			t.Errorf("%s/%s: field %q, want prefix %q", c.bench, c.component, r.Field, c.wantField)
		}
		if r.Action == "" || r.Detail == "" {
			t.Errorf("%s/%s: empty action or detail", c.bench, c.component)
		}
	}
	// Spec-free advice still names the component's generic fix.
	g := recommendOne(nil, stack.CompSpinning, Fit{})
	if g.Field != "" || g.Action == "" {
		t.Errorf("generic recommendation: %+v", g)
	}
}

func TestEncodeFormats(t *testing.T) {
	b, _ := workload.ByName("lud_rodinia")
	st := core.Stack{N: 16, Tp: 1000, Components: core.Components{Yield: 6000, Imbalance: 1000}}
	a, err := Build(b.FullName(), &b.Spec, amdahlPoints(0.1, 1, 2, 4, 8, 16), &st)
	if err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := Encode(&txt, stack.FormatText, a); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lud_rodinia", "sigma", "recommendations", "n*"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, txt.String())
		}
	}
	var js bytes.Buffer
	if err := Encode(&js, stack.FormatJSON, a); err != nil {
		t.Fatal(err)
	}
	var decoded Advice
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if decoded.Benchmark != a.Benchmark || decoded.Class != a.Class ||
		len(decoded.Recommendations) != len(a.Recommendations) {
		t.Error("JSON round trip lost fields")
	}
	var csvb bytes.Buffer
	if err := Encode(&csvb, stack.FormatCSV, a); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvb.String()), "\n")
	if len(lines) != 1+len(a.Points) {
		t.Errorf("CSV has %d lines, want %d", len(lines), 1+len(a.Points))
	}
	if !strings.HasPrefix(lines[0], "benchmark,threads,measured") {
		t.Errorf("CSV header: %s", lines[0])
	}
	var svg bytes.Buffer
	if err := Encode(&svg, stack.FormatSVG, a); err != nil {
		t.Fatal(err)
	}
	s := svg.String()
	if !strings.HasPrefix(s, "<svg ") || !strings.HasSuffix(s, "</svg>\n") {
		t.Error("SVG output is not a standalone document")
	}
	for _, want := range []string{"measured", "amdahl", "usl", "circle"} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if err := Encode(&svg, stack.Format("nope"), a); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestDegenerateSweepTyped pins the typed failure contract: a sweep the
// fitter cannot use — empty, or effectively N=1-only — fails every entry
// point with an error matching ErrDegenerateSweep, so callers (the advise
// endpoint, the experiments section) can branch on it instead of string
// matching, and no Inf/NaN Advice ever reaches an encoder.
func TestDegenerateSweepTyped(t *testing.T) {
	degenerate := [][]Point{
		nil,
		{{1, 1}},         // the N=1-only sweep
		{{1, 1}, {2, 2}}, // one multi-threaded point: USL is underdetermined
	}
	for i, pts := range degenerate {
		for name, fit := range map[string]func([]Point) (Fit, error){
			"FitAmdahl": FitAmdahl, "FitUSL": FitUSL,
		} {
			if _, err := fit(pts); !errors.Is(err, ErrDegenerateSweep) {
				t.Errorf("case %d: %s error %v does not match ErrDegenerateSweep", i, name, err)
			}
		}
		if _, err := Build("x", nil, pts, nil); !errors.Is(err, ErrDegenerateSweep) {
			t.Errorf("case %d: Build error %v does not match ErrDegenerateSweep", i, err)
		}
	}
	// Malformed-but-sufficient sweeps are a different failure: they must NOT
	// claim to be degenerate.
	if _, err := FitAmdahl([]Point{{1, 1}, {16, 8}, {8, 6}}); err == nil || errors.Is(err, ErrDegenerateSweep) {
		t.Errorf("non-ascending sweep error %v should not match ErrDegenerateSweep", err)
	}
}

// TestEncodeRecommendationWhatIfLine: a recommendation carrying an attached
// what-if prediction renders it in the text report; one without stays
// silent.
func TestEncodeRecommendationWhatIfLine(t *testing.T) {
	b, _ := workload.ByName("lud_rodinia")
	st := core.Stack{N: 16, Tp: 1000, Components: core.Components{Yield: 6000, Imbalance: 1000}}
	a, err := Build(b.FullName(), &b.Spec, amdahlPoints(0.1, 1, 2, 4, 8, 16), &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Recommendations) == 0 {
		t.Fatal("no recommendations")
	}
	var plain bytes.Buffer
	if err := Encode(&plain, stack.FormatText, a); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "what-if:") {
		t.Error("what-if line rendered without an attached prediction")
	}
	a.Recommendations[0].Intervention = "remove_imbalance"
	a.Recommendations[0].PredictedGain = 1.25
	var withIv bytes.Buffer
	if err := Encode(&withIv, stack.FormatText, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(withIv.String(), "what-if: remove_imbalance predicts +1.25 speedup") {
		t.Errorf("attached prediction not rendered:\n%s", withIv.String())
	}
	// And the fields survive the JSON wire form.
	var js bytes.Buffer
	if err := Encode(&js, stack.FormatJSON, a); err != nil {
		t.Fatal(err)
	}
	var decoded Advice
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Recommendations[0].Intervention != "remove_imbalance" ||
		decoded.Recommendations[0].PredictedGain != 1.25 {
		t.Error("intervention fields lost in JSON round trip")
	}
}
