// Package scaling is the scaling-model advisor: it fits analytic scaling
// models to a measured thread sweep and turns the fitted parameters, together
// with the speedup stack at the top of the sweep, into an actionable
// diagnosis.
//
// Two models are fitted, both by deterministic closed-form least squares (no
// iterative optimizer, no randomness — the same sweep always produces the
// same fit):
//
//   - Amdahl's law with serial fraction σ:
//     S(N) = N / (1 + σ(N−1))
//   - Gunther's Universal Scalability Law (USL) with contention σ and
//     coherency/crosstalk κ (PAPERS.md: "A Methodology for Optimizing
//     Multithreaded System Scalability on Multi-cores"):
//     S(N) = N / (1 + σ(N−1) + κN(N−1))
//
// Both linearize exactly: y = N/S − 1 equals σ(N−1) for Amdahl and
// σ(N−1) + κN(N−1) for the USL, so the coefficients are the solution of a
// through-origin linear regression (one- and two-regressor normal equations).
// From the USL fit the advisor derives N* = sqrt((1−σ)/κ), the thread count
// where adding threads stops paying (dS/dN = 0), classifies the sweep as
// linear / saturated / negative, and cross-checks the fitted serial fraction
// against the speedup stack's serialization components (spinning + yielding
// + imbalance) — the two views of the same run should agree when
// synchronization is what limits scaling, and a disagreement beyond
// SigmaAgreementBound flags that the scaling loss lives elsewhere
// (cache/memory interference) than the curve shape alone suggests.
package scaling

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/stack"
	"repro/internal/workload"
)

// ErrDegenerateSweep tags sweeps the fitter cannot use: too few points, or
// an (effectively) single-threaded sweep with fewer than two multi-threaded
// samples — the USL's two-parameter regression is underdetermined there,
// and forcing a fit would push Inf/NaN coefficients into every encoder.
// Callers branch on it with errors.Is; the message carries the specifics.
var ErrDegenerateSweep = errors.New("degenerate sweep")

// Point is one measured sweep sample: the thread count and the measured
// actual speedup (Ts/Tp) at that count.
type Point struct {
	Threads int     `json:"threads"`
	Speedup float64 `json:"speedup"`
}

// Fit is one fitted scaling model. Kappa is zero for the Amdahl fit (the
// model has no coherency term).
type Fit struct {
	// Sigma is the serial/contention fraction in [0, 1].
	Sigma float64 `json:"sigma"`
	// Kappa is the USL coherency/crosstalk coefficient, >= 0.
	Kappa float64 `json:"kappa"`
	// R2 is the coefficient of determination of the fit over the measured
	// speedups (1 = perfect); RMSE the root-mean-square residual in speedup
	// units.
	R2   float64 `json:"r2"`
	RMSE float64 `json:"rmse"`
}

// Speedup evaluates the fitted model at a (possibly fractional) thread count.
func (f Fit) Speedup(n float64) float64 {
	return n / (1 + f.Sigma*(n-1) + f.Kappa*n*(n-1))
}

// NStar returns the diminishing-returns thread count sqrt((1−σ)/κ) — the
// maximum of the fitted USL curve. It returns 0 when κ is zero (the model
// never turns over: no finite optimum exists).
func (f Fit) NStar() float64 {
	if f.Kappa <= 0 {
		return 0
	}
	return math.Sqrt((1 - f.Sigma) / f.Kappa)
}

// Class buckets a measured sweep by its shape.
type Class string

// The advisor's sweep classes. ClassLinear means the top of the sweep still
// runs at high parallel efficiency (the paper's "good scaling" benchmarks),
// ClassSaturated means speedup has flattened well below ideal, and
// ClassNegative means adding threads made the program slower (the measured
// curve turns over).
const (
	ClassLinear    Class = "linear"
	ClassSaturated Class = "saturated"
	ClassNegative  Class = "negative"
)

// Classification thresholds. They are part of the advisor's contract and are
// asserted registry-wide in tests.
const (
	// LinearEfficiency is the parallel efficiency (speedup / threads) at the
	// top of the sweep at or above which a sweep classifies as linear. The
	// value aligns with the paper's Figure 6 "good scaling" boundary:
	// 10x at 16 threads.
	LinearEfficiency = 0.625
	// NegativeDropFrac classifies a sweep as negative when the speedup at
	// the top of the sweep has fallen below this fraction of the measured
	// peak — the curve demonstrably turned over. Saturated registry
	// analogues flatten to 0.90–0.95 of their peak, so the boundary sits
	// below that plateau band.
	NegativeDropFrac = 0.85
	// SigmaAgreementBound is the documented cross-check bound: the fitted
	// serial fraction and the stack-implied serial fraction (from spinning +
	// yielding + imbalance) agree when they differ by at most this much.
	// The comparison uses the Amdahl σ, not the USL one: both sides measure
	// *total* serialization, which the USL deliberately splits between σ and
	// κ. Across the registry the synchronization-dominated analogues land
	// within 0.135 of the stack view while the memory-saturated one is off
	// by 0.18+, so 0.15 separates the two regimes. Beyond it the advisor
	// flags that the curve's shape is not explained by serialization alone.
	SigmaAgreementBound = 0.15
)

// MinPoints is the smallest sweep the fitter accepts: the two-parameter USL
// needs at least two multi-threaded samples, plus the single-threaded anchor.
const MinPoints = 3

// Recommendation is one ranked, spec-field-level suggestion: which workload
// knob to turn, what to do with it, and how much speedup the associated
// stack component currently costs.
type Recommendation struct {
	// Component is the speedup-stack component driving the recommendation
	// (the stack package's Figure 5/6 vocabulary).
	Component string `json:"component"`
	// Field is the workload-spec field (JSON name) the action targets.
	Field string `json:"field"`
	// Action is the one-line imperative summary; Detail explains why,
	// quoting the measured and fitted numbers.
	Action string `json:"action"`
	Detail string `json:"detail"`
	// Impact is the component's current cost in speedup units at the top of
	// the sweep — the upper bound on what fixing it can recover.
	Impact float64 `json:"impact_speedup_units"`
	// Intervention and PredictedGain connect the recommendation to the
	// what-if catalog (internal/whatif): the applicable intervention
	// targeting this component, and its predicted speedup gain from
	// re-evaluating the estimator with the component scaled. They are
	// filled by the exp layer (which owns both packages) and zero-valued
	// when no catalog intervention applies to the workload.
	Intervention  string  `json:"intervention,omitempty"`
	PredictedGain float64 `json:"predicted_gain,omitempty"`
}

// Advice is the advisor's full answer for one workload sweep.
type Advice struct {
	// Benchmark labels the analyzed workload; MaxThreads is the top of the
	// measured sweep.
	Benchmark  string `json:"benchmark"`
	MaxThreads int    `json:"max_threads"`
	// Points is the measured sweep, ascending by thread count.
	Points []Point `json:"points"`
	// Amdahl and USL are the fitted models.
	Amdahl Fit `json:"amdahl"`
	USL    Fit `json:"usl"`
	// NStar is the USL diminishing-returns thread count sqrt((1−σ)/κ);
	// 0 means the fitted curve never turns over.
	NStar float64 `json:"n_star"`
	// Class is the sweep classification (linear / saturated / negative).
	Class Class `json:"classification"`
	// PeakSpeedup and PeakThreads locate the measured maximum.
	PeakSpeedup float64 `json:"peak_speedup"`
	PeakThreads int     `json:"peak_threads"`
	// SigmaStack is the serial fraction implied by the speedup stack's
	// spinning + yielding + imbalance components at MaxThreads, and
	// SigmaAgrees whether it matches the fitted Amdahl sigma within
	// SigmaAgreementBound. Both are zero-valued when no stack was attached.
	SigmaStack  float64 `json:"sigma_stack"`
	SigmaAgrees bool    `json:"sigma_agrees"`
	// Bottleneck names the largest stack component at MaxThreads ("" when
	// nothing is above the negligibility threshold or no stack was attached).
	Bottleneck string `json:"bottleneck,omitempty"`
	// Recommendations are ranked largest-impact first.
	Recommendations []Recommendation `json:"recommendations"`
}

// validatePoints checks a sweep is fittable: enough points, positive
// speedups, strictly ascending distinct thread counts, and at least two
// multi-threaded samples (the USL has two parameters).
func validatePoints(points []Point) error {
	if len(points) < MinPoints {
		return fmt.Errorf("scaling: %w: need at least %d sweep points to fit, got %d",
			ErrDegenerateSweep, MinPoints, len(points))
	}
	multi := 0
	for i, p := range points {
		if p.Threads < 1 {
			return fmt.Errorf("scaling: point %d has thread count %d", i, p.Threads)
		}
		if !(p.Speedup > 0) {
			return fmt.Errorf("scaling: point %d (%d threads) has non-positive speedup %v", i, p.Threads, p.Speedup)
		}
		if i > 0 && p.Threads <= points[i-1].Threads {
			return fmt.Errorf("scaling: thread counts must be strictly ascending (point %d: %d after %d)",
				i, p.Threads, points[i-1].Threads)
		}
		if p.Threads > 1 {
			multi++
		}
	}
	if multi < 2 {
		// The N=1-only (or nearly so) sweep: with fewer than two
		// multi-threaded samples both regressors vanish, sxx in FitAmdahl
		// (and the USL normal equations) would divide by zero, and the
		// downstream σ = s/((1−s)(N−1)) cross-check has no N>1 anchor.
		return fmt.Errorf("scaling: %w: need at least 2 multi-threaded points to fit contention, got %d",
			ErrDegenerateSweep, multi)
	}
	return nil
}

// FitAmdahl fits S(N) = N/(1+σ(N−1)) by least squares on the linearized
// form y = σ(N−1), y = N/S − 1. The single-threaded anchor contributes
// nothing to the regression (its regressor is zero) but counts toward the
// fit quality.
func FitAmdahl(points []Point) (Fit, error) {
	if err := validatePoints(points); err != nil {
		return Fit{}, err
	}
	var sxx, sxy float64
	for _, p := range points {
		x := float64(p.Threads - 1)
		y := float64(p.Threads)/p.Speedup - 1
		sxx += x * x
		sxy += x * y
	}
	sigma := clamp01(sxy / sxx)
	f := Fit{Sigma: sigma}
	f.R2, f.RMSE = quality(f, points)
	return f, nil
}

// FitUSL fits S(N) = N/(1+σ(N−1)+κN(N−1)) by two-regressor least squares on
// y = σx1 + κx2 with x1 = N−1, x2 = N(N−1). Negative unconstrained
// solutions are projected onto the feasible region (σ ∈ [0,1], κ ≥ 0) by
// refitting the remaining coefficient alone, keeping the fit deterministic.
func FitUSL(points []Point) (Fit, error) {
	if err := validatePoints(points); err != nil {
		return Fit{}, err
	}
	var s11, s12, s22, s1y, s2y float64
	for _, p := range points {
		x1 := float64(p.Threads - 1)
		x2 := float64(p.Threads) * x1
		y := float64(p.Threads)/p.Speedup - 1
		s11 += x1 * x1
		s12 += x1 * x2
		s22 += x2 * x2
		s1y += x1 * y
		s2y += x2 * y
	}
	det := s11*s22 - s12*s12
	var sigma, kappa float64
	if det > 1e-12*s11*s22 {
		sigma = (s1y*s22 - s2y*s12) / det
		kappa = (s2y*s11 - s1y*s12) / det
	} else {
		// Degenerate regressors (in practice: exactly two distinct
		// multi-threaded counts behaving identically); fall back to Amdahl.
		sigma, kappa = s1y/s11, 0
	}
	if kappa < 0 {
		// No coherency term: the curve bends the Amdahl way only.
		sigma, kappa = s1y/s11, 0
	}
	if sigma < 0 {
		// Pure-coherency curve: serial fraction pinned at zero.
		sigma, kappa = 0, s2y/s22
		if kappa < 0 {
			kappa = 0
		}
	}
	f := Fit{Sigma: clamp01(sigma), Kappa: kappa}
	f.R2, f.RMSE = quality(f, points)
	return f, nil
}

// quality computes R² and RMSE of a fit over the measured speedups.
func quality(f Fit, points []Point) (r2, rmse float64) {
	var mean float64
	for _, p := range points {
		mean += p.Speedup
	}
	mean /= float64(len(points))
	var ssRes, ssTot float64
	for _, p := range points {
		d := p.Speedup - f.Speedup(float64(p.Threads))
		ssRes += d * d
		t := p.Speedup - mean
		ssTot += t * t
	}
	rmse = math.Sqrt(ssRes / float64(len(points)))
	if ssTot == 0 {
		// A flat sweep has no variance to explain; a zero-residual fit is
		// perfect, anything else is not.
		if ssRes == 0 {
			return 1, 0
		}
		return 0, rmse
	}
	return 1 - ssRes/ssTot, rmse
}

// Classify buckets a validated sweep: negative when the top of the sweep has
// fallen below NegativeDropFrac of the measured peak, linear when the top
// still runs at LinearEfficiency or better, saturated otherwise.
func Classify(points []Point) Class {
	peak := points[0]
	for _, p := range points[1:] {
		if p.Speedup > peak.Speedup {
			peak = p
		}
	}
	last := points[len(points)-1]
	switch {
	case last.Speedup < NegativeDropFrac*peak.Speedup:
		return ClassNegative
	case last.Speedup/float64(last.Threads) >= LinearEfficiency:
		return ClassLinear
	default:
		return ClassSaturated
	}
}

// SigmaFromStack converts a speedup stack's serialization components
// (spinning + yielding + imbalance) into the Amdahl serial fraction that
// would cost the same capacity at the stack's thread count: the stack loses
// fraction s = (spin+yield+imbalance)/(N·Tp) of ideal speedup, and Amdahl
// loses σ(N−1)/(1+σ(N−1)), so σ = s/((1−s)(N−1)).
func SigmaFromStack(st core.Stack) float64 {
	if st.N <= 1 || st.Tp == 0 {
		return 0
	}
	cap := float64(st.N) * float64(st.Tp)
	s := (st.Components.Spin + st.Components.Yield + st.Components.Imbalance) / cap
	if s < 0 {
		s = 0
	}
	if s >= 1 {
		return 1
	}
	return clamp01(s / ((1 - s) * float64(st.N-1)))
}

// Build assembles the full advisor answer for one measured sweep. spec and
// st are optional: without a spec there are no spec-field recommendations,
// and without a stack (the speedup stack at the top of the sweep) there is
// no serial-fraction cross-check. Points must be ascending by thread count.
func Build(label string, spec *workload.Spec, points []Point, st *core.Stack) (Advice, error) {
	amdahl, err := FitAmdahl(points)
	if err != nil {
		return Advice{}, err
	}
	usl, err := FitUSL(points)
	if err != nil {
		return Advice{}, err
	}
	a := Advice{
		Benchmark:  label,
		MaxThreads: points[len(points)-1].Threads,
		Points:     append([]Point(nil), points...),
		Amdahl:     amdahl,
		USL:        usl,
		NStar:      usl.NStar(),
		Class:      Classify(points),
	}
	peak := points[0]
	for _, p := range points[1:] {
		if p.Speedup > peak.Speedup {
			peak = p
		}
	}
	a.PeakSpeedup, a.PeakThreads = peak.Speedup, peak.Threads
	if st != nil {
		a.SigmaStack = SigmaFromStack(*st)
		a.SigmaAgrees = math.Abs(a.SigmaStack-amdahl.Sigma) <= SigmaAgreementBound
		if tops := stack.TopComponents(*st, 1); len(tops) > 0 {
			a.Bottleneck = tops[0]
		}
		a.Recommendations = recommend(spec, *st, usl)
	}
	return a, nil
}

// recommend builds the ranked spec-field recommendations from the stack
// components at the top of the sweep. Components below the stack package's
// negligibility threshold produce nothing; the rest are ranked by their cost
// in speedup units.
func recommend(spec *workload.Spec, st core.Stack, usl Fit) []Recommendation {
	named := stack.Named(st)
	type comp struct {
		name  string
		value float64
	}
	comps := make([]comp, 0, len(named))
	for name, v := range named {
		if v >= stack.NegligibleThreshold {
			comps = append(comps, comp{name, v})
		}
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].value != comps[j].value {
			return comps[i].value > comps[j].value
		}
		return comps[i].name < comps[j].name
	})
	recs := make([]Recommendation, 0, len(comps))
	for _, c := range comps {
		r := recommendOne(spec, c.name, usl)
		r.Component = c.name
		r.Impact = round4(c.value)
		recs = append(recs, r)
	}
	return recs
}

// recommendOne maps one dominant component onto the spec field most directly
// responsible for it, given the workload's structure. A nil spec yields
// generic (fieldless) advice.
func recommendOne(spec *workload.Spec, component string, usl Fit) Recommendation {
	if spec == nil {
		return genericRecommendation(component, usl)
	}
	switch component {
	case stack.CompSpinning:
		switch {
		case spec.Kind == workload.KindTaskQueue:
			return Recommendation{
				Field:  "dispatch_instr",
				Action: "shrink the serial dispatch critical section",
				Detail: fmt.Sprintf("every item takes the global task lock for %d instructions; fitted contention κ=%.2g — shrink dispatch_instr or pre-partition the %d items so threads stop queueing on one lock",
					spec.DispatchInstr, usl.Kappa, spec.Items),
			}
		case spec.CSInstr > 0 && spec.CSPerThreadPerPhase > 0:
			locks := spec.NumLocks
			if locks == 0 {
				locks = 1
			}
			return Recommendation{
				Field:  "cs_instr",
				Action: "shrink the critical section or shard the lock",
				Detail: fmt.Sprintf("criticalSectionOps dominate: %d instructions per section, %d sections per thread-phase across %d lock(s); fitted contention κ=%.2g — shrink cs_instr or raise num_locks to spread waiters",
					spec.CSInstr, spec.CSPerThreadPerPhase, locks, usl.Kappa),
			}
		case spec.LockGrace >= 1<<30:
			return Recommendation{
				Field:  "lock_grace",
				Action: "let blocked threads yield instead of spinning",
				Detail: fmt.Sprintf("lock_grace=%d keeps waiters spinning for their whole wait (SPLASH-2-style locks); lowering it parks blocked threads and frees their cores", spec.LockGrace),
			}
		default:
			return Recommendation{
				Field:  "barrier_grace",
				Action: "shorten the barrier spin grace",
				Detail: "threads burn cycles spinning at barriers before parking; a shorter barrier_grace converts the spin tail into cheap yields",
			}
		}
	case stack.CompYielding:
		if spec.Kind == workload.KindPipeline {
			if i, w := heaviestSerialStage(spec); i >= 0 {
				return Recommendation{
					Field:  fmt.Sprintf("stages[%d].serial", i),
					Action: "parallelize the heaviest serial stage",
					Detail: fmt.Sprintf("serial stage %d carries %.0f%% of per-item work and caps speedup near %.1f whatever the thread count; fitted serial fraction σ=%.3f — make the stage parallel or split its work",
						i, 100*w, 1/w, usl.Sigma),
				}
			}
			return Recommendation{
				Field:  "queue_cap",
				Action: "deepen the inter-stage queues",
				Detail: fmt.Sprintf("starved stages park on queue_cap=%d bounded queues; deeper queues smooth stage imbalance", spec.QueueCap),
			}
		}
		if spec.Kind == workload.KindTaskQueue {
			return Recommendation{
				Field:  "dispatch_instr",
				Action: "cut the serial work under the task lock",
				Detail: fmt.Sprintf("threads park waiting for the dispenser lock (%d instructions per item); fitted serial fraction σ=%.3f — shrink dispatch_instr or batch items per dispatch",
					spec.DispatchInstr, usl.Sigma),
			}
		}
		if e := spec.EffectiveParallelism; e > 0 {
			return Recommendation{
				Field:  "effective_parallelism",
				Action: "rebalance the per-thread work shares",
				Detail: fmt.Sprintf("work shares are skewed so speedup saturates near %.1f threads (fitted serial fraction σ=%.3f); flattening the distribution raises effective_parallelism toward the thread count", e, usl.Sigma),
			}
		}
		return Recommendation{
			Field:  "phases",
			Action: "merge barrier-separated phases",
			Detail: fmt.Sprintf("threads park at %d barrier(s) per run waiting for stragglers; fewer, longer phases amortize the synchronization", spec.Phases),
		}
	case stack.CompImbalance:
		if e := spec.EffectiveParallelism; e > 0 {
			return Recommendation{
				Field:  "effective_parallelism",
				Action: "balance the final phase's work shares",
				Detail: fmt.Sprintf("the slowest thread finishes last while the rest idle (shares skewed to saturate near %.1f threads); balancing the tail phase reclaims the idle capacity", e),
			}
		}
		return Recommendation{
			Field:  "items",
			Action: "split work into more, smaller units",
			Detail: "end-of-run imbalance means the last units of work are too coarse; more items give the scheduler room to even threads out",
		}
	case stack.CompMemory:
		return Recommendation{
			Field:  "instr_per_access",
			Action: "raise the compute-per-access ratio",
			Detail: fmt.Sprintf("one modeled access per %d instructions keeps the DRAM banks contended across threads (store fraction %.2f); more compute per access — or fewer stores — cuts the queueing",
				spec.InstrPerAccess, spec.StoreFrac),
		}
	case stack.CompCache:
		return Recommendation{
			Field:  "array_bytes",
			Action: "shrink the per-thread working set",
			Detail: fmt.Sprintf("the combined working set (array_bytes=%d, shared_bytes=%d) thrashes the shared LLC; smaller slices or more temporal reuse (sweeps_per_phase) turn inter-thread evictions back into hits",
				spec.ArrayBytes, spec.SharedBytes),
		}
	}
	return genericRecommendation(component, usl)
}

// genericRecommendation is the spec-free fallback, still component-specific.
func genericRecommendation(component string, usl Fit) Recommendation {
	switch component {
	case stack.CompSpinning:
		return Recommendation{Action: "reduce lock contention",
			Detail: fmt.Sprintf("spinning dominates and fitted contention κ=%.2g; shrink critical sections or shard the contended lock", usl.Kappa)}
	case stack.CompYielding:
		return Recommendation{Action: "remove serialization",
			Detail: fmt.Sprintf("threads park on synchronization (fitted serial fraction σ=%.3f); break up the serial section", usl.Sigma)}
	case stack.CompImbalance:
		return Recommendation{Action: "balance per-thread work",
			Detail: "the slowest thread finishes last while the rest idle"}
	case stack.CompMemory:
		return Recommendation{Action: "reduce memory-subsystem pressure",
			Detail: "cross-thread bank and bus interference dominates; lower the access rate or improve locality"}
	case stack.CompCache:
		return Recommendation{Action: "shrink the shared-cache footprint",
			Detail: "inter-thread LLC evictions dominate; reduce the working set or add reuse"}
	}
	return Recommendation{Action: "profile further", Detail: "no structural cause identified"}
}

// heaviestSerialStage returns the index and normalized weight of the
// heaviest serial pipeline stage, or (-1, 0) when none is serial.
func heaviestSerialStage(spec *workload.Spec) (int, float64) {
	var total float64
	for _, st := range spec.Stages {
		total += st.Weight
	}
	best, bestW := -1, 0.0
	for i, st := range spec.Stages {
		if st.Serial && st.Weight > bestW {
			best, bestW = i, st.Weight
		}
	}
	if best < 0 || total <= 0 {
		return -1, 0
	}
	return best, bestW / total
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }
