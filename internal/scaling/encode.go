package scaling

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/stack"
)

// Encode writes an Advice to w in the requested format, reusing the stack
// package's format vocabulary: text is the human-readable report, JSON the
// Advice object, CSV one record per sweep point with the fitted values
// alongside, and SVG the fit-curve overlay chart.
func Encode(w io.Writer, f stack.Format, a Advice) error {
	switch f {
	case stack.FormatText, "":
		_, err := io.WriteString(w, Text(a))
		return err
	case stack.FormatJSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(a)
	case stack.FormatNDJSON:
		return json.NewEncoder(w).Encode(a)
	case stack.FormatCSV:
		return encodeCSV(w, a)
	case stack.FormatSVG:
		return stack.EncodeCurveSVG(w, Chart(a))
	}
	return fmt.Errorf("scaling: unknown format %q", f)
}

// Text renders the human-readable advisor report: the sweep with both fitted
// models alongside, the fit parameters, the classification, the stack
// cross-check, and the ranked recommendations.
func Text(a Advice) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s scaling (peak %.2fx at %d threads)\n",
		a.Benchmark, a.Class, a.PeakSpeedup, a.PeakThreads)
	fmt.Fprintf(&b, "\n%8s %10s %10s %10s\n", "threads", "measured", "amdahl", "usl")
	for _, p := range a.Points {
		n := float64(p.Threads)
		fmt.Fprintf(&b, "%8d %10.2f %10.2f %10.2f\n",
			p.Threads, p.Speedup, a.Amdahl.Speedup(n), a.USL.Speedup(n))
	}
	fmt.Fprintf(&b, "\namdahl: sigma=%.4f (R2=%.3f)\n", a.Amdahl.Sigma, a.Amdahl.R2)
	fmt.Fprintf(&b, "usl:    sigma=%.4f kappa=%.3g (R2=%.3f)\n", a.USL.Sigma, a.USL.Kappa, a.USL.R2)
	if a.NStar > 0 {
		fmt.Fprintf(&b, "n*:     %.1f threads (diminishing returns beyond this)\n", a.NStar)
	} else {
		fmt.Fprintf(&b, "n*:     unbounded (fitted curve never turns over)\n")
	}
	if a.SigmaStack > 0 || a.Bottleneck != "" {
		agree := "agrees"
		if !a.SigmaAgrees {
			agree = "DISAGREES"
		}
		fmt.Fprintf(&b, "stack:  implied sigma=%.4f vs amdahl %.4f (%s, bound %.2f)",
			a.SigmaStack, a.Amdahl.Sigma, agree, SigmaAgreementBound)
		if a.Bottleneck != "" {
			fmt.Fprintf(&b, "; dominant component: %s", a.Bottleneck)
		}
		b.WriteByte('\n')
		if !a.SigmaAgrees {
			b.WriteString("        the curve's shape is not explained by serialization alone;\n" +
				"        look at the cache/memory components of the stack\n")
		}
	}
	if len(a.Recommendations) > 0 {
		b.WriteString("\nrecommendations (largest impact first):\n")
		for i, r := range a.Recommendations {
			field := r.Field
			if field == "" {
				field = "-"
			}
			fmt.Fprintf(&b, "%2d. [%s, %.2f speedup units] %s: %s\n      %s\n",
				i+1, r.Component, r.Impact, field, r.Action, r.Detail)
			if r.Intervention != "" {
				fmt.Fprintf(&b, "      what-if: %s predicts %+.2f speedup (validate via the what-if report)\n",
					r.Intervention, r.PredictedGain)
			}
		}
	} else {
		b.WriteString("\nno significant scaling delimiters; nothing to recommend\n")
	}
	return b.String()
}

// encodeCSV writes one record per sweep point; the per-workload fit results
// (parameters, N*, classification) repeat on every record so the file stays
// a single flat table.
func encodeCSV(w io.Writer, a Advice) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "threads", "measured", "amdahl", "usl",
		"sigma", "kappa", "n_star", "classification", "sigma_stack", "sigma_agrees"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range a.Points {
		n := float64(p.Threads)
		rec := []string{
			a.Benchmark, strconv.Itoa(p.Threads), csvF(p.Speedup),
			csvF(a.Amdahl.Speedup(n)), csvF(a.USL.Speedup(n)),
			csvF(a.USL.Sigma), csvF(a.USL.Kappa), csvF(a.NStar),
			string(a.Class), csvF(a.SigmaStack), strconv.FormatBool(a.SigmaAgrees),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func csvF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// Chart builds the fit-overlay curve chart: measured sweep with markers,
// both fitted models dashed, the ideal-scaling reference, and an N* marker
// when the fitted optimum lies inside the swept range.
func Chart(a Advice) stack.CurveChart {
	measured := stack.CurveSeries{Name: "measured", Marker: true}
	for _, p := range a.Points {
		measured.Points = append(measured.Points, stack.CurvePoint{X: float64(p.Threads), Y: p.Speedup})
	}
	sample := func(f Fit) []stack.CurvePoint {
		max := float64(a.MaxThreads)
		pts := make([]stack.CurvePoint, 0, 2*a.MaxThreads)
		for n := 1.0; n < max; n += 0.5 {
			pts = append(pts, stack.CurvePoint{X: n, Y: f.Speedup(n)})
		}
		return append(pts, stack.CurvePoint{X: max, Y: f.Speedup(max)})
	}
	c := stack.CurveChart{
		Title:  fmt.Sprintf("%s: scaling fit (%s)", a.Benchmark, a.Class),
		XLabel: "threads",
		YLabel: "speedup",
		Ideal:  true,
		Series: []stack.CurveSeries{
			measured,
			{Name: fmt.Sprintf("amdahl σ=%.3f", a.Amdahl.Sigma), Points: sample(a.Amdahl), Dashed: true},
			{Name: fmt.Sprintf("usl σ=%.3f κ=%.2g", a.USL.Sigma, a.USL.Kappa), Points: sample(a.USL), Dashed: true},
		},
	}
	if a.NStar > 0 && a.NStar <= float64(a.MaxThreads) {
		c.VLines = append(c.VLines, stack.CurveVLine{X: a.NStar, Label: fmt.Sprintf("N*=%.1f", a.NStar)})
	}
	return c
}
