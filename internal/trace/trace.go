// Package trace defines the execution-driven operation-stream model that
// drives the CMP simulator.
//
// A thread's dynamic instruction stream is abstracted as a sequence of
// coarse-grained operations: computation bursts, individual memory
// references, and synchronization actions (locks, barriers, bounded task
// queues). Programs are *execution driven* rather than trace driven: the
// simulator pulls the next operation lazily and feeds back the outcome of
// blocking operations (e.g. whether a queue pop succeeded), so programs can
// react to runtime conditions such as pipeline shutdown.
//
// The granularity is deliberately coarser than one op per instruction:
// computation between memory references is folded into Compute bursts, which
// keeps simulation cost proportional to the number of *memory and
// synchronization events*, the quantities that determine every speedup-stack
// component in the paper.
package trace

import "fmt"

// Kind identifies the operation class.
type Kind uint8

// Operation kinds understood by the simulator.
const (
	// KindCompute executes N instructions of pure computation (no memory
	// system interaction beyond the L1-resident working set).
	KindCompute Kind = iota
	// KindLoad issues a data load to Addr. PC identifies the static load
	// site, which the Tian-style spin detector keys on.
	KindLoad
	// KindStore issues a data store to Addr.
	KindStore
	// KindLock acquires lock ID (test-and-test-and-set with spin-then-yield).
	KindLock
	// KindUnlock releases lock ID.
	KindUnlock
	// KindBarrier joins barrier ID (sense-reversing; spin-then-yield).
	KindBarrier
	// KindPush appends an item to bounded queue ID, blocking while full.
	KindPush
	// KindPop removes an item from bounded queue ID, blocking while empty.
	// If the queue is closed and drained, the op completes with Feedback
	// PopOK=false and the program is expected to wind down.
	KindPop
	// KindCloseQueue marks queue ID closed, releasing blocked poppers.
	KindCloseQueue
	// KindEnd terminates the thread. The final op of every program.
	KindEnd
)

// String returns a short mnemonic for the op kind.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindLock:
		return "lock"
	case KindUnlock:
		return "unlock"
	case KindBarrier:
		return "barrier"
	case KindPush:
		return "push"
	case KindPop:
		return "pop"
	case KindCloseQueue:
		return "closeq"
	case KindEnd:
		return "end"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one coarse-grained operation of a thread's dynamic stream.
type Op struct {
	Kind Kind
	// N is the instruction count for KindCompute bursts. For memory ops it
	// is the number of instructions the reference represents (dispatch
	// slots); 1 if zero.
	N uint32
	// Addr is the byte address for KindLoad/KindStore.
	Addr uint64
	// PC is a synthetic static-instruction identifier for memory ops; the
	// spin detector distinguishes load sites by PC.
	PC uint64
	// ID names the lock, barrier, or queue for synchronization ops, and the
	// extra overhead tag (unused otherwise).
	ID uint32
	// Overhead marks instructions that exist only because of
	// parallelization (thread spawning, lock handling, recomputation). The
	// simulator's ground-truth accounting attributes them to the
	// parallelization-overhead component; the hardware estimator cannot see
	// this flag, exactly as in the paper (Section 3.5).
	Overhead bool
}

// Feedback carries the outcome of the previously executed blocking op back
// into the program on the next Next call.
type Feedback struct {
	// PopOK reports whether the last KindPop produced an item. False means
	// the queue was closed and drained.
	PopOK bool
}

// Program produces a thread's operation stream. Next is called once per
// operation; implementations are typically small state machines. Programs
// must eventually emit KindEnd. After KindEnd, Next is not called again.
type Program interface {
	Next(fb Feedback) Op
}

// BatchProgram is the optional batching extension of Program: generators
// that implement it hand the simulator whole chunks of their stream, paying
// one dynamic dispatch per chunk instead of one per operation. The
// simulator type-asserts for it at machine construction and falls back to
// Next for plain Programs.
//
// The batching contract:
//
//   - The concatenation of the batches must be exactly the op sequence that
//     repeated Next calls would produce: batching is a transport
//     optimization, never a semantic one. In particular, adjacent Compute
//     bursts must NOT be merged across op boundaries — the core model
//     rounds each burst to dispatch-width cycle granularity
//     (cpu.ComputeCycles), so merging two bursts is timing-visible.
//   - NextBatch fills dst from the front and returns n, the number of ops
//     written, with 1 <= n <= len(dst) (callers pass len(dst) >= 1).
//   - fb carries the outcome of the last blocking op exactly as it would
//     reach Next. A batch must therefore end immediately after any op whose
//     outcome feeds back into the stream (KindPop: the program branches on
//     Feedback.PopOK), because fresh feedback is only delivered at batch
//     boundaries. Ops with no feedback (locks, barriers, pushes) may be
//     followed by more ops in the same batch even though the simulator may
//     block mid-batch; the buffered tail stays valid across the wait.
//   - After a batch containing KindEnd, NextBatch is not called again.
type BatchProgram interface {
	Program
	NextBatch(dst []Op, fb Feedback) int
}

// Compute returns a computation burst of n instructions.
func Compute(n uint32) Op { return Op{Kind: KindCompute, N: n} }

// Load returns a load of addr from load-site pc.
func Load(addr, pc uint64) Op { return Op{Kind: KindLoad, N: 1, Addr: addr, PC: pc} }

// Store returns a store to addr from store-site pc.
func Store(addr, pc uint64) Op { return Op{Kind: KindStore, N: 1, Addr: addr, PC: pc} }

// Lock returns a lock-acquire op for lock id.
func Lock(id uint32) Op { return Op{Kind: KindLock, N: 1, ID: id} }

// Unlock returns a lock-release op for lock id.
func Unlock(id uint32) Op { return Op{Kind: KindUnlock, N: 1, ID: id} }

// Barrier returns a barrier-join op for barrier id.
func Barrier(id uint32) Op { return Op{Kind: KindBarrier, N: 1, ID: id} }

// Push returns a queue-push op for queue id.
func Push(id uint32) Op { return Op{Kind: KindPush, N: 1, ID: id} }

// Pop returns a queue-pop op for queue id.
func Pop(id uint32) Op { return Op{Kind: KindPop, N: 1, ID: id} }

// CloseQueue returns a queue-close op for queue id.
func CloseQueue(id uint32) Op { return Op{Kind: KindCloseQueue, N: 1, ID: id} }

// End returns the terminal op.
func End() Op { return Op{Kind: KindEnd} }

// SliceProgram replays a fixed op slice. It is primarily useful in tests and
// microbenchmark workloads. The slice must end with KindEnd; if it does not,
// SliceProgram appends one implicitly.
type SliceProgram struct {
	ops []Op
	pos int
}

// NewSliceProgram returns a Program that replays ops in order.
func NewSliceProgram(ops []Op) *SliceProgram {
	if len(ops) == 0 || ops[len(ops)-1].Kind != KindEnd {
		ops = append(append([]Op(nil), ops...), End())
	}
	return &SliceProgram{ops: ops}
}

// Next implements Program.
func (p *SliceProgram) Next(Feedback) Op {
	if p.pos >= len(p.ops) {
		return End()
	}
	op := p.ops[p.pos]
	p.pos++
	return op
}

// NextBatch implements BatchProgram by copying the next chunk of the slice.
// SliceProgram ignores feedback entirely, so batches need not break at pops.
func (p *SliceProgram) NextBatch(dst []Op, _ Feedback) int {
	if p.pos >= len(p.ops) {
		dst[0] = End()
		return 1
	}
	n := copy(dst, p.ops[p.pos:])
	p.pos += n
	return n
}

// FuncProgram adapts a plain function to the Program interface.
type FuncProgram func(fb Feedback) Op

// Next implements Program.
func (f FuncProgram) Next(fb Feedback) Op { return f(fb) }
