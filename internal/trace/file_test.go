package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// sampleOps exercises the full op vocabulary, including non-default N and
// the overhead flag.
func sampleOps() []Op {
	return []Op{
		Compute(1200),
		{Kind: KindCompute, N: 7, Overhead: true},
		Load(0x1000_0000_0040, 17),
		Store(0x2000_0000_0080, 23),
		{Kind: KindLoad, N: 4, Addr: 64, PC: 3, Overhead: true},
		Lock(2),
		Unlock(2),
		Barrier(2001),
		Push(0),
		Pop(0),
		{Kind: KindPop, N: 3, ID: 1},
		CloseQueue(0),
		End(),
	}
}

func sampleFile() *File {
	return &File{
		Label:        "sample_workload",
		LockGrace:    1 << 40,
		BarrierGrace: 1500,
		Queues:       []QueueReg{{ID: 0, Cap: 16}, {ID: 1, Cap: 1}},
		Barriers:     []BarrierReg{{ID: 2000, Parties: 1}, {ID: 2001, Parties: 3}},
		Sequential:   []Op{Compute(10), Load(64, 1), End()},
		Threads:      [][]Op{sampleOps(), {Compute(5), End()}},
	}
}

// drain replays a program to exhaustion via NextBatch, asserting the batch
// contract: every batch ends at (or before) the first KindPop, and the
// stream terminates with KindEnd.
func drain(t *testing.T, p BatchProgram) []Op {
	t.Helper()
	var out []Op
	buf := make([]Op, 5)
	for steps := 0; ; steps++ {
		if steps > 1<<20 {
			t.Fatalf("program did not terminate")
		}
		n := p.NextBatch(buf, Feedback{PopOK: true})
		if n < 1 || n > len(buf) {
			t.Fatalf("NextBatch returned %d ops for a %d-op buffer", n, len(buf))
		}
		for i, op := range buf[:n] {
			if op.Kind == KindPop && i != n-1 {
				t.Fatalf("batch continued past a %v at position %d of %d", KindPop, i, n)
			}
			out = append(out, op)
			if op.Kind == KindEnd {
				return out
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	f := sampleFile()
	d, err := f.Data()
	if err != nil {
		t.Fatalf("Data: %v", err)
	}
	if d.Label() != f.Label || d.Threads() != 2 || !d.HasSequential() {
		t.Fatalf("header mismatch: label %q threads %d seq %v", d.Label(), d.Threads(), d.HasSequential())
	}
	if d.LockGrace() != f.LockGrace || d.BarrierGrace() != f.BarrierGrace {
		t.Fatalf("grace mismatch: %d/%d", d.LockGrace(), d.BarrierGrace())
	}
	if !reflect.DeepEqual(d.Queues(), f.Queues) || !reflect.DeepEqual(d.Barriers(), f.Barriers) {
		t.Fatalf("registration mismatch: %v %v", d.Queues(), d.Barriers())
	}
	wantOps := uint64(len(f.Sequential) + len(f.Threads[0]) + len(f.Threads[1]))
	if d.TotalOps() != wantOps {
		t.Fatalf("TotalOps = %d, want %d", d.TotalOps(), wantOps)
	}
	for i := range f.Threads {
		if got := drain(t, d.ThreadProgram(i)); !reflect.DeepEqual(got, f.Threads[i]) {
			t.Fatalf("thread %d stream mismatch:\n got %v\nwant %v", i, got, f.Threads[i])
		}
	}
	seq, err := d.SequentialProgram()
	if err != nil {
		t.Fatalf("SequentialProgram: %v", err)
	}
	if got := drain(t, seq); !reflect.DeepEqual(got, f.Sequential) {
		t.Fatalf("sequential stream mismatch: %v", got)
	}
	// Readers are independent: draining one must not advance another.
	a, b := d.ThreadProgram(0), d.ThreadProgram(0)
	drain(t, a)
	if got := drain(t, b); !reflect.DeepEqual(got, f.Threads[0]) {
		t.Fatalf("second reader saw a drained stream")
	}
}

func TestHashIgnoresLabel(t *testing.T) {
	f := sampleFile()
	d1, err := f.Data()
	if err != nil {
		t.Fatal(err)
	}
	f.Label = "renamed"
	d2, err := f.Data()
	if err != nil {
		t.Fatal(err)
	}
	if d1.HashHex() != d2.HashHex() {
		t.Fatalf("relabeling changed the content hash: %s vs %s", d1.HashHex(), d2.HashHex())
	}
	f.LockGrace++
	d3, err := f.Data()
	if err != nil {
		t.Fatal(err)
	}
	if d3.HashHex() == d1.HashHex() {
		t.Fatalf("changing lock_grace did not change the content hash")
	}
}

func TestDecodeMetaMatchesDecode(t *testing.T) {
	var buf bytes.Buffer
	f := sampleFile()
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeMeta(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	want := Meta{Label: d.Label(), LockGrace: d.LockGrace(), BarrierGrace: d.BarrierGrace(),
		Threads: d.Threads(), HashHex: d.HashHex()}
	if m != want {
		t.Fatalf("DecodeMeta = %+v, want %+v", m, want)
	}
}

func TestDecodeRejectsHostileInput(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFile().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	cases := map[string][]byte{
		"empty":          {},
		"short header":   valid[:5],
		"bad magic":      append([]byte("NOPE"), valid[4:]...),
		"bad version":    append([]byte("SPTR\x09"), valid[5:]...),
		"unknown flags":  append([]byte("SPTR\x01\xff"), valid[6:]...),
		"truncated body": valid[:len(valid)-3],
		"trailing junk":  append(append([]byte{}, valid...), 0x00),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted hostile input", name)
		}
	}
	// End mid-stream must be rejected.
	if _, err := (&File{Threads: [][]Op{{Compute(1), End(), Compute(1), End()}}}).Data(); err == nil {
		t.Errorf("mid-stream End was accepted")
	}
	if _, err := (&File{Threads: [][]Op{{Compute(1)}}}).Data(); err == nil {
		t.Errorf("stream without End was accepted")
	}
}

func FuzzTraceDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := sampleFile().Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("SPTR\x01\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode must never panic or over-allocate; on success the trace
		// must be fully replayable and agree with its cheap meta view.
		d, err := Decode(data)
		if err != nil {
			return
		}
		m, merr := DecodeMeta(data)
		if merr != nil {
			t.Fatalf("Decode accepted what DecodeMeta rejects: %v", merr)
		}
		if m.Threads != d.Threads() || m.HashHex != d.HashHex() {
			t.Fatalf("meta/full decode disagree: %+v vs %d %s", m, d.Threads(), d.HashHex())
		}
		total := uint64(0)
		progs := make([]BatchProgram, 0, d.Threads()+1)
		for i := 0; i < d.Threads(); i++ {
			progs = append(progs, d.ThreadProgram(i))
		}
		if d.HasSequential() {
			sp, err := d.SequentialProgram()
			if err != nil {
				t.Fatal(err)
			}
			progs = append(progs, sp)
		}
		ops := make([]Op, 64)
		for _, p := range progs {
			for {
				n := p.NextBatch(ops, Feedback{})
				if n < 1 || n > len(ops) {
					t.Fatalf("NextBatch returned %d", n)
				}
				total += uint64(n)
				if total > d.TotalOps() {
					t.Fatalf("streams yielded more than the declared %d ops", d.TotalOps())
				}
				if ops[n-1].Kind == KindEnd {
					break
				}
			}
		}
		if total != d.TotalOps() {
			t.Fatalf("streams yielded %d ops, declared %d", total, d.TotalOps())
		}
	})
}
