package trace

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiverge(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGUint64nRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(97); v >= 97 {
			t.Fatalf("Uint64n(97) = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(5)
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindCompute: "compute", KindLoad: "load", KindStore: "store",
		KindLock: "lock", KindUnlock: "unlock", KindBarrier: "barrier",
		KindPush: "push", KindPop: "pop", KindCloseQueue: "closeq",
		KindEnd: "end",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

func TestOpConstructors(t *testing.T) {
	if op := Compute(7); op.Kind != KindCompute || op.N != 7 {
		t.Errorf("Compute: %+v", op)
	}
	if op := Load(0x100, 0x4); op.Kind != KindLoad || op.Addr != 0x100 || op.PC != 0x4 || op.N != 1 {
		t.Errorf("Load: %+v", op)
	}
	if op := Store(0x200, 0x8); op.Kind != KindStore || op.Addr != 0x200 {
		t.Errorf("Store: %+v", op)
	}
	if op := Lock(3); op.Kind != KindLock || op.ID != 3 {
		t.Errorf("Lock: %+v", op)
	}
	if op := Unlock(3); op.Kind != KindUnlock {
		t.Errorf("Unlock: %+v", op)
	}
	if op := Barrier(5); op.Kind != KindBarrier || op.ID != 5 {
		t.Errorf("Barrier: %+v", op)
	}
	if op := Push(2); op.Kind != KindPush {
		t.Errorf("Push: %+v", op)
	}
	if op := Pop(2); op.Kind != KindPop {
		t.Errorf("Pop: %+v", op)
	}
	if op := CloseQueue(2); op.Kind != KindCloseQueue {
		t.Errorf("CloseQueue: %+v", op)
	}
	if op := End(); op.Kind != KindEnd {
		t.Errorf("End: %+v", op)
	}
}

func TestSliceProgramAppendsEnd(t *testing.T) {
	p := NewSliceProgram([]Op{Compute(1), Compute(2)})
	var kinds []Kind
	for i := 0; i < 4; i++ {
		kinds = append(kinds, p.Next(Feedback{}).Kind)
	}
	if kinds[0] != KindCompute || kinds[1] != KindCompute {
		t.Fatalf("unexpected prefix %v", kinds)
	}
	if kinds[2] != KindEnd || kinds[3] != KindEnd {
		t.Fatalf("program must end (and stay ended): %v", kinds)
	}
}

func TestSliceProgramEmpty(t *testing.T) {
	p := NewSliceProgram(nil)
	if op := p.Next(Feedback{}); op.Kind != KindEnd {
		t.Fatalf("empty program first op = %v, want End", op.Kind)
	}
}

func TestFuncProgram(t *testing.T) {
	n := 0
	p := FuncProgram(func(Feedback) Op {
		n++
		if n > 2 {
			return End()
		}
		return Compute(uint32(n))
	})
	if op := p.Next(Feedback{}); op.N != 1 {
		t.Fatalf("first op N = %d", op.N)
	}
	if op := p.Next(Feedback{}); op.N != 2 {
		t.Fatalf("second op N = %d", op.N)
	}
	if op := p.Next(Feedback{}); op.Kind != KindEnd {
		t.Fatal("third op not End")
	}
}

func TestRNGUint64nPropertyInRange(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := NewRNG(seed)
		for i := 0; i < 10; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
