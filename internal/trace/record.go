package trace

// Recorder wraps a Program and captures every op it hands the simulator, in
// delivery order. Because the op stream of an execution-driven program can
// depend on runtime feedback (KindPop branches on Feedback.PopOK), a
// faithful recording must be taken during a real simulation — wrap each
// program, run the simulation, then collect Ops. The simulator is
// deterministic, so replaying the captured streams reproduces the recorded
// run exactly.
//
// Recording is transparent: a Recorder implements BatchProgram by
// delegating to the inner program's NextBatch when it has one, and by
// one-op batches over Next otherwise — both are semantically identical to
// running the inner program directly (batching is a transport optimization
// by the BatchProgram contract), so a recorded run's Result equals an
// unrecorded one's.
type Recorder struct {
	inner Program
	batch BatchProgram // non-nil when inner batches
	ops   []Op
}

// NewRecorder wraps p for recording.
func NewRecorder(p Program) *Recorder {
	r := &Recorder{inner: p}
	if bp, ok := p.(BatchProgram); ok {
		r.batch = bp
	}
	return r
}

// Next implements Program.
func (r *Recorder) Next(fb Feedback) Op {
	op := r.inner.Next(fb)
	r.ops = append(r.ops, op)
	return op
}

// NextBatch implements BatchProgram.
func (r *Recorder) NextBatch(dst []Op, fb Feedback) int {
	if r.batch == nil {
		dst[0] = r.inner.Next(fb)
		r.ops = append(r.ops, dst[0])
		return 1
	}
	n := r.batch.NextBatch(dst, fb)
	r.ops = append(r.ops, dst[:n]...)
	return n
}

// Ops returns the captured stream. The final op is KindEnd once the wrapped
// program has ended.
func (r *Recorder) Ops() []Op { return r.ops }
