package trace

// RNG is a small, fast, deterministic xorshift64* pseudo-random generator.
// Every stochastic decision in the workload generators draws from an RNG
// seeded from the benchmark seed and thread ID, which makes entire simulation
// runs bit-reproducible. The standard library's math/rand would work as well,
// but a self-contained generator makes the determinism contract explicit and
// keeps generator state trivially copyable.
type RNG struct {
	s uint64
}

// NewRNG returns an RNG seeded with seed. A zero seed is remapped to a
// non-zero constant because xorshift has an all-zeroes fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r := &RNG{s: seed}
	// Scramble the seed so that nearby seeds diverge immediately.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("trace: Uint64n called with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	// Same comparison as Float64() < p with the division replaced by a
	// multiply: both sides are scaled by 2^53, which is exact for floats
	// (a pure exponent adjustment), so the outcome is bit-identical.
	return float64(r.Uint64()>>11) < p*(1<<53)
}
