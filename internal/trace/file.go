package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
)

// Binary op-trace format (version 1). A trace file captures one recorded
// simulation: the exact per-thread op streams the simulator consumed, the
// single-threaded reference stream, and the machine registrations (bounded
// queues, stage barriers) plus sync-library grace overrides a replay needs
// to reproduce the run byte-identically.
//
// Layout (all integers unsigned LEB128 varints unless noted):
//
//	offset 0   magic "SPTR" (4 raw bytes)
//	offset 4   version (1 raw byte, = 1)
//	offset 5   flags   (1 raw byte; bit0 = sequential stream present)
//	           label       varint length (<= 256) + raw bytes
//	           lock_grace / barrier_grace   varints (cycles)
//	           queue registrations    varint count, then per queue: id, cap
//	           barrier registrations  varint count, then per barrier: id, parties
//	           threads     varint T in [1, 256]
//	           sequential section (only when flagged), then T thread sections
//
// A section is: varint op count, varint byte length, then exactly that many
// encoded ops occupying exactly that many bytes, the last of which must be
// KindEnd (and KindEnd appears nowhere else). Each op starts with a head
// byte — bits 0..3 the Kind, bit 4 "N present", bit 5 the Overhead flag,
// bits 6..7 reserved zero — followed by kind-dependent varint operands:
// Compute carries N always; Load/Store carry Addr then PC (then N when
// flagged, default 1); sync ops carry ID (then N when flagged); End carries
// nothing. Decode validates every section eagerly, so the streaming readers
// handed to the simulator can never fail mid-run on hostile input.
//
// Content identity: the trace hash is sha256 over the version byte, the
// flags byte and everything after the label. The label is excluded for the
// same reason Spec.Fingerprint excludes Name and Suite — naming labels a
// trace, it does not change what replays — so relabeled copies of one
// recording share their cache, memo and fleet-routing identity.

const (
	formatMagic   = "SPTR"
	formatVersion = 1

	flagSequential = 1 << 0

	headKindMask = 0x0f
	headHasN     = 1 << 4
	headOverhead = 1 << 5

	maxLabelLen     = 256
	maxRegs         = 1 << 16
	maxTraceThreads = 256
	// maxTraceGrace mirrors the workload spec bound so a decoded trace
	// always builds a valid replay spec.
	maxTraceGrace = 1 << 62
)

// QueueReg is one bounded-queue registration a replay must re-create.
type QueueReg struct {
	ID  uint32
	Cap int
}

// BarrierReg is one barrier registration a replay must re-create.
type BarrierReg struct {
	ID      uint32
	Parties int
}

// File is a recorded trace in memory, ready to encode. Build one from
// Recorder output (the workload package's Record helper does) and write it
// with Encode; read one back with Decode.
type File struct {
	// Label names the recording (reports, logs). It is excluded from the
	// content hash: relabeling never changes replay identity.
	Label string
	// LockGrace and BarrierGrace are the recorded workload's sync-library
	// spin-grace overrides in cycles (0 = machine default).
	LockGrace, BarrierGrace uint64
	// Queues and Barriers are the machine registrations the recorded run
	// was simulated with; replay re-creates them verbatim.
	Queues   []QueueReg
	Barriers []BarrierReg
	// Sequential is the single-threaded reference stream (optional; a
	// trace without one can replay its parallel run but not produce a
	// speedup stack, which needs the sequential time).
	Sequential []Op
	// Threads holds one recorded op stream per thread.
	Threads [][]Op
}

// Encode writes the file in binary form. It fails on shapes the decoder
// would reject (no threads, oversized label, out-of-range registrations),
// so every encoded trace round-trips.
func (f *File) Encode(w io.Writer) error {
	buf, err := f.appendTo(nil)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Data encodes the file and decodes it back, returning the validated
// replayable form. This is the canonical way to go from recorded ops to a
// *Data: it guarantees the in-memory form is exactly what a reader of the
// written file would see.
func (f *File) Data() (*Data, error) {
	buf, err := f.appendTo(nil)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}

// appendTo appends the encoded file to dst.
func (f *File) appendTo(dst []byte) ([]byte, error) {
	if len(f.Threads) < 1 || len(f.Threads) > maxTraceThreads {
		return nil, fmt.Errorf("trace: thread count must be in [1, %d], got %d", maxTraceThreads, len(f.Threads))
	}
	if len(f.Label) > maxLabelLen {
		return nil, fmt.Errorf("trace: label exceeds %d bytes", maxLabelLen)
	}
	if len(f.Queues) > maxRegs || len(f.Barriers) > maxRegs {
		return nil, fmt.Errorf("trace: at most %d queue and %d barrier registrations", maxRegs, maxRegs)
	}
	if f.LockGrace > maxTraceGrace || f.BarrierGrace > maxTraceGrace {
		return nil, fmt.Errorf("trace: grace values must be <= %d cycles", uint64(maxTraceGrace))
	}
	dst = append(dst, formatMagic...)
	flags := byte(0)
	if f.Sequential != nil {
		flags |= flagSequential
	}
	dst = append(dst, formatVersion, flags)
	dst = binary.AppendUvarint(dst, uint64(len(f.Label)))
	dst = append(dst, f.Label...)
	dst = binary.AppendUvarint(dst, f.LockGrace)
	dst = binary.AppendUvarint(dst, f.BarrierGrace)
	dst = binary.AppendUvarint(dst, uint64(len(f.Queues)))
	for _, q := range f.Queues {
		if q.Cap < 0 {
			return nil, fmt.Errorf("trace: negative capacity for queue %d", q.ID)
		}
		dst = binary.AppendUvarint(dst, uint64(q.ID))
		dst = binary.AppendUvarint(dst, uint64(q.Cap))
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.Barriers)))
	for _, b := range f.Barriers {
		if b.Parties < 0 {
			return nil, fmt.Errorf("trace: negative parties for barrier %d", b.ID)
		}
		dst = binary.AppendUvarint(dst, uint64(b.ID))
		dst = binary.AppendUvarint(dst, uint64(b.Parties))
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.Threads)))
	var err error
	if f.Sequential != nil {
		if dst, err = appendSection(dst, f.Sequential); err != nil {
			return nil, fmt.Errorf("trace: sequential stream: %w", err)
		}
	}
	for t, ops := range f.Threads {
		if dst, err = appendSection(dst, ops); err != nil {
			return nil, fmt.Errorf("trace: thread %d stream: %w", t, err)
		}
	}
	return dst, nil
}

// appendSection appends one op-stream section (count, byte length, ops).
func appendSection(dst []byte, ops []Op) ([]byte, error) {
	if len(ops) == 0 || ops[len(ops)-1].Kind != KindEnd {
		return nil, fmt.Errorf("stream must end with %v", KindEnd)
	}
	body := make([]byte, 0, len(ops)*3)
	for i, op := range ops {
		if op.Kind > KindEnd {
			return nil, fmt.Errorf("op %d: unknown kind %d", i, op.Kind)
		}
		if op.Kind == KindEnd && i != len(ops)-1 {
			return nil, fmt.Errorf("op %d: %v before the end of the stream", i, KindEnd)
		}
		body = appendOp(body, op)
	}
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...), nil
}

// defaultN is the implied N of a kind when the head byte carries no explicit
// count (the overwhelmingly common case, worth the flag bit).
func defaultN(k Kind) uint32 {
	if k == KindEnd {
		return 0
	}
	return 1
}

// appendOp appends one encoded op.
func appendOp(dst []byte, op Op) []byte {
	head := byte(op.Kind)
	hasN := op.Kind != KindCompute && op.N != defaultN(op.Kind)
	if hasN {
		head |= headHasN
	}
	if op.Overhead {
		head |= headOverhead
	}
	dst = append(dst, head)
	switch op.Kind {
	case KindCompute:
		dst = binary.AppendUvarint(dst, uint64(op.N))
	case KindLoad, KindStore:
		dst = binary.AppendUvarint(dst, op.Addr)
		dst = binary.AppendUvarint(dst, op.PC)
	case KindEnd:
	default: // sync ops: lock, unlock, barrier, push, pop, closeq
		dst = binary.AppendUvarint(dst, uint64(op.ID))
	}
	if hasN {
		dst = binary.AppendUvarint(dst, uint64(op.N))
	}
	return dst
}

// Data is a decoded, fully validated trace: the replayable twin of File.
// The op streams stay in encoded form — ThreadProgram and SequentialProgram
// hand the simulator streaming readers that decode lazily — so holding a
// Data costs roughly the file size, not an []Op expansion. Data is
// immutable after Decode and safe for concurrent use; every reader it
// creates has independent position state.
type Data struct {
	label                   string
	lockGrace, barrierGrace uint64
	queues                  []QueueReg
	barriers                []BarrierReg
	seq                     []byte
	threads                 [][]byte
	totalOps                uint64
	hash                    [sha256.Size]byte
}

// Meta is the cheap header view of a trace: everything identity and routing
// need, parsed without validating the op sections. DecodeMeta produces it.
type Meta struct {
	// Label is the recorded name.
	Label string
	// LockGrace and BarrierGrace are the recorded grace overrides.
	LockGrace, BarrierGrace uint64
	// Threads is the recorded thread count.
	Threads int
	// HashHex is the lowercase-hex content hash (the replay identity).
	HashHex string
}

// decoder walks one buffer with bounds-checked varint reads.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) remaining() int { return len(d.buf) - d.pos }

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: truncated or malformed varint (%s) at offset %d", what, d.pos)
	}
	d.pos += n
	return v, nil
}

// bytes consumes n bytes, failing (rather than allocating) when the buffer
// does not hold them — header-declared lengths never cause allocation
// beyond what was actually received.
func (d *decoder) bytes(n uint64, what string) ([]byte, error) {
	if n > uint64(d.remaining()) {
		return nil, fmt.Errorf("trace: %s length %d exceeds the %d bytes remaining", what, n, d.remaining())
	}
	out := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// header parses magic through thread count, returning the partially filled
// Data and the offset where hashing of the tail begins (just after the
// label). Shared by Decode and DecodeMeta.
func header(data []byte) (*Data, *decoder, error) {
	if len(data) < 6 {
		return nil, nil, fmt.Errorf("trace: %d bytes is shorter than the %d-byte header", len(data), 6)
	}
	if string(data[:4]) != formatMagic {
		return nil, nil, fmt.Errorf("trace: bad magic %q (want %q)", data[:4], formatMagic)
	}
	if data[4] != formatVersion {
		return nil, nil, fmt.Errorf("trace: unsupported version %d (this build reads version %d)", data[4], formatVersion)
	}
	flags := data[5]
	if flags&^byte(flagSequential) != 0 {
		return nil, nil, fmt.Errorf("trace: unknown flag bits %#x", flags&^byte(flagSequential))
	}
	d := &decoder{buf: data, pos: 6}
	labelLen, err := d.uvarint("label length")
	if err != nil {
		return nil, nil, err
	}
	if labelLen > maxLabelLen {
		return nil, nil, fmt.Errorf("trace: label length %d exceeds %d", labelLen, maxLabelLen)
	}
	label, err := d.bytes(labelLen, "label")
	if err != nil {
		return nil, nil, err
	}
	t := &Data{label: string(label)}

	h := sha256.New()
	h.Write(data[4:6])
	h.Write(data[d.pos:])
	h.Sum(t.hash[:0])

	if t.lockGrace, err = d.uvarint("lock_grace"); err != nil {
		return nil, nil, err
	}
	if t.barrierGrace, err = d.uvarint("barrier_grace"); err != nil {
		return nil, nil, err
	}
	if t.lockGrace > maxTraceGrace || t.barrierGrace > maxTraceGrace {
		return nil, nil, fmt.Errorf("trace: grace values must be <= %d cycles", uint64(maxTraceGrace))
	}
	if t.queues, err = decodeQueueRegs(d); err != nil {
		return nil, nil, err
	}
	if t.barriers, err = decodeBarrierRegs(d); err != nil {
		return nil, nil, err
	}
	threads, err := d.uvarint("thread count")
	if err != nil {
		return nil, nil, err
	}
	if threads < 1 || threads > maxTraceThreads {
		return nil, nil, fmt.Errorf("trace: thread count must be in [1, %d], got %d", maxTraceThreads, threads)
	}
	t.threads = make([][]byte, threads)
	if flags&flagSequential != 0 {
		t.seq = []byte{} // non-nil marks presence; filled by Decode
	}
	return t, d, nil
}

func decodeQueueRegs(d *decoder) ([]QueueReg, error) {
	n, err := d.uvarint("queue count")
	if err != nil {
		return nil, err
	}
	// Each registration occupies at least two bytes, so the remaining
	// buffer bounds the believable count before anything is allocated.
	if n > maxRegs || n*2 > uint64(d.remaining()) {
		return nil, fmt.Errorf("trace: implausible queue count %d", n)
	}
	regs := make([]QueueReg, n)
	for i := range regs {
		id, err := d.uvarint("queue id")
		if err != nil {
			return nil, err
		}
		cap, err := d.uvarint("queue capacity")
		if err != nil {
			return nil, err
		}
		if id > 1<<32-1 || cap > 1<<20 {
			return nil, fmt.Errorf("trace: queue registration %d out of range (id %d, cap %d)", i, id, cap)
		}
		regs[i] = QueueReg{ID: uint32(id), Cap: int(cap)}
	}
	return regs, nil
}

func decodeBarrierRegs(d *decoder) ([]BarrierReg, error) {
	n, err := d.uvarint("barrier count")
	if err != nil {
		return nil, err
	}
	if n > maxRegs || n*2 > uint64(d.remaining()) {
		return nil, fmt.Errorf("trace: implausible barrier count %d", n)
	}
	regs := make([]BarrierReg, n)
	for i := range regs {
		id, err := d.uvarint("barrier id")
		if err != nil {
			return nil, err
		}
		parties, err := d.uvarint("barrier parties")
		if err != nil {
			return nil, err
		}
		if id > 1<<32-1 || parties > maxTraceThreads {
			return nil, fmt.Errorf("trace: barrier registration %d out of range (id %d, parties %d)", i, id, parties)
		}
		regs[i] = BarrierReg{ID: uint32(id), Parties: int(parties)}
	}
	return regs, nil
}

// Decode parses and fully validates a binary trace. Every op of every
// section is walked once, so hostile input — truncated buffers, corrupt
// varints, misplaced End ops, trailing garbage — fails here with a
// positioned error and the returned Data's streaming readers can never
// fail mid-simulation. Decode never panics and never allocates more than a
// small multiple of len(data).
func Decode(data []byte) (*Data, error) {
	t, d, err := header(data)
	if err != nil {
		return nil, err
	}
	if t.seq != nil {
		if t.seq, err = decodeSection(d, &t.totalOps); err != nil {
			return nil, fmt.Errorf("trace: sequential stream: %w", err)
		}
	}
	for i := range t.threads {
		if t.threads[i], err = decodeSection(d, &t.totalOps); err != nil {
			return nil, fmt.Errorf("trace: thread %d stream: %w", i, err)
		}
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after the last stream", d.remaining())
	}
	return t, nil
}

// DecodeMeta parses just the trace header — label, graces, thread count,
// content hash — without validating the op sections. It is the cheap
// routing view: the fleet layer homes a multi-megabyte upload from its
// Meta alone, leaving full validation to the home node's service.
func DecodeMeta(data []byte) (Meta, error) {
	t, _, err := header(data)
	if err != nil {
		return Meta{}, err
	}
	return Meta{
		Label:        t.label,
		LockGrace:    t.lockGrace,
		BarrierGrace: t.barrierGrace,
		Threads:      len(t.threads),
		HashHex:      t.HashHex(),
	}, nil
}

// decodeSection validates one op-stream section and returns its encoded
// body. totalOps accumulates the declared (and verified) op count.
func decodeSection(d *decoder, totalOps *uint64) ([]byte, error) {
	count, err := d.uvarint("op count")
	if err != nil {
		return nil, err
	}
	size, err := d.uvarint("byte length")
	if err != nil {
		return nil, err
	}
	body, err := d.bytes(size, "stream")
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, fmt.Errorf("empty stream (must hold at least %v)", KindEnd)
	}
	sd := decoder{buf: body}
	for i := uint64(0); i < count; i++ {
		op, err := decodeOp(&sd)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		if (op.Kind == KindEnd) != (i == count-1) {
			return nil, fmt.Errorf("op %d: %v must be exactly the final op", i, KindEnd)
		}
	}
	if sd.remaining() != 0 {
		return nil, fmt.Errorf("%d bytes beyond the declared %d ops", sd.remaining(), count)
	}
	*totalOps += count
	return body, nil
}

// decodeOp decodes one op at the decoder's position.
func decodeOp(d *decoder) (Op, error) {
	if d.remaining() == 0 {
		return Op{}, fmt.Errorf("truncated stream")
	}
	head := d.buf[d.pos]
	d.pos++
	if head&^byte(headKindMask|headHasN|headOverhead) != 0 {
		return Op{}, fmt.Errorf("reserved head bits %#x set", head)
	}
	kind := Kind(head & headKindMask)
	if kind > KindEnd {
		return Op{}, fmt.Errorf("unknown kind %d", kind)
	}
	op := Op{Kind: kind, N: defaultN(kind), Overhead: head&headOverhead != 0}
	var err error
	switch kind {
	case KindCompute:
		if head&headHasN != 0 {
			return Op{}, fmt.Errorf("compute carries its count unconditionally")
		}
		n, err := d.uvarint("compute count")
		if err != nil {
			return Op{}, err
		}
		if n > 1<<32-1 {
			return Op{}, fmt.Errorf("compute count %d overflows uint32", n)
		}
		op.N = uint32(n)
	case KindLoad, KindStore:
		if op.Addr, err = d.uvarint("address"); err != nil {
			return Op{}, err
		}
		if op.PC, err = d.uvarint("pc"); err != nil {
			return Op{}, err
		}
	case KindEnd:
	default:
		id, err := d.uvarint("sync id")
		if err != nil {
			return Op{}, err
		}
		if id > 1<<32-1 {
			return Op{}, fmt.Errorf("sync id %d overflows uint32", id)
		}
		op.ID = uint32(id)
	}
	if kind != KindCompute && head&headHasN != 0 {
		n, err := d.uvarint("op count")
		if err != nil {
			return Op{}, err
		}
		if n > 1<<32-1 || n == uint64(defaultN(kind)) {
			return Op{}, fmt.Errorf("non-canonical op count %d", n)
		}
		op.N = uint32(n)
	}
	return op, nil
}

// Label returns the recorded name (may be empty).
func (t *Data) Label() string { return t.label }

// Threads returns the recorded thread count.
func (t *Data) Threads() int { return len(t.threads) }

// HasSequential reports whether the trace carries the single-threaded
// reference stream.
func (t *Data) HasSequential() bool { return t.seq != nil }

// LockGrace returns the recorded lock spin-grace override (0 = default).
func (t *Data) LockGrace() uint64 { return t.lockGrace }

// BarrierGrace returns the recorded barrier spin-grace override.
func (t *Data) BarrierGrace() uint64 { return t.barrierGrace }

// Queues returns the recorded bounded-queue registrations.
func (t *Data) Queues() []QueueReg { return append([]QueueReg(nil), t.queues...) }

// Barriers returns the recorded barrier registrations.
func (t *Data) Barriers() []BarrierReg { return append([]BarrierReg(nil), t.barriers...) }

// TotalOps returns the total recorded op count across every stream.
func (t *Data) TotalOps() uint64 { return t.totalOps }

// HashHex returns the lowercase-hex content hash: the trace's replay
// identity, stable under relabeling.
func (t *Data) HashHex() string { return hex.EncodeToString(t.hash[:]) }

// ThreadProgram returns a fresh streaming reader over thread i's recorded
// stream. Each call returns an independent program, so one Data replays any
// number of times.
func (t *Data) ThreadProgram(i int) BatchProgram {
	return &streamReader{buf: t.threads[i]}
}

// SequentialProgram returns a fresh streaming reader over the recorded
// single-threaded reference stream.
func (t *Data) SequentialProgram() (BatchProgram, error) {
	if t.seq == nil {
		return nil, fmt.Errorf("trace: no sequential stream was recorded (re-record with the sequential reference to measure a speedup stack)")
	}
	return &streamReader{buf: t.seq}, nil
}

// streamReader replays one validated encoded section as a BatchProgram,
// decoding ops lazily. Feedback is ignored — a recorded stream already took
// its branches — but batches still end immediately after every KindPop so
// the batch/feedback contract holds for any consumer counting on it.
type streamReader struct {
	buf  []byte
	pos  int
	done bool
}

// Next implements Program.
func (r *streamReader) Next(Feedback) Op {
	if r.done {
		return End()
	}
	d := decoder{buf: r.buf, pos: r.pos}
	op, err := decodeOp(&d)
	if err != nil {
		// Unreachable for Decode-validated sections; fail closed anyway.
		r.done = true
		return End()
	}
	r.pos = d.pos
	if op.Kind == KindEnd {
		r.done = true
	}
	return op
}

// NextBatch implements BatchProgram: it fills dst until the batch boundary
// contract forces a cut — after a KindPop (fresh feedback only arrives at
// batch boundaries) or at KindEnd.
func (r *streamReader) NextBatch(dst []Op, fb Feedback) int {
	n := 0
	for n < len(dst) {
		op := r.Next(fb)
		dst[n] = op
		n++
		if op.Kind == KindPop || op.Kind == KindEnd {
			break
		}
	}
	return n
}
