package cpu

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{DispatchWidth: 0, ROBSize: 128}).Validate(); err == nil {
		t.Fatal("zero width accepted")
	}
	if err := (Config{DispatchWidth: 4, ROBSize: 0}).Validate(); err == nil {
		t.Fatal("zero ROB accepted")
	}
}

func TestComputeCyclesRounding(t *testing.T) {
	c := Default() // width 4
	cases := []struct{ instrs, cycles uint64 }{
		{0, 0}, {1, 1}, {3, 1}, {4, 1}, {5, 2}, {8, 2}, {9, 3}, {400, 100},
	}
	for _, tc := range cases {
		if got := c.ComputeCycles(tc.instrs); got != tc.cycles {
			t.Errorf("ComputeCycles(%d) = %d, want %d", tc.instrs, got, tc.cycles)
		}
	}
}

func TestBlockingMissStall(t *testing.T) {
	c := Default() // base 12, overlap 24
	if got := c.BlockingMissStall(100); got != 100+12-24 {
		t.Fatalf("stall = %d", got)
	}
	// Fully hidden short miss.
	if got := c.BlockingMissStall(5); got != 0 {
		t.Fatalf("short miss stall = %d, want 0", got)
	}
}

func TestExposedInterferenceProportional(t *testing.T) {
	c := Default()
	// When nothing is hidden the interference passes through scaled by
	// stall/total.
	lat := uint64(188) // total 200, stall 176
	interf := uint64(100)
	want := interf * c.BlockingMissStall(lat) / (c.LLCMissBase + lat)
	if got := c.ExposedInterference(interf, lat); got != want {
		t.Fatalf("exposed = %d, want %d", got, want)
	}
	if got := c.ExposedInterference(0, lat); got != 0 {
		t.Fatalf("zero interference produced %d", got)
	}
}

func TestExposedInterferenceNeverExceedsRaw(t *testing.T) {
	c := Default()
	f := func(interf, lat uint16) bool {
		e := c.ExposedInterference(uint64(interf), uint64(lat))
		return e <= uint64(interf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExposedInterferenceMonotoneInLatency(t *testing.T) {
	c := Default()
	prev := uint64(0)
	for lat := uint64(0); lat < 500; lat += 10 {
		e := c.ExposedInterference(50, lat)
		if e < prev {
			t.Fatalf("exposed interference decreased at lat=%d: %d < %d", lat, e, prev)
		}
		prev = e
	}
}
