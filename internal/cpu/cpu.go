// Package cpu provides the mechanistic core timing model of the simulated
// CMP: a four-wide superscalar out-of-order core abstracted with interval
// analysis (Eyerman et al., TOCS 2009), the same first-order model the
// paper's accounting architecture assumes.
//
// The model's key abstractions:
//
//   - Dispatch: computation progresses at DispatchWidth instructions per
//     cycle in the absence of miss events.
//   - L1 hits are fully hidden by the out-of-order window (the paper makes
//     the same assumption to justify ignoring coherency misses on balanced
//     cores, Section 4.5).
//   - LLC hits expose a short, partially hidden stall.
//   - LLC load misses drain the window: the core stalls once the miss
//     blocks the ROB head, paying the full memory latency minus a fixed
//     overlap credit for the independent work behind the miss. Interference
//     is charged only for these blocking misses, mirroring Section 4.1.
//   - Store misses retire through the store buffer and do not stall the
//     core, but they do occupy the shared memory system.
package cpu

import "fmt"

// Config describes the core microarchitecture.
type Config struct {
	// DispatchWidth is the sustained dispatch/issue width.
	DispatchWidth int
	// ROBSize is the reorder-buffer capacity (documentational; the overlap
	// credit summarizes its effect).
	ROBSize int
	// LLCHitStall is the exposed stall of an L1 miss that hits the LLC.
	LLCHitStall uint64
	// LLCMissBase is the fixed LLC-miss overhead (tag lookup, request
	// launch) added before the memory-system latency.
	LLCMissBase uint64
	// MLPOverlap is the fixed number of miss cycles hidden by out-of-order
	// execution (memory-level parallelism credit) on a blocking load miss.
	MLPOverlap uint64
	// CoherenceForwardStall is the extra exposed stall when the data must
	// be forwarded from a remote Modified line.
	CoherenceForwardStall uint64
	// UpgradeStall is the exposed stall of a store upgrade (S->M
	// invalidation round). Small: stores retire through the store buffer.
	UpgradeStall uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.DispatchWidth <= 0 {
		return fmt.Errorf("cpu: dispatch width must be positive, got %d", c.DispatchWidth)
	}
	if c.ROBSize <= 0 {
		return fmt.Errorf("cpu: ROB size must be positive, got %d", c.ROBSize)
	}
	return nil
}

// Default returns the paper's core: four-wide superscalar out-of-order.
func Default() Config {
	return Config{
		DispatchWidth:         4,
		ROBSize:               128,
		LLCHitStall:           8,
		LLCMissBase:           12,
		MLPOverlap:            24,
		CoherenceForwardStall: 16,
		UpgradeStall:          4,
	}
}

// ComputeCycles returns the cycles to dispatch instrs instructions of
// miss-free computation: ceil(instrs / width).
func (c Config) ComputeCycles(instrs uint64) uint64 {
	w := uint64(c.DispatchWidth)
	return (instrs + w - 1) / w
}

// BlockingMissStall returns the exposed stall of a blocking LLC load miss
// whose memory-system latency (queueing included) is memLatency.
func (c Config) BlockingMissStall(memLatency uint64) uint64 {
	total := c.LLCMissBase + memLatency
	if total <= c.MLPOverlap {
		return 0
	}
	return total - c.MLPOverlap
}

// ExposedInterference scales raw interference cycles of a blocking miss by
// the fraction of the miss latency that was actually exposed, so that
// overlap hides interference and base latency proportionally. This keeps
// the accounted interference consistent with the charged stall.
func (c Config) ExposedInterference(interference, memLatency uint64) uint64 {
	if interference == 0 {
		return 0
	}
	total := c.LLCMissBase + memLatency
	stall := c.BlockingMissStall(memLatency)
	if stall >= total {
		return interference
	}
	// Proportional attribution, rounding down.
	return interference * stall / total
}
