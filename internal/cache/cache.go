// Package cache implements the on-chip cache substrate of the simulated CMP:
// set-associative tag arrays with true-LRU replacement, per-core private L1
// data caches with MSI invalidation state, and a shared, inclusive last-level
// cache (LLC) that carries a sharer vector per line for directory-style
// coherence.
//
// The package is purely functional/structural: it models *which* accesses
// hit and *what* gets evicted or invalidated. Timing (latencies, bus and
// bank occupancy) is owned by internal/mem and internal/sim.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes the geometry of one cache.
type Config struct {
	// SizeBytes is the total data capacity.
	SizeBytes int64
	// Ways is the associativity.
	Ways int
	// LineBytes is the cache-line size (power of two).
	LineBytes int64
}

// Validate reports whether the geometry is internally consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%int64(c.Ways) != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / int64(c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int {
	return int(c.SizeBytes / c.LineBytes / int64(c.Ways))
}

// LineAddr returns the line-granular address (byte address / line size).
func (c Config) LineAddr(addr uint64) uint64 {
	return addr / uint64(c.LineBytes)
}

// SetIndex returns the set an address maps to.
func (c Config) SetIndex(addr uint64) int {
	return int(c.LineAddr(addr) % uint64(c.Sets()))
}

// Tag returns the tag of an address.
func (c Config) Tag(addr uint64) uint64 {
	return c.LineAddr(addr) / uint64(c.Sets())
}

// State is the MSI coherence state of a private-cache line.
type State uint8

// Private-cache line states.
const (
	Invalid State = iota
	Shared
	Modified
)

// String returns the canonical one-letter state name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// Line is one tag-array entry. The fields beyond Tag/Valid are used only by
// the cache level that needs them (coherence state in L1s, sharer vector in
// the LLC); keeping one struct avoids a zoo of near-identical types. The
// two 8-byte words lead so the struct packs into 24 bytes — set walks and
// MRU shifts move 25% less memory than the naive 32-byte layout.
type Line struct {
	Tag uint64
	// Sharers is a bit vector of cores holding the line in their L1
	// (LLC directory). Limits the simulated machine to 64 cores.
	Sharers uint64
	Valid   bool
	Dirty   bool
	// State is the MSI state for private caches.
	State State
	// OwnerMod is the core holding the line Modified in its L1, or -1.
	OwnerMod int8
	// InsertedBy is the core whose miss installed the line (LLC only).
	InsertedBy int8
	// CoherenceInvalid marks an L1 tombstone: the line was invalidated by a
	// coherence action (remote store) rather than replaced. A subsequent
	// miss that matches the tombstone is a coherence miss. Per the paper
	// (Section 4.5), the status bits are updated while the tag remains in
	// the array, which is exactly what makes this classification possible.
	CoherenceInvalid bool
}

// Array is a set-associative tag array with true-LRU replacement. Ways are
// stored in MRU-to-LRU order within each set; with the small associativities
// used here (<= 16 ways) the shift on promotion is cheaper and simpler than
// per-line counters.
//
// The geometry is precomputed once at construction: because line size and
// set count are powers of two (Config.Validate enforces both), the
// per-access address decomposition is two shifts and a mask instead of the
// int64 divisions Config's own methods pay. Every per-access operation runs
// in a single pass over the set.
type Array struct {
	cfg  Config
	sets [][]Line

	lineShift uint   // log2(LineBytes): lineAddr = addr >> lineShift
	setBits   uint   // log2(Sets): tag = lineAddr >> setBits
	setMask   uint64 // Sets-1: set = lineAddr & setMask

	// full[set] records that the set holds no invalid ways, letting insert
	// skip its victim scan: a full set always evicts the LRU way. Sets
	// only lose lines through Invalidate (which clears the flag), so in
	// steady state — an LLC set is never invalidated — the scan runs once.
	full []bool
}

// NewArray allocates a tag array for the given geometry. It panics on an
// invalid configuration: geometry is static builder input, not runtime data.
func NewArray(cfg Config) *Array {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]Line, cfg.Sets())
	backing := make([]Line, cfg.Sets()*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
		for w := range sets[i] {
			sets[i][w].OwnerMod = -1
			sets[i][w].InsertedBy = -1
		}
	}
	return &Array{
		cfg:       cfg,
		sets:      sets,
		lineShift: uint(bits.TrailingZeros64(uint64(cfg.LineBytes))),
		setBits:   uint(bits.TrailingZeros64(uint64(cfg.Sets()))),
		setMask:   uint64(cfg.Sets()) - 1,
		full:      make([]bool, cfg.Sets()),
	}
}

// Config returns the array geometry.
func (a *Array) Config() Config { return a.cfg }

// Reset restores the array to its just-constructed state, reusing the
// backing storage (machine pooling across simulation runs).
func (a *Array) Reset() {
	for _, s := range a.sets {
		for w := range s {
			s[w] = Line{OwnerMod: -1, InsertedBy: -1}
		}
	}
	for i := range a.full {
		a.full[i] = false
	}
}

// SetIndex returns the set addr maps to (precomputed shift/mask fast path;
// equals Config.SetIndex).
func (a *Array) SetIndex(addr uint64) int {
	return int((addr >> a.lineShift) & a.setMask)
}

// Tag returns addr's tag (precomputed shift fast path; equals Config.Tag).
func (a *Array) Tag(addr uint64) uint64 {
	return addr >> a.lineShift >> a.setBits
}

// lookup walks (set, tag) exactly once: on a hit the line is promoted to
// MRU and a pointer to it (now at way 0) returned; on a miss it reports
// whether the set holds a coherence tombstone of the tag. The single pass
// replaces the Probe+Touch+Line and Probe+ProbeTombstone sequences. A valid
// line and a tombstone never share a tag within a set (Insert consumes and
// defensively clears same-tag tombstones), so stopping the walk at a hit
// cannot miss a tombstone that matters.
func (a *Array) lookup(set int, tag uint64) (line *Line, hit, tombstone bool) {
	s := a.sets[set]
	for w := range s {
		l := &s[w]
		// Tag first: in the common mismatch case this is the only branch
		// taken per way.
		if l.Tag == tag {
			if l.Valid {
				if w != 0 {
					moved := *l
					copy(s[1:w+1], s[0:w])
					s[0] = moved
				}
				return &s[0], true, false
			}
			if l.CoherenceInvalid {
				tombstone = true
			}
		}
	}
	return nil, false, tombstone
}

// probeLine returns the valid line holding (set, tag) without touching
// replacement state, or nil. Used by the paths that must not promote:
// upgrade handling and L1-victim writeback into the LLC.
func (a *Array) probeLine(set int, tag uint64) *Line {
	s := a.sets[set]
	for w := range s {
		if s[w].Tag == tag && s[w].Valid {
			return &s[w]
		}
	}
	return nil
}

// Probe looks up addr without updating replacement state. It returns the
// way index and whether the line is present and valid.
func (a *Array) Probe(addr uint64) (set, way int, hit bool) {
	set = a.SetIndex(addr)
	tag := a.Tag(addr)
	s := a.sets[set]
	for w := range s {
		if s[w].Valid && s[w].Tag == tag {
			return set, w, true
		}
	}
	return set, -1, false
}

// ProbeTombstone reports whether the set holds an *invalid* entry whose tag
// matches addr and that was invalidated by coherence. Used to classify
// coherence misses.
func (a *Array) ProbeTombstone(addr uint64) bool {
	set := a.SetIndex(addr)
	tag := a.Tag(addr)
	for w := range a.sets[set] {
		l := &a.sets[set][w]
		if !l.Valid && l.CoherenceInvalid && l.Tag == tag {
			return true
		}
	}
	return false
}

// Line returns a pointer to the line at (set, way) for metadata updates.
func (a *Array) Line(set, way int) *Line { return &a.sets[set][way] }

// Touch promotes (set, way) to MRU.
func (a *Array) Touch(set, way int) {
	s := a.sets[set]
	if way == 0 {
		return
	}
	l := s[way]
	copy(s[1:way+1], s[0:way])
	s[0] = l
}

// insert installs (set, tag) as MRU, evicting the LRU entry of the set if
// every way is valid, and returns a pointer to the installed line. Invalid
// entries (including tombstones) are consumed first, preferring the
// LRU-most invalid way; a tombstone of the same tag is always consumed, so
// a stale coherence marker cannot survive the line's return.
func (a *Array) insert(set int, tag uint64) (mru *Line, victim Line, evicted bool) {
	s := a.sets[set]
	way := len(s) - 1
	consumed := false // the fill way is a tombstone of this tag
	if !a.full[set] {
		way = -1
		invalids := 0
		for w := len(s) - 1; w >= 0; w-- {
			if !s[w].Valid {
				invalids++
				if way < 0 {
					way = w
				}
				if s[w].CoherenceInvalid && s[w].Tag == tag {
					way = w
					consumed = true
					break
				}
			}
		}
		if way < 0 {
			way = len(s) - 1
			a.full[set] = true
		} else if !consumed && invalids == 1 {
			// The completed scan found exactly one invalid way and this
			// insert consumes it, so the set is full from here on. (An
			// early tombstone break leaves the count unknown; the flag
			// stays clear and the next insert rescans.)
			a.full[set] = true
		}
	}
	victim = s[way]
	evicted = victim.Valid
	// Shift everything down and install at MRU position.
	copy(s[1:way+1], s[0:way])
	s[0] = Line{
		Tag:        tag,
		Valid:      true,
		OwnerMod:   -1,
		InsertedBy: -1,
	}
	if consumed {
		// The selection scan stopped at the consumed tombstone, so the
		// more-MRU ways were not examined: defensively clear any stale
		// tombstone of this tag. (When the scan completed without a
		// break it examined every way and proved no such tombstone
		// exists, so this pass is skipped.)
		for w := 1; w < len(s); w++ {
			if !s[w].Valid && s[w].CoherenceInvalid && s[w].Tag == tag {
				s[w].CoherenceInvalid = false
				s[w].Tag = 0
			}
		}
	}
	return &s[0], victim, evicted
}

// Insert installs a new line for addr as MRU, evicting the LRU entry of the
// set if every way is valid. Invalid entries (including tombstones) are
// consumed first, preferring the LRU-most invalid way. It returns the
// victim's previous contents and whether a valid line was evicted.
func (a *Array) Insert(addr uint64) (victim Line, evicted bool) {
	_, victim, evicted = a.insert(a.SetIndex(addr), a.Tag(addr))
	return victim, evicted
}

// invalidate is Invalidate with the address math hoisted out.
func (a *Array) invalidate(set int, tag uint64, coherence bool) (old Line, present bool) {
	l := a.probeLine(set, tag)
	if l == nil {
		return Line{}, false
	}
	a.full[set] = false
	old = *l
	l.Valid = false
	l.Dirty = false
	l.State = Invalid
	l.Sharers = 0
	l.OwnerMod = -1
	if coherence {
		l.CoherenceInvalid = true
	} else {
		l.Tag = 0
		l.CoherenceInvalid = false
	}
	return old, true
}

// Invalidate removes addr from the array if present. If coherence is true
// the entry is kept as a tombstone (tag retained, valid bit cleared,
// CoherenceInvalid set) so a later access can be classified as a coherence
// miss; otherwise the entry is fully cleared. It returns the line's previous
// contents and whether the line was present.
func (a *Array) Invalidate(addr uint64, coherence bool) (old Line, present bool) {
	return a.invalidate(a.SetIndex(addr), a.Tag(addr), coherence)
}

// VictimAddr reconstructs the base byte address of a victim line evicted
// from set.
func (a *Array) VictimAddr(set int, v Line) uint64 {
	return (v.Tag<<a.setBits | uint64(set)) << a.lineShift
}

// CountValid returns the number of valid lines (test/diagnostic helper).
func (a *Array) CountValid() int {
	n := 0
	for _, s := range a.sets {
		for _, l := range s {
			if l.Valid {
				n++
			}
		}
	}
	return n
}
