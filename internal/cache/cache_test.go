package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func smallCfg() Config {
	return Config{SizeBytes: 4096, Ways: 4, LineBytes: 64} // 16 sets
}

func TestConfigValidate(t *testing.T) {
	if err := smallCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 4, LineBytes: 64},
		{SizeBytes: 4096, Ways: 0, LineBytes: 64},
		{SizeBytes: 4096, Ways: 4, LineBytes: 48},      // not a power of two
		{SizeBytes: 4096 + 64, Ways: 4, LineBytes: 64}, // lines not divisible
		{SizeBytes: 4096 * 3, Ways: 4, LineBytes: 64},  // sets not power of two
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestAddressMapping(t *testing.T) {
	c := smallCfg()
	if c.Sets() != 16 {
		t.Fatalf("sets = %d, want 16", c.Sets())
	}
	// Consecutive lines map to consecutive sets, wrapping.
	for i := 0; i < 64; i++ {
		addr := uint64(i * 64)
		if got, want := c.SetIndex(addr), i%16; got != want {
			t.Fatalf("SetIndex(%#x) = %d, want %d", addr, got, want)
		}
	}
	// Same set, different tags.
	a1, a2 := uint64(0), uint64(16*64)
	if c.SetIndex(a1) != c.SetIndex(a2) {
		t.Fatal("addresses should map to the same set")
	}
	if c.Tag(a1) == c.Tag(a2) {
		t.Fatal("tags should differ")
	}
}

func TestArrayInsertProbeTouch(t *testing.T) {
	a := NewArray(smallCfg())
	addr := uint64(0x1000)
	if _, _, hit := a.Probe(addr); hit {
		t.Fatal("empty array must miss")
	}
	if _, evicted := a.Insert(addr); evicted {
		t.Fatal("insertion into empty set must not evict")
	}
	if _, _, hit := a.Probe(addr); !hit {
		t.Fatal("inserted line must hit")
	}
}

func TestArrayLRUEviction(t *testing.T) {
	a := NewArray(smallCfg())
	set0 := func(i int) uint64 { return uint64(i) * 16 * 64 } // all map to set 0
	for i := 0; i < 4; i++ {
		a.Insert(set0(i))
	}
	// Touch line 0 to promote it; line 1 becomes LRU.
	s, w, hit := a.Probe(set0(0))
	if !hit {
		t.Fatal("line 0 missing")
	}
	a.Touch(s, w)
	victim, evicted := a.Insert(set0(4))
	if !evicted {
		t.Fatal("full set must evict")
	}
	vaddr := a.VictimAddr(s, victim)
	if vaddr != set0(1) {
		t.Fatalf("evicted %#x, want LRU %#x", vaddr, set0(1))
	}
	if _, _, hit := a.Probe(set0(0)); !hit {
		t.Fatal("recently-touched line was evicted")
	}
}

func TestArrayInvalidateTombstone(t *testing.T) {
	a := NewArray(smallCfg())
	addr := uint64(0x40)
	a.Insert(addr)
	if _, present := a.Invalidate(addr, true); !present {
		t.Fatal("invalidate missed present line")
	}
	if _, _, hit := a.Probe(addr); hit {
		t.Fatal("invalidated line still hits")
	}
	if !a.ProbeTombstone(addr) {
		t.Fatal("coherence tombstone missing")
	}
	// Non-coherence invalidation leaves no tombstone.
	a.Insert(addr)
	a.Invalidate(addr, false)
	if a.ProbeTombstone(addr) {
		t.Fatal("capacity invalidation left a tombstone")
	}
}

func TestArrayInvalidateAbsent(t *testing.T) {
	a := NewArray(smallCfg())
	if _, present := a.Invalidate(0x123400, true); present {
		t.Fatal("invalidate of absent line reported present")
	}
}

// referenceLRU is an oracle model: per set, a slice ordered MRU..LRU.
type referenceLRU struct {
	cfg  Config
	sets map[int][]uint64
}

func (r *referenceLRU) access(addr uint64) bool {
	set := r.cfg.SetIndex(addr)
	tag := r.cfg.Tag(addr)
	s := r.sets[set]
	for i, tg := range s {
		if tg == tag {
			copy(s[1:i+1], s[:i])
			s[0] = tag
			return true
		}
	}
	s = append([]uint64{tag}, s...)
	if len(s) > r.cfg.Ways {
		s = s[:r.cfg.Ways]
	}
	r.sets[set] = s
	return false
}

func TestArrayMatchesReferenceLRU(t *testing.T) {
	cfg := smallCfg()
	a := NewArray(cfg)
	ref := &referenceLRU{cfg: cfg, sets: map[int][]uint64{}}
	rng := trace.NewRNG(1234)
	for i := 0; i < 50000; i++ {
		addr := rng.Uint64n(4096*4) / 8 * 8
		_, _, hit := a.Probe(addr)
		if hit {
			s, w, _ := a.Probe(addr)
			a.Touch(s, w)
		} else {
			a.Insert(addr)
		}
		refHit := ref.access(addr)
		if hit != refHit {
			t.Fatalf("access %d (%#x): model hit=%v, reference hit=%v", i, addr, hit, refHit)
		}
	}
}

func TestHierarchyBasicMSI(t *testing.T) {
	h := NewHierarchy(2, smallCfg(), Config{SizeBytes: 16384, Ways: 4, LineBytes: 64})
	addr := uint64(0x80)

	out := h.Access(0, addr, false)
	if out.L1Hit || out.LLCHit {
		t.Fatalf("cold access should miss everywhere: %+v", out)
	}
	out = h.Access(0, addr, false)
	if !out.L1Hit {
		t.Fatal("second access should hit L1")
	}

	// Core 1 reads: misses L1, hits LLC.
	out = h.Access(1, addr, false)
	if out.L1Hit || !out.LLCHit {
		t.Fatalf("expected LLC hit for core 1: %+v", out)
	}

	// Core 1 writes while line Shared in core 0: upgrade + invalidation.
	out = h.Access(1, addr, true)
	if !out.L1Hit || !out.Upgrade || out.InvalidationsSent != 1 {
		t.Fatalf("expected upgrade invalidating core 0: %+v", out)
	}

	// Core 0 re-reads: coherence miss (tombstone) + dirty forward.
	out = h.Access(0, addr, false)
	if !out.CoherenceMiss {
		t.Fatalf("expected coherence miss: %+v", out)
	}
	if !out.DirtyForward {
		t.Fatalf("expected dirty forward from core 1's Modified copy: %+v", out)
	}
	if h.Stats().CoherenceMisses[0] != 1 {
		t.Fatalf("coherence miss not counted: %+v", h.Stats().CoherenceMisses)
	}
}

func TestHierarchyWriteMissInvalidatesSharers(t *testing.T) {
	h := NewHierarchy(3, smallCfg(), Config{SizeBytes: 16384, Ways: 4, LineBytes: 64})
	addr := uint64(0x140)
	h.Access(0, addr, false)
	h.Access(1, addr, false)
	// Core 2 writes: both sharers invalidated.
	out := h.Access(2, addr, true)
	if out.InvalidationsSent != 2 {
		t.Fatalf("invalidations = %d, want 2", out.InvalidationsSent)
	}
	if h.L1(0).ProbeTombstone(addr) != true || h.L1(1).ProbeTombstone(addr) != true {
		t.Fatal("sharers lack coherence tombstones")
	}
}

func TestHierarchyInclusiveEviction(t *testing.T) {
	// Tiny LLC: 4 sets x 2 ways. Filling one LLC set evicts lines that must
	// also vanish from the L1s (inclusion).
	l1 := Config{SizeBytes: 1024, Ways: 2, LineBytes: 64} // 8 sets
	llc := Config{SizeBytes: 512, Ways: 2, LineBytes: 64} // 4 sets
	h := NewHierarchy(1, l1, llc)
	// Three addresses in the same LLC set (stride = sets*line = 256).
	a0, a1, a2 := uint64(0), uint64(256), uint64(512)
	h.Access(0, a0, false)
	h.Access(0, a1, false)
	out := h.Access(0, a2, false)
	if !out.LLCVictimValid {
		t.Fatalf("expected LLC eviction: %+v", out)
	}
	if _, _, hit := h.L1(0).Probe(out.LLCVictimAddr); hit {
		t.Fatal("inclusion violated: victim still in L1")
	}
}

func TestHierarchyDirtyVictimWriteback(t *testing.T) {
	l1 := Config{SizeBytes: 1024, Ways: 2, LineBytes: 64}
	llc := Config{SizeBytes: 512, Ways: 2, LineBytes: 64}
	h := NewHierarchy(1, l1, llc)
	a0, a1, a2 := uint64(0), uint64(256), uint64(512)
	h.Access(0, a0, true) // dirty in L1
	h.Access(0, a1, false)
	out := h.Access(0, a2, false)
	if !out.LLCVictimValid || !out.LLCVictimDirty {
		t.Fatalf("dirty victim must require writeback: %+v", out)
	}
	if h.Stats().LLCWritebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", h.Stats().LLCWritebacks)
	}
}

func TestHierarchyStatsConservation(t *testing.T) {
	h := NewHierarchy(4, smallCfg(), Config{SizeBytes: 32768, Ways: 8, LineBytes: 64})
	rng := trace.NewRNG(99)
	accesses := 20000
	for i := 0; i < accesses; i++ {
		core := rng.Intn(4)
		addr := rng.Uint64n(64 * 1024)
		h.Access(core, addr, rng.Bool(0.3))
	}
	st := h.Stats()
	var l1h, l1m, llch, llcm uint64
	for c := 0; c < 4; c++ {
		l1h += st.L1Hits[c]
		l1m += st.L1Misses[c]
		llch += st.LLCHits[c]
		llcm += st.LLCMisses[c]
	}
	if l1h+l1m != uint64(accesses) {
		t.Fatalf("L1 hits+misses = %d, want %d", l1h+l1m, accesses)
	}
	if llch+llcm != l1m {
		t.Fatalf("LLC accesses %d != L1 misses %d", llch+llcm, l1m)
	}
}

func TestHierarchyPropertyNoGhostHits(t *testing.T) {
	// Property: a single-core hierarchy can only hit lines it accessed.
	f := func(seed uint64) bool {
		h := NewHierarchy(1, smallCfg(), Config{SizeBytes: 16384, Ways: 4, LineBytes: 64})
		rng := trace.NewRNG(seed)
		seen := map[uint64]bool{}
		for i := 0; i < 500; i++ {
			addr := rng.Uint64n(32768) &^ 63
			out := h.Access(0, addr, rng.Bool(0.2))
			if (out.L1Hit || out.LLCHit) && !seen[addr] {
				return false
			}
			seen[addr] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestVictimAddrRoundTrip(t *testing.T) {
	cfg := smallCfg()
	a := NewArray(cfg)
	addr := uint64(0x12340) &^ 63
	a.Insert(addr)
	set, way, hit := a.Probe(addr)
	if !hit {
		t.Fatal("line missing")
	}
	line := a.Line(set, way)
	if got := a.VictimAddr(set, *line); got != addr&^63 {
		t.Fatalf("VictimAddr = %#x, want %#x", got, addr&^63)
	}
}
