package cache

// Hierarchy models the two-level cache system of the simulated CMP: private
// per-core L1 data caches over a shared, inclusive LLC, kept coherent with a
// directory-style MSI invalidation protocol (sharer vector per LLC line).
//
// Hierarchy implements only the structural protocol: hit/miss outcomes,
// evictions, invalidations and writebacks. All latencies are applied by the
// caller (internal/sim) based on the returned Outcome, which keeps the
// protocol unit-testable without a timing model.
type Hierarchy struct {
	l1  []*Array
	llc *Array

	stats HierarchyStats
}

// HierarchyStats aggregates protocol event counts, per core.
type HierarchyStats struct {
	L1Hits          []uint64
	L1Misses        []uint64
	LLCHits         []uint64
	LLCMisses       []uint64
	CoherenceMisses []uint64 // L1 misses caused by remote invalidation
	Upgrades        []uint64 // S->M transitions requiring invalidations
	Invalidations   []uint64 // lines invalidated in this core's L1 by others
	DirtyForwards   []uint64 // accesses serviced from a remote Modified line
	LLCWritebacks   uint64   // dirty LLC victims written to memory
}

// Outcome describes what one access did to the hierarchy.
type Outcome struct {
	// L1Hit is true when the access hit in the local L1 (no LLC involvement
	// except for upgrades).
	L1Hit bool
	// LLCHit is true when the access missed L1 but hit the shared LLC.
	LLCHit bool
	// CoherenceMiss is true when the L1 miss matched a coherence tombstone:
	// the line was present earlier and invalidated by a remote store.
	CoherenceMiss bool
	// DirtyForward is true when the data was held Modified in a remote L1
	// and had to be forwarded/downgraded.
	DirtyForward bool
	// Upgrade is true when a store hit a Shared L1 line and had to
	// invalidate remote copies before writing.
	Upgrade bool
	// InvalidationsSent counts remote L1 lines invalidated by this access.
	InvalidationsSent int
	// LLCVictimValid is true when the LLC evicted a valid line to make room.
	LLCVictimValid bool
	// LLCVictimDirty is true when that victim must be written back to
	// memory (it consumes bus bandwidth in the timing model).
	LLCVictimDirty bool
	// LLCVictimAddr is the base address of the evicted LLC line.
	LLCVictimAddr uint64
	// LLCSet is the LLC set index touched by the access (for set sampling).
	LLCSet int
}

// NewHierarchy builds a hierarchy with cores identical private L1s and one
// shared LLC.
func NewHierarchy(cores int, l1 Config, llc Config) *Hierarchy {
	if cores <= 0 || cores > 64 {
		panic("cache: core count must be in [1,64] (sharer vector is 64-bit)")
	}
	h := &Hierarchy{
		l1:  make([]*Array, cores),
		llc: NewArray(llc),
	}
	for i := range h.l1 {
		h.l1[i] = NewArray(l1)
	}
	h.stats = HierarchyStats{
		L1Hits:          make([]uint64, cores),
		L1Misses:        make([]uint64, cores),
		LLCHits:         make([]uint64, cores),
		LLCMisses:       make([]uint64, cores),
		CoherenceMisses: make([]uint64, cores),
		Upgrades:        make([]uint64, cores),
		Invalidations:   make([]uint64, cores),
		DirtyForwards:   make([]uint64, cores),
	}
	return h
}

// Cores returns the number of private caches.
func (h *Hierarchy) Cores() int { return len(h.l1) }

// LLC exposes the shared array (used by the ATD to mirror geometry).
func (h *Hierarchy) LLC() *Array { return h.llc }

// L1 exposes core's private array (diagnostics and tests).
func (h *Hierarchy) L1(core int) *Array { return h.l1[core] }

// Stats returns the accumulated protocol statistics.
func (h *Hierarchy) Stats() *HierarchyStats { return &h.stats }

// Access performs one load or store by core to addr and returns the
// structural outcome. It updates L1 and LLC contents, replacement state,
// sharer vectors and coherence tombstones.
func (h *Hierarchy) Access(core int, addr uint64, write bool) Outcome {
	var out Outcome
	l1 := h.l1[core]
	out.LLCSet = h.llc.Config().SetIndex(addr)

	if set, way, hit := l1.Probe(addr); hit {
		l1.Touch(set, way) // after Touch the hit line is at way 0
		line := l1.Line(set, 0)
		h.stats.L1Hits[core]++
		out.L1Hit = true
		if write && line.State == Shared {
			// Upgrade: invalidate all other sharers via the directory.
			out.Upgrade = true
			h.stats.Upgrades[core]++
			if _, lway, lhit := h.llc.Probe(addr); lhit {
				lline := h.llc.Line(h.llc.Config().SetIndex(addr), lway)
				out.InvalidationsSent = h.invalidateRemoteSharers(core, addr, lline)
				lline.Sharers = 1 << uint(core)
				lline.OwnerMod = int8(core)
			}
			line.State = Modified
			line.Dirty = true
		}
		return out
	}

	// L1 miss path.
	h.stats.L1Misses[core]++
	if l1.ProbeTombstone(addr) {
		out.CoherenceMiss = true
		h.stats.CoherenceMisses[core]++
	}

	llcSet, llcWay, llcHit := h.llc.Probe(addr)
	if llcHit {
		h.stats.LLCHits[core]++
		out.LLCHit = true
		line := h.llc.Line(llcSet, llcWay)
		if line.OwnerMod >= 0 && int(line.OwnerMod) != core {
			// Remote Modified copy: forward and downgrade/invalidate it.
			out.DirtyForward = true
			h.stats.DirtyForwards[core]++
			owner := int(line.OwnerMod)
			if write {
				if _, present := h.l1[owner].Invalidate(addr, true); present {
					h.stats.Invalidations[owner]++
					out.InvalidationsSent++
				}
				line.Sharers &^= 1 << uint(owner)
			} else {
				// Downgrade owner M->S; its data is written back into LLC.
				if oset, oway, ohit := h.l1[owner].Probe(addr); ohit {
					ol := h.l1[owner].Line(oset, oway)
					ol.State = Shared
					ol.Dirty = false
				}
			}
			line.Dirty = true
			line.OwnerMod = -1
		}
		if write {
			out.InvalidationsSent += h.invalidateRemoteSharers(core, addr, line)
			line.Sharers = 1 << uint(core)
			line.OwnerMod = int8(core)
		} else {
			line.Sharers |= 1 << uint(core)
		}
		h.llc.Touch(llcSet, llcWay)
		h.fillL1(core, addr, write)
		return out
	}

	// LLC miss: fetch from memory, install in LLC then L1.
	h.stats.LLCMisses[core]++
	victim, evicted := h.llc.Insert(addr)
	if evicted {
		out.LLCVictimValid = true
		out.LLCVictimAddr = h.llc.VictimAddr(llcSet, victim)
		// Inclusive LLC: purge the victim from every sharer's L1. These are
		// capacity invalidations, not coherence, so no tombstone is left.
		dirtyInL1 := false
		for c := 0; c < len(h.l1); c++ {
			if victim.Sharers&(1<<uint(c)) == 0 {
				continue
			}
			if old, present := h.l1[c].Invalidate(out.LLCVictimAddr, false); present {
				if old.State == Modified || old.Dirty {
					dirtyInL1 = true
				}
			}
		}
		if victim.Dirty || victim.OwnerMod >= 0 || dirtyInL1 {
			out.LLCVictimDirty = true
			h.stats.LLCWritebacks++
		}
	}
	newSet := h.llc.Config().SetIndex(addr)
	newLine := h.llc.Line(newSet, 0)
	newLine.InsertedBy = int8(core)
	newLine.Sharers = 1 << uint(core)
	if write {
		newLine.OwnerMod = int8(core)
	}
	h.fillL1(core, addr, write)
	return out
}

// invalidateRemoteSharers invalidates addr in every L1 other than core's,
// leaving coherence tombstones. It returns the number of invalidations.
func (h *Hierarchy) invalidateRemoteSharers(core int, addr uint64, line *Line) int {
	n := 0
	for c := 0; c < len(h.l1); c++ {
		if c == core || line.Sharers&(1<<uint(c)) == 0 {
			continue
		}
		if _, present := h.l1[c].Invalidate(addr, true); present {
			h.stats.Invalidations[c]++
			n++
		}
	}
	return n
}

// fillL1 installs addr into core's L1 in the appropriate MSI state and
// handles the L1 victim (writeback into the LLC line, sharer-bit cleanup).
func (h *Hierarchy) fillL1(core int, addr uint64, write bool) {
	l1 := h.l1[core]
	victim, evicted := l1.Insert(addr)
	set := l1.Config().SetIndex(addr)
	line := l1.Line(set, 0)
	if write {
		line.State = Modified
		line.Dirty = true
	} else {
		line.State = Shared
	}
	if !evicted {
		return
	}
	vaddr := l1.VictimAddr(set, victim)
	if vset, vway, vhit := h.llc.Probe(vaddr); vhit {
		vline := h.llc.Line(vset, vway)
		vline.Sharers &^= 1 << uint(core)
		if victim.State == Modified || victim.Dirty {
			vline.Dirty = true
		}
		if vline.OwnerMod == int8(core) {
			vline.OwnerMod = -1
		}
	}
}
