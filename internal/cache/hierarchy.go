package cache

import "math/bits"

// Hierarchy models the two-level cache system of the simulated CMP: private
// per-core L1 data caches over a shared, inclusive LLC, kept coherent with a
// directory-style MSI invalidation protocol (sharer vector per LLC line).
//
// Hierarchy implements only the structural protocol: hit/miss outcomes,
// evictions, invalidations and writebacks. All latencies are applied by the
// caller (internal/sim) based on the returned Outcome, which keeps the
// protocol unit-testable without a timing model.
type Hierarchy struct {
	l1  []*Array
	llc *Array

	stats HierarchyStats
}

// HierarchyStats aggregates protocol event counts, per core.
type HierarchyStats struct {
	L1Hits          []uint64
	L1Misses        []uint64
	LLCHits         []uint64
	LLCMisses       []uint64
	CoherenceMisses []uint64 // L1 misses caused by remote invalidation
	Upgrades        []uint64 // S->M transitions requiring invalidations
	Invalidations   []uint64 // lines invalidated in this core's L1 by others
	DirtyForwards   []uint64 // accesses serviced from a remote Modified line
	LLCWritebacks   uint64   // dirty LLC victims written to memory
}

// Clone returns a deep copy of the statistics: the per-core slices are
// copied, not aliased. Results that outlive the hierarchy must clone —
// machines are pooled across runs, so the live counters are reset and
// reused after the run that produced them.
func (s HierarchyStats) Clone() HierarchyStats {
	c := s
	c.L1Hits = append([]uint64(nil), s.L1Hits...)
	c.L1Misses = append([]uint64(nil), s.L1Misses...)
	c.LLCHits = append([]uint64(nil), s.LLCHits...)
	c.LLCMisses = append([]uint64(nil), s.LLCMisses...)
	c.CoherenceMisses = append([]uint64(nil), s.CoherenceMisses...)
	c.Upgrades = append([]uint64(nil), s.Upgrades...)
	c.Invalidations = append([]uint64(nil), s.Invalidations...)
	c.DirtyForwards = append([]uint64(nil), s.DirtyForwards...)
	return c
}

// Outcome describes what one access did to the hierarchy.
type Outcome struct {
	// L1Hit is true when the access hit in the local L1 (no LLC involvement
	// except for upgrades).
	L1Hit bool
	// LLCHit is true when the access missed L1 but hit the shared LLC.
	LLCHit bool
	// CoherenceMiss is true when the L1 miss matched a coherence tombstone:
	// the line was present earlier and invalidated by a remote store.
	CoherenceMiss bool
	// DirtyForward is true when the data was held Modified in a remote L1
	// and had to be forwarded/downgraded.
	DirtyForward bool
	// Upgrade is true when a store hit a Shared L1 line and had to
	// invalidate remote copies before writing.
	Upgrade bool
	// InvalidationsSent counts remote L1 lines invalidated by this access.
	InvalidationsSent int
	// LLCVictimValid is true when the LLC evicted a valid line to make room.
	LLCVictimValid bool
	// LLCVictimDirty is true when that victim must be written back to
	// memory (it consumes bus bandwidth in the timing model).
	LLCVictimDirty bool
	// LLCVictimAddr is the base address of the evicted LLC line.
	LLCVictimAddr uint64
	// LLCSet is the LLC set index touched by the access (for set sampling).
	LLCSet int
}

// NewHierarchy builds a hierarchy with cores identical private L1s and one
// shared LLC.
func NewHierarchy(cores int, l1 Config, llc Config) *Hierarchy {
	if cores <= 0 || cores > 64 {
		panic("cache: core count must be in [1,64] (sharer vector is 64-bit)")
	}
	h := &Hierarchy{
		l1:  make([]*Array, cores),
		llc: NewArray(llc),
	}
	for i := range h.l1 {
		h.l1[i] = NewArray(l1)
	}
	h.stats = HierarchyStats{
		L1Hits:          make([]uint64, cores),
		L1Misses:        make([]uint64, cores),
		LLCHits:         make([]uint64, cores),
		LLCMisses:       make([]uint64, cores),
		CoherenceMisses: make([]uint64, cores),
		Upgrades:        make([]uint64, cores),
		Invalidations:   make([]uint64, cores),
		DirtyForwards:   make([]uint64, cores),
	}
	return h
}

// Cores returns the number of private caches.
func (h *Hierarchy) Cores() int { return len(h.l1) }

// LLC exposes the shared array (used by the ATD to mirror geometry).
func (h *Hierarchy) LLC() *Array { return h.llc }

// L1 exposes core's private array (diagnostics and tests).
func (h *Hierarchy) L1(core int) *Array { return h.l1[core] }

// Stats returns the accumulated protocol statistics.
func (h *Hierarchy) Stats() *HierarchyStats { return &h.stats }

// Reset restores the hierarchy to its just-constructed state, reusing every
// tag array and counter slice (machine pooling across simulation runs).
func (h *Hierarchy) Reset() {
	for _, a := range h.l1 {
		a.Reset()
	}
	h.llc.Reset()
	for _, s := range [][]uint64{
		h.stats.L1Hits, h.stats.L1Misses, h.stats.LLCHits, h.stats.LLCMisses,
		h.stats.CoherenceMisses, h.stats.Upgrades, h.stats.Invalidations,
		h.stats.DirtyForwards,
	} {
		for i := range s {
			s[i] = 0
		}
	}
	h.stats.LLCWritebacks = 0
}

// Access performs one load or store by core to addr and returns the
// structural outcome. It updates L1 and LLC contents, replacement state,
// sharer vectors and coherence tombstones.
//
// The address is decomposed exactly once per array geometry (all L1s share
// one geometry, so one L1 set/tag pair serves every private cache), and
// each set touched is walked in a single pass: lookup fuses probe, MRU
// promotion and tombstone classification; insert fuses victim selection
// with the MRU install.
func (h *Hierarchy) Access(core int, addr uint64, write bool) Outcome {
	var out Outcome
	l1 := h.l1[core]
	llc := h.llc
	l1Set, l1Tag := l1.SetIndex(addr), l1.Tag(addr)
	llcSet, llcTag := llc.SetIndex(addr), llc.Tag(addr)
	out.LLCSet = llcSet

	line, hit, tombstone := l1.lookup(l1Set, l1Tag)
	if hit {
		h.stats.L1Hits[core]++
		out.L1Hit = true
		if write && line.State == Shared {
			// Upgrade: invalidate all other sharers via the directory.
			out.Upgrade = true
			h.stats.Upgrades[core]++
			if lline := llc.probeLine(llcSet, llcTag); lline != nil {
				out.InvalidationsSent = h.invalidateRemoteSharers(core, l1Set, l1Tag, lline)
				lline.Sharers = 1 << uint(core)
				lline.OwnerMod = int8(core)
			}
			line.State = Modified
			line.Dirty = true
		}
		return out
	}

	// L1 miss path; the miss walk above already classified the tombstone.
	h.stats.L1Misses[core]++
	if tombstone {
		out.CoherenceMiss = true
		h.stats.CoherenceMisses[core]++
	}

	if line, llcHit, _ := llc.lookup(llcSet, llcTag); llcHit {
		h.stats.LLCHits[core]++
		out.LLCHit = true
		if line.OwnerMod >= 0 && int(line.OwnerMod) != core {
			// Remote Modified copy: forward and downgrade/invalidate it.
			out.DirtyForward = true
			h.stats.DirtyForwards[core]++
			owner := int(line.OwnerMod)
			if write {
				if _, present := h.l1[owner].invalidate(l1Set, l1Tag, true); present {
					h.stats.Invalidations[owner]++
					out.InvalidationsSent++
				}
				line.Sharers &^= 1 << uint(owner)
			} else {
				// Downgrade owner M->S; its data is written back into LLC.
				if ol := h.l1[owner].probeLine(l1Set, l1Tag); ol != nil {
					ol.State = Shared
					ol.Dirty = false
				}
			}
			line.Dirty = true
			line.OwnerMod = -1
		}
		if write {
			out.InvalidationsSent += h.invalidateRemoteSharers(core, l1Set, l1Tag, line)
			line.Sharers = 1 << uint(core)
			line.OwnerMod = int8(core)
		} else {
			line.Sharers |= 1 << uint(core)
		}
		h.fillL1(core, l1Set, l1Tag, write)
		return out
	}

	// LLC miss: fetch from memory, install in LLC then L1.
	h.stats.LLCMisses[core]++
	newLine, victim, evicted := llc.insert(llcSet, llcTag)
	if evicted {
		out.LLCVictimValid = true
		out.LLCVictimAddr = llc.VictimAddr(llcSet, victim)
		// Inclusive LLC: purge the victim from every sharer's L1. These are
		// capacity invalidations, not coherence, so no tombstone is left.
		// All L1s share one geometry: decompose the victim address once,
		// and iterate set bits instead of scanning every core.
		vSet, vTag := l1.SetIndex(out.LLCVictimAddr), l1.Tag(out.LLCVictimAddr)
		dirtyInL1 := false
		for v := victim.Sharers; v != 0; v &= v - 1 {
			c := bits.TrailingZeros64(v)
			if old, present := h.l1[c].invalidate(vSet, vTag, false); present {
				if old.State == Modified || old.Dirty {
					dirtyInL1 = true
				}
			}
		}
		if victim.Dirty || victim.OwnerMod >= 0 || dirtyInL1 {
			out.LLCVictimDirty = true
			h.stats.LLCWritebacks++
		}
	}
	newLine.InsertedBy = int8(core)
	newLine.Sharers = 1 << uint(core)
	if write {
		newLine.OwnerMod = int8(core)
	}
	h.fillL1(core, l1Set, l1Tag, write)
	return out
}

// invalidateRemoteSharers invalidates the (set, tag) line in every L1 other
// than core's, leaving coherence tombstones. All L1s share one geometry, so
// the caller's decomposition serves every private cache. It returns the
// number of invalidations.
func (h *Hierarchy) invalidateRemoteSharers(core, set int, tag uint64, line *Line) int {
	n := 0
	for v := line.Sharers &^ (1 << uint(core)); v != 0; v &= v - 1 {
		c := bits.TrailingZeros64(v)
		if _, present := h.l1[c].invalidate(set, tag, true); present {
			h.stats.Invalidations[c]++
			n++
		}
	}
	return n
}

// fillL1 installs the (set, tag) line into core's L1 in the appropriate MSI
// state and handles the L1 victim (writeback into the LLC line, sharer-bit
// cleanup).
func (h *Hierarchy) fillL1(core, set int, tag uint64, write bool) {
	l1 := h.l1[core]
	line, victim, evicted := l1.insert(set, tag)
	if write {
		line.State = Modified
		line.Dirty = true
	} else {
		line.State = Shared
	}
	if !evicted {
		return
	}
	vaddr := l1.VictimAddr(set, victim)
	if vline := h.llc.probeLine(h.llc.SetIndex(vaddr), h.llc.Tag(vaddr)); vline != nil {
		vline.Sharers &^= 1 << uint(core)
		if victim.State == Modified || victim.Dirty {
			vline.Dirty = true
		}
		if vline.OwnerMod == int8(core) {
			vline.OwnerMod = -1
		}
	}
}
