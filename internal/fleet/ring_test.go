package fleet_test

import (
	"fmt"
	"testing"

	"repro/internal/fleet"
)

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://node-%d:8080", i)
	}
	return nodes
}

// TestRingDeterministicAndBalanced pins the two properties routing relies
// on: every member computes identical ownership from the same list, and
// shares stay within a factor of two of fair.
func TestRingDeterministicAndBalanced(t *testing.T) {
	a, err := fleet.NewRing(ringNodes(3))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := fleet.NewRing(ringNodes(3))
	const keys = 3000
	counts := make(map[string]int)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("fingerprint-%d", i)
		owner := a.Owner(k)
		if owner != b.Owner(k) {
			t.Fatalf("two rings from one list disagree on %q", k)
		}
		counts[owner]++
	}
	for node, c := range counts {
		if c < keys/5 || c > keys/2 {
			t.Errorf("%s owns %d of %d keys — outside [1/5, 1/2]", node, c, keys)
		}
	}
	if len(counts) != 3 {
		t.Errorf("only %d nodes own keys", len(counts))
	}
}

// TestRingMinimalRemap pins the consistent-hashing property: removing one
// node only remaps the keys it owned.
func TestRingMinimalRemap(t *testing.T) {
	full, _ := fleet.NewRing(ringNodes(3))
	reduced, _ := fleet.NewRing(ringNodes(3)[:2])
	removed := ringNodes(3)[2]
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("fingerprint-%d", i)
		before := full.Owner(k)
		after := reduced.Owner(k)
		if before != removed && after != before {
			t.Fatalf("key %q moved from surviving node %q to %q", k, before, after)
		}
	}
}

// TestRingRejectsBadMembers pins the constructor guards.
func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := fleet.NewRing(nil); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := fleet.NewRing([]string{"a", "a"}); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := fleet.NewRing([]string{"a", ""}); err == nil {
		t.Error("empty member address accepted")
	}
}
