package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"repro/internal/service"
	"repro/internal/stack"
)

// Sweep splitting: a POST /v1/sweep batch mixing cells with different home
// nodes is decomposed into one single-cell NDJSON sub-sweep per cell, each
// dispatched to its home (or served locally), and the compact row lines
// are reassembled in declared order. The merge is byte-exact: the service
// pins that the json response body is exactly the indented array of the
// ndjson row lines, so both formats can be reconstituted from sub-sweep
// bytes without re-encoding (ReportRow floats are round-tripped nowhere).
// Formats whose documents are not row-concatenations (csv, svg, text) are
// served locally by the node that took the request.

// sweepCellBody mirrors the service's cell shape closely enough to split
// a batch and re-marshal each cell; full validation stays with the
// service.
type sweepCellBody struct {
	Bench     string          `json:"bench,omitempty"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	Threads   int             `json:"threads"`
	Cores     int             `json:"cores,omitempty"`
	Intervals int             `json:"intervals,omitempty"`
}

type sweepBody struct {
	Cells []sweepCellBody `json:"cells"`
}

// fleetMaxSweepCells mirrors the service's default batch bound: batches
// past it are served locally so splitting can never bypass the limit.
const fleetMaxSweepCells = 1024

// routeSweep routes POST /v1/sweep. Anything the fleet layer cannot
// cleanly resolve — unreadable body, unknown benchmark, invalid spec,
// interval cells, unexpected query parameters — is served locally so the
// service produces the canonical error.
func (h *Handler) routeSweep(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(r)
	if !ok {
		h.serveLocal(w, r)
		return
	}
	var sb sweepBody
	if err := json.Unmarshal(body, &sb); err != nil ||
		len(sb.Cells) == 0 || len(sb.Cells) > fleetMaxSweepCells {
		h.serveLocal(w, r)
		return
	}
	homes := make([]string, len(sb.Cells))
	allSame := true
	for i, c := range sb.Cells {
		if c.Intervals != 0 {
			h.serveLocal(w, r)
			return
		}
		fp, ok := cellIdentity{Bench: c.Bench, Spec: c.Spec}.fingerprint()
		if !ok {
			h.serveLocal(w, r)
			return
		}
		homes[i] = h.ring.Owner(fp.String())
		if homes[i] != homes[0] {
			allSame = false
		}
	}
	if allSame {
		// One home owns every cell: the whole batch forwards verbatim (any
		// format), and the home's engine deduplicates the batch internally.
		h.routeHome(w, r, homes[0], body, string(body))
		return
	}

	f, err := stack.NegotiateFormat(r.URL.Query().Get("format"), r.Header.Get("Accept"), stack.FormatJSON)
	if err != nil || (f != stack.FormatJSON && f != stack.FormatNDJSON) {
		h.serveLocal(w, r)
		return
	}
	for k := range r.URL.Query() {
		if k != "format" && k != "mode" {
			// An unknown parameter must get the service's 400, not vanish
			// into sub-requests that omit it.
			h.serveLocal(w, r)
			return
		}
	}
	query := "format=ndjson"
	if m := r.URL.Query().Get("mode"); m != "" {
		query += "&mode=" + url.QueryEscape(m)
	}

	results := make([]*peerResp, len(sb.Cells))
	var wg sync.WaitGroup
	for i := range sb.Cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, err := json.Marshal(sweepBody{Cells: []sweepCellBody{sb.Cells[i]}})
			if err != nil {
				return // results[i] stays nil; handled below
			}
			results[i] = h.subSweep(r, homes[i], query, sub)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if results[i] == nil {
			// A sub-request could not even be built, or the request context
			// died mid-fan-out; serving locally produces the canonical
			// envelope (and is mostly cache hits by now).
			h.serveLocal(w, r)
			return
		}
		if results[i].status != http.StatusOK {
			// The first failing cell in declared order answers for the
			// batch, envelope and status untouched — matching the
			// single-node contract of one error per sweep.
			writePeerResp(w, results[i])
			return
		}
	}
	var rows bytes.Buffer
	for i := range results {
		rows.Write(results[i].body)
	}
	if f == stack.FormatNDJSON {
		w.Header().Set("Content-Type", stack.FormatNDJSON.ContentType())
		w.Write(rows.Bytes())
		return
	}
	lines := strings.Split(strings.TrimRight(rows.String(), "\n"), "\n")
	var merged bytes.Buffer
	if err := json.Indent(&merged, []byte("["+strings.Join(lines, ",")+"]"), "", "  "); err != nil {
		h.serveLocal(w, r)
		return
	}
	merged.WriteByte('\n')
	w.Header().Set("Content-Type", stack.FormatJSON.ContentType())
	w.Write(merged.Bytes())
}

// subSweep fills one single-cell sub-sweep from its home: locally when
// this node is home, else from the peer via the response cache with local
// fallback on peer failure.
func (h *Handler) subSweep(r *http.Request, home, query string, body []byte) *peerResp {
	if home != h.self {
		resp, err := h.fromPeer(r, home, query, body, string(body))
		if err == nil {
			return resp
		}
		h.count(&h.peerErrors)
	}
	return h.localSub(r, query, body)
}

// localSub serves one sub-sweep on the local service. The hop header marks
// it fleet-internal: the client was already rate-limit-accounted when the
// batch was accepted.
func (h *Handler) localSub(r *http.Request, query string, body []byte) *peerResp {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "/v1/sweep?"+query, bytes.NewReader(body))
	if err != nil {
		return nil
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.HopHeader, h.self)
	h.count(&h.local)
	rec := newRecorder()
	h.inner.ServeHTTP(rec, req)
	return &peerResp{
		status:      rec.code,
		contentType: rec.header.Get("Content-Type"),
		retryAfter:  rec.header.Get("Retry-After"),
		body:        rec.body.Bytes(),
	}
}
