package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// The ring maps workload identities onto fleet nodes with a consistent
// hash: every node is placed on a uint64 circle at vnodes pseudo-random
// points (FNV-1a of "node#i"), and a key is owned by the first node point
// clockwise from the key's own hash. Each node is the home for ~1/N of
// the keyspace, and adding or removing one node remaps only ~1/N of the
// keys — the property that lets a fleet grow without invalidating every
// peer's cache. All nodes compute the same ring from the same member
// list, so routing needs no coordination service.

// ringVnodes is the virtual-node count per member: enough that a
// three-node fleet's shares stay within a few percent of 1/3 (the share
// standard deviation scales as 1/sqrt(vnodes)).
const ringVnodes = 256

// Ring is an immutable consistent-hash ring over a set of node addresses.
type Ring struct {
	nodes  []string
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds the ring from the member addresses. Members must be
// non-empty and distinct — a duplicate would silently double one node's
// keyspace share.
func NewRing(nodes []string) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: empty member list")
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{points: make([]ringPoint, 0, len(nodes)*ringVnodes)}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("fleet: empty member address")
		}
		if seen[n] {
			return nil, fmt.Errorf("fleet: duplicate member %q", n)
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full-hash collision between two nodes' vnodes is vanishingly
		// rare but must still order deterministically on every member.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Owner returns the node that is home for key: the first vnode clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the ring members in registration order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
