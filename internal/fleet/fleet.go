// Package fleet shards a speedupd service across cooperating nodes. It is
// a routing middleware wrapped around the service handler: every node runs
// the same code with the same member list, a consistent-hash ring (ring.go)
// assigns each workload fingerprint a home node, and requests for a
// workload whose home is elsewhere are filled from that home over the
// ordinary /v1 HTTP surface — so the fleet-wide cost of a unique cell is
// one simulation, on its home node, no matter which node the client asked.
//
// Life of a request on node A for a workload homed on node B:
//
//  1. A resolves the request's workload identity (bench name or inline
//     spec) to its fingerprint without simulating anything, and looks up
//     the home on the ring.
//  2. A consults its peer-response cache; a hit answers immediately with
//     the bytes B produced earlier.
//  3. On a miss, A forwards the request to B with the hop header set
//     (one hop at most: B serves hop-marked requests locally, never
//     re-forwards), collapses concurrent identical misses onto one
//     fetch, and caches B's 200 response.
//  4. If B is unreachable, A falls back to simulating locally —
//     availability over strict exactly-once.
//
// POST /v1/sweep batches are split per cell: each cell is dispatched to
// its home as a single-cell NDJSON sub-sweep (one compact row line), and
// the rows are reassembled in declared order — a byte-exact merge, because
// every encoder is deterministic and the json form is exactly the indented
// ndjson rows (pinned by service tests). Sweeps in csv/svg/text formats
// are served locally: those documents cannot be merged from row bytes.
//
// Determinism contract: a fleet answers every /v1 request with bytes
// identical to a single node's, because routing only changes where the
// simulation runs, never what is simulated (the engine memo and the ring
// key on the same fingerprint identity).
package fleet

import (
	"bytes"
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options configures a fleet member.
type Options struct {
	// Self is this node's address as it appears in Peers.
	Self string
	// Peers is the full member list, Self included, identical on every
	// node. Addresses may be host:port or http://host:port.
	Peers []string
	// CacheEntries bounds the peer-response cache (default 4096;
	// negative disables caching).
	CacheEntries int
	// Client performs peer requests (default http.DefaultClient; peer
	// calls inherit each request's context, so the service's own
	// SimTimeout bounds them).
	Client *http.Client
}

const defaultCacheEntries = 4096

// Handler is the fleet routing layer around a service handler.
type Handler struct {
	inner  http.Handler
	ring   *Ring
	self   string
	client *http.Client
	cache  *respCache

	flightMu sync.Mutex
	inflight map[string]*flightCall

	mu         sync.Mutex
	local      uint64 // routable requests served by this node as home
	forwarded  uint64 // requests sent to a peer home
	received   uint64 // hop-marked requests served for peers
	peerHits   uint64 // answers filled from the peer-response cache
	peerErrors uint64 // peer fetch failures (fell back to local)
}

// flightCall collapses concurrent identical peer fetches.
type flightCall struct {
	done chan struct{}
	resp *peerResp
	err  error
}

// peerResp is one captured peer (or local sub-request) response.
type peerResp struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
}

// Wrap builds the fleet layer around inner, which must be the node's own
// service handler.
func Wrap(inner http.Handler, opts Options) (*Handler, error) {
	self := normalizeAddr(opts.Self)
	members := make([]string, len(opts.Peers))
	found := false
	for i, p := range opts.Peers {
		members[i] = normalizeAddr(p)
		found = found || members[i] == self
	}
	if !found {
		return nil, fmt.Errorf("fleet: self %q is not in the member list %v", opts.Self, opts.Peers)
	}
	ring, err := NewRing(members)
	if err != nil {
		return nil, err
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	cacheEntries := opts.CacheEntries
	if cacheEntries == 0 {
		cacheEntries = defaultCacheEntries
	}
	return &Handler{
		inner:    inner,
		ring:     ring,
		self:     self,
		client:   client,
		cache:    newRespCache(cacheEntries),
		inflight: make(map[string]*flightCall),
	}, nil
}

// normalizeAddr gives every member address the same spelling: an http URL
// with no trailing slash.
func normalizeAddr(a string) string {
	a = strings.TrimRight(strings.TrimSpace(a), "/")
	if a == "" {
		return a
	}
	if !strings.Contains(a, "://") {
		a = "http://" + a
	}
	return a
}

// Ring exposes the member ring (tests, status).
func (h *Handler) Ring() *Ring { return h.ring }

func (h *Handler) count(c *uint64) {
	h.mu.Lock()
	*c++
	h.mu.Unlock()
}

// ServeHTTP routes one request: hop-marked and non-routable requests go
// straight to the local service; workload-keyed requests go to their home
// node; sweeps split per cell.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(service.HopHeader) != "" {
		h.count(&h.received)
		h.inner.ServeHTTP(w, r)
		return
	}
	switch r.URL.Path {
	case "/metrics":
		h.serveMetrics(w, r)
		return
	case "/v1/stack", "/v1/stack/intervals", "/v1/advise":
		if r.Method == http.MethodGet {
			h.routeQueryBench(w, r)
			return
		}
	case "/v1/workloads/analyze", "/v1/whatif":
		if r.Method == http.MethodPost {
			h.routeBodyCell(w, r)
			return
		}
	case "/v1/traces/analyze":
		if r.Method == http.MethodPost {
			h.routeTrace(w, r)
			return
		}
	case "/v1/sweep":
		if r.Method == http.MethodPost {
			h.routeSweep(w, r)
			return
		}
	}
	h.inner.ServeHTTP(w, r)
}

// serveLocal serves r on the local service.
func (h *Handler) serveLocal(w http.ResponseWriter, r *http.Request) {
	h.count(&h.local)
	h.inner.ServeHTTP(w, r)
}

// routeQueryBench routes a GET keyed by its ?bench= parameter. Anything
// the fleet layer cannot resolve (missing or unknown bench) is served
// locally, where the service produces the canonical error.
func (h *Handler) routeQueryBench(w http.ResponseWriter, r *http.Request) {
	b, ok := workload.ByName(r.URL.Query().Get("bench"))
	if !ok {
		h.serveLocal(w, r)
		return
	}
	h.routeKeyed(w, r, b.Spec.Fingerprint().String(), nil)
}

// cellIdentity is the lenient decode of any body that carries a workload:
// just enough to compute the routing key, with full validation left to
// the home node's service.
type cellIdentity struct {
	Bench string          `json:"bench"`
	Spec  json.RawMessage `json:"spec"`
}

// fingerprint resolves the cell's workload identity, ok=false when the
// body does not resolve cleanly (the local service will answer the error).
func (c cellIdentity) fingerprint() (workload.Fingerprint, bool) {
	if len(c.Spec) > 0 {
		if c.Bench != "" {
			return workload.Fingerprint{}, false
		}
		spec, err := workload.ParseSpec(c.Spec)
		if err != nil {
			return workload.Fingerprint{}, false
		}
		return spec.Fingerprint(), true
	}
	b, ok := workload.ByName(c.Bench)
	if !ok {
		return workload.Fingerprint{}, false
	}
	return b.Spec.Fingerprint(), true
}

// readBody buffers a POST body so it can be parsed for routing and then
// replayed, either to the local service or to a peer. ok=false means the
// body is oversized or unreadable; the caller should serve locally and
// let the service's own limits answer.
func readBody(r *http.Request) ([]byte, bool) {
	return readBodyN(r, 1<<20)
}

// readBodyN is readBody with an explicit size bound (trace uploads are
// bounded by the service's own 32MB trace limit, not the 1MB JSON bound).
func readBodyN(r *http.Request, limit int64) ([]byte, bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	r.Body.Close()
	r.Body = io.NopCloser(bytes.NewReader(body))
	if err != nil || int64(len(body)) > limit {
		return body, false
	}
	return body, true
}

// routeBodyCell routes a POST whose body is one cell (analyze, whatif).
func (h *Handler) routeBodyCell(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(r)
	if !ok {
		h.serveLocal(w, r)
		return
	}
	var c cellIdentity
	if err := json.Unmarshal(body, &c); err != nil {
		h.serveLocal(w, r)
		return
	}
	fp, ok := c.fingerprint()
	if !ok {
		h.serveLocal(w, r)
		return
	}
	h.routeKeyed(w, r, fp.String(), body)
}

// routeTrace routes POST /v1/traces/analyze. The routing key is the
// trace's cheap header identity — workload.TraceIdentity over DecodeMeta,
// the same fingerprint the home's engine memo keys on — so the
// multi-megabyte payload is never decoded on the routing path, and the
// peer-response cache keys on that identity (plus the label, which appears
// in the response row) instead of the payload bytes. A body that does not
// even yield a header is served locally, where the service produces the
// canonical 400 envelope.
func (h *Handler) routeTrace(w http.ResponseWriter, r *http.Request) {
	body, ok := readBodyN(r, service.MaxTraceBytes)
	if !ok {
		h.serveLocal(w, r)
		return
	}
	m, err := trace.DecodeMeta(body)
	if err != nil {
		h.serveLocal(w, r)
		return
	}
	key := workload.TraceIdentity(m).String()
	h.routeHome(w, r, h.ring.Owner(key), body, "trace\x00"+key+"\x00"+m.Label)
}

// routeKeyed serves a single-workload request: locally when this node is
// the key's home, otherwise from the home peer via the response cache.
func (h *Handler) routeKeyed(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	h.routeHome(w, r, h.ring.Owner(key), body, string(body))
}

// routeHome serves a request whose home node is already known. bodyID
// stands in for the body in the peer-cache identity — the body itself for
// JSON requests, the compact header identity for trace uploads.
func (h *Handler) routeHome(w http.ResponseWriter, r *http.Request, home string, body []byte, bodyID string) {
	if home == h.self {
		h.serveLocal(w, r)
		return
	}
	resp, err := h.fromPeer(r, home, r.URL.RawQuery, body, bodyID)
	if err != nil {
		// The home is unreachable: simulate locally rather than fail the
		// request. This trades strict fleet-wide exactly-once for
		// availability during partitions; the local result is byte-identical
		// by the determinism contract.
		h.count(&h.peerErrors)
		h.serveLocal(w, r)
		return
	}
	writePeerResp(w, resp)
}

// fromPeer answers from the peer-response cache, collapsing concurrent
// identical misses onto a single forwarded request.
func (h *Handler) fromPeer(r *http.Request, home, query string, body []byte, bodyID string) (*peerResp, error) {
	key := peerKey(r, home, query, bodyID)
	if h.cache != nil {
		if resp, ok := h.cache.get(key); ok {
			h.count(&h.peerHits)
			return resp, nil
		}
	}
	h.flightMu.Lock()
	if c, ok := h.inflight[key]; ok {
		h.flightMu.Unlock()
		select {
		case <-c.done:
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
		if c.err == nil {
			h.count(&h.peerHits)
		}
		return c.resp, c.err
	}
	call := &flightCall{done: make(chan struct{})}
	h.inflight[key] = call
	h.flightMu.Unlock()

	call.resp, call.err = h.forward(r, home, query, body)
	if call.err == nil && call.resp.status == http.StatusOK && h.cache != nil {
		h.cache.put(key, call.resp)
	}
	h.flightMu.Lock()
	delete(h.inflight, key)
	h.flightMu.Unlock()
	close(call.done)
	return call.resp, call.err
}

// peerKey is the cache identity of a forwarded request: everything that
// can change the response bytes (the Accept header participates in format
// negotiation). bodyID is the body's stand-in — its bytes for JSON
// requests, its header identity for traces.
func peerKey(r *http.Request, home, query, bodyID string) string {
	return r.Method + " " + home + r.URL.Path + "?" + query +
		"\x00" + r.Header.Get("Accept") + "\x00" + bodyID
}

// forward performs one hop-marked peer request and captures the response.
func (h *Handler) forward(r *http.Request, home, query string, body []byte) (*peerResp, error) {
	u := home + r.URL.Path
	if query != "" {
		u += "?" + query
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set(service.HopHeader, h.self)
	if a := r.Header.Get("Accept"); a != "" {
		req.Header.Set("Accept", a)
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	h.count(&h.forwarded)
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &peerResp{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        data,
	}, nil
}

func writePeerResp(w http.ResponseWriter, resp *peerResp) {
	if resp.contentType != "" {
		w.Header().Set("Content-Type", resp.contentType)
	}
	if resp.retryAfter != "" {
		w.Header().Set("Retry-After", resp.retryAfter)
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// serveMetrics appends the fleet counters to the service's /metrics page.
func (h *Handler) serveMetrics(w http.ResponseWriter, r *http.Request) {
	rec := newRecorder()
	h.inner.ServeHTTP(rec, r)
	for k, v := range rec.header {
		w.Header()[k] = v
	}
	w.WriteHeader(rec.code)
	w.Write(rec.body.Bytes())
	if rec.code != http.StatusOK {
		return
	}
	h.mu.Lock()
	local, forwarded, received := h.local, h.forwarded, h.received
	peerHits, peerErrors := h.peerHits, h.peerErrors
	h.mu.Unlock()
	fmt.Fprintf(w, "speedupd_fleet_nodes %d\n", len(h.ring.nodes))
	fmt.Fprintf(w, "speedupd_fleet_local_total %d\n", local)
	fmt.Fprintf(w, "speedupd_fleet_forwarded_total %d\n", forwarded)
	fmt.Fprintf(w, "speedupd_fleet_received_total %d\n", received)
	fmt.Fprintf(w, "speedupd_fleet_peer_cache_hits_total %d\n", peerHits)
	fmt.Fprintf(w, "speedupd_fleet_peer_errors_total %d\n", peerErrors)
}

// recorder is a minimal in-process http.ResponseWriter for serving the
// local handler into a buffer (sub-sweeps, /metrics interception).
type recorder struct {
	header http.Header
	code   int
	wrote  bool
	body   bytes.Buffer
}

func newRecorder() *recorder {
	return &recorder{header: make(http.Header), code: http.StatusOK}
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
}

func (r *recorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.body.Write(b)
}

// respCache is a bounded LRU of peer responses keyed by full request
// identity.
type respCache struct {
	mu      sync.Mutex
	limit   int
	entries map[string]*list.Element
	lru     *list.List // front = most recent; values are *respCacheEntry
}

type respCacheEntry struct {
	key  string
	resp *peerResp
}

func newRespCache(limit int) *respCache {
	if limit < 0 {
		return nil
	}
	return &respCache{limit: limit, entries: make(map[string]*list.Element), lru: list.New()}
}

func (c *respCache) get(key string) (*peerResp, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*respCacheEntry).resp, true
}

func (c *respCache) put(key string, resp *peerResp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*respCacheEntry).resp = resp
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&respCacheEntry{key: key, resp: resp})
	for c.limit > 0 && c.lru.Len() > c.limit {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*respCacheEntry).key)
	}
}
