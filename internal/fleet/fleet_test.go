package fleet_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// lateHandler lets the fleet handlers be installed after every node's
// address is known — the member list must exist before any node can be
// built.
type lateHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (l *lateHandler) set(h http.Handler) { l.mu.Lock(); l.h = h; l.mu.Unlock() }

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	h.ServeHTTP(w, r)
}

// newFleet boots n real fleet nodes on loopback listeners, each with its
// own engine, and returns their base URLs and engines.
func newFleet(t *testing.T, n int) (urls []string, engines []*exp.Engine, handlers []*fleet.Handler) {
	t.Helper()
	late := make([]*lateHandler, n)
	urls = make([]string, n)
	for i := range late {
		late[i] = &lateHandler{}
		srv := httptest.NewServer(late[i])
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	engines = make([]*exp.Engine, n)
	handlers = make([]*fleet.Handler, n)
	for i := range late {
		engines[i] = exp.NewEngine(sim.Default(), exp.WithWorkers(2))
		svc := service.New(service.Options{Engine: engines[i]})
		fh, err := fleet.Wrap(svc.Handler(), fleet.Options{Self: urls[i], Peers: urls})
		if err != nil {
			t.Fatal(err)
		}
		late[i].set(fh)
		handlers[i] = fh
	}
	return urls, engines, handlers
}

func fetch(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var resp *http.Response
	var err error
	if method == http.MethodGet {
		resp, err = http.Get(url)
	} else {
		resp, err = http.Post(url, "application/json", strings.NewReader(body))
	}
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// splitBenches finds two cheap registered benchmarks homed on different
// nodes of the ring, so sweep tests exercise the split path.
func splitBenches(t *testing.T, h *fleet.Handler) (a, b string) {
	t.Helper()
	ring := h.Ring()
	var first string
	var firstHome string
	for _, bench := range workload.All() {
		home := ring.Owner(bench.Spec.Fingerprint().String())
		if first == "" {
			first, firstHome = bench.FullName(), home
			continue
		}
		if home != firstHome {
			return first, bench.FullName()
		}
	}
	t.Skip("every benchmark homed on one node (astronomically unlikely)")
	return "", ""
}

// TestFleetByteIdenticalToSingleNode is the determinism contract: every
// node of a 3-node fleet answers every request with bytes identical to a
// standalone single node — routing changes where simulations run, never
// what is computed.
func TestFleetByteIdenticalToSingleNode(t *testing.T) {
	urls, _, handlers := newFleet(t, 3)
	single := httptest.NewServer(service.New(service.Options{
		Engine: exp.NewEngine(sim.Default(), exp.WithWorkers(2)),
	}).Handler())
	t.Cleanup(single.Close)

	benchA, benchB := splitBenches(t, handlers[0])
	sweepBody := fmt.Sprintf(
		`{"cells":[{"bench":%q,"threads":2},{"bench":%q,"threads":2}]}`, benchA, benchB)
	requests := []struct {
		method, path, body string
	}{
		{http.MethodGet, "/v1/stack?bench=" + benchA + "&threads=2", ""},
		{http.MethodGet, "/v1/stack?bench=" + benchA + "&threads=2&format=csv", ""},
		{http.MethodGet, "/v1/stack?bench=" + benchB + "&threads=2&format=text", ""},
		{http.MethodPost, "/v1/sweep", sweepBody},
		{http.MethodPost, "/v1/sweep?format=ndjson", sweepBody},
		{http.MethodGet, "/v1/advise?bench=" + benchA + "&max_threads=4", ""},
	}
	for _, req := range requests {
		wantCode, want := fetch(t, req.method, single.URL+req.path, req.body)
		if wantCode != http.StatusOK {
			t.Fatalf("single node %s: %d %s", req.path, wantCode, want)
		}
		for i, u := range urls {
			gotCode, got := fetch(t, req.method, u+req.path, req.body)
			if gotCode != wantCode || got != want {
				t.Errorf("node %d %s %s: code %d, body diverges from single node\ngot:  %q\nwant: %q",
					i, req.method, req.path, gotCode, got, want)
			}
		}
	}
}

// TestFleetExactlyOnceColdSweep hammers every node of a cold fleet with
// concurrent identical requests and asserts the whole fleet simulated the
// unique cell exactly once: home-node engine singleflight plus per-node
// peer-fetch singleflight.
func TestFleetExactlyOnceColdSweep(t *testing.T) {
	urls, engines, _ := newFleet(t, 3)
	bench := "blackscholes_parsec_small"
	path := "/v1/stack?bench=" + bench + "&threads=2"

	const perNode = 4
	var wg sync.WaitGroup
	for _, u := range urls {
		for k := 0; k < perNode; k++ {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				code, body := fetch(t, http.MethodGet, u+path, "")
				if code != http.StatusOK {
					t.Errorf("%s: %d %s", u, code, body)
				}
			}(u)
		}
	}
	wg.Wait()

	total := 0
	for _, e := range engines {
		total += e.Stats().CellRuns
	}
	if total != 1 {
		t.Fatalf("fleet simulated the unique cell %d times under %d concurrent duplicate requests, want exactly 1",
			total, len(urls)*perNode)
	}

	// Warm repeat from a non-home node must be a peer-cache hit, visible on
	// that node's /metrics.
	for _, u := range urls {
		fetch(t, http.MethodGet, u+path, "")
	}
	hits := 0
	for _, u := range urls {
		_, m := fetch(t, http.MethodGet, u+"/metrics", "")
		if !strings.Contains(m, "speedupd_fleet_nodes 3\n") {
			t.Errorf("%s/metrics missing fleet node count:\n%s", u, m)
		}
		for _, line := range strings.Split(m, "\n") {
			var n int
			if _, err := fmt.Sscanf(line, "speedupd_fleet_peer_cache_hits_total %d", &n); err == nil {
				hits += n
			}
		}
	}
	if hits == 0 {
		t.Error("no peer-cache hits recorded across the fleet after warm repeats")
	}
}

// TestFleetSweepSplitExactlyOnce repeats the exactly-once property for the
// split sweep path: concurrent identical two-cell batches against every
// node cost the fleet exactly two simulations.
func TestFleetSweepSplitExactlyOnce(t *testing.T) {
	urls, engines, handlers := newFleet(t, 3)
	benchA, benchB := splitBenches(t, handlers[0])
	body := fmt.Sprintf(
		`{"cells":[{"bench":%q,"threads":2},{"bench":%q,"threads":2}]}`, benchA, benchB)

	var wg sync.WaitGroup
	for _, u := range urls {
		for k := 0; k < 3; k++ {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				code, resp := fetch(t, http.MethodPost, u+"/v1/sweep?format=ndjson", body)
				if code != http.StatusOK {
					t.Errorf("%s: %d %s", u, code, resp)
					return
				}
				if lines := strings.Count(resp, "\n"); lines != 2 {
					t.Errorf("%s: %d NDJSON lines, want 2", u, lines)
				}
			}(u)
		}
	}
	wg.Wait()

	total := 0
	for _, e := range engines {
		total += e.Stats().CellRuns
	}
	if total != 2 {
		t.Fatalf("fleet simulated %d cells for 2 unique cells under concurrent duplicate sweeps", total)
	}
}

// TestFleetPeerFailureFallsBackLocal points a node at a dead peer and
// asserts requests homed there still answer correctly from a local
// simulation, with the failure counted.
func TestFleetPeerFailureFallsBackLocal(t *testing.T) {
	late := &lateHandler{}
	srv := httptest.NewServer(late)
	t.Cleanup(srv.Close)
	dead := "http://127.0.0.1:1" // nothing listens on port 1
	e := exp.NewEngine(sim.Default(), exp.WithWorkers(2))
	fh, err := fleet.Wrap(service.New(service.Options{Engine: e}).Handler(),
		fleet.Options{Self: srv.URL, Peers: []string{srv.URL, dead}})
	if err != nil {
		t.Fatal(err)
	}
	late.set(fh)

	// Find a benchmark homed on the dead peer.
	var bench string
	for _, b := range workload.All() {
		if fh.Ring().Owner(b.Spec.Fingerprint().String()) == dead {
			bench = b.FullName()
			break
		}
	}
	if bench == "" {
		t.Skip("no benchmark homed on the dead peer")
	}
	code, body := fetch(t, http.MethodGet, srv.URL+"/v1/stack?bench="+bench+"&threads=2", "")
	if code != http.StatusOK {
		t.Fatalf("fallback failed: %d %s", code, body)
	}
	if e.Stats().CellRuns != 1 {
		t.Errorf("local fallback ran %d cells, want 1", e.Stats().CellRuns)
	}
	_, m := fetch(t, http.MethodGet, srv.URL+"/metrics", "")
	if !strings.Contains(m, "speedupd_fleet_peer_errors_total 1") {
		t.Errorf("metrics missing peer error count:\n%s", m)
	}
}

// TestWrapRejectsAbsentSelf pins the configuration guard.
func TestWrapRejectsAbsentSelf(t *testing.T) {
	_, err := fleet.Wrap(http.NotFoundHandler(),
		fleet.Options{Self: "a:1", Peers: []string{"b:1", "c:1"}})
	if err == nil {
		t.Fatal("Wrap accepted a self address missing from the member list")
	}
}

// TestFleetTraceHoming pins the trace routing contract: a recorded trace
// uploaded to a node that is not its home forwards exactly one hop to the
// home resolved from the trace's header identity, the fleet simulates the
// replay exactly once no matter how many nodes are asked, and every node
// answers bytes identical to the home's.
func TestFleetTraceHoming(t *testing.T) {
	urls, engines, handlers := newFleet(t, 3)
	b, ok := workload.ByName("blackscholes_parsec_small")
	if !ok {
		t.Fatal("test bench not registered")
	}
	f, _, err := workload.Record(sim.Default(), b.Spec, 2)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	data := buf.String()
	m, err := trace.DecodeMeta(buf.Bytes())
	if err != nil {
		t.Fatalf("DecodeMeta: %v", err)
	}
	home := handlers[0].Ring().Owner(workload.TraceIdentity(m).String())
	homeIdx, awayIdx := -1, -1
	for i, u := range urls {
		if u == home {
			homeIdx = i
		} else if awayIdx < 0 {
			awayIdx = i
		}
	}
	if homeIdx < 0 || awayIdx < 0 {
		t.Fatalf("home %q not among fleet urls %v", home, urls)
	}

	// Upload to a non-home node: one hop to the home, which simulates.
	code, want := fetch(t, http.MethodPost, urls[awayIdx]+"/v1/traces/analyze", data)
	if code != http.StatusOK {
		t.Fatalf("away upload: %d %s", code, want)
	}
	total := 0
	for i, e := range engines {
		runs := int(e.Stats().CellRuns)
		total += runs
		if i != homeIdx && runs != 0 {
			t.Errorf("node %d simulated %d cells for a trace homed on node %d", i, runs, homeIdx)
		}
	}
	if total != 1 {
		t.Fatalf("fleet-wide cell runs = %d after one trace upload, want exactly 1", total)
	}

	// Asking every node again answers identical bytes and simulates nothing:
	// the home's memo and the peers' response caches absorb the repeats.
	for i, u := range urls {
		code, got := fetch(t, http.MethodPost, u+"/v1/traces/analyze", data)
		if code != http.StatusOK || got != want {
			t.Errorf("node %d: code %d, body diverges from home answer\ngot:  %q\nwant: %q", i, code, got, want)
		}
	}
	total = 0
	for _, e := range engines {
		total += int(e.Stats().CellRuns)
	}
	if total != 1 {
		t.Fatalf("fleet-wide cell runs = %d after repeats on every node, want exactly 1", total)
	}

	// A body with no decodable header is served locally: the asked node
	// answers the service's canonical 400 envelope without touching peers.
	code, body := fetch(t, http.MethodPost, urls[awayIdx]+"/v1/traces/analyze", "not a trace")
	if code != http.StatusBadRequest || !strings.Contains(body, "invalid_argument") {
		t.Errorf("corrupt trace: code %d, body %s", code, body)
	}
}
