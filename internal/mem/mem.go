// Package mem models the off-chip memory subsystem of the simulated CMP: a
// shared split-transaction memory bus, a configurable number of DRAM banks
// with an open-page (open-row) policy, and FCFS service at each resource.
//
// Two views of interference are produced for every access:
//
//   - Ground truth: the controller knows exactly which core occupied the bus
//     or bank while this access waited, and whether a row that this core had
//     open was closed by another core in the meantime.
//   - Estimator: the per-core Open Row Array (ORA) of the paper (Section
//     4.1) predicts whether a row-buffer conflict was caused by another core
//     by remembering only the rows *this* core opened. Capacity evictions in
//     the ORA make the estimate imperfect in exactly the way the hardware
//     proposal is.
//
// Timing is transactional rather than cycle-stepped: each resource keeps a
// monotone "free at" timeline, which is equivalent to cycle-accurate FCFS
// service as long as requests are presented in nondecreasing time order —
// the simulator's quantum engine guarantees bounded skew.
package mem

import (
	"fmt"
	"math/bits"
)

// pow2 reports whether v is a positive power of two.
func pow2(v uint64) bool { return v > 0 && v&(v-1) == 0 }

// Config describes the memory subsystem.
type Config struct {
	// Banks is the number of DRAM banks (the paper simulates 8).
	Banks int
	// BusCycles is the bus occupancy of one cache-line transfer.
	BusCycles uint64
	// RowHitCycles is the access latency when the target row is open (CAS).
	RowHitCycles uint64
	// RowMissCycles is the latency when the row must be opened first
	// (precharge + activate + CAS).
	RowMissCycles uint64
	// RowBytes is the row-buffer (DRAM page) size.
	RowBytes int64
	// LineBytes is the transfer granularity (cache-line size).
	LineBytes int64
	// ORAEntries is the per-core Open Row Array capacity.
	ORAEntries int
}

// Validate reports whether the configuration is consistent.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.BusCycles == 0 || c.RowBytes <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("mem: non-positive parameter in %+v", c)
	}
	if c.RowMissCycles < c.RowHitCycles {
		return fmt.Errorf("mem: row miss (%d) faster than row hit (%d)", c.RowMissCycles, c.RowHitCycles)
	}
	if c.ORAEntries <= 0 {
		return fmt.Errorf("mem: ORAEntries must be positive")
	}
	return nil
}

// RowPenalty is the extra latency of a row-buffer miss over a hit.
func (c Config) RowPenalty() uint64 { return c.RowMissCycles - c.RowHitCycles }

// Bank returns the bank an address maps to. Banks are interleaved at
// cache-line granularity (the standard CMP mapping): consecutive lines
// rotate across banks, so streaming threads load all banks uniformly
// instead of marching across pages in lockstep.
func (c Config) Bank(addr uint64) int {
	return int((addr / uint64(c.LineBytes)) % uint64(c.Banks))
}

// Row returns the row-buffer index within the bank for addr: a thread
// streaming consecutive lines revisits the same row RowBytes/LineBytes
// times per bank before moving on, preserving open-page locality.
func (c Config) Row(addr uint64) uint64 {
	lines := addr / uint64(c.LineBytes)
	linesPerRow := uint64(c.RowBytes / c.LineBytes)
	return lines / uint64(c.Banks) / linesPerRow
}

// AccessResult describes the timing and interference decomposition of one
// memory access.
type AccessResult struct {
	// Latency is the total cycles from issue until the data transfer
	// completes (queueing included).
	Latency uint64
	// BankWait and BusWait are the FCFS queueing delays at each resource.
	BankWait uint64
	BusWait  uint64
	// BankWaitOther/BusWaitOther are the portions of the waits caused by an
	// access of a *different* core occupying the resource (ground truth).
	BankWaitOther uint64
	BusWaitOther  uint64
	// RowHit reports whether the access hit the open row.
	RowHit bool
	// RowConflictOtherTruth is the ground truth: this core's previous
	// access to the bank targeted the same row, and another core closed it
	// in between, so the row-miss penalty is interference.
	RowConflictOtherTruth bool
	// RowConflictOtherORA is the estimator's verdict from the per-core ORA.
	RowConflictOtherORA bool
	// RowPenalty is the extra latency paid over a row hit (0 on row hits).
	RowPenalty uint64
}

// InterferenceTruth returns the ground-truth interference cycles of the
// access: waits caused by other cores plus the row penalty when another core
// closed this core's row.
func (r AccessResult) InterferenceTruth() uint64 {
	v := r.BankWaitOther + r.BusWaitOther
	if r.RowConflictOtherTruth {
		v += r.RowPenalty
	}
	return v
}

// InterferenceEstimate returns the interference cycles the accounting
// hardware would charge: resource waits attributed to other cores (the
// hardware observes the occupant directly, per the paper) plus the row
// penalty when the ORA flags the conflict.
func (r AccessResult) InterferenceEstimate() uint64 {
	v := r.BankWaitOther + r.BusWaitOther
	if r.RowConflictOtherORA {
		v += r.RowPenalty
	}
	return v
}

type bank struct {
	freeAt    uint64
	lastOwner int
	openRow   uint64
	rowValid  bool
	// lastRowByCore tracks, per core, the row of that core's most recent
	// access to this bank — the ground-truth analogue of the ORA.
	lastRowByCore []uint64
	lastRowValid  []bool
}

// Controller is the shared memory controller.
type Controller struct {
	cfg Config

	busFreeAt    uint64
	busLastOwner int

	banks []bank
	oras  []*ORA

	// Precomputed address decomposition. When the bank count and the
	// lines-per-row ratio are powers of two (the common configuration),
	// bank and row come out of shifts and a mask instead of the divisions
	// Config.Bank/Config.Row pay; geomPow2 gates the fast path.
	geomPow2  bool
	lineShift uint
	bankBits  uint
	bankMask  uint64
	rowShift  uint // bankBits + log2(lines per row)

	stats Stats
}

// Stats aggregates controller-level counters.
type Stats struct {
	Accesses   uint64
	RowHits    uint64
	RowMisses  uint64
	Writebacks uint64
}

// NewController builds a controller for cores cores.
func NewController(cfg Config, cores int) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Controller{cfg: cfg, busLastOwner: -1}
	linesPerRow := uint64(cfg.RowBytes / cfg.LineBytes)
	if pow2(uint64(cfg.Banks)) && pow2(uint64(cfg.LineBytes)) && linesPerRow > 0 && pow2(linesPerRow) {
		c.geomPow2 = true
		c.lineShift = uint(bits.TrailingZeros64(uint64(cfg.LineBytes)))
		c.bankBits = uint(bits.TrailingZeros64(uint64(cfg.Banks)))
		c.bankMask = uint64(cfg.Banks) - 1
		c.rowShift = c.bankBits + uint(bits.TrailingZeros64(linesPerRow))
	}
	c.banks = make([]bank, cfg.Banks)
	for i := range c.banks {
		c.banks[i] = bank{
			lastOwner:     -1,
			lastRowByCore: make([]uint64, cores),
			lastRowValid:  make([]bool, cores),
		}
	}
	c.oras = make([]*ORA, cores)
	for i := range c.oras {
		c.oras[i] = NewORA(cfg.ORAEntries)
	}
	return c
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Reset restores the controller to its just-constructed state, reusing the
// bank and ORA storage (machine pooling across simulation runs).
func (c *Controller) Reset() {
	c.busFreeAt = 0
	c.busLastOwner = -1
	c.stats = Stats{}
	for i := range c.banks {
		b := &c.banks[i]
		b.freeAt, b.lastOwner, b.openRow, b.rowValid = 0, -1, 0, false
		for j := range b.lastRowByCore {
			b.lastRowByCore[j] = 0
		}
		for j := range b.lastRowValid {
			b.lastRowValid[j] = false
		}
	}
	for _, o := range c.oras {
		o.Reset()
	}
}

// Stats returns accumulated counters.
func (c *Controller) Stats() Stats { return c.stats }

// bankRow decomposes addr once: the bank index and row, via the precomputed
// shift/mask fast path or Config's division fallback.
func (c *Controller) bankRow(addr uint64) (int, uint64) {
	if c.geomPow2 {
		line := addr >> c.lineShift
		return int(line & c.bankMask), line >> c.rowShift
	}
	return c.cfg.Bank(addr), c.cfg.Row(addr)
}

// Access services a cache-line fetch for core starting at time now and
// returns its timing/interference decomposition.
func (c *Controller) Access(now uint64, core int, addr uint64) AccessResult {
	c.stats.Accesses++
	var res AccessResult
	bankIdx, row := c.bankRow(addr)
	bk := &c.banks[bankIdx]

	// Bank queueing.
	start := now
	if bk.freeAt > start {
		res.BankWait = bk.freeAt - start
		if bk.lastOwner != core {
			res.BankWaitOther = res.BankWait
		}
		start = bk.freeAt
	}

	// Row buffer.
	res.RowHit = bk.rowValid && bk.openRow == row
	var rowLat uint64
	if res.RowHit {
		rowLat = c.cfg.RowHitCycles
		c.stats.RowHits++
	} else {
		rowLat = c.cfg.RowMissCycles
		res.RowPenalty = c.cfg.RowPenalty()
		c.stats.RowMisses++
		// Ground truth: would this have been a row hit in isolation? Yes
		// iff this core's previous access to the bank was to the same row
		// and some other core opened a different row in between.
		if bk.lastRowValid[core] && bk.lastRowByCore[core] == row &&
			bk.rowValid && bk.lastOwner != core {
			res.RowConflictOtherTruth = true
		}
		// Estimator: the ORA remembers rows this core opened; a match means
		// "I opened this row most recently (as far as I know), so someone
		// else must have closed it".
		res.RowConflictOtherORA = c.oras[core].Contains(bankIdx, row)
	}
	bankDone := start + rowLat

	// Bus transfer (data return) — FCFS behind whatever transfer is active.
	busStart := bankDone
	if c.busFreeAt > busStart {
		res.BusWait = c.busFreeAt - busStart
		if c.busLastOwner != core {
			res.BusWaitOther = res.BusWait
		}
		busStart = c.busFreeAt
	}
	done := busStart + c.cfg.BusCycles

	// Commit resource state.
	bk.freeAt = bankDone
	bk.lastOwner = core
	bk.openRow = row
	bk.rowValid = true
	bk.lastRowByCore[core] = row
	bk.lastRowValid[core] = true
	c.busFreeAt = done
	c.busLastOwner = core
	c.oras[core].Record(bankIdx, row)

	res.Latency = done - now
	return res
}

// Writeback models a dirty-line eviction: the line crosses the bus to the
// controller's write buffer without the requester waiting, so it only adds
// bus pressure felt by later accesses. Write drains to the banks are
// scheduled opportunistically by real controllers and are not modeled.
func (c *Controller) Writeback(now uint64, core int, addr uint64) {
	c.stats.Writebacks++
	busStart := now
	if c.busFreeAt > busStart {
		busStart = c.busFreeAt
	}
	c.busFreeAt = busStart + c.cfg.BusCycles
	c.busLastOwner = core
}

// ORA is the per-core Open Row Array: a small fully-associative LRU table of
// (bank, row) pairs this core opened, used to attribute row-buffer conflicts
// to other cores. Capacity is the hardware budget knob; the paper's cost
// model assumes a handful of entries per core.
type ORA struct {
	entries []oraEntry
}

type oraEntry struct {
	bank  int
	row   uint64
	valid bool
}

// NewORA returns an ORA with n entries.
func NewORA(n int) *ORA {
	return &ORA{entries: make([]oraEntry, n)}
}

// Reset empties the ORA, reusing its entry storage.
func (o *ORA) Reset() {
	for i := range o.entries {
		o.entries[i] = oraEntry{}
	}
}

// Record notes that this core opened row in bank, promoting it to MRU.
func (o *ORA) Record(bank int, row uint64) {
	idx := len(o.entries) - 1
	for i := range o.entries {
		e := &o.entries[i]
		if e.valid && e.bank == bank {
			// One entry per bank: the most recent row opened in that bank.
			idx = i
			break
		}
		if !e.valid {
			idx = i
			break
		}
	}
	copy(o.entries[1:idx+1], o.entries[0:idx])
	o.entries[0] = oraEntry{bank: bank, row: row, valid: true}
}

// Contains reports whether the ORA believes this core opened row in bank
// most recently.
func (o *ORA) Contains(bank int, row uint64) bool {
	for i := range o.entries {
		e := &o.entries[i]
		if e.valid && e.bank == bank {
			return e.row == row
		}
	}
	return false
}

// SizeBytes returns the hardware cost of the ORA: each entry stores a bank
// index (1 byte), a row number (4 bytes) and a valid bit, rounded to bytes.
func (o *ORA) SizeBytes() int {
	return len(o.entries) * 6
}
