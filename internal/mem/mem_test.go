package mem

import (
	"testing"
	"testing/quick"
)

func testCfg() Config {
	return Config{
		Banks:         8,
		BusCycles:     16,
		RowHitCycles:  90,
		RowMissCycles: 210,
		RowBytes:      4096,
		LineBytes:     64,
		ORAEntries:    8,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCfg()
	bad.RowMissCycles = 10 // faster than row hit
	if err := bad.Validate(); err == nil {
		t.Fatal("row miss < row hit accepted")
	}
	bad = testCfg()
	bad.ORAEntries = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero ORA entries accepted")
	}
}

func TestBankInterleaving(t *testing.T) {
	c := testCfg()
	// Consecutive lines rotate across banks.
	for i := 0; i < 32; i++ {
		addr := uint64(i * 64)
		if got, want := c.Bank(addr), i%8; got != want {
			t.Fatalf("Bank(line %d) = %d, want %d", i, got, want)
		}
	}
	// A thread streaming lines revisits the same row linesPerRow times per
	// bank before the row advances.
	linesPerRow := int(c.RowBytes / c.LineBytes) // 64
	r0 := c.Row(0)
	lastSameRow := uint64((linesPerRow*8 - 1) * 64)
	if c.Row(lastSameRow) != r0 {
		t.Fatalf("row changed within the first stripe")
	}
	if c.Row(lastSameRow+64) == r0 {
		t.Fatalf("row did not advance after the stripe")
	}
}

func TestUncontendedRowHitLatency(t *testing.T) {
	m := NewController(testCfg(), 2)
	// First access opens the row (row miss).
	r1 := m.Access(0, 0, 0)
	if r1.RowHit {
		t.Fatal("cold access cannot row-hit")
	}
	if r1.Latency != 210+16 {
		t.Fatalf("cold latency = %d, want %d", r1.Latency, 210+16)
	}
	// Next access in the same row (same bank: stride 8 lines), after the
	// bus cleared.
	r2 := m.Access(1000, 0, 8*64)
	if !r2.RowHit {
		t.Fatal("same-row access must row-hit")
	}
	if r2.Latency != 90+16 {
		t.Fatalf("row-hit latency = %d, want %d", r2.Latency, 90+16)
	}
}

func TestBankConflictAttribution(t *testing.T) {
	m := NewController(testCfg(), 2)
	m.Access(0, 0, 0) // core 0 occupies bank 0 until t=210
	r := m.Access(10, 1, 8*64*1024)
	if r.BankWait == 0 {
		t.Fatal("expected bank queueing")
	}
	if r.BankWaitOther != r.BankWait {
		t.Fatalf("bank wait %d should be attributed to the other core (%d)",
			r.BankWait, r.BankWaitOther)
	}
	// Same-core queueing is not interference.
	m2 := NewController(testCfg(), 2)
	m2.Access(0, 0, 0)
	r2 := m2.Access(10, 0, 8*64*1024)
	if r2.BankWaitOther != 0 {
		t.Fatal("self-inflicted bank wait misattributed as interference")
	}
}

func TestRowConflictTruthAndORA(t *testing.T) {
	m := NewController(testCfg(), 2)
	// Core 0 opens row A in bank 0; core 1 opens row B in bank 0;
	// core 0 returns to row A: a row conflict another core caused.
	rowStride := uint64(4096 * 8) // next row, same bank 0
	m.Access(0, 0, 0)
	m.Access(500, 1, rowStride)
	r := m.Access(1500, 0, 8*64) // row A again (line 8: bank 0, row 0)
	if r.RowHit {
		t.Fatal("expected row conflict")
	}
	if !r.RowConflictOtherTruth {
		t.Fatal("ground truth missed the inter-core row conflict")
	}
	if !r.RowConflictOtherORA {
		t.Fatal("ORA missed the inter-core row conflict")
	}
	if r.RowPenalty != 120 {
		t.Fatalf("row penalty = %d, want 120", r.RowPenalty)
	}
}

func TestSelfRowConflictNotFlagged(t *testing.T) {
	m := NewController(testCfg(), 1)
	rowStride := uint64(4096 * 8)
	m.Access(0, 0, 0)
	m.Access(500, 0, rowStride) // core closes its own row
	r := m.Access(1500, 0, 8*64)
	if r.RowConflictOtherTruth {
		t.Fatal("self-closed row flagged as interference (truth)")
	}
	if r.RowConflictOtherORA {
		t.Fatal("self-closed row flagged as interference (ORA)")
	}
}

func TestBusSerialization(t *testing.T) {
	m := NewController(testCfg(), 2)
	// Two simultaneous accesses to different banks collide on the bus.
	m.Access(0, 0, 0)       // bank 0
	r := m.Access(0, 1, 64) // bank 1, same start time
	if r.BusWait == 0 {
		t.Fatal("expected bus queueing for the second transfer")
	}
	if r.BusWaitOther != r.BusWait {
		t.Fatal("bus wait should be attributed to the other core")
	}
}

func TestWritebackOccupiesBus(t *testing.T) {
	m := NewController(testCfg(), 2)
	// The writeback grabs the bus at t=200..216; the access's data phase
	// begins at t=210 (after its row activation) and must queue behind it.
	m.Writeback(200, 0, 0)
	r := m.Access(0, 1, 64)
	if r.BusWait == 0 {
		t.Fatal("writeback should delay the following transfer")
	}
	if m.Stats().Writebacks != 1 {
		t.Fatal("writeback not counted")
	}
}

func TestInterferenceHelpers(t *testing.T) {
	r := AccessResult{
		BankWaitOther: 30, BusWaitOther: 10,
		RowPenalty:            120,
		RowConflictOtherTruth: true,
		RowConflictOtherORA:   false,
	}
	if got := r.InterferenceTruth(); got != 160 {
		t.Fatalf("truth = %d, want 160", got)
	}
	if got := r.InterferenceEstimate(); got != 40 {
		t.Fatalf("estimate = %d, want 40", got)
	}
}

func TestORAReplacement(t *testing.T) {
	o := NewORA(2)
	o.Record(0, 100)
	o.Record(1, 200)
	if !o.Contains(0, 100) || !o.Contains(1, 200) {
		t.Fatal("recorded rows missing")
	}
	o.Record(2, 300) // evicts LRU entry (bank 0)
	if o.Contains(0, 100) {
		t.Fatal("LRU entry survived capacity eviction")
	}
	if !o.Contains(2, 300) {
		t.Fatal("new entry missing")
	}
	// One entry per bank: recording a new row in bank 1 replaces the old.
	o.Record(1, 999)
	if o.Contains(1, 200) {
		t.Fatal("stale row retained for bank 1")
	}
	if !o.Contains(1, 999) {
		t.Fatal("bank 1 row not updated")
	}
}

func TestORASizeBytes(t *testing.T) {
	if got := NewORA(8).SizeBytes(); got != 48 {
		t.Fatalf("ORA size = %d, want 48 (paper budget)", got)
	}
}

func TestAccessLatencyLowerBound(t *testing.T) {
	// Property: latency >= row latency + bus cycles, and waits are
	// consistent with the total.
	f := func(seed uint64) bool {
		m := NewController(testCfg(), 4)
		rng := seed
		now := uint64(0)
		for i := 0; i < 200; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			addr := (rng >> 10) % (1 << 24) &^ 63
			core := int(rng % 4)
			now += rng % 300
			r := m.Access(now, core, addr)
			min := testCfg().RowHitCycles + testCfg().BusCycles
			if r.Latency < min {
				return false
			}
			if r.BankWaitOther > r.BankWait || r.BusWaitOther > r.BusWait {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRowHitStatsAccumulate(t *testing.T) {
	m := NewController(testCfg(), 1)
	for i := 0; i < 64; i++ {
		m.Access(uint64(i*300), 0, uint64(i*64*8)) // same bank 0, same row until stripe ends
	}
	st := m.Stats()
	if st.Accesses != 64 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if st.RowHits == 0 {
		t.Fatal("sequential same-bank stream should produce row hits")
	}
}
