package exp

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/sim"
	"repro/internal/workload"
)

// The engine's memoization is pluggable: every memo lookup — sequential
// references, cell outcomes, interval series — flows through a CacheStore,
// a storage-agnostic singleflight protocol keyed by the same fingerprint
// identities the engine has always used. The default implementation is the
// in-process LRU MemStore below; a shared store (another process, a network
// service) slots in through WithStores without the engine knowing.

// KeyKind discriminates the artifact classes that may share one CacheStore
// backend: sequential references, cell outcomes and interval series never
// collide even under a single keyspace.
type KeyKind uint8

// The memoized artifact classes.
const (
	// KindSeq is a sequential-reference time (a uint64, Ts in cycles).
	KindSeq KeyKind = iota + 1
	// KindCell is a full cell Outcome.
	KindCell
	// KindInterval is an IntervalOutcome (aggregate plus time series).
	KindInterval
)

// Key is the comparable identity of one memoized simulation artifact: the
// full machine configuration, the workload's canonical name-independent
// fingerprint, and the run shape. It is the exported form of the engine's
// internal cellKey/seqKey/intervalKey triple, so an external store is keyed
// exactly like the in-process memo — two requests are "the same simulation"
// precisely when their Keys are equal.
type Key struct {
	Kind   KeyKind
	Config sim.Config
	// Fingerprint is the workload identity (workload.Spec.Fingerprint):
	// registry names, aliases and inline specs describing the same workload
	// share it, which is what makes distributed dedup correct.
	Fingerprint workload.Fingerprint
	Threads     int
	Cores       int
	// Intervals is the slice count of a KindInterval key (0 otherwise).
	Intervals int
}

// key conversions from the engine's internal identities.

func (k cellKey) storeKey() Key {
	return Key{Kind: KindCell, Config: k.cfg, Fingerprint: k.fp, Threads: k.threads, Cores: k.cores}
}

func (k seqKey) storeKey() Key {
	return Key{Kind: KindSeq, Config: k.cfg, Fingerprint: k.fp, Threads: 1, Cores: 1}
}

func (k intervalKey) storeKey() Key {
	sk := k.cellKey.storeKey()
	sk.Kind = KindInterval
	sk.Intervals = k.count
	return sk
}

// Acquisition is the answer of CacheStore.Acquire: exactly one of Hit,
// Claimed, or a non-nil Done holds.
type Acquisition struct {
	// Hit: the slot holds a completed result (Value/Err). Real simulation
	// errors are memoized like values — every simulation is deterministic,
	// so retrying cannot help.
	Hit   bool
	Value any
	Err   error
	// Claimed: the caller now owns the slot and must call Complete exactly
	// once, however its execution ends.
	Claimed bool
	// Done, when non-nil, belongs to another claimant's in-flight
	// execution; wait for it to close, then Acquire again. (A closed Done
	// does not imply a value: the claim may have been abandoned, in which
	// case the re-Acquire wins the new claim.)
	Done <-chan struct{}
}

// Occupancy is a store's retention snapshot, for pressure metrics.
type Occupancy struct {
	// Entries counts stored slots, in-flight claims included.
	Entries int
	// Limit is the retention bound (0 = unbounded).
	Limit int
	// Evictions counts completed entries dropped by the retention policy.
	Evictions int
}

// CacheStore is the storage behind one of the engine's memos: get,
// singleflight-claim and put, keyed by the fingerprint identities above.
// Implementations must be safe for concurrent use. The protocol:
//
//   - Acquire(k) answers a completed result, ownership of the slot, or a
//     wait channel for whoever owns it. Exactly one concurrent caller per
//     key may be granted Claimed.
//   - A claimant executes its simulation and calls Complete. retain=false
//     abandons the claim (the caller's context was canceled before the
//     simulation ran): the slot is removed so a later Acquire re-claims
//     and re-executes. retain=true stores the result — value or
//     deterministic error — and wakes waiters.
//   - Touch(k) records a use for the store's retention policy (the
//     MemStore's LRU). A store must never drop an in-flight claim:
//     evicting it would detach waiters from the execution filling it.
type CacheStore interface {
	Acquire(k Key) Acquisition
	Complete(k Key, v any, err error, retain bool)
	Touch(k Key)
	Occupancy() Occupancy
}

// Stores bundles replacement cache stores for the engine's three memos.
// A nil field keeps the default in-process MemStore; the three may also be
// views of one shared backend (Key.Kind keeps the keyspaces apart).
type Stores struct {
	// Seq holds sequential references (tiny: one uint64 per workload), by
	// default unbounded.
	Seq CacheStore
	// Cells holds cell Outcomes, by default bounded by WithCellMemoLimit.
	Cells CacheStore
	// Intervals holds interval series (heavier than cells), on its own
	// retention under the same bound.
	Intervals CacheStore
}

// WithStores plugs replacement cache stores into the engine — the hook for
// pooling results across processes. Nil fields keep the in-process default.
func WithStores(st Stores) Option {
	return func(e *Engine) {
		if st.Seq != nil {
			e.seq = st.Seq
		}
		if st.Cells != nil {
			e.cells = st.Cells
		}
		if st.Intervals != nil {
			e.intervals = st.Intervals
		}
	}
}

// storeDo is the engine side of the CacheStore protocol, shared by all
// three memos: resolve key k to a completed value, wait for whoever is
// computing it, or claim the slot and execute run. onHit fires at most once
// per call, when an existing entry (completed or in-flight) is found — the
// memo-hit statistic. A claim abandoned on context cancellation (run
// returned ctx's own error) is released without retention, so waiters and
// later callers re-execute; real errors are memoized like values.
func storeDo[V any](ctx context.Context, s CacheStore, k Key, onHit func(), run func() (V, error)) (V, error) {
	var zero V
	hitCounted := false
	for {
		acq := s.Acquire(k)
		switch {
		case acq.Hit:
			if !hitCounted {
				onHit()
			}
			if acq.Err != nil {
				return zero, acq.Err
			}
			v, ok := acq.Value.(V)
			if !ok {
				// A foreign store handed back the wrong type; surface it as
				// a loud error rather than a zero-value result.
				return zero, &StoreTypeError{Key: k, Value: acq.Value}
			}
			return v, nil
		case acq.Claimed:
			v, err := run()
			if err != nil && err == ctx.Err() {
				s.Complete(k, nil, err, false)
				return zero, err
			}
			s.Complete(k, v, err, true)
			return v, err
		default:
			if !hitCounted {
				onHit()
				hitCounted = true
			}
			select {
			case <-acq.Done:
				// Re-acquire: either the result landed (Hit) or the claim
				// was abandoned and this caller takes it over.
			case <-ctx.Done():
				return zero, ctx.Err()
			}
		}
	}
}

// StoreTypeError reports a CacheStore answering a value of the wrong type
// for a key — a misbehaving external store, never the in-process MemStore.
type StoreTypeError struct {
	Key   Key
	Value any
}

// Error describes the mismatch.
func (e *StoreTypeError) Error() string {
	return "exp: cache store returned a mistyped value"
}

// MemStore is the default CacheStore: an in-process map with singleflight
// slots and optional LRU retention over completed entries. It preserves the
// engine's historical memo semantics exactly — in-flight claims are never
// evicted, abandoned claims retry, completed errors are retained like
// values.
type MemStore struct {
	mu        sync.Mutex
	limit     int
	entries   map[Key]*memEntry
	lru       *list.List // completed keys, most-recently-used first
	pos       map[Key]*list.Element
	evictions int
}

// memEntry is one singleflight slot. complete flips under mu strictly
// before done closes, so an Acquire seeing complete==false safely waits.
type memEntry struct {
	done     chan struct{}
	val      any
	err      error
	complete bool
}

// NewMemStore returns an in-process store retaining at most limit completed
// entries, least-recently-used first (limit <= 0: unbounded).
func NewMemStore(limit int) *MemStore {
	if limit < 0 {
		limit = 0
	}
	return &MemStore{
		limit:   limit,
		entries: make(map[Key]*memEntry),
		lru:     list.New(),
		pos:     make(map[Key]*list.Element),
	}
}

// Acquire implements CacheStore.
func (s *MemStore) Acquire(k Key) Acquisition {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		if e.complete {
			return Acquisition{Hit: true, Value: e.val, Err: e.err}
		}
		return Acquisition{Done: e.done}
	}
	s.entries[k] = &memEntry{done: make(chan struct{})}
	return Acquisition{Claimed: true}
}

// Complete implements CacheStore.
func (s *MemStore) Complete(k Key, v any, err error, retain bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok || e.complete {
		return // defensive: double Complete or a claim lost to a bug
	}
	if retain {
		e.val, e.err = v, err
		e.complete = true
	} else {
		delete(s.entries, k)
	}
	close(e.done)
}

// Touch implements CacheStore: record a use of k and trim the store to its
// bound. Only completed entries are tracked and evicted — an in-flight
// claim keeps its slot until it finishes, so eviction can never detach
// waiters or double-simulate; when the oldest tracked entry is mid-
// recomputation (its prior claim was abandoned and a new one is running)
// the store stays one entry over rather than orphan the claim.
func (s *MemStore) Touch(k Key) {
	if s.limit <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok || !e.complete {
		return // abandoned claim or mid-flight recomputation: nothing retained
	}
	if el, ok := s.pos[k]; ok {
		s.lru.MoveToFront(el)
	} else {
		s.pos[k] = s.lru.PushFront(k)
	}
	for s.lru.Len() > s.limit {
		el := s.lru.Back()
		bk := el.Value.(Key)
		if be, ok := s.entries[bk]; ok {
			if !be.complete {
				return // see above: never evict an in-flight claim
			}
			delete(s.entries, bk)
			s.evictions++
		}
		s.lru.Remove(el)
		delete(s.pos, bk)
	}
}

// Occupancy implements CacheStore.
func (s *MemStore) Occupancy() Occupancy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Occupancy{Entries: len(s.entries), Limit: s.limit, Evictions: s.evictions}
}
