package exp

import (
	"context"
	"strings"

	"repro/internal/stack"
)

// Phase analysis: the whole-run aggregate stack answers "how much speedup
// does each delimiter cost", the time-resolved series answers "when" — a
// warmup phase thrashing the LLC, a lock storm in one barrier phase, a
// pipeline draining serially all look identical in the aggregate and
// completely different on the timeline. This file picks the registry
// analogues with the strongest phase structure and measures them
// time-resolved; cmd/experiments exposes it as the on-demand "phases"
// section (it is not a paper artifact, so "all" does not run it).

// PhaseBenchmarks lists the registry analogues with pronounced phase
// behaviour, one per mechanism: many barrier-separated phases (bodytrack,
// blackscholes), barrier phases with critical sections (fluidanimate,
// water-nsquared), pipeline fill/drain (ferret), and a lock-dispensed task
// queue (cholesky).
func PhaseBenchmarks() []string {
	return []string{
		"bodytrack_parsec_small",
		"blackscholes_parsec_medium",
		"fluidanimate_parsec_medium",
		"water-nsquared_splash2",
		"ferret_parsec_medium",
		"cholesky_splash2",
	}
}

// Phases measures the phase-heavy benchmarks time-resolved at the given
// thread count, splitting each run into count intervals. All aggregate
// outcomes and sequential references come from (and land in) the engine's
// shared memo.
func Phases(ctx context.Context, e *Engine, threads, count int) ([]stack.TimeSeries, error) {
	out := make([]stack.TimeSeries, 0, len(PhaseBenchmarks()))
	for _, name := range PhaseBenchmarks() {
		io, err := e.MeasureIntervals(ctx, Request{Cell: Cell{Bench: name, Threads: threads}}, count)
		if err != nil {
			return nil, err
		}
		out = append(out, io.Series)
	}
	return out, nil
}

// FormatPhases renders the series as consecutive interval tables.
func FormatPhases(series []stack.TimeSeries) string {
	var b strings.Builder
	for i, ts := range series {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(stack.TimeSeriesTable(ts))
	}
	return b.String()
}
