package exp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// MinAdviseThreads is the smallest usable sweep top: the advisor's USL fit
// has two parameters and needs at least two multi-threaded samples, so the
// sweep must reach 3 threads.
const MinAdviseThreads = 3

// MaxAdviseThreads bounds the sweep top; it matches the per-cell thread
// ceiling of the speedupd service.
const MaxAdviseThreads = 64

// AdviseThreads returns the advisor's sweep schedule for a top of max:
// powers of two from 1, plus max itself. The geometric spacing samples the
// curve where it bends without making the sweep cost quadratic in max.
func AdviseThreads(max int) []int {
	out := make([]int, 0, 8)
	for n := 1; n < max; n *= 2 {
		out = append(out, n)
	}
	return append(out, max)
}

// Advise runs the advisor's thread sweep for one workload and fits the
// scaling models to it. The cell's Threads/Cores are ignored: the sweep sets
// both, keeping the paper's cores = threads pairing at every point. Every
// point goes through the engine's fingerprint-keyed memo, so repeated advice
// for the same workload — or advice after a sweep that already simulated
// these cells — costs no new simulation.
func (e *Engine) Advise(ctx context.Context, req Request, maxThreads int) (scaling.Advice, error) {
	if maxThreads < MinAdviseThreads || maxThreads > MaxAdviseThreads {
		return scaling.Advice{}, fmt.Errorf("exp: advise max threads must be in [%d, %d], got %d",
			MinAdviseThreads, MaxAdviseThreads, maxThreads)
	}
	b, err := resolveCell(req.Cell)
	if err != nil {
		return scaling.Advice{}, err
	}
	threads := AdviseThreads(maxThreads)
	reqs := make([]Request, len(threads))
	for i, n := range threads {
		cell := req.Cell
		cell.Threads, cell.Cores = n, 0
		reqs[i] = Request{Cell: cell, Config: req.Config}
	}
	outs, err := e.Do(ctx, reqs)
	if err != nil {
		return scaling.Advice{}, err
	}
	points := make([]scaling.Point, len(outs))
	for i, o := range outs {
		points[i] = scaling.Point{Threads: o.Threads, Speedup: o.Actual}
	}
	top := outs[len(outs)-1]
	cfg := e.base
	if req.Config != nil {
		cfg = *req.Config
	}
	a, err := scaling.Build(b.FullName(), &b.Spec, points, &top.Stack)
	if err != nil {
		return scaling.Advice{}, err
	}
	attachPredictedGains(a.Recommendations, b.Spec, cfg, top.Stack)
	return a, nil
}

// attachPredictedGains annotates component-keyed recommendations with the
// what-if catalog's view: for each recommendation, the applicable
// intervention scaling that component with the largest predicted gain. The
// gains are pure Formula (4) re-evaluations of the already-measured top
// stack — no extra simulation — and a client can validate any of them by
// asking the what-if engine for the full re-simulated report.
func attachPredictedGains(recs []scaling.Recommendation, spec workload.Spec, cfg sim.Config, st core.Stack) {
	for i := range recs {
		rec := &recs[i]
		bestID, bestGain := "", 0.0
		for _, iv := range whatif.Catalog() {
			if !iv.ScalesComponent(rec.Component) {
				continue
			}
			if _, ok := iv.Mutate(spec, cfg); !ok {
				continue
			}
			if g := whatif.PredictGain(st, iv); bestID == "" || g > bestGain {
				bestID, bestGain = iv.ID, g
			}
		}
		if bestID != "" {
			rec.Intervention, rec.PredictedGain = bestID, bestGain
		}
	}
}
