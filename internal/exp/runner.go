// Package exp is the experiment harness: it runs benchmark analogues on the
// simulated machine, pairs each multi-threaded run with its single-threaded
// reference, and regenerates every table and figure of the paper's
// evaluation (Figures 1 and 4-9 plus the Section 6 validation errors).
//
// # The sweep engine
//
// All execution flows through Engine (sweep.go), a concurrent deduplicating
// executor. Callers declare cells — (benchmark, threads, cores) triples,
// optionally bound to an explicit machine configuration — and the engine
// returns one Outcome per declared cell, in declared order.
//
// Dedup and memoization semantics:
//
//   - The unit of memoization is (sim.Config, workload fingerprint,
//     threads, cores): two requests are "the same simulation" exactly when
//     the full machine configuration, the canonical workload identity
//     (workload.Spec.Fingerprint — a name-independent hash of the canonical
//     spec) and the normalized run shape agree. Registry names, plain-name
//     aliases and inline custom specs all resolve to fingerprints, so a
//     bring-your-own spec identical to a registered analogue is one
//     simulation. sim.Config is a comparable value struct and the
//     fingerprint a byte array, so keys need no serialization.
//   - Sequential references (the single-threaded run every speedup stack is
//     measured against) are memoized separately, keyed by the configuration
//     normalized to one core — Ts does not depend on the sweep's core
//     count, so one reference serves every thread count of a benchmark.
//   - Memoization is engine-lifetime and singleflight: duplicates within a
//     batch, across batches, and across concurrent batches all collapse
//     onto one execution. A request finding an in-flight entry waits for it
//     rather than re-simulating ("hit" in Stats counts both cases).
//   - Every simulation is a deterministic function of (config, workload),
//     so real errors are memoized like values — retrying cannot help. The
//     one exception is a claim abandoned because its context was canceled
//     before the simulation ran: that entry is removed and the next
//     request re-executes it.
//   - The outcome memo is unbounded by default (right for one-shot figure
//     regeneration, where the cell set is finite and declared up front).
//     Long-running callers bound it with WithCellMemoLimit, which evicts
//     completed outcomes least-recently-used; an evicted cell re-simulates
//     on its next request and in-flight entries are never evicted.
//
// Worker-pool guarantees:
//
//   - WithWorkers(n) bounds actual simulations engine-wide at n (default
//     GOMAXPROCS). The bound is shared by everything running on the engine:
//     overlapping Sweep/Do calls, sequential references and cells all draw
//     from one semaphore, so a caller can cap machine load with one number.
//   - The bound applies to simulations, not bookkeeping: a cell waiting on
//     another claimant's in-flight work holds no worker slot, so dedup
//     never idles the pool.
//   - Results are returned in declared order and are byte-identical for a
//     given declared set regardless of the worker count or of how requests
//     interleave — scheduling affects only wall-clock time.
//   - Cancellation is prompt: a canceled context abandons queued cells
//     without waiting for the pool to drain, and a failed cell cancels the
//     rest of its batch (the first failure in declared order is reported,
//     preferring real simulation errors over the cancellations they
//     trigger).
package exp

import (
	"context"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Outcome is one (benchmark, thread-count) measurement: the multi-threaded
// run, its single-threaded reference, and the derived speedup stack.
type Outcome struct {
	Bench   workload.Benchmark
	Threads int
	// Ts and Tp are the sequential and parallel execution times (cycles).
	Ts uint64
	Tp uint64
	// Actual is S = Ts/Tp; Estimated is Ŝ from the accounting hardware.
	Actual    float64
	Estimated float64
	// Stack is the estimated speedup stack with the actual speedup attached.
	Stack core.Stack
	// Result is the full multi-threaded simulation result.
	Result sim.Result
}

// Error returns the signed validation error (Ŝ−S)/N of Formula (6).
func (o Outcome) Error() float64 {
	return (o.Estimated - o.Actual) / float64(o.Threads)
}

// Runner is the single-cell convenience front end to the sweep engine: it
// executes one benchmark at a time against one machine configuration,
// sharing the engine's memo so repeated runs (and the sequential
// references they depend on) are simulated once.
type Runner struct {
	e *Engine
}

// NewRunner returns a Runner for the given machine configuration.
func NewRunner(cfg sim.Config) *Runner {
	return &Runner{e: NewEngine(cfg)}
}

// Engine exposes the runner's underlying sweep engine.
func (r *Runner) Engine() *Engine { return r.e }

// Config returns the runner's machine configuration.
func (r *Runner) Config() sim.Config { return r.e.Config() }

// SequentialTime returns (computing and memoizing) the benchmark's
// single-threaded execution time Ts on this machine.
func (r *Runner) SequentialTime(b workload.Benchmark) (uint64, error) {
	return r.e.seqTime(context.Background(), r.e.Config(), b)
}

// Run executes benchmark b with threads threads on threads cores (the
// paper's default of one thread per core) and returns the paired outcome.
func (r *Runner) Run(b workload.Benchmark, threads int) (Outcome, error) {
	return r.RunOn(b, threads, threads)
}

// RunOn executes b with the given software thread count on cores cores
// (threads may exceed cores, as in Figure 7). b need not be registered: the
// memo keys on the spec's canonical fingerprint, so any two benchmarks
// describing the same workload — registered or not, whatever their names —
// share one simulation.
func (r *Runner) RunOn(b workload.Benchmark, threads, cores int) (Outcome, error) {
	if err := b.Spec.Validate(); err != nil {
		return Outcome{}, err
	}
	cell := Cell{Threads: threads, Cores: cores}.normalize()
	k := cellKey{cfg: r.e.Config(), fp: b.Spec.Fingerprint(),
		threads: cell.Threads, cores: cell.Cores}
	out, err := r.e.cell(context.Background(), k, b)
	if err != nil {
		return Outcome{}, err
	}
	out.Bench = b // a fingerprint-equal alias may have simulated first
	return out, nil
}
