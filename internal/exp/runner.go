// Package exp is the experiment harness: it runs benchmark analogues on the
// simulated machine, pairs each multi-threaded run with its single-threaded
// reference, and regenerates every table and figure of the paper's
// evaluation (Figures 1 and 4-9 plus the Section 6 validation errors).
package exp

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Outcome is one (benchmark, thread-count) measurement: the multi-threaded
// run, its single-threaded reference, and the derived speedup stack.
type Outcome struct {
	Bench   workload.Benchmark
	Threads int
	// Ts and Tp are the sequential and parallel execution times (cycles).
	Ts uint64
	Tp uint64
	// Actual is S = Ts/Tp; Estimated is Ŝ from the accounting hardware.
	Actual    float64
	Estimated float64
	// Stack is the estimated speedup stack with the actual speedup attached.
	Stack core.Stack
	// Result is the full multi-threaded simulation result.
	Result sim.Result
}

// Error returns the signed validation error (Ŝ−S)/N of Formula (6).
func (o Outcome) Error() float64 {
	return (o.Estimated - o.Actual) / float64(o.Threads)
}

// Runner executes benchmarks against one machine configuration, caching
// sequential reference times (they do not depend on the thread count).
type Runner struct {
	cfg sim.Config

	mu      sync.Mutex
	tsCache map[string]uint64
}

// NewRunner returns a Runner for the given machine configuration.
func NewRunner(cfg sim.Config) *Runner {
	return &Runner{cfg: cfg, tsCache: make(map[string]uint64)}
}

// Config returns the runner's machine configuration.
func (r *Runner) Config() sim.Config { return r.cfg }

// tsKey identifies a sequential run: workload identity plus the machine
// parameters that affect single-threaded time.
func (r *Runner) tsKey(b workload.Benchmark) string {
	return fmt.Sprintf("%s|llc=%d|l1=%d", b.FullName(), r.cfg.LLC.SizeBytes, r.cfg.L1.SizeBytes)
}

// SequentialTime returns (computing and caching) the benchmark's
// single-threaded execution time Ts on this machine.
func (r *Runner) SequentialTime(b workload.Benchmark) (uint64, error) {
	key := r.tsKey(b)
	r.mu.Lock()
	ts, ok := r.tsCache[key]
	r.mu.Unlock()
	if ok {
		return ts, nil
	}
	prog, err := b.Spec.Sequential()
	if err != nil {
		return 0, err
	}
	cfg := r.cfg
	cfg.Policy = b.Spec.TunePolicy(cfg.Policy)
	res, err := sim.RunSequential(cfg, prog)
	if err != nil {
		return 0, fmt.Errorf("%s sequential: %w", b.FullName(), err)
	}
	r.mu.Lock()
	r.tsCache[key] = res.Tp
	r.mu.Unlock()
	return res.Tp, nil
}

// Run executes benchmark b with threads threads on threads cores (the
// paper's default of one thread per core) and returns the paired outcome.
func (r *Runner) Run(b workload.Benchmark, threads int) (Outcome, error) {
	return r.RunOn(b, threads, threads)
}

// RunOn executes b with the given software thread count on cores cores
// (threads may exceed cores, as in Figure 7).
func (r *Runner) RunOn(b workload.Benchmark, threads, cores int) (Outcome, error) {
	ts, err := r.SequentialTime(b)
	if err != nil {
		return Outcome{}, err
	}
	cfg := r.cfg.WithCores(cores)
	cfg.Policy = b.Spec.TunePolicy(cfg.Policy)
	progs, err := b.Spec.Parallel(threads)
	if err != nil {
		return Outcome{}, err
	}
	res, err := sim.Run(cfg, progs, b.Spec.PipelineOptions(threads)...)
	if err != nil {
		return Outcome{}, fmt.Errorf("%s x%d: %w", b.FullName(), threads, err)
	}
	stack := res.Stack(ts)
	return Outcome{
		Bench:     b,
		Threads:   threads,
		Ts:        ts,
		Tp:        res.Tp,
		Actual:    stack.ActualSpeedup,
		Estimated: stack.Estimated(),
		Stack:     stack,
		Result:    res,
	}, nil
}
