package exp

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// sweepTestCells is a small grid with an intra-batch duplicate: two cheap
// benchmarks at two thread counts each.
func sweepTestCells() []Cell {
	return []Cell{
		{Bench: "blackscholes_parsec_small", Threads: 2},
		{Bench: "swaptions_parsec_small", Threads: 2},
		{Bench: "blackscholes_parsec_small", Threads: 4},
		{Bench: "swaptions_parsec_small", Threads: 4},
		{Bench: "blackscholes_parsec_small", Threads: 2}, // duplicate
	}
}

// TestSweepDeterministicAcrossWorkers runs the same sweep under 1, 4 and 8
// workers and requires identical outcomes and identical rendered text: the
// worker count must never leak into results.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	var ref []Outcome
	var refText string
	for _, workers := range []int{1, 4, 8} {
		e := NewEngine(sim.Default(), WithWorkers(workers))
		outs, err := e.Sweep(context.Background(), sweepTestCells())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		rows := make([]Figure4Row, len(outs))
		for i, o := range outs {
			rows[i] = Figure4Row{
				Benchmark: o.Bench.FullName(), Threads: o.Threads,
				Actual: o.Actual, Estimated: o.Estimated,
			}
		}
		text := FormatFigure4(rows)
		if ref == nil {
			ref, refText = outs, text
			continue
		}
		if !reflect.DeepEqual(outs, ref) {
			t.Fatalf("workers=%d: outcomes differ from workers=1", workers)
		}
		if text != refText {
			t.Fatalf("workers=%d: rendered text differs:\n%s\nvs\n%s", workers, text, refText)
		}
	}
	if ref[0].Actual <= 1 {
		t.Fatalf("implausible speedup %v", ref[0].Actual)
	}
}

// TestSweepDedup verifies the memo: duplicates within one batch, repeated
// batches, and shared sequential references each simulate exactly once.
func TestSweepDedup(t *testing.T) {
	var mu sync.Mutex
	runs := map[string]int{}
	e := NewEngine(sim.Default(), WithWorkers(4),
		WithRunHook(func(kind, bench string, threads, cores int) {
			mu.Lock()
			runs[fmt.Sprintf("%s %s x%d/%d", kind, bench, threads, cores)]++
			mu.Unlock()
		}))

	cells := sweepTestCells()
	outs1, err := e.Sweep(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs1) != len(cells) {
		t.Fatalf("got %d outcomes for %d cells", len(outs1), len(cells))
	}
	if !reflect.DeepEqual(outs1[0], outs1[4]) {
		t.Fatal("duplicate cells produced different outcomes")
	}
	// Second pass over the same grid must be served entirely from the memo.
	outs2, err := e.Sweep(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs1, outs2) {
		t.Fatal("memoized pass differs from simulated pass")
	}

	for key, n := range runs {
		if n != 1 {
			t.Errorf("%s simulated %d times, want 1", key, n)
		}
	}
	// 4 unique cells + 2 sequential references.
	if len(runs) != 6 {
		t.Errorf("got %d unique simulations, want 6: %v", len(runs), runs)
	}
	st := e.Stats()
	if st.CellRuns != 4 || st.SeqRuns != 2 {
		t.Errorf("stats = %+v, want 4 cell runs and 2 seq runs", st)
	}
	if st.CellHits == 0 {
		t.Error("expected memo hits on the second pass")
	}

	// A different machine configuration must not hit the memo.
	cfg := sim.Default()
	cfg.Quantum = 200
	if _, err := e.SweepConfig(context.Background(), cfg, cells[:1]); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.CellRuns != 5 || st.SeqRuns != 3 {
		t.Errorf("stats after config change = %+v, want 5 cell runs and 3 seq runs", st)
	}
}

// TestSweepCancellation cancels mid-sweep and requires a prompt context
// error instead of the full grid being simulated.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	e := NewEngine(sim.Default(), WithWorkers(1),
		WithRunHook(func(kind, bench string, threads, cores int) {
			if kind == "cell" && ran.Add(1) == 1 {
				cancel()
			}
		}))
	// A grid large enough that cancellation after the first cell leaves
	// most of it unsimulated.
	var cells []Cell
	for _, n := range []int{2, 4, 8, 16} {
		for _, b := range []string{"blackscholes_parsec_small", "swaptions_parsec_small", "lud_rodinia"} {
			cells = append(cells, Cell{Bench: b, Threads: n})
		}
	}
	t0 := time.Now()
	_, err := e.Sweep(ctx, cells)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := int(ran.Load()); got > 2 {
		t.Errorf("%d cells simulated after cancellation, want at most 2", got)
	}
	if d := time.Since(t0); d > 10*time.Second {
		t.Errorf("cancellation took %v", d)
	}
	// The engine must stay usable: a fresh context retries the claims the
	// canceled sweep abandoned.
	outs, err := e.Sweep(context.Background(), cells[:2])
	if err != nil || len(outs) != 2 {
		t.Fatalf("sweep after cancellation: %v", err)
	}
}

// TestSweepCanceledBeforeStart returns immediately without simulating.
func TestSweepCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewEngine(sim.Default())
	_, err := e.Sweep(ctx, sweepTestCells())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := e.Stats(); st.CellRuns != 0 || st.SeqRuns != 0 {
		t.Errorf("simulations ran under a canceled context: %+v", st)
	}
}

// TestSweepUnknownBenchmark fails fast, before any simulation.
func TestSweepUnknownBenchmark(t *testing.T) {
	e := NewEngine(sim.Default())
	_, err := e.Sweep(context.Background(), []Cell{
		{Bench: "blackscholes_parsec_small", Threads: 2},
		{Bench: "no_such_benchmark", Threads: 2},
	})
	if err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	// Cell prefixes are CellErrorIndexBase-based positions in the declared
	// slice: the second cell is "cell 1", and a failing first cell would be
	// the literal "cell 0" (the contract service clients parse).
	if !strings.Contains(err.Error(), "cell 1:") {
		t.Errorf("error %q does not carry the 0-based cell index", err)
	}
	if st := e.Stats(); st.CellRuns != 0 {
		t.Errorf("simulations ran despite resolution failure: %+v", st)
	}
	_, err = e.Sweep(context.Background(), []Cell{{Bench: "no_such_benchmark", Threads: 2}})
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("cell %d:", CellErrorIndexBase)) {
		t.Errorf("first-cell error %q does not start at index base %d", err, CellErrorIndexBase)
	}
}

// TestSweepProgress checks the cumulative progress callback reaches
// (total, total) exactly once per unique cell.
func TestSweepProgress(t *testing.T) {
	var mu sync.Mutex
	var last [2]int
	e := NewEngine(sim.Default(), WithWorkers(2),
		WithProgress(func(done, total int) {
			mu.Lock()
			last = [2]int{done, total}
			mu.Unlock()
		}))
	if _, err := e.Sweep(context.Background(), sweepTestCells()); err != nil {
		t.Fatal(err)
	}
	if last != [2]int{4, 4} {
		t.Fatalf("final progress = %v, want [4 4] (unique cells)", last)
	}
}

// TestEngineSharedAcrossOverlappingSweeps mimics the figure pattern: a
// second sweep whose cells are a subset of the first runs no simulations.
func TestEngineSharedAcrossOverlappingSweeps(t *testing.T) {
	e := NewEngine(sim.Default(), WithWorkers(4))
	if _, err := e.Sweep(context.Background(), sweepTestCells()); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	if _, err := e.Sweep(context.Background(), sweepTestCells()[:2]); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.CellRuns != before.CellRuns || after.SeqRuns != before.SeqRuns {
		t.Fatalf("overlapping sweep re-simulated: before %+v after %+v", before, after)
	}
}
