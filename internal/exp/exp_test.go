package exp

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRunnerPairsRuns(t *testing.T) {
	r := NewRunner(sim.Default())
	b, _ := workload.ByName("lud_rodinia")
	out, err := r.Run(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ts == 0 || out.Tp == 0 {
		t.Fatal("missing timings")
	}
	if out.Actual <= 1 || out.Actual > 4.05 {
		t.Fatalf("4-thread speedup %v implausible", out.Actual)
	}
	if out.Stack.ActualSpeedup != out.Actual {
		t.Fatal("stack does not carry the actual speedup")
	}
	if e := out.Error(); e < -0.5 || e > 0.5 {
		t.Fatalf("error %v implausible", e)
	}
}

func TestRunnerCachesSequentialTime(t *testing.T) {
	r := NewRunner(sim.Default())
	b, _ := workload.ByName("swaptions_parsec_small")
	ts1, err := r.SequentialTime(b)
	if err != nil {
		t.Fatal(err)
	}
	ts2, err := r.SequentialTime(b)
	if err != nil {
		t.Fatal(err)
	}
	if ts1 != ts2 {
		t.Fatalf("cache returned different Ts: %d vs %d", ts1, ts2)
	}
}

func TestFigure1CurvesMonotoneStart(t *testing.T) {
	// Restrict to the cheapest exemplar to keep the test fast: curves
	// start at 1 and speedup at 2 threads must exceed 1.
	r := NewRunner(sim.Default())
	b, _ := workload.ByName("blackscholes_parsec_small")
	out2, err := r.Run(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	out4, err := r.Run(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Actual <= 1.5 || out4.Actual <= out2.Actual {
		t.Fatalf("scaling broken: 2T=%v 4T=%v", out2.Actual, out4.Actual)
	}
}

func TestFigure7ShapeSaturates(t *testing.T) {
	e := NewEngine(sim.Default())
	rows, err := Figure7(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's qualitative claims: 16 threads on 8 cores is within noise
	// of 16 threads on 16 cores (saturation), and 16 threads beat or match
	// threads=cores at 4 cores.
	if rows[3].Threads16 > rows[2].Threads16*1.15 {
		t.Fatalf("no saturation: 8c=%v 16c=%v", rows[2].Threads16, rows[3].Threads16)
	}
	if rows[1].Threads16 < rows[1].ThreadsEqCores*0.95 {
		t.Fatalf("16 threads slower than 4 at 4 cores: %v vs %v",
			rows[1].Threads16, rows[1].ThreadsEqCores)
	}
}

func TestFigure9Shape(t *testing.T) {
	e := NewEngine(sim.Default())
	rows, err := Figure9(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Negative interference shrinks with LLC size; the net component ends
	// negative (sharing becomes a win), the paper's Section 7.3 claim.
	if rows[3].Negative >= rows[0].Negative && rows[0].Negative > 0 {
		t.Fatalf("negative did not shrink: %v -> %v", rows[0].Negative, rows[3].Negative)
	}
	if rows[3].Net >= 0 {
		t.Fatalf("net interference at 16MB = %v, want negative", rows[3].Net)
	}
	if rows[3].Positive <= 0 {
		t.Fatal("positive interference vanished at 16MB")
	}
}

func TestHardwareCostReportMatchesPaper(t *testing.T) {
	rep := HardwareCostReport()
	for _, want := range []string{"952 B/core", "217 B/core", "18.3 KB"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestFormatters(t *testing.T) {
	curves := []SpeedupCurve{{
		Benchmark: "x",
		Points:    []CurvePoint{{1, 1}, {2, 1.9}},
	}}
	if s := FormatCurves(curves); !strings.Contains(s, "1.90") {
		t.Fatalf("curve formatting: %q", s)
	}
	rows := []ValidationRow{{Threads: 16, MeanAbsErrPct: 4.2, MaxAbsErrPct: 14.0, Worst: "cholesky"}}
	if s := FormatValidation(rows); !strings.Contains(s, "cholesky") || !strings.Contains(s, "5.1") {
		t.Fatalf("validation formatting: %q", s)
	}
	f4 := []Figure4Row{{Benchmark: "b", Threads: 4, Actual: 3, Estimated: 3.3}}
	if s := FormatFigure4(f4); !strings.Contains(s, "+7.5") {
		t.Fatalf("fig4 formatting: %q", s)
	}
	f7 := []Figure7Row{{Cores: 4, ThreadsEqCores: 2.5, Threads16: 2.8}}
	if s := FormatFigure7(f7); !strings.Contains(s, "2.80") {
		t.Fatalf("fig7 formatting: %q", s)
	}
	ir := []InterferenceRow{{Label: "l", Negative: 1, Positive: 0.5, Net: 0.5}}
	if s := FormatInterference(ir); !strings.Contains(s, "+0.50") {
		t.Fatalf("interference formatting: %q", s)
	}
}

func TestFigure6ClassesAndSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("full 28-benchmark sweep")
	}
	e := NewEngine(sim.Default(), WithWorkers(8))
	rows, err := Figure6(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 28 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Classes appear in good -> moderate -> poor order.
	order := map[string]int{"good": 0, "moderate": 1, "poor": 2}
	prev := 0
	for _, row := range rows {
		o := order[string(row.Class)]
		if o < prev {
			t.Fatal("classes out of order")
		}
		prev = o
	}
	out := FormatFigure6(rows)
	if !strings.Contains(out, "yielding is the largest component") {
		t.Fatal("summary line missing")
	}
}
