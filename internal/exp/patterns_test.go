package exp

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// TestPatternKnownAnswers is the known-answer suite over the contention
// patterns: each pattern isolates one scaling pathology and declares the
// speedup-stack component that must dominate it, so a regression anywhere
// in the analysis stack — generator, simulator, accounting hardware, stack
// arithmetic, advisor — misattributes at least one pattern and fails here.
// Every pattern is checked at 4 and 16 threads, and its 1..16 advisor
// classification is pinned. The test runs under CI's -race job.
func TestPatternKnownAnswers(t *testing.T) {
	pats := workload.Patterns()
	if len(pats) < 8 {
		t.Fatalf("contention suite shrank to %d patterns, want >= 8", len(pats))
	}
	e := NewEngine(sim.Default(), WithWorkers(runtime.NumCPU()))
	ctx := context.Background()
	for _, b := range pats {
		b := b
		t.Run(b.Spec.Name, func(t *testing.T) {
			t.Parallel()
			if b.Spec.Suite != "contention" {
				t.Errorf("pattern suite = %q, want contention", b.Spec.Suite)
			}
			if b.ExpectedDominant == "" || b.ExpectedClass == "" {
				t.Fatalf("pattern declares no known answer (dominant %q, class %q)",
					b.ExpectedDominant, b.ExpectedClass)
			}
			for _, threads := range []int{4, 16} {
				outs, err := e.Sweep(ctx, []Cell{{Bench: b.FullName(), Threads: threads}})
				if err != nil {
					t.Fatalf("x%d: %v", threads, err)
				}
				named := stack.Named(outs[0].Stack)
				want, ok := named[b.ExpectedDominant]
				if !ok {
					t.Fatalf("unknown expected component %q", b.ExpectedDominant)
				}
				// The declared component must dominate: strictly the largest
				// and a significant share of the stack, not a near-tie.
				if want < stack.NegligibleThreshold {
					t.Errorf("x%d: expected dominant %s is negligible (%.3f)",
						threads, b.ExpectedDominant, want)
				}
				for comp, v := range named {
					if comp != b.ExpectedDominant && v >= want {
						t.Errorf("x%d: %s (%.3f) is not dominated by expected %s (%.3f)",
							threads, comp, v, b.ExpectedDominant, want)
					}
				}
			}
			a, err := e.Advise(ctx, Request{Cell: Cell{Bench: b.FullName()}}, 16)
			if err != nil {
				t.Fatalf("advise: %v", err)
			}
			if string(a.Class) != b.ExpectedClass {
				t.Errorf("advisor class = %s, want %s", a.Class, b.ExpectedClass)
			}
			if a.Bottleneck != b.ExpectedDominant {
				t.Errorf("advisor bottleneck = %q, want %q", a.Bottleneck, b.ExpectedDominant)
			}
		})
	}
}
