package exp

import (
	"context"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// runCounter tallies engine hook invocations by kind.
type runCounter struct {
	mu   sync.Mutex
	runs map[string]int
}

func (rc *runCounter) hook(kind, bench string, threads, cores int) {
	rc.mu.Lock()
	rc.runs[kind]++
	rc.mu.Unlock()
}

// TestMeasureIntervalsMemo pins the caching contract: the first
// time-resolved measurement runs one sequential reference, one aggregate
// cell and one interval-enabled simulation; repeating it is a pure memo
// hit; changing only the interval count re-runs just the interval
// simulation (the aggregate is a cell hit).
func TestMeasureIntervalsMemo(t *testing.T) {
	rc := &runCounter{runs: make(map[string]int)}
	e := NewEngine(sim.Default(), WithRunHook(rc.hook))
	ctx := context.Background()
	req := Request{Cell: Cell{Bench: "swaptions_parsec_small", Threads: 2}}

	out, err := e.MeasureIntervals(ctx, req, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Series.Intervals) == 0 || len(out.Series.Intervals) > 9 {
		t.Fatalf("want ~8 intervals, got %d", len(out.Series.Intervals))
	}
	if got := rc.runs; got["seq"] != 1 || got["cell"] != 1 || got["interval"] != 1 {
		t.Fatalf("first measurement ran %v, want one of each", got)
	}

	again, err := e.MeasureIntervals(ctx, req, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := rc.runs; got["seq"] != 1 || got["cell"] != 1 || got["interval"] != 1 {
		t.Fatalf("repeat measurement re-simulated: %v", got)
	}
	if st := e.Stats(); st.IntervalRuns != 1 || st.IntervalHits != 1 {
		t.Fatalf("stats: %d runs / %d hits, want 1/1", st.IntervalRuns, st.IntervalHits)
	}
	if len(again.Series.Intervals) != len(out.Series.Intervals) {
		t.Fatal("memoized series differs from the original")
	}

	if _, err := e.MeasureIntervals(ctx, req, 4); err != nil {
		t.Fatal(err)
	}
	if got := rc.runs; got["interval"] != 2 || got["cell"] != 1 || got["seq"] != 1 {
		t.Fatalf("count change should re-run only the interval sim: %v", got)
	}
}

// TestMeasureIntervalsRelabel checks that fingerprint-equal workloads share
// one interval simulation while each caller keeps its own naming, exactly
// like Do's relabeling.
func TestMeasureIntervalsRelabel(t *testing.T) {
	b, ok := workload.ByName("swaptions_parsec_small")
	if !ok {
		t.Fatal("swaptions_parsec_small not registered")
	}
	alias := b.Spec
	alias.Name, alias.Suite = "my-swaptions", ""

	rc := &runCounter{runs: make(map[string]int)}
	e := NewEngine(sim.Default(), WithRunHook(rc.hook))
	ctx := context.Background()

	reg, err := e.MeasureIntervals(ctx, Request{Cell: Cell{Bench: "swaptions_parsec_small", Threads: 2}}, 6)
	if err != nil {
		t.Fatal(err)
	}
	inl, err := e.MeasureIntervals(ctx, Request{Cell: Cell{Spec: &alias, Threads: 2}}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rc.runs["interval"] != 1 {
		t.Fatalf("fingerprint-equal specs ran %d interval sims, want 1", rc.runs["interval"])
	}
	if reg.Series.Label != "swaptions_parsec_small" || inl.Series.Label != "my-swaptions" {
		t.Fatalf("labels not caller-resolved: %q / %q", reg.Series.Label, inl.Series.Label)
	}
	if inl.Series.Aggregate != reg.Series.Aggregate {
		t.Fatal("shared simulation produced different aggregates")
	}
}

// TestMeasureIntervalsBounds covers input validation.
func TestMeasureIntervalsBounds(t *testing.T) {
	e := NewEngine(sim.Default())
	ctx := context.Background()
	cell := Cell{Bench: "swaptions_parsec_small", Threads: 2}
	if _, err := e.MeasureIntervals(ctx, Request{Cell: cell}, 0); err == nil {
		t.Fatal("no error for zero interval count")
	}
	if _, err := e.MeasureIntervals(ctx, Request{Cell: cell}, MaxIntervals+1); err == nil {
		t.Fatal("no error for excessive interval count")
	}
	if _, err := e.MeasureIntervals(ctx, Request{Cell: Cell{Bench: "nosuch", Threads: 2}}, 4); err == nil {
		t.Fatal("no error for unknown benchmark")
	}
}
