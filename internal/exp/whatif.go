package exp

import (
	"context"
	"fmt"

	"repro/internal/stack"
	"repro/internal/whatif"
)

// MinWhatIfThreads is the smallest cell the what-if engine accepts: a
// single-threaded run has no scaling gap to decompose, so there is nothing
// for an intervention to reclaim.
const MinWhatIfThreads = 2

// WhatIf measures the cell, re-evaluates the estimator with each requested
// intervention's components virtually scaled, validates every prediction by
// re-simulating the concretely mutated workload (or machine), and returns
// the ranked report. ids selects catalog interventions; nil or empty means
// the full catalog. Interventions that do not apply to the workload are
// skipped silently (they would predict nothing).
//
// Every simulation — the baseline and each mutated cell — goes through the
// engine's fingerprint-keyed memo: a spec mutation is just a new
// fingerprint, a machine mutation a new configuration in the cell key, so
// repeating a what-if (or running one after an advise or sweep that already
// simulated the baseline) costs zero extra simulations.
func (e *Engine) WhatIf(ctx context.Context, req Request, ids []string) (whatif.Report, error) {
	cell := req.Cell.normalize()
	if cell.Threads < MinWhatIfThreads {
		return whatif.Report{}, fmt.Errorf("exp: what-if needs at least %d threads (a single-threaded run has no scaling gap), got %d",
			MinWhatIfThreads, cell.Threads)
	}
	ivs := whatif.Catalog()
	if len(ids) > 0 {
		ivs = make([]whatif.Intervention, len(ids))
		for i, id := range ids {
			iv, err := whatif.ByID(id)
			if err != nil {
				return whatif.Report{}, err
			}
			ivs[i] = iv
		}
	}
	b, err := resolveCell(req.Cell)
	if err != nil {
		return whatif.Report{}, err
	}
	cfg := e.base
	if req.Config != nil {
		cfg = *req.Config
	}

	// Baseline first: the predictions are pure arithmetic over its stack.
	outs, err := e.Do(ctx, []Request{req})
	if err != nil {
		return whatif.Report{}, err
	}
	base := outs[0]

	// One batched Do over every applicable mutation: spec mutations carry
	// their own fingerprints, machine mutations their own configurations, so
	// the batch deduplicates against everything already simulated.
	applied := make([]whatif.Intervention, 0, len(ivs))
	muts := make([]whatif.Mutation, 0, len(ivs))
	reqs := make([]Request, 0, len(ivs))
	for _, iv := range ivs {
		m, ok := iv.Mutate(b.Spec, cfg)
		if !ok {
			continue
		}
		mreq := Request{Cell: Cell{Threads: req.Threads, Cores: req.Cores}, Config: req.Config}
		if m.Spec != nil {
			mreq.Cell.Spec = m.Spec
		} else {
			spec := b.Spec
			mreq.Cell.Spec = &spec
			mreq.Config = m.Config
		}
		applied = append(applied, iv)
		muts = append(muts, m)
		reqs = append(reqs, mreq)
	}
	mouts, err := e.Do(ctx, reqs)
	if err != nil {
		return whatif.Report{}, err
	}

	type ranked struct {
		pred whatif.Prediction
		bar  stack.Bar
	}
	rows := make([]ranked, len(applied))
	for i, iv := range applied {
		gain := whatif.PredictGain(base.Stack, iv)
		out := mouts[i]
		rows[i] = ranked{
			pred: whatif.Prediction{
				Intervention:     iv.ID,
				Summary:          iv.Summary,
				Component:        iv.Component,
				Mutation:         muts[i].Description,
				PredictedGain:    gain,
				PredictedSpeedup: base.Actual + gain,
				ActualSpeedup:    out.Actual,
				ActualGain:       out.Actual - base.Actual,
				Error:            (base.Actual + gain - out.Actual) / float64(cell.Threads),
			},
			bar: stack.Bar{Label: iv.ID, Stack: out.Stack},
		}
	}
	preds := make([]whatif.Prediction, len(rows))
	for i, r := range rows {
		preds[i] = r.pred
	}
	whatif.Rank(preds)

	rep := whatif.Report{
		Benchmark:         b.FullName(),
		Threads:           cell.Threads,
		BaselineSpeedup:   base.Actual,
		BaselineEstimated: base.Estimated,
		Predictions:       preds,
		Bars:              make([]stack.Bar, 0, len(rows)+1),
	}
	if cell.Cores != cell.Threads {
		rep.Cores = cell.Cores
	}
	rep.Bars = append(rep.Bars, stack.Bar{
		Label: fmt.Sprintf("%s x%d (baseline)", b.FullName(), cell.Threads),
		Stack: base.Stack,
	})
	// Bars follow the ranking so the chart reads top intervention first.
	for _, p := range preds {
		for _, r := range rows {
			if r.pred.Intervention == p.Intervention {
				rep.Bars = append(rep.Bars, r.bar)
				break
			}
		}
	}
	return rep, nil
}
