package exp

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// fastBoundThreadCounts is the error-bound regression grid, matching the
// what-if regression's mid-scale and full-machine points.
var fastBoundThreadCounts = []int{4, 16}

// TestFastModeErrorBoundsRegression is the fast-lane accuracy contract:
// every registry analogue at 4 and 16 threads, simulated in both modes,
// must keep every per-component deviation (and the speedup deltas) within
// the documented sim.FastErrorBounds. Both modes are fully deterministic,
// so an excursion is a finding, not a flake: either the sampled model or
// the extrapolation changed meaning. Runs under CI's -race job alongside
// the what-if regression.
func TestFastModeErrorBoundsRegression(t *testing.T) {
	e := NewEngine(sim.Default(), WithWorkers(8))
	ctx := context.Background()

	var cells []Cell
	for _, b := range workload.All() {
		for _, n := range fastBoundThreadCounts {
			cells = append(cells, Cell{Bench: b.FullName(), Threads: n})
		}
	}
	exact, err := e.SweepConfig(ctx, e.Config().WithMode(sim.ModeExact), cells)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := e.SweepConfig(ctx, e.Config().WithMode(sim.ModeFast), cells)
	if err != nil {
		t.Fatal(err)
	}

	bounds := sim.FastErrorBounds
	var worst FastDeviation
	max := func(cur *float64, v float64) {
		if v > *cur {
			*cur = v
		}
	}
	for i := range cells {
		d := Deviation(exact[i], fast[i])
		if field := d.Exceeds(bounds); field != "" {
			t.Errorf("%s x%d: %s deviation exceeds FastErrorBounds: %+v",
				d.Benchmark, d.Threads, field, d)
		}
		max(&worst.NegLLC, d.NegLLC)
		max(&worst.PosLLC, d.PosLLC)
		max(&worst.NegMem, d.NegMem)
		max(&worst.Spin, d.Spin)
		max(&worst.Yield, d.Yield)
		max(&worst.Imbalance, d.Imbalance)
		max(&worst.Speedup, d.Speedup)
		max(&worst.ActualSpeedup, d.ActualSpeedup)
	}
	t.Logf("observed maxima over %d cells: NegLLC %.4f PosLLC %.4f NegMem %.4f Spin %.4f Yield %.4f Imbalance %.4f Speedup %.4f ActualSpeedup %.4f",
		len(cells), worst.NegLLC, worst.PosLLC, worst.NegMem, worst.Spin,
		worst.Yield, worst.Imbalance, worst.Speedup, worst.ActualSpeedup)
}

// TestFastStacksStableAcrossWorkers pins fast mode's determinism contract
// at the engine layer (mirroring TestWhatIfRankingStableAcrossWorkers):
// the same fast-mode cells produce byte-identical outcomes on a serial and
// a wide engine, and on repeated sweeps of the same engine.
func TestFastStacksStableAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	cells := []Cell{
		{Bench: "cholesky_splash2", Threads: 16},
		{Bench: "ferret_parsec_medium", Threads: 8},
		{Bench: "water-nsquared_splash2", Threads: 4},
	}
	fastCfg := sim.Default().WithMode(sim.ModeFast)

	serial := NewEngine(fastCfg, WithWorkers(1))
	wide := NewEngine(fastCfg, WithWorkers(8))
	want, err := serial.Sweep(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wide.Sweep(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("fast-mode outcomes differ between 1-worker and 8-worker engines")
	}
	// Repeated sweeps hit the memo; a fresh engine re-simulates. Both must
	// reproduce the same bytes.
	fresh := NewEngine(fastCfg, WithWorkers(8), WithIntraRunShards(4))
	again, err := fresh.Sweep(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, again) {
		t.Fatal("fast-mode outcomes differ across engines (intra-run shards active)")
	}
	if s := fresh.Stats(); s.FastCellRuns != len(cells) || s.FastSeqRuns == 0 {
		t.Errorf("fast run counters not tracked: %+v", s)
	}
}

// TestValidationCompareShape sanity-checks the fastcompare section: one row
// per thread count, fast deltas populated and within the speedup bound.
func TestValidationCompareShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid comparison is not a -short test")
	}
	e := NewEngine(sim.Default(), WithWorkers(8))
	rows, err := ValidationCompare(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ThreadCounts) {
		t.Fatalf("got %d rows, want %d", len(rows), len(ThreadCounts))
	}
	for _, r := range rows {
		if r.Worst == "" {
			t.Errorf("threads=%d: no worst benchmark recorded", r.Threads)
		}
		if r.MaxAbsDeltaPct > 100*sim.FastErrorBounds.Speedup {
			t.Errorf("threads=%d: max delta %.2f%% exceeds the documented speedup bound",
				r.Threads, r.MaxAbsDeltaPct)
		}
	}
	tbl := FormatValidationCompare(rows)
	if !strings.Contains(tbl, "exact mean|e|%") || len(strings.Split(tbl, "\n")) < 5 {
		t.Errorf("unexpected table:\n%s", tbl)
	}
}
