package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/stack"
)

// CSV emitters produce machine-readable versions of every artifact, so the
// figures can be re-plotted with external tooling.

// WriteCurvesCSV emits Figure 1 data as benchmark,threads,speedup rows.
func WriteCurvesCSV(w io.Writer, curves []SpeedupCurve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "threads", "speedup"}); err != nil {
		return err
	}
	for _, c := range curves {
		for _, p := range c.Points {
			rec := []string{c.Benchmark, strconv.Itoa(p.Threads), fmtF(p.Speedup)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure4CSV emits benchmark,threads,actual,estimated rows.
func WriteFigure4CSV(w io.Writer, rows []Figure4Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "threads", "actual", "estimated"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Benchmark, strconv.Itoa(r.Threads), fmtF(r.Actual), fmtF(r.Estimated)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteStacksCSV emits one row per stack with every component in speedup
// units (Figure 5 data). It is stack.EncodeCSV under its historical name.
func WriteStacksCSV(w io.Writer, bars []stack.Bar) error {
	return stack.EncodeCSV(w, bars)
}

// WriteInterferenceCSV emits Figure 8/9 rows.
func WriteInterferenceCSV(w io.Writer, rows []InterferenceRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"label", "negative", "positive", "net"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Label, fmtF(r.Negative), fmtF(r.Positive), fmtF(r.Net)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTreeCSV emits Figure 6 rows.
func WriteTreeCSV(w io.Writer, rows []TreeRow) error {
	cw := csv.NewWriter(w)
	header := []string{"class", "comp1", "comp2", "comp3", "benchmark", "suite",
		"speedup", "paper_speedup"}
	if err := cw.Write(header); err != nil {
		return err
	}
	comp := func(c []string, i int) string {
		if i < len(c) {
			return c[i]
		}
		return ""
	}
	for _, r := range rows {
		rec := []string{string(r.Class), comp(r.Components, 0), comp(r.Components, 1),
			comp(r.Components, 2), r.Benchmark, r.Suite,
			fmtF(r.Speedup), fmtF(r.PaperSpeedup)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return fmt.Sprintf("%.4f", v) }
