package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/workload"
)

// The sweep engine executes a declared set of simulation cells — each a
// (workload, threads, cores) triple under a machine configuration — on a
// bounded worker pool. Cells shared between figures are simulated exactly
// once: both sequential references and full Outcomes are memoized for the
// lifetime of the Engine, keyed by the complete machine configuration plus
// the workload's canonical fingerprint, so regenerating the whole
// evaluation is a single deduplicated parallel pass. Every simulation is a
// deterministic function of (config, workload), and results are returned in
// declared order, so figure output is byte-identical regardless of the
// worker count.

// CellErrorIndexBase is the single definition of the "cell %d" error-prefix
// contract: cell indices in batch errors — Do's "exp: cell %d: ..." and the
// /v1/sweep endpoint's "cell %d: ..." — are 0-based positions in the
// declared request slice, matching both Go slice indexing and the JSON
// array the service decodes. Every prefix is built by adding this base, so
// the contract cannot drift between layers without failing the tests that
// assert the literal "cell 0:" prefix.
const CellErrorIndexBase = 0

// Cell is one declared simulation: a workload at a thread count on a core
// count. Cores == 0 means threads = cores, the paper's default pairing.
//
// The workload is either a registered benchmark named by Bench (FullName or
// plain name) or an inline Spec — the bring-your-own-benchmark path. Both
// resolve to the same identity, the spec's canonical workload.Fingerprint,
// which is what the memo keys on: a custom spec identical to a registry
// analogue (or to another custom spec under a different name) is the same
// simulation and runs once.
type Cell struct {
	// Bench names a registered benchmark analogue. Ignored when Spec is set.
	Bench string
	// Spec is an inline workload description. It is validated during
	// resolution and participates in dedup and memoization exactly like a
	// registry benchmark.
	Spec    *workload.Spec
	Threads int
	Cores   int
}

// normalize fills the Cores default.
func (c Cell) normalize() Cell {
	if c.Cores == 0 {
		c.Cores = c.Threads
	}
	return c
}

// Request is a Cell bound to an explicit machine configuration; a nil
// Config means the engine's base machine. Figure 9 and the ablations sweep
// machine parameters, so a single Do call can mix configurations and still
// execute every cell under one pool.
type Request struct {
	Cell
	Config *sim.Config
}

// cellKey identifies a memoized Outcome: the full pre-tuning machine
// configuration plus the workload identity and run shape. sim.Config is a
// tree of flat value structs and Fingerprint a byte array, so the key is
// comparable and needs no serialization. Keying on the fingerprint rather
// than a name means registry cells, plain-name aliases and inline specs all
// collapse onto one entry when they describe the same workload.
type cellKey struct {
	cfg     sim.Config
	fp      workload.Fingerprint
	threads int
	cores   int
}

// seqKey identifies a memoized sequential reference. The configuration is
// normalized to one core: Ts does not depend on the sweep's core count.
type seqKey struct {
	cfg sim.Config
	fp  workload.Fingerprint
}

// resolveCell maps a cell to the workload it names: the validated canonical
// form of an inline Spec, or the registry entry for Bench (failing with the
// nearest-name suggestion).
func resolveCell(c Cell) (workload.Benchmark, error) {
	if c.Spec != nil {
		s := *c.Spec
		if err := s.Validate(); err != nil {
			return workload.Benchmark{}, err
		}
		return workload.Benchmark{Spec: s.Canonical()}, nil
	}
	b, ok := workload.ByName(c.Bench)
	if !ok {
		return workload.Benchmark{}, workload.UnknownBenchmarkError(c.Bench)
	}
	return b, nil
}

// Stats counts the engine's simulation traffic: actual simulator runs
// versus requests served from the memo.
type Stats struct {
	// SeqRuns and CellRuns are simulations actually executed.
	SeqRuns  int
	CellRuns int
	// FastSeqRuns and FastCellRuns are the subset of those runs executed in
	// sim.ModeFast (the sampled fast lane); the exact-mode counts are the
	// differences. Fast and exact cells never alias in the memo — Mode is
	// part of sim.Config, the memo key — so the split is exact.
	FastSeqRuns  int
	FastCellRuns int
	// SeqHits and CellHits are requests satisfied by a memoized (or
	// in-flight) entry.
	SeqHits  int
	CellHits int
	// CellEvictions counts completed outcomes dropped by the cell store's
	// retention bound (WithCellMemoLimit); an evicted cell re-simulates on
	// its next request.
	CellEvictions int
	// CellMemoEntries and CellMemoLimit are the cell store's occupancy:
	// currently retained entries (in-flight claims included) against the
	// configured bound (0 = unbounded) — cache pressure, not just churn.
	CellMemoEntries int
	CellMemoLimit   int
	// IntervalRuns and IntervalHits are the same run/hit pair for
	// time-resolved measurements (MeasureIntervals); IntervalEvictions
	// counts interval series dropped by the LRU bound.
	IntervalRuns      int
	IntervalHits      int
	IntervalEvictions int
	// InFlight is a gauge: simulations executing right now.
	InFlight int
	// SimulatedOps is the cumulative count of trace operations executed by
	// the engine's simulations (cells and sequential references; memo hits
	// add nothing). SimulatedOps over wall-clock time is the engine's
	// simulator throughput.
	SimulatedOps uint64
}

// Engine is the concurrent deduplicating sweep executor. It is safe for
// use by multiple goroutines; overlapping sweeps share the memo and never
// simulate the same cell twice.
type Engine struct {
	base sim.Config
	// sem bounds simulation parallelism engine-wide: concurrent sweeps on
	// one engine share the same worker budget.
	sem chan struct{}

	// progress, if set, observes cumulative cell completion across the
	// engine's lifetime. It may be invoked from multiple goroutines, but
	// calls are serialized by the engine.
	progress func(done, total int)
	// hook, if set, observes every simulation actually executed (kind is
	// "seq", "cell" or "interval"). Intended for tests and instrumentation.
	hook func(kind string, bench string, threads, cores int)

	// intraShards, when positive, runs every cell simulation with
	// sim.WithAccountingShards(intraShards): the tag-directory walks of a
	// single run execute on worker goroutines (intra-run parallelism).
	// Results are byte-identical by the sim package's shard contract, so
	// this is engine tuning, not part of any memo key.
	intraShards int

	mu    sync.Mutex
	stats Stats

	// The three memos, each a pluggable CacheStore (see store.go). The
	// defaults are in-process MemStores: seq unbounded (one uint64 per
	// workload), cells and intervals each LRU-bounded by cellLimit.
	// cellLimit only shapes the defaults; replacement stores own their own
	// retention policy.
	seq       CacheStore
	cells     CacheStore
	intervals CacheStore
	cellLimit int

	progressMu          sync.Mutex
	doneCells, totCells int
}

// Option customizes an Engine.
type Option func(*Engine)

// WithWorkers bounds the worker pool (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.sem = make(chan struct{}, n)
		}
	}
}

// WithProgress installs a progress callback receiving the cumulative
// (completed, declared) unique-cell counts.
func WithProgress(f func(done, total int)) Option {
	return func(e *Engine) { e.progress = f }
}

// WithRunHook installs a hook invoked once per simulation actually
// executed, with kind "seq", "cell" or "interval". Memo hits do not fire it.
func WithRunHook(f func(kind, bench string, threads, cores int)) Option {
	return func(e *Engine) { e.hook = f }
}

// WithIntraRunShards runs each cell simulation with n accounting shards
// (sim.WithAccountingShards): one large cell spreads its tag-directory
// walks over n extra OS threads instead of running on one goroutine.
// Results are byte-identical for any n, so the option composes freely with
// memoization and with WithWorkers — use it when cells are few and large
// (a single /v1/stack request), skip it when a wide sweep already saturates
// the host with one goroutine per cell. n <= 0 disables (the default).
func WithIntraRunShards(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.intraShards = n
		}
	}
}

// WithCellMemoLimit bounds the default outcome memo to at most n completed
// cells (successful outcomes and memoized errors alike), evicted
// least-recently-used. Long-running engines (the speedupd service) use
// this to keep memory bounded; n <= 0 means unbounded, the right choice
// for one-shot regeneration where every cell is known up front. Eviction
// only drops completed entries — an in-flight simulation keeps its
// singleflight slot until it finishes — and an evicted cell simply
// re-simulates on its next request, so results are unaffected. The limit
// shapes the default MemStores; a store plugged in via WithStores owns its
// own retention policy.
func WithCellMemoLimit(n int) Option {
	return func(e *Engine) { e.cellLimit = n }
}

// NewEngine returns an Engine executing against the given base machine.
func NewEngine(cfg sim.Config, opts ...Option) *Engine {
	e := &Engine{
		base: cfg,
		sem:  make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
	for _, o := range opts {
		o(e)
	}
	// Defaults for whichever memos no option replaced. WithCellMemoLimit
	// must be observable regardless of option order, so the bounded stores
	// are built after all options ran.
	if e.seq == nil {
		e.seq = NewMemStore(0)
	}
	if e.cells == nil {
		e.cells = NewMemStore(e.cellLimit)
	}
	if e.intervals == nil {
		e.intervals = NewMemStore(e.cellLimit)
	}
	return e
}

// Config returns the engine's base machine configuration.
func (e *Engine) Config() sim.Config { return e.base }

// Stats returns a snapshot of the engine's simulation counters, merged
// with the memo stores' retention counters (evictions and occupancy live
// in the stores since the CacheStore extraction).
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := e.stats
	e.mu.Unlock()
	cell := e.cells.Occupancy()
	st.CellEvictions = cell.Evictions
	st.CellMemoEntries = cell.Entries
	st.CellMemoLimit = cell.Limit
	st.IntervalEvictions = e.intervals.Occupancy().Evictions
	return st
}

// Sweep executes the cells under the engine's base configuration and
// returns one Outcome per declared cell, in declared order.
func (e *Engine) Sweep(ctx context.Context, cells []Cell) ([]Outcome, error) {
	reqs := make([]Request, len(cells))
	for i, c := range cells {
		reqs[i] = Request{Cell: c}
	}
	return e.Do(ctx, reqs)
}

// SweepConfig executes the cells under an explicit machine configuration
// (Figure 9's LLC sweep, the ablations), sharing the engine's pool and memo.
func (e *Engine) SweepConfig(ctx context.Context, cfg sim.Config, cells []Cell) ([]Outcome, error) {
	reqs := make([]Request, len(cells))
	for i, c := range cells {
		reqs[i] = Request{Cell: c, Config: &cfg}
	}
	return e.Do(ctx, reqs)
}

// Do executes a batch of requests, deduplicating identical cells within
// the batch and against everything the engine has already simulated, and
// returns Outcomes in declared order. On error the first failure in
// declared order is returned; a canceled context aborts promptly without
// waiting for queued cells.
func (e *Engine) Do(ctx context.Context, reqs []Request) ([]Outcome, error) {
	// Resolve workloads and keys up front so unknown names and invalid
	// inline specs fail before any simulation is spent.
	keys := make([]cellKey, len(reqs))
	resolved := make([]workload.Benchmark, len(reqs))
	benches := make(map[workload.Fingerprint]workload.Benchmark, len(reqs))
	for i, req := range reqs {
		cell := req.Cell.normalize()
		if cell.Threads <= 0 {
			return nil, fmt.Errorf("exp: cell %d: non-positive thread count %d", CellErrorIndexBase+i, cell.Threads)
		}
		b, err := resolveCell(req.Cell)
		if err != nil {
			return nil, fmt.Errorf("exp: cell %d: %w", CellErrorIndexBase+i, err)
		}
		resolved[i] = b
		fp := b.Spec.Fingerprint()
		if _, ok := benches[fp]; !ok {
			benches[fp] = b
		}
		cfg := e.base
		if req.Config != nil {
			cfg = *req.Config
		}
		keys[i] = cellKey{cfg: cfg, fp: fp, threads: cell.Threads, cores: cell.Cores}
	}

	// Collapse duplicates within the batch, preserving first-seen order.
	unique := make([]cellKey, 0, len(keys))
	seen := make(map[cellKey]int, len(keys))
	for _, k := range keys {
		if _, ok := seen[k]; !ok {
			seen[k] = len(unique)
			unique = append(unique, k)
		}
	}
	e.addDeclared(len(unique))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One goroutine per unique cell; the engine-wide semaphore bounds the
	// actual simulations, not these bookkeeping goroutines, so a cell
	// waiting on another claimant's in-flight work never idles a slot.
	results := make([]Outcome, len(unique))
	errs := make([]error, len(unique))
	var wg sync.WaitGroup
	for i, k := range unique {
		wg.Add(1)
		go func(i int, k cellKey) {
			defer wg.Done()
			out, err := e.cell(ctx, k, benches[k.fp])
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			results[i] = out
			e.stepDone()
		}(i, k)
	}
	wg.Wait()

	// Report the first failure in declared order, preferring a real
	// simulation error over the cancellations it triggered in the rest of
	// the pool.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if err != context.Canceled && err != context.DeadlineExceeded {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	outs := make([]Outcome, len(reqs))
	for i, k := range keys {
		outs[i] = results[seen[k]]
		// Identity is the fingerprint, so a memoized outcome may carry the
		// naming of whichever alias simulated it first; relabel each
		// returned copy with the caller's own resolution.
		outs[i].Bench = resolved[i]
	}
	return outs, nil
}

// acquire takes an engine-wide worker slot, or fails with the context's
// error. The returned release must be called once the simulation is done.
func (e *Engine) acquire(ctx context.Context) (release func(), err error) {
	select {
	case e.sem <- struct{}{}:
		return func() { <-e.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// cell resolves one unique cell through the cell store: claim and
// simulate, or wait for whoever holds it. Abandoned claims (context
// canceled before the simulation ran) are retried by the next caller.
func (e *Engine) cell(ctx context.Context, k cellKey, b workload.Benchmark) (Outcome, error) {
	sk := k.storeKey()
	out, err := storeDo(ctx, e.cells, sk,
		func() { e.addHit(&e.stats.CellHits) },
		func() (Outcome, error) { return e.runCell(ctx, k, b) })
	e.cells.Touch(sk)
	return out, err
}

// addHit bumps one of the hit counters under the stats lock.
func (e *Engine) addHit(counter *int) {
	e.mu.Lock()
	*counter++
	e.mu.Unlock()
}

// runCell executes the cell's simulation (after securing its sequential
// reference), mirroring the paper's pairing of every multi-threaded run
// with a single-threaded run of the same work.
func (e *Engine) runCell(ctx context.Context, k cellKey, b workload.Benchmark) (Outcome, error) {
	ts, err := e.seqTime(ctx, k.cfg, b)
	if err != nil {
		return Outcome{}, err
	}
	release, err := e.acquire(ctx)
	if err != nil {
		return Outcome{}, err
	}
	defer release()
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	if e.hook != nil {
		e.hook("cell", b.FullName(), k.threads, k.cores)
	}
	e.mu.Lock()
	e.stats.CellRuns++
	if k.cfg.Mode == sim.ModeFast {
		e.stats.FastCellRuns++
	}
	e.stats.InFlight++
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.stats.InFlight--
		e.mu.Unlock()
	}()

	cfg := k.cfg.WithCores(k.cores)
	cfg.Policy = b.Spec.TunePolicy(cfg.Policy)
	progs, err := b.Spec.Parallel(k.threads)
	if err != nil {
		return Outcome{}, err
	}
	opts := b.Spec.PipelineOptions(k.threads)
	if e.intraShards > 0 {
		opts = append(opts, sim.WithAccountingShards(e.intraShards))
	}
	res, err := sim.Run(cfg, progs, opts...)
	if err != nil {
		return Outcome{}, fmt.Errorf("%s x%d: %w", b.FullName(), k.threads, err)
	}
	e.mu.Lock()
	e.stats.SimulatedOps += res.TotalOps
	e.mu.Unlock()
	stack := res.Stack(ts)
	return Outcome{
		Bench:     b,
		Threads:   k.threads,
		Ts:        ts,
		Tp:        res.Tp,
		Actual:    stack.ActualSpeedup,
		Estimated: stack.Estimated(),
		Stack:     stack,
		Result:    res,
	}, nil
}

// seqTime resolves the benchmark's single-threaded reference time under
// cfg, with the same claim-or-wait discipline as cell.
func (e *Engine) seqTime(ctx context.Context, cfg sim.Config, b workload.Benchmark) (uint64, error) {
	k := seqKey{cfg: cfg.WithCores(1), fp: b.Spec.Fingerprint()}
	return storeDo(ctx, e.seq, k.storeKey(),
		func() { e.addHit(&e.stats.SeqHits) },
		func() (uint64, error) { return e.runSeq(ctx, cfg, b) })
}

// runSeq executes the single-threaded reference simulation.
func (e *Engine) runSeq(ctx context.Context, cfg sim.Config, b workload.Benchmark) (uint64, error) {
	release, err := e.acquire(ctx)
	if err != nil {
		return 0, err
	}
	defer release()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if e.hook != nil {
		e.hook("seq", b.FullName(), 1, 1)
	}
	e.mu.Lock()
	e.stats.SeqRuns++
	if cfg.Mode == sim.ModeFast {
		e.stats.FastSeqRuns++
	}
	e.stats.InFlight++
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.stats.InFlight--
		e.mu.Unlock()
	}()

	prog, err := b.Spec.Sequential()
	if err != nil {
		return 0, err
	}
	cfg.Policy = b.Spec.TunePolicy(cfg.Policy)
	// The reference run contributes only Tp; skipping the accounting
	// hardware (which never affects timing) halves its tag-directory work.
	res, err := sim.RunSequential(cfg, prog, sim.WithoutAccounting())
	if err != nil {
		return 0, fmt.Errorf("%s sequential: %w", b.FullName(), err)
	}
	e.mu.Lock()
	e.stats.SimulatedOps += res.TotalOps
	e.mu.Unlock()
	return res.Tp, nil
}

// addDeclared and stepDone maintain the cumulative progress counters. The
// callback runs under progressMu so invocations are serialized and counts
// never appear to move backwards; it must not call back into the engine.
func (e *Engine) addDeclared(n int) {
	e.progressMu.Lock()
	defer e.progressMu.Unlock()
	e.totCells += n
	if e.progress != nil && n > 0 {
		e.progress(e.doneCells, e.totCells)
	}
}

func (e *Engine) stepDone() {
	e.progressMu.Lock()
	defer e.progressMu.Unlock()
	e.doneCells++
	if e.progress != nil {
		e.progress(e.doneCells, e.totCells)
	}
}
