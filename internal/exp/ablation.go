package exp

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// Ablation studies for the accounting architecture's design choices
// (DESIGN.md's per-experiment index). These are not paper figures; they
// probe the knobs the paper fixed: the ATD sampling factor (Section 4.1
// trades hardware cost against extrapolation noise), the Tian detector's
// repetition threshold (Section 4.3), and the engine's relaxed-
// synchronization quantum (a simulator-fidelity check). Each sweep point
// is a distinct machine configuration run through the shared engine, so
// points that coincide with the base machine reuse the evaluation's cells.

// SamplingRow is one point of the ATD sampling sweep.
type SamplingRow struct {
	// SampleShift selects 1-in-2^shift sets.
	SampleShift uint
	// ATDBytes is the per-core tag-store cost at this shift.
	ATDBytes int
	// MeanAbsErrPct is the 16-thread validation error over the probe set.
	MeanAbsErrPct float64
}

// ablationProbeSet is a small but diverse benchmark subset used by the
// sweeps: one cache-bound, one spin-bound, one sharing-bound and one
// pipeline benchmark.
var ablationProbeSet = []string{
	"facesim_parsec_small",
	"cholesky_splash2",
	"canneal_parsec_small",
	"ferret_parsec_small",
}

func probeCells() []Cell {
	cells := make([]Cell, len(ablationProbeSet))
	for i, name := range ablationProbeSet {
		cells[i] = Cell{Bench: name, Threads: 16}
	}
	return cells
}

func probeError(ctx context.Context, e *Engine, cfg sim.Config) (float64, error) {
	outs, err := e.SweepConfig(ctx, cfg, probeCells())
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, out := range outs {
		e := out.Error()
		if e < 0 {
			e = -e
		}
		total += 100 * e
	}
	return total / float64(len(outs)), nil
}

// AblationSampling sweeps the ATD set-sampling factor: more sampled sets
// cost more tag storage and reduce extrapolation noise. The paper picks a
// high sampling factor to reach its 952-byte budget.
func AblationSampling(ctx context.Context, e *Engine) ([]SamplingRow, error) {
	base := e.Config()
	var rows []SamplingRow
	for _, shift := range []uint{0, 3, 5, 7} {
		cfg := base
		cfg.ATDSampleShift = shift
		err := cfg.Validate()
		if err != nil {
			return nil, err
		}
		meanErr, err := probeError(ctx, e, cfg)
		if err != nil {
			return nil, err
		}
		sets := cfg.LLC.Sets() >> shift
		cost := core.Cost(core.CostParams{
			SampledSets: sets, Ways: cfg.LLC.Ways, TagBits: 24,
			ORAEntries: cfg.Mem.ORAEntries, Counters: 12, SpinEntries: 8,
		})
		rows = append(rows, SamplingRow{
			SampleShift:   shift,
			ATDBytes:      cost.ATDBytes,
			MeanAbsErrPct: meanErr,
		})
	}
	return rows, nil
}

// FormatSampling renders the sampling sweep.
func FormatSampling(rows []SamplingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %14s %14s\n", "sample shift", "ATD bytes/core", "mean|err|%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14d %14d %14.1f\n", r.SampleShift, r.ATDBytes, r.MeanAbsErrPct)
	}
	return b.String()
}

// ThresholdRow is one point of the spin-threshold sweep.
type ThresholdRow struct {
	Threshold     int
	MeanAbsErrPct float64
	// SpinShare is cholesky's detected spin component in speedup units: a
	// threshold that is too high misses short episodes.
	SpinShare float64
}

// AblationSpinThreshold sweeps the Tian detector's repetition threshold.
func AblationSpinThreshold(ctx context.Context, e *Engine) ([]ThresholdRow, error) {
	base := e.Config()
	var rows []ThresholdRow
	for _, th := range []int{4, 16, 64, 256} {
		cfg := base
		cfg.Spin.Threshold = th
		meanErr, err := probeError(ctx, e, cfg)
		if err != nil {
			return nil, err
		}
		// cholesky_splash2 is in the probe set, so this cell is memoized.
		outs, err := e.SweepConfig(ctx, cfg, []Cell{{Bench: "cholesky_splash2", Threads: 16}})
		if err != nil {
			return nil, err
		}
		out := outs[0]
		rows = append(rows, ThresholdRow{
			Threshold:     th,
			MeanAbsErrPct: meanErr,
			SpinShare:     out.Stack.Components.Spin / float64(out.Tp),
		})
	}
	return rows, nil
}

// FormatThreshold renders the spin-threshold sweep.
func FormatThreshold(rows []ThresholdRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %20s\n", "threshold", "mean|err|%", "cholesky spin comp")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d %14.1f %20.2f\n", r.Threshold, r.MeanAbsErrPct, r.SpinShare)
	}
	return b.String()
}

// QuantumRow is one point of the engine-quantum sweep.
type QuantumRow struct {
	Quantum uint64
	// Speedup16 is facesim's measured 16-thread speedup: relaxed
	// synchronization must not distort results materially.
	Speedup16 float64
	// MeanAbsErrPct as in the other sweeps.
	MeanAbsErrPct float64
}

// AblationQuantum sweeps the relaxed-synchronization quantum. Simulated
// results should be (nearly) insensitive to it within a sane range — this
// is the fidelity argument for the Sniper-style engine.
func AblationQuantum(ctx context.Context, e *Engine) ([]QuantumRow, error) {
	base := e.Config()
	var rows []QuantumRow
	for _, q := range []uint64{50, 100, 200, 400} {
		cfg := base
		cfg.Quantum = q
		outs, err := e.SweepConfig(ctx, cfg, []Cell{{Bench: "facesim_parsec_small", Threads: 16}})
		if err != nil {
			return nil, err
		}
		meanErr, err := probeError(ctx, e, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, QuantumRow{
			Quantum:       q,
			Speedup16:     outs[0].Actual,
			MeanAbsErrPct: meanErr,
		})
	}
	return rows, nil
}

// FormatQuantum renders the quantum sweep.
func FormatQuantum(rows []QuantumRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %18s %14s\n", "quantum", "facesim x16", "mean|err|%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %18.2f %14.1f\n", r.Quantum, r.Speedup16, r.MeanAbsErrPct)
	}
	return b.String()
}
