package exp

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

func TestAdviseThreadsSchedule(t *testing.T) {
	cases := map[int][]int{
		3:  {1, 2, 3},
		4:  {1, 2, 4},
		16: {1, 2, 4, 8, 16},
		12: {1, 2, 4, 8, 12},
		17: {1, 2, 4, 8, 16, 17},
	}
	for max, want := range cases {
		if got := AdviseThreads(max); !reflect.DeepEqual(got, want) {
			t.Errorf("AdviseThreads(%d) = %v, want %v", max, got, want)
		}
	}
}

func TestAdviseBounds(t *testing.T) {
	e := NewEngine(sim.Default())
	req := Request{Cell: Cell{Bench: "fft_splash2"}}
	for _, max := range []int{0, 1, 2, MaxAdviseThreads + 1} {
		if _, err := e.Advise(context.Background(), req, max); err == nil {
			t.Errorf("Advise with max threads %d: want error", max)
		}
	}
	if _, err := e.Advise(context.Background(), Request{Cell: Cell{Bench: "nope"}}, 16); err == nil {
		t.Error("Advise with unknown benchmark: want error")
	}
}

// TestAdviseRegistryClassification is the registry-wide advisor validation:
// every analogue must land in the class its generator family was calibrated
// for (the paper's Figure 6 boundary: >= 10x at 16 threads is good scaling,
// which the advisor calls linear; nothing in the registry scales
// negatively), and for the synchronization-dominated families —
// lock-dispensed task queues, barrier-phased workloads with skewed shares,
// pipelines — the fitted serial fraction must agree with the stack's
// spinning/yielding/imbalance view within the documented bound.
func TestAdviseRegistryClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	e := NewEngine(sim.Default())
	sawDisagreement := false
	for _, b := range workload.All() {
		a, err := e.Advise(context.Background(), Request{Cell: Cell{Bench: b.FullName()}}, 16)
		if err != nil {
			t.Fatalf("%s: %v", b.FullName(), err)
		}
		want := scaling.ClassSaturated
		if b.PaperSpeedup16 >= 10 {
			want = scaling.ClassLinear
		}
		if a.Class != want {
			t.Errorf("%s: classified %s, generator family predicts %s (paper %0.2fx)",
				b.FullName(), a.Class, want, b.PaperSpeedup16)
		}
		if len(a.Points) != 5 {
			t.Errorf("%s: %d sweep points, want 5", b.FullName(), len(a.Points))
		}
		for _, f := range []scaling.Fit{a.Amdahl, a.USL} {
			if f.Sigma < 0 || f.Sigma > 1 || f.Kappa < 0 {
				t.Errorf("%s: fit outside constraints: %+v", b.FullName(), f)
			}
		}
		if a.USL.R2 < 0.85 {
			t.Errorf("%s: USL fit R2=%.3f, want >= 0.85", b.FullName(), a.USL.R2)
		}
		// The cross-check: serialization-dominated analogues must agree.
		switch a.Bottleneck {
		case stack.CompSpinning, stack.CompYielding, stack.CompImbalance:
			if !a.SigmaAgrees {
				t.Errorf("%s: %s-dominated but fitted sigma %.4f disagrees with stack sigma %.4f (bound %.2f)",
					b.FullName(), a.Bottleneck, a.Amdahl.Sigma, a.SigmaStack, scaling.SigmaAgreementBound)
			}
		}
		if !a.SigmaAgrees {
			sawDisagreement = true
		}
		if len(a.Recommendations) == 0 && a.Bottleneck != "" {
			t.Errorf("%s: bottleneck %s but no recommendations", b.FullName(), a.Bottleneck)
		}
	}
	if !sawDisagreement {
		t.Error("no analogue tripped the sigma disagreement flag; expected the memory-saturated one to")
	}
	// srad saturates on DRAM bandwidth, not synchronization: its curve shape
	// is not explained by serialization, which is exactly what the
	// disagreement flag exists to say.
	a, err := e.Advise(context.Background(), Request{Cell: Cell{Bench: "srad_rodinia"}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.SigmaAgrees {
		t.Errorf("srad_rodinia: memory-saturated analogue should trip the sigma disagreement flag (fit %.4f vs stack %.4f)",
			a.Amdahl.Sigma, a.SigmaStack)
	}
	if a.Bottleneck != stack.CompMemory {
		t.Errorf("srad_rodinia: bottleneck %q, want %q", a.Bottleneck, stack.CompMemory)
	}
}

// TestAdviseMemoized verifies the sweep rides the fingerprint-keyed cell
// memo: repeating the advice, or asking for it after the cells were already
// simulated, costs no new simulation.
func TestAdviseMemoized(t *testing.T) {
	var runs atomic.Int32
	e := NewEngine(sim.Default(), WithRunHook(func(kind, bench string, threads, cores int) {
		if kind == "cell" {
			runs.Add(1)
		}
	}))
	req := Request{Cell: Cell{Bench: "fft_splash2"}}
	a1, err := e.Advise(context.Background(), req, 8)
	if err != nil {
		t.Fatal(err)
	}
	first := runs.Load()
	if first != 4 { // 1, 2, 4, 8
		t.Fatalf("first advise ran %d cells, want 4", first)
	}
	a2, err := e.Advise(context.Background(), req, 8)
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != first {
		t.Errorf("second advise ran %d new cells, want 0", runs.Load()-first)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Error("repeated advise differs")
	}
	// An inline spec identical to the registry analogue hits the same memo
	// entries (identity is the canonical fingerprint, not the name).
	b, _ := workload.ByName("fft_splash2")
	spec := b.Spec
	if _, err := e.Advise(context.Background(), Request{Cell: Cell{Spec: &spec}}, 8); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != first {
		t.Errorf("inline-spec advise ran %d new cells, want 0", runs.Load()-first)
	}
}
