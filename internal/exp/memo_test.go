package exp

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// countingHook tallies actual simulations per (kind, bench, threads).
type countingHook struct {
	mu   sync.Mutex
	runs map[string]int
}

func newCountingHook() *countingHook {
	return &countingHook{runs: make(map[string]int)}
}

func (h *countingHook) hook(kind, bench string, threads, cores int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.runs[kind+":"+bench] += 1
}

func (h *countingHook) count(key string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.runs[key]
}

// TestCellMemoLimitEviction drives an engine with a one-cell memo through
// an A, B, A access pattern: B must evict A, so the second A re-simulates,
// and both A outcomes must be identical (determinism survives eviction).
func TestCellMemoLimitEviction(t *testing.T) {
	h := newCountingHook()
	e := NewEngine(sim.Default(), WithWorkers(2), WithRunHook(h.hook),
		WithCellMemoLimit(1))
	ctx := context.Background()

	cellA := Cell{Bench: "blackscholes_parsec_small", Threads: 2}
	cellB := Cell{Bench: "swaptions_parsec_small", Threads: 2}

	outA1, err := e.Sweep(ctx, []Cell{cellA})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sweep(ctx, []Cell{cellB}); err != nil {
		t.Fatal(err)
	}
	outA2, err := e.Sweep(ctx, []Cell{cellA})
	if err != nil {
		t.Fatal(err)
	}

	if got := h.count("cell:blackscholes_parsec_small"); got != 2 {
		t.Errorf("cell A simulated %d times, want 2 (evicted between sweeps)", got)
	}
	st := e.Stats()
	if st.CellEvictions < 2 {
		t.Errorf("CellEvictions = %d, want >= 2", st.CellEvictions)
	}
	// Sequential references are never evicted: one per benchmark.
	if got := h.count("seq:blackscholes_parsec_small"); got != 1 {
		t.Errorf("seq reference simulated %d times, want 1", got)
	}
	if !reflect.DeepEqual(outA1[0].Stack, outA2[0].Stack) {
		t.Errorf("re-simulated outcome differs:\n%+v\n%+v", outA1[0].Stack, outA2[0].Stack)
	}
}

// testSpec returns a small custom data-parallel spec under the given name.
// The behavioural fields are fixed, so any two calls produce
// fingerprint-identical workloads regardless of naming.
func testSpec(name string) workload.Spec {
	return workload.Spec{
		Name: name, Kind: workload.KindDataParallel,
		ArrayBytes: 1 << 19, SweepsPerPhase: 1, Phases: 1, InstrPerAccess: 2500,
		StoreFrac: 0.1, Seed: 77,
	}
}

// TestInlineSpecsDedupAcrossNames is the keying acceptance test: two cells
// carrying behaviourally identical specs under different names are ONE
// simulation (identity is the canonical fingerprint, not the name), and
// each outcome still comes back labeled with its own cell's name.
func TestInlineSpecsDedupAcrossNames(t *testing.T) {
	h := newCountingHook()
	e := NewEngine(sim.Default(), WithWorkers(2), WithRunHook(h.hook))
	alpha, beta := testSpec("alpha"), testSpec("beta")
	outs, err := e.Sweep(context.Background(), []Cell{
		{Spec: &alpha, Threads: 2},
		{Spec: &beta, Threads: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.CellRuns != 1 || st.SeqRuns != 1 {
		t.Errorf("identical specs under two names ran %d cell + %d seq simulations, want 1 + 1",
			st.CellRuns, st.SeqRuns)
	}
	if got := outs[0].Bench.FullName(); got != "alpha" {
		t.Errorf("first outcome labeled %q, want alpha", got)
	}
	if got := outs[1].Bench.FullName(); got != "beta" {
		t.Errorf("second outcome labeled %q, want beta (labels must survive dedup)", got)
	}
	if !reflect.DeepEqual(outs[0].Stack, outs[1].Stack) {
		t.Error("fingerprint-equal specs produced different stacks")
	}
}

// TestInlineSpecSharesMemoWithRegistry checks the other collapse the
// fingerprint keying buys: an inline spec identical to a registered
// analogue hits the registry cell's memo entry (and vice versa).
func TestInlineSpecSharesMemoWithRegistry(t *testing.T) {
	h := newCountingHook()
	e := NewEngine(sim.Default(), WithWorkers(2), WithRunHook(h.hook))
	ctx := context.Background()
	if _, err := e.Sweep(ctx, []Cell{{Bench: "blackscholes_parsec_small", Threads: 2}}); err != nil {
		t.Fatal(err)
	}
	b, _ := workload.ByName("blackscholes_parsec_small")
	spec := b.Spec
	spec.Name, spec.Suite = "my-blackscholes", "" // renaming must not change identity
	outs, err := e.Sweep(ctx, []Cell{{Spec: &spec, Threads: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.CellRuns != 1 {
		t.Errorf("inline twin of a registry cell re-simulated: %+v", st)
	}
	if got := outs[0].Bench.FullName(); got != "my-blackscholes" {
		t.Errorf("outcome labeled %q, want my-blackscholes", got)
	}
}

// TestSpecTwoConfigsSimulateTwice pins the other half of the key: the same
// spec under two machine configurations is two distinct simulations.
func TestSpecTwoConfigsSimulateTwice(t *testing.T) {
	h := newCountingHook()
	e := NewEngine(sim.Default(), WithWorkers(2), WithRunHook(h.hook))
	ctx := context.Background()
	spec := testSpec("cfgsweep")
	cells := []Cell{{Spec: &spec, Threads: 2}}
	if _, err := e.Sweep(ctx, cells); err != nil {
		t.Fatal(err)
	}
	cfg := sim.Default()
	cfg.Quantum = 200
	if _, err := e.SweepConfig(ctx, cfg, cells); err != nil {
		t.Fatal(err)
	}
	if got := h.count("cell:cfgsweep"); got != 2 {
		t.Errorf("same spec under two configs simulated %d times, want 2", got)
	}
	if got := h.count("seq:cfgsweep"); got != 2 {
		t.Errorf("sequential reference under two configs simulated %d times, want 2", got)
	}
	// Re-requesting under either config is now a pure memo hit.
	before := e.Stats()
	if _, err := e.SweepConfig(ctx, cfg, cells); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.CellRuns != before.CellRuns {
		t.Errorf("repeat under explicit config re-simulated: %+v", st)
	}
}

// TestInlineSpecInvalid fails fast with the validation error, before any
// simulation is spent.
func TestInlineSpecInvalid(t *testing.T) {
	e := NewEngine(sim.Default())
	bad := workload.Spec{Name: "broken", Kind: workload.KindDataParallel}
	_, err := e.Sweep(context.Background(), []Cell{{Spec: &bad, Threads: 2}})
	if err == nil {
		t.Fatal("invalid inline spec accepted")
	}
	if st := e.Stats(); st.CellRuns != 0 || st.SeqRuns != 0 {
		t.Errorf("simulations ran despite invalid spec: %+v", st)
	}
}

// TestCellMemoUnboundedByDefault checks the default engine keeps every
// outcome: repeating a sweep costs zero simulations.
func TestCellMemoUnboundedByDefault(t *testing.T) {
	h := newCountingHook()
	e := NewEngine(sim.Default(), WithWorkers(2), WithRunHook(h.hook))
	ctx := context.Background()
	cells := []Cell{
		{Bench: "blackscholes_parsec_small", Threads: 2},
		{Bench: "swaptions_parsec_small", Threads: 2},
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Sweep(ctx, cells); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.count("cell:blackscholes_parsec_small"); got != 1 {
		t.Errorf("cell simulated %d times, want 1", got)
	}
	if st := e.Stats(); st.CellEvictions != 0 {
		t.Errorf("CellEvictions = %d, want 0", st.CellEvictions)
	}
}
