package exp

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim"
)

// countingHook tallies actual simulations per (kind, bench, threads).
type countingHook struct {
	mu   sync.Mutex
	runs map[string]int
}

func newCountingHook() *countingHook {
	return &countingHook{runs: make(map[string]int)}
}

func (h *countingHook) hook(kind, bench string, threads, cores int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.runs[kind+":"+bench] += 1
}

func (h *countingHook) count(key string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.runs[key]
}

// TestCellMemoLimitEviction drives an engine with a one-cell memo through
// an A, B, A access pattern: B must evict A, so the second A re-simulates,
// and both A outcomes must be identical (determinism survives eviction).
func TestCellMemoLimitEviction(t *testing.T) {
	h := newCountingHook()
	e := NewEngine(sim.Default(), WithWorkers(2), WithRunHook(h.hook),
		WithCellMemoLimit(1))
	ctx := context.Background()

	cellA := Cell{Bench: "blackscholes_parsec_small", Threads: 2}
	cellB := Cell{Bench: "swaptions_parsec_small", Threads: 2}

	outA1, err := e.Sweep(ctx, []Cell{cellA})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sweep(ctx, []Cell{cellB}); err != nil {
		t.Fatal(err)
	}
	outA2, err := e.Sweep(ctx, []Cell{cellA})
	if err != nil {
		t.Fatal(err)
	}

	if got := h.count("cell:blackscholes_parsec_small"); got != 2 {
		t.Errorf("cell A simulated %d times, want 2 (evicted between sweeps)", got)
	}
	st := e.Stats()
	if st.CellEvictions < 2 {
		t.Errorf("CellEvictions = %d, want >= 2", st.CellEvictions)
	}
	// Sequential references are never evicted: one per benchmark.
	if got := h.count("seq:blackscholes_parsec_small"); got != 1 {
		t.Errorf("seq reference simulated %d times, want 1", got)
	}
	if !reflect.DeepEqual(outA1[0].Stack, outA2[0].Stack) {
		t.Errorf("re-simulated outcome differs:\n%+v\n%+v", outA1[0].Stack, outA2[0].Stack)
	}
}

// TestCellMemoUnboundedByDefault checks the default engine keeps every
// outcome: repeating a sweep costs zero simulations.
func TestCellMemoUnboundedByDefault(t *testing.T) {
	h := newCountingHook()
	e := NewEngine(sim.Default(), WithWorkers(2), WithRunHook(h.hook))
	ctx := context.Background()
	cells := []Cell{
		{Bench: "blackscholes_parsec_small", Threads: 2},
		{Bench: "swaptions_parsec_small", Threads: 2},
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Sweep(ctx, cells); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.count("cell:blackscholes_parsec_small"); got != 1 {
		t.Errorf("cell simulated %d times, want 1", got)
	}
	if st := e.Stats(); st.CellEvictions != 0 {
		t.Errorf("CellEvictions = %d, want 0", st.CellEvictions)
	}
}
