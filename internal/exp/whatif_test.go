package exp

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// whatIfThreadCounts are the regression grid's thread counts: a mid-scale
// and a full-machine point, matching the paper's 4- and 16-thread stacks.
var whatIfThreadCounts = []int{4, 16}

// TestWhatIfPredictionErrorRegression is the falsifiability regression:
// every catalog intervention, on every registry analogue, at 4 and 16
// threads, must predict the re-simulated speedup within its documented
// bound (whatif.ErrorBounds, Formula (6) normalization). A prediction
// drifting past its bound means either the estimator or the mutation
// changed meaning — both are findings, not flakes: the simulator and the
// estimator are fully deterministic.
func TestWhatIfPredictionErrorRegression(t *testing.T) {
	e := NewEngine(sim.Default(), WithWorkers(8))
	ctx := context.Background()

	// worst tracks the observed per-intervention maximum |error| so the
	// failure message (and -v output) documents the real margin to the bound.
	worst := make(map[string]float64)
	worstAt := make(map[string]string)
	checked := 0
	for _, b := range workload.All() {
		name := b.FullName()
		for _, n := range whatIfThreadCounts {
			rep, err := e.WhatIf(ctx, Request{Cell: Cell{Bench: name, Threads: n}}, nil)
			if err != nil {
				t.Fatalf("%s x%d: %v", name, n, err)
			}
			for _, p := range rep.Predictions {
				bound, ok := whatif.ErrorBounds[p.Intervention]
				if !ok {
					t.Fatalf("%s x%d: intervention %q has no documented error bound", name, n, p.Intervention)
				}
				if ae := math.Abs(p.Error); ae > bound {
					t.Errorf("%s x%d %s: |error| = %.4f exceeds documented bound %.2f (predicted %.2f, re-simulated %.2f)",
						name, n, p.Intervention, ae, bound, p.PredictedSpeedup, p.ActualSpeedup)
				} else if ae > worst[p.Intervention] {
					worst[p.Intervention] = ae
					worstAt[p.Intervention] = name
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no predictions checked")
	}
	ids := make([]string, 0, len(worst))
	for id := range worst {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t.Logf("%-18s worst |error| %.4f (%s), bound %.2f", id, worst[id], worstAt[id], whatif.ErrorBounds[id])
	}
}

// TestWhatIfRankingStableAcrossWorkers pins determinism contract #1 for the
// what-if path: the full report — rankings, predictions, bars — is
// byte-identical whether the engine runs serially or wide.
func TestWhatIfRankingStableAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	cells := []Cell{
		{Bench: "cholesky_splash2", Threads: 16},
		{Bench: "ferret_parsec_medium", Threads: 8},
		{Bench: "water-nsquared_splash2", Threads: 4},
	}
	for _, cell := range cells {
		serial := NewEngine(sim.Default(), WithWorkers(1))
		wide := NewEngine(sim.Default(), WithWorkers(8))
		a, err := serial.WhatIf(ctx, Request{Cell: cell}, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := wide.WhatIf(ctx, Request{Cell: cell}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s x%d: report differs between 1 and 8 workers:\n%+v\n%+v",
				cell.Bench, cell.Threads, a, b)
		}
	}
}

// TestWhatIfRepeatZeroSims is the memo acceptance test from the issue: a
// repeated what-if — and a what-if after a sweep that already simulated the
// baseline — performs zero additional simulations.
func TestWhatIfRepeatZeroSims(t *testing.T) {
	e := NewEngine(sim.Default(), WithWorkers(4))
	ctx := context.Background()
	req := Request{Cell: Cell{Bench: "cholesky_splash2", Threads: 8}}

	first, err := e.WhatIf(ctx, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	if before.CellRuns == 0 {
		t.Fatal("first what-if simulated nothing")
	}
	second, err := e.WhatIf(ctx, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.CellRuns != before.CellRuns || after.SeqRuns != before.SeqRuns {
		t.Errorf("repeated what-if re-simulated: before %+v, after %+v", before, after)
	}
	if after.CellHits <= before.CellHits {
		t.Errorf("repeated what-if recorded no memo hits: before %+v, after %+v", before, after)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("repeated what-if returned a different report")
	}
}

// TestWhatIfAfterBaselineAddsOnlyMutations pins the exact cell arithmetic:
// when the baseline cell is already memoized, a full-catalog what-if adds
// exactly one simulation per applicable mutation and nothing else.
func TestWhatIfAfterBaselineAddsOnlyMutations(t *testing.T) {
	e := NewEngine(sim.Default(), WithWorkers(4))
	ctx := context.Background()
	req := Request{Cell: Cell{Bench: "cholesky_splash2", Threads: 8}}
	if _, err := e.Do(ctx, []Request{req}); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	rep, err := e.WhatIf(ctx, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	want := len(rep.Predictions)
	if got := after.CellRuns - before.CellRuns; got != want {
		t.Errorf("what-if after baseline added %d cell runs, want %d (one per applicable mutation)", got, want)
	}
}

// TestWhatIfMinThreads rejects cells below MinWhatIfThreads before any
// simulation.
func TestWhatIfMinThreads(t *testing.T) {
	e := NewEngine(sim.Default())
	_, err := e.WhatIf(context.Background(), Request{Cell: Cell{Bench: "cholesky_splash2", Threads: 1}}, nil)
	if err == nil {
		t.Fatal("what-if accepted a single-threaded cell")
	}
	if !strings.Contains(err.Error(), "at least 2 threads") {
		t.Errorf("error %q does not state the thread floor", err)
	}
	if st := e.Stats(); st.CellRuns != 0 {
		t.Errorf("simulations ran despite rejection: %+v", st)
	}
}

// TestWhatIfUnknownIntervention surfaces the typed catalog error with its
// suggestion before any simulation.
func TestWhatIfUnknownIntervention(t *testing.T) {
	e := NewEngine(sim.Default())
	_, err := e.WhatIf(context.Background(),
		Request{Cell: Cell{Bench: "cholesky_splash2", Threads: 8}}, []string{"double_lcc"})
	if err == nil {
		t.Fatal("unknown intervention accepted")
	}
	var ivErr *whatif.UnknownInterventionError
	if !errors.As(err, &ivErr) {
		t.Fatalf("error %T is not *whatif.UnknownInterventionError", err)
	}
	if ivErr.Suggestion != whatif.DoubleLLC {
		t.Errorf("suggestion = %q, want %q", ivErr.Suggestion, whatif.DoubleLLC)
	}
	if st := e.Stats(); st.CellRuns != 0 {
		t.Errorf("simulations ran despite rejection: %+v", st)
	}
}
