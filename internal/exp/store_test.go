package exp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// storeTestKey builds a distinct cell Key for tests.
func storeTestKey(i int) Key {
	k := Key{Kind: KindCell, Config: sim.Default(), Threads: 2, Cores: 2}
	k.Fingerprint[0] = byte(i)
	k.Fingerprint[1] = byte(i >> 8)
	return k
}

// TestMemStoreSingleflight races many acquirers of one key: exactly one
// may claim, everyone else waits for it and reads the completed value.
func TestMemStoreSingleflight(t *testing.T) {
	s := NewMemStore(0)
	k := storeTestKey(1)
	const goroutines = 32
	var claims, runs atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := storeDo(context.Background(), s, k, func() {},
				func() (int, error) {
					claims.Add(1)
					runs.Add(1)
					return 42, nil
				})
			if err != nil || v != 42 {
				t.Errorf("storeDo = %v, %v, want 42, nil", v, err)
			}
		}()
	}
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("run executed %d times, want exactly 1", runs.Load())
	}
	if got := s.Occupancy().Entries; got != 1 {
		t.Fatalf("occupancy %d entries, want 1", got)
	}
}

// TestMemStoreClaimantSurvivesEviction pins the retention contract the
// satellite asks for: a claimant still simulating while eviction pressure
// churns the rest of the store must neither deadlock its waiters nor be
// double-simulated. The store is bounded to one entry, a slow claim on key
// A is held open while completed keys B.. push the LRU past its limit, and
// concurrent waiters on A must all resolve from A's single execution.
func TestMemStoreClaimantSurvivesEviction(t *testing.T) {
	s := NewMemStore(1)
	keyA := storeTestKey(1)

	acq := s.Acquire(keyA)
	if !acq.Claimed {
		t.Fatalf("first Acquire not Claimed: %+v", acq)
	}

	// Waiters pile onto the in-flight claim.
	const waiters = 16
	var runsA atomic.Int64
	results := make(chan int, waiters)
	var wg sync.WaitGroup
	for g := 0; g < waiters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := storeDo(context.Background(), s, keyA, func() {},
				func() (int, error) {
					runsA.Add(1)
					return 7, nil
				})
			if err != nil {
				t.Errorf("waiter: %v", err)
				return
			}
			results <- v
		}()
	}

	// Meanwhile, other keys complete and are touched, evicting each other
	// under the one-entry bound. None of this may drop A's in-flight claim.
	for i := 2; i < 34; i++ {
		k := storeTestKey(i)
		if a := s.Acquire(k); a.Claimed {
			s.Complete(k, i, nil, true)
		}
		s.Touch(k)
	}

	// The claimant finishes; its waiters must all see the value.
	s.Complete(keyA, 7, nil, true)
	s.Touch(keyA)
	wg.Wait()
	close(results)
	n := 0
	for v := range results {
		if v != 7 {
			t.Fatalf("waiter read %d, want 7", v)
		}
		n++
	}
	if n != waiters {
		t.Fatalf("%d waiters resolved, want %d", n, waiters)
	}
	if runsA.Load() != 0 {
		t.Fatalf("key A re-simulated %d times while claimed", runsA.Load())
	}
	if occ := s.Occupancy(); occ.Evictions == 0 {
		t.Fatalf("no evictions recorded under churn: %+v", occ)
	}
}

// TestMemStoreConcurrentClaimsUnderEviction hammers a one-entry store with
// concurrent storeDo calls over a small hot key set — constant claim, wait,
// touch, evict traffic — under the race detector. Every call must resolve
// to the key's deterministic value; re-runs after eviction are expected,
// lost updates and deadlocks are not.
func TestMemStoreConcurrentClaimsUnderEviction(t *testing.T) {
	s := NewMemStore(1)
	const keys = 4
	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % keys
				k := storeTestKey(i)
				v, err := storeDo(context.Background(), s, k, func() {},
					func() (int, error) { return i * 11, nil })
				if err != nil || v != i*11 {
					t.Errorf("key %d resolved to %v, %v", i, v, err)
					return
				}
				s.Touch(k)
			}
		}(g)
	}
	wg.Wait()
	occ := s.Occupancy()
	if occ.Entries > 2 { // limit 1, plus at most one in-flight claim
		t.Fatalf("store grew past its bound: %+v", occ)
	}
}

// TestMemStoreAbandonedClaimRetries covers the cancellation path: a claim
// completed with retain=false leaves no entry, waiters re-acquire, and the
// next caller takes over the claim and executes.
func TestMemStoreAbandonedClaimRetries(t *testing.T) {
	s := NewMemStore(0)
	k := storeTestKey(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := storeDo(ctx, s, k, func() {},
		func() (int, error) { return 0, ctx.Err() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled claim: err = %v", err)
	}
	if got := s.Occupancy().Entries; got != 0 {
		t.Fatalf("abandoned claim retained %d entries", got)
	}
	runs := 0
	v, err := storeDo(context.Background(), s, k, func() {},
		func() (int, error) { runs++; return 9, nil })
	if err != nil || v != 9 || runs != 1 {
		t.Fatalf("retry after abandonment: v=%v err=%v runs=%d", v, err, runs)
	}
}

// TestMemStoreMemoizesErrors pins that deterministic failures are retained
// like values: the second caller hits the stored error without re-running.
func TestMemStoreMemoizesErrors(t *testing.T) {
	s := NewMemStore(0)
	k := storeTestKey(1)
	boom := errors.New("deterministic failure")
	runs := 0
	for i := 0; i < 2; i++ {
		_, err := storeDo(context.Background(), s, k, func() {},
			func() (int, error) { runs++; return 0, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want %v", i, err, boom)
		}
	}
	if runs != 1 {
		t.Fatalf("erroring key ran %d times, want 1 (errors are memoized)", runs)
	}
}

// countingStore wraps a CacheStore to observe engine traffic — the shape a
// shared fleet store would take.
type countingStore struct {
	CacheStore
	acquires atomic.Int64
}

func (s *countingStore) Acquire(k Key) Acquisition {
	s.acquires.Add(1)
	return s.CacheStore.Acquire(k)
}

// TestWithStoresPluggable proves the engine runs every memo lookup through
// a plugged-in store: a counting wrapper sees the cell traffic, and results
// are identical to the default store's.
func TestWithStoresPluggable(t *testing.T) {
	cs := &countingStore{CacheStore: NewMemStore(0)}
	e := NewEngine(sim.Default(), WithWorkers(2), WithStores(Stores{Cells: cs}))
	ref := NewEngine(sim.Default(), WithWorkers(2))
	ctx := context.Background()

	cells := []Cell{{Bench: "blackscholes_parsec_small", Threads: 2}}
	got, err := e.Sweep(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Sweep(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Tp != want[0].Tp || got[0].Ts != want[0].Ts {
		t.Fatalf("plugged store changed results: %+v vs %+v", got[0], want[0])
	}
	if cs.acquires.Load() == 0 {
		t.Fatal("plugged cell store saw no traffic")
	}
	// Repeat: pure store hit, no new simulation.
	st0 := e.Stats()
	if _, err := e.Sweep(ctx, cells); err != nil {
		t.Fatal(err)
	}
	st1 := e.Stats()
	if st1.CellRuns != st0.CellRuns || st1.CellHits != st0.CellHits+1 {
		t.Fatalf("repeat through plugged store: runs %d->%d hits %d->%d",
			st0.CellRuns, st1.CellRuns, st0.CellHits, st1.CellHits)
	}
}

// TestStatsOccupancy pins the cache-pressure surface: entries and the
// configured limit are visible next to the existing churn counters.
func TestStatsOccupancy(t *testing.T) {
	e := NewEngine(sim.Default(), WithWorkers(2), WithCellMemoLimit(7))
	if _, err := e.Sweep(context.Background(), []Cell{{Bench: "blackscholes_parsec_small", Threads: 2}}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.CellMemoEntries != 1 || st.CellMemoLimit != 7 {
		t.Fatalf("occupancy entries=%d limit=%d, want 1 and 7", st.CellMemoEntries, st.CellMemoLimit)
	}
}

// TestStoreTypeError pins the defense against a misbehaving external store
// answering the wrong type.
func TestStoreTypeError(t *testing.T) {
	s := NewMemStore(0)
	k := storeTestKey(1)
	if a := s.Acquire(k); !a.Claimed {
		t.Fatal("expected claim")
	}
	s.Complete(k, "not an int", nil, true)
	_, err := storeDo(context.Background(), s, k, func() {},
		func() (int, error) { return 0, nil })
	var te *StoreTypeError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *StoreTypeError", err)
	}
	if te.Error() == "" || fmt.Sprint(te.Key) == "" {
		t.Fatal("empty error rendering")
	}
}
