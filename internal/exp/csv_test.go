package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stack"
)

func TestWriteCurvesCSV(t *testing.T) {
	var sb strings.Builder
	curves := []SpeedupCurve{{Benchmark: "b", Points: []CurvePoint{{1, 1}, {2, 1.9}}}}
	if err := WriteCurvesCSV(&sb, curves); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "benchmark,threads,speedup\n") {
		t.Fatalf("header missing: %q", out)
	}
	if !strings.Contains(out, "b,2,1.9000") {
		t.Fatalf("row missing: %q", out)
	}
}

func TestWriteFigure4CSV(t *testing.T) {
	var sb strings.Builder
	rows := []Figure4Row{{Benchmark: "x", Threads: 8, Actual: 5.5, Estimated: 5.75}}
	if err := WriteFigure4CSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x,8,5.5000,5.7500") {
		t.Fatalf("row missing: %q", sb.String())
	}
}

func TestWriteStacksCSV(t *testing.T) {
	var sb strings.Builder
	bars := []stack.Bar{{Label: "l", Stack: core.Stack{
		N: 4, Tp: 1000,
		Components:    core.Components{Yield: 500},
		ActualSpeedup: 3.2,
	}}}
	if err := WriteStacksCSV(&sb, bars); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "label,threads,estimated,actual") {
		t.Fatalf("header missing: %q", out)
	}
	if !strings.Contains(out, "0.5000") { // yield in speedup units
		t.Fatalf("yield column missing: %q", out)
	}
}

func TestWriteInterferenceCSV(t *testing.T) {
	var sb strings.Builder
	rows := []InterferenceRow{{Label: "2MB", Negative: 1.5, Positive: 0.9, Net: 0.6}}
	if err := WriteInterferenceCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2MB,1.5000,0.9000,0.6000") {
		t.Fatalf("row missing: %q", sb.String())
	}
}

func TestWriteTreeCSV(t *testing.T) {
	var sb strings.Builder
	rows := []TreeRow{{
		Class: stack.ClassPoor, Components: []string{"yielding"},
		Benchmark: "ferret", Suite: "parsec_small", Speedup: 2.98, PaperSpeedup: 2.94,
	}}
	if err := WriteTreeCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "poor,yielding,,,ferret,parsec_small,2.9800,2.9400") {
		t.Fatalf("row missing: %q", out)
	}
}

func TestAblationFormatters(t *testing.T) {
	s := FormatSampling([]SamplingRow{{SampleShift: 5, ATDBytes: 3328, MeanAbsErrPct: 5.4}})
	if !strings.Contains(s, "3328") {
		t.Fatalf("sampling format: %q", s)
	}
	th := FormatThreshold([]ThresholdRow{{Threshold: 16, MeanAbsErrPct: 5.4, SpinShare: 3.6}})
	if !strings.Contains(th, "3.60") {
		t.Fatalf("threshold format: %q", th)
	}
	q := FormatQuantum([]QuantumRow{{Quantum: 100, Speedup16: 5.05, MeanAbsErrPct: 5.4}})
	if !strings.Contains(q, "5.05") {
		t.Fatalf("quantum format: %q", q)
	}
}
