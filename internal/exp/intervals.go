package exp

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// Time-resolved measurement: MeasureIntervals runs a cell with the
// simulator's interval accounting enabled and returns a stack.TimeSeries
// next to the usual aggregate Outcome. It composes with everything the
// engine already memoizes — the sequential reference and the aggregate
// outcome come from the fingerprint-keyed memo (sizing the snapshot period
// needs the run's total op count, which the aggregate provides), and the
// interval run itself is memoized under the same key extended by the
// interval count, with the same singleflight and LRU discipline as cells.

// MaxIntervals bounds the interval count of a time-resolved measurement.
// Each interval snapshot copies the per-thread counters, so the bound keeps
// one request's snapshot memory small (≤ a few MB at 64 threads).
const MaxIntervals = 4096

// IntervalOutcome couples a cell's aggregate Outcome with its time-resolved
// decomposition. Result is the interval-enabled run with the raw snapshots
// dropped (they are folded into Series, and memoizing them twice would
// double every cache entry); by the determinism contract it is identical
// to the aggregate run, which runIntervals verifies.
type IntervalOutcome struct {
	Outcome
	// Series is the interval-resolved speedup stack; its interval
	// components sum exactly to Series.Aggregate.
	Series stack.TimeSeries
}

// intervalKey extends a cell's identity with the requested interval count:
// the same cell at two granularities is two memo entries (each snapshot set
// is specific to its period), but both share the one memoized aggregate.
type intervalKey struct {
	cellKey
	count int
}

// MeasureIntervals measures one cell time-resolved: the run is divided into
// count equal slices of its committed trace operations and each slice gets
// its own component breakdown. A nil req.Config means the engine's base
// machine, like Do. The result is memoized and deduplicated exactly like a
// cell, so repeated requests — any alias or inline spec with the same
// fingerprint — cost one interval-enabled simulation.
func (e *Engine) MeasureIntervals(ctx context.Context, req Request, count int) (IntervalOutcome, error) {
	if count < 1 || count > MaxIntervals {
		return IntervalOutcome{}, fmt.Errorf("exp: interval count must be in [1,%d], got %d", MaxIntervals, count)
	}
	cell := req.Cell.normalize()
	if cell.Threads <= 0 {
		return IntervalOutcome{}, fmt.Errorf("exp: non-positive thread count %d", cell.Threads)
	}
	b, err := resolveCell(req.Cell)
	if err != nil {
		return IntervalOutcome{}, err
	}
	cfg := e.base
	if req.Config != nil {
		cfg = *req.Config
	}
	ik := intervalKey{
		cellKey: cellKey{cfg: cfg, fp: b.Spec.Fingerprint(), threads: cell.Threads, cores: cell.Cores},
		count:   count,
	}
	sk := ik.storeKey()
	out, err := storeDo(ctx, e.intervals, sk,
		func() { e.addHit(&e.stats.IntervalHits) },
		func() (IntervalOutcome, error) { return e.runIntervals(ctx, ik, b) })
	e.intervals.Touch(sk)
	if err != nil {
		return IntervalOutcome{}, err
	}
	// Like Do: identity is the fingerprint, so a memoized outcome may carry
	// the naming of whichever alias measured it first.
	out.Bench = b
	out.Series.Label = b.FullName()
	return out, nil
}

// runIntervals executes the interval-enabled simulation for one unique
// (cell, count) after securing the memoized aggregate outcome (which also
// secures the sequential reference and supplies the total op count the
// snapshot period is derived from).
func (e *Engine) runIntervals(ctx context.Context, ik intervalKey, b workload.Benchmark) (IntervalOutcome, error) {
	agg, err := e.cell(ctx, ik.cellKey, b)
	if err != nil {
		return IntervalOutcome{}, err
	}
	// ceil(TotalOps/count) boundaries yield at most count intervals; the
	// completion snapshot merges into the last boundary when they coincide.
	period := (agg.Result.TotalOps + uint64(ik.count) - 1) / uint64(ik.count)
	if period == 0 {
		period = 1
	}

	release, err := e.acquire(ctx)
	if err != nil {
		return IntervalOutcome{}, err
	}
	defer release()
	if err := ctx.Err(); err != nil {
		return IntervalOutcome{}, err
	}
	if e.hook != nil {
		e.hook("interval", b.FullName(), ik.threads, ik.cores)
	}
	e.mu.Lock()
	e.stats.IntervalRuns++
	e.stats.InFlight++
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.stats.InFlight--
		e.mu.Unlock()
	}()

	cfg := ik.cfg.WithCores(ik.cores)
	cfg.Policy = b.Spec.TunePolicy(cfg.Policy)
	progs, err := b.Spec.Parallel(ik.threads)
	if err != nil {
		return IntervalOutcome{}, err
	}
	opts := append(b.Spec.PipelineOptions(ik.threads), sim.WithIntervals(period))
	res, err := sim.Run(cfg, progs, opts...)
	if err != nil {
		return IntervalOutcome{}, fmt.Errorf("%s x%d intervals: %w", b.FullName(), ik.threads, err)
	}
	e.mu.Lock()
	e.stats.SimulatedOps += res.TotalOps
	e.mu.Unlock()
	// Interval accounting must be unobservable in the aggregate — snapshots
	// only read counters. A divergence here is an engine bug, not a
	// workload property, so fail loudly instead of returning skewed data.
	if res.Tp != agg.Tp || res.TotalOps != agg.Result.TotalOps {
		return IntervalOutcome{}, fmt.Errorf(
			"exp: interval accounting perturbed %s x%d: Tp %d vs %d, ops %d vs %d",
			b.FullName(), ik.threads, res.Tp, agg.Tp, res.TotalOps, agg.Result.TotalOps)
	}
	series, err := stack.NewTimeSeries(b.FullName(), res.Stack(agg.Ts),
		res.PerThread, res.Intervals, res.IntervalEvery)
	if err != nil {
		return IntervalOutcome{}, err
	}
	// The raw snapshots are folded into the series; memoizing them again on
	// the Result would double every cache entry's snapshot memory.
	res.Intervals = nil
	out := IntervalOutcome{Outcome: agg, Series: series}
	out.Result = res
	return out, nil
}
