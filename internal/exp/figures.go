package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/stack"
	"repro/internal/workload"
)

// ThreadCounts is the paper's sweep: 1 is the sequential reference point.
var ThreadCounts = []int{2, 4, 8, 16}

// Figure1Benchmarks are the speedup-curve exemplars of Figures 1 and 5.
var Figure1Benchmarks = []string{
	"blackscholes_parsec_medium",
	"facesim_parsec_medium",
	"cholesky_splash2",
}

// exemplarCells declares the Figure 1/5 grid: the three exemplars at every
// thread count. Figures 1 and 5 share these cells, so an engine that runs
// both simulates them once.
func exemplarCells() []Cell {
	cells := make([]Cell, 0, len(Figure1Benchmarks)*len(ThreadCounts))
	for _, name := range Figure1Benchmarks {
		for _, n := range ThreadCounts {
			cells = append(cells, Cell{Bench: name, Threads: n})
		}
	}
	return cells
}

// allBenchCells declares every registered benchmark at the given thread
// counts, thread-count-major (the validation table's iteration order).
func allBenchCells(threadCounts ...int) []Cell {
	benches := workload.All()
	cells := make([]Cell, 0, len(benches)*len(threadCounts))
	for _, n := range threadCounts {
		for _, b := range benches {
			cells = append(cells, Cell{Bench: b.FullName(), Threads: n})
		}
	}
	return cells
}

// CurvePoint is one (threads, speedup) sample.
type CurvePoint struct {
	Threads int
	Speedup float64
}

// SpeedupCurve is one benchmark's scaling curve (Figure 1).
type SpeedupCurve struct {
	Benchmark string
	Points    []CurvePoint
}

// Figure1 reproduces the speedup curves of Figure 1: speedup as a function
// of the number of threads for blackscholes, facesim and cholesky.
func Figure1(ctx context.Context, e *Engine) ([]SpeedupCurve, error) {
	outs, err := e.Sweep(ctx, exemplarCells())
	if err != nil {
		return nil, err
	}
	curves := make([]SpeedupCurve, 0, len(Figure1Benchmarks))
	i := 0
	for _, name := range Figure1Benchmarks {
		c := SpeedupCurve{Benchmark: name, Points: []CurvePoint{{Threads: 1, Speedup: 1}}}
		for _, n := range ThreadCounts {
			c.Points = append(c.Points, CurvePoint{Threads: n, Speedup: outs[i].Actual})
			i++
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// FormatCurves renders speedup curves as an aligned text table.
func FormatCurves(curves []SpeedupCurve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s", "benchmark \\ threads")
	if len(curves) > 0 {
		for _, p := range curves[0].Points {
			fmt.Fprintf(&b, "%8d", p.Threads)
		}
	}
	b.WriteByte('\n')
	for _, c := range curves {
		fmt.Fprintf(&b, "%-30s", c.Benchmark)
		for _, p := range c.Points {
			fmt.Fprintf(&b, "%8.2f", p.Speedup)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SweepAll runs every registered benchmark at the given thread count on the
// engine's worker pool and returns outcomes in registry order.
func SweepAll(ctx context.Context, e *Engine, threads int) ([]Outcome, error) {
	return e.Sweep(ctx, allBenchCells(threads))
}

// ValidationRow is one line of the Section 6 validation table.
type ValidationRow struct {
	Threads int
	// MeanAbsErrPct is the average of |Ŝ−S|/N over all benchmarks, in %.
	MeanAbsErrPct float64
	// MaxAbsErrPct is the worst benchmark's error, in %.
	MaxAbsErrPct float64
	// Worst is the benchmark with the largest absolute error.
	Worst string
}

// Validation reproduces the Section 6 accuracy numbers: average absolute
// speedup-estimation error per thread count (the paper reports 3.0, 3.4,
// 2.8 and 5.1 % for 2, 4, 8 and 16 threads). The full grid is declared as
// one sweep, so it shares cells with Figures 4 and 6.
func Validation(ctx context.Context, e *Engine) ([]ValidationRow, error) {
	outs, err := e.Sweep(ctx, allBenchCells(ThreadCounts...))
	if err != nil {
		return nil, err
	}
	perCount := len(outs) / len(ThreadCounts)
	rows := make([]ValidationRow, 0, len(ThreadCounts))
	for i, n := range ThreadCounts {
		row := ValidationRow{Threads: n}
		for _, o := range outs[i*perCount : (i+1)*perCount] {
			e := o.Error()
			if e < 0 {
				e = -e
			}
			row.MeanAbsErrPct += 100 * e
			if 100*e > row.MaxAbsErrPct {
				row.MaxAbsErrPct = 100 * e
				row.Worst = o.Bench.FullName()
			}
		}
		row.MeanAbsErrPct /= float64(perCount)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatValidation renders the validation table next to the paper's values.
func FormatValidation(rows []ValidationRow) string {
	paper := map[int]float64{2: 3.0, 4: 3.4, 8: 2.8, 16: 5.1}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %12s  %s\n",
		"threads", "mean|err|%", "paper %", "max|err|%", "worst benchmark")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %12.1f %12.1f %12.1f  %s\n",
			r.Threads, r.MeanAbsErrPct, paper[r.Threads], r.MaxAbsErrPct, r.Worst)
	}
	return b.String()
}

// Figure4Row is one benchmark's actual-vs-estimated pair at one thread count.
type Figure4Row struct {
	Benchmark string
	Threads   int
	Actual    float64
	Estimated float64
}

// Figure4 reproduces the actual-versus-estimated speedup comparison for all
// benchmarks at 2–16 threads. Its grid is identical to Validation's, so on
// a shared engine the second of the two is free.
func Figure4(ctx context.Context, e *Engine) ([]Figure4Row, error) {
	outs, err := e.Sweep(ctx, allBenchCells(ThreadCounts...))
	if err != nil {
		return nil, err
	}
	rows := make([]Figure4Row, 0, len(outs))
	for _, o := range outs {
		rows = append(rows, Figure4Row{
			Benchmark: o.Bench.FullName(),
			Threads:   o.Threads,
			Actual:    o.Actual,
			Estimated: o.Estimated,
		})
	}
	return rows, nil
}

// FormatFigure4 renders the actual/estimated pairs grouped by benchmark.
func FormatFigure4(rows []Figure4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %8s %10s %10s %8s\n",
		"benchmark", "threads", "actual", "estimated", "err%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %8d %10.2f %10.2f %+8.1f\n",
			r.Benchmark, r.Threads, r.Actual, r.Estimated,
			100*(r.Estimated-r.Actual)/float64(r.Threads))
	}
	return b.String()
}

// Figure5 reproduces the speedup stacks of blackscholes, facesim and
// cholesky for 2–16 threads and returns them as renderable bars.
func Figure5(ctx context.Context, e *Engine) ([]stack.Bar, error) {
	outs, err := e.Sweep(ctx, exemplarCells())
	if err != nil {
		return nil, err
	}
	bars := make([]stack.Bar, 0, len(outs))
	for _, out := range outs {
		bars = append(bars, stack.Bar{
			Label: fmt.Sprintf("%s x%d", out.Bench.Spec.Name, out.Threads),
			Stack: out.Stack,
		})
	}
	return bars, nil
}

// TreeRow is one leaf of the Figure 6 classification tree.
type TreeRow struct {
	Class      stack.ScalingClass
	Components []string // up to 3, largest first
	Benchmark  string
	Suite      string
	Speedup    float64
	// PaperSpeedup and PaperComponents are the published values for
	// side-by-side comparison.
	PaperSpeedup    float64
	PaperComponents []string
}

// Figure6 classifies every benchmark at 16 threads by scaling class and
// dominant components, reproducing the paper's tree.
func Figure6(ctx context.Context, e *Engine) ([]TreeRow, error) {
	outs, err := SweepAll(ctx, e, 16)
	if err != nil {
		return nil, err
	}
	rows := make([]TreeRow, 0, len(outs))
	for _, o := range outs {
		rows = append(rows, TreeRow{
			Class:           stack.Classify(o.Actual),
			Components:      stack.TopComponents(o.Stack, 3),
			Benchmark:       o.Bench.Spec.Name,
			Suite:           o.Bench.Spec.Suite,
			Speedup:         o.Actual,
			PaperSpeedup:    o.Bench.PaperSpeedup16,
			PaperComponents: o.Bench.PaperComponents,
		})
	}
	classOrder := map[stack.ScalingClass]int{
		stack.ClassGood: 0, stack.ClassModerate: 1, stack.ClassPoor: 2,
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if classOrder[rows[i].Class] != classOrder[rows[j].Class] {
			return classOrder[rows[i].Class] < classOrder[rows[j].Class]
		}
		return rows[i].Speedup > rows[j].Speedup
	})
	return rows, nil
}

// FormatFigure6 renders the classification tree as an indented table, read
// like the paper's Figure 6: class, then 1st/2nd/3rd component, then the
// benchmark, suite and speedup.
func FormatFigure6(rows []TreeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-12s %-16s %-15s %8s %8s\n",
		"scaling", "1st comp", "2nd comp", "3rd comp", "benchmark", "suite",
		"speedup", "paper")
	comp := func(c []string, i int) string {
		if i < len(c) {
			return c[i]
		}
		return "-"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-12s %-12s %-12s %-16s %-15s %8.2f %8.2f\n",
			r.Class, comp(r.Components, 0), comp(r.Components, 1),
			comp(r.Components, 2), r.Benchmark, r.Suite, r.Speedup,
			r.PaperSpeedup)
	}
	// Summary observation from Section 7.2: yielding dominance.
	first, second := 0, 0
	for _, r := range rows {
		if len(r.Components) > 0 && r.Components[0] == stack.CompYielding {
			first++
		} else if len(r.Components) > 1 && r.Components[1] == stack.CompYielding {
			second++
		}
	}
	fmt.Fprintf(&b, "\nyielding is the largest component for %d/%d benchmarks "+
		"and second largest for %d (paper: 23/28 and 3)\n",
		first, len(rows), second)
	return b.String()
}

// Figure7Row is one bar of the ferret core-count study.
type Figure7Row struct {
	Cores          int
	ThreadsEqCores float64 // speedup with #threads = #cores
	Threads16      float64 // speedup with 16 software threads
}

// figure7CoreCounts is the core-count axis of the ferret study.
var figure7CoreCounts = []int{2, 4, 8, 16}

// Figure7 reproduces the ferret experiment: speedup on 2–16 cores with
// threads=cores versus a fixed 16 software threads. The paper observes that
// 16 threads outperform thread-per-core counts and that performance
// saturates at 8 cores, dipping slightly at 16 due to scheduling overhead.
func Figure7(ctx context.Context, e *Engine) ([]Figure7Row, error) {
	const bench = "ferret_parsec_small"
	cells := make([]Cell, 0, 2*len(figure7CoreCounts))
	for _, cores := range figure7CoreCounts {
		cells = append(cells,
			Cell{Bench: bench, Threads: cores, Cores: cores},
			Cell{Bench: bench, Threads: 16, Cores: cores})
	}
	outs, err := e.Sweep(ctx, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Figure7Row, 0, len(figure7CoreCounts))
	for i, cores := range figure7CoreCounts {
		rows = append(rows, Figure7Row{
			Cores:          cores,
			ThreadsEqCores: outs[2*i].Actual,
			Threads16:      outs[2*i+1].Actual,
		})
	}
	return rows, nil
}

// FormatFigure7 renders the ferret core sweep.
func FormatFigure7(rows []Figure7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %18s %18s\n", "cores", "threads=cores", "16 threads")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %18.2f %18.2f\n", r.Cores, r.ThreadsEqCores, r.Threads16)
	}
	return b.String()
}

// InterferenceRow decomposes one benchmark's LLC interference (Figure 8/9).
type InterferenceRow struct {
	Label    string
	Negative float64 // negative LLC interference, speedup units
	Positive float64 // positive LLC interference, speedup units
	Net      float64 // negative - positive
}

func interferenceRow(label string, s core.Stack) InterferenceRow {
	tp := float64(s.Tp)
	return InterferenceRow{
		Label:    label,
		Negative: s.Components.NegLLC / tp,
		Positive: s.Components.PosLLC / tp,
		Net:      s.Components.Net() / tp,
	}
}

// Figure8Benchmarks are the benchmarks with non-negligible positive
// interference in the paper's Figure 8 ("canneal large" maps to our
// canneal_parsec_medium analogue).
var Figure8Benchmarks = []string{
	"cholesky_splash2",
	"lu.cont_splash2",
	"canneal_parsec_small",
	"canneal_parsec_medium",
	"bfs_rodinia",
	"lu.ncont_splash2",
	"needle_rodinia",
}

// Figure8 reproduces the negative/positive/net LLC interference components
// at 16 cores for the benchmarks with visible positive sharing. Its cells
// are a subset of the 16-thread validation grid.
func Figure8(ctx context.Context, e *Engine) ([]InterferenceRow, error) {
	cells := make([]Cell, len(Figure8Benchmarks))
	for i, name := range Figure8Benchmarks {
		cells[i] = Cell{Bench: name, Threads: 16}
	}
	outs, err := e.Sweep(ctx, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]InterferenceRow, len(outs))
	for i, out := range outs {
		rows[i] = interferenceRow(Figure8Benchmarks[i], out.Stack)
	}
	return rows, nil
}

// figure9LLCMBs is the LLC-capacity axis of the cholesky sweep.
var figure9LLCMBs = []int64{2, 4, 8, 16}

// Figure9 reproduces the cholesky LLC-size sweep: negative interference
// shrinks as the LLC grows, positive interference stays roughly constant,
// and the net component can turn negative (cache sharing becomes a win).
// Each LLC size is a distinct machine configuration; the engine runs all
// four in one deduplicated batch.
func Figure9(ctx context.Context, e *Engine) ([]InterferenceRow, error) {
	reqs := make([]Request, len(figure9LLCMBs))
	for i, mb := range figure9LLCMBs {
		cfg := e.Config().WithLLCSize(mb << 20)
		reqs[i] = Request{
			Cell:   Cell{Bench: "cholesky_splash2", Threads: 16},
			Config: &cfg,
		}
	}
	outs, err := e.Do(ctx, reqs)
	if err != nil {
		return nil, err
	}
	rows := make([]InterferenceRow, len(outs))
	for i, out := range outs {
		rows[i] = interferenceRow(fmt.Sprintf("%dMB", figure9LLCMBs[i]), out.Stack)
	}
	return rows, nil
}

// FormatInterference renders Figure 8/9 rows.
func FormatInterference(rows []InterferenceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %10s %10s %10s\n", "benchmark", "negative", "positive", "net")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %10.2f %10.2f %+10.2f\n", r.Label, r.Negative, r.Positive, r.Net)
	}
	return b.String()
}

// HardwareCostReport renders the Section 4.7 hardware budget.
func HardwareCostReport() string {
	budget := core.Cost(core.PaperCostParams())
	var b strings.Builder
	fmt.Fprintf(&b, "interference accounting: ATD %d B + ORA %d B + counters %d B = %d B/core (paper: 952 B)\n",
		budget.ATDBytes, budget.ORABytes, budget.CounterBytes, budget.InterferenceBytes())
	fmt.Fprintf(&b, "spin detection load table: %d B/core (paper: 217 B)\n", budget.SpinTableBytes)
	fmt.Fprintf(&b, "total: %d B/core, %.1f KB for a 16-core CMP (paper: ~1.1 KB/core, 18 KB)\n",
		budget.PerCoreBytes(), float64(budget.TotalBytes(16))/1024)
	return b.String()
}
