package exp

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// ValidationCompareRow is one line of the exact-vs-fast accuracy table: the
// Section 6 validation error in both modes plus the direct fast-vs-exact
// speedup delta, per thread count.
type ValidationCompareRow struct {
	Threads int
	// ExactMeanAbsErrPct and FastMeanAbsErrPct are the validation table's
	// mean |Ŝ−S|/N (in %) computed from exact-mode and fast-mode runs.
	ExactMeanAbsErrPct float64
	FastMeanAbsErrPct  float64
	// MeanAbsDeltaPct and MaxAbsDeltaPct are the mean and worst
	// |Ŝ_fast − Ŝ_exact|/N over all benchmarks, in % — the accuracy cost of
	// the fast lane itself, independent of how well either mode matches the
	// actual speedup.
	MeanAbsDeltaPct float64
	MaxAbsDeltaPct  float64
	// Worst is the benchmark with the largest |Ŝ_fast − Ŝ_exact|/N.
	Worst string
}

// ValidationCompare runs the full validation grid (every registered
// analogue at every thread count) in both exact and fast mode on one
// engine and pairs the results. The two grids never alias in the memo —
// Mode is part of the cell key — so each mode's numbers are exactly what
// Validation would report for that mode.
func ValidationCompare(ctx context.Context, e *Engine) ([]ValidationCompareRow, error) {
	cells := allBenchCells(ThreadCounts...)
	exact, err := e.SweepConfig(ctx, e.base.WithMode(sim.ModeExact), cells)
	if err != nil {
		return nil, err
	}
	fast, err := e.SweepConfig(ctx, e.base.WithMode(sim.ModeFast), cells)
	if err != nil {
		return nil, err
	}
	perCount := len(cells) / len(ThreadCounts)
	rows := make([]ValidationCompareRow, 0, len(ThreadCounts))
	for i, n := range ThreadCounts {
		row := ValidationCompareRow{Threads: n}
		for j := i * perCount; j < (i+1)*perCount; j++ {
			ex, fa := exact[j], fast[j]
			row.ExactMeanAbsErrPct += 100 * abs(ex.Error())
			row.FastMeanAbsErrPct += 100 * abs(fa.Error())
			delta := 100 * abs(fa.Estimated-ex.Estimated) / float64(n)
			row.MeanAbsDeltaPct += delta
			if delta > row.MaxAbsDeltaPct {
				row.MaxAbsDeltaPct = delta
				row.Worst = ex.Bench.FullName()
			}
		}
		row.ExactMeanAbsErrPct /= float64(perCount)
		row.FastMeanAbsErrPct /= float64(perCount)
		row.MeanAbsDeltaPct /= float64(perCount)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatValidationCompare renders the validation table with the
// exact-vs-fast delta columns (the `experiments fastcompare` section).
func FormatValidationCompare(rows []ValidationCompareRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %14s %10s %10s  %s\n",
		"threads", "exact mean|e|%", "fast mean|e|%", "mean|Δ|%", "max|Δ|%", "worst benchmark")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %14.1f %14.1f %10.2f %10.2f  %s\n",
			r.Threads, r.ExactMeanAbsErrPct, r.FastMeanAbsErrPct,
			r.MeanAbsDeltaPct, r.MaxAbsDeltaPct, r.Worst)
	}
	return b.String()
}

// FastDeviation is the per-component deviation of one fast-mode outcome
// from its exact-mode counterpart, in speedup units (each mode's component
// cycles divided by its own Tp — the units of sim.FastErrorBounds).
type FastDeviation struct {
	Benchmark     string
	Threads       int
	NegLLC        float64
	PosLLC        float64
	NegMem        float64
	Spin          float64
	Yield         float64
	Imbalance     float64
	Speedup       float64
	ActualSpeedup float64
}

// Exceeds reports the first field exceeding the given bounds, or "" when
// every deviation is within them.
func (d FastDeviation) Exceeds(b sim.FastBounds) string {
	switch {
	case d.NegLLC > b.NegLLC:
		return "NegLLC"
	case d.PosLLC > b.PosLLC:
		return "PosLLC"
	case d.NegMem > b.NegMem:
		return "NegMem"
	case d.Spin > b.Spin:
		return "Spin"
	case d.Yield > b.Yield:
		return "Yield"
	case d.Imbalance > b.Imbalance:
		return "Imbalance"
	case d.Speedup > b.Speedup:
		return "Speedup"
	case d.ActualSpeedup > b.ActualSpeedup:
		return "ActualSpeedup"
	}
	return ""
}

// Deviation pairs an exact and a fast outcome of the same cell into the
// per-component deviation the error-bound regression asserts.
func Deviation(exact, fast Outcome) FastDeviation {
	comp := func(f func(core.Components) float64) float64 {
		return abs(f(fast.Stack.Components)/float64(fast.Tp) -
			f(exact.Stack.Components)/float64(exact.Tp))
	}
	return FastDeviation{
		Benchmark:     exact.Bench.FullName(),
		Threads:       exact.Threads,
		NegLLC:        comp(func(c core.Components) float64 { return c.NegLLC }),
		PosLLC:        comp(func(c core.Components) float64 { return c.PosLLC }),
		NegMem:        comp(func(c core.Components) float64 { return c.NegMem }),
		Spin:          comp(func(c core.Components) float64 { return c.Spin }),
		Yield:         comp(func(c core.Components) float64 { return c.Yield }),
		Imbalance:     comp(func(c core.Components) float64 { return c.Imbalance }),
		Speedup:       abs(fast.Estimated - exact.Estimated),
		ActualSpeedup: abs(fast.Actual - exact.Actual),
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
