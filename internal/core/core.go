// Package core implements the paper's primary contribution: per-thread
// cycle-component accounting and the speedup stack (Sections 2 and 4).
//
// A multi-threaded run of duration Tp produces, per thread i, a set of
// overhead cycle components O_{i,j} (negative LLC interference, negative
// memory interference, spinning, yielding, imbalance) and a positive LLC
// interference component P_i. Estimated single-threaded time follows
// Formula (2):
//
//	T̂s = Σ_i ( Tp − Σ_j O_{i,j} + P_i )
//
// and the estimated speedup, Formula (4), rearranges into the stack:
//
//	Ŝ = N − Σ_i Σ_j O_{i,j}/Tp + Σ_i P_i/Tp
//
// The package holds the raw per-thread counters the accounting hardware
// produces, the software post-processing that turns them into components
// (sampling-factor extrapolation for inter-thread misses, average-miss-
// penalty interpolation for inter-thread hits), the stack type itself, and
// the hardware cost model of Section 4.7.
package core

import "fmt"

// ThreadCounters are the raw per-thread event counts gathered during one
// multi-threaded run. Fields prefixed "Oracle" come from the simulator's
// omniscient view and are used for ground-truth analysis and tests only;
// the estimator never reads them.
type ThreadCounters struct {
	// Instrs is the number of dynamically executed instructions.
	Instrs uint64
	// OverheadInstrs is the subset of Instrs injected by parallelization
	// (ground truth; invisible to the accounting hardware).
	OverheadInstrs uint64
	// FinishTime is the cycle at which the thread completed its work.
	FinishTime uint64

	// LLCAccesses counts L1-miss accesses reaching the shared LLC.
	LLCAccesses uint64
	// LLCLoadMisses counts blocking load misses in the LLC.
	LLCLoadMisses uint64
	// StallLLCLoadMiss is the total cycles the core stalled on LLC load
	// misses; divided by LLCLoadMisses it yields the average miss penalty
	// used for positive-interference interpolation (Section 4.2).
	StallLLCLoadMiss uint64

	// SampledATDAccesses counts accesses that fell into ATD-sampled sets.
	SampledATDAccesses uint64
	// SampledInterThreadMissStall is the stall of sampled LLC misses that
	// hit in the private ATD (negative interference, pre-extrapolation).
	SampledInterThreadMissStall uint64
	// SampledInterThreadHits counts sampled LLC hits that missed the ATD
	// (positive interference, pre-extrapolation and pre-interpolation).
	SampledInterThreadHits uint64

	// MemInterferenceEst is the memory-subsystem interference the hardware
	// charges on blocking misses: bus/bank waits caused by other cores and
	// ORA-flagged row conflicts, scaled by the exposed-stall fraction.
	MemInterferenceEst uint64
	// SampledInterThreadMissMemInterf is the memory interference portion of
	// sampled inter-thread misses. Those misses charge their whole stall to
	// negative LLC interference, so their memory interference must be
	// deducted from the memory component to avoid double counting.
	SampledInterThreadMissMemInterf uint64

	// SpinDetected is the spin time charged by the Tian detector.
	SpinDetected uint64
	// YieldCycles is the OS-recorded descheduled time (blocked beyond the
	// spin grace period, wake latency, and ready-queue waiting).
	YieldCycles uint64

	// Oracle (ground-truth) counterparts. OracleATDAccesses counts the LLC
	// accesses the oracle directory actually observed: in exact mode that is
	// every LLC access, so the oracle's extrapolation factor is exactly 1;
	// in fast mode only the detailed-set subset is walked and the oracle's
	// ATD-derived counters are extrapolated by LLCAccesses/OracleATDAccesses,
	// mirroring the estimator's own sampling-factor machinery.
	OracleATDAccesses              uint64
	OracleInterThreadMissStall     uint64
	OracleInterThreadMissMemInterf uint64
	OracleInterThreadHits          uint64
	OracleMemInterference          uint64
	OracleSpinCycles               uint64
	OracleCoherenceStall           uint64
}

// Components aggregates the speedup-stack cycle components across all
// threads of a run. Values are in cycles; dividing by Tp converts them into
// speedup units.
type Components struct {
	// NegLLC is negative LLC interference: stalls on misses that a private
	// LLC would have avoided.
	NegLLC float64
	// PosLLC is positive LLC interference: avoided misses thanks to lines
	// shared threads brought in.
	PosLLC float64
	// NegMem is negative memory-subsystem interference (bus, bank, row).
	NegMem float64
	// Spin is time spent actively spinning on locks and barriers.
	Spin float64
	// Yield is time spent descheduled while waiting on synchronization.
	Yield float64
	// Imbalance is end-of-parallel-section waiting for the slowest thread.
	Imbalance float64
	// Coherence is the exposed stall of coherence misses. Ground truth
	// only: the estimator leaves it at zero per Section 4.5.
	Coherence float64
	// ParallelOverhead is the cycle cost of parallelization-overhead
	// instructions. Ground truth only: not measurable in hardware per
	// Section 3.5.
	ParallelOverhead float64
}

// OverheadTotal sums the O_{i,j} terms of Formula (4) — everything except
// positive interference.
func (c Components) OverheadTotal() float64 {
	return c.NegLLC + c.NegMem + c.Spin + c.Yield + c.Imbalance +
		c.Coherence + c.ParallelOverhead
}

// Net returns the net LLC interference (negative minus positive), the white
// component of the paper's Figure 5.
func (c Components) Net() float64 { return c.NegLLC - c.PosLLC }

// Stack is one speedup stack: the decomposition of the ideal speedup N into
// the estimated speedup plus its scaling delimiters.
type Stack struct {
	// N is the number of threads (= stack height).
	N int
	// Tp is the multi-threaded execution time in cycles.
	Tp uint64
	// Components holds the aggregated cycle components.
	Components Components
	// ActualSpeedup is Ts/Tp when a single-threaded reference time is
	// known; zero otherwise. It is not part of the estimate.
	ActualSpeedup float64
}

// Estimated returns Ŝ per Formula (4).
func (s Stack) Estimated() float64 {
	return float64(s.N) - s.Components.OverheadTotal()/float64(s.Tp) +
		s.Components.PosLLC/float64(s.Tp)
}

// Base returns the base speedup per Formula (5): N minus all overhead
// components, not counting positive interference.
func (s Stack) Base() float64 {
	return float64(s.N) - s.Components.OverheadTotal()/float64(s.Tp)
}

// ComponentSpeedup converts a cycle-valued component to speedup units.
func (s Stack) ComponentSpeedup(cycles float64) float64 {
	return cycles / float64(s.Tp)
}

// Error returns the validation error of Formula (6): (Ŝ − S)/N. It panics
// when no actual speedup was recorded.
func (s Stack) Error() float64 {
	if s.ActualSpeedup == 0 {
		panic("core: Stack.Error without recorded actual speedup")
	}
	return (s.Estimated() - s.ActualSpeedup) / float64(s.N)
}

// ComponentValue pairs a component name with its magnitude in speedup units.
type ComponentValue struct {
	Name  string
	Value float64
}

// NamedComponents returns the stack's overhead components in speedup units,
// using the paper's naming. Positive interference is not included (it is
// not an overhead term); use ComponentSpeedup(Components.PosLLC) for it.
func (s Stack) NamedComponents() []ComponentValue {
	tp := float64(s.Tp)
	out := []ComponentValue{
		{Name: "net negative LLC interference", Value: s.Components.Net() / tp},
		{Name: "negative memory interference", Value: s.Components.NegMem / tp},
		{Name: "spinning", Value: s.Components.Spin / tp},
		{Name: "yielding", Value: s.Components.Yield / tp},
		{Name: "imbalance", Value: s.Components.Imbalance / tp},
	}
	if s.Components.Coherence > 0 {
		out = append(out, ComponentValue{Name: "cache coherency", Value: s.Components.Coherence / tp})
	}
	if s.Components.ParallelOverhead > 0 {
		out = append(out, ComponentValue{Name: "parallelization overhead", Value: s.Components.ParallelOverhead / tp})
	}
	return out
}

// EstimateComponents performs the software post-processing of Section 4:
// extrapolates sampled ATD events by the run-time sampling factor,
// interpolates positive interference with the average miss penalty, and
// computes the imbalance component from finish times. tp is the duration of
// the parallel section.
func EstimateComponents(tp uint64, threads []ThreadCounters) Components {
	var c Components
	for i := range threads {
		t := &threads[i]
		factor := samplingFactor(t)
		c.NegLLC += float64(t.SampledInterThreadMissStall) * factor
		c.PosLLC += float64(t.SampledInterThreadHits) * factor * avgMissPenalty(t)
		// Memory interference, minus the (extrapolated) share belonging to
		// inter-thread misses whose whole stall already sits in NegLLC.
		memI := float64(t.MemInterferenceEst) -
			float64(t.SampledInterThreadMissMemInterf)*factor
		if memI > 0 {
			c.NegMem += memI
		}
		c.Spin += float64(t.SpinDetected)
		c.Yield += float64(t.YieldCycles)
		if tp > t.FinishTime {
			c.Imbalance += float64(tp - t.FinishTime)
		}
	}
	return clampComponents(c, tp, len(threads))
}

// OracleComponents builds the ground-truth decomposition, including the
// components the hardware cannot see (coherence stall, parallelization
// overhead). instrCyclesPerInstr converts overhead instructions to cycles
// (1/dispatch width).
func OracleComponents(tp uint64, threads []ThreadCounters, cyclesPerInstr float64) Components {
	var c Components
	for i := range threads {
		t := &threads[i]
		// The oracle's own sampling factor: exactly 1 in exact mode (the
		// oracle observes every LLC access, and x/x is exactly 1.0 in IEEE
		// arithmetic, so exact-mode results are bit-identical); the
		// detailed-set extrapolation factor in fast mode.
		factor := 1.0
		if t.OracleATDAccesses != 0 && t.LLCAccesses != 0 {
			factor = float64(t.LLCAccesses) / float64(t.OracleATDAccesses)
		}
		c.NegLLC += float64(t.OracleInterThreadMissStall) * factor
		c.PosLLC += float64(t.OracleInterThreadHits) * factor * avgMissPenalty(t)
		memI := float64(t.OracleMemInterference) -
			float64(t.OracleInterThreadMissMemInterf)*factor
		if memI > 0 {
			c.NegMem += memI
		}
		c.Spin += float64(t.OracleSpinCycles)
		c.Yield += float64(t.YieldCycles)
		c.Coherence += float64(t.OracleCoherenceStall) * factor
		c.ParallelOverhead += float64(t.OverheadInstrs) * cyclesPerInstr
		if tp > t.FinishTime {
			c.Imbalance += float64(tp - t.FinishTime)
		}
	}
	return clampComponents(c, tp, len(threads))
}

// samplingFactor returns total LLC accesses divided by sampled accesses
// (Section 4.2), falling back to 1 when nothing was sampled.
func samplingFactor(t *ThreadCounters) float64 {
	if t.SampledATDAccesses == 0 || t.LLCAccesses == 0 {
		return 1
	}
	return float64(t.LLCAccesses) / float64(t.SampledATDAccesses)
}

// avgMissPenalty is the interpolation of Section 4.2: total LLC load-miss
// stall divided by the number of LLC load misses.
func avgMissPenalty(t *ThreadCounters) float64 {
	if t.LLCLoadMisses == 0 {
		return 0
	}
	return float64(t.StallLLCLoadMiss) / float64(t.LLCLoadMisses)
}

// clampComponents guards against pathological extrapolation: no single
// thread's overheads can exceed Tp, so the aggregate is capped at N×Tp.
func clampComponents(c Components, tp uint64, n int) Components {
	max := float64(tp) * float64(n)
	if c.OverheadTotal() > max {
		scale := max / c.OverheadTotal()
		c.NegLLC *= scale
		c.NegMem *= scale
		c.Spin *= scale
		c.Yield *= scale
		c.Imbalance *= scale
		c.Coherence *= scale
		c.ParallelOverhead *= scale
	}
	return c
}

// BuildStack assembles the estimated speedup stack for a run.
func BuildStack(n int, tp uint64, threads []ThreadCounters) Stack {
	if n != len(threads) {
		panic(fmt.Sprintf("core: %d threads of counters for N=%d", len(threads), n))
	}
	return Stack{N: n, Tp: tp, Components: EstimateComponents(tp, threads)}
}
