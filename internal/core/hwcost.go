package core

// Hardware cost model of the accounting architecture (paper Section 4.7).
// The paper budgets 952 bytes per core for the interference accounting
// (sampled ATD, ORA, event counters) plus 217 bytes for the Tian load
// table, about 1.1 KB per core and 18 KB for a 16-core CMP.

// HardwareBudget itemizes the per-core storage of the accounting
// architecture.
type HardwareBudget struct {
	// ATDBytes is the sampled auxiliary tag directory.
	ATDBytes int
	// ORABytes is the open row array.
	ORABytes int
	// CounterBytes is the bank of event counters and stall accumulators.
	CounterBytes int
	// SpinTableBytes is the Tian load table.
	SpinTableBytes int
}

// InterferenceBytes is the interference-accounting subtotal the paper
// quotes as 952 bytes per core.
func (b HardwareBudget) InterferenceBytes() int {
	return b.ATDBytes + b.ORABytes + b.CounterBytes
}

// PerCoreBytes is the total per-core cost (≈1.1 KB in the paper).
func (b HardwareBudget) PerCoreBytes() int {
	return b.InterferenceBytes() + b.SpinTableBytes
}

// TotalBytes is the machine-wide cost for cores cores (18 KB for 16 cores
// in the paper).
func (b HardwareBudget) TotalBytes(cores int) int {
	return b.PerCoreBytes() * cores
}

// CostParams are the geometry inputs to the cost model.
type CostParams struct {
	// SampledSets and Ways size the ATD.
	SampledSets int
	Ways        int
	// TagBits is the stored tag width per ATD entry (plus valid+status).
	TagBits int
	// ORAEntries at 6 bytes each (bank id + row number + valid).
	ORAEntries int
	// Counters is the number of 48-bit event/stall counters.
	Counters int
	// SpinEntries at 27 bytes each (PC, address, data, mark, timestamp),
	// the paper's 8-entry table costing 217 bytes.
	SpinEntries int
}

// Cost computes the per-core hardware budget from geometry.
func Cost(p CostParams) HardwareBudget {
	atdBits := p.SampledSets * p.Ways * (p.TagBits + 2)
	return HardwareBudget{
		ATDBytes:       (atdBits + 7) / 8,
		ORABytes:       p.ORAEntries * 6,
		CounterBytes:   p.Counters * 6,
		SpinTableBytes: p.SpinEntries*27 + 1,
	}
}

// PaperCostParams returns the geometry that reproduces the paper's budget
// exactly: a 16-set sampled ATD over the 2 MB 16-way LLC (16×16 entries of
// 24-bit tags + 2 status bits = 832 B), an 8-entry ORA (48 B) and twelve
// 48-bit counters (72 B) give the 952-byte interference subtotal; the
// 8-entry Tian table (27 B each + control) gives 217 B; together ≈1.1 KB
// per core and ≈18 KB for a 16-core CMP.
func PaperCostParams() CostParams {
	return CostParams{
		SampledSets: 16,
		Ways:        16,
		TagBits:     24,
		ORAEntries:  8,
		Counters:    12,
		SpinEntries: 8,
	}
}
