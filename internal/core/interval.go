package core

import "math/bits"

// Time-resolved accounting: the simulator can snapshot the cumulative
// per-thread counters every N committed trace operations, and this file
// turns a sequence of such snapshots into per-interval component
// decompositions that sum — exactly, in integer arithmetic — to the
// whole-run decomposition.
//
// The trick that makes the sum exact is telescoping: every snapshot is
// evaluated as a *cumulative* integer estimate C_k (the estimator of
// Section 4 applied to the counters accumulated so far, with the
// extrapolation factors frozen from the end-of-run totals), and interval k
// is defined as the difference C_k − C_{k−1}. Summing the differences
// cancels every intermediate term and leaves C_K − C_0 = C_K, the aggregate
// — with no floating-point rounding anywhere in the chain.

// IntervalSnapshot is one cumulative accounting snapshot taken while a run
// is in flight: the per-thread counters, the run's progress in committed
// trace operations, and the furthest thread-local cycle observed. Snapshots
// are pure reads of the accounting state — taking them never perturbs
// timing — and each one extends the previous (counters are cumulative, not
// per-interval deltas).
type IntervalSnapshot struct {
	// Ops is the cumulative number of committed trace operations.
	Ops uint64
	// Time is the furthest thread-local cycle any thread had reached; the
	// final snapshot's Time equals the run's Tp.
	Time uint64
	// Threads holds the cumulative per-thread counters at the snapshot.
	Threads []ThreadCounters
	// Finished marks threads that had already executed their KindEnd.
	Finished []bool
}

// IntComponents is the integer-cycle counterpart of Components, used for
// time-resolved stacks where per-interval values must sum exactly to the
// aggregate. Values are signed: a per-interval delta can be transiently
// negative (the memory component deducts the extrapolated inter-thread-miss
// share, so reclassification between intervals can dip below zero) even
// though every cumulative value is non-negative. Renderers clamp negatives
// to zero visually; the data keeps the exact value so sums stay exact.
type IntComponents struct {
	// NegLLC is negative LLC interference in cycles.
	NegLLC int64 `json:"neg_llc"`
	// PosLLC is positive LLC interference in cycles.
	PosLLC int64 `json:"pos_llc"`
	// NegMem is negative memory-subsystem interference in cycles.
	NegMem int64 `json:"memory"`
	// Spin is detected spin time in cycles.
	Spin int64 `json:"spinning"`
	// Yield is OS-recorded descheduled time in cycles.
	Yield int64 `json:"yielding"`
	// Imbalance is end-of-run waiting attributed so far, in cycles.
	Imbalance int64 `json:"imbalance"`
}

// Add returns the componentwise sum c + o.
func (c IntComponents) Add(o IntComponents) IntComponents {
	c.NegLLC += o.NegLLC
	c.PosLLC += o.PosLLC
	c.NegMem += o.NegMem
	c.Spin += o.Spin
	c.Yield += o.Yield
	c.Imbalance += o.Imbalance
	return c
}

// Sub returns the componentwise difference c − o.
func (c IntComponents) Sub(o IntComponents) IntComponents {
	c.NegLLC -= o.NegLLC
	c.PosLLC -= o.PosLLC
	c.NegMem -= o.NegMem
	c.Spin -= o.Spin
	c.Yield -= o.Yield
	c.Imbalance -= o.Imbalance
	return c
}

// OverheadTotal sums the overhead terms (everything except positive
// interference), the integer analogue of Components.OverheadTotal.
func (c IntComponents) OverheadTotal() int64 {
	return c.NegLLC + c.NegMem + c.Spin + c.Yield + c.Imbalance
}

// Components converts to the float64 form (for rendering alongside
// aggregate stacks; the exactness guarantee lives in the integer form).
func (c IntComponents) Components() Components {
	return Components{
		NegLLC:    float64(c.NegLLC),
		PosLLC:    float64(c.PosLLC),
		NegMem:    float64(c.NegMem),
		Spin:      float64(c.Spin),
		Yield:     float64(c.Yield),
		Imbalance: float64(c.Imbalance),
	}
}

// mulDiv returns x*num/den using a 128-bit intermediate product, so the
// extrapolations below cannot overflow (cycle counters and access counts
// each fit in 64 bits; their product does not). den must be non-zero. A
// quotient exceeding 64 bits is clamped — unreachable for physical counter
// values, where the result is again a cycle count.
func mulDiv(x, num, den uint64) uint64 {
	hi, lo := bits.Mul64(x, num)
	if hi >= den {
		return ^uint64(0)
	}
	q, _ := bits.Div64(hi, lo, den)
	return q
}

// CumulativeComponents evaluates the Section 4 estimator on the cumulative
// counters cur of an in-flight snapshot, in pure integer arithmetic. The
// two run-level extrapolations — the ATD sampling factor and the average
// miss penalty — are frozen from fin, the end-of-run counters of the same
// threads, so the estimate is linear in the integer counters and the final
// snapshot's cumulative estimate is the run's aggregate. finished marks
// threads that had completed by the snapshot; tmax is the snapshot's
// furthest thread-local cycle (imbalance accrues as finished threads wait
// for running ones, reaching the aggregate Σ(Tp−FinishTime) at the end).
//
// Differences from the float estimator (EstimateComponents): divisions
// floor instead of rounding in float64, and no pathological-extrapolation
// clamp is applied — both bounded, documented deviations that buy the exact
// telescoping-sum property time-resolved stacks are built on.
func CumulativeComponents(cur, fin []ThreadCounters, finished []bool, tmax uint64) IntComponents {
	var c IntComponents
	for i := range cur {
		t, f := &cur[i], &fin[i]
		// Frozen run-level sampling factor (Section 4.2): LLC accesses over
		// sampled accesses, as an exact rational num/den.
		num, den := f.LLCAccesses, f.SampledATDAccesses
		if num == 0 || den == 0 {
			num, den = 1, 1
		}
		c.NegLLC += int64(mulDiv(t.SampledInterThreadMissStall, num, den))
		if f.LLCLoadMisses > 0 {
			// Positive interference: sampled inter-thread hits, extrapolated
			// by the sampling factor and weighted by the frozen average miss
			// penalty StallLLCLoadMiss/LLCLoadMisses.
			hits := mulDiv(t.SampledInterThreadHits, num, den)
			c.PosLLC += int64(mulDiv(hits, f.StallLLCLoadMiss, f.LLCLoadMisses))
		}
		// Memory interference minus the extrapolated share already charged to
		// NegLLC; floored at zero per thread, like the float estimator.
		mi := int64(t.MemInterferenceEst) -
			int64(mulDiv(t.SampledInterThreadMissMemInterf, num, den))
		if mi > 0 {
			c.NegMem += mi
		}
		c.Spin += int64(t.SpinDetected)
		c.Yield += int64(t.YieldCycles)
		if finished[i] && tmax > t.FinishTime {
			c.Imbalance += int64(tmax - t.FinishTime)
		}
	}
	return c
}
