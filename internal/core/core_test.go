package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStackFormulaIdentity(t *testing.T) {
	// Property (Formula 4): Ŝ = N − ΣO/Tp + ΣP/Tp, and Base = Ŝ − P/Tp.
	f := func(neg, pos, mem, spin, yield, imbal uint32, tpRaw uint32) bool {
		tp := uint64(tpRaw)%1_000_000 + 1000
		c := Components{
			NegLLC: float64(neg % 100_000), PosLLC: float64(pos % 100_000),
			NegMem: float64(mem % 100_000), Spin: float64(spin % 100_000),
			Yield: float64(yield % 100_000), Imbalance: float64(imbal % 100_000),
		}
		s := Stack{N: 16, Tp: tp, Components: c}
		want := 16 - c.OverheadTotal()/float64(tp) + c.PosLLC/float64(tp)
		if math.Abs(s.Estimated()-want) > 1e-9 {
			return false
		}
		if math.Abs(s.Base()-(s.Estimated()-c.PosLLC/float64(tp))) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNetInterference(t *testing.T) {
	c := Components{NegLLC: 100, PosLLC: 30}
	if c.Net() != 70 {
		t.Fatalf("net = %v", c.Net())
	}
}

func TestErrorFormula(t *testing.T) {
	s := Stack{N: 4, Tp: 1000, ActualSpeedup: 3.0}
	// No overheads: estimated = 4; error = (4-3)/4.
	if got := s.Error(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("error = %v", got)
	}
}

func TestErrorPanicsWithoutActual(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_ = Stack{N: 4, Tp: 1000}.Error()
}

func TestEstimateComponentsExtrapolation(t *testing.T) {
	tp := uint64(100_000)
	threads := []ThreadCounters{{
		LLCAccesses:                 3200,
		SampledATDAccesses:          100, // run-time sampling factor 32
		SampledInterThreadMissStall: 500,
		SampledInterThreadHits:      10,
		LLCLoadMisses:               100,
		StallLLCLoadMiss:            20_000, // avg penalty 200
		MemInterferenceEst:          4_000,
		SpinDetected:                1_000,
		YieldCycles:                 2_000,
		FinishTime:                  90_000,
	}}
	c := EstimateComponents(tp, threads)
	if c.NegLLC != 500*32 {
		t.Fatalf("NegLLC = %v, want %v", c.NegLLC, 500*32)
	}
	if c.PosLLC != 10*32*200 {
		t.Fatalf("PosLLC = %v, want %v", c.PosLLC, 10*32*200)
	}
	if c.NegMem != 4000 {
		t.Fatalf("NegMem = %v", c.NegMem)
	}
	if c.Spin != 1000 || c.Yield != 2000 {
		t.Fatalf("spin/yield = %v/%v", c.Spin, c.Yield)
	}
	if c.Imbalance != 10_000 {
		t.Fatalf("imbalance = %v", c.Imbalance)
	}
}

func TestEstimateComponentsMemDedup(t *testing.T) {
	// Memory interference belonging to inter-thread misses must not be
	// counted twice: it is deducted (after extrapolation) from NegMem.
	tp := uint64(100_000)
	threads := []ThreadCounters{{
		LLCAccesses:                     320,
		SampledATDAccesses:              10,
		SampledInterThreadMissStall:     100,
		SampledInterThreadMissMemInterf: 50,
		MemInterferenceEst:              2_000,
		FinishTime:                      tp,
	}}
	c := EstimateComponents(tp, threads)
	if c.NegMem != 2000-50*32 {
		t.Fatalf("NegMem = %v, want %v", c.NegMem, 2000-50*32)
	}
	// If the extrapolated deduction exceeds the total, NegMem clamps to 0.
	threads[0].SampledInterThreadMissMemInterf = 100
	c = EstimateComponents(tp, threads)
	if c.NegMem != 0 {
		t.Fatalf("NegMem = %v, want 0", c.NegMem)
	}
}

func TestOracleComponentsIncludeHiddenTerms(t *testing.T) {
	tp := uint64(50_000)
	threads := []ThreadCounters{{
		OracleInterThreadMissStall: 300,
		OracleInterThreadHits:      5,
		LLCLoadMisses:              10,
		StallLLCLoadMiss:           1_000, // avg 100
		OracleMemInterference:      700,
		OracleSpinCycles:           400,
		YieldCycles:                800,
		OracleCoherenceStall:       150,
		OverheadInstrs:             4_000,
		FinishTime:                 tp,
	}}
	c := OracleComponents(tp, threads, 0.25)
	if c.NegLLC != 300 || c.PosLLC != 500 || c.NegMem != 700 {
		t.Fatalf("cache/mem components wrong: %+v", c)
	}
	if c.Coherence != 150 {
		t.Fatalf("coherence = %v", c.Coherence)
	}
	if c.ParallelOverhead != 1000 {
		t.Fatalf("overhead = %v", c.ParallelOverhead)
	}
}

func TestClampComponents(t *testing.T) {
	tp := uint64(1000)
	threads := []ThreadCounters{{
		SpinDetected: 10_000_000, // absurd: beyond N x Tp
		FinishTime:   tp,
	}}
	c := EstimateComponents(tp, threads)
	if c.OverheadTotal() > float64(tp)*1.0001 {
		t.Fatalf("overheads not clamped: %v", c.OverheadTotal())
	}
}

func TestSamplingFactorFallback(t *testing.T) {
	// With nothing sampled, raw (unextrapolated) values pass through.
	tp := uint64(10_000)
	threads := []ThreadCounters{{
		LLCAccesses:                 100,
		SampledInterThreadMissStall: 77,
		FinishTime:                  tp,
	}}
	c := EstimateComponents(tp, threads)
	if c.NegLLC != 77 {
		t.Fatalf("NegLLC = %v, want 77", c.NegLLC)
	}
}

func TestNamedComponents(t *testing.T) {
	s := Stack{N: 16, Tp: 1000, Components: Components{
		NegLLC: 100, PosLLC: 40, NegMem: 50, Spin: 30, Yield: 20, Imbalance: 10,
	}}
	named := s.NamedComponents()
	if len(named) != 5 {
		t.Fatalf("components = %d, want 5", len(named))
	}
	if named[0].Name != "net negative LLC interference" || named[0].Value != 0.06 {
		t.Fatalf("net component wrong: %+v", named[0])
	}
	// Hidden terms appear only when non-zero.
	s.Components.Coherence = 5
	s.Components.ParallelOverhead = 7
	if len(s.NamedComponents()) != 7 {
		t.Fatal("hidden components not appended")
	}
}

func TestBuildStackPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BuildStack(4, 100, make([]ThreadCounters, 3))
}

func TestHardwareCostMatchesPaper(t *testing.T) {
	b := Cost(PaperCostParams())
	if b.InterferenceBytes() != 952 {
		t.Fatalf("interference budget = %d B, want 952", b.InterferenceBytes())
	}
	if b.SpinTableBytes != 217 {
		t.Fatalf("spin table = %d B, want 217", b.SpinTableBytes)
	}
	if b.PerCoreBytes() != 1169 {
		t.Fatalf("per-core = %d B, want 1169 (~1.1 KB)", b.PerCoreBytes())
	}
	total := b.TotalBytes(16)
	if total < 18_000 || total > 19_000 {
		t.Fatalf("16-core total = %d B, want ~18 KB", total)
	}
}

func TestComponentSpeedupConversion(t *testing.T) {
	s := Stack{N: 8, Tp: 2000}
	if got := s.ComponentSpeedup(500); got != 0.25 {
		t.Fatalf("speedup units = %v", got)
	}
}
