package service

import (
	"encoding/json"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// cellRunsFromMetrics scrapes speedupd_sim_cell_runs_total from /metrics —
// the same observation path the smoke driver and operators use.
func cellRunsFromMetrics(t *testing.T, s *Server) int {
	t.Helper()
	w := get(t, s.Handler(), "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", w.Code)
	}
	m := regexp.MustCompile(`(?m)^speedupd_sim_cell_runs_total (\d+)$`).FindStringSubmatch(w.Body.String())
	if m == nil {
		t.Fatalf("speedupd_sim_cell_runs_total not exposed:\n%s", w.Body)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestWhatIfEndpointJSON is the endpoint's happy path plus the issue's memo
// acceptance: a repeated POST /v1/whatif performs zero additional
// simulations, asserted through /metrics.
func TestWhatIfEndpointJSON(t *testing.T) {
	s, _ := newTestServer(t)
	body := `{"bench":"cholesky","threads":4}`
	w := post(t, s.Handler(), "/v1/whatif", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	var rep whatif.Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rep.Benchmark != "cholesky_splash2" || rep.Threads != 4 {
		t.Errorf("report header: %+v", rep)
	}
	if rep.BaselineSpeedup <= 0 || len(rep.Predictions) == 0 {
		t.Fatalf("report not populated: %+v", rep)
	}
	for i, p := range rep.Predictions {
		if p.Intervention == "" || p.Mutation == "" || p.ActualSpeedup <= 0 {
			t.Errorf("prediction %d incomplete: %+v", i, p)
		}
		if i > 0 && p.PredictedGain > rep.Predictions[i-1].PredictedGain {
			t.Error("predictions not ranked by predicted gain")
		}
	}

	runs := cellRunsFromMetrics(t, s)
	if runs == 0 {
		t.Fatal("metrics report zero cell runs after a what-if")
	}
	w = post(t, s.Handler(), "/v1/whatif", body)
	if w.Code != http.StatusOK {
		t.Fatalf("repeat status %d: %s", w.Code, w.Body)
	}
	if again := cellRunsFromMetrics(t, s); again != runs {
		t.Errorf("repeated what-if ran %d extra simulations, want 0", again-runs)
	}
	// A restricted subset of an already-evaluated catalog is also free.
	w = post(t, s.Handler(), "/v1/whatif", `{"bench":"cholesky","threads":4,"interventions":["double_llc"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("subset status %d: %s", w.Code, w.Body)
	}
	if again := cellRunsFromMetrics(t, s); again != runs {
		t.Errorf("subset what-if ran %d extra simulations, want 0", again-runs)
	}
}

// TestWhatIfSpecAndFormats drives the inline-spec path and the format
// negotiation (text, csv, svg).
func TestWhatIfSpecAndFormats(t *testing.T) {
	s, _ := newTestServer(t)
	body := `{"spec":` + testSpecJSON + `,"threads":2}`
	w := post(t, s.Handler(), "/v1/whatif?format=text", body)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "what-if analysis: svc-kernel x2") {
		t.Errorf("text: status %d, body %.80q", w.Code, w.Body.String())
	}
	w = post(t, s.Handler(), "/v1/whatif?format=csv", body)
	if w.Code != http.StatusOK || !strings.HasPrefix(w.Body.String(), "benchmark,threads,baseline_speedup,") {
		t.Errorf("csv: status %d, body %.80q", w.Code, w.Body.String())
	}
	w = post(t, s.Handler(), "/v1/whatif?format=svg", body)
	if w.Code != http.StatusOK || !strings.HasPrefix(w.Body.String(), "<svg") {
		t.Errorf("svg: status %d, body %.40q", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("svg content type %q", ct)
	}
}

// TestWhatIfErrorEnvelopes pins the envelope shape and stable code of every
// new failure path the endpoint introduces, and that none of them costs a
// simulation.
func TestWhatIfErrorEnvelopes(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()

	cases := []struct {
		name     string
		target   string
		body     string
		status   int
		code     string
		contains string
	}{
		{"bad body", "/v1/whatif", `not json`,
			http.StatusBadRequest, "invalid_argument", "bad body"},
		{"unknown body field", "/v1/whatif", `{"bench":"cholesky","threads":4,"scale":2}`,
			http.StatusBadRequest, "invalid_argument", "scale"},
		{"trailing data", "/v1/whatif", `{"bench":"cholesky","threads":4}{}`,
			http.StatusBadRequest, "invalid_argument", "trailing data"},
		{"threads floor", "/v1/whatif", `{"bench":"cholesky","threads":1}`,
			http.StatusBadRequest, "invalid_argument", "no scaling gap"},
		{"missing threads", "/v1/whatif", `{"bench":"cholesky"}`,
			http.StatusBadRequest, "invalid_argument", "threads"},
		{"bench and spec", "/v1/whatif", `{"bench":"cholesky","spec":` + testSpecJSON + `,"threads":4}`,
			http.StatusBadRequest, "invalid_argument", "bench or spec"},
		{"unknown bench", "/v1/whatif", `{"bench":"nosuch","threads":4}`,
			http.StatusNotFound, "unknown_benchmark", "nosuch"},
		{"unknown intervention", "/v1/whatif", `{"bench":"cholesky","threads":4,"interventions":["triple_llc"]}`,
			http.StatusNotFound, "unknown_intervention", "triple_llc"},
		{"unknown param", "/v1/whatif?formats=json", `{"bench":"cholesky","threads":4}`,
			http.StatusBadRequest, "unknown_parameter", "format"},
	}
	for _, c := range cases {
		w := post(t, h, c.target, c.body)
		if w.Code != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, w.Code, c.status, w.Body)
			continue
		}
		e := decodeEnvelope(t, w)
		if e.Code != c.code {
			t.Errorf("%s: code %q, want %q", c.name, e.Code, c.code)
		}
		if !strings.Contains(e.Message, c.contains) {
			t.Errorf("%s: message %q does not mention %q", c.name, e.Message, c.contains)
		}
	}

	// GET is rejected with the uniform 405 envelope.
	if w := get(t, h, "/v1/whatif"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", w.Code)
	} else if e := decodeEnvelope(t, w); e.Code != "method_not_allowed" {
		t.Errorf("GET code %q", e.Code)
	}

	// The intervention typo carries a machine-readable nearest-ID suggestion.
	w := post(t, h, "/v1/whatif", `{"bench":"cholesky","threads":4,"interventions":["double_lcc"]}`)
	if w.Code != http.StatusNotFound {
		t.Fatalf("typo'd intervention: status %d (%s)", w.Code, w.Body)
	}
	if e := decodeEnvelope(t, w); e.Suggestion != whatif.DoubleLLC {
		t.Errorf("suggestion %q, want %q", e.Suggestion, whatif.DoubleLLC)
	}

	if st := s.Engine().Stats(); st.CellRuns != 0 {
		t.Errorf("error paths ran %d simulations", st.CellRuns)
	}
}

// FuzzWhatIfJSON fuzzes the full pre-simulation pipeline on raw bytes: the
// strict decode, the request validation, and — when a valid cell emerges —
// every applicable catalog mutation. Properties: no panics anywhere,
// unknown fields and trailing data are rejected, and every spec mutation of
// a valid workload is itself valid and survives a JSON round trip with its
// fingerprint intact (mutated cells must stay simulable and memoizable).
func FuzzWhatIfJSON(f *testing.F) {
	f.Add([]byte(`{"bench":"cholesky","threads":4}`))
	f.Add([]byte(`{"bench":"cholesky","threads":4,"interventions":["double_llc","halve_lock_hold"]}`))
	f.Add([]byte(`{"spec":` + testSpecJSON + `,"threads":2}`))
	f.Add([]byte(`{"spec":{"name":"tq","kind":"task_queue","tasks":64,"task_instr":4000,
		"dispatch_instr":200,"array_bytes":262144,"seed":3},"threads":4,"cores":8}`))
	f.Add([]byte(`{"bench":"cholesky","threads":4,"unknown_field":1}`))
	f.Add([]byte(`{"bench":"cholesky","threads":4}{}`))
	f.Add([]byte(`{"threads":-1}`))

	cfg := sim.Default()
	f.Fuzz(func(t *testing.T, data []byte) {
		var req whatifRequest
		if err := decodeStrict(strings.NewReader(string(data)), &req); err != nil {
			return // malformed JSON must fail cleanly, never panic
		}
		// Unknown fields are rejected by the decoder: re-encoding the decoded
		// struct and decoding again must therefore succeed.
		round, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		var again whatifRequest
		if err := decodeStrict(strings.NewReader(string(round)), &again); err != nil {
			t.Fatalf("re-encoded request rejected: %v\n%s", err, round)
		}

		cell, _, err := parseWhatIf(req)
		if err != nil {
			return // invalid requests fail with a typed error, never panic
		}
		// A valid cell: resolve its spec and apply the entire catalog.
		spec := workloadSpecOf(t, cell.Bench, cell.Spec)
		for _, iv := range whatif.Catalog() {
			m, ok := iv.Mutate(spec, cfg)
			if !ok {
				continue
			}
			if m.Spec == nil {
				if m.Config == nil {
					t.Fatalf("%s: mutation carries neither spec nor config", iv.ID)
				}
				if err := m.Config.Validate(); err != nil {
					t.Fatalf("%s: mutated config invalid: %v", iv.ID, err)
				}
				continue
			}
			if err := m.Spec.Validate(); err != nil {
				t.Fatalf("%s: mutated spec invalid: %v\nbase: %+v", iv.ID, err, spec)
			}
			blob, err := json.Marshal(m.Spec)
			if err != nil {
				t.Fatalf("%s: mutated spec does not marshal: %v", iv.ID, err)
			}
			parsed, err := workload.ParseSpec(blob)
			if err != nil {
				t.Fatalf("%s: mutated spec does not round-trip: %v\n%s", iv.ID, err, blob)
			}
			if parsed.Fingerprint() != m.Spec.Canonical().Fingerprint() {
				t.Fatalf("%s: fingerprint changed across JSON round trip", iv.ID)
			}
		}
	})
}

// workloadSpecOf resolves the canonical spec behind a parsed cell.
func workloadSpecOf(t *testing.T, bench string, spec *workload.Spec) workload.Spec {
	t.Helper()
	if spec != nil {
		return spec.Canonical()
	}
	b, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("parseWhatIf accepted unknown benchmark %q", bench)
	}
	return b.Spec
}
