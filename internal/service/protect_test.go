package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stack"
)

// sweepNDJSONBody is a two-cell sweep body used by the streaming tests.
const sweepNDJSONBody = `{"cells":[
	{"bench":"blackscholes_parsec_small","threads":2},
	{"bench":"swaptions_parsec_small","threads":2}]}`

// TestSweepNDJSONStreaming pins the streaming sweep surface: one compact
// JSON line per cell, declared order, ndjson content type.
func TestSweepNDJSONStreaming(t *testing.T) {
	s, _ := newTestServer(t)
	w := post(t, s.Handler(), "/v1/sweep?format=ndjson", sweepNDJSONBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimRight(w.Body.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), w.Body)
	}
	for i, want := range []string{"blackscholes", "swaptions"} {
		var row stack.ReportRow
		if err := json.Unmarshal([]byte(lines[i]), &row); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if !strings.Contains(row.Benchmark, want) {
			t.Errorf("line %d benchmark %q, want %q (declared order)", i, row.Benchmark, want)
		}
		if strings.Contains(lines[i], "\n") || strings.Contains(lines[i], "  ") {
			t.Errorf("line %d is not compact: %q", i, lines[i])
		}
	}
}

// TestSweepNDJSONMergesToJSON pins the byte-level contract the fleet layer
// relies on: wrapping the compact NDJSON lines into an array and indenting
// reproduces the FormatJSON response exactly.
func TestSweepNDJSONMergesToJSON(t *testing.T) {
	s, _ := newTestServer(t)
	nd := post(t, s.Handler(), "/v1/sweep?format=ndjson", sweepNDJSONBody)
	js := post(t, s.Handler(), "/v1/sweep?format=json", sweepNDJSONBody)
	if nd.Code != http.StatusOK || js.Code != http.StatusOK {
		t.Fatalf("status ndjson=%d json=%d", nd.Code, js.Code)
	}
	lines := strings.Split(strings.TrimRight(nd.Body.String(), "\n"), "\n")
	compact := "[" + strings.Join(lines, ",") + "]"
	var merged bytes.Buffer
	if err := json.Indent(&merged, []byte(compact), "", "  "); err != nil {
		t.Fatal(err)
	}
	merged.WriteByte('\n')
	if merged.String() != js.Body.String() {
		t.Errorf("merged NDJSON != JSON response:\n%s\nvs\n%s", merged.String(), js.Body)
	}
}

// TestAdmissionControl holds the single admission slot open with a blocked
// simulation and asserts the next request is shed fast with the 429
// "overloaded" envelope and a Retry-After hint, then that releasing the
// slot restores service.
func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	var inHook atomic.Bool
	entered := make(chan struct{})
	e := exp.NewEngine(sim.Default(), exp.WithWorkers(2),
		exp.WithRunHook(func(kind, bench string, threads, cores int) {
			if kind == "cell" && inHook.CompareAndSwap(false, true) {
				close(entered)
				<-release
			}
		}))
	s := New(Options{Engine: e, MaxInFlight: 1})

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- get(t, s.Handler(), "/v1/stack?bench="+testBench+"&threads=2")
	}()
	<-entered // the first request now owns the only slot

	w := get(t, s.Handler(), "/v1/stack?bench="+testBench+"&threads=2")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("shed request: status %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("Retry-After"); got == "" {
		t.Error("429 without Retry-After header")
	}
	var env errorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Code != codeOverloaded {
		t.Fatalf("envelope %s (err %v), want code %q", w.Body, err, codeOverloaded)
	}

	close(release)
	if first := <-done; first.Code != http.StatusOK {
		t.Fatalf("admitted request: status %d: %s", first.Code, first.Body)
	}
	if w := get(t, s.Handler(), "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz shed: %d", w.Code)
	}
	m := get(t, s.Handler(), "/metrics").Body.String()
	if !strings.Contains(m, `speedupd_throttled_total{reason="overloaded"} 1`) {
		t.Errorf("metrics missing shed count:\n%s", m)
	}
}

// TestRateLimit exhausts a one-token bucket and asserts the 429
// "rate_limited" envelope, Retry-After, the hop-header bypass for
// fleet-internal traffic, and the throttle counter on /metrics.
func TestRateLimit(t *testing.T) {
	s, _ := newTestServer(t)
	s.limiter = newRateLimiter(0.5, 1) // 1 token, slow refill
	target := "/v1/stack?bench=" + testBench + "&threads=2"

	if w := get(t, s.Handler(), target); w.Code != http.StatusOK {
		t.Fatalf("first request: %d: %s", w.Code, w.Body)
	}
	w := get(t, s.Handler(), target)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit request: %d: %s", w.Code, w.Body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Code != codeRateLimited {
		t.Fatalf("envelope %s (err %v), want code %q", w.Body, err, codeRateLimited)
	}
	if got := w.Header().Get("Retry-After"); got == "" || got == "0" {
		t.Errorf("Retry-After %q, want a positive backoff", got)
	}

	// A fleet hop is pre-accounted at the accepting node: it bypasses the
	// limiter (but not admission).
	if w := get(t, s.Handler(), target, HopHeader, "1"); w.Code != http.StatusOK {
		t.Errorf("hop-marked request limited: %d: %s", w.Code, w.Body)
	}
	m := get(t, s.Handler(), "/metrics").Body.String()
	if !strings.Contains(m, `speedupd_throttled_total{reason="rate_limited"} 1`) {
		t.Errorf("metrics missing rate-limit count:\n%s", m)
	}
}

// TestRateLimiterRefill drives the token bucket with explicit clocks:
// tokens refill at the configured rate up to the burst, and the retry hint
// covers the deficit.
func TestRateLimiterRefill(t *testing.T) {
	l := newRateLimiter(2, 2) // 2 rps, burst 2
	t0 := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if _, ok := l.allow("c", t0); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	retry, ok := l.allow("c", t0)
	if ok {
		t.Fatal("empty bucket allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s] at 2 rps", retry)
	}
	if _, ok := l.allow("c", t0.Add(time.Second)); !ok {
		t.Fatal("no refill after 1s at 2 rps")
	}
	// Distinct clients have distinct buckets.
	if _, ok := l.allow("other", t0); !ok {
		t.Fatal("fresh client denied")
	}
}

// TestMetricsOccupancy pins the cache-occupancy lines next to the existing
// churn counters.
func TestMetricsOccupancy(t *testing.T) {
	s, _ := newTestServer(t)
	if w := get(t, s.Handler(), "/v1/stack?bench="+testBench+"&threads=2"); w.Code != http.StatusOK {
		t.Fatalf("stack: %d", w.Code)
	}
	m := get(t, s.Handler(), "/metrics").Body.String()
	if !strings.Contains(m, "speedupd_sim_cell_memo_entries 1\n") {
		t.Errorf("metrics missing memo entries:\n%s", m)
	}
	if !strings.Contains(m, "speedupd_sim_cell_memo_limit ") {
		t.Errorf("metrics missing memo limit:\n%s", m)
	}
}
