package service

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// Protection for the simulating endpoints: admission control bounds the
// number of requests concurrently occupying the simulation path, and an
// optional per-client token bucket bounds each caller's request rate. Both
// answer a fast 429 with a Retry-After header and the uniform error
// envelope instead of queueing unboundedly — under fleet load, shedding
// early is what keeps the latency of admitted requests flat.

// HopHeader marks a request forwarded once by a fleet peer (see
// internal/fleet). The service recognizes it in one place: hop-marked
// requests bypass the per-client rate limiter (the client was already
// accounted on the node that accepted the request from the outside world)
// but still count against admission — each node protects its own
// simulation capacity.
const HopHeader = "X-Speedupd-Fleet-Hop"

// admission is a non-blocking concurrency gate over the simulating
// handlers.
type admission struct {
	slots chan struct{}
}

func newAdmission(n int) *admission {
	if n <= 0 {
		return nil
	}
	return &admission{slots: make(chan struct{}, n)}
}

// acquire takes a slot without blocking; ok=false means the server is at
// its bound and the request should be shed.
func (a *admission) acquire() (release func(), ok bool) {
	if a == nil {
		return func() {}, true
	}
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, true
	default:
		return nil, false
	}
}

// inflight reports currently admitted requests.
func (a *admission) inflight() int {
	if a == nil {
		return 0
	}
	return len(a.slots)
}

// rateLimiter is a lazy per-client token bucket: rate tokens per second
// refill up to burst, one token per request. Clients are keyed by IP; idle
// buckets are pruned so the map stays bounded.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

const maxRateClients = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// allow spends one token for key, refilling by elapsed wall time. ok=false
// comes with the duration after which a token will be available — the
// Retry-After hint.
func (l *rateLimiter) allow(key string, now time.Time) (retryAfter time.Duration, ok bool) {
	if l == nil {
		return 0, true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[key]
	if !found {
		if len(l.buckets) >= maxRateClients {
			l.prune(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / l.rate * float64(time.Second)), false
}

// prune drops buckets idle long enough to be full again; called under mu
// when the map is at its bound.
func (l *rateLimiter) prune(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) >= idle {
			delete(l.buckets, k)
		}
	}
}

// clientKey identifies the caller for rate limiting: the connection's
// remote IP.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// protect wraps a simulating handler with the rate limiter and admission
// gate. Order matters: a rate-limited client is rejected before it can
// occupy an admission slot.
func (s *Server) protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HopHeader) == "" {
			if retry, ok := s.limiter.allow(clientKey(r), time.Now()); !ok {
				s.mu.Lock()
				s.rateLimited++
				s.mu.Unlock()
				writeError(w, r, &apiError{Status: http.StatusTooManyRequests, Code: codeRateLimited,
					Message:    "per-client rate limit exceeded",
					RetryAfter: int(math.Ceil(retry.Seconds()))})
				return
			}
		}
		release, ok := s.adm.acquire()
		if !ok {
			s.mu.Lock()
			s.shed++
			s.mu.Unlock()
			writeError(w, r, &apiError{Status: http.StatusTooManyRequests, Code: codeOverloaded,
				Message:    "server is at its concurrent-request bound; retry shortly",
				RetryAfter: 1})
			return
		}
		defer release()
		h(w, r)
	}
}
