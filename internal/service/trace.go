package service

import (
	"io"
	"net/http"

	"repro/internal/exp"
	"repro/internal/trace"
	"repro/internal/workload"
)

// MaxTraceBytes bounds a POST /v1/traces/analyze body. A 16-thread trace of
// the heaviest registered analogue encodes to ~10MB, so 32MB covers every
// realistic recording with headroom while keeping a hostile upload from
// buffering without bound. Exported so the fleet routing layer buffers
// trace uploads to exactly the same bound.
const MaxTraceBytes = 32 << 20

// handleTraceAnalyze serves POST /v1/traces/analyze: the body is a recorded
// binary op trace (the speedup-stack -record format, internal/trace), decoded
// streaming-style into a replay spec and measured like any other cell. The
// trace replays at its recorded thread count — threads is not a parameter —
// and cores defaults to that count like everywhere else. The cell rides the
// engine's fingerprint-keyed memo under the trace's content hash, so
// re-uploading the same trace (whatever its label) performs zero additional
// simulations.
func (s *Server) handleTraceAnalyze(w http.ResponseWriter, r *http.Request) {
	opts, aerr := parseOptions(r, optionSpec{format: true, mode: true, traceCell: true})
	if aerr != nil {
		writeError(w, r, aerr)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxTraceBytes))
	if err != nil {
		writeError(w, r, badRequest("reading body: %v", err))
		return
	}
	td, err := trace.Decode(data)
	if err != nil {
		writeError(w, r, badRequest("bad trace: %v", err))
		return
	}
	spec := workload.TraceSpec(td)
	cell, err := checkCellBounds(exp.Cell{Spec: &spec, Threads: spec.TraceThreads(), Cores: opts.cores})
	if err != nil {
		writeError(w, r, asAPIError(err))
		return
	}
	ctx, cancel := s.simContext(r)
	defer cancel()
	outs, err := s.sweep(ctx, []exp.Cell{cell}, s.modeConfig(opts.mode))
	if err != nil {
		writeError(w, r, s.simAPIError(err))
		return
	}
	s.respond(w, opts.format, outs)
}
