package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// recordTestTrace captures testBench at the given thread count and returns
// the encoded binary trace, ready to upload.
func recordTestTrace(t *testing.T, threads int) []byte {
	t.Helper()
	b, ok := workload.ByName(testBench)
	if !ok {
		t.Fatalf("test bench %q not registered", testBench)
	}
	f, _, err := workload.Record(sim.Default(), b.Spec, threads)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// TestTraceAnalyzeEndpoint pins the trace-upload contract end to end: a
// recorded binary trace uploaded to /v1/traces/analyze is replayed at its
// recorded thread count and answers the usual report row, and repeating the
// upload is a memo hit under the trace's content hash — zero additional
// simulations, visible in the /metrics cell-run counters.
func TestTraceAnalyzeEndpoint(t *testing.T) {
	s, sims := newTestServer(t)
	data := recordTestTrace(t, 2)

	w := post(t, s.Handler(), "/v1/traces/analyze", string(data))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var rows []stack.ReportRow
	if err := json.Unmarshal(w.Body.Bytes(), &rows); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rows) != 1 || rows[0].Benchmark != testBench || rows[0].Threads != 2 {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	if rows[0].Actual <= 0 || rows[0].Estimated <= 0 {
		t.Errorf("stack not populated: %+v", rows[0])
	}
	if *sims != 1 {
		t.Fatalf("first upload ran %d simulations, want 1", *sims)
	}

	// Repeating the upload must hit the fingerprint-keyed memo: the trace's
	// content hash is the identity, so the second analyze is free.
	if w := post(t, s.Handler(), "/v1/traces/analyze", string(data)); w.Code != http.StatusOK {
		t.Fatalf("repeat: status %d: %s", w.Code, w.Body)
	}
	if *sims != 1 {
		t.Fatalf("repeated upload re-simulated: %d runs, want 1", *sims)
	}
	body := get(t, s.Handler(), "/metrics").Body.String()
	for _, want := range []string{
		"speedupd_sim_cell_runs_total 1",
		"speedupd_sim_cell_runs_exact_total 1",
		"speedupd_sim_cell_runs_fast_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q after trace analyze + repeat:\n%s", want, body)
		}
	}

	// An explicit cores override is a different cell (own simulation), and a
	// fast-mode replay never shares the exact entry.
	if w := post(t, s.Handler(), "/v1/traces/analyze?cores=1", string(data)); w.Code != http.StatusOK {
		t.Fatalf("cores=1: status %d: %s", w.Code, w.Body)
	}
	if *sims != 2 {
		t.Fatalf("cores override did not simulate its own cell: %d runs", *sims)
	}
	if w := post(t, s.Handler(), "/v1/traces/analyze?mode=fast", string(data)); w.Code != http.StatusOK {
		t.Fatalf("mode=fast: status %d: %s", w.Code, w.Body)
	}
	if st := s.Engine().Stats(); st.FastCellRuns != 1 {
		t.Fatalf("fast replay not counted: %+v", st)
	}
}

// TestTraceAnalyzeRejects pins the endpoint's failure shapes: corrupt bodies
// and malformed or unknown parameters all answer the uniform envelope, and
// nothing simulates.
func TestTraceAnalyzeRejects(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	data := recordTestTrace(t, 1)

	// Corrupt trace: flip a byte past the header so decode fails.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0xff
	truncated := data[:len(data)/2]
	for name, body := range map[string]string{
		"empty":       "",
		"not a trace": "{\"spec\":{}}",
		"corrupt":     string(corrupt),
		"truncated":   string(truncated),
	} {
		w := post(t, h, "/v1/traces/analyze", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, w.Code, w.Body)
			continue
		}
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Errorf("%s: bad envelope: %v", name, err)
			continue
		}
		if env.Error.Code != "invalid_argument" || !strings.Contains(env.Error.Message, "bad trace") {
			t.Errorf("%s: envelope %+v", name, env.Error)
		}
	}

	// Threads is deliberately not a parameter — a trace replays at its
	// recorded count — so it must be rejected like any unknown parameter.
	if w := post(t, h, "/v1/traces/analyze?threads=4", string(data)); w.Code != http.StatusBadRequest ||
		!strings.Contains(w.Body.String(), "unknown_parameter") {
		t.Errorf("?threads=4: status %d, body %s", w.Code, w.Body)
	}
	if w := post(t, h, "/v1/traces/analyze?cores=bogus", string(data)); w.Code != http.StatusBadRequest ||
		!strings.Contains(w.Body.String(), "invalid_argument") {
		t.Errorf("?cores=bogus: status %d, body %s", w.Code, w.Body)
	}
	if w := post(t, h, "/v1/traces/analyze?cores=65", string(data)); w.Code != http.StatusBadRequest {
		t.Errorf("?cores=65: status %d, body %s", w.Code, w.Body)
	}
	if st := s.Engine().Stats(); st.CellRuns != 0 {
		t.Errorf("rejected requests ran %d simulations", st.CellRuns)
	}
}
