package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// decodeEnvelope decodes a structured error response, failing the test on
// anything that is not a well-formed envelope.
func decodeEnvelope(t *testing.T, w *httptest.ResponseRecorder) errorBody {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("response is not an error envelope: %v\n%s", err, w.Body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", w.Body)
	}
	return env.Error
}

// TestErrorEnvelopeShape pins the uniform failure contract: every /v1
// endpoint answers 4xx with {"error":{"code","message"[,"suggestion"]}} and
// a stable machine-readable code.
func TestErrorEnvelopeShape(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()

	cases := []struct {
		name     string
		method   string
		target   string
		body     string
		status   int
		code     string
		contains string
	}{
		{"bad format", http.MethodGet, "/v1/stack?bench=" + testBench + "&threads=2&format=bogus", "",
			http.StatusBadRequest, "invalid_argument", "bogus"},
		{"bad threads", http.MethodGet, "/v1/stack?bench=" + testBench + "&threads=zero", "",
			http.StatusBadRequest, "invalid_argument", "threads"},
		{"unknown param", http.MethodGet, "/v1/stack?bench=" + testBench + "&threads=2&thread=8", "",
			http.StatusBadRequest, "unknown_parameter", "bench, cores, format, mode, threads"},
		{"unknown bench", http.MethodGet, "/v1/stack?bench=nosuch&threads=2", "",
			http.StatusNotFound, "unknown_benchmark", "nosuch"},
		{"method not allowed", http.MethodGet, "/v1/sweep", "",
			http.StatusMethodNotAllowed, "method_not_allowed", "requires POST"},
		{"bad body", http.MethodPost, "/v1/sweep", "not json",
			http.StatusBadRequest, "invalid_argument", "bad body"},
		{"analyze missing spec", http.MethodPost, "/v1/workloads/analyze", `{"threads":2}`,
			http.StatusBadRequest, "invalid_argument", "missing spec"},
		{"advise unknown param", http.MethodGet, "/v1/advise?bench=" + testBench + "&threads=2", "",
			http.StatusBadRequest, "unknown_parameter", "bench, format, max_threads, mode"},
		{"benchmarks takes none", http.MethodGet, "/v1/benchmarks?format=json", "",
			http.StatusBadRequest, "unknown_parameter", "no query parameters"},
	}
	for _, c := range cases {
		var w *httptest.ResponseRecorder
		if c.method == http.MethodGet {
			w = get(t, h, c.target)
		} else {
			w = post(t, h, c.target, c.body)
		}
		if w.Code != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, w.Code, c.status, w.Body)
			continue
		}
		if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: content type %q, want JSON envelope", c.name, ct)
		}
		e := decodeEnvelope(t, w)
		if e.Code != c.code {
			t.Errorf("%s: code %q, want %q", c.name, e.Code, c.code)
		}
		if !strings.Contains(e.Message, c.contains) {
			t.Errorf("%s: message %q does not mention %q", c.name, e.Message, c.contains)
		}
	}
	if st := s.Engine().Stats(); st.CellRuns != 0 {
		t.Errorf("error paths ran %d simulations", st.CellRuns)
	}
}

// TestErrorSuggestionMachineReadable pins that the nearest-name hint is a
// field of the envelope, not just prose inside the message.
func TestErrorSuggestionMachineReadable(t *testing.T) {
	s, _ := newTestServer(t)
	w := get(t, s.Handler(), "/v1/stack?bench=choleski&threads=2")
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (%s)", w.Code, w.Body)
	}
	if e := decodeEnvelope(t, w); e.Suggestion != "cholesky" {
		t.Errorf("suggestion %q, want %q", e.Suggestion, "cholesky")
	}
	// A name nothing like any registered one carries no suggestion, and the
	// field is omitted rather than empty.
	w = get(t, s.Handler(), "/v1/stack?bench=zzzzzzzzzzzz&threads=2")
	if e := decodeEnvelope(t, w); e.Suggestion != "" {
		t.Errorf("far-off name got suggestion %q", e.Suggestion)
	}
	if strings.Contains(w.Body.String(), `"suggestion"`) {
		t.Errorf("empty suggestion not omitted: %s", w.Body)
	}
}

// TestErrorTextFormat pins the negotiated plain-text failure form: clients
// that asked for text get a single "error: ..." line, not JSON.
func TestErrorTextFormat(t *testing.T) {
	s, _ := newTestServer(t)
	w := get(t, s.Handler(), "/v1/stack?bench="+testBench+"&threads=zero&format=text")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	body := w.Body.String()
	if !strings.HasPrefix(body, "error: ") || strings.Contains(body, "{") {
		t.Errorf("text error body %q, want a plain error line", body)
	}

	// The Accept header negotiates the same way.
	w = get(t, s.Handler(), "/v1/stack?bench="+testBench+"&threads=zero", "Accept", "text/plain")
	if !strings.HasPrefix(w.Body.String(), "error: ") {
		t.Errorf("Accept-negotiated error body %q", w.Body.String())
	}

	// A bad ?format= itself still gets a parseable JSON envelope.
	w = get(t, s.Handler(), "/v1/stack?bench="+testBench+"&threads=2&format=bogus")
	if e := decodeEnvelope(t, w); e.Code != "invalid_argument" {
		t.Errorf("bad-format code %q", e.Code)
	}
}
