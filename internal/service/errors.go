package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/stack"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// Every /v1 endpoint answers failures with one structured envelope:
//
//	{"error": {"code": "...", "message": "...", "suggestion": "..."}}
//
// code is a stable machine-readable identifier (the set below), message the
// human-readable explanation, and suggestion an optional machine-readable
// hint — today the nearest registered benchmark name on a 404. Clients that
// negotiated the text format get a single plain "error: ..." line instead;
// every other format (including SVG and CSV, where an error document would
// be unparseable anyway) gets the JSON envelope.

// Error codes of the /v1 surface. They are part of the API contract: new
// codes may be added, existing ones never change meaning.
const (
	codeInvalidArgument     = "invalid_argument"
	codeUnknownParameter    = "unknown_parameter"
	codeUnknownBenchmark    = "unknown_benchmark"
	codeUnknownIntervention = "unknown_intervention"
	codeMethodNotAllowed    = "method_not_allowed"
	codeSimTimeout          = "sim_timeout"
	codeRequestCanceled     = "request_canceled"
	codeSimFailed           = "sim_failed"
	codeOverloaded          = "overloaded"
	codeRateLimited         = "rate_limited"
)

// apiError is one failed request: the HTTP status, the envelope fields, and
// nothing else — handlers construct it, writeError renders it once.
type apiError struct {
	Status     int
	Code       string
	Message    string
	Suggestion string
	// RetryAfter, in seconds, becomes the Retry-After header on 429s —
	// the client's backoff hint (client.Client honors it when retries are
	// enabled).
	RetryAfter int
}

func (e *apiError) Error() string { return e.Message }

// errorEnvelope is the wire form of an apiError.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
}

// badRequest builds a 400 invalid_argument error.
func badRequest(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: codeInvalidArgument,
		Message: fmt.Sprintf(format, args...)}
}

// asAPIError maps any error onto an apiError: typed lookup failures become
// 404s carrying their machine-readable suggestion, apiErrors pass through,
// and everything else is a 400 with the error's own message (the callers
// here only funnel request-shape errors through this path).
func asAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	var lookup *workload.BenchmarkLookupError
	if errors.As(err, &lookup) {
		// A well-formed request for a benchmark that does not exist is a
		// missing resource, not a malformed request.
		return &apiError{Status: http.StatusNotFound, Code: codeUnknownBenchmark,
			Message: lookup.Error(), Suggestion: lookup.Suggestion}
	}
	var ivErr *whatif.UnknownInterventionError
	if errors.As(err, &ivErr) {
		// Same reasoning for a what-if intervention that is not in the
		// catalog: 404, with the nearest catalog ID as the suggestion.
		return &apiError{Status: http.StatusNotFound, Code: codeUnknownIntervention,
			Message: ivErr.Error(), Suggestion: ivErr.Suggestion}
	}
	return badRequest("%v", err)
}

// simAPIError maps a simulation failure onto an apiError: timeouts are the
// gateway's fault (504), cancellations the client's (499-style 408),
// anything else a 500.
func (s *Server) simAPIError(err error) *apiError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{Status: http.StatusGatewayTimeout, Code: codeSimTimeout,
			Message: fmt.Sprintf("simulation exceeded the %s limit", s.simTimeout)}
	case errors.Is(err, context.Canceled):
		return &apiError{Status: http.StatusRequestTimeout, Code: codeRequestCanceled,
			Message: "request canceled"}
	default:
		return &apiError{Status: http.StatusInternalServerError, Code: codeSimFailed,
			Message: fmt.Sprintf("simulation failed: %v", err)}
	}
}

// writeError renders an apiError in the request's negotiated format: a
// plain "error: ..." line for text clients, the JSON envelope for everyone
// else. Negotiation failures (the error being reported may itself be a bad
// ?format=) fall back to the envelope.
func writeError(w http.ResponseWriter, r *http.Request, e *apiError) {
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	f, nerr := stack.NegotiateFormat(r.URL.Query().Get("format"), r.Header.Get("Accept"), stack.FormatJSON)
	if nerr == nil && f == stack.FormatText {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(e.Status)
		fmt.Fprintf(w, "error: %s\n", e.Message)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(e.Status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(errorEnvelope{Error: errorBody{Code: e.Code, Message: e.Message, Suggestion: e.Suggestion}})
}
