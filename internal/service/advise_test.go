package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/scaling"
)

// adviseTarget keeps the endpoint tests fast: a 4-thread sweep is three
// cells (1, 2, 4) of the cheapest registered benchmark.
const adviseTarget = "/v1/advise?bench=" + testBench + "&max_threads=4"

func TestAdviseEndpointJSON(t *testing.T) {
	s, sims := newTestServer(t)
	w := get(t, s.Handler(), adviseTarget)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	var a scaling.Advice
	if err := json.Unmarshal(w.Body.Bytes(), &a); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body)
	}
	if a.Benchmark != testBench || a.MaxThreads != 4 || len(a.Points) != 3 {
		t.Fatalf("unexpected advice shape: %+v", a)
	}
	if a.Class == "" || a.USL.R2 <= 0 {
		t.Errorf("fits not populated: %+v", a)
	}
	// blackscholes scales near-linearly, so it may legitimately have no
	// significant bottleneck — but bottleneck and recommendations must agree.
	if (a.Bottleneck == "") != (len(a.Recommendations) == 0) {
		t.Errorf("bottleneck %q with %d recommendations", a.Bottleneck, len(a.Recommendations))
	}
	if got := atomic.LoadInt32(sims); got != 3 {
		t.Errorf("4-thread advise ran %d simulations, want 3", got)
	}

	// The sweep's cells are ordinary memo entries: repeating the advise —
	// and asking /v1/stack for one of its points — costs nothing.
	get(t, s.Handler(), adviseTarget)
	get(t, s.Handler(), "/v1/stack?bench="+testBench+"&threads=4")
	if got := atomic.LoadInt32(sims); got != 3 {
		t.Errorf("repeat advise re-simulated (%d runs)", got)
	}
}

func TestAdviseFormats(t *testing.T) {
	s, _ := newTestServer(t)
	w := get(t, s.Handler(), adviseTarget+"&format=text")
	if w.Code != http.StatusOK {
		t.Fatalf("text status %d: %s", w.Code, w.Body)
	}
	body := w.Body.String()
	for _, want := range []string{testBench, "amdahl", "usl", "sigma", "n*"} {
		if !strings.Contains(body, want) {
			t.Errorf("text report missing %q:\n%s", want, body)
		}
	}

	w = get(t, s.Handler(), adviseTarget+"&format=svg")
	if w.Code != http.StatusOK || !strings.HasPrefix(w.Body.String(), "<svg") {
		t.Fatalf("svg: status %d, body %.40q", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("svg content type %q", ct)
	}
	for _, want := range []string{"measured", "amdahl", "usl"} {
		if !strings.Contains(w.Body.String(), want) {
			t.Errorf("svg chart missing series %q", want)
		}
	}

	w = get(t, s.Handler(), adviseTarget+"&format=csv")
	if w.Code != http.StatusOK {
		t.Fatalf("csv status %d", w.Code)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "benchmark,threads,measured") {
		t.Errorf("csv shape: %d lines, header %q", len(lines), lines[0])
	}
}

func TestAdviseBadRequests(t *testing.T) {
	s, _ := newTestServer(t)
	for name, target := range map[string]string{
		"missing bench":         "/v1/advise",
		"max_threads too low":   "/v1/advise?bench=" + testBench + "&max_threads=2",
		"max_threads too high":  "/v1/advise?bench=" + testBench + "&max_threads=65",
		"max_threads not a num": "/v1/advise?bench=" + testBench + "&max_threads=lots",
		"stray threads param":   "/v1/advise?bench=" + testBench + "&threads=4",
	} {
		w := get(t, s.Handler(), target)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, w.Code, w.Body)
			continue
		}
		decodeEnvelope(t, w)
	}
	w := get(t, s.Handler(), "/v1/advise?bench=choleski")
	if w.Code != http.StatusNotFound {
		t.Fatalf("typo'd bench: status %d, want 404", w.Code)
	}
	if e := decodeEnvelope(t, w); e.Code != "unknown_benchmark" || e.Suggestion != "cholesky" {
		t.Errorf("unexpected envelope: %+v", e)
	}
	if st := s.Engine().Stats(); st.CellRuns != 0 {
		t.Errorf("bad advise requests ran %d simulations", st.CellRuns)
	}
}
