// Package service exposes the analysis pipeline as a long-running HTTP
// API: the speedupd server. It is a thin, heavily-cached serving surface
// over the exp sweep engine.
//
// Endpoints:
//
//	GET  /v1/stack?bench=NAME&threads=N[&cores=M][&mode=exact|fast][&format=json|csv|svg|text]
//	GET  /v1/stack/intervals?bench=NAME&threads=N[&intervals=K][&cores=M][&mode=F][&format=F]
//	POST /v1/sweep[?mode=exact|fast]
//	                      {"cells":[{"bench":"...","threads":N,"cores":M},
//	                                {"spec":{...workload spec...},"threads":N}, ...]}
//	POST /v1/workloads/analyze[?mode=F]  {"spec":{...},"threads":N[,"cores":M][,"intervals":K]}
//	POST /v1/workloads/validate  {...workload spec...}  (dry run, no simulation)
//	POST /v1/traces/analyze[?cores=M][&mode=F][&format=F]  binary op trace (≤32MB)
//	GET  /v1/advise?bench=NAME[&max_threads=M][&mode=F][&format=json|csv|svg|text]
//	POST /v1/whatif       {"bench":"...","threads":N[,"cores":M]
//	                       [,"interventions":["halve_lock_hold",...]]}
//	                      (or "spec" instead of "bench", like /v1/sweep)
//	GET  /v1/benchmarks   registered benchmark analogues
//	GET  /healthz         liveness probe
//	GET  /metrics         request counts, cache traffic, in-flight sims
//
// /v1/stack/intervals (and "intervals" on /v1/workloads/analyze) serves the
// time-resolved form of a stack: the run divided into K equal slices of its
// committed trace operations, each slice with its own exact integer-cycle
// component breakdown (the slices sum to the aggregate; see
// internal/stack.TimeSeries). The SVG format draws a stacked timeline
// instead of the aggregate bar chart.
//
// Every simulating endpoint above that documents ?mode= accepts the
// simulation fidelity: "exact" (the default) simulates every LLC set and
// memory access in full detail and is byte-identical run to run, while
// "fast" simulates only the deterministic 1-in-2^sim.Config.FastSetShift
// subset of LLC sets, extrapolates the rest, and answers several times
// faster with its deviation from exact mode bounded by sim.FastErrorBounds
// (pinned in CI). On /v1/sweep the mode applies to every cell in the batch.
// Fast and exact results never share a cache entry — the memo keys on the
// full machine configuration, mode included — and /metrics splits
// speedupd_sim_cell_runs_total into _exact_total and _fast_total so
// operators can see which fidelity is paying the simulation bill. An
// unknown mode is a 400 invalid_argument like any other malformed value.
//
// Workloads are first-class: wherever a cell names a registered benchmark
// ("bench") it can instead carry an inline workload spec ("spec", the JSON
// form of workload.Spec). /v1/workloads/analyze measures one custom spec;
// /v1/workloads/validate parses and validates a spec body and reports its
// canonical form and fingerprint without simulating anything.
//
// /v1/traces/analyze is the recorded twin of /v1/workloads/analyze: the body
// is a binary op trace captured with speedup-stack -record (the versioned
// format specified in internal/trace), replayed at its recorded thread count
// and measured end-to-end. The optional ?cores= overrides the cores=threads
// default; threads is not a parameter, because a recorded op stream only
// replays at the count it was captured with. The replay cell is memoized
// under the trace's content hash (label excluded), so re-uploading the same
// trace performs zero additional simulations.
//
// /v1/advise runs the scaling advisor (internal/scaling) over a memoized
// thread sweep — powers of two up to max_threads (default 16, bounds
// [3,64]) — and reports deterministic Amdahl and USL fits, the
// diminishing-returns point N*, a linear/saturated/negative classification,
// a cross-check of the fitted serial fraction against the stack's
// serialization components, and ranked spec-field recommendations. The SVG
// format draws the measured sweep with both fitted curves overlaid.
//
// /v1/whatif runs the causal what-if engine (internal/whatif) on one cell:
// it re-evaluates the estimator with each catalog intervention's stack
// components virtually scaled, validates every prediction by re-simulating
// the concretely mutated workload or machine, and answers the ranked
// report. An unknown intervention ID is 404 unknown_intervention with the
// nearest catalog ID as the suggestion. The baseline and every mutated cell
// ride the same fingerprint-keyed memo as the rest of the surface, so
// repeating a what-if performs zero additional simulations.
//
// Report formats are negotiated per request: an explicit ?format= wins,
// then the Accept header (application/json, application/x-ndjson, text/csv,
// image/svg+xml, text/plain), then JSON. The ndjson format is the streaming
// twin of json: one compact ReportRow per line. On POST /v1/sweep it changes
// the serving discipline — rows are flushed in declared order as cells
// complete, so a large batch starts answering with its first finished cells
// instead of buffering the whole sweep; a failure after rows are on the wire
// terminates the stream with an error-envelope line.
//
// Overload protection: Options.MaxInFlight bounds how many requests may
// concurrently occupy the simulating endpoints — excess load is shed
// immediately with 429 {"error":{"code":"overloaded",...}} and a
// Retry-After header rather than queueing without bound — and
// Options.RateLimit adds a per-client (remote IP) token bucket answering
// 429 "rate_limited" the same way. Cheap introspection endpoints
// (/healthz, /metrics, /v1/benchmarks, /v1/workloads/validate) bypass
// both, so a shedding server can still be observed.
//
// The API surface is uniform: each endpoint accepts exactly its documented
// query parameters (anything else is 400 unknown_parameter, never silently
// ignored — see options.go), and every failure is the structured envelope
// {"error":{"code":...,"message":...,"suggestion":...}} described in
// errors.go; clients that negotiated the text format get a plain
// "error: ..." line instead.
//
// Caching and concurrency: results are cached in the engine's memo — an
// LRU keyed by the full (machine configuration, workload fingerprint,
// threads, cores) identity, bounded by Options.CacheCells — and concurrent
// identical requests collapse onto a single simulation (the engine's
// singleflight protocol), so a thundering herd asking for the same stack
// costs one simulation; an inline spec identical to a registered benchmark
// (or to another request's spec, whatever its name) hits the same cache
// entry. Simulation parallelism across all requests is bounded by the
// engine's worker pool; requests beyond it queue on the pool rather than
// piling onto the CPUs.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// Options configures a Server. The zero value serves the paper's default
// machine with sensible production bounds.
type Options struct {
	// Workers bounds concurrent simulations (default: GOMAXPROCS).
	Workers int
	// CacheCells bounds the LRU result cache, in cells (default 4096;
	// negative disables the bound).
	CacheCells int
	// SimTimeout caps how long one request waits for its simulations
	// (default 2m; negative disables). Exceeding it answers 504; the
	// simulations detach and finish in the background, filling the cache
	// so a retry is a hit.
	SimTimeout time.Duration
	// MaxSweepCells caps the batch size of POST /v1/sweep (default 1024).
	MaxSweepCells int
	// MaxInFlight bounds how many requests may concurrently occupy the
	// simulating endpoints; excess requests are shed immediately with a
	// 429 "overloaded" envelope and a Retry-After header instead of
	// queueing (0: unbounded). Non-simulating endpoints (/healthz,
	// /metrics, /v1/benchmarks, /v1/workloads/validate) are never shed.
	MaxInFlight int
	// RateLimit, when positive, enforces a per-client (by remote IP)
	// token-bucket rate on the simulating endpoints, in requests per
	// second; over-limit requests get 429 "rate_limited" with Retry-After.
	// Fleet-internal hops (requests carrying HopHeader) bypass the rate
	// limiter — their client was accounted at the node that accepted them —
	// but still count against MaxInFlight.
	RateLimit float64
	// RateBurst is the token-bucket depth when RateLimit is set
	// (default: ceil(RateLimit), minimum 1).
	RateBurst int
	// Config is the machine configuration (default sim.Default()).
	Config *sim.Config
	// Engine, if set, overrides Workers/CacheCells/Config with a
	// caller-owned engine (tests, embedding).
	Engine *exp.Engine
}

const (
	defaultCacheCells    = 4096
	defaultSimTimeout    = 2 * time.Minute
	defaultMaxSweepCells = 1024
	// defaultIntervals is the slice count when an interval request does not
	// name one; maxIntervals caps what one request may ask for (each
	// interval snapshot copies per-thread counters, so the cap bounds the
	// response and cache-entry size).
	defaultIntervals = 32
	maxIntervals     = 512
	// defaultAdviseThreads is the advisor's sweep top when the request does
	// not name one: the paper's 16-thread machine.
	defaultAdviseThreads = 16
)

// Server is the speedupd HTTP service.
type Server struct {
	engine        *exp.Engine
	simTimeout    time.Duration
	maxSweepCells int
	mux           *http.ServeMux
	started       time.Time
	adm           *admission
	limiter       *rateLimiter

	mu          sync.Mutex
	requests    map[string]uint64 // by route
	responses   map[int]uint64    // by status code
	shed        uint64            // admission rejections (429 overloaded)
	rateLimited uint64            // rate-limit rejections (429 rate_limited)
}

// New assembles a Server from the options.
func New(opts Options) *Server {
	e := opts.Engine
	if e == nil {
		cfg := sim.Default()
		if opts.Config != nil {
			cfg = *opts.Config
		}
		cache := opts.CacheCells
		if cache == 0 {
			cache = defaultCacheCells
		}
		eopts := []exp.Option{exp.WithCellMemoLimit(cache)}
		if opts.Workers > 0 {
			eopts = append(eopts, exp.WithWorkers(opts.Workers))
		}
		e = exp.NewEngine(cfg, eopts...)
	}
	st := opts.SimTimeout
	if st == 0 {
		st = defaultSimTimeout
	}
	if st < 0 {
		st = 0
	}
	maxCells := opts.MaxSweepCells
	if maxCells <= 0 {
		maxCells = defaultMaxSweepCells
	}
	s := &Server{
		engine:        e,
		simTimeout:    st,
		maxSweepCells: maxCells,
		mux:           http.NewServeMux(),
		started:       time.Now(),
		requests:      make(map[string]uint64),
		responses:     make(map[int]uint64),
		adm:           newAdmission(opts.MaxInFlight),
		limiter:       newRateLimiter(opts.RateLimit, opts.RateBurst),
	}
	// The simulating endpoints sit behind the protection layer; the cheap
	// introspection endpoints stay reachable even when the server is shedding.
	s.route("/v1/stack", http.MethodGet, s.protect(s.handleStack))
	s.route("/v1/stack/intervals", http.MethodGet, s.protect(s.handleStackIntervals))
	s.route("/v1/sweep", http.MethodPost, s.protect(s.handleSweep))
	s.route("/v1/workloads/analyze", http.MethodPost, s.protect(s.handleAnalyze))
	s.route("/v1/workloads/validate", http.MethodPost, s.handleValidate)
	s.route("/v1/traces/analyze", http.MethodPost, s.protect(s.handleTraceAnalyze))
	s.route("/v1/advise", http.MethodGet, s.protect(s.handleAdvise))
	s.route("/v1/whatif", http.MethodPost, s.protect(s.handleWhatIf))
	s.route("/v1/benchmarks", http.MethodGet, s.handleBenchmarks)
	s.route("/healthz", http.MethodGet, s.handleHealthz)
	s.route("/metrics", http.MethodGet, s.handleMetrics)
	return s
}

// Engine exposes the server's sweep engine (tests, stats).
func (s *Server) Engine() *exp.Engine { return s.engine }

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// route registers an instrumented handler: it counts the request, enforces
// the method, and records the response status.
func (s *Server) route(path, method string, h func(http.ResponseWriter, *http.Request)) {
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.requests[path]++
		s.mu.Unlock()
		rw := &statusWriter{ResponseWriter: w}
		if r.Method != method {
			rw.Header().Set("Allow", method)
			writeError(rw, r, &apiError{Status: http.StatusMethodNotAllowed, Code: codeMethodNotAllowed,
				Message: fmt.Sprintf("%s requires %s", path, method)})
		} else {
			h(rw, r)
		}
		s.mu.Lock()
		s.responses[rw.status()]++
		s.mu.Unlock()
	})
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// Flush forwards to the underlying writer so the NDJSON streaming path can
// push each row onto the wire as it completes.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// cellRequest is one cell of a POST body: either a registered benchmark
// named by bench, or an inline workload spec. Intervals asks for the
// time-resolved decomposition; it is honored by /v1/workloads/analyze and
// rejected in /v1/sweep batches (sweeps return aggregate rows).
type cellRequest struct {
	Bench     string          `json:"bench,omitempty"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	Threads   int             `json:"threads"`
	Cores     int             `json:"cores,omitempty"`
	Intervals int             `json:"intervals,omitempty"`
}

// decodeBody strictly decodes one JSON request body: size-capped, unknown
// fields rejected, trailing data rejected — the same contract ParseSpec
// applies to the spec object itself, so every front end agrees on what a
// valid input is.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	return decodeStrict(http.MaxBytesReader(w, r.Body, 1<<20), v)
}

// decodeStrict is decodeBody's transport-free core: the exact decoding
// contract applied to every POST body, factored out so the fuzz suites can
// drive it on raw bytes without an HTTP round trip.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after the request object")
	}
	return nil
}

// buildCell resolves one body cell into an engine cell.
func buildCell(c cellRequest) (exp.Cell, error) {
	if len(c.Spec) > 0 {
		if c.Bench != "" {
			return exp.Cell{}, fmt.Errorf("give bench or spec, not both")
		}
		spec, err := workload.ParseSpec(c.Spec)
		if err != nil {
			return exp.Cell{}, err
		}
		return checkCellBounds(exp.Cell{Spec: &spec, Threads: c.Threads, Cores: c.Cores})
	}
	return checkCell(exp.Cell{Bench: c.Bench, Threads: c.Threads, Cores: c.Cores})
}

// simContext derives the context a request waits under.
func (s *Server) simContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.simTimeout <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), s.simTimeout)
}

// modeConfig maps a parsed ?mode= onto the engine request's configuration
// override: nil when the request asks for the engine's own mode (the common
// case, which keeps the base-machine memo key), otherwise the base machine
// re-moded. Fast and exact results never share a cache entry — the memo is
// keyed by the full configuration, Mode included.
func (s *Server) modeConfig(m sim.Mode) *sim.Config {
	cfg := s.engine.Config()
	if m == cfg.Mode {
		return nil
	}
	cfg = cfg.WithMode(m)
	return &cfg
}

// sweep runs cells on the engine (under cfg when non-nil, the base machine
// otherwise), detaching from the request when its context expires: the
// caller gets ctx.Err() promptly (504/408), while the simulations keep
// running in the background and land in the cache — deterministic work is
// never wasted, and a retry of the same request becomes a cache hit.
// Background completion is still bounded by the engine's worker pool and
// the simulator's MaxCycles safety net.
func (s *Server) sweep(ctx context.Context, cells []exp.Cell, cfg *sim.Config) ([]exp.Outcome, error) {
	reqs := make([]exp.Request, len(cells))
	for i, c := range cells {
		reqs[i] = exp.Request{Cell: c, Config: cfg}
	}
	type result struct {
		outs []exp.Outcome
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		outs, err := s.engine.Do(context.Background(), reqs)
		ch <- result{outs, err}
	}()
	select {
	case r := <-ch:
		return r.outs, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// measureIntervals runs one time-resolved cell on the engine with the same
// detach-on-timeout discipline as sweep: the caller gets ctx.Err() promptly
// while the simulation finishes in the background and lands in the interval
// memo, so a retry is a hit.
func (s *Server) measureIntervals(ctx context.Context, req exp.Request, count int) (exp.IntervalOutcome, error) {
	type result struct {
		out exp.IntervalOutcome
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := s.engine.MeasureIntervals(context.Background(), req, count)
		ch <- result{out, err}
	}()
	select {
	case r := <-ch:
		return r.out, r.err
	case <-ctx.Done():
		return exp.IntervalOutcome{}, ctx.Err()
	}
}

// respondSeries encodes a time-resolved stack in the negotiated format.
func (s *Server) respondSeries(w http.ResponseWriter, f stack.Format, out exp.IntervalOutcome) {
	w.Header().Set("Content-Type", f.ContentType())
	stack.EncodeTimeSeries(w, f, out.Series)
}

// respond encodes the outcomes in the negotiated format.
func (s *Server) respond(w http.ResponseWriter, f stack.Format, outs []exp.Outcome) {
	bars := make([]stack.Bar, len(outs))
	for i, out := range outs {
		bars[i] = stack.Bar{Label: out.Bench.FullName(), Stack: out.Stack}
	}
	w.Header().Set("Content-Type", f.ContentType())
	stack.Encode(w, f, bars)
}

// handleStack serves GET /v1/stack: one (benchmark, threads[, cores]) cell,
// in the exact (default) or sampled fast simulation mode.
func (s *Server) handleStack(w http.ResponseWriter, r *http.Request) {
	opts, aerr := parseOptions(r, optionSpec{format: true, cell: true, mode: true})
	if aerr != nil {
		writeError(w, r, aerr)
		return
	}
	ctx, cancel := s.simContext(r)
	defer cancel()
	outs, err := s.sweep(ctx, []exp.Cell{opts.cell}, s.modeConfig(opts.mode))
	if err != nil {
		writeError(w, r, s.simAPIError(err))
		return
	}
	s.respond(w, opts.format, outs)
}

// handleStackIntervals serves GET /v1/stack/intervals: one cell's
// time-resolved speedup stack, the run split into ?intervals=K equal slices
// of its committed ops (default 32). The aggregate outcome and its
// sequential reference share /v1/stack's cache; the interval series has its
// own memo keyed by (cell, K).
func (s *Server) handleStackIntervals(w http.ResponseWriter, r *http.Request) {
	opts, aerr := parseOptions(r, optionSpec{format: true, cell: true, intervals: true, mode: true})
	if aerr != nil {
		writeError(w, r, aerr)
		return
	}
	ctx, cancel := s.simContext(r)
	defer cancel()
	out, err := s.measureIntervals(ctx, exp.Request{Cell: opts.cell, Config: s.modeConfig(opts.mode)}, opts.intervals)
	if err != nil {
		writeError(w, r, s.simAPIError(err))
		return
	}
	s.respondSeries(w, opts.format, out)
}

// sweepRequest is the POST /v1/sweep body.
type sweepRequest struct {
	Cells []cellRequest `json:"cells"`
}

// handleSweep serves POST /v1/sweep: a batch of cells in one engine pass,
// deduplicated against each other and the cache. ?mode=fast applies to
// every cell in the batch.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	opts, aerr := parseOptions(r, optionSpec{format: true, mode: true})
	if aerr != nil {
		writeError(w, r, aerr)
		return
	}
	var req sweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, r, badRequest("bad body: %v", err))
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, r, badRequest("empty cell list"))
		return
	}
	if len(req.Cells) > s.maxSweepCells {
		writeError(w, r, badRequest("%d cells exceeds the %d-cell batch limit",
			len(req.Cells), s.maxSweepCells))
		return
	}
	cells := make([]exp.Cell, len(req.Cells))
	for i, c := range req.Cells {
		// Cell indices in error prefixes are 0-based positions in the
		// declared JSON array — the contract exp.CellErrorIndexBase pins.
		if c.Intervals != 0 {
			writeError(w, r, badRequest(
				"cell %d: sweeps return aggregate stacks; use /v1/stack/intervals or /v1/workloads/analyze for a time-resolved one",
				exp.CellErrorIndexBase+i))
			return
		}
		cell, err := buildCell(c)
		if err != nil {
			ae := asAPIError(err)
			ae.Message = fmt.Sprintf("cell %d: %s", exp.CellErrorIndexBase+i, ae.Message)
			writeError(w, r, ae)
			return
		}
		cells[i] = cell
	}
	if opts.format == stack.FormatNDJSON {
		s.streamSweep(w, r, cells, s.modeConfig(opts.mode))
		return
	}
	ctx, cancel := s.simContext(r)
	defer cancel()
	outs, err := s.sweep(ctx, cells, s.modeConfig(opts.mode))
	if err != nil {
		writeError(w, r, s.simAPIError(err))
		return
	}
	s.respond(w, opts.format, outs)
}

// streamSweep answers an NDJSON sweep as a stream: one compact ReportRow
// line per cell, in the declared cell order, each flushed onto the wire as
// soon as that cell's result (and its predecessors') are available. Every
// cell runs as its own engine request with the usual detach-on-timeout
// discipline, so large batches start answering with their first completed
// rows instead of buffering the whole sweep, and a timeout still leaves
// the finished work in the cache. A failure before the first row is the
// normal error response; after rows are on the wire the status is already
// 200, so the envelope becomes the terminating line of the stream —
// NDJSON consumers must treat a line with an "error" key as a failed tail.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, cells []exp.Cell, cfg *sim.Config) {
	ctx, cancel := s.simContext(r)
	defer cancel()
	type result struct {
		out exp.Outcome
		err error
	}
	results := make([]chan result, len(cells))
	for i := range cells {
		results[i] = make(chan result, 1)
		go func(i int, c exp.Cell) {
			outs, err := s.sweep(ctx, []exp.Cell{c}, cfg)
			if err != nil {
				results[i] <- result{err: err}
				return
			}
			results[i] <- result{out: outs[0]}
		}(i, cells[i])
	}
	flusher, _ := w.(http.Flusher)
	wrote := false
	for i := range results {
		res := <-results[i]
		if res.err != nil {
			ae := s.simAPIError(res.err)
			ae.Message = fmt.Sprintf("cell %d: %s", exp.CellErrorIndexBase+i, ae.Message)
			if !wrote {
				writeError(w, r, ae)
				return
			}
			json.NewEncoder(w).Encode(errorEnvelope{Error: errorBody{
				Code: ae.Code, Message: ae.Message, Suggestion: ae.Suggestion}})
			return
		}
		if !wrote {
			w.Header().Set("Content-Type", stack.FormatNDJSON.ContentType())
			wrote = true
		}
		stack.EncodeRowNDJSON(w, stack.Row(stack.Bar{Label: res.out.Bench.FullName(), Stack: res.out.Stack}))
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleAnalyze serves POST /v1/workloads/analyze: one inline custom
// workload at a thread count, measured end-to-end. It is the
// bring-your-own-benchmark twin of GET /v1/stack and shares its cache: the
// engine keys on the spec's canonical fingerprint, so repeating a spec —
// under any name, inline or registered — is a cache hit.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	opts, aerr := parseOptions(r, optionSpec{format: true, mode: true})
	if aerr != nil {
		writeError(w, r, aerr)
		return
	}
	var req cellRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, r, badRequest("bad body: %v", err))
		return
	}
	if len(req.Spec) == 0 {
		writeError(w, r, badRequest("missing spec (POST {\"spec\":{...},\"threads\":N})"))
		return
	}
	if req.Bench != "" {
		writeError(w, r, badRequest("analyze takes a spec, not a bench name (use /v1/stack)"))
		return
	}
	count := 0
	if req.Intervals != 0 {
		var err error
		if count, err = parseIntervals("", req.Intervals); err != nil {
			writeError(w, r, badRequest("%v", err))
			return
		}
	}
	cell, err := buildCell(req)
	if err != nil {
		writeError(w, r, asAPIError(err))
		return
	}
	ctx, cancel := s.simContext(r)
	defer cancel()
	if count > 0 {
		// Time-resolved analysis of the custom spec, sharing /v1/stack/
		// intervals' memo and the aggregate's fingerprint-keyed cache.
		out, err := s.measureIntervals(ctx, exp.Request{Cell: cell, Config: s.modeConfig(opts.mode)}, count)
		if err != nil {
			writeError(w, r, s.simAPIError(err))
			return
		}
		s.respondSeries(w, opts.format, out)
		return
	}
	outs, err := s.sweep(ctx, []exp.Cell{cell}, s.modeConfig(opts.mode))
	if err != nil {
		writeError(w, r, s.simAPIError(err))
		return
	}
	s.respond(w, opts.format, outs)
}

// validateResponse is the POST /v1/workloads/validate answer.
type validateResponse struct {
	Valid bool   `json:"valid"`
	Error string `json:"error,omitempty"`
	// Fingerprint is the canonical workload identity (the cache key) and
	// Canonical the normalized spec it hashes; both only when valid.
	Fingerprint string         `json:"fingerprint,omitempty"`
	Name        string         `json:"name,omitempty"`
	Canonical   *workload.Spec `json:"canonical,omitempty"`
}

// handleValidate serves POST /v1/workloads/validate: a dry run of the spec
// pipeline. The body is the bare workload spec JSON (the same bytes the
// speedup-stack CLI takes via -spec); nothing is simulated. A syntactically
// readable but invalid spec answers 200 with valid=false and the actionable
// validation error, so CI pipelines can lint spec files cheaply.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	if _, aerr := parseOptions(r, optionSpec{}); aerr != nil {
		writeError(w, r, aerr)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, r, badRequest("reading body: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	spec, err := workload.ParseSpec(data)
	if err != nil {
		enc.Encode(validateResponse{Valid: false, Error: err.Error()})
		return
	}
	enc.Encode(validateResponse{
		Valid:       true,
		Fingerprint: spec.Fingerprint().String(),
		Name:        workload.Benchmark{Spec: spec}.FullName(),
		Canonical:   &spec,
	})
}

// advise runs the advisor's memoized thread sweep on the engine with the
// same detach-on-timeout discipline as sweep: the caller gets ctx.Err()
// promptly while the sweep finishes in the background and lands in the
// cell memo, so a retry is mostly (or entirely) cache hits.
func (s *Server) advise(ctx context.Context, req exp.Request, maxThreads int) (scaling.Advice, error) {
	type result struct {
		a   scaling.Advice
		err error
	}
	ch := make(chan result, 1)
	go func() {
		a, err := s.engine.Advise(context.Background(), req, maxThreads)
		ch <- result{a, err}
	}()
	select {
	case r := <-ch:
		return r.a, r.err
	case <-ctx.Done():
		return scaling.Advice{}, ctx.Err()
	}
}

// handleAdvise serves GET /v1/advise: the scaling advisor for one
// registered benchmark. The sweep's cells ride the same fingerprint-keyed
// memo as every other endpoint, so advising a benchmark that has already
// been measured reuses those runs, and repeating an advise is free.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	opts, aerr := parseOptions(r, optionSpec{format: true, advise: true, mode: true})
	if aerr != nil {
		writeError(w, r, aerr)
		return
	}
	ctx, cancel := s.simContext(r)
	defer cancel()
	a, err := s.advise(ctx, exp.Request{Cell: opts.cell, Config: s.modeConfig(opts.mode)}, opts.maxThreads)
	if err != nil {
		writeError(w, r, s.simAPIError(err))
		return
	}
	w.Header().Set("Content-Type", opts.format.ContentType())
	scaling.Encode(w, opts.format, a)
}

// whatifRequest is the POST /v1/whatif body: a cell (bench or inline spec,
// threads, optional cores) plus an optional list of catalog intervention
// IDs; absent means the full catalog.
type whatifRequest struct {
	Bench         string          `json:"bench,omitempty"`
	Spec          json.RawMessage `json:"spec,omitempty"`
	Threads       int             `json:"threads"`
	Cores         int             `json:"cores,omitempty"`
	Interventions []string        `json:"interventions,omitempty"`
}

// parseWhatIf resolves a decoded what-if body into an engine cell and the
// requested intervention IDs, applying the same cell bounds as every other
// endpoint plus the what-if floor (a single-threaded run has no scaling gap
// to attribute). It performs no simulation, so the fuzz suite can drive it
// on arbitrary bodies; intervention IDs are resolved here too, so unknown
// ones fail before any simulation is spent.
func parseWhatIf(req whatifRequest) (exp.Cell, []string, error) {
	cell, err := buildCell(cellRequest{Bench: req.Bench, Spec: req.Spec, Threads: req.Threads, Cores: req.Cores})
	if err != nil {
		return exp.Cell{}, nil, err
	}
	if req.Threads < exp.MinWhatIfThreads {
		return exp.Cell{}, nil, badRequest("what-if needs threads >= %d (a single-threaded run has no scaling gap), got %d",
			exp.MinWhatIfThreads, req.Threads)
	}
	for _, id := range req.Interventions {
		if _, err := whatif.ByID(id); err != nil {
			return exp.Cell{}, nil, err
		}
	}
	return cell, req.Interventions, nil
}

// whatIf runs the what-if engine with the same detach-on-timeout discipline
// as sweep: the caller gets ctx.Err() promptly while the baseline and
// mutated cells finish in the background and land in the memo, so a retry
// is mostly (or entirely) cache hits.
func (s *Server) whatIf(ctx context.Context, cell exp.Cell, ids []string) (whatif.Report, error) {
	type result struct {
		rep whatif.Report
		err error
	}
	ch := make(chan result, 1)
	go func() {
		rep, err := s.engine.WhatIf(context.Background(), exp.Request{Cell: cell}, ids)
		ch <- result{rep, err}
	}()
	select {
	case r := <-ch:
		return r.rep, r.err
	case <-ctx.Done():
		return whatif.Report{}, ctx.Err()
	}
}

// handleWhatIf serves POST /v1/whatif: the causal what-if report for one
// cell — each applicable catalog intervention predicted by re-evaluating
// the estimator with its components scaled, validated by re-simulating the
// mutated spec/machine, and ranked by predicted gain. Everything rides the
// fingerprint-keyed memo, so repeating a request simulates nothing new.
func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	opts, aerr := parseOptions(r, optionSpec{format: true})
	if aerr != nil {
		writeError(w, r, aerr)
		return
	}
	var req whatifRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, r, badRequest("bad body: %v", err))
		return
	}
	cell, ids, err := parseWhatIf(req)
	if err != nil {
		writeError(w, r, asAPIError(err))
		return
	}
	ctx, cancel := s.simContext(r)
	defer cancel()
	rep, err := s.whatIf(ctx, cell, ids)
	if err != nil {
		if errors.Is(err, whatif.ErrUnknownIntervention) {
			writeError(w, r, asAPIError(err))
			return
		}
		writeError(w, r, s.simAPIError(err))
		return
	}
	w.Header().Set("Content-Type", opts.format.ContentType())
	whatif.Encode(w, opts.format, rep)
}

// handleBenchmarks serves GET /v1/benchmarks.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	if _, aerr := parseOptions(r, optionSpec{}); aerr != nil {
		writeError(w, r, aerr)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string][]string{"benchmarks": workload.Names()})
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves GET /metrics in Prometheus text exposition format:
// per-route request counts, per-code response counts, and the engine's
// simulation/cache counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.engine.Stats()
	s.mu.Lock()
	routes := make([]string, 0, len(s.requests))
	for p := range s.requests {
		routes = append(routes, p)
	}
	sort.Strings(routes)
	codes := make([]int, 0, len(s.responses))
	for c := range s.responses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, p := range routes {
		fmt.Fprintf(w, "speedupd_requests_total{path=%q} %d\n", p, s.requests[p])
	}
	for _, c := range codes {
		fmt.Fprintf(w, "speedupd_responses_total{code=\"%d\"} %d\n", c, s.responses[c])
	}
	s.mu.Unlock()
	fmt.Fprintf(w, "speedupd_sim_cell_runs_total %d\n", st.CellRuns)
	// Sampled (fast-mode) vs exact cell runs, so operators can see which
	// fidelity is paying the simulation bill. The two always sum to
	// speedupd_sim_cell_runs_total.
	fmt.Fprintf(w, "speedupd_sim_cell_runs_exact_total %d\n", st.CellRuns-st.FastCellRuns)
	fmt.Fprintf(w, "speedupd_sim_cell_runs_fast_total %d\n", st.FastCellRuns)
	fmt.Fprintf(w, "speedupd_sim_cell_memo_hits_total %d\n", st.CellHits)
	fmt.Fprintf(w, "speedupd_sim_seq_runs_total %d\n", st.SeqRuns)
	fmt.Fprintf(w, "speedupd_sim_seq_memo_hits_total %d\n", st.SeqHits)
	fmt.Fprintf(w, "speedupd_sim_cell_evictions_total %d\n", st.CellEvictions)
	// Cache occupancy next to the churn counters: how full the cell memo is
	// against its configured bound (limit 0 = unbounded), so operators can
	// size CacheCells from live data instead of eviction archaeology.
	fmt.Fprintf(w, "speedupd_sim_cell_memo_entries %d\n", st.CellMemoEntries)
	fmt.Fprintf(w, "speedupd_sim_cell_memo_limit %d\n", st.CellMemoLimit)
	fmt.Fprintf(w, "speedupd_sim_interval_runs_total %d\n", st.IntervalRuns)
	fmt.Fprintf(w, "speedupd_sim_interval_memo_hits_total %d\n", st.IntervalHits)
	fmt.Fprintf(w, "speedupd_sim_interval_evictions_total %d\n", st.IntervalEvictions)
	fmt.Fprintf(w, "speedupd_sim_inflight %d\n", st.InFlight)
	// Protection-layer counters: requests shed at the admission gate, shed
	// by the per-client rate limiter, and the currently admitted count.
	s.mu.Lock()
	shed, limited := s.shed, s.rateLimited
	s.mu.Unlock()
	fmt.Fprintf(w, "speedupd_throttled_total{reason=\"overloaded\"} %d\n", shed)
	fmt.Fprintf(w, "speedupd_throttled_total{reason=\"rate_limited\"} %d\n", limited)
	fmt.Fprintf(w, "speedupd_admitted_inflight %d\n", s.adm.inflight())
	hitRate := 0.0
	if lookups := st.CellRuns + st.CellHits; lookups > 0 {
		hitRate = float64(st.CellHits) / float64(lookups)
	}
	fmt.Fprintf(w, "speedupd_cache_hit_rate %.4f\n", hitRate)
	// Simulator throughput: cumulative trace ops executed by the engine's
	// simulations, and the lifetime average rate, so operators can see
	// whether the simulator itself (rather than caching) is the bottleneck.
	fmt.Fprintf(w, "speedupd_simulated_ops_total %d\n", st.SimulatedOps)
	opsPerSec := 0.0
	if up := time.Since(s.started).Seconds(); up > 0 {
		opsPerSec = float64(st.SimulatedOps) / up
	}
	fmt.Fprintf(w, "speedupd_simulated_ops_per_second %.1f\n", opsPerSec)
}

// Serve runs h on l until ctx is canceled, then shuts down gracefully:
// in-flight requests get up to drain to finish before connections are
// forced closed. A clean shutdown returns nil.
func Serve(ctx context.Context, l net.Listener, h http.Handler, drain time.Duration) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, drain)
		defer cancel()
	}
	err := srv.Shutdown(sctx)
	<-errc // srv.Serve has returned http.ErrServerClosed
	return err
}
