package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/stack"
)

// TestStackModeFast pins the ?mode=fast contract on /v1/stack: the request
// succeeds, runs a sampled simulation (visible in the engine's fast-run
// counter), never shares a cache entry with the exact result, and is itself
// memoized like any other cell.
func TestStackModeFast(t *testing.T) {
	s, sims := newTestServer(t)
	base := "/v1/stack?bench=" + testBench + "&threads=2"

	w := get(t, s.Handler(), base+"&mode=fast")
	if w.Code != http.StatusOK {
		t.Fatalf("fast: status %d: %s", w.Code, w.Body)
	}
	var rows []stack.ReportRow
	if err := json.Unmarshal(w.Body.Bytes(), &rows); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rows) != 1 || rows[0].Actual <= 0 {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	if st := s.Engine().Stats(); st.CellRuns != 1 || st.FastCellRuns != 1 {
		t.Fatalf("fast run not counted: %+v", st)
	}

	// The exact result must be simulated separately — fast and exact never
	// share a memo entry.
	if w := get(t, s.Handler(), base); w.Code != http.StatusOK {
		t.Fatalf("exact: status %d: %s", w.Code, w.Body)
	}
	if *sims != 2 {
		t.Fatalf("exact request after fast ran %d simulations, want 2", *sims)
	}
	// An explicit mode=exact is the same cell as the default.
	if w := get(t, s.Handler(), base+"&mode=exact"); w.Code != http.StatusOK {
		t.Fatalf("mode=exact: status %d: %s", w.Code, w.Body)
	}
	// Repeating the fast request is a memo hit, not a third simulation.
	if w := get(t, s.Handler(), base+"&mode=fast"); w.Code != http.StatusOK {
		t.Fatalf("fast repeat: status %d: %s", w.Code, w.Body)
	}
	if *sims != 2 {
		t.Fatalf("repeats re-simulated: %d runs, want 2", *sims)
	}
}

// TestModeBogus pins the failure shape: an unknown mode is a 400 with the
// uniform invalid_argument envelope on every mode-accepting endpoint.
func TestModeBogus(t *testing.T) {
	s, _ := newTestServer(t)
	targets := []string{
		"/v1/stack?bench=" + testBench + "&threads=2&mode=bogus",
		"/v1/stack/intervals?bench=" + testBench + "&threads=2&mode=bogus",
		"/v1/advise?bench=" + testBench + "&mode=bogus",
	}
	for _, target := range targets {
		w := get(t, s.Handler(), target)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", target, w.Code, w.Body)
			continue
		}
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Errorf("%s: bad envelope: %v", target, err)
			continue
		}
		if env.Error.Code != "invalid_argument" || !strings.Contains(env.Error.Message, "bogus") {
			t.Errorf("%s: envelope %+v", target, env.Error)
		}
	}
	// POST endpoints share the same parser; one representative each.
	for _, target := range []string{"/v1/sweep?mode=bogus", "/v1/workloads/analyze?mode=bogus"} {
		w := post(t, s.Handler(), target, `{}`)
		if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "invalid_argument") {
			t.Errorf("%s: status %d, body %s", target, w.Code, w.Body)
		}
	}
	// Endpoints without the mode option reject it as unknown.
	if w := get(t, s.Handler(), "/v1/benchmarks?mode=fast"); w.Code != http.StatusBadRequest ||
		!strings.Contains(w.Body.String(), "unknown_parameter") {
		t.Errorf("/v1/benchmarks?mode=fast: status %d, body %s", w.Code, w.Body)
	}
	if st := s.Engine().Stats(); st.CellRuns != 0 {
		t.Errorf("bad modes ran %d simulations", st.CellRuns)
	}
}

// TestModeMetricsSplit pins the /metrics fidelity split: fast and exact
// cell runs are counted separately and sum to the total.
func TestModeMetricsSplit(t *testing.T) {
	s, _ := newTestServer(t)
	base := "/v1/stack?bench=" + testBench + "&threads=2"
	for _, target := range []string{base, base + "&mode=fast"} {
		if w := get(t, s.Handler(), target); w.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", target, w.Code, w.Body)
		}
	}
	body := get(t, s.Handler(), "/metrics").Body.String()
	for _, want := range []string{
		"speedupd_sim_cell_runs_total 2",
		"speedupd_sim_cell_runs_exact_total 1",
		"speedupd_sim_cell_runs_fast_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestSweepAndAnalyzeModeFast drives ?mode=fast through the POST surface:
// a sweep batch where every cell runs sampled, and an inline-spec analyze.
func TestSweepAndAnalyzeModeFast(t *testing.T) {
	s, _ := newTestServer(t)
	body := `{"cells":[{"bench":"` + testBench + `","threads":2},{"bench":"` + testBench + `","threads":4}]}`
	w := post(t, s.Handler(), "/v1/sweep?mode=fast", body)
	if w.Code != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", w.Code, w.Body)
	}
	var rows []stack.ReportRow
	if err := json.Unmarshal(w.Body.Bytes(), &rows); err != nil || len(rows) != 2 {
		t.Fatalf("sweep rows: %v, %+v", err, rows)
	}
	if st := s.Engine().Stats(); st.FastCellRuns != st.CellRuns {
		t.Fatalf("sweep cells not all fast: %+v", st)
	}

	spec := `{"spec":{"name":"svc-fast","kind":"data_parallel","array_bytes":524288,
		"sweeps_per_phase":1,"phases":1,"instr_per_access":2500,"store_frac":0.1,"seed":5},"threads":2}`
	w = post(t, s.Handler(), "/v1/workloads/analyze?mode=fast", spec)
	if w.Code != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", w.Code, w.Body)
	}
	if st := s.Engine().Stats(); st.FastCellRuns != st.CellRuns {
		t.Fatalf("analyze cell not fast: %+v", st)
	}
}
