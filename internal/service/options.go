package service

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// Query-option parsing shared by every /v1 handler. Each endpoint declares
// which parameters it accepts via an optionSpec; one parser enforces the
// declaration, negotiates the format, and applies the bounds, so endpoints
// cannot drift apart — and any parameter outside the declaration is a 400,
// never silently ignored (a misspelled ?thread=8 would otherwise measure
// the wrong cell without complaint).

// optionSpec declares an endpoint's accepted query parameters.
type optionSpec struct {
	// format accepts ?format= and Accept-header negotiation. Endpoints
	// without it always answer JSON.
	format bool
	// cell accepts bench, threads and cores — the single-cell GET shape.
	cell bool
	// intervals accepts the interval count of a time-resolved request.
	intervals bool
	// advise accepts bench and max_threads — the advisor GET shape.
	advise bool
	// mode accepts ?mode=exact|fast, the simulation fidelity. Endpoints
	// without it always simulate in the engine's own mode.
	mode bool
	// traceCell accepts cores — the trace-analyze shape. Threads are not a
	// parameter: a trace replays at its recorded thread count.
	traceCell bool
}

// params lists the accepted parameter names, sorted, for error messages.
func (o optionSpec) params() []string {
	var names []string
	if o.format {
		names = append(names, "format")
	}
	if o.cell {
		names = append(names, "bench", "threads", "cores")
	}
	if o.intervals {
		names = append(names, "intervals")
	}
	if o.advise {
		names = append(names, "bench", "max_threads")
	}
	if o.mode {
		names = append(names, "mode")
	}
	if o.traceCell {
		names = append(names, "cores")
	}
	sort.Strings(names)
	return names
}

// requestOptions are the parsed, validated options of one request.
type requestOptions struct {
	format     stack.Format
	cell       exp.Cell
	intervals  int
	maxThreads int
	mode       sim.Mode
	cores      int
}

// parseOptions parses and validates the request's query string against the
// endpoint's declaration. Unknown parameters, malformed values and
// out-of-bounds shapes all come back as apiErrors ready for writeError.
func parseOptions(r *http.Request, spec optionSpec) (requestOptions, *apiError) {
	q := r.URL.Query()
	allowed := make(map[string]bool, 6)
	for _, name := range spec.params() {
		allowed[name] = true
	}
	given := make([]string, 0, len(q))
	for name := range q {
		given = append(given, name)
	}
	sort.Strings(given)
	for _, name := range given {
		if !allowed[name] {
			accepts := "no query parameters"
			if len(allowed) > 0 {
				accepts = strings.Join(spec.params(), ", ")
			}
			return requestOptions{}, &apiError{Status: http.StatusBadRequest, Code: codeUnknownParameter,
				Message: fmt.Sprintf("unknown query parameter %q (%s accepts %s)", name, r.URL.Path, accepts)}
		}
	}

	opts := requestOptions{format: stack.FormatJSON}
	if spec.format {
		f, err := stack.NegotiateFormat(q.Get("format"), r.Header.Get("Accept"), stack.FormatJSON)
		if err != nil {
			return requestOptions{}, badRequest("%v", err)
		}
		opts.format = f
	}
	if spec.cell {
		cell, err := parseCell(q.Get("bench"), q.Get("threads"), q.Get("cores"))
		if err != nil {
			return requestOptions{}, asAPIError(err)
		}
		opts.cell = cell
	}
	if spec.intervals {
		n, err := parseIntervals(q.Get("intervals"), 0)
		if err != nil {
			return requestOptions{}, badRequest("%v", err)
		}
		opts.intervals = n
	}
	if spec.advise {
		bench := q.Get("bench")
		if bench == "" {
			return requestOptions{}, badRequest("missing bench parameter")
		}
		b, ok := workload.ByName(bench)
		if !ok {
			return requestOptions{}, asAPIError(workload.UnknownBenchmarkError(bench))
		}
		opts.cell = exp.Cell{Bench: b.FullName()}
		opts.maxThreads = defaultAdviseThreads
		if s := q.Get("max_threads"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				return requestOptions{}, badRequest("bad max_threads %q: %v", s, err)
			}
			if n < exp.MinAdviseThreads || n > exp.MaxAdviseThreads {
				return requestOptions{}, badRequest("max_threads must be in [%d,%d], got %d",
					exp.MinAdviseThreads, exp.MaxAdviseThreads, n)
			}
			opts.maxThreads = n
		}
	}
	if spec.mode {
		m, err := sim.ParseMode(q.Get("mode"))
		if err != nil {
			return requestOptions{}, badRequest("%v", err)
		}
		opts.mode = m
	}
	if spec.traceCell {
		if s := q.Get("cores"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				return requestOptions{}, badRequest("bad cores %q: %v", s, err)
			}
			opts.cores = n
		}
	}
	return opts, nil
}

// parseCell validates one requested cell from query parameters.
func parseCell(bench, threadsStr, coresStr string) (exp.Cell, error) {
	if bench == "" {
		return exp.Cell{}, fmt.Errorf("missing bench parameter")
	}
	threads, err := strconv.Atoi(threadsStr)
	if err != nil {
		return exp.Cell{}, fmt.Errorf("bad threads %q: %v", threadsStr, err)
	}
	cores := 0
	if coresStr != "" {
		if cores, err = strconv.Atoi(coresStr); err != nil {
			return exp.Cell{}, fmt.Errorf("bad cores %q: %v", coresStr, err)
		}
	}
	return checkCell(exp.Cell{Bench: bench, Threads: threads, Cores: cores})
}

// checkCell validates a named cell (shared by the query and body paths) and
// normalizes plain-name aliases ("cholesky") to canonical full names, so
// response labels are canonical. An unregistered name fails with a
// workload.BenchmarkLookupError (carrying the nearest-name suggestion),
// which asAPIError maps to HTTP 404.
func checkCell(c exp.Cell) (exp.Cell, error) {
	b, ok := workload.ByName(c.Bench)
	if !ok {
		return exp.Cell{}, workload.UnknownBenchmarkError(c.Bench)
	}
	c.Bench = b.FullName()
	return checkCellBounds(c)
}

// checkCellBounds enforces the run-shape limits shared by named and inline
// cells. The 64-core ceiling is the simulator's hard limit
// (sim.Config.Validate), which holds for every machine configuration the
// service can be built with.
func checkCellBounds(c exp.Cell) (exp.Cell, error) {
	if c.Threads < 1 || c.Threads > 256 {
		return exp.Cell{}, fmt.Errorf("threads must be in [1,256], got %d", c.Threads)
	}
	if c.Cores < 0 || c.Cores > 64 {
		return exp.Cell{}, fmt.Errorf("cores must be in [0,64], got %d", c.Cores)
	}
	// Cores defaults to threads (the paper's pairing), so a bare thread
	// count must itself fit the simulator's core limit.
	if c.Cores == 0 && c.Threads > 64 {
		return exp.Cell{}, fmt.Errorf("threads %d exceeds the simulator's 64-core limit; pass an explicit cores", c.Threads)
	}
	return c, nil
}

// parseIntervals validates an interval count. s is the query value (absent
// when empty), body the decoded body field (absent when zero); an absent
// count selects the default, an explicit one must be in range.
func parseIntervals(s string, body int) (int, error) {
	n := body
	if s != "" {
		var err error
		if n, err = strconv.Atoi(s); err != nil {
			return 0, fmt.Errorf("bad intervals %q: %v", s, err)
		}
	} else if n == 0 {
		return defaultIntervals, nil
	}
	if n < 1 || n > maxIntervals {
		return 0, fmt.Errorf("intervals must be in [1,%d], got %d", maxIntervals, n)
	}
	return n, nil
}
