package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stack"
)

// testBench is cheap to simulate, keeping the handler tests fast.
const testBench = "blackscholes_parsec_small"

// newTestServer wires a server to an engine whose actual simulations are
// counted.
func newTestServer(t *testing.T, opts ...exp.Option) (*Server, *int32) {
	t.Helper()
	var sims int32
	opts = append([]exp.Option{
		exp.WithWorkers(2),
		exp.WithRunHook(func(kind, bench string, threads, cores int) {
			if kind == "cell" {
				atomic.AddInt32(&sims, 1)
			}
		}),
	}, opts...)
	e := exp.NewEngine(sim.Default(), opts...)
	return New(Options{Engine: e}), &sims
}

func get(t *testing.T, h http.Handler, target string, hdr ...string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestStackEndpointJSON(t *testing.T) {
	s, _ := newTestServer(t)
	w := get(t, s.Handler(), "/v1/stack?bench="+testBench+"&threads=2")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	var rows []stack.ReportRow
	if err := json.Unmarshal(w.Body.Bytes(), &rows); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rows) != 1 || rows[0].Benchmark != testBench || rows[0].Threads != 2 {
		t.Errorf("unexpected rows: %+v", rows)
	}
	if rows[0].Actual <= 0 || rows[0].Estimated <= 0 {
		t.Errorf("speedups not populated: %+v", rows[0])
	}
}

func TestStackFormatNegotiation(t *testing.T) {
	s, _ := newTestServer(t)
	base := "/v1/stack?bench=" + testBench + "&threads=2"

	w := get(t, s.Handler(), base+"&format=svg")
	if w.Code != http.StatusOK || !strings.HasPrefix(w.Body.String(), "<svg") {
		t.Errorf("svg: status %d, body %.40q", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("svg content type %q", ct)
	}

	w = get(t, s.Handler(), base, "Accept", "text/csv")
	if w.Code != http.StatusOK || !strings.HasPrefix(w.Body.String(), "label,threads,") {
		t.Errorf("csv via Accept: status %d, body %.40q", w.Code, w.Body.String())
	}

	// The explicit query parameter beats Accept.
	w = get(t, s.Handler(), base+"&format=text", "Accept", "text/csv")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "legend:") {
		t.Errorf("text via query: status %d", w.Code)
	}
}

func TestStackBadParams(t *testing.T) {
	s, _ := newTestServer(t)
	cases := []string{
		"/v1/stack",                    // missing bench + threads
		"/v1/stack?bench=" + testBench, // missing threads
		"/v1/stack?bench=" + testBench + "&threads=zero", // non-numeric
		"/v1/stack?bench=" + testBench + "&threads=0",    // out of range
		"/v1/stack?bench=" + testBench + "&threads=65",   // exceeds cores
		"/v1/stack?bench=" + testBench + "&threads=2&cores=65",
		"/v1/stack?bench=" + testBench + "&threads=2&format=bogus",
	}
	for _, target := range cases {
		if w := get(t, s.Handler(), target); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", target, w.Code, w.Body)
		}
	}
	if w := get(t, s.Handler(), "/v1/sweep"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweep: status %d, want 405", w.Code)
	}
	// A failed request must not have cost a simulation.
	if st := s.Engine().Stats(); st.CellRuns != 0 {
		t.Errorf("bad params ran %d simulations", st.CellRuns)
	}
}

// TestStackUnknownBenchmark404 pins the contract for a missing resource: a
// well-formed request naming an unregistered benchmark is 404 (not 400),
// and a near-miss name carries the nearest registered name.
func TestStackUnknownBenchmark404(t *testing.T) {
	s, _ := newTestServer(t)
	w := get(t, s.Handler(), "/v1/stack?bench=nosuch&threads=2")
	if w.Code != http.StatusNotFound {
		t.Errorf("status %d, want 404 (%s)", w.Code, w.Body)
	}
	w = get(t, s.Handler(), "/v1/stack?bench=choleski&threads=2")
	if w.Code != http.StatusNotFound {
		t.Errorf("typo'd name: status %d, want 404", w.Code)
	}
	if body := w.Body.String(); !strings.Contains(body, `did you mean \"cholesky\"?`) {
		t.Errorf("no nearest-name suggestion in %q", body)
	}
	if st := s.Engine().Stats(); st.CellRuns != 0 {
		t.Errorf("404s ran %d simulations", st.CellRuns)
	}
}

// TestSingleflightCollapse is the acceptance check: concurrent identical
// requests produce exactly one underlying simulation and identical bodies.
func TestSingleflightCollapse(t *testing.T) {
	s, sims := newTestServer(t)
	const clients = 8
	target := "/v1/stack?bench=" + testBench + "&threads=4"

	bodies := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := get(t, s.Handler(), target)
			if w.Code != http.StatusOK {
				t.Errorf("client %d: status %d", i, w.Code)
			}
			bodies[i] = w.Body.String()
		}(i)
	}
	wg.Wait()

	if got := atomic.LoadInt32(sims); got != 1 {
		t.Errorf("%d concurrent identical requests ran %d simulations, want 1", clients, got)
	}
	for i := 1; i < clients; i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("client %d body differs from client 0", i)
		}
	}
}

func TestCacheHitOnRepeat(t *testing.T) {
	s, sims := newTestServer(t)
	target := "/v1/stack?bench=" + testBench + "&threads=2"
	first := get(t, s.Handler(), target)
	second := get(t, s.Handler(), target)
	if first.Code != 200 || second.Code != 200 {
		t.Fatalf("statuses %d, %d", first.Code, second.Code)
	}
	if first.Body.String() != second.Body.String() {
		t.Errorf("cached response differs")
	}
	if got := atomic.LoadInt32(sims); got != 1 {
		t.Errorf("repeat request re-simulated (%d runs)", got)
	}
	m := get(t, s.Handler(), "/metrics").Body.String()
	for _, want := range []string{
		"speedupd_sim_cell_runs_total 1",
		"speedupd_sim_cell_memo_hits_total 1",
		`speedupd_requests_total{path="/v1/stack"} 2`,
		"speedupd_cache_hit_rate 0.5000",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}

func TestSweepEndpoint(t *testing.T) {
	s, sims := newTestServer(t)
	// Three declared cells, two identical and one a plain-name alias: the
	// engine must run exactly two simulations, and the alias must come
	// back under its canonical full name (the registry's first match).
	body := fmt.Sprintf(`{"cells":[
		{"bench":%q,"threads":2},
		{"bench":%q,"threads":2},
		{"bench":"swaptions","threads":2}]}`, testBench, testBench)
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var rows []stack.ReportRow
	if err := json.Unmarshal(w.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Benchmark != testBench || rows[1].Benchmark != testBench {
		t.Errorf("unexpected rows: %+v", rows)
	}
	if len(rows) == 3 && rows[2].Benchmark != "swaptions_parsec_medium" {
		t.Errorf("alias not normalized: %q", rows[2].Benchmark)
	}
	if got := atomic.LoadInt32(sims); got != 2 {
		t.Errorf("sweep ran %d simulations, want 2 (dedup)", got)
	}
}

func TestSweepBadRequests(t *testing.T) {
	s, _ := newTestServer(t)
	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w
	}
	for _, body := range []string{
		``, `not json`, `{"cells":[]}`,
		`{"cells":[{"bench":"blackscholes","threads":0}]}`,
		`{"unknown":1}`,
	} {
		if w := post(body); w.Code != http.StatusBadRequest {
			t.Errorf("body %.30q: status %d, want 400", body, w.Code)
		}
	}
	// An unknown benchmark inside a batch is the same missing resource as
	// on the single-cell path: 404 with the cell index prefixed.
	if w := post(`{"cells":[{"bench":"nosuch","threads":2}]}`); w.Code != http.StatusNotFound {
		t.Errorf("unknown bench in batch: status %d, want 404 (%s)", w.Code, w.Body)
	} else if e := decodeEnvelope(t, w); e.Code != "unknown_benchmark" || !strings.HasPrefix(e.Message, "cell 0:") {
		t.Errorf("unexpected envelope: %+v", e)
	}
	// Batch limit.
	srv := New(Options{Engine: s.Engine(), MaxSweepCells: 2})
	var cells []string
	for i := 0; i < 3; i++ {
		cells = append(cells, fmt.Sprintf(`{"bench":%q,"threads":%d}`, testBench, i+2))
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep",
		strings.NewReader(`{"cells":[`+strings.Join(cells, ",")+`]}`))
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("over-limit batch: status %d, want 400", w.Code)
	}
}

func TestBenchmarksAndHealthz(t *testing.T) {
	s, _ := newTestServer(t)
	w := get(t, s.Handler(), "/v1/benchmarks")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var resp map[string][]string
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp["benchmarks"]) < 20 {
		t.Errorf("only %d benchmarks listed", len(resp["benchmarks"]))
	}
	if w := get(t, s.Handler(), "/healthz"); w.Code != 200 || w.Body.String() != "ok\n" {
		t.Errorf("healthz: %d %q", w.Code, w.Body.String())
	}
}

// testSpecJSON is a custom workload the registry has never seen, cheap
// enough for handler tests.
const testSpecJSON = `{"name":"svc-kernel","kind":"data_parallel",
	"array_bytes":524288,"sweeps_per_phase":1,"phases":1,
	"instr_per_access":2500,"store_frac":0.1,"seed":99}`

func post(t *testing.T, h http.Handler, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestAnalyzeEndpoint(t *testing.T) {
	s, sims := newTestServer(t)
	body := `{"spec":` + testSpecJSON + `,"threads":2}`
	w := post(t, s.Handler(), "/v1/workloads/analyze", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var rows []stack.ReportRow
	if err := json.Unmarshal(w.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Benchmark != "svc-kernel" || rows[0].Threads != 2 {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	if rows[0].Actual <= 0 || rows[0].Estimated <= 0 {
		t.Errorf("stack not populated: %+v", rows[0])
	}

	// The same behavioural spec under another name is a cache hit: the
	// fingerprint, not the name, keys the memo.
	renamed := strings.Replace(body, "svc-kernel", "other-name", 1)
	w = post(t, s.Handler(), "/v1/workloads/analyze", renamed)
	if w.Code != http.StatusOK {
		t.Fatalf("renamed spec: status %d: %s", w.Code, w.Body)
	}
	if got := atomic.LoadInt32(sims); got != 1 {
		t.Errorf("fingerprint-identical specs ran %d simulations, want 1", got)
	}
	if !strings.Contains(w.Body.String(), `"other-name"`) {
		t.Errorf("cached result not relabeled: %s", w.Body)
	}
}

func TestAnalyzeBadRequests(t *testing.T) {
	s, _ := newTestServer(t)
	for name, body := range map[string]string{
		"empty":         ``,
		"no spec":       `{"threads":2}`,
		"bench instead": `{"bench":"cholesky","threads":2}`,
		"both":          `{"bench":"cholesky","spec":` + testSpecJSON + `,"threads":2}`,
		"bad spec":      `{"spec":{"name":"x","kind":"data_parallel"},"threads":2}`,
		"bad threads":   `{"spec":` + testSpecJSON + `,"threads":0}`,
		"unknown knob":  `{"spec":{"name":"x","kind":"data_parallel","array_byts":64},"threads":2}`,
		"trailing data": `{"spec":` + testSpecJSON + `,"threads":2}{"threads":8}`,
		"kind omitted":  `{"spec":{"name":"x","array_bytes":524288,"sweeps_per_phase":1,"phases":1},"threads":2}`,
	} {
		if w := post(t, s.Handler(), "/v1/workloads/analyze", body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, w.Code, w.Body)
		}
	}
	if st := s.Engine().Stats(); st.CellRuns != 0 {
		t.Errorf("bad requests ran %d simulations", st.CellRuns)
	}
}

func TestValidateEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	w := post(t, s.Handler(), "/v1/workloads/validate", testSpecJSON)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Valid       bool            `json:"valid"`
		Error       string          `json:"error"`
		Fingerprint string          `json:"fingerprint"`
		Name        string          `json:"name"`
		Canonical   json.RawMessage `json:"canonical"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Valid || resp.Name != "svc-kernel" || len(resp.Fingerprint) != 64 || len(resp.Canonical) == 0 {
		t.Errorf("unexpected response: %+v", resp)
	}

	// An invalid spec is a clean valid=false with the actionable error.
	w = post(t, s.Handler(), "/v1/workloads/validate", `{"name":"x","kind":"data_parallel"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("invalid spec: status %d", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Valid || !strings.Contains(resp.Error, "array_bytes") {
		t.Errorf("unexpected response: %+v", resp)
	}
	// Validation never simulates.
	if st := s.Engine().Stats(); st.CellRuns != 0 || st.SeqRuns != 0 {
		t.Errorf("validate ran simulations: %+v", st)
	}
}

func TestSweepInlineSpecCells(t *testing.T) {
	s, sims := newTestServer(t)
	// A named registry cell plus an inline spec: both simulate, labels stay
	// per-cell, and repeating the batch is a pure cache hit.
	body := `{"cells":[
		{"bench":"` + testBench + `","threads":2},
		{"spec":` + testSpecJSON + `,"threads":2}]}`
	w := post(t, s.Handler(), "/v1/sweep", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var rows []stack.ReportRow
	if err := json.Unmarshal(w.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Benchmark != testBench || rows[1].Benchmark != "svc-kernel" {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	if got := atomic.LoadInt32(sims); got != 2 {
		t.Errorf("mixed batch ran %d simulations, want 2", got)
	}
	if w := post(t, s.Handler(), "/v1/sweep", body); w.Code != http.StatusOK {
		t.Fatalf("repeat batch: status %d", w.Code)
	}
	if got := atomic.LoadInt32(sims); got != 2 {
		t.Errorf("repeat batch re-simulated (%d runs)", got)
	}

	// A cell carrying both identities is rejected.
	both := `{"cells":[{"bench":"` + testBench + `","spec":` + testSpecJSON + `,"threads":2}]}`
	if w := post(t, s.Handler(), "/v1/sweep", both); w.Code != http.StatusBadRequest {
		t.Errorf("bench+spec cell: status %d, want 400", w.Code)
	}
}

func TestSimTimeoutDetaches(t *testing.T) {
	// A 1ns budget cannot wait for any simulation: the request must
	// answer 504 rather than hang — but the detached simulation still
	// completes and fills the cache, so a patient retry is a hit.
	e := exp.NewEngine(sim.Default(), exp.WithWorkers(1))
	s := New(Options{Engine: e, SimTimeout: time.Nanosecond})
	target := "/v1/stack?bench=" + testBench + "&threads=2"
	if w := get(t, s.Handler(), target); w.Code != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504 (%s)", w.Code, w.Body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().CellRuns == 0 || e.Stats().InFlight > 0 {
		if time.Now().After(deadline) {
			t.Fatal("detached simulation never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	patient := New(Options{Engine: e, SimTimeout: time.Minute})
	if w := get(t, patient.Handler(), target); w.Code != http.StatusOK {
		t.Errorf("retry after detach: status %d, want 200 (%s)", w.Code, w.Body)
	}
	if st := e.Stats(); st.CellRuns != 1 || st.CellHits != 1 {
		t.Errorf("retry re-simulated: %+v", st)
	}
}

func TestGracefulShutdown(t *testing.T) {
	s, _ := newTestServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, l, s.Handler(), 5*time.Second) }()

	url := "http://" + l.Addr().String()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz over the wire: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil on clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if _, err := net.DialTimeout("tcp", l.Addr().String(), time.Second); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

func TestStackIntervalsEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	w := get(t, s.Handler(), "/v1/stack/intervals?bench="+testBench+"&threads=2&intervals=6")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	var rep stack.TimeSeriesReport
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decoding body: %v\n%s", err, w.Body)
	}
	if rep.Benchmark != testBench || rep.Threads != 2 {
		t.Fatalf("report identifies %q x%d", rep.Benchmark, rep.Threads)
	}
	if n := len(rep.Intervals); n < 1 || n > 7 {
		t.Fatalf("%d intervals for a target of 6", n)
	}
	sum := rep.Intervals[0].Cycles
	for _, iv := range rep.Intervals[1:] {
		sum = sum.Add(iv.Cycles)
	}
	if sum != rep.AggregateCycles {
		t.Fatalf("served intervals do not sum to the aggregate: %+v vs %+v", sum, rep.AggregateCycles)
	}

	// The SVG format draws the stacked timeline.
	w = get(t, s.Handler(), "/v1/stack/intervals?bench="+testBench+"&threads=2&intervals=6&format=svg")
	if w.Code != http.StatusOK {
		t.Fatalf("svg status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("svg content type %q", ct)
	}
	if !strings.Contains(w.Body.String(), "Speedup-stack timeline") {
		t.Error("svg body is not a timeline chart")
	}
}

func TestStackIntervalsCaching(t *testing.T) {
	s, _ := newTestServer(t)
	target := "/v1/stack/intervals?bench=" + testBench + "&threads=2&intervals=4"
	first := get(t, s.Handler(), target)
	if first.Code != http.StatusOK {
		t.Fatalf("status %d: %s", first.Code, first.Body)
	}
	second := get(t, s.Handler(), target)
	if second.Body.String() != first.Body.String() {
		t.Fatal("repeated interval request served different bytes")
	}
	st := s.Engine().Stats()
	if st.IntervalRuns != 1 || st.IntervalHits != 1 {
		t.Fatalf("interval memo: %d runs / %d hits, want 1/1", st.IntervalRuns, st.IntervalHits)
	}
}

func TestStackIntervalsBadRequests(t *testing.T) {
	s, _ := newTestServer(t)
	for _, target := range []string{
		"/v1/stack/intervals?bench=" + testBench,                               // missing threads
		"/v1/stack/intervals?bench=" + testBench + "&threads=2&intervals=0",    // explicit zero
		"/v1/stack/intervals?bench=" + testBench + "&threads=2&intervals=9999", // over the cap
		"/v1/stack/intervals?bench=" + testBench + "&threads=2&intervals=x",    // not a number
		"/v1/stack/intervals?bench=" + testBench + "&threads=2&format=nope",    // unknown format
	} {
		if w := get(t, s.Handler(), target); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", target, w.Code)
		}
	}
	if w := get(t, s.Handler(), "/v1/stack/intervals?bench=nosuch&threads=2"); w.Code != http.StatusNotFound {
		t.Errorf("unknown benchmark: status %d, want 404", w.Code)
	}
}

func TestAnalyzeIntervals(t *testing.T) {
	s, _ := newTestServer(t)
	spec := `{"name":"iv-kernel","kind":"data_parallel","array_bytes":524288,` +
		`"sweeps_per_phase":1,"phases":2,"instr_per_access":2500,"store_frac":0.1,"seed":11}`
	req := httptest.NewRequest(http.MethodPost, "/v1/workloads/analyze",
		strings.NewReader(`{"threads":2,"intervals":5,"spec":`+spec+`}`))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var rep stack.TimeSeriesReport
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decoding body: %v\n%s", err, w.Body)
	}
	if rep.Benchmark != "iv-kernel" {
		t.Fatalf("report identifies %q", rep.Benchmark)
	}
	if n := len(rep.Intervals); n < 1 || n > 6 {
		t.Fatalf("%d intervals for a target of 5", n)
	}

	// Sweeps stay aggregate-only: an intervals field in a cell is a 400.
	req = httptest.NewRequest(http.MethodPost, "/v1/sweep",
		strings.NewReader(`{"cells":[{"bench":"`+testBench+`","threads":2,"intervals":4}]}`))
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("sweep with intervals: status %d, want 400", w.Code)
	}
}
