package workload

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzSpecJSON is the robustness contract of the bring-your-own-benchmark
// input path: for ANY byte string, ParseSpec either fails cleanly or
// returns a canonical spec that (a) marshals and re-parses to an identical
// spec, (b) keeps a stable fingerprint across the round trip, and (c) is
// idempotent under canonicalization. No input may panic — this is the same
// code path the speedupd service exposes to the network.
func FuzzSpecJSON(f *testing.F) {
	for _, b := range All() {
		if data, err := json.Marshal(b.Spec); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"name":"t","kind":"task_queue","items":3,"item_instr":9,"shared_frac":0.5,"shared_bytes":64}`))
	f.Add([]byte(`{"name":"p","kind":"pipeline","items":2,"array_bytes":64,"stages":[{"weight":1},{"weight":2,"serial":true}]}`))
	f.Add([]byte(`{"name":"x","kind":"data_parallel","array_bytes":1e6,"sweeps_per_phase":1,"phases":1}`))
	f.Add([]byte(`{"kind":"bogus"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return // clean rejection is fine; panics are not
		}
		if got := s.Canonical(); !reflect.DeepEqual(got, s) {
			t.Fatalf("ParseSpec output not canonical:\n%+v\n%+v", s, got)
		}
		fp := s.Fingerprint()
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		s2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("marshalled spec does not re-parse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the spec:\n%+v\n%+v", s, s2)
		}
		if s2.Fingerprint() != fp {
			t.Fatal("round trip changed the fingerprint")
		}
		// A parsed spec must be runnable: program construction (not full
		// simulation) must succeed without panicking.
		if _, err := s.Sequential(); err != nil {
			t.Fatalf("valid spec rejected by Sequential: %v", err)
		}
		if _, err := s.Parallel(3); err != nil {
			t.Fatalf("valid spec rejected by Parallel: %v", err)
		}
	})
}
