package workload

import "repro/internal/trace"

// drainBatch is the shared trace.BatchProgram drain loop for generators
// with no feedback sensitivity: it copies staged ops into dst, refilling
// the staging queue until dst is full or the stream ends, and falls back
// to a trailing End op exactly like the generators' Next methods do. The
// pop-sensitive pipeline generator and the data-parallel generator (which
// adds a direct-into-dst fast path) keep specialized loops; the contract
// all of them implement is documented on trace.BatchProgram.
func drainBatch(dst []trace.Op, queue *[]trace.Op, qpos *int, ended *bool, refill func()) int {
	n := 0
	for n < len(dst) {
		if *qpos < len(*queue) {
			c := copy(dst[n:], (*queue)[*qpos:])
			*qpos += c
			n += c
			continue
		}
		if *ended {
			break
		}
		*queue = (*queue)[:0]
		*qpos = 0
		refill()
	}
	if n == 0 {
		dst[0] = trace.End()
		n = 1
	}
	return n
}
