package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// replay runs a spec exactly the way the sweep engine runs a cell (cores =
// threads, tuned sync policy, the family's machine registrations).
func replay(t *testing.T, cfg sim.Config, s Spec, threads int) sim.Result {
	t.Helper()
	progs, err := s.Parallel(threads)
	if err != nil {
		t.Fatalf("Parallel: %v", err)
	}
	runCfg := cfg.WithCores(threads)
	runCfg.Policy = s.TunePolicy(runCfg.Policy)
	res, err := sim.Run(runCfg, progs, s.PipelineOptions(threads)...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// replaySeq runs a spec's sequential reference the way the engine does.
func replaySeq(t *testing.T, cfg sim.Config, s Spec) sim.Result {
	t.Helper()
	prog, err := s.Sequential()
	if err != nil {
		t.Fatalf("Sequential: %v", err)
	}
	cfg.Policy = s.TunePolicy(cfg.Policy)
	res, err := sim.RunSequential(cfg, prog, sim.WithoutAccounting())
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	return res
}

// TestTraceRoundTrip is the record/replay contract over the whole registry:
// recording any analogue at 1, 4 and 16 threads and replaying the encoded
// trace reproduces the live generator's sim.Result exactly — same cycles,
// same accounting, byte-identical structs — and the trace's cheap header
// identity agrees with the decoded spec's fingerprint.
func TestTraceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-registry record/replay sweep is not a -short test")
	}
	cfg := sim.Default()
	for _, b := range All() {
		b := b
		t.Run(b.FullName(), func(t *testing.T) {
			t.Parallel()
			for _, threads := range []int{1, 4, 16} {
				f, live, err := Record(cfg, b.Spec, threads)
				if err != nil {
					t.Fatalf("Record x%d: %v", threads, err)
				}
				var buf bytes.Buffer
				if err := f.Encode(&buf); err != nil {
					t.Fatalf("Encode x%d: %v", threads, err)
				}
				d, err := trace.Decode(buf.Bytes())
				if err != nil {
					t.Fatalf("Decode x%d: %v", threads, err)
				}
				spec := TraceSpec(d)
				if spec.TraceThreads() != threads {
					t.Fatalf("TraceThreads = %d, recorded %d", spec.TraceThreads(), threads)
				}
				if spec.Name != b.FullName() {
					t.Fatalf("trace label %q, want %q", spec.Name, b.FullName())
				}
				m, err := trace.DecodeMeta(buf.Bytes())
				if err != nil {
					t.Fatalf("DecodeMeta x%d: %v", threads, err)
				}
				if got, want := TraceIdentity(m), spec.Fingerprint(); got != want {
					t.Fatalf("TraceIdentity %s != spec fingerprint %s", got.Short(), want.Short())
				}
				if got := replay(t, cfg, spec, threads); !reflect.DeepEqual(got, live) {
					t.Fatalf("x%d: replayed result differs from live run\nlive   %+v\nreplay %+v", threads, live, got)
				}
				if threads == 1 {
					liveSeq := replaySeq(t, cfg, b.Spec.Canonical())
					if got := replaySeq(t, cfg, spec); !reflect.DeepEqual(got, liveSeq) {
						t.Fatalf("replayed sequential reference differs from live run")
					}
				}
			}
		})
	}
}

func TestTraceSpecOnlyReplaysRecordedThreadCount(t *testing.T) {
	b, _ := ByName("fft_splash2")
	f, _, err := Record(sim.Default(), b.Spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Data()
	if err != nil {
		t.Fatal(err)
	}
	spec := TraceSpec(d)
	if _, err := spec.Parallel(8); err == nil || !strings.Contains(err.Error(), "recorded at 4 threads") {
		t.Fatalf("replay at the wrong thread count did not fail usefully: %v", err)
	}
	if _, err := spec.Parallel(4); err != nil {
		t.Fatalf("replay at the recorded count failed: %v", err)
	}
}

func TestJSONTraceSpecFailsActionably(t *testing.T) {
	_, err := ParseSpec([]byte(`{"name": "x", "kind": "trace", "trace_hash": "deadbeef"}`))
	if err == nil || !strings.Contains(err.Error(), "cannot carry trace data") {
		t.Fatalf("JSON spec of kind trace did not fail actionably: %v", err)
	}
}

func TestRecordRejectsTraceSpec(t *testing.T) {
	b, _ := ByName("fft_splash2")
	f, _, err := Record(sim.Default(), b.Spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Data()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Record(sim.Default(), TraceSpec(d), 1); err == nil {
		t.Fatal("re-recording a trace replay was accepted")
	}
}

// TestTraceIdentityTracksGraces pins that the sync-library overrides are
// part of a trace's identity: the same op streams under different spin
// graces are different simulations and must not share a memo entry.
func TestTraceIdentityTracksGraces(t *testing.T) {
	f := &trace.File{Threads: [][]trace.Op{{trace.Compute(5), trace.End()}}}
	d1, err := f.Data()
	if err != nil {
		t.Fatal(err)
	}
	f.LockGrace = 1 << 30
	d2, err := f.Data()
	if err != nil {
		t.Fatal(err)
	}
	if TraceSpec(d1).Fingerprint() == TraceSpec(d2).Fingerprint() {
		t.Fatal("lock-grace change did not change the trace fingerprint")
	}
	if TraceSpec(d1).TraceThreads() != 1 {
		t.Fatalf("TraceThreads = %d", TraceSpec(d1).TraceThreads())
	}
	seq := Spec{Name: "x", Kind: KindTrace}
	seq.traceData = d1
	if err := seq.Validate(); err == nil {
		t.Fatal("mismatched trace_hash passed validation")
	}
}
