package workload

import (
	"errors"
	"fmt"
	"strings"
)

// ErrUnknownBenchmark tags lookup failures for a name that is not in the
// registry. Callers branch on it with errors.Is — the speedupd service maps
// it to HTTP 404 — while the message (built by UnknownBenchmarkError)
// carries the nearest-name suggestion shared by every front end.
var ErrUnknownBenchmark = errors.New("unknown benchmark")

// UnknownBenchmarkError builds the user-facing error for a failed lookup,
// including the closest registered name when one is plausibly intended.
// The CLI and the HTTP service both surface this exact message.
func UnknownBenchmarkError(name string) error {
	if s := Suggest(name); s != "" {
		return fmt.Errorf("%w %q (did you mean %q?)", ErrUnknownBenchmark, name, s)
	}
	return fmt.Errorf("%w %q (not one of the %d registered analogues)", ErrUnknownBenchmark, name, len(registry))
}

// Suggest returns the registered benchmark name (FullName or plain name)
// closest to name by edit distance, or "" when nothing is close enough to
// be a plausible typo (distance greater than 2 or a third of the input).
func Suggest(name string) string {
	in := strings.ToLower(name)
	limit := max(2, len(in)/3)
	best, bestDist := "", limit+1
	for _, b := range registry {
		for _, cand := range []string{b.FullName(), b.Spec.Name} {
			if d := editDistance(in, strings.ToLower(cand)); d < bestDist {
				best, bestDist = cand, d
			}
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b, two rows at a
// time. The inputs are short benchmark names, so O(len(a)*len(b)) is fine.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
