package workload

import (
	"errors"
	"fmt"
	"strings"
)

// ErrUnknownBenchmark tags lookup failures for a name that is not in the
// registry. Callers branch on it with errors.Is — the speedupd service maps
// it to HTTP 404 — while the message (built by UnknownBenchmarkError)
// carries the nearest-name suggestion shared by every front end.
var ErrUnknownBenchmark = errors.New("unknown benchmark")

// BenchmarkLookupError is the typed form of a failed registry lookup. It
// matches ErrUnknownBenchmark under errors.Is, and carries the nearest-name
// suggestion as a field so structured surfaces (the speedupd error envelope)
// can expose it machine-readably while Error() keeps rendering the exact
// message every front end has always shown.
type BenchmarkLookupError struct {
	// Name is the name that failed to resolve; Suggestion the closest
	// registered name, or "" when nothing is plausibly intended.
	Name       string
	Suggestion string
}

// Error renders the message every front end shows: the failed name plus
// the did-you-mean suggestion when one exists.
func (e *BenchmarkLookupError) Error() string {
	if e.Suggestion != "" {
		return fmt.Sprintf("%v %q (did you mean %q?)", ErrUnknownBenchmark, e.Name, e.Suggestion)
	}
	return fmt.Sprintf("%v %q (not one of the %d registered analogues)", ErrUnknownBenchmark, e.Name, len(registry))
}

// Is makes errors.Is(err, ErrUnknownBenchmark) hold for wrapped lookup
// errors without a separate sentinel in the chain.
func (e *BenchmarkLookupError) Is(target error) bool { return target == ErrUnknownBenchmark }

// UnknownBenchmarkError builds the user-facing error for a failed lookup,
// including the closest registered name when one is plausibly intended.
// The CLI and the HTTP service both surface this exact message; the service
// additionally lifts the typed Suggestion into its error envelope.
func UnknownBenchmarkError(name string) error {
	return &BenchmarkLookupError{Name: name, Suggestion: Suggest(name)}
}

// Suggest returns the registered benchmark name (FullName or plain name)
// closest to name by edit distance, or "" when nothing is close enough to
// be a plausible typo (distance greater than 2 or a third of the input).
func Suggest(name string) string {
	in := strings.ToLower(name)
	limit := max(2, len(in)/3)
	best, bestDist := "", limit+1
	for _, b := range registry {
		for _, cand := range []string{b.FullName(), b.Spec.Name} {
			if d := editDistance(in, strings.ToLower(cand)); d < bestDist {
				best, bestDist = cand, d
			}
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b, two rows at a
// time. The inputs are short benchmark names, so O(len(a)*len(b)) is fine.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
