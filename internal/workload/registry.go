package workload

import (
	"fmt"
	"sort"
)

// Benchmark couples a workload spec with its calibration targets from the
// paper's Figure 6: the published 16-thread speedup and the expected
// dominant speedup-stack components (largest first; empty means no
// significant scaling delimiter).
type Benchmark struct {
	Spec Spec
	// PaperSpeedup16 is the 16-thread speedup reported in Figure 6.
	PaperSpeedup16 float64
	// PaperComponents are the expected largest components, in order.
	PaperComponents []string
	// ExpectedDominant names the single stack component (stack.Comp* name)
	// that must dominate this workload's speedup stack at 4 and 16 threads.
	// Set only for the contention patterns (patterns.go), whose known-answer
	// suite asserts it; registry analogues use PaperComponents instead.
	ExpectedDominant string
	// ExpectedClass is the scaling classification ("linear", "saturated" or
	// "negative") the advisor must assign over a 1..16 sweep. Set only for
	// the contention patterns.
	ExpectedClass string
}

// Name returns the benchmark name.
func (b Benchmark) Name() string { return b.Spec.Name }

// registry holds the 28 benchmark analogues of the paper's Figure 6.
// Memory intensity calibration note: one modeled access stands for the
// L1-filtered, cache-relevant reference stream, so InstrPerAccess is on the
// order of hundreds to thousands of instructions (a miss every few thousand
// instructions for compute-bound codes, every few hundred for memory-bound
// ones), which keeps 8 DRAM banks at realistic utilizations.
var registry = []Benchmark{
	// ----- good scaling (speedup >= 10x at 16 threads) ---------------------
	{
		Spec: Spec{
			Name: "blackscholes", Suite: "parsec_medium", Kind: KindDataParallel,
			ArrayBytes: 3 << 19, SweepsPerPhase: 1, Phases: 4, InstrPerAccess: 3200,
			StoreFrac: 0.10, OverheadFrac: 0.004, Seed: 101,
		},
		PaperSpeedup16:  15.94,
		PaperComponents: nil,
	},
	{
		Spec: Spec{
			Name: "blackscholes", Suite: "parsec_small", Kind: KindDataParallel,
			ArrayBytes: 1 << 20, SweepsPerPhase: 1, Phases: 4, InstrPerAccess: 2800,
			StoreFrac: 0.10, OverheadFrac: 0.006, Seed: 102,
		},
		PaperSpeedup16:  15.71,
		PaperComponents: nil,
	},
	{
		Spec: Spec{
			Name: "radix", Suite: "splash2", Kind: KindDataParallel,
			ArrayBytes: 6 << 20, SweepsPerPhase: 1, Phases: 1, InstrPerAccess: 1650,
			StoreFrac: 0.45, EffectiveParallelism: 14.8,
			OverheadFrac: 0.01, Seed: 103,
		},
		PaperSpeedup16:  11.60,
		PaperComponents: []string{"memory", "yielding"},
	},
	{
		Spec: Spec{
			Name: "swaptions", Suite: "parsec_medium", Kind: KindDataParallel,
			ArrayBytes: 1 << 20, SweepsPerPhase: 1, Phases: 3, InstrPerAccess: 4000,
			StoreFrac: 0.08, EffectiveParallelism: 13.5,
			OverheadFrac: 0.02, Seed: 104,
		},
		PaperSpeedup16:  12.99,
		PaperComponents: []string{"yielding"},
	},
	{
		Spec: Spec{
			Name: "heartwall", Suite: "rodinia", Kind: KindDataParallel,
			ArrayBytes: 3 << 19, SweepsPerPhase: 1, Phases: 3, InstrPerAccess: 3200,
			StoreFrac: 0.12, EffectiveParallelism: 10.8,
			OverheadFrac: 0.015, Seed: 105,
		},
		PaperSpeedup16:  10.39,
		PaperComponents: []string{"yielding"},
	},
	// ----- moderate scaling (5x..10x) --------------------------------------
	{
		Spec: Spec{
			Name: "srad", Suite: "rodinia", Kind: KindDataParallel,
			ArrayBytes: 5 << 19, SweepsPerPhase: 2, Phases: 1, InstrPerAccess: 430,
			StoreFrac: 0.35, EffectiveParallelism: 12.5,
			OverheadFrac: 0.02, Seed: 106,
		},
		PaperSpeedup16:  5.20,
		PaperComponents: []string{"memory", "yielding", "cache"},
	},
	{
		Spec: Spec{
			Name: "cholesky", Suite: "splash2", Kind: KindTaskQueue,
			Items: 16384, ItemInstr: 3000, ItemAccesses: 7, DispatchInstr: 820,
			ArrayBytes: 3 << 20, SharedBytes: 5 << 19, SharedFrac: 0.30,
			SharedStoreFrac: 0.05, StoreFrac: 0.2,
			EffectiveParallelism: 12.0, OverheadFrac: 0.03,
			LockGrace: 1 << 40, Seed: 107,
		},
		PaperSpeedup16:  5.02,
		PaperComponents: []string{"spinning", "yielding", "memory"},
	},
	{
		Spec: Spec{
			Name: "lud", Suite: "rodinia", Kind: KindDataParallel,
			ArrayBytes: 3 << 19, SweepsPerPhase: 1, Phases: 3, InstrPerAccess: 2200,
			StoreFrac: 0.15, EffectiveParallelism: 5.7,
			OverheadFrac: 0.01, Seed: 108,
		},
		PaperSpeedup16:  5.77,
		PaperComponents: []string{"yielding"},
	},
	{
		Spec: Spec{
			Name: "water-nsquared", Suite: "splash2", Kind: KindDataParallel,
			ArrayBytes: 1 << 21, SweepsPerPhase: 1, Phases: 3, InstrPerAccess: 2000,
			StoreFrac: 0.15, EffectiveParallelism: 7.5,
			CSPerThreadPerPhase: 200, CSInstr: 2800, NumLocks: 1,
			LockGrace: 1 << 40, OverheadFrac: 0.015, Seed: 109,
		},
		PaperSpeedup16:  5.77,
		PaperComponents: []string{"yielding", "spinning"},
	},
	{
		Spec: Spec{
			Name: "fluidanimate", Suite: "parsec_medium", Kind: KindDataParallel,
			ArrayBytes: 1 << 21, SweepsPerPhase: 1, Phases: 4, InstrPerAccess: 1800,
			StoreFrac: 0.2, EffectiveParallelism: 5.9,
			CSPerThreadPerPhase: 20, CSInstr: 120, NumLocks: 64,
			OverheadFrac: 0.18, Seed: 110,
		},
		PaperSpeedup16:  5.71,
		PaperComponents: []string{"yielding"},
	},
	{
		Spec: Spec{
			Name: "lu.ncont", Suite: "splash2", Kind: KindDataParallel,
			ArrayBytes: 8 << 20, SweepsPerPhase: 2, Phases: 1, InstrPerAccess: 700,
			StoreFrac: 0.2, SharedBytes: 1 << 20, SharedFrac: 0.15, RandomShared: true,
			EffectiveParallelism: 9.3, OverheadFrac: 0.04, Seed: 111,
		},
		PaperSpeedup16:  5.53,
		PaperComponents: []string{"yielding", "cache", "memory"},
	},
	{
		Spec: Spec{
			Name: "lu.cont", Suite: "splash2", Kind: KindDataParallel,
			ArrayBytes: 6 << 20, SweepsPerPhase: 2, Phases: 1, InstrPerAccess: 900,
			StoreFrac: 0.2, SharedBytes: 1 << 20, SharedFrac: 0.20, RandomShared: true,
			EffectiveParallelism: 8.8, OverheadFrac: 0.02, Seed: 112,
		},
		PaperSpeedup16:  5.79,
		PaperComponents: []string{"yielding", "cache"},
	},
	{
		Spec: Spec{
			Name: "facesim", Suite: "parsec_medium", Kind: KindDataParallel,
			ArrayBytes: 10 << 20, SweepsPerPhase: 2, Phases: 1, InstrPerAccess: 760,
			StoreFrac: 0.25, EffectiveParallelism: 10.2,
			OverheadFrac: 0.02, Seed: 113,
		},
		PaperSpeedup16:  5.50,
		PaperComponents: []string{"yielding", "cache", "memory"},
	},
	{
		Spec: Spec{
			Name: "facesim", Suite: "parsec_small", Kind: KindDataParallel,
			ArrayBytes: 9 << 20, SweepsPerPhase: 2, Phases: 1, InstrPerAccess: 760,
			StoreFrac: 0.25, EffectiveParallelism: 10.1,
			OverheadFrac: 0.02, Seed: 114,
		},
		PaperSpeedup16:  5.46,
		PaperComponents: []string{"yielding", "cache", "memory"},
	},
	{
		Spec: Spec{
			Name: "fft", Suite: "splash2", Kind: KindDataParallel,
			ArrayBytes: 6 << 20, SweepsPerPhase: 1, Phases: 1, InstrPerAccess: 1300,
			StoreFrac: 0.3, EffectiveParallelism: 14.2,
			OverheadFrac: 0.015, Seed: 115,
		},
		PaperSpeedup16:  9.43,
		PaperComponents: []string{"yielding", "memory"},
	},
	{
		Spec: Spec{
			Name: "canneal", Suite: "parsec_medium", Kind: KindDataParallel,
			ArrayBytes: 6 << 20, SweepsPerPhase: 1, Phases: 2, InstrPerAccess: 900,
			StoreFrac: 0.2, RandomPrivate: true,
			SharedBytes: 1 << 19, SharedFrac: 0.2, RandomShared: true,
			SharedStoreFrac: 0.04, EffectiveParallelism: 8.4,
			OverheadFrac: 0.01, Seed: 116,
		},
		PaperSpeedup16:  7.61,
		PaperComponents: []string{"yielding", "memory"},
	},
	{
		Spec: Spec{
			Name: "canneal", Suite: "parsec_small", Kind: KindDataParallel,
			ArrayBytes: 4 << 20, SweepsPerPhase: 1, Phases: 2, InstrPerAccess: 900,
			StoreFrac: 0.2, RandomPrivate: true,
			SharedBytes: 1 << 19, SharedFrac: 0.15, RandomShared: true,
			SharedStoreFrac: 0.04, EffectiveParallelism: 7.2,
			OverheadFrac: 0.012, Seed: 117,
		},
		PaperSpeedup16:  6.93,
		PaperComponents: []string{"yielding", "memory"},
	},
	{
		Spec: Spec{
			Name: "bfs", Suite: "rodinia", Kind: KindDataParallel,
			ArrayBytes: 4 << 20, SweepsPerPhase: 1, Phases: 3, InstrPerAccess: 800,
			StoreFrac: 0.25, RandomPrivate: true,
			SharedBytes: 1 << 19, SharedFrac: 0.2, RandomShared: true,
			SharedStoreFrac: 0.03, EffectiveParallelism: 5.8,
			OverheadFrac: 0.02, Seed: 118,
		},
		PaperSpeedup16:  5.65,
		PaperComponents: []string{"yielding", "memory"},
	},
	// ----- poor scaling (< 5x) ---------------------------------------------
	{
		Spec: Spec{
			Name: "ferret", Suite: "parsec_medium", Kind: KindPipeline,
			Items: 5000, ItemInstr: 10000, ItemAccesses: 8, QueueCap: 32,
			ArrayBytes: 4 << 20, StoreFrac: 0.2,
			SharedBytes: 1 << 20, SharedFrac: 0.1,
			Stages: []StageSpec{
				{Weight: 0.20, Serial: true},
				{Weight: 0.39},
				{Weight: 0.31},
				{Weight: 0.10, Serial: true},
			},
			OverheadFrac: 0.02, Seed: 119,
		},
		PaperSpeedup16:  4.77,
		PaperComponents: []string{"yielding"},
	},
	{
		Spec: Spec{
			Name: "water-spatial", Suite: "splash2", Kind: KindDataParallel,
			ArrayBytes: 1 << 21, SweepsPerPhase: 1, Phases: 3, InstrPerAccess: 1400,
			StoreFrac: 0.2, EffectiveParallelism: 4.65,
			OverheadFrac: 0.02, Seed: 120,
		},
		PaperSpeedup16:  4.57,
		PaperComponents: []string{"yielding", "memory"},
	},
	{
		Spec: Spec{
			Name: "dedup", Suite: "parsec_medium", Kind: KindPipeline,
			Items: 5000, ItemInstr: 10000, ItemAccesses: 8, QueueCap: 32,
			ArrayBytes: 4 << 20, StoreFrac: 0.25,
			SharedBytes: 1 << 20, SharedFrac: 0.08,
			Stages: []StageSpec{
				{Weight: 0.22, Serial: true},
				{Weight: 0.26},
				{Weight: 0.24},
				{Weight: 0.18},
				{Weight: 0.10, Serial: true},
			},
			OverheadFrac: 0.03, Seed: 121,
		},
		PaperSpeedup16:  4.12,
		PaperComponents: []string{"yielding"},
	},
	{
		Spec: Spec{
			Name: "freqmine", Suite: "parsec_small", Kind: KindTaskQueue,
			Items: 8192, ItemInstr: 3600, ItemAccesses: 4, DispatchInstr: 300,
			ArrayBytes: 5 << 20, SharedBytes: 1 << 20, SharedFrac: 0.15,
			StoreFrac: 0.2, EffectiveParallelism: 5.1, OverheadFrac: 0.03, Seed: 122,
		},
		PaperSpeedup16:  4.09,
		PaperComponents: []string{"yielding"},
	},
	{
		Spec: Spec{
			Name: "freqmine", Suite: "parsec_medium", Kind: KindTaskQueue,
			Items: 9000, ItemInstr: 3600, ItemAccesses: 4, DispatchInstr: 300,
			ArrayBytes: 6 << 20, SharedBytes: 1 << 20, SharedFrac: 0.15,
			StoreFrac: 0.2, EffectiveParallelism: 4.85, OverheadFrac: 0.03, Seed: 123,
		},
		PaperSpeedup16:  3.89,
		PaperComponents: []string{"yielding"},
	},
	{
		Spec: Spec{
			Name: "swaptions", Suite: "parsec_small", Kind: KindDataParallel,
			ArrayBytes: 1 << 19, SweepsPerPhase: 1, Phases: 3, InstrPerAccess: 3000,
			StoreFrac: 0.08, EffectiveParallelism: 4.35,
			OverheadFrac: 0.26, Seed: 124,
		},
		PaperSpeedup16:  3.81,
		PaperComponents: []string{"yielding"},
	},
	{
		Spec: Spec{
			Name: "dedup", Suite: "parsec_small", Kind: KindPipeline,
			Items: 4600, ItemInstr: 10000, ItemAccesses: 8, QueueCap: 32,
			ArrayBytes: 3 << 20, StoreFrac: 0.25,
			SharedBytes: 1 << 20, SharedFrac: 0.08,
			Stages: []StageSpec{
				{Weight: 0.24, Serial: true},
				{Weight: 0.26},
				{Weight: 0.23},
				{Weight: 0.17},
				{Weight: 0.10, Serial: true},
			},
			OverheadFrac: 0.035, Seed: 125,
		},
		PaperSpeedup16:  3.56,
		PaperComponents: []string{"yielding"},
	},
	{
		Spec: Spec{
			Name: "bodytrack", Suite: "parsec_small", Kind: KindDataParallel,
			ArrayBytes: 1 << 21, SweepsPerPhase: 1, Phases: 6, InstrPerAccess: 800,
			StoreFrac: 0.2, EffectiveParallelism: 2.9,
			OverheadFrac: 0.03, Seed: 126,
		},
		PaperSpeedup16:  3.02,
		PaperComponents: []string{"yielding", "memory"},
	},
	{
		Spec: Spec{
			Name: "ferret", Suite: "parsec_small", Kind: KindPipeline,
			Items: 4600, ItemInstr: 10000, ItemAccesses: 8, QueueCap: 32,
			ArrayBytes: 3 << 20, StoreFrac: 0.2,
			SharedBytes: 1 << 20, SharedFrac: 0.1,
			Stages: []StageSpec{
				{Weight: 0.30, Serial: true},
				{Weight: 0.32},
				{Weight: 0.28},
				{Weight: 0.10, Serial: true},
			},
			OverheadFrac: 0.025, Seed: 127,
		},
		PaperSpeedup16:  2.94,
		PaperComponents: []string{"yielding"},
	},
	{
		Spec: Spec{
			Name: "needle", Suite: "rodinia", Kind: KindDataParallel,
			ArrayBytes: 8 << 20, SweepsPerPhase: 2, Phases: 1, InstrPerAccess: 600,
			StoreFrac: 0.25, SharedBytes: 1 << 20, SharedFrac: 0.15, RandomShared: true,
			EffectiveParallelism: 6.7, OverheadFrac: 0.03, Seed: 128,
		},
		PaperSpeedup16:  4.14,
		PaperComponents: []string{"yielding", "memory", "cache"},
	},
}

// All returns every benchmark analogue, in the paper's Figure 6 grouping
// order (good, moderate, poor scaling).
func All() []Benchmark {
	out := make([]Benchmark, len(registry))
	copy(out, registry)
	return out
}

// Names lists the full identifiers (name_suite) of every registered
// workload — the Figure 6 analogues plus the contention patterns — sorted.
func Names() []string {
	names := make([]string, 0, len(registry)+len(patterns))
	for _, b := range registry {
		names = append(names, b.FullName())
	}
	for _, b := range patterns {
		names = append(names, b.FullName())
	}
	sort.Strings(names)
	return names
}

// FullName returns "name_suite", disambiguating the input classes. Custom
// specs without a suite are identified by name alone.
func (b Benchmark) FullName() string {
	if b.Spec.Suite == "" {
		return b.Spec.Name
	}
	return fmt.Sprintf("%s_%s", b.Spec.Name, b.Spec.Suite)
}

// ByName finds a benchmark by FullName or plain name (first match), looking
// through the Figure 6 analogues and then the contention patterns.
func ByName(name string) (Benchmark, bool) {
	for _, b := range registry {
		if b.FullName() == name || b.Spec.Name == name {
			return b, true
		}
	}
	for _, b := range patterns {
		if b.FullName() == name || b.Spec.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
