package workload

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Trace replay: the bring-your-own-op-stream path. A recorded trace file
// (internal/trace's binary format) becomes a KindTrace Spec via TraceSpec,
// after which every layer treats it like any other workload — the engine
// memoizes it, the service caches it and the fleet routes it, all keyed by
// the spec Fingerprint, which for traces is derived from the trace's
// content hash. Record is the inverse: it runs a generated spec under a
// recording wrapper and emits the trace file whose replay reproduces the
// run byte-identically.

// TraceSpec builds the replay spec for a decoded trace. The spec's name is
// the trace label (or a hash-derived placeholder for unlabeled traces), its
// identity the trace's content hash plus the recorded sync-library graces.
func TraceSpec(d *trace.Data) Spec {
	name := d.Label()
	if name == "" {
		name = "trace_" + d.HashHex()[:12]
	}
	s := Spec{
		Name:         name,
		Kind:         KindTrace,
		TraceHash:    d.HashHex(),
		LockGrace:    d.LockGrace(),
		BarrierGrace: d.BarrierGrace(),
	}
	s.traceData = d
	return s
}

// TraceThreads returns the thread count a trace spec was recorded at, the
// only count it can replay. Generated kinds return zero.
func (s Spec) TraceThreads() int {
	if s.Kind != KindTrace || s.traceData == nil {
		return 0
	}
	return s.traceData.Threads()
}

// TraceIdentity computes the Fingerprint a trace will have once fully
// decoded, from its cheap header view alone: TraceIdentity(m) equals
// TraceSpec(d).Fingerprint() whenever m describes d. The fleet router uses
// it to home a trace upload without decoding megabytes of op streams.
func TraceIdentity(m trace.Meta) Fingerprint {
	s := Spec{Kind: KindTrace, TraceHash: m.HashHex,
		LockGrace: m.LockGrace, BarrierGrace: m.BarrierGrace}
	return s.Fingerprint()
}

// tracePrograms returns the recorded per-thread streams. A trace is a fixed
// execution, not a generator: it replays only at the recorded thread count.
func (s Spec) tracePrograms(threads int) ([]trace.Program, error) {
	d := s.traceData
	if threads != d.Threads() {
		return nil, fmt.Errorf("workload %s: trace was recorded at %d threads and replays only at that count, got %d",
			s.Name, d.Threads(), threads)
	}
	progs := make([]trace.Program, threads)
	for i := range progs {
		progs[i] = d.ThreadProgram(i)
	}
	return progs, nil
}

// traceSequential returns the recorded single-threaded reference stream.
func (s Spec) traceSequential() (trace.Program, error) {
	p, err := s.traceData.SequentialProgram()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	return p, nil
}

// Record runs spec s at the given thread count on cfg's machine, capturing
// every op the simulator consumed (parallel streams plus the sequential
// reference), and returns the trace file alongside the recorded run's
// result. The capture happens during a live simulation because op streams
// are execution-driven (pipeline programs branch on pop feedback); the
// simulator is deterministic, so replaying the file under the same machine
// reproduces the recorded result exactly — Record mirrors the sweep
// engine's run mechanics (cores = threads, tuned sync policy, the family's
// machine registrations, accounting off for the reference) so the engine's
// replay of the file is byte-identical to its live run of s.
func Record(cfg sim.Config, s Spec, threads int) (*trace.File, sim.Result, error) {
	fail := func(err error) (*trace.File, sim.Result, error) { return nil, sim.Result{}, err }
	if err := s.Validate(); err != nil {
		return fail(err)
	}
	if s.Kind == KindTrace {
		return fail(fmt.Errorf("workload %s: already a trace replay; copy the trace file instead of re-recording it", s.Name))
	}
	if threads <= 0 || threads > 256 {
		return fail(fmt.Errorf("workload %s: record thread count must be in [1, 256], got %d", s.Name, threads))
	}
	label := Benchmark{Spec: s}.FullName()
	s = s.Canonical()

	progs, err := s.Parallel(threads)
	if err != nil {
		return fail(err)
	}
	recs := make([]*trace.Recorder, threads)
	wrapped := make([]trace.Program, threads)
	for i, p := range progs {
		recs[i] = trace.NewRecorder(p)
		wrapped[i] = recs[i]
	}
	runCfg := cfg.WithCores(threads)
	runCfg.Policy = s.TunePolicy(runCfg.Policy)
	res, err := sim.Run(runCfg, wrapped, s.PipelineOptions(threads)...)
	if err != nil {
		return fail(fmt.Errorf("%s x%d: %w", label, threads, err))
	}

	seqProg, err := s.Sequential()
	if err != nil {
		return fail(err)
	}
	seqRec := trace.NewRecorder(seqProg)
	seqCfg := cfg
	seqCfg.Policy = s.TunePolicy(seqCfg.Policy)
	if _, err := sim.RunSequential(seqCfg, seqRec, sim.WithoutAccounting()); err != nil {
		return fail(fmt.Errorf("%s sequential: %w", label, err))
	}

	queues, barriers := s.registrations(threads)
	f := &trace.File{
		Label:        label,
		LockGrace:    s.LockGrace,
		BarrierGrace: s.BarrierGrace,
		Queues:       queues,
		Barriers:     barriers,
		Sequential:   seqRec.Ops(),
		Threads:      make([][]trace.Op, threads),
	}
	for i, r := range recs {
		f.Threads[i] = r.Ops()
	}
	return f, res, nil
}
