package workload

import "repro/internal/trace"

// dpProgram generates the op stream of one thread of a data-parallel
// benchmark (or its sequential reference).
//
// Structure: Phases barrier-separated phases; in each phase the thread walks
// its slice of the global array SweepsPerPhase times, interleaving
// shared-region accesses, critical sections every CSEvery accesses, and
// parallelization-overhead bursts. The sweep loop is per slice, so a slice
// that fits a private LLC is reused both in the sequential reference and in
// the ATD's private counterfactual — keeping the estimator's assumptions
// aligned with the measured baseline, as in the paper's methodology.
type dpProgram struct {
	s       *Spec
	tid     int
	threads int
	seq     bool // sequential reference: no sync, no overhead

	totalLines int
	shares     []float64

	// Walk state.
	phase     int
	rank      int // sequential mode walks rank after rank
	sweep     int
	line      int
	sliceOff  int
	sliceLen  int
	sharedPos uint64
	overhead  int // accumulated overhead instructions (x1000 fixed point)

	// csEvery is the precomputed critical-section cadence (0 = no critical
	// sections); csCycle mirrors csCounter % csEvery and pcCycle mirrors
	// csCounter % 13 of the division-based original, advanced by cheap
	// wrap-around increments on the per-access path.
	csEvery int
	csCycle int
	pcCycle int

	rng   *trace.RNG
	queue []trace.Op
	qpos  int
	ended bool
}

// threadsHint scales critical-section frequency to a nominal machine width
// so the sequential reference executes identical body work; data volumes
// never depend on it.
func (s *Spec) threadsHint() int { return 16 }

// csCadence returns how many accesses separate critical sections (0 when
// the spec emits none): CSPerThreadPerPhase per nominal thread-phase,
// spread evenly over the access stream.
func (s *Spec) csCadence(totalLines int) int {
	if s.CSPerThreadPerPhase <= 0 || s.CSInstr <= 0 {
		return 0
	}
	every := totalLines * s.SweepsPerPhase /
		(s.CSPerThreadPerPhase * s.threadsHint())
	if every < 1 {
		every = 1
	}
	return every
}

// dataParallelPrograms builds one program per thread.
func (s Spec) dataParallelPrograms(threads int) []trace.Program {
	progs := make([]trace.Program, threads)
	spec := s
	totalLines := int(s.ArrayBytes / lineBytes)
	for t := 0; t < threads; t++ {
		progs[t] = &dpProgram{
			s:          &spec,
			tid:        t,
			threads:    threads,
			totalLines: totalLines,
			shares:     workShares(threads, s.EffectiveParallelism),
			csEvery:    spec.csCadence(totalLines),
			rng:        trace.NewRNG(s.Seed ^ (uint64(t)+1)*0x9e3779b97f4a7c15),
		}
	}
	return progs
}

// dataParallelSequential builds the single-threaded reference.
func (s Spec) dataParallelSequential() trace.Program {
	spec := s
	totalLines := int(s.ArrayBytes / lineBytes)
	return &dpProgram{
		s:          &spec,
		tid:        0,
		threads:    1,
		seq:        true,
		totalLines: totalLines,
		shares:     workShares(16, s.EffectiveParallelism),
		csEvery:    spec.csCadence(totalLines),
		rng:        trace.NewRNG(s.Seed ^ 0xABCDEF),
	}
}

// Next implements trace.Program.
func (p *dpProgram) Next(trace.Feedback) trace.Op {
	for {
		if p.qpos < len(p.queue) {
			op := p.queue[p.qpos]
			p.qpos++
			return op
		}
		if p.ended {
			return trace.End()
		}
		p.queue = p.queue[:0]
		p.qpos = 0
		p.refill()
	}
}

// dpMaxOpsPerAccess bounds what one emitAccessTo call can append: compute,
// the memory op, a three-op critical section, and an overhead burst.
const dpMaxOpsPerAccess = 6

// NextBatch implements trace.BatchProgram: it emits the identical op
// sequence Next would, writing in-slice access runs directly into dst (no
// staging-queue copy) and draining the queue only for phase transitions.
// Data-parallel programs never pop, so a batch only ends when dst is full
// or the stream ends.
func (p *dpProgram) NextBatch(dst []trace.Op, _ trace.Feedback) int {
	n := 0
	for n < len(dst) {
		if p.qpos < len(p.queue) {
			c := copy(dst[n:], p.queue[p.qpos:])
			p.qpos += c
			n += c
			continue
		}
		if p.ended {
			break
		}
		if p.sliceLen != 0 && p.line < p.sliceLen && len(dst)-n >= dpMaxOpsPerAccess {
			// Fast path: emit the access straight into dst. The capacity
			// check guarantees the bounded appends stay in place.
			q := dst[n:n:len(dst)]
			p.emitAccessTo(&q)
			p.line++
			n += len(q)
			continue
		}
		p.queue = p.queue[:0]
		p.qpos = 0
		p.refill()
	}
	if n == 0 {
		dst[0] = trace.End()
		n = 1
	}
	return n
}

// refillRun bounds how many accesses one refill emits, keeping the op queue
// small while amortizing the refill bookkeeping over a run of accesses.
const refillRun = 64

// refill appends the ops of the next run of accesses (or a phase
// transition) to the queue. Emitting a bounded run per call instead of a
// single access produces the identical op stream — the slice/sweep boundary
// checks happen at exactly the same points — while paying the refill
// dispatch once per run.
func (p *dpProgram) refill() {
	if p.sliceLen == 0 && !p.enterSlice() {
		return
	}
	if p.line >= p.sliceLen {
		p.sweep++
		p.line = 0
		if p.sweep >= p.s.SweepsPerPhase {
			p.advanceSlice()
			return
		}
	}
	n := p.sliceLen - p.line
	if n > refillRun {
		n = refillRun
	}
	for i := 0; i < n; i++ {
		p.emitAccessTo(&p.queue)
		p.line++
	}
}

// enterSlice computes the current slice bounds; it returns false when the
// program has ended (queue holds the trailing ops).
func (p *dpProgram) enterSlice() bool {
	if p.phase >= p.s.Phases {
		p.ended = true
		p.queue = append(p.queue, trace.End())
		return false
	}
	parts := splitInts(p.totalLines, p.shares)
	// Thread i always owns slice i, as in real data-parallel codes (the
	// skew is a property of the work division, and keeping slices pinned
	// preserves per-thread locality for the ATD's private counterfactual).
	rank := p.rank
	if !p.seq {
		rank = p.tid
	}
	off := 0
	for r := 0; r < rank; r++ {
		off += parts[r]
	}
	p.sliceOff = off
	p.sliceLen = parts[rank]
	p.sweep = 0
	p.line = 0
	if p.sliceLen == 0 {
		// Degenerate share: skip straight to the next slice/phase.
		p.advanceSlice()
		return false
	}
	return true
}

// advanceSlice moves to the next rank (sequential) or phase (parallel),
// emitting the phase barrier for parallel threads.
func (p *dpProgram) advanceSlice() {
	p.sliceLen = 0
	if p.seq {
		p.rank++
		if p.rank < len(p.shares) {
			return
		}
		p.rank = 0
		p.phase++
		return
	}
	p.queue = append(p.queue, trace.Barrier(uint32(p.phase)))
	p.phase++
}

// emitAccessTo appends one access to q: compute, the memory operation, and
// any due critical section or overhead burst — at most dpMaxOpsPerAccess
// ops.
func (p *dpProgram) emitAccessTo(q *[]trace.Op) {
	s := p.s
	if s.InstrPerAccess > 0 {
		*q = append(*q, trace.Compute(uint32(s.InstrPerAccess)))
	}

	var addr uint64
	var store bool
	if s.SharedFrac > 0 && p.rng.Bool(s.SharedFrac) {
		sharedLines := uint64(s.SharedBytes / lineBytes)
		if s.RandomShared {
			addr = sharedBase + p.rng.Uint64n(sharedLines)*lineBytes
		} else {
			addr = sharedBase + (p.sharedPos%sharedLines)*lineBytes
			p.sharedPos++
		}
		store = p.rng.Bool(s.SharedStoreFrac)
	} else {
		line := p.sliceOff + p.line
		if s.RandomPrivate {
			line = p.sliceOff + p.rng.Intn(p.sliceLen)
		}
		addr = privateBase + uint64(line)*lineBytes
		store = p.rng.Bool(s.StoreFrac)
	}
	pc := 0x400000 + uint64(p.pcCycle)*4
	p.pcCycle++
	if p.pcCycle == 13 {
		p.pcCycle = 0
	}
	if store {
		*q = append(*q, trace.Store(addr, pc))
	} else {
		*q = append(*q, trace.Load(addr, pc))
	}

	// Critical sections at the precomputed cadence, spread evenly over the
	// access stream so the sequential reference executes the same body work
	// without locks.
	if p.csEvery > 0 {
		p.csCycle++
		if p.csCycle == p.csEvery {
			p.csCycle = 0
			lock := uint32(0)
			if s.NumLocks > 1 {
				lock = uint32(p.rng.Intn(s.NumLocks))
			}
			if p.seq {
				*q = append(*q, trace.Compute(uint32(s.CSInstr)))
			} else {
				*q = append(*q,
					trace.Lock(lock),
					trace.Compute(uint32(s.CSInstr)),
					trace.Unlock(lock))
			}
		}
	}

	// Parallelization overhead, accumulated in 1/1000 instruction units and
	// emitted in bursts so the op stream stays compact.
	if !p.seq && s.overheadAt(p.threads) > 0 {
		p.overhead += int(s.overheadAt(p.threads) * 1000 * float64(s.InstrPerAccess+1))
		if p.overhead >= 256_000 {
			burst := trace.Compute(uint32(p.overhead / 1000))
			burst.Overhead = true
			*q = append(*q, burst)
			p.overhead = 0
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
