package workload

import "repro/internal/trace"

// dpProgram generates the op stream of one thread of a data-parallel
// benchmark (or its sequential reference).
//
// Structure: Phases barrier-separated phases; in each phase the thread walks
// its slice of the global array SweepsPerPhase times, interleaving
// shared-region accesses, critical sections every CSEvery accesses, and
// parallelization-overhead bursts. The sweep loop is per slice, so a slice
// that fits a private LLC is reused both in the sequential reference and in
// the ATD's private counterfactual — keeping the estimator's assumptions
// aligned with the measured baseline, as in the paper's methodology.
type dpProgram struct {
	s       *Spec
	tid     int
	threads int
	seq     bool // sequential reference: no sync, no overhead

	totalLines int
	shares     []float64

	// Walk state.
	phase     int
	rank      int // sequential mode walks rank after rank
	sweep     int
	line      int
	sliceOff  int
	sliceLen  int
	csCounter int
	sharedPos uint64
	overhead  int // accumulated overhead instructions (x1000 fixed point)

	rng   *trace.RNG
	queue []trace.Op
	qpos  int
	ended bool
}

// threadsHint scales critical-section frequency to a nominal machine width
// so the sequential reference executes identical body work; data volumes
// never depend on it.
func (s *Spec) threadsHint() int { return 16 }

// dataParallelPrograms builds one program per thread.
func (s Spec) dataParallelPrograms(threads int) []trace.Program {
	progs := make([]trace.Program, threads)
	spec := s
	for t := 0; t < threads; t++ {
		progs[t] = &dpProgram{
			s:          &spec,
			tid:        t,
			threads:    threads,
			totalLines: int(s.ArrayBytes / lineBytes),
			shares:     workShares(threads, s.EffectiveParallelism),
			rng:        trace.NewRNG(s.Seed ^ (uint64(t)+1)*0x9e3779b97f4a7c15),
		}
	}
	return progs
}

// dataParallelSequential builds the single-threaded reference.
func (s Spec) dataParallelSequential() trace.Program {
	spec := s
	return &dpProgram{
		s:          &spec,
		tid:        0,
		threads:    1,
		seq:        true,
		totalLines: int(s.ArrayBytes / lineBytes),
		shares:     workShares(16, s.EffectiveParallelism),
		rng:        trace.NewRNG(s.Seed ^ 0xABCDEF),
	}
}

// Next implements trace.Program.
func (p *dpProgram) Next(trace.Feedback) trace.Op {
	for {
		if p.qpos < len(p.queue) {
			op := p.queue[p.qpos]
			p.qpos++
			return op
		}
		if p.ended {
			return trace.End()
		}
		p.queue = p.queue[:0]
		p.qpos = 0
		p.refill()
	}
}

// refill appends the ops of the next access (or phase transition) to the
// queue.
func (p *dpProgram) refill() {
	if p.sliceLen == 0 && !p.enterSlice() {
		return
	}
	if p.line >= p.sliceLen {
		p.sweep++
		p.line = 0
		if p.sweep >= p.s.SweepsPerPhase {
			p.advanceSlice()
			return
		}
	}
	p.emitAccess()
	p.line++
}

// enterSlice computes the current slice bounds; it returns false when the
// program has ended (queue holds the trailing ops).
func (p *dpProgram) enterSlice() bool {
	if p.phase >= p.s.Phases {
		p.ended = true
		p.queue = append(p.queue, trace.End())
		return false
	}
	parts := splitInts(p.totalLines, p.shares)
	// Thread i always owns slice i, as in real data-parallel codes (the
	// skew is a property of the work division, and keeping slices pinned
	// preserves per-thread locality for the ATD's private counterfactual).
	rank := p.rank
	if !p.seq {
		rank = p.tid
	}
	off := 0
	for r := 0; r < rank; r++ {
		off += parts[r]
	}
	p.sliceOff = off
	p.sliceLen = parts[rank]
	p.sweep = 0
	p.line = 0
	if p.sliceLen == 0 {
		// Degenerate share: skip straight to the next slice/phase.
		p.advanceSlice()
		return false
	}
	return true
}

// advanceSlice moves to the next rank (sequential) or phase (parallel),
// emitting the phase barrier for parallel threads.
func (p *dpProgram) advanceSlice() {
	p.sliceLen = 0
	if p.seq {
		p.rank++
		if p.rank < len(p.shares) {
			return
		}
		p.rank = 0
		p.phase++
		return
	}
	p.queue = append(p.queue, trace.Barrier(uint32(p.phase)))
	p.phase++
}

// emitAccess appends one access: compute, the memory operation, and any due
// critical section or overhead burst.
func (p *dpProgram) emitAccess() {
	s := p.s
	if s.InstrPerAccess > 0 {
		p.queue = append(p.queue, trace.Compute(uint32(s.InstrPerAccess)))
	}

	var addr uint64
	var store bool
	if s.SharedFrac > 0 && p.rng.Bool(s.SharedFrac) {
		sharedLines := uint64(s.SharedBytes / lineBytes)
		if s.RandomShared {
			addr = sharedBase + p.rng.Uint64n(sharedLines)*lineBytes
		} else {
			addr = sharedBase + (p.sharedPos%sharedLines)*lineBytes
			p.sharedPos++
		}
		store = p.rng.Bool(s.SharedStoreFrac)
	} else {
		line := p.sliceOff + p.line
		if s.RandomPrivate {
			line = p.sliceOff + p.rng.Intn(p.sliceLen)
		}
		addr = privateBase + uint64(line)*lineBytes
		store = p.rng.Bool(s.StoreFrac)
	}
	pc := 0x400000 + uint64(p.csCounter%13)*4
	if store {
		p.queue = append(p.queue, trace.Store(addr, pc))
	} else {
		p.queue = append(p.queue, trace.Load(addr, pc))
	}

	// Critical sections: CSPerThreadPerPhase per nominal thread-phase,
	// spread evenly over the access stream so the sequential reference
	// executes the same body work without locks.
	if s.CSPerThreadPerPhase > 0 && s.CSInstr > 0 {
		every := p.totalLines * s.SweepsPerPhase /
			(s.CSPerThreadPerPhase * s.threadsHint())
		if every < 1 {
			every = 1
		}
		p.csCounter++
		if p.csCounter%every == 0 {
			lock := uint32(0)
			if s.NumLocks > 1 {
				lock = uint32(p.rng.Intn(s.NumLocks))
			}
			if p.seq {
				p.queue = append(p.queue, trace.Compute(uint32(s.CSInstr)))
			} else {
				p.queue = append(p.queue,
					trace.Lock(lock),
					trace.Compute(uint32(s.CSInstr)),
					trace.Unlock(lock))
			}
		}
	} else {
		p.csCounter++
	}

	// Parallelization overhead, accumulated in 1/1000 instruction units and
	// emitted in bursts so the op stream stays compact.
	if !p.seq && s.overheadAt(p.threads) > 0 {
		p.overhead += int(s.overheadAt(p.threads) * 1000 * float64(s.InstrPerAccess+1))
		if p.overhead >= 256_000 {
			burst := trace.Compute(uint32(p.overhead / 1000))
			burst.Overhead = true
			p.queue = append(p.queue, burst)
			p.overhead = 0
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
