// Package workload defines the synthetic benchmark analogues standing in for
// the paper's SPLASH-2 / PARSEC / Rodinia binaries.
//
// Each analogue is a Spec: a behavioural description (data footprint,
// sharing, memory intensity, synchronization structure, work imbalance,
// parallelization overhead) from which deterministic per-thread programs are
// generated. The specs in registry.go are calibrated so that, on the default
// machine, each analogue reproduces the published scaling category, the
// approximate 16-thread speedup, and the dominant speedup-stack components
// of its namesake (paper Figure 6).
//
// Three structural families cover the suite:
//
//   - Data-parallel: barrier-separated phases; each thread sweeps its slice
//     of a global array, with optional shared-region accesses and critical
//     sections. Work imbalance is injected with a tunable skew, which the
//     spin-then-yield barriers convert into spinning/yielding exactly as in
//     the paper (Section 3.4: barrier imbalance is classified as
//     synchronization).
//   - Task-queue: items are dispensed under a global lock whose hold time
//     throttles effective parallelism (cholesky-, freqmine-style). Whether
//     the resulting waits show up as spinning or yielding depends on the
//     lock library's spin grace (SPLASH-2 locks spin; pthread mutexes park).
//   - Pipeline: stages connected by bounded queues, with serial input/output
//     stages (ferret-, dedup-style); starved stages yield, and the serial
//     stages cap the speedup at 1/w_serial.
package workload

import (
	"fmt"

	"repro/internal/syncprim"
	"repro/internal/trace"
)

// Kind selects the structural family of a benchmark.
type Kind uint8

// Benchmark families.
const (
	// KindDataParallel is the barrier-phased family.
	KindDataParallel Kind = iota
	// KindTaskQueue is the lock-dispensed task family.
	KindTaskQueue
	// KindPipeline is the queue-connected stage family.
	KindPipeline
	// KindTrace replays a recorded binary op trace (internal/trace's file
	// format) instead of generating programs: the per-thread streams, the
	// sequential reference and the machine registrations all come from the
	// trace file. Trace specs are built with TraceSpec, never from JSON —
	// a JSON body cannot carry the trace data.
	KindTrace
)

// StageSpec describes one pipeline stage.
type StageSpec struct {
	// Weight is the stage's share of per-item work (weights are normalized).
	Weight float64 `json:"weight"`
	// Serial pins the stage to exactly one thread (ferret's input/output).
	Serial bool `json:"serial,omitempty"`
}

// Spec is the behavioural description of one benchmark analogue. It is also
// the serializable bring-your-own-benchmark input: the JSON form produced by
// encoding/json (snake_case keys, kind as a string) is what ParseSpec reads,
// what the speedup-stack CLI accepts via -spec, and what the speedupd
// service accepts inline.
type Spec struct {
	// Name and Suite identify the benchmark (suite naming follows the
	// paper: splash2, parsec_small, parsec_medium, rodinia). Custom specs
	// may leave Suite empty.
	Name  string `json:"name"`
	Suite string `json:"suite,omitempty"`
	Kind  Kind   `json:"kind"`

	// --- Work volume -----------------------------------------------------

	// ArrayBytes is the total private-data footprint, partitioned among
	// threads (each thread sweeps its slice). For pipelines it is the
	// per-item data region footprint.
	ArrayBytes int64 `json:"array_bytes,omitempty"`
	// SweepsPerPhase is how many times a thread walks its slice per phase;
	// values above 1 create temporal reuse, which turns shared-LLC
	// thrashing into negative interference (the private ATD would hit).
	SweepsPerPhase int `json:"sweeps_per_phase,omitempty"`
	// Phases is the number of barrier-separated phases.
	Phases int `json:"phases,omitempty"`
	// InstrPerAccess is the computation between memory accesses, the
	// memory-intensity knob.
	InstrPerAccess int `json:"instr_per_access,omitempty"`

	// --- Memory behaviour -------------------------------------------------

	// StoreFrac is the fraction of private accesses that are stores.
	StoreFrac float64 `json:"store_frac,omitempty"`
	// SharedBytes sizes the read-mostly shared region.
	SharedBytes int64 `json:"shared_bytes,omitempty"`
	// SharedFrac is the fraction of accesses that target the shared region;
	// cross-thread reuse there produces positive interference.
	SharedFrac float64 `json:"shared_frac,omitempty"`
	// SharedStoreFrac is the fraction of shared accesses that are stores;
	// they trigger invalidations and coherence misses.
	SharedStoreFrac float64 `json:"shared_store_frac,omitempty"`
	// RandomPrivate/RandomShared choose random addressing instead of
	// streaming within the respective regions.
	RandomPrivate bool `json:"random_private,omitempty"`
	RandomShared  bool `json:"random_shared,omitempty"`

	// --- Parallel structure ------------------------------------------------

	// EffectiveParallelism caps the useful thread count: work shares are
	// skewed so that speedup saturates near this value, producing the
	// yield-dominated profiles of Figure 6. Zero means perfectly balanced.
	EffectiveParallelism float64 `json:"effective_parallelism,omitempty"`
	// CSPerThreadPerPhase critical sections per thread and phase.
	CSPerThreadPerPhase int `json:"cs_per_thread_per_phase,omitempty"`
	// CSInstr is the computation inside a critical section (work that also
	// exists in the sequential version).
	CSInstr int `json:"cs_instr,omitempty"`
	// NumLocks is the lock granularity (1 = one global lock).
	NumLocks int `json:"num_locks,omitempty"`

	// --- Task-queue family -------------------------------------------------

	// Items is the total number of task items (task-queue and pipeline).
	Items int `json:"items,omitempty"`
	// ItemInstr is the computation per item.
	ItemInstr int `json:"item_instr,omitempty"`
	// ItemAccesses is the number of memory accesses per item.
	ItemAccesses int `json:"item_accesses,omitempty"`
	// DispatchInstr is the serial work under the dispatch lock per item
	// (parallelization overhead: it does not exist sequentially).
	DispatchInstr int `json:"dispatch_instr,omitempty"`

	// --- Pipeline family ---------------------------------------------------

	// Stages describes the pipeline stages.
	Stages []StageSpec `json:"stages,omitempty"`
	// QueueCap is the bounded-queue capacity between stages.
	QueueCap int `json:"queue_cap,omitempty"`

	// --- Overheads and library behaviour ------------------------------------

	// OverheadFrac adds this fraction of extra instructions in the parallel
	// version only (thread management, recomputation, lock handling),
	// calibrated at 16 threads and scaled linearly with the thread count
	// (communication and recomputation grow with parallelism). The
	// accounting hardware cannot see it; it surfaces as estimation error,
	// exactly as in the paper's Section 6 discussion.
	OverheadFrac float64 `json:"overhead_frac,omitempty"`
	// LockGrace/BarrierGrace override the sync library's spin-then-yield
	// thresholds (cycles); zero keeps the machine default. SPLASH-2-style
	// pure spinning uses a very large LockGrace.
	LockGrace    uint64 `json:"lock_grace,omitempty"`
	BarrierGrace uint64 `json:"barrier_grace,omitempty"`

	// Seed is the base RNG seed; every derived generator seeds from it.
	Seed uint64 `json:"seed,omitempty"`

	// --- Trace replay -------------------------------------------------------

	// TraceHash is the content hash (lowercase hex sha256) of the recorded
	// trace a KindTrace workload replays. TraceSpec sets it from the decoded
	// trace; being part of the canonical spec, it carries the trace's
	// identity into Fingerprint, so traces ride the same memo, cache and
	// fleet-routing keys as generated workloads.
	TraceHash string `json:"trace_hash,omitempty"`

	// traceData is the decoded trace backing a KindTrace spec. Only
	// TraceSpec sets it; it is invisible to JSON (a parsed spec of kind
	// "trace" fails validation with an actionable error) and survives the
	// value copies the engine makes during resolution.
	traceData *trace.Data
}

// Validation bounds. They are generous (every registry analogue sits far
// inside them) but keep a parsed spec inside what the simulator and the
// generators handle: no division by zero, no overflowing uint32 op fields,
// no effectively-unbounded simulations from a single HTTP request.
const (
	maxDataBytes  = 4 << 30 // ArrayBytes, SharedBytes
	maxCount      = 1 << 20 // Phases, SweepsPerPhase, ItemAccesses, QueueCap, CSPerThreadPerPhase
	maxInstr      = 1 << 30 // per-op instruction fields (must fit uint32 bursts)
	maxItems      = 1 << 26 // task/pipeline items
	maxLocks      = 1 << 16 // NumLocks
	maxStages     = 64      // pipeline stages
	maxEffPar     = 4096    // EffectiveParallelism
	minEffPar     = 0.1     // smallest non-zero EffectiveParallelism
	maxStageWT    = 1e6     // single stage weight
	maxGraceValue = 1 << 62 // Lock/BarrierGrace (cycles)
)

// Validate checks the spec for consistency. Errors name the offending field
// and the accepted range, so a rejected bring-your-own-benchmark spec tells
// its author exactly what to fix.
func (s Spec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("workload %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fmt.Errorf("workload spec: name is required (it labels reports and logs)")
	}
	switch s.Kind {
	case KindDataParallel:
		if s.ArrayBytes < lineBytes {
			return fail("data-parallel needs array_bytes >= %d (one cache line), got %d", lineBytes, s.ArrayBytes)
		}
		if s.SweepsPerPhase <= 0 || s.Phases <= 0 {
			return fail("data-parallel needs sweeps_per_phase >= 1 and phases >= 1, got %d and %d",
				s.SweepsPerPhase, s.Phases)
		}
		if s.SweepsPerPhase > maxCount || s.Phases > maxCount {
			return fail("sweeps_per_phase and phases must be <= %d", maxCount)
		}
	case KindTaskQueue:
		if s.Items <= 0 || s.ItemInstr <= 0 {
			return fail("task-queue needs items >= 1 and item_instr >= 1, got %d and %d", s.Items, s.ItemInstr)
		}
	case KindPipeline:
		if s.Items <= 0 {
			return fail("pipeline needs items >= 1, got %d", s.Items)
		}
		if len(s.Stages) < 2 {
			return fail("pipeline needs >= 2 stages, got %d", len(s.Stages))
		}
		if len(s.Stages) > maxStages {
			return fail("pipeline supports at most %d stages, got %d", maxStages, len(s.Stages))
		}
		for i, st := range s.Stages {
			if !(st.Weight > 0) || st.Weight > maxStageWT { // !(>0) also catches NaN
				return fail("stage %d weight must be in (0, %g], got %v", i, float64(maxStageWT), st.Weight)
			}
		}
	case KindTrace:
		if s.traceData == nil {
			return fail("kind \"trace\" replays a recorded binary op trace and must be built from one" +
				" (record with speedup-stack -record or speedupstack.RecordTrace, then load the file;" +
				" a JSON spec cannot carry trace data)")
		}
		if s.TraceHash != s.traceData.HashHex() {
			return fail("trace_hash %q does not match the attached trace (%s)", s.TraceHash, s.traceData.HashHex())
		}
	default:
		return fail("unknown kind %d (want data_parallel, task_queue or pipeline)", s.Kind)
	}

	// Bounds shared by every family.
	if s.ArrayBytes < 0 || s.ArrayBytes > maxDataBytes {
		return fail("array_bytes must be in [0, %d], got %d", int64(maxDataBytes), s.ArrayBytes)
	}
	if s.SharedBytes < 0 || s.SharedBytes > maxDataBytes {
		return fail("shared_bytes must be in [0, %d], got %d", int64(maxDataBytes), s.SharedBytes)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"store_frac", s.StoreFrac},
		{"shared_frac", s.SharedFrac},
		{"shared_store_frac", s.SharedStoreFrac},
		{"overhead_frac", s.OverheadFrac},
	} {
		if !(f.v >= 0 && f.v <= 1) { // negated form also catches NaN
			return fail("%s must be a fraction in [0, 1], got %v", f.name, f.v)
		}
	}
	if s.SharedFrac > 0 && s.SharedBytes < lineBytes {
		return fail("shared_frac %v needs shared_bytes >= %d (one cache line), got %d",
			s.SharedFrac, lineBytes, s.SharedBytes)
	}
	if e := s.EffectiveParallelism; !(e == 0 || (e >= minEffPar && e <= maxEffPar)) {
		return fail("effective_parallelism must be 0 (balanced) or in [%g, %g], got %v",
			minEffPar, float64(maxEffPar), e)
	}
	for _, n := range []struct {
		name string
		v    int
		max  int
	}{
		{"instr_per_access", s.InstrPerAccess, maxInstr},
		{"cs_instr", s.CSInstr, maxInstr},
		{"item_instr", s.ItemInstr, maxInstr},
		{"dispatch_instr", s.DispatchInstr, maxInstr},
		{"cs_per_thread_per_phase", s.CSPerThreadPerPhase, maxCount},
		{"num_locks", s.NumLocks, maxLocks},
		{"items", s.Items, maxItems},
		{"item_accesses", s.ItemAccesses, maxCount},
		{"queue_cap", s.QueueCap, maxCount},
	} {
		if n.v < 0 || n.v > n.max {
			return fail("%s must be in [0, %d], got %d", n.name, n.max, n.v)
		}
	}
	if s.LockGrace > maxGraceValue || s.BarrierGrace > maxGraceValue {
		return fail("lock_grace and barrier_grace must be <= %d cycles", uint64(maxGraceValue))
	}
	return nil
}

// Canonical returns the spec with every field the Kind's generators do not
// read zeroed. Program generation is invariant under canonicalization — the
// canonical spec produces bit-identical op streams at every thread count —
// so it is the right input for Fingerprint: two specs that differ only in
// inert fields describe the same workload and hash identically.
func (s Spec) Canonical() Spec {
	c := s
	if c.SharedFrac == 0 {
		// No shared accesses: the shared-region shape is inert.
		c.SharedBytes, c.SharedStoreFrac, c.RandomShared = 0, 0, false
	}
	if c.NumLocks == 1 {
		// One lock and "unset" route every critical section to the same lock.
		c.NumLocks = 0
	}
	switch c.Kind {
	case KindDataParallel:
		c.Items, c.ItemInstr, c.ItemAccesses, c.DispatchInstr = 0, 0, 0, 0
		c.Stages, c.QueueCap = nil, 0
		if c.CSPerThreadPerPhase == 0 || c.CSInstr == 0 {
			// Critical sections fire only when both knobs are set.
			c.CSPerThreadPerPhase, c.CSInstr, c.NumLocks = 0, 0, 0
		}
	case KindTaskQueue:
		c.SweepsPerPhase, c.Phases, c.InstrPerAccess = 0, 0, 0
		c.RandomPrivate, c.RandomShared = false, false // addressing is fixed per family
		c.CSPerThreadPerPhase = 0
		c.Stages, c.QueueCap = nil, 0
		if c.CSInstr == 0 {
			c.NumLocks = 0
		}
	case KindPipeline:
		c.SweepsPerPhase, c.Phases, c.InstrPerAccess = 0, 0, 0
		c.RandomPrivate, c.RandomShared = false, false
		c.SharedStoreFrac = 0 // pipeline shared accesses use StoreFrac
		c.EffectiveParallelism = 0
		c.CSPerThreadPerPhase, c.CSInstr, c.NumLocks, c.DispatchInstr = 0, 0, 0, 0
	case KindTrace:
		// Replay reads nothing but the trace itself and the grace
		// overrides: the generator knobs are all inert, and the identity
		// is exactly {kind, trace_hash, lock_grace, barrier_grace}.
		d := c.traceData
		c = Spec{Name: c.Name, Suite: c.Suite, Kind: KindTrace, TraceHash: c.TraceHash,
			LockGrace: c.LockGrace, BarrierGrace: c.BarrierGrace}
		c.traceData = d
	}
	return c
}

// overheadAt returns the effective overhead fraction for a run with the
// given thread count (OverheadFrac is the 16-thread calibration point).
func (s Spec) overheadAt(threads int) float64 {
	return s.OverheadFrac * float64(threads) / 16
}

// TunePolicy applies the benchmark's synchronization-library overrides to a
// machine policy.
func (s Spec) TunePolicy(p syncprim.Policy) syncprim.Policy {
	if s.LockGrace != 0 {
		p.LockSpinGrace = s.LockGrace
	}
	if s.BarrierGrace != 0 {
		p.BarrierSpinGrace = s.BarrierGrace
	}
	return p
}

// Parallel builds the per-thread programs for a run with threads threads.
func (s Spec) Parallel(threads int) ([]trace.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if threads <= 0 {
		return nil, fmt.Errorf("workload %s: need at least one thread", s.Name)
	}
	switch s.Kind {
	case KindDataParallel:
		return s.dataParallelPrograms(threads), nil
	case KindTaskQueue:
		return s.taskQueuePrograms(threads), nil
	case KindPipeline:
		return s.pipelinePrograms(threads), nil
	case KindTrace:
		return s.tracePrograms(threads)
	}
	return nil, fmt.Errorf("workload %s: unknown kind", s.Name)
}

// Sequential builds the single-threaded reference program executing the
// same total work without synchronization or parallelization overhead.
func (s Spec) Sequential() (trace.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindDataParallel:
		return s.dataParallelSequential(), nil
	case KindTaskQueue:
		return s.taskQueueSequential(), nil
	case KindPipeline:
		return s.pipelineSequential(), nil
	case KindTrace:
		return s.traceSequential()
	}
	return nil, fmt.Errorf("workload %s: unknown kind", s.Name)
}

// Address-space layout. Regions are separated far enough that no benchmark
// configuration can overlap them.
const (
	privateBase = 0x1000_0000_0000
	sharedBase  = 0x2000_0000_0000
	lineBytes   = 64
)

// workShares returns each thread's share of the per-phase work, skewed so
// that aggregate speedup saturates near EffectiveParallelism. Shares follow
// share_i ∝ (1 - i/T)^gamma with gamma = T/E - 1; ranks rotate across
// phases so no single thread is permanently heavy.
func workShares(threads int, effective float64) []float64 {
	shares := make([]float64, threads)
	if effective <= 0 || effective >= float64(threads) {
		for i := range shares {
			shares[i] = 1 / float64(threads)
		}
		return shares
	}
	gamma := float64(threads)/effective - 1
	sum := 0.0
	for i := range shares {
		base := 1 - float64(i)/float64(threads)
		shares[i] = pow(base, gamma)
		sum += shares[i]
	}
	for i := range shares {
		shares[i] /= sum
	}
	return shares
}

// pow computes base^exp for positive base without importing math (keeps the
// generator dependency-free and deterministic across platforms).
func pow(base, exp float64) float64 {
	if base <= 0 {
		return 0
	}
	// exp = int + frac; use repeated squaring for the integer part and a
	// short ln/exp series for the fractional part.
	n := int(exp)
	frac := exp - float64(n)
	result := 1.0
	b := base
	for n > 0 {
		if n&1 == 1 {
			result *= b
		}
		b *= b
		n >>= 1
	}
	if frac > 1e-9 {
		result *= expf(frac * lnf(base))
	}
	return result
}

func lnf(x float64) float64 {
	// ln(x) via atanh identity: ln(x) = 2*atanh((x-1)/(x+1)).
	y := (x - 1) / (x + 1)
	y2 := y * y
	term := y
	sum := 0.0
	for k := 0; k < 40; k++ {
		sum += term / float64(2*k+1)
		term *= y2
	}
	return 2 * sum
}

func expf(x float64) float64 {
	sum := 1.0
	term := 1.0
	for k := 1; k < 30; k++ {
		term *= x / float64(k)
		sum += term
	}
	return sum
}

// splitInts partitions total into len(shares) integer parts proportional to
// shares, summing exactly to total (remainder goes to the largest share).
func splitInts(total int, shares []float64) []int {
	parts := make([]int, len(shares))
	assigned := 0
	largest := 0
	for i, sh := range shares {
		parts[i] = int(float64(total) * sh)
		assigned += parts[i]
		if shares[i] > shares[largest] {
			largest = i
		}
	}
	parts[largest] += total - assigned
	return parts
}
