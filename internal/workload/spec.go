// Package workload defines the synthetic benchmark analogues standing in for
// the paper's SPLASH-2 / PARSEC / Rodinia binaries.
//
// Each analogue is a Spec: a behavioural description (data footprint,
// sharing, memory intensity, synchronization structure, work imbalance,
// parallelization overhead) from which deterministic per-thread programs are
// generated. The specs in registry.go are calibrated so that, on the default
// machine, each analogue reproduces the published scaling category, the
// approximate 16-thread speedup, and the dominant speedup-stack components
// of its namesake (paper Figure 6).
//
// Three structural families cover the suite:
//
//   - Data-parallel: barrier-separated phases; each thread sweeps its slice
//     of a global array, with optional shared-region accesses and critical
//     sections. Work imbalance is injected with a tunable skew, which the
//     spin-then-yield barriers convert into spinning/yielding exactly as in
//     the paper (Section 3.4: barrier imbalance is classified as
//     synchronization).
//   - Task-queue: items are dispensed under a global lock whose hold time
//     throttles effective parallelism (cholesky-, freqmine-style). Whether
//     the resulting waits show up as spinning or yielding depends on the
//     lock library's spin grace (SPLASH-2 locks spin; pthread mutexes park).
//   - Pipeline: stages connected by bounded queues, with serial input/output
//     stages (ferret-, dedup-style); starved stages yield, and the serial
//     stages cap the speedup at 1/w_serial.
package workload

import (
	"fmt"

	"repro/internal/syncprim"
	"repro/internal/trace"
)

// Kind selects the structural family of a benchmark.
type Kind uint8

// Benchmark families.
const (
	// KindDataParallel is the barrier-phased family.
	KindDataParallel Kind = iota
	// KindTaskQueue is the lock-dispensed task family.
	KindTaskQueue
	// KindPipeline is the queue-connected stage family.
	KindPipeline
)

// StageSpec describes one pipeline stage.
type StageSpec struct {
	// Weight is the stage's share of per-item work (weights are normalized).
	Weight float64
	// Serial pins the stage to exactly one thread (ferret's input/output).
	Serial bool
}

// Spec is the behavioural description of one benchmark analogue.
type Spec struct {
	// Name and Suite identify the benchmark (suite naming follows the
	// paper: splash2, parsec_small, parsec_medium, rodinia).
	Name  string
	Suite string
	Kind  Kind

	// --- Work volume -----------------------------------------------------

	// ArrayBytes is the total private-data footprint, partitioned among
	// threads (each thread sweeps its slice). For pipelines it is the
	// per-item data region footprint.
	ArrayBytes int64
	// SweepsPerPhase is how many times a thread walks its slice per phase;
	// values above 1 create temporal reuse, which turns shared-LLC
	// thrashing into negative interference (the private ATD would hit).
	SweepsPerPhase int
	// Phases is the number of barrier-separated phases.
	Phases int
	// InstrPerAccess is the computation between memory accesses, the
	// memory-intensity knob.
	InstrPerAccess int

	// --- Memory behaviour -------------------------------------------------

	// StoreFrac is the fraction of private accesses that are stores.
	StoreFrac float64
	// SharedBytes sizes the read-mostly shared region.
	SharedBytes int64
	// SharedFrac is the fraction of accesses that target the shared region;
	// cross-thread reuse there produces positive interference.
	SharedFrac float64
	// SharedStoreFrac is the fraction of shared accesses that are stores;
	// they trigger invalidations and coherence misses.
	SharedStoreFrac float64
	// RandomPrivate/RandomShared choose random addressing instead of
	// streaming within the respective regions.
	RandomPrivate bool
	RandomShared  bool

	// --- Parallel structure ------------------------------------------------

	// EffectiveParallelism caps the useful thread count: work shares are
	// skewed so that speedup saturates near this value, producing the
	// yield-dominated profiles of Figure 6. Zero means perfectly balanced.
	EffectiveParallelism float64
	// CSPerThreadPerPhase critical sections per thread and phase.
	CSPerThreadPerPhase int
	// CSInstr is the computation inside a critical section (work that also
	// exists in the sequential version).
	CSInstr int
	// NumLocks is the lock granularity (1 = one global lock).
	NumLocks int

	// --- Task-queue family -------------------------------------------------

	// Items is the total number of task items (task-queue and pipeline).
	Items int
	// ItemInstr is the computation per item.
	ItemInstr int
	// ItemAccesses is the number of memory accesses per item.
	ItemAccesses int
	// DispatchInstr is the serial work under the dispatch lock per item
	// (parallelization overhead: it does not exist sequentially).
	DispatchInstr int

	// --- Pipeline family ---------------------------------------------------

	// Stages describes the pipeline stages.
	Stages []StageSpec
	// QueueCap is the bounded-queue capacity between stages.
	QueueCap int

	// --- Overheads and library behaviour ------------------------------------

	// OverheadFrac adds this fraction of extra instructions in the parallel
	// version only (thread management, recomputation, lock handling),
	// calibrated at 16 threads and scaled linearly with the thread count
	// (communication and recomputation grow with parallelism). The
	// accounting hardware cannot see it; it surfaces as estimation error,
	// exactly as in the paper's Section 6 discussion.
	OverheadFrac float64
	// LockGrace/BarrierGrace override the sync library's spin-then-yield
	// thresholds (cycles); zero keeps the machine default. SPLASH-2-style
	// pure spinning uses a very large LockGrace.
	LockGrace    uint64
	BarrierGrace uint64

	// Seed is the base RNG seed; every derived generator seeds from it.
	Seed uint64
}

// Validate performs basic consistency checks.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindDataParallel:
		if s.ArrayBytes <= 0 || s.SweepsPerPhase <= 0 || s.Phases <= 0 {
			return fmt.Errorf("workload %s: data-parallel needs array/sweeps/phases", s.Name)
		}
	case KindTaskQueue:
		if s.Items <= 0 || s.ItemInstr <= 0 {
			return fmt.Errorf("workload %s: task-queue needs items and item work", s.Name)
		}
	case KindPipeline:
		if s.Items <= 0 || len(s.Stages) < 2 {
			return fmt.Errorf("workload %s: pipeline needs items and >=2 stages", s.Name)
		}
	default:
		return fmt.Errorf("workload %s: unknown kind %d", s.Name, s.Kind)
	}
	return nil
}

// overheadAt returns the effective overhead fraction for a run with the
// given thread count (OverheadFrac is the 16-thread calibration point).
func (s Spec) overheadAt(threads int) float64 {
	return s.OverheadFrac * float64(threads) / 16
}

// TunePolicy applies the benchmark's synchronization-library overrides to a
// machine policy.
func (s Spec) TunePolicy(p syncprim.Policy) syncprim.Policy {
	if s.LockGrace != 0 {
		p.LockSpinGrace = s.LockGrace
	}
	if s.BarrierGrace != 0 {
		p.BarrierSpinGrace = s.BarrierGrace
	}
	return p
}

// Parallel builds the per-thread programs for a run with threads threads.
func (s Spec) Parallel(threads int) ([]trace.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if threads <= 0 {
		return nil, fmt.Errorf("workload %s: need at least one thread", s.Name)
	}
	switch s.Kind {
	case KindDataParallel:
		return s.dataParallelPrograms(threads), nil
	case KindTaskQueue:
		return s.taskQueuePrograms(threads), nil
	case KindPipeline:
		return s.pipelinePrograms(threads), nil
	}
	return nil, fmt.Errorf("workload %s: unknown kind", s.Name)
}

// Sequential builds the single-threaded reference program executing the
// same total work without synchronization or parallelization overhead.
func (s Spec) Sequential() (trace.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindDataParallel:
		return s.dataParallelSequential(), nil
	case KindTaskQueue:
		return s.taskQueueSequential(), nil
	case KindPipeline:
		return s.pipelineSequential(), nil
	}
	return nil, fmt.Errorf("workload %s: unknown kind", s.Name)
}

// Address-space layout. Regions are separated far enough that no benchmark
// configuration can overlap them.
const (
	privateBase = 0x1000_0000_0000
	sharedBase  = 0x2000_0000_0000
	lineBytes   = 64
)

// workShares returns each thread's share of the per-phase work, skewed so
// that aggregate speedup saturates near EffectiveParallelism. Shares follow
// share_i ∝ (1 - i/T)^gamma with gamma = T/E - 1; ranks rotate across
// phases so no single thread is permanently heavy.
func workShares(threads int, effective float64) []float64 {
	shares := make([]float64, threads)
	if effective <= 0 || effective >= float64(threads) {
		for i := range shares {
			shares[i] = 1 / float64(threads)
		}
		return shares
	}
	gamma := float64(threads)/effective - 1
	sum := 0.0
	for i := range shares {
		base := 1 - float64(i)/float64(threads)
		shares[i] = pow(base, gamma)
		sum += shares[i]
	}
	for i := range shares {
		shares[i] /= sum
	}
	return shares
}

// pow computes base^exp for positive base without importing math (keeps the
// generator dependency-free and deterministic across platforms).
func pow(base, exp float64) float64 {
	if base <= 0 {
		return 0
	}
	// exp = int + frac; use repeated squaring for the integer part and a
	// short ln/exp series for the fractional part.
	n := int(exp)
	frac := exp - float64(n)
	result := 1.0
	b := base
	for n > 0 {
		if n&1 == 1 {
			result *= b
		}
		b *= b
		n >>= 1
	}
	if frac > 1e-9 {
		result *= expf(frac * lnf(base))
	}
	return result
}

func lnf(x float64) float64 {
	// ln(x) via atanh identity: ln(x) = 2*atanh((x-1)/(x+1)).
	y := (x - 1) / (x + 1)
	y2 := y * y
	term := y
	sum := 0.0
	for k := 0; k < 40; k++ {
		sum += term / float64(2*k+1)
		term *= y2
	}
	return 2 * sum
}

func expf(x float64) float64 {
	sum := 1.0
	term := 1.0
	for k := 1; k < 30; k++ {
		term *= x / float64(k)
		sum += term
	}
	return sum
}

// splitInts partitions total into len(shares) integer parts proportional to
// shares, summing exactly to total (remainder goes to the largest share).
func splitInts(total int, shares []float64) []int {
	parts := make([]int, len(shares))
	assigned := 0
	largest := 0
	for i, sh := range shares {
		parts[i] = int(float64(total) * sh)
		assigned += parts[i]
		if shares[i] > shares[largest] {
			largest = i
		}
	}
	parts[largest] += total - assigned
	return parts
}
