package workload

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Pipeline topology: stages connected by bounded queues. Serial stages
// (ferret's input and output) run on exactly one thread; the remaining
// threads split across the parallel middle stages. When there are fewer
// threads than stages, adjacent stages merge. Items are unit-of-work tokens;
// their data regions are shared between stages, so consumers reuse lines
// producers touched (positive interference plus coherence traffic).

// mergedStage is one effective stage after thread-count-aware merging.
type mergedStage struct {
	weight float64
	serial bool
}

// plan computes the effective stage list and per-stage thread counts for a
// given thread count.
func pipelinePlan(stages []StageSpec, threads int) (eff []mergedStage, nStage []int) {
	s := len(stages)
	effCount := s
	if threads < s {
		effCount = threads
	}
	eff = make([]mergedStage, effCount)
	// Merge contiguous groups of the original stages into effCount groups
	// of near-equal length.
	for g := 0; g < effCount; g++ {
		lo := g * s / effCount
		hi := (g + 1) * s / effCount
		m := mergedStage{serial: true}
		for i := lo; i < hi; i++ {
			m.weight += stages[i].Weight
			if !stages[i].Serial {
				m.serial = false
			}
		}
		eff[g] = m
	}
	// Normalize weights.
	total := 0.0
	for _, m := range eff {
		total += m.weight
	}
	for i := range eff {
		eff[i].weight /= total
	}
	// Thread assignment: serial stages get one thread; the rest go
	// round-robin over parallel stages (or over everything if all serial).
	nStage = make([]int, effCount)
	remaining := threads
	var parallel []int
	for i, m := range eff {
		if m.serial && remaining > 0 {
			nStage[i] = 1
			remaining--
		}
		if !m.serial {
			parallel = append(parallel, i)
		}
	}
	if len(parallel) == 0 {
		parallel = make([]int, effCount)
		for i := range parallel {
			parallel[i] = i
		}
	}
	for i := 0; remaining > 0; i++ {
		nStage[parallel[i%len(parallel)]]++
		remaining--
	}
	// Guarantee every stage has at least one thread (possible shortfall
	// when threads < number of serial stages is prevented by merging).
	for i := range nStage {
		if nStage[i] == 0 {
			nStage[i] = 1
		}
	}
	return eff, nStage
}

// stageOf maps a thread to its stage and rank within the stage.
func stageOf(nStage []int, tid int) (stage, rank int) {
	for s, n := range nStage {
		if tid < n {
			return s, tid
		}
		tid -= n
	}
	// Excess threads (defensive; assignment covers all by construction).
	return len(nStage) - 1, tid
}

// plProgram is one pipeline thread.
type plProgram struct {
	s       *Spec
	tid     int
	threads int

	eff    []mergedStage
	nStage []int
	stage  int
	rank   int
	closer bool // lowest-rank thread of the stage closes the next queue

	quota    int // producer item quota (stage 0 only)
	produced int
	localCnt int
	state    int
	access   int
	overhead int

	rng   *trace.RNG
	queue []trace.Op
	qpos  int
	ended bool
}

// Pipeline program states.
const (
	plProduce  = iota // stage 0: make and push items
	plPop             // stages > 0: pop next item
	plBody            // stages > 0: process popped item
	plConverge        // producers/middles: stage barrier then close
	plDone
)

// pipelinePrograms builds one program per thread.
func (s Spec) pipelinePrograms(threads int) []trace.Program {
	eff, nStage := pipelinePlan(s.Stages, threads)
	progs := make([]trace.Program, threads)
	spec := s
	for t := 0; t < threads; t++ {
		stage, rank := stageOf(nStage, t)
		p := &plProgram{
			s:       &spec,
			tid:     t,
			threads: threads,
			eff:     eff,
			nStage:  nStage,
			stage:   stage,
			rank:    rank,
			closer:  rank == 0,
			rng:     trace.NewRNG(s.Seed ^ (uint64(t)+31)*0x9e3779b97f4a7c15),
		}
		if stage == 0 {
			p.quota = s.Items / nStage[0]
			if rank == 0 {
				p.quota += s.Items % nStage[0]
			}
			p.state = plProduce
		} else {
			p.state = plPop
		}
		progs[t] = p
	}
	return progs
}

// registrations returns the machine registrations (queue capacities and
// barrier widths) a run at the given thread count needs. Pipelines derive
// them from the stage plan; trace replays carry them in the trace file;
// the other families register nothing (their barriers are machine-default).
func (s Spec) registrations(threads int) ([]trace.QueueReg, []trace.BarrierReg) {
	switch s.Kind {
	case KindPipeline:
		eff, nStage := pipelinePlan(s.Stages, threads)
		cap := s.QueueCap
		if cap <= 0 {
			cap = 16
		}
		queues := make([]trace.QueueReg, 0, len(eff)-1)
		for q := 0; q < len(eff)-1; q++ {
			queues = append(queues, trace.QueueReg{ID: uint32(q), Cap: cap})
		}
		barriers := make([]trace.BarrierReg, 0, len(eff))
		for st := 0; st < len(eff); st++ {
			barriers = append(barriers, trace.BarrierReg{ID: uint32(2000 + st), Parties: nStage[st]})
		}
		return queues, barriers
	case KindTrace:
		if s.traceData == nil {
			return nil, nil
		}
		return s.traceData.Queues(), s.traceData.Barriers()
	}
	return nil, nil
}

// PipelineOptions returns the machine registrations a run needs as simulator
// options (queue capacities and per-stage barrier widths for pipelines, the
// recorded registrations for trace replays).
func (s Spec) PipelineOptions(threads int) []sim.Option {
	queues, barriers := s.registrations(threads)
	if len(queues)+len(barriers) == 0 {
		return nil
	}
	opts := make([]sim.Option, 0, len(queues)+len(barriers))
	for _, q := range queues {
		opts = append(opts, sim.WithQueue(q.ID, q.Cap))
	}
	for _, b := range barriers {
		opts = append(opts, sim.WithBarrier(b.ID, b.Parties))
	}
	return opts
}

// pipelineSequential builds the single-threaded reference: every item
// processed end-to-end, no queues.
func (s Spec) pipelineSequential() trace.Program {
	spec := s
	eff, _ := pipelinePlan(s.Stages, len(s.Stages))
	return &plSeqProgram{
		s:   &spec,
		eff: eff,
		rng: trace.NewRNG(s.Seed ^ 0x77FF11),
	}
}

// Next implements trace.Program.
func (p *plProgram) Next(fb trace.Feedback) trace.Op {
	for {
		if p.qpos < len(p.queue) {
			op := p.queue[p.qpos]
			p.qpos++
			return op
		}
		if p.ended {
			return trace.End()
		}
		p.queue = p.queue[:0]
		p.qpos = 0
		p.refill(fb)
	}
}

// NextBatch implements trace.BatchProgram. Pipeline programs branch on pop
// feedback (plBody reads Feedback.PopOK), so a batch ends immediately after
// every KindPop: the plBody refill then always runs as the first refill of
// the following batch, with the simulator's fresh feedback — exactly the
// value Next would have seen.
func (p *plProgram) NextBatch(dst []trace.Op, fb trace.Feedback) int {
	n := 0
	for n < len(dst) {
		if p.qpos < len(p.queue) {
			op := p.queue[p.qpos]
			p.qpos++
			dst[n] = op
			n++
			if op.Kind == trace.KindPop {
				return n
			}
			continue
		}
		if p.ended {
			break
		}
		p.queue = p.queue[:0]
		p.qpos = 0
		p.refill(fb)
	}
	if n == 0 {
		dst[0] = trace.End()
		n = 1
	}
	return n
}

func (p *plProgram) refill(fb trace.Feedback) {
	switch p.state {
	case plProduce:
		if p.produced >= p.quota {
			p.state = plConverge
			p.queue = append(p.queue, trace.Barrier(uint32(2000+p.stage)))
			return
		}
		p.emitBody()
		if len(p.eff) > 1 {
			p.queue = append(p.queue, trace.Push(uint32(p.stage)))
		}
		p.produced++

	case plPop:
		p.queue = append(p.queue, trace.Pop(uint32(p.stage-1)))
		p.state = plBody

	case plBody:
		if !fb.PopOK {
			if p.stage == len(p.eff)-1 {
				p.finish()
				return
			}
			p.state = plConverge
			p.queue = append(p.queue, trace.Barrier(uint32(2000+p.stage)))
			return
		}
		p.emitBody()
		if p.stage < len(p.eff)-1 {
			p.queue = append(p.queue, trace.Push(uint32(p.stage)))
		}
		p.state = plPop

	case plConverge:
		if p.closer && p.stage < len(p.eff)-1 {
			p.queue = append(p.queue, trace.CloseQueue(uint32(p.stage)))
		}
		p.finish()
	}
}

func (p *plProgram) finish() {
	p.state = plDone
	p.queue = append(p.queue, trace.End())
	p.ended = true
}

// emitBody appends the stage's per-item work: weighted compute and accesses
// over the item's shared data region.
func (p *plProgram) emitBody() {
	s := p.s
	w := p.eff[p.stage].weight
	instr := int(float64(s.ItemInstr) * w)
	accesses := int(float64(s.ItemAccesses)*w + 0.5)
	item := p.localCnt*p.nStage[p.stage] + p.rank
	p.localCnt++
	emitItemWork(&p.queue, p.rng, s, item, instr, accesses, false)
	if s.overheadAt(p.threads) > 0 {
		p.overhead += int(s.overheadAt(p.threads) * 1000 * float64(instr))
		if p.overhead >= 64_000 {
			burst := trace.Compute(uint32(p.overhead / 1000))
			burst.Overhead = true
			p.queue = append(p.queue, burst)
			p.overhead = 0
		}
	}
}

// emitItemWork appends compute and memory ops for one item's processing.
// Item regions wrap around ArrayBytes, so successive stages touch the same
// lines (producer-consumer sharing).
func emitItemWork(queue *[]trace.Op, rng *trace.RNG, s *Spec, item, instr, accesses int, seq bool) {
	if accesses <= 0 {
		if instr > 0 {
			*queue = append(*queue, trace.Compute(uint32(instr)))
		}
		return
	}
	chunk := instr / accesses
	totalLines := max(1, int(s.ArrayBytes/lineBytes))
	itemLines := max(1, totalLines/max(1, s.QueueCap*8))
	base := (item * itemLines) % totalLines
	for a := 0; a < accesses; a++ {
		if chunk > 0 {
			*queue = append(*queue, trace.Compute(uint32(chunk)))
		}
		pc := 0x420000 + uint64(a%5)*4
		var addr uint64
		if s.SharedFrac > 0 && rng.Bool(s.SharedFrac) {
			sharedLines := uint64(s.SharedBytes / lineBytes)
			addr = sharedBase + rng.Uint64n(sharedLines)*lineBytes
		} else {
			addr = privateBase + uint64((base+a%itemLines)%totalLines)*lineBytes
		}
		if rng.Bool(s.StoreFrac) {
			*queue = append(*queue, trace.Store(addr, pc))
		} else {
			*queue = append(*queue, trace.Load(addr, pc))
		}
	}
}

// plSeqProgram is the sequential pipeline reference.
type plSeqProgram struct {
	s    *Spec
	eff  []mergedStage
	item int

	rng   *trace.RNG
	queue []trace.Op
	qpos  int
	ended bool
}

// Next implements trace.Program.
func (p *plSeqProgram) Next(trace.Feedback) trace.Op {
	for {
		if p.qpos < len(p.queue) {
			op := p.queue[p.qpos]
			p.qpos++
			return op
		}
		if p.ended {
			return trace.End()
		}
		p.queue = p.queue[:0]
		p.qpos = 0
		p.refill()
	}
}

// refill appends the next item's end-to-end work (all stages back to back)
// or the terminal op.
func (p *plSeqProgram) refill() {
	if p.item >= p.s.Items {
		p.queue = append(p.queue, trace.End())
		p.ended = true
		return
	}
	emitItemWork(&p.queue, p.rng, p.s, p.item,
		p.s.ItemInstr, p.s.ItemAccesses, true)
	p.item++
}

// NextBatch implements trace.BatchProgram; the sequential reference never
// pops, so batches only end when dst is full or the stream ends.
func (p *plSeqProgram) NextBatch(dst []trace.Op, _ trace.Feedback) int {
	return drainBatch(dst, &p.queue, &p.qpos, &p.ended, p.refill)
}
