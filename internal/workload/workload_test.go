package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/syncprim"
	"repro/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 28 {
		t.Fatalf("registry holds %d benchmarks, want 28 (paper Figure 6)", len(all))
	}
	seen := map[string]bool{}
	for _, b := range all {
		if err := b.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", b.FullName(), err)
		}
		if seen[b.FullName()] {
			t.Errorf("duplicate benchmark %s", b.FullName())
		}
		seen[b.FullName()] = true
		if b.PaperSpeedup16 <= 0 || b.PaperSpeedup16 > 16 {
			t.Errorf("%s: implausible paper speedup %v", b.FullName(), b.PaperSpeedup16)
		}
	}
	// The paper's suites are all represented.
	suites := map[string]int{}
	for _, b := range all {
		suites[b.Spec.Suite]++
	}
	for _, s := range []string{"splash2", "parsec_small", "parsec_medium", "rodinia"} {
		if suites[s] == 0 {
			t.Errorf("suite %s missing", s)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("cholesky_splash2"); !ok {
		t.Fatal("full name lookup failed")
	}
	if b, ok := ByName("cholesky"); !ok || b.Spec.Name != "cholesky" {
		t.Fatal("short name lookup failed")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("bogus name found")
	}
}

func TestWorkSharesProperties(t *testing.T) {
	f := func(tRaw, eRaw uint8) bool {
		threads := int(tRaw%31) + 1
		eff := float64(eRaw%40)/2 + 0.5
		shares := workShares(threads, eff)
		sum := 0.0
		prev := math.Inf(1)
		for _, s := range shares {
			if s < 0 || s > prev+1e-12 {
				return false // must be non-negative and non-increasing
			}
			prev = s
			sum += s
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkSharesSaturation(t *testing.T) {
	// The implied speedup 1/maxShare approximates EffectiveParallelism.
	for _, eff := range []float64{3, 6, 10} {
		shares := workShares(16, eff)
		implied := 1 / shares[0]
		if implied < eff*0.8 || implied > eff*1.2 {
			t.Errorf("eff=%v: implied parallelism %v", eff, implied)
		}
	}
	// Balanced cases.
	for _, eff := range []float64{0, 16, 100} {
		shares := workShares(16, eff)
		if math.Abs(shares[0]-1.0/16) > 1e-9 {
			t.Errorf("eff=%v not balanced: %v", eff, shares[0])
		}
	}
}

func TestSplitIntsExact(t *testing.T) {
	f := func(totalRaw uint16, n uint8) bool {
		total := int(totalRaw)
		parts := splitInts(total, workShares(int(n%15)+1, 5))
		sum := 0
		for _, p := range parts {
			if p < 0 {
				return false
			}
			sum += p
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// countWork drains a program and tallies instructions and memory ops.
func countWork(t *testing.T, p trace.Program) (instr, overhead, mem uint64) {
	t.Helper()
	fb := trace.Feedback{PopOK: true}
	for i := 0; i < 100_000_000; i++ {
		op := p.Next(fb)
		switch op.Kind {
		case trace.KindEnd:
			return
		case trace.KindCompute:
			instr += uint64(op.N)
			if op.Overhead {
				overhead += uint64(op.N)
			}
		case trace.KindLoad, trace.KindStore:
			instr += uint64(op.N)
			mem++
		case trace.KindPop:
			// Out of the simulator, pretend pops always succeed; producers
			// in this test are not connected.
		}
	}
	t.Fatal("program did not terminate")
	return
}

func TestDataParallelWorkConservation(t *testing.T) {
	b, _ := ByName("facesim_parsec_medium")
	seq, err := b.Spec.Sequential()
	if err != nil {
		t.Fatal(err)
	}
	seqInstr, seqOvh, seqMem := countWork(t, seq)
	if seqOvh != 0 {
		t.Fatalf("sequential reference has %d overhead instructions", seqOvh)
	}
	progs, err := b.Spec.Parallel(8)
	if err != nil {
		t.Fatal(err)
	}
	var mtInstr, mtOvh, mtMem uint64
	for _, p := range progs {
		i, o, m := countWork(t, p)
		mtInstr += i
		mtOvh += o
		mtMem += m
	}
	if mtMem != seqMem {
		t.Fatalf("memory ops differ: MT %d vs ST %d", mtMem, seqMem)
	}
	// Useful work identical; MT adds only the flagged overhead.
	if mtInstr-mtOvh != seqInstr {
		t.Fatalf("useful instructions differ: MT %d vs ST %d",
			mtInstr-mtOvh, seqInstr)
	}
}

func TestTaskQueueWorkConservation(t *testing.T) {
	b, _ := ByName("freqmine_parsec_small")
	seq, _ := b.Spec.Sequential()
	seqInstr, _, seqMem := countWork(t, seq)
	progs, _ := b.Spec.Parallel(4)
	var mtInstr, mtOvh, mtMem uint64
	for _, p := range progs {
		i, o, m := countWork(t, p)
		mtInstr += i
		mtOvh += o
		mtMem += m
	}
	if mtMem != seqMem {
		t.Fatalf("memory ops differ: MT %d vs ST %d", mtMem, seqMem)
	}
	if mtInstr-mtOvh != seqInstr {
		t.Fatalf("useful instructions differ: MT %d vs ST %d", mtInstr-mtOvh, seqInstr)
	}
}

func TestProgramDeterminism(t *testing.T) {
	b, _ := ByName("canneal_parsec_small")
	mk := func() (uint64, uint64, uint64) {
		progs, _ := b.Spec.Parallel(4)
		var i, o, m uint64
		for _, p := range progs {
			pi, po, pm := countWork(t, p)
			i, o, m = i+pi, o+po, m+pm
		}
		return i, o, m
	}
	i1, o1, m1 := mk()
	i2, o2, m2 := mk()
	if i1 != i2 || o1 != o2 || m1 != m2 {
		t.Fatal("generators are not deterministic")
	}
}

func TestPipelinePlanCoversAllThreads(t *testing.T) {
	stages := []StageSpec{
		{Weight: 0.3, Serial: true}, {Weight: 0.3}, {Weight: 0.3},
		{Weight: 0.1, Serial: true},
	}
	for threads := 2; threads <= 24; threads++ {
		eff, nStage := pipelinePlan(stages, threads)
		total := 0
		for _, n := range nStage {
			if n <= 0 {
				t.Fatalf("threads=%d: empty stage", threads)
			}
			total += n
		}
		if total < threads {
			t.Fatalf("threads=%d: only %d assigned", threads, total)
		}
		wsum := 0.0
		for _, m := range eff {
			wsum += m.weight
		}
		if math.Abs(wsum-1) > 1e-9 {
			t.Fatalf("threads=%d: weights sum to %v", threads, wsum)
		}
		if threads >= len(stages) && len(eff) != len(stages) {
			t.Fatalf("threads=%d: stages merged unnecessarily", threads)
		}
		if threads < len(stages) && len(eff) != threads {
			t.Fatalf("threads=%d: eff stages %d", threads, len(eff))
		}
	}
}

func TestPipelineSerialStagesGetOneThread(t *testing.T) {
	stages := []StageSpec{
		{Weight: 0.3, Serial: true}, {Weight: 0.4}, {Weight: 0.2},
		{Weight: 0.1, Serial: true},
	}
	_, nStage := pipelinePlan(stages, 16)
	if nStage[0] != 1 || nStage[3] != 1 {
		t.Fatalf("serial stages got %d and %d threads", nStage[0], nStage[3])
	}
	if nStage[1]+nStage[2] != 14 {
		t.Fatalf("middle stages got %d threads", nStage[1]+nStage[2])
	}
}

func TestStageOfRoundTrip(t *testing.T) {
	nStage := []int{1, 7, 7, 1}
	counts := make([]int, 4)
	for tid := 0; tid < 16; tid++ {
		s, r := stageOf(nStage, tid)
		if r < 0 || r >= nStage[s] {
			t.Fatalf("tid %d: rank %d out of range for stage %d", tid, r, s)
		}
		counts[s]++
	}
	for s, n := range nStage {
		if counts[s] != n {
			t.Fatalf("stage %d received %d threads, want %d", s, counts[s], n)
		}
	}
}

func TestTunePolicyOverrides(t *testing.T) {
	b, _ := ByName("cholesky_splash2") // SPLASH-2 spin locks
	base := b.Spec.TunePolicy(defaultTestPolicy())
	if base.LockSpinGrace != 1<<40 {
		t.Fatalf("lock grace override missing: %d", base.LockSpinGrace)
	}
	b2, _ := ByName("facesim_parsec_medium")
	p := b2.Spec.TunePolicy(defaultTestPolicy())
	if p.LockSpinGrace != defaultTestPolicy().LockSpinGrace {
		t.Fatal("unexpected override for pthread benchmark")
	}
}

func TestPowAgainstMath(t *testing.T) {
	for _, base := range []float64{0.1, 0.5, 0.9375, 1, 2, 7.3} {
		for _, exp := range []float64{0, 0.5, 1, 1.67, 2, 3.25} {
			got := pow(base, exp)
			want := math.Pow(base, exp)
			if math.Abs(got-want) > 1e-6*math.Max(1, want) {
				t.Fatalf("pow(%v,%v) = %v, want %v", base, exp, got, want)
			}
		}
	}
}

func TestValidateRejectsBrokenSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "x", Kind: KindDataParallel},                   // no array
		{Name: "x", Kind: KindTaskQueue},                      // no items
		{Name: "x", Kind: KindPipeline, Items: 10},            // no stages
		{Name: "x", Kind: Kind(99), ArrayBytes: 1, Phases: 1}, // unknown kind
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func defaultTestPolicy() syncprim.Policy { return syncprim.DefaultPolicy() }
