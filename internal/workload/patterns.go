package workload

// Contention patterns: small synthetic workloads that each isolate one
// scaling pathology and declare the speedup-stack component that must
// dominate it. They are the known-answer suite for the whole analysis
// stack — generator → simulator → accounting → stack → advisor — pinned by
// TestPatternKnownAnswers in internal/exp at 4 and 16 threads.
//
// The patterns are registered alongside the Figure 6 analogues (ByName and
// Names find them; the speedupd /v1/workloads listing and the CLIs accept
// them), but they are deliberately NOT part of All(): the paper-reproduction
// figures and the golden `experiments all` artifact hash span exactly the
// 28 analogues, and growing the pattern suite must never move them.
//
// Adding a pattern: append a Benchmark here with Suite "contention", a
// fresh Seed (901+), an ExpectedDominant component (a stack.Comp* name) and
// an ExpectedClass advisor classification, keep it cheap (every pattern
// runs at 1/4/16 threads in the whole-registry interval-invariant sweep and
// twice per thread count in the known-answer suite), and document its
// behaviour class in PAPER.md. The known-answer test picks it up
// automatically via Patterns().
var patterns = []Benchmark{
	{
		// A hot reference count: every thread read-modify-writes the same
		// cache line, which ping-pongs between private caches. The
		// accounting hardware cannot attribute coherence (the paper's
		// Section 6 blind spot — OracleComponents tracks it separately),
		// so the estimated stack pins the loss where the invalidation
		// misses land: contended DRAM, i.e. memory interference.
		Spec: Spec{
			Name: "hot_refcount", Suite: "contention", Kind: KindDataParallel,
			ArrayBytes: 1 << 16, SweepsPerPhase: 1, Phases: 2, InstrPerAccess: 250,
			StoreFrac: 0.05, SharedBytes: 64, SharedFrac: 0.45, SharedStoreFrac: 0.85,
			Seed: 901,
		},
		ExpectedDominant: "memory",
		ExpectedClass:    "saturated",
	},
	{
		// False sharing: logically private counters packed into a handful
		// of lines, updated at random. Same signature as hot_refcount —
		// coherence misses the hardware cannot attribute, surfacing as
		// memory interference — spread over a few lines instead of one.
		Spec: Spec{
			Name: "false_sharing", Suite: "contention", Kind: KindDataParallel,
			ArrayBytes: 1 << 16, SweepsPerPhase: 1, Phases: 2, InstrPerAccess: 250,
			StoreFrac: 0.05, SharedBytes: 512, SharedFrac: 0.45, SharedStoreFrac: 0.9,
			RandomShared: true, Seed: 902,
		},
		ExpectedDominant: "memory",
		ExpectedClass:    "saturated",
	},
	{
		// Queue handoff: a two-stage pipeline over a capacity-1 queue. Every
		// push and pop is a rendezvous; both stages stall on the queue, the
		// parked waits surface as yielding, and the handoff cost swamps the
		// item work — parallelizing this way is slower than not (the
		// advisor's one negative-scaling exemplar).
		Spec: Spec{
			Name: "queue_handoff", Suite: "contention", Kind: KindPipeline,
			Items: 3000, ItemInstr: 900, ItemAccesses: 2, ArrayBytes: 1 << 16,
			Stages:   []StageSpec{{Weight: 1}, {Weight: 1}},
			QueueCap: 1, Seed: 903,
		},
		ExpectedDominant: "yielding",
		ExpectedClass:    "negative",
	},
	{
		// Reader-writer skew: read-mostly threads serialized by a single
		// writer lock whose hold time far exceeds the adaptive library's
		// spin grace, so the waiters park and the wall-clock loss is
		// yielding (contrast lock_staircase, where the lock spins).
		Spec: Spec{
			Name: "rw_skew", Suite: "contention", Kind: KindDataParallel,
			ArrayBytes: 1 << 18, SweepsPerPhase: 1, Phases: 2, InstrPerAccess: 500,
			StoreFrac: 0.05, CSPerThreadPerPhase: 8, CSInstr: 60000, NumLocks: 1,
			Seed: 904,
		},
		ExpectedDominant: "yielding",
		ExpectedClass:    "saturated",
	},
	{
		// Barrier convoy: many short barrier-separated phases with skewed
		// work shares under pure-spin barriers (SPLASH-2 style grace), so
		// the fast threads burn their wait spinning.
		Spec: Spec{
			Name: "barrier_convoy", Suite: "contention", Kind: KindDataParallel,
			ArrayBytes: 1 << 18, SweepsPerPhase: 1, Phases: 12, InstrPerAccess: 600,
			StoreFrac: 0.1, EffectiveParallelism: 3.0,
			BarrierGrace: 1 << 40, Seed: 905,
		},
		ExpectedDominant: "spinning",
		ExpectedClass:    "saturated",
	},
	{
		// Lock staircase: one global spin lock (SPLASH-2 grace) with long
		// critical sections; threads ascend the lock queue one at a time,
		// spinning the whole climb.
		Spec: Spec{
			Name: "lock_staircase", Suite: "contention", Kind: KindDataParallel,
			ArrayBytes: 1 << 18, SweepsPerPhase: 1, Phases: 2, InstrPerAccess: 500,
			StoreFrac: 0.05, CSPerThreadPerPhase: 64, CSInstr: 4000, NumLocks: 1,
			LockGrace: 1 << 40, Seed: 906,
		},
		ExpectedDominant: "spinning",
		ExpectedClass:    "saturated",
	},
	{
		// Serial dispatch: a task queue whose per-item dispatch section (the
		// serial work under the global lock) rivals the item body, capping
		// the effective parallelism at body/dispatch. The hold time stays
		// far below the adaptive library's spin grace, so the convoy of
		// waiters spins instead of parking — an adaptive mutex under
		// high-frequency short holds never reaches the futex.
		Spec: Spec{
			Name: "dispatch_serial", Suite: "contention", Kind: KindTaskQueue,
			Items: 4000, ItemInstr: 1500, ItemAccesses: 2, DispatchInstr: 700,
			ArrayBytes: 1 << 18, StoreFrac: 0.1, Seed: 907,
		},
		ExpectedDominant: "spinning",
		ExpectedClass:    "saturated",
	},
	{
		// Drain tail: a fast producer stage buffers every item into an
		// oversized queue and exits, leaving the slow consumer stage to
		// drain the backlog for the rest of the run. The producer threads
		// have ended (the generated families park residual skew behind
		// convergence barriers everywhere else — the pipeline's final
		// stage is the one structure that ends unsynchronized), so the
		// idle shows up as end-of-run imbalance.
		Spec: Spec{
			Name: "drain_tail", Suite: "contention", Kind: KindPipeline,
			Items: 2000, ItemInstr: 2400, ItemAccesses: 2, ArrayBytes: 1 << 16,
			Stages:   []StageSpec{{Weight: 0.05}, {Weight: 0.95}},
			QueueCap: 2048, Seed: 908,
		},
		ExpectedDominant: "imbalance",
		ExpectedClass:    "saturated",
	},
	{
		// Memory wall: a streaming sweep too large for any cache with
		// little compute per access. Every thread misses to DRAM and the
		// banks saturate; the loss is memory interference.
		Spec: Spec{
			Name: "memory_wall", Suite: "contention", Kind: KindDataParallel,
			ArrayBytes: 8 << 20, SweepsPerPhase: 1, Phases: 1, InstrPerAccess: 60,
			StoreFrac: 0.3, Seed: 909,
		},
		ExpectedDominant: "memory",
		ExpectedClass:    "saturated",
	},
	{
		// LLC thrash: repeated sweeps over a working set that fits a
		// private LLC per thread but overflows the shared one, so the ATD's
		// private counterfactual hits where the shared cache misses —
		// negative cache interference by construction.
		Spec: Spec{
			Name: "llc_thrash", Suite: "contention", Kind: KindDataParallel,
			ArrayBytes: 4 << 20, SweepsPerPhase: 4, Phases: 1, InstrPerAccess: 200,
			StoreFrac: 0.1, Seed: 910,
		},
		ExpectedDominant: "cache",
		ExpectedClass:    "saturated",
	},
}

// Patterns returns the contention-pattern suite (Suite "contention"): the
// known-answer workloads with declared dominant components and advisor
// classifications. They are registered for lookup but excluded from All().
func Patterns() []Benchmark {
	out := make([]Benchmark, len(patterns))
	copy(out, patterns)
	return out
}
