package workload

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestParseSpecRoundTrip(t *testing.T) {
	src := []byte(`{
		"name": "mykernel", "suite": "custom", "kind": "data_parallel",
		"array_bytes": 4194304, "sweeps_per_phase": 2, "phases": 2,
		"instr_per_access": 1200, "store_frac": 0.2,
		"shared_bytes": 524288, "shared_frac": 0.1, "shared_store_frac": 0.05,
		"random_shared": true, "effective_parallelism": 9,
		"cs_per_thread_per_phase": 40, "cs_instr": 600, "num_locks": 8,
		"overhead_frac": 0.04, "seed": 7
	}`)
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "mykernel" || s.Kind != KindDataParallel || s.ArrayBytes != 4<<20 {
		t.Fatalf("parsed spec wrong: %+v", s)
	}
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(out)
	if err != nil {
		t.Fatalf("re-parse of marshalled canonical spec: %v", err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip changed the spec:\n%+v\n%+v", s, s2)
	}
	if s.Fingerprint() != s2.Fingerprint() {
		t.Fatal("round trip changed the fingerprint")
	}
}

func TestParseSpecRegistryRoundTrip(t *testing.T) {
	// Every registry analogue must survive marshal -> parse -> canonical
	// with its fingerprint intact: the registry is valid spec JSON.
	for _, b := range All() {
		data, err := json.Marshal(b.Spec)
		if err != nil {
			t.Fatalf("%s: %v", b.FullName(), err)
		}
		s, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: %v", b.FullName(), err)
		}
		if s.Fingerprint() != b.Spec.Fingerprint() {
			t.Errorf("%s: fingerprint changed across JSON round trip", b.FullName())
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"empty object", `{}`, "missing kind"},
		{"kind omitted", `{"name":"t","items":3,"item_instr":9}`, "missing kind"},
		{"kind null", `{"name":"t","kind":null,"items":3,"item_instr":9}`, "missing kind"},
		{"missing name", `{"kind":"data_parallel","array_bytes":64,"sweeps_per_phase":1,"phases":1}`, "name is required"},
		{"unknown field", `{"name":"x","kind":"data_parallel","array_byts":64}`, "array_byts"},
		{"bad kind", `{"name":"x","kind":"gpu_offload"}`, "unknown kind"},
		{"numeric kind", `{"name":"x","kind":1}`, "kind"},
		{"trailing data", `{"name":"x","kind":"task_queue","items":1,"item_instr":1} {}`, "trailing data"},
		{"not json", `hello`, "invalid character"},
		{"shared without bytes", `{"name":"x","kind":"data_parallel","array_bytes":64,
			"sweeps_per_phase":1,"phases":1,"shared_frac":0.5}`, "shared_bytes"},
		{"fraction out of range", `{"name":"x","kind":"data_parallel","array_bytes":64,
			"sweeps_per_phase":1,"phases":1,"store_frac":1.5}`, "store_frac"},
		{"negative count", `{"name":"x","kind":"task_queue","items":10,"item_instr":5,
			"item_accesses":-1}`, "item_accesses"},
		{"zero stage weight", `{"name":"x","kind":"pipeline","items":10,"array_bytes":64,
			"stages":[{"weight":0.5},{"weight":0}]}`, "weight"},
		{"tiny effective parallelism", `{"name":"x","kind":"data_parallel","array_bytes":64,
			"sweeps_per_phase":1,"phases":1,"effective_parallelism":0.01}`, "effective_parallelism"},
	}
	for _, c := range cases {
		_, err := ParseSpec([]byte(c.json))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestFingerprintIgnoresNaming(t *testing.T) {
	b, _ := ByName("cholesky_splash2")
	renamed := b.Spec
	renamed.Name, renamed.Suite = "totally-different", "elsewhere"
	if renamed.Fingerprint() != b.Spec.Fingerprint() {
		t.Error("renaming changed the fingerprint")
	}
	reseeded := b.Spec
	reseeded.Seed++
	if reseeded.Fingerprint() == b.Spec.Fingerprint() {
		t.Error("different seed, same fingerprint")
	}
}

func TestFingerprintIgnoresInertFields(t *testing.T) {
	b, _ := ByName("blackscholes_parsec_small") // data-parallel
	tweaked := b.Spec
	tweaked.Items, tweaked.ItemInstr, tweaked.QueueCap = 999, 123, 4 // task/pipeline knobs
	if tweaked.Fingerprint() != b.Spec.Fingerprint() {
		t.Error("fields the data-parallel generator never reads changed the fingerprint")
	}
	tweaked.InstrPerAccess++ // a live knob must matter
	if tweaked.Fingerprint() == b.Spec.Fingerprint() {
		t.Error("live field change kept the fingerprint")
	}
}

// drainOps pulls up to limit ops from a program (PopOK always true).
func drainOps(p trace.Program, limit int) []trace.Op {
	fb := trace.Feedback{PopOK: true}
	var ops []trace.Op
	for i := 0; i < limit; i++ {
		op := p.Next(fb)
		ops = append(ops, op)
		if op.Kind == trace.KindEnd {
			break
		}
	}
	return ops
}

// TestCanonicalPreservesPrograms is the contract Fingerprint rests on:
// canonicalization must not change generated op streams, for any registry
// analogue, sequentially or at any thread count. (The sweep engine may
// memoize a canonical inline spec and a raw registry spec under one key, so
// any divergence here would make cached results depend on arrival order.)
func TestCanonicalPreservesPrograms(t *testing.T) {
	const limit = 300_000
	for _, b := range All() {
		c := b.Spec.Canonical()
		if err := c.Validate(); err != nil {
			t.Errorf("%s: canonical form invalid: %v", b.FullName(), err)
			continue
		}
		if c.Fingerprint() != b.Spec.Fingerprint() {
			t.Errorf("%s: canonicalization not idempotent under Fingerprint", b.FullName())
		}
		seqA, err := b.Spec.Sequential()
		if err != nil {
			t.Fatalf("%s: %v", b.FullName(), err)
		}
		seqB, _ := c.Sequential()
		if !reflect.DeepEqual(drainOps(seqA, limit), drainOps(seqB, limit)) {
			t.Errorf("%s: sequential op stream changed under canonicalization", b.FullName())
		}
		for _, threads := range []int{1, 3, 16} {
			progsA, err := b.Spec.Parallel(threads)
			if err != nil {
				t.Fatalf("%s: %v", b.FullName(), err)
			}
			progsB, _ := c.Parallel(threads)
			for tid := range progsA {
				if !reflect.DeepEqual(drainOps(progsA[tid], limit), drainOps(progsB[tid], limit)) {
					t.Errorf("%s x%d thread %d: op stream changed under canonicalization",
						b.FullName(), threads, tid)
					break
				}
			}
		}
	}
}

func TestKindJSONVocabulary(t *testing.T) {
	for k, want := range map[Kind]string{
		KindDataParallel: `"data_parallel"`,
		KindTaskQueue:    `"task_queue"`,
		KindPipeline:     `"pipeline"`,
	} {
		got, err := json.Marshal(k)
		if err != nil || string(got) != want {
			t.Errorf("kind %d marshalled to %s (%v), want %s", k, got, err, want)
		}
	}
	if _, err := json.Marshal(Kind(99)); err == nil {
		t.Error("unknown kind marshalled")
	}
}

func TestSuggest(t *testing.T) {
	cases := map[string]string{
		"choleski":        "cholesky",
		"cholesky_splash": "cholesky_splash2",
		"blackscholes":    "blackscholes", // exact plain name
		"qwertyuiop":      "",             // nothing close
	}
	for in, want := range cases {
		if got := Suggest(in); got != want {
			t.Errorf("Suggest(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestUnknownBenchmarkError(t *testing.T) {
	err := UnknownBenchmarkError("choleski")
	if !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatal("error does not wrap ErrUnknownBenchmark")
	}
	if msg := err.Error(); !strings.Contains(msg, `did you mean "cholesky"?`) {
		t.Errorf("no suggestion in %q", msg)
	}
	if msg := UnknownBenchmarkError("qwertyuiop").Error(); strings.Contains(msg, "did you mean") {
		t.Errorf("implausible suggestion in %q", msg)
	}
}

func TestFullNameWithoutSuite(t *testing.T) {
	b := Benchmark{Spec: Spec{Name: "solo"}}
	if got := b.FullName(); got != "solo" {
		t.Errorf("FullName = %q, want solo", got)
	}
}
