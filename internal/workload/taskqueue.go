package workload

import "repro/internal/trace"

// tqProgram generates the op stream of one thread of a task-queue benchmark:
// items are dispensed under a global lock (the dispatch critical section),
// then processed independently. The dispatch hold time throttles effective
// parallelism; whether waiters spin or yield is the lock library's policy
// (cholesky's SPLASH-2 locks spin, freqmine's pthread mutexes park).
type tqProgram struct {
	s       *Spec
	tid     int
	threads int
	seq     bool

	itemStart int
	itemCount int
	done      int

	// Per-item walk state.
	inItem   bool
	access   int
	overhead int

	rng   *trace.RNG
	queue []trace.Op
	qpos  int
	ended bool
}

// taskQueuePrograms builds one program per thread. Items are distributed
// with the benchmark's skew so speedup saturates near
// EffectiveParallelism even before lock contention.
func (s Spec) taskQueuePrograms(threads int) []trace.Program {
	shares := workShares(threads, s.EffectiveParallelism)
	parts := splitInts(s.Items, shares)
	progs := make([]trace.Program, threads)
	spec := s
	start := 0
	for t := 0; t < threads; t++ {
		progs[t] = &tqProgram{
			s:         &spec,
			tid:       t,
			threads:   threads,
			itemStart: start,
			itemCount: parts[t],
			rng:       trace.NewRNG(s.Seed ^ (uint64(t)+11)*0x9e3779b97f4a7c15),
		}
		start += parts[t]
	}
	return progs
}

// taskQueueSequential builds the single-threaded reference: all items, no
// dispatch lock, no overhead.
func (s Spec) taskQueueSequential() trace.Program {
	spec := s
	return &tqProgram{
		s:         &spec,
		tid:       0,
		threads:   1,
		seq:       true,
		itemStart: 0,
		itemCount: s.Items,
		rng:       trace.NewRNG(s.Seed ^ 0x51723),
	}
}

// Next implements trace.Program.
func (p *tqProgram) Next(trace.Feedback) trace.Op {
	for {
		if p.qpos < len(p.queue) {
			op := p.queue[p.qpos]
			p.qpos++
			return op
		}
		if p.ended {
			return trace.End()
		}
		p.queue = p.queue[:0]
		p.qpos = 0
		p.refill()
	}
}

// NextBatch implements trace.BatchProgram: it drains whole refills into dst,
// emitting the identical op sequence Next would. Task-queue programs never
// pop, so a batch only ends when dst is full or the stream ends.
func (p *tqProgram) NextBatch(dst []trace.Op, _ trace.Feedback) int {
	return drainBatch(dst, &p.queue, &p.qpos, &p.ended, p.refill)
}

func (p *tqProgram) refill() {
	s := p.s
	if p.done >= p.itemCount {
		if !p.seq {
			// Converge on the final barrier so residual skew is classified
			// as synchronization, as the paper does for barrier imbalance.
			p.queue = append(p.queue, trace.Barrier(90))
		}
		p.queue = append(p.queue, trace.End())
		p.ended = true
		return
	}
	if !p.inItem {
		// Dispatch: grab the global task lock; the dispatch bookkeeping is
		// parallelization overhead (it does not exist sequentially).
		if !p.seq && s.DispatchInstr > 0 {
			dispatch := trace.Compute(uint32(s.DispatchInstr))
			dispatch.Overhead = true
			p.queue = append(p.queue,
				trace.Lock(0), dispatch, trace.Unlock(0))
		}
		// Critical-section work on shared structures: real work (the
		// sequential version computes it without a lock), serialized over
		// NumLocks locks — the update of shared factor panels in cholesky.
		if s.CSInstr > 0 {
			if p.seq {
				p.queue = append(p.queue, trace.Compute(uint32(s.CSInstr)))
			} else {
				lock := uint32(1)
				if s.NumLocks > 1 {
					lock = 1 + uint32(p.rng.Intn(s.NumLocks))
				}
				p.queue = append(p.queue,
					trace.Lock(lock),
					trace.Compute(uint32(s.CSInstr)),
					trace.Unlock(lock))
			}
		}
		p.inItem = true
		p.access = 0
		if s.ItemAccesses == 0 {
			p.queue = append(p.queue, trace.Compute(uint32(s.ItemInstr)))
			p.finishItem()
			return
		}
		return
	}

	// Item body: ItemInstr compute interleaved with ItemAccesses accesses,
	// emitted as a bounded run per refill (identical op stream, one refill
	// dispatch per run).
	chunk := s.ItemInstr / max(1, s.ItemAccesses)
	item := p.itemStart + p.done
	n := s.ItemAccesses - p.access
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		if chunk > 0 {
			p.queue = append(p.queue, trace.Compute(uint32(chunk)))
		}
		p.queue = append(p.queue, p.itemAccess(item, p.access))
		p.access++
	}
	if p.access >= s.ItemAccesses {
		p.finishItem()
	}
}

// itemAccess produces the access-th memory reference of the given item.
// Private references reuse one of 16 fixed blocks of the array, selected by
// the item's position (item groups own blocks, independent of the thread
// count, so the sequential reference touches identical data with identical
// locality). The intra-block reuse is what a private LLC would retain —
// shared-LLC thrashing of it is negative interference.
func (p *tqProgram) itemAccess(item, access int) trace.Op {
	s := p.s
	pc := 0x410000 + uint64(access%7)*4
	if s.SharedFrac > 0 && p.rng.Bool(s.SharedFrac) {
		sharedLines := uint64(s.SharedBytes / lineBytes)
		addr := sharedBase + p.rng.Uint64n(sharedLines)*lineBytes
		if p.rng.Bool(s.SharedStoreFrac) {
			return trace.Store(addr, pc)
		}
		return trace.Load(addr, pc)
	}
	const blocks = 16
	totalLines := max(blocks, int(s.ArrayBytes/lineBytes))
	blockLines := totalLines / blocks
	group := item * blocks / max(1, s.Items)
	line := group*blockLines + (item*s.ItemAccesses+access)%blockLines
	addr := privateBase + uint64(line)*lineBytes
	if p.rng.Bool(s.StoreFrac) {
		return trace.Store(addr, pc)
	}
	return trace.Load(addr, pc)
}

func (p *tqProgram) finishItem() {
	s := p.s
	p.inItem = false
	p.done++
	if !p.seq && s.overheadAt(p.threads) > 0 {
		p.overhead += int(s.overheadAt(p.threads) * 1000 * float64(s.ItemInstr))
		if p.overhead >= 64_000 {
			burst := trace.Compute(uint32(p.overhead / 1000))
			burst.Overhead = true
			p.queue = append(p.queue, burst)
			p.overhead = 0
		}
	}
}
