package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// JSON workload specs: the serialization layer that makes Spec a first-class
// bring-your-own-benchmark input. ParseSpec is the single entry point every
// layer uses — the speedup-stack CLI (-spec), the experiments CLI (custom
// -spec), the speedupd service (inline sweep cells, /v1/workloads/*) and the
// public speedupstack.ParseWorkload helper — so a spec file means exactly
// one thing everywhere. Identity is Fingerprint: a stable hash of the
// canonical spec that the sweep engine keys its memo by, making two
// identical specs (whatever their names) one simulation.

// kindNames is the JSON vocabulary for Kind, indexed by value.
var kindNames = [...]string{
	KindDataParallel: "data_parallel",
	KindTaskQueue:    "task_queue",
	KindPipeline:     "pipeline",
	KindTrace:        "trace",
}

// String names the kind ("data_parallel", "task_queue", "pipeline").
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText encodes the kind as its JSON name.
func (k Kind) MarshalText() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("workload: cannot encode unknown kind %d", uint8(k))
	}
	return []byte(kindNames[k]), nil
}

// UnmarshalText decodes a kind name, rejecting anything outside the
// vocabulary with the full list of accepted names.
func (k *Kind) UnmarshalText(text []byte) error {
	for v, name := range kindNames {
		if string(text) == name {
			*k = Kind(v)
			return nil
		}
	}
	return fmt.Errorf("workload: unknown kind %q (want %q, %q or %q)",
		text, kindNames[0], kindNames[1], kindNames[2])
}

// ParseSpec decodes, validates and canonicalizes one JSON workload spec.
// Decoding is strict: unknown fields and trailing data are errors, so a
// typo'd knob fails loudly instead of silently meaning "default". The
// returned spec is canonical (ParseSpec ∘ Marshal is the identity on its
// output) and safe to hand to the generators and the sweep engine.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("workload spec: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return Spec{}, fmt.Errorf("workload spec: trailing data after the spec object")
	}
	// Kind's zero value is a valid family (data_parallel), so the decoder
	// cannot tell "omitted" from "explicit": probe the raw object so a
	// forgotten kind fails loudly instead of silently meaning data_parallel
	// (and then blaming fields the author never set).
	var probe struct {
		Kind json.RawMessage `json:"kind"`
	}
	// A JSON null leaves the Kind field untouched just like omission does.
	if err := json.Unmarshal(data, &probe); err == nil &&
		(len(probe.Kind) == 0 || string(probe.Kind) == "null") {
		return Spec{}, fmt.Errorf("workload spec: missing kind (want %q, %q or %q)",
			kindNames[0], kindNames[1], kindNames[2])
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s.Canonical(), nil
}

// Fingerprint is the canonical identity of a workload: equal fingerprints
// mean behaviourally identical specs (identical op streams at every thread
// count), whatever they are named. It is comparable and so usable as a map
// key; the sweep engine's memo and the speedupd cache key on it.
type Fingerprint [sha256.Size]byte

// String returns the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 12 hex digits, for labels and log lines.
func (f Fingerprint) Short() string { return f.String()[:12] }

// fingerprintVersion salts the hash so any future change to the canonical
// encoding invalidates persisted fingerprints instead of silently colliding.
const fingerprintVersion = "speedupstack-spec-v1:"

// Fingerprint returns the stable hash of the canonical spec, excluding Name
// and Suite: naming labels a workload, it does not change what runs.
func (s Spec) Fingerprint() Fingerprint {
	c := s.Canonical()
	c.Name, c.Suite = "", ""
	// encoding/json emits struct fields in declaration order and shortest
	// round-trip float forms, so the encoding is deterministic.
	payload, err := json.Marshal(c)
	if err != nil {
		// Spec marshalling can only fail on an unencodable Kind; validated
		// specs never hit this, and an unvalidated one gets a distinct
		// "invalid" fingerprint rather than a panic.
		payload = []byte("invalid:" + err.Error())
	}
	h := sha256.New()
	io.WriteString(h, fingerprintVersion)
	h.Write(payload)
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
