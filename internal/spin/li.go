package spin

// LiConfig parameterizes the Li et al. backward-branch spin detector, kept
// as an ablation alternative to the Tian load-table scheme (the paper
// evaluates both and picks Tian for hardware simplicity, Section 4.3).
type LiConfig struct {
	// BranchEntries is the number of backward branches tracked.
	BranchEntries int
}

// LiDetector monitors backward branches: if the (compactly represented)
// processor state is unchanged since the previous occurrence of the same
// branch, the loop body made no progress and is considered a spin loop.
//
// In the simulator, "processor state" is abstracted as a 64-bit signature
// supplied by the caller: any architected change (a non-silent store, a
// register write with a new value) changes the signature.
type LiDetector struct {
	cfg     LiConfig
	entries []liEntry

	detectedCycles   uint64
	detectedEpisodes uint64
}

type liEntry struct {
	pc        uint64
	signature uint64
	lastTime  uint64
	spinStart uint64
	spinning  bool
	valid     bool
}

// NewLiDetector returns a LiDetector.
func NewLiDetector(cfg LiConfig) *LiDetector {
	if cfg.BranchEntries <= 0 {
		cfg.BranchEntries = 4
	}
	return &LiDetector{cfg: cfg, entries: make([]liEntry, cfg.BranchEntries)}
}

// ObserveBackwardBranch feeds one dynamic backward branch at pc with the
// current processor-state signature. It returns spin cycles newly charged
// (the interval since the previous occurrence when state was unchanged).
func (d *LiDetector) ObserveBackwardBranch(now, pc, signature uint64) uint64 {
	var e *liEntry
	for i := range d.entries {
		if d.entries[i].valid && d.entries[i].pc == pc {
			e = &d.entries[i]
			break
		}
	}
	if e == nil {
		e = &d.entries[0]
		for i := range d.entries {
			if !d.entries[i].valid {
				e = &d.entries[i]
				break
			}
			if d.entries[i].lastTime < e.lastTime {
				e = &d.entries[i]
			}
		}
		*e = liEntry{pc: pc, signature: signature, lastTime: now, valid: true}
		return 0
	}
	var charged uint64
	if e.signature == signature {
		// No architected change across the loop body: spinning.
		if !e.spinning {
			e.spinning = true
			e.spinStart = e.lastTime
			d.detectedEpisodes++
		}
		charged = now - e.lastTime
		d.detectedCycles += charged
	} else {
		e.spinning = false
	}
	e.signature = signature
	e.lastTime = now
	return charged
}

// DetectedCycles returns total charged spin cycles.
func (d *LiDetector) DetectedCycles() uint64 { return d.detectedCycles }

// DetectedEpisodes returns the number of distinct spin episodes observed.
func (d *LiDetector) DetectedEpisodes() uint64 { return d.detectedEpisodes }

// SizeBytes returns the hardware cost: per entry a PC (8B), a state
// signature (8B, the compact register-state representation), and a
// timestamp (6B) plus control state. Li et al. requires monitoring all
// register writes, which is why the paper deems it costlier than Tian's
// load table despite the similar table size.
func (d *LiDetector) SizeBytes() int {
	return len(d.entries)*23 + 8
}

// FeedEpisodeLi replays a fast-forwarded spin episode into a LiDetector:
// every loop iteration is a backward branch with an unchanged signature,
// terminated by one iteration with a changed signature. Iterations are
// collapsed; the charge is period-quantized like the real mechanism.
func FeedEpisodeLi(d *LiDetector, ep Episode) uint64 {
	iters := ep.Iterations()
	if iters == 0 {
		return 0
	}
	sig := ep.OldValue
	var total uint64
	// First occurrence arms the entry; subsequent unchanged occurrences
	// charge one period each. Collapse by charging (iters-1) periods
	// directly through two observations and a manual adjustment.
	total += d.ObserveBackwardBranch(ep.Start, ep.PC, sig)
	if iters > 1 {
		total += d.ObserveBackwardBranch(ep.Start+(iters-1)*ep.Period, ep.PC, sig)
	}
	d.ObserveBackwardBranch(ep.End, ep.PC, ep.NewValue)
	return total
}
