// Package spin implements hardware spin-detection mechanisms used to charge
// synchronization spinning to the speedup stack (paper Section 4.3).
//
// The primary detector follows Tian et al.: a small per-core load table
// watches load instructions; a load that returns the same value more than a
// threshold number of times is marked as a candidate spin load, and when a
// marked load finally observes a different value that was written by another
// core, the elapsed time since the load's first occurrence is classified as
// spinning.
//
// A second detector in the style of Li et al. (backward branches with
// unchanged processor state) is provided for ablation studies; the paper
// selects the Tian scheme for its lower hardware cost, and so does the
// default simulator configuration.
package spin

import "fmt"

// Config parameterizes the Tian-style detector.
type Config struct {
	// TableEntries is the load-table capacity (the paper assumes a spin
	// loop contains at most 8 loads, hence 8 entries).
	TableEntries int
	// Threshold is the number of identical-value repetitions after which a
	// load is marked as a candidate spin load.
	Threshold int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.TableEntries <= 0 || c.Threshold <= 0 {
		return fmt.Errorf("spin: non-positive parameter %+v", c)
	}
	return nil
}

// entry is one load-table row: PC, address, last value, a repetition count,
// the mark bit, and the timestamp of the first occurrence — exactly the
// fields the paper's cost model enumerates (Section 4.7).
type entry struct {
	pc        uint64
	addr      uint64
	value     uint64
	count     int
	marked    bool
	firstTime uint64
	valid     bool
}

// Detector is the Tian-style per-core spin detector.
type Detector struct {
	cfg     Config
	entries []entry

	detectedCycles   uint64
	detectedEpisodes uint64
	missedEpisodes   uint64 // episodes ended before reaching the threshold
}

// NewDetector returns a Detector.
func NewDetector(cfg Config) *Detector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Detector{cfg: cfg, entries: make([]entry, cfg.TableEntries)}
}

// ObserveLoad feeds one dynamic load into the detector. writtenByOther
// reports whether the loaded value was produced by a store from another core
// (the hardware learns this from the coherence protocol). It returns the
// spin cycles detected by this load (non-zero only when a marked load
// observes a remotely-written new value).
func (d *Detector) ObserveLoad(now, pc, addr, value uint64, writtenByOther bool) uint64 {
	e := d.find(pc)
	if e == nil {
		e = d.insert(pc)
		*e = entry{pc: pc, addr: addr, value: value, count: 1, firstTime: now, valid: true}
		return 0
	}
	if e.addr == addr && e.value == value {
		e.count++
		if e.count > d.cfg.Threshold {
			e.marked = true
		}
		return 0
	}
	// Value (or address) changed.
	detected := uint64(0)
	if e.marked && writtenByOther && now > e.firstTime {
		detected = now - e.firstTime
		d.detectedCycles += detected
		d.detectedEpisodes++
	} else if e.count > 1 {
		d.missedEpisodes++
	}
	*e = entry{pc: pc, addr: addr, value: value, count: 1, firstTime: now, valid: true}
	return detected
}

func (d *Detector) find(pc uint64) *entry {
	for i := range d.entries {
		if d.entries[i].valid && d.entries[i].pc == pc {
			return &d.entries[i]
		}
	}
	return nil
}

// insert victimizes an empty entry or the one with the oldest first
// occurrence (FIFO-ish replacement keeps the hardware trivial).
func (d *Detector) insert(pc uint64) *entry {
	victim := &d.entries[0]
	for i := range d.entries {
		e := &d.entries[i]
		if !e.valid {
			return e
		}
		if e.firstTime < victim.firstTime {
			victim = e
		}
	}
	return victim
}

// DetectedCycles returns the total spin cycles the detector has charged.
func (d *Detector) DetectedCycles() uint64 { return d.detectedCycles }

// DetectedEpisodes returns the number of spin episodes detected.
func (d *Detector) DetectedEpisodes() uint64 { return d.detectedEpisodes }

// MissedEpisodes returns the number of repeated-load episodes that ended
// below the threshold (undetected spinning, an error source in the paper's
// validation, Section 6).
func (d *Detector) MissedEpisodes() uint64 { return d.missedEpisodes }

// SizeBytes returns the hardware cost: per entry a 64-bit PC, 64-bit
// address, 64-bit data, mark bit and a 48-bit timestamp plus count bits.
// With 8 entries this reproduces the paper's 217 bytes per core.
func (d *Detector) SizeBytes() int {
	// 3×8 bytes (PC, addr, data) + 6 bytes timestamp + count/mark byte.
	perEntry := 27
	return len(d.entries)*perEntry + 1 // +1: table-level control state
}

// Episode describes one fast-forwarded spin interval; the simulator models
// test-and-test-and-set spinning as a blocked state (the spin loop hits the
// local L1 until the lock transfer) and synthesizes the load stream the
// detector would have seen.
type Episode struct {
	// PC and Addr identify the spin load (the lock or barrier word).
	PC, Addr uint64
	// Start is the time of the first spin-loop load.
	Start uint64
	// Period is the spin-loop iteration time in cycles.
	Period uint64
	// End is the time the awaited value changed (lock granted / barrier
	// released). The final load observes the new value.
	End uint64
	// OldValue/NewValue are the lock-word values before/after the change.
	OldValue, NewValue uint64
}

// Iterations returns the number of same-value loop iterations the episode
// would execute.
func (e Episode) Iterations() uint64 {
	if e.End <= e.Start || e.Period == 0 {
		return 0
	}
	return (e.End - e.Start) / e.Period
}

// FeedEpisode replays an episode into the detector without materializing
// every load: outcomes depend only on whether the iteration count crosses
// the threshold, so repetitions beyond threshold+1 are collapsed. It returns
// the spin cycles the detector charges for the episode.
func FeedEpisode(d *Detector, ep Episode) uint64 {
	iters := ep.Iterations()
	if iters == 0 {
		return 0
	}
	feed := iters
	if max := uint64(d.cfg.Threshold + 2); feed > max {
		feed = max
	}
	for i := uint64(0); i < feed; i++ {
		// Spread the collapsed observations across the true interval so the
		// recorded firstTime is exact.
		t := ep.Start + i*ep.Period
		d.ObserveLoad(t, ep.PC, ep.Addr, ep.OldValue, false)
	}
	// Bump the internal count to the true iteration total so diagnostics
	// reflect reality (marking already happened if it ever would).
	if e := d.find(ep.PC); e != nil && uint64(e.count) < iters {
		e.count = int(iters)
	}
	return d.ObserveLoad(ep.End, ep.PC, ep.Addr, ep.NewValue, true)
}
