package spin

import "testing"

func cfg() Config { return Config{TableEntries: 8, Threshold: 16} }

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{TableEntries: 0, Threshold: 4}).Validate(); err == nil {
		t.Fatal("zero entries accepted")
	}
}

func TestDetectsSpinAboveThreshold(t *testing.T) {
	d := NewDetector(cfg())
	pc, addr := uint64(0x40), uint64(0x1000)
	for i := 0; i <= 20; i++ {
		if got := d.ObserveLoad(uint64(i*10), pc, addr, 0, false); got != 0 {
			t.Fatalf("premature detection at iteration %d", i)
		}
	}
	detected := d.ObserveLoad(300, pc, addr, 1, true)
	if detected != 300 {
		t.Fatalf("detected %d cycles, want 300 (first load at t=0)", detected)
	}
	if d.DetectedEpisodes() != 1 || d.DetectedCycles() != 300 {
		t.Fatalf("episode bookkeeping wrong: %d eps, %d cycles",
			d.DetectedEpisodes(), d.DetectedCycles())
	}
}

func TestBelowThresholdUndetected(t *testing.T) {
	d := NewDetector(cfg())
	pc, addr := uint64(0x40), uint64(0x1000)
	for i := 0; i < 10; i++ { // 10 repetitions < threshold 16
		d.ObserveLoad(uint64(i*10), pc, addr, 0, false)
	}
	if got := d.ObserveLoad(200, pc, addr, 1, true); got != 0 {
		t.Fatalf("short episode detected (%d cycles)", got)
	}
	if d.MissedEpisodes() != 1 {
		t.Fatalf("missed episode not counted")
	}
}

func TestLocalWriteDoesNotTrigger(t *testing.T) {
	d := NewDetector(cfg())
	pc, addr := uint64(0x40), uint64(0x1000)
	for i := 0; i < 30; i++ {
		d.ObserveLoad(uint64(i*10), pc, addr, 0, false)
	}
	// Value changed but written by this core: not a spin release.
	if got := d.ObserveLoad(400, pc, addr, 1, false); got != 0 {
		t.Fatalf("locally-written change classified as spin (%d)", got)
	}
}

func TestTableEviction(t *testing.T) {
	d := NewDetector(Config{TableEntries: 2, Threshold: 4})
	// Three PCs compete for two entries; the oldest is evicted.
	d.ObserveLoad(0, 0x10, 0x100, 0, false)
	d.ObserveLoad(10, 0x20, 0x200, 0, false)
	d.ObserveLoad(20, 0x30, 0x300, 0, false) // evicts PC 0x10
	if d.find(0x10) != nil {
		t.Fatal("oldest entry not evicted")
	}
	if d.find(0x20) == nil || d.find(0x30) == nil {
		t.Fatal("surviving entries missing")
	}
}

func TestEpisodeIterations(t *testing.T) {
	ep := Episode{Start: 100, End: 1300, Period: 12}
	if got := ep.Iterations(); got != 100 {
		t.Fatalf("iterations = %d, want 100", got)
	}
	if (Episode{Start: 100, End: 100, Period: 12}).Iterations() != 0 {
		t.Fatal("empty episode has iterations")
	}
}

func TestFeedEpisodeDetected(t *testing.T) {
	d := NewDetector(cfg())
	ep := Episode{PC: 0x50, Addr: 0x2000, Start: 1000, Period: 12, End: 4000,
		OldValue: 0, NewValue: 1}
	got := FeedEpisode(d, ep)
	if got != 3000 {
		t.Fatalf("detected %d, want 3000", got)
	}
}

func TestFeedEpisodeTooShort(t *testing.T) {
	d := NewDetector(cfg())
	// 8 iterations < threshold: undetected, an error source the paper
	// acknowledges in Section 6.
	ep := Episode{PC: 0x50, Addr: 0x2000, Start: 1000, Period: 12, End: 1096,
		OldValue: 0, NewValue: 1}
	if got := FeedEpisode(d, ep); got != 0 {
		t.Fatalf("short episode detected: %d", got)
	}
}

func TestFeedEpisodeRepeats(t *testing.T) {
	// The same lock PC spins repeatedly; each episode is detected afresh.
	d := NewDetector(cfg())
	total := uint64(0)
	for i := 0; i < 5; i++ {
		start := uint64(i * 100000)
		total += FeedEpisode(d, Episode{
			PC: 0x60, Addr: 0x3000, Start: start, Period: 12,
			End: start + 2400, OldValue: 0, NewValue: 1,
		})
	}
	if total != 5*2400 {
		t.Fatalf("total detected %d, want %d", total, 5*2400)
	}
	if d.DetectedEpisodes() != 5 {
		t.Fatalf("episodes = %d, want 5", d.DetectedEpisodes())
	}
}

func TestDetectorSizeBytes(t *testing.T) {
	if got := NewDetector(cfg()).SizeBytes(); got != 217 {
		t.Fatalf("SizeBytes = %d, want 217 (paper budget)", got)
	}
}

func TestLiDetectorChargesUnchangedState(t *testing.T) {
	d := NewLiDetector(LiConfig{BranchEntries: 4})
	sig := uint64(0xDEAD)
	d.ObserveBackwardBranch(0, 0x80, sig)
	var total uint64
	for i := 1; i <= 10; i++ {
		total += d.ObserveBackwardBranch(uint64(i*20), 0x80, sig)
	}
	if total != 200 {
		t.Fatalf("charged %d, want 200", total)
	}
	// State change ends the episode.
	if got := d.ObserveBackwardBranch(220, 0x80, sig+1); got != 0 {
		t.Fatalf("changed state still charged %d", got)
	}
	if d.DetectedEpisodes() != 1 {
		t.Fatalf("episodes = %d, want 1", d.DetectedEpisodes())
	}
}

func TestLiFeedEpisode(t *testing.T) {
	d := NewLiDetector(LiConfig{BranchEntries: 4})
	got := FeedEpisodeLi(d, Episode{
		PC: 0x90, Start: 0, Period: 12, End: 1200, OldValue: 7, NewValue: 8,
	})
	// (iters-1) periods charged: 99 * 12 = 1188.
	if got != 1188 {
		t.Fatalf("charged %d, want 1188", got)
	}
}

func TestLiSizeSmallerThanNothing(t *testing.T) {
	li := NewLiDetector(LiConfig{BranchEntries: 4})
	if li.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}
