package sim

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/atd"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/spin"
	"repro/internal/syncprim"
	"repro/internal/trace"
)

// waitKind identifies what a blocked thread is waiting on.
type waitKind uint8

const (
	waitNone waitKind = iota
	waitLock
	waitBarrier
	waitQueuePop
	waitQueuePush
)

// thread is the runtime state of one software thread.
type thread struct {
	id   int
	prog trace.Program
	// bprog is prog's batching interface, or nil; batchRing buffers the
	// current chunk (ring[rpos:rlen] is unconsumed). Buffered ops stay
	// valid across blocking waits: feedback-sensitive programs end batches
	// after the feedback-producing op (the trace.BatchProgram contract).
	bprog trace.BatchProgram
	ring  []trace.Op
	rpos  int
	rlen  int
	fb    trace.Feedback

	// time is the thread's local execution cursor in cycles.
	time     uint64
	finished bool

	// Blocking-wait state.
	waiting     bool
	kind        waitKind
	waitID      uint32
	waitStart   uint64
	parked      bool   // OS has descheduled the thread (futex wait)
	parkedAt    uint64 // when it parked
	granted     bool
	grantAt     uint64 // effective grant time (before handoff/wake latency)
	grantPopOK  bool   // result for queue-pop grants
	grantHanded bool   // lock/queue grants transfer ownership directly

	det *spin.Detector
	ct  core.ThreadCounters
}

// Machine is one simulated CMP executing a set of software threads.
type Machine struct {
	cfg Config

	clock      uint64
	hier       *cache.Hierarchy
	memc       *mem.Controller
	atds       []*atd.Directory // per core: sampled (the hardware proposal)
	oracleATDs []*atd.Directory // per core: full coverage (ground truth)
	os         *sched.OS

	// LLC address decomposition, precomputed so one (set, tag) pair per
	// access feeds both tag directories (their geometry mirrors the LLC).
	llcLineShift uint
	llcSetBits   uint
	llcSetMask   uint64

	// Dispatch rounding, precomputed: cpu.Config.ComputeCycles divides by
	// DispatchWidth on every compute and memory op; for power-of-two
	// widths (the default four-wide core) the ceil-divide is a shift.
	dispPow2  bool
	dispShift uint
	dispRound uint64

	// Synchronization primitives, indexed directly by id. Workload
	// generators use small dense id spaces (locks 0..NumLocks, pipeline
	// queues/barriers per stage, one barrier per phase), so a grow-on-use
	// slice holds exactly as many slots as the map it replaced held
	// entries, while the per-op lookup is one bounds check instead of a
	// hash.
	locks    []*syncprim.Lock
	barriers []*syncprim.Barrier
	queues   []*syncprim.Queue

	threads    []*thread
	coreIdleAt []uint64
	finished   int

	// acct enables the interference-accounting hardware (the per-core
	// ATDs). It never affects timing — the directories only feed counters
	// — so runs whose accounting nobody reads (sequential references,
	// which contribute only Tp) skip the tag-directory walks entirely.
	acct bool

	// Fast-mode state (Config.Mode == ModeFast, fast.go): fastMask selects
	// the detailed LLC sets (set&fastMask == 0) and fastCores holds the
	// per-core extrapolation accumulators.
	fast      bool
	fastMask  uint64
	fastCores []fastCore

	// Accounting-shard state (WithAccountingShards, shards.go): shardN
	// worker goroutines replay the deferred tag-directory walks; zero means
	// inline accounting.
	shardN       int
	shardCh      []chan shardBatch
	shardBufs    [][]atdRec
	shardParts   [][]threadCounters
	shardWG      sync.WaitGroup
	shardBufPool sync.Pool

	// quantum is the effective relaxed-synchronization quantum of the
	// current run: cfg.Quantum, scaled in fast mode, or the whole horizon
	// for the single-threaded single-core shape. Set by Run.
	quantum uint64

	// ops counts executed trace operations (Result.TotalOps).
	ops uint64

	// Interval accounting (see intervals.go): when snapEvery is non-zero
	// the machine snapshots the cumulative per-thread counters into snaps
	// every snapEvery committed ops; nextSnap is the next boundary.
	// Snapshots never affect timing.
	snapEvery uint64
	nextSnap  uint64
	snaps     []core.IntervalSnapshot
}

// batchSize is the per-thread op ring capacity for batching programs.
const batchSize = 512

// computeCycles is cpu.Config.ComputeCycles with the division replaced by
// the precomputed shift for power-of-two dispatch widths.
func (m *Machine) computeCycles(instrs uint64) uint64 {
	if m.dispPow2 {
		return (instrs + m.dispRound) >> m.dispShift
	}
	return m.cfg.CPU.ComputeCycles(instrs)
}

// grow extends s so that id is a valid index.
func grow[T any](s []T, id uint32) []T {
	if int(id) < len(s) {
		return s
	}
	return append(s, make([]T, int(id)+1-len(s))...)
}

// NewMachine builds a machine executing one program per software thread.
// len(progs) may exceed cfg.Cores (the OS time-slices, Figure 7) but must be
// at least 1.
func NewMachine(cfg Config, progs []trace.Program) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("sim: no thread programs")
	}
	m := &Machine{
		acct:         true,
		cfg:          cfg,
		hier:         cache.NewHierarchy(cfg.Cores, cfg.L1, cfg.LLC),
		memc:         mem.NewController(cfg.Mem, cfg.Cores),
		os:           sched.New(cfg.Sched, cfg.Cores, len(progs)),
		coreIdleAt:   make([]uint64, cfg.Cores),
		llcLineShift: uint(bits.TrailingZeros64(uint64(cfg.LLC.LineBytes))),
		llcSetBits:   uint(bits.TrailingZeros64(uint64(cfg.LLC.Sets()))),
		llcSetMask:   uint64(cfg.LLC.Sets()) - 1,
	}
	if w := uint64(cfg.CPU.DispatchWidth); w&(w-1) == 0 {
		m.dispPow2 = true
		m.dispShift = uint(bits.TrailingZeros64(w))
		m.dispRound = w - 1
	}
	// In fast mode the oracle directory samples at the detailed-set stride
	// (it can only ever observe detailed sets) and its counters are
	// extrapolated by LLCAccesses/OracleATDAccesses; in exact mode it keeps
	// full coverage, making that factor exactly 1.
	oracleShift := uint(0)
	if cfg.Mode == ModeFast {
		m.fast = true
		m.fastMask = uint64(1)<<cfg.FastSetShift - 1
		m.fastCores = make([]fastCore, cfg.Cores)
		oracleShift = cfg.FastSetShift
	}
	m.atds = make([]*atd.Directory, cfg.Cores)
	m.oracleATDs = make([]*atd.Directory, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		m.atds[c] = atd.New(cfg.atdConfig(cfg.ATDSampleShift))
		m.oracleATDs[c] = atd.New(cfg.atdConfig(oracleShift))
	}
	m.threads = make([]*thread, len(progs))
	for i, p := range progs {
		t := &thread{
			id:   i,
			prog: p,
			det:  spin.NewDetector(cfg.Spin),
		}
		if bp, ok := p.(trace.BatchProgram); ok {
			t.bprog = bp
			t.ring = make([]trace.Op, batchSize)
		}
		m.threads[i] = t
	}
	return m, nil
}

// reset restores a pooled machine to its just-constructed state for a new
// set of thread programs, reusing the multi-megabyte cache, ATD, controller
// and thread storage behind it. A reset machine is behaviorally
// indistinguishable from one built by NewMachine with the same
// configuration: simulation results are a deterministic function of
// (config, programs) either way (the pool determinism test and the
// experiments golden test pin this).
func (m *Machine) reset(progs []trace.Program) error {
	if len(progs) == 0 {
		return fmt.Errorf("sim: no thread programs")
	}
	m.clock, m.finished, m.ops = 0, 0, 0
	m.acct = true
	m.snapEvery, m.nextSnap, m.snaps = 0, 0, nil
	m.shardN = 0
	for i := range m.fastCores {
		m.fastCores[i] = fastCore{}
	}
	m.hier.Reset()
	m.memc.Reset()
	for _, d := range m.atds {
		d.Reset()
	}
	for _, d := range m.oracleATDs {
		d.Reset()
	}
	m.os = sched.New(m.cfg.Sched, m.cfg.Cores, len(progs))
	for i := range m.coreIdleAt {
		m.coreIdleAt[i] = 0
	}
	clear(m.locks)
	m.locks = m.locks[:0]
	clear(m.barriers)
	m.barriers = m.barriers[:0]
	clear(m.queues)
	m.queues = m.queues[:0]
	if cap(m.threads) >= len(progs) {
		m.threads = m.threads[:len(progs)]
	} else {
		m.threads = append(m.threads[:cap(m.threads)],
			make([]*thread, len(progs)-cap(m.threads))...)
	}
	for i, p := range progs {
		t := m.threads[i]
		if t == nil {
			t = new(thread)
			m.threads[i] = t
		}
		ring := t.ring
		*t = thread{id: i, prog: p, det: spin.NewDetector(m.cfg.Spin), ring: ring}
		if bp, ok := p.(trace.BatchProgram); ok {
			t.bprog = bp
			if t.ring == nil {
				t.ring = make([]trace.Op, batchSize)
			}
		}
	}
	return nil
}

// lock returns (creating if needed) the lock with the given id.
func (m *Machine) lock(id uint32) *syncprim.Lock {
	m.locks = grow(m.locks, id)
	l := m.locks[id]
	if l == nil {
		l = syncprim.NewLock()
		m.locks[id] = l
	}
	return l
}

// barrier returns the barrier with the given id, created on first use with
// as many parties as there are software threads.
func (m *Machine) barrier(id uint32) *syncprim.Barrier {
	m.barriers = grow(m.barriers, id)
	b := m.barriers[id]
	if b == nil {
		b = syncprim.NewBarrier(len(m.threads))
		m.barriers[id] = b
	}
	return b
}

// queue returns the queue with the given id, created on first use with a
// default capacity; workloads can size queues via RegisterQueue.
func (m *Machine) queue(id uint32) *syncprim.Queue {
	m.queues = grow(m.queues, id)
	q := m.queues[id]
	if q == nil {
		q = syncprim.NewQueue(16)
		m.queues[id] = q
	}
	return q
}

// RegisterQueue pre-creates queue id with the given capacity.
func (m *Machine) RegisterQueue(id uint32, capacity int) {
	m.queues = grow(m.queues, id)
	m.queues[id] = syncprim.NewQueue(capacity)
}

// RegisterBarrier pre-creates barrier id spanning parties threads.
func (m *Machine) RegisterBarrier(id uint32, parties int) {
	m.barriers = grow(m.barriers, id)
	m.barriers[id] = syncprim.NewBarrier(parties)
}

// Synthetic addresses and PCs for synchronization words, consumed by the
// spin detector. Placed far above workload data regions.
func syncAddr(kind waitKind, id uint32) uint64 {
	return 0xF000_0000_0000 + uint64(kind)<<32 + uint64(id)*64
}

func syncPC(kind waitKind, id uint32) uint64 {
	return 0xE000_0000 + uint64(kind)<<20 + uint64(id)*16
}

// Run executes the machine to completion and returns the result.
func (m *Machine) Run() (Result, error) {
	// Accounting shards only make sense when there is accounting to shard,
	// and are incompatible with interval snapshots (which read the
	// cumulative counters mid-run). memAccess keys off shardN alone, so
	// normalize it here.
	if m.shardN > 0 && (!m.acct || m.snapEvery != 0) {
		m.shardN = 0
	}
	if m.shardN > 0 {
		m.startShards()
	}
	quantum := m.cfg.Quantum
	if m.fast {
		quantum *= fastQuantumScale
	}
	if len(m.threads) == 1 && m.cfg.Cores == 1 {
		// One thread on one core — the sequential reference shape — has no
		// other actor contending for any shared resource, so the relaxed
		// synchronization quantum bounds nothing: boundaries are
		// unobservable and the run can execute as a single quantum. Timing
		// is identical op for op; only the per-quantum loop overhead goes.
		// The horizon is the quantum-stepped loop's effective one — the
		// first quantum boundary at or past MaxCycles — so runs finishing
		// inside the final partial quantum still complete, exactly as in
		// the stepped loop.
		quantum = (m.cfg.MaxCycles-1)/m.cfg.Quantum*m.cfg.Quantum + m.cfg.Quantum
		if quantum < m.cfg.MaxCycles { // overflow guard
			quantum = m.cfg.MaxCycles
		}
	}
	m.quantum = quantum
	for m.finished < len(m.threads) {
		if m.clock >= m.cfg.MaxCycles {
			if m.shardN > 0 {
				m.drainShards() // no worker goroutine outlives the run
			}
			return Result{}, fmt.Errorf("sim: exceeded MaxCycles=%d with %d/%d threads finished",
				m.cfg.MaxCycles, m.finished, len(m.threads))
		}
		qEnd := m.clock + quantum
		for c := 0; c < m.cfg.Cores; c++ {
			// Fast skip of cores whose thread has already executed past
			// this quantum boundary — runCore's own first check, hoisted
			// to avoid the call on the (common) nothing-to-do quanta.
			if tid := m.os.Running(c); tid >= 0 && m.threads[tid].time >= qEnd {
				continue
			}
			m.runCore(c, qEnd)
		}
		m.clock = qEnd
	}
	if m.shardN > 0 {
		m.drainShards()
	}
	return m.result(), nil
}

// runCore advances core c until the quantum boundary.
func (m *Machine) runCore(c int, qEnd uint64) {
	for {
		tid := m.os.Running(c)
		if tid < 0 {
			// Idle core: try to pull a ready thread.
			if !m.os.HasReady() {
				return
			}
			now := m.coreIdleAt[c]
			if now < qEnd-m.quantum {
				now = qEnd - m.quantum
			}
			if now >= qEnd {
				return
			}
			ntid, startAt := m.os.Schedule(c, now)
			if ntid < 0 {
				return
			}
			t := m.threads[ntid]
			if startAt > t.time {
				t.time = startAt
			}
			if t.waiting {
				// Woken from a parked synchronization wait.
				m.finishWait(t, t.time)
			}
			continue
		}

		t := m.threads[tid]
		if t.time >= qEnd {
			return
		}

		if t.waiting {
			if t.granted {
				resume := t.grantAt + m.cfg.Policy.HandoffCycles
				if resume > qEnd {
					return
				}
				if resume > t.time {
					t.time = resume
				}
				m.finishWait(t, t.time)
				continue
			}
			// Still waiting: park once the spin grace period expires.
			parkAt := t.waitStart + m.grace(t.kind)
			if parkAt < qEnd {
				t.parked = true
				t.parkedAt = parkAt
				m.os.Block(t.id, parkAt)
				m.coreIdleAt[c] = parkAt
				continue
			}
			return // spinning through the rest of the quantum
		}

		// Preempt on slice expiry when others are ready.
		if m.os.HasReady() && m.os.SliceExpired(c, t.time) {
			m.os.Preempt(c, t.time)
			m.coreIdleAt[c] = t.time
			continue
		}

		if blocked := m.execOps(t, c, qEnd); blocked {
			continue // wait state handled on the next iteration
		}
		if t.finished {
			continue
		}
		return // quantum exhausted
	}
}

// execOps executes thread t's operations on core c until the quantum ends,
// the thread blocks, or it finishes. It reports whether the thread entered
// a blocking wait. Ops are pulled from the thread's batch ring when the
// program supports batching (one NextBatch call per chunk instead of one
// interface call per op) and from Next otherwise.
func (m *Machine) execOps(t *thread, c int, qEnd uint64) (blocked bool) {
	pol := &m.cfg.Policy
	for t.time < qEnd && !t.finished {
		// Ops are read through a pointer into the ring (or a stack slot for
		// unbatched programs) to avoid copying the Op struct per operation.
		var opv trace.Op
		var op *trace.Op
		if t.rpos < t.rlen {
			op = &t.ring[t.rpos]
			t.rpos++
		} else if t.bprog != nil {
			t.rlen = t.bprog.NextBatch(t.ring, t.fb)
			t.rpos = 1
			op = &t.ring[0]
			// Ops are counted at batch granularity; programs end their
			// stream with KindEnd inside a batch, so on completed runs
			// every counted op executes.
			m.ops += uint64(t.rlen)
			if m.snapEvery != 0 && m.ops >= m.nextSnap {
				m.snapshot()
			}
		} else {
			opv = t.prog.Next(t.fb)
			op = &opv
			m.ops++
			if m.snapEvery != 0 && m.ops >= m.nextSnap {
				m.snapshot()
			}
		}
		switch op.Kind {
		case trace.KindCompute:
			t.time += m.computeCycles(uint64(op.N))
			t.ct.Instrs += uint64(op.N)
			if op.Overhead {
				t.ct.OverheadInstrs += uint64(op.N)
			}

		case trace.KindLoad, trace.KindStore:
			t.ct.Instrs += uint64(op.N)
			if op.Overhead {
				t.ct.OverheadInstrs += uint64(op.N)
			}
			m.memAccess(t, c, op)

		case trace.KindLock:
			t.time += pol.AcquireCycles
			if m.lock(op.ID).Acquire(t.id) {
				break
			}
			m.beginWait(t, waitLock, op.ID)
			return true

		case trace.KindUnlock:
			t.time += pol.AcquireCycles
			if next, transferred := m.lock(op.ID).Release(m.spinning); transferred {
				m.grantWaiter(m.threads[next], t.time, true)
			}

		case trace.KindBarrier:
			t.time += pol.AcquireCycles
			released, last := m.barrier(op.ID).Arrive(t.id)
			if last {
				for _, w := range released {
					m.grantWaiter(m.threads[w], t.time, true)
				}
				break
			}
			m.beginWait(t, waitBarrier, op.ID)
			return true

		case trace.KindPush:
			t.time += pol.QueueOpCycles
			granted, ok := m.queue(op.ID).Push(t.id, m.spinning)
			if ok {
				if granted >= 0 {
					m.grantWaiter(m.threads[granted], t.time, true)
				}
				break
			}
			m.beginWait(t, waitQueuePush, op.ID)
			return true

		case trace.KindPop:
			t.time += pol.QueueOpCycles
			granted, ok, closed := m.queue(op.ID).Pop(t.id, m.spinning)
			if ok {
				t.fb.PopOK = true
				if granted >= 0 {
					m.grantWaiter(m.threads[granted], t.time, true)
				}
				break
			}
			if closed {
				t.fb.PopOK = false
				break
			}
			m.beginWait(t, waitQueuePop, op.ID)
			return true

		case trace.KindCloseQueue:
			t.time += pol.QueueOpCycles
			for _, w := range m.queue(op.ID).Close() {
				m.grantWaiter(m.threads[w], t.time, false)
			}

		case trace.KindEnd:
			t.finished = true
			t.ct.FinishTime = t.time
			m.os.Finish(t.id, t.time)
			m.coreIdleAt[c] = t.time
			m.finished++
			return false

		default:
			panic(fmt.Sprintf("sim: unknown op kind %v", op.Kind))
		}
	}
	return false
}

// spinning reports whether waiter tid is still actively spinning (not yet
// parked); used as the barging preference for lock and queue handoffs.
func (m *Machine) spinning(tid int) bool {
	return !m.threads[tid].parked
}

// beginWait records that t started a blocking wait at its current time.
func (m *Machine) beginWait(t *thread, k waitKind, id uint32) {
	t.waiting = true
	t.kind = k
	t.waitID = id
	t.waitStart = t.time
	t.parked = false
	t.granted = false
	t.grantPopOK = true
}

// grantWaiter delivers a grant (lock ownership, barrier release, queue item
// or close notification) to waiting thread w at time g.
func (m *Machine) grantWaiter(w *thread, g uint64, popOK bool) {
	if !w.waiting || w.granted {
		panic(fmt.Sprintf("sim: grant to thread %d in unexpected state", w.id))
	}
	if g < w.waitStart {
		// Bounded quantum skew can deliver a grant "before" the wait began;
		// clamp so durations stay non-negative.
		g = w.waitStart
	}
	w.granted = true
	w.grantAt = g
	w.grantPopOK = popOK
	grace := m.grace(w.kind)
	if w.parked {
		m.os.Wake(w.id, g)
		return
	}
	if g > w.waitStart+grace {
		// The waiter logically parked before the grant but the engine had
		// not materialized the park yet (it happens lazily at quantum
		// granularity). Park and wake to keep OS bookkeeping exact.
		w.parked = true
		w.parkedAt = w.waitStart + grace
		m.os.Block(w.id, w.parkedAt)
		m.os.Wake(w.id, g)
	}
}

// grace returns the spin-then-yield threshold for a wait kind.
func (m *Machine) grace(k waitKind) uint64 {
	switch k {
	case waitLock:
		return m.cfg.Policy.LockSpinGrace
	case waitBarrier:
		return m.cfg.Policy.BarrierSpinGrace
	default:
		return m.cfg.Policy.QueueSpinGrace
	}
}

// finishWait finalizes accounting when thread t resumes at time resume.
func (m *Machine) finishWait(t *thread, resume uint64) {
	pol := &m.cfg.Policy
	grace := m.grace(t.kind)

	spinEnd := resume
	if t.parked {
		spinEnd = t.parkedAt
		if resume > t.parkedAt {
			t.ct.YieldCycles += resume - t.parkedAt
		}
	}
	if spinEnd > t.waitStart {
		spinDur := spinEnd - t.waitStart
		if spinDur > grace+pol.HandoffCycles {
			spinDur = grace + pol.HandoffCycles
		}
		t.ct.OracleSpinCycles += spinDur
		detected := spin.FeedEpisode(t.det, spin.Episode{
			PC:       syncPC(t.kind, t.waitID),
			Addr:     syncAddr(t.kind, t.waitID),
			Start:    t.waitStart,
			Period:   pol.SpinIterationCycles,
			End:      t.waitStart + spinDur,
			OldValue: 0,
			NewValue: 1,
		})
		t.ct.SpinDetected += detected
	}

	if t.kind == waitQueuePop {
		t.fb.PopOK = t.grantPopOK
	}
	t.waiting = false
	t.kind = waitNone
	t.parked = false
	t.granted = false
}
