package sim

import (
	"fmt"

	"repro/internal/atd"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/spin"
	"repro/internal/syncprim"
	"repro/internal/trace"
)

// waitKind identifies what a blocked thread is waiting on.
type waitKind uint8

const (
	waitNone waitKind = iota
	waitLock
	waitBarrier
	waitQueuePop
	waitQueuePush
)

// thread is the runtime state of one software thread.
type thread struct {
	id   int
	prog trace.Program
	fb   trace.Feedback

	// time is the thread's local execution cursor in cycles.
	time     uint64
	finished bool

	// Blocking-wait state.
	waiting     bool
	kind        waitKind
	waitID      uint32
	waitStart   uint64
	parked      bool   // OS has descheduled the thread (futex wait)
	parkedAt    uint64 // when it parked
	granted     bool
	grantAt     uint64 // effective grant time (before handoff/wake latency)
	grantPopOK  bool   // result for queue-pop grants
	grantHanded bool   // lock/queue grants transfer ownership directly

	det *spin.Detector
	ct  core.ThreadCounters
}

// Machine is one simulated CMP executing a set of software threads.
type Machine struct {
	cfg Config

	clock      uint64
	hier       *cache.Hierarchy
	memc       *mem.Controller
	atds       []*atd.Directory // per core: sampled (the hardware proposal)
	oracleATDs []*atd.Directory // per core: full coverage (ground truth)
	os         *sched.OS

	locks    map[uint32]*syncprim.Lock
	barriers map[uint32]*syncprim.Barrier
	queues   map[uint32]*syncprim.Queue

	threads    []*thread
	coreIdleAt []uint64
	finished   int
}

// NewMachine builds a machine executing one program per software thread.
// len(progs) may exceed cfg.Cores (the OS time-slices, Figure 7) but must be
// at least 1.
func NewMachine(cfg Config, progs []trace.Program) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("sim: no thread programs")
	}
	m := &Machine{
		cfg:        cfg,
		hier:       cache.NewHierarchy(cfg.Cores, cfg.L1, cfg.LLC),
		memc:       mem.NewController(cfg.Mem, cfg.Cores),
		os:         sched.New(cfg.Sched, cfg.Cores, len(progs)),
		locks:      make(map[uint32]*syncprim.Lock),
		barriers:   make(map[uint32]*syncprim.Barrier),
		queues:     make(map[uint32]*syncprim.Queue),
		coreIdleAt: make([]uint64, cfg.Cores),
	}
	m.atds = make([]*atd.Directory, cfg.Cores)
	m.oracleATDs = make([]*atd.Directory, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		m.atds[c] = atd.New(cfg.atdConfig(cfg.ATDSampleShift))
		m.oracleATDs[c] = atd.New(cfg.atdConfig(0))
	}
	m.threads = make([]*thread, len(progs))
	for i, p := range progs {
		m.threads[i] = &thread{
			id:   i,
			prog: p,
			det:  spin.NewDetector(cfg.Spin),
		}
	}
	return m, nil
}

// lock returns (creating if needed) the lock with the given id.
func (m *Machine) lock(id uint32) *syncprim.Lock {
	l, ok := m.locks[id]
	if !ok {
		l = syncprim.NewLock()
		m.locks[id] = l
	}
	return l
}

// barrier returns the barrier with the given id, created on first use with
// as many parties as there are software threads.
func (m *Machine) barrier(id uint32) *syncprim.Barrier {
	b, ok := m.barriers[id]
	if !ok {
		b = syncprim.NewBarrier(len(m.threads))
		m.barriers[id] = b
	}
	return b
}

// queue returns the queue with the given id, created on first use with a
// default capacity; workloads can size queues via RegisterQueue.
func (m *Machine) queue(id uint32) *syncprim.Queue {
	q, ok := m.queues[id]
	if !ok {
		q = syncprim.NewQueue(16)
		m.queues[id] = q
	}
	return q
}

// RegisterQueue pre-creates queue id with the given capacity.
func (m *Machine) RegisterQueue(id uint32, capacity int) {
	m.queues[id] = syncprim.NewQueue(capacity)
}

// RegisterBarrier pre-creates barrier id spanning parties threads.
func (m *Machine) RegisterBarrier(id uint32, parties int) {
	m.barriers[id] = syncprim.NewBarrier(parties)
}

// Synthetic addresses and PCs for synchronization words, consumed by the
// spin detector. Placed far above workload data regions.
func syncAddr(kind waitKind, id uint32) uint64 {
	return 0xF000_0000_0000 + uint64(kind)<<32 + uint64(id)*64
}

func syncPC(kind waitKind, id uint32) uint64 {
	return 0xE000_0000 + uint64(kind)<<20 + uint64(id)*16
}

// Run executes the machine to completion and returns the result.
func (m *Machine) Run() (Result, error) {
	for m.finished < len(m.threads) {
		if m.clock >= m.cfg.MaxCycles {
			return Result{}, fmt.Errorf("sim: exceeded MaxCycles=%d with %d/%d threads finished",
				m.cfg.MaxCycles, m.finished, len(m.threads))
		}
		qEnd := m.clock + m.cfg.Quantum
		for c := 0; c < m.cfg.Cores; c++ {
			m.runCore(c, qEnd)
		}
		m.clock = qEnd
	}
	return m.result(), nil
}

// runCore advances core c until the quantum boundary.
func (m *Machine) runCore(c int, qEnd uint64) {
	for {
		tid := m.os.Running(c)
		if tid < 0 {
			// Idle core: try to pull a ready thread.
			if !m.os.HasReady() {
				return
			}
			now := m.coreIdleAt[c]
			if now < qEnd-m.cfg.Quantum {
				now = qEnd - m.cfg.Quantum
			}
			if now >= qEnd {
				return
			}
			ntid, startAt := m.os.Schedule(c, now)
			if ntid < 0 {
				return
			}
			t := m.threads[ntid]
			if startAt > t.time {
				t.time = startAt
			}
			if t.waiting {
				// Woken from a parked synchronization wait.
				m.finishWait(t, t.time)
			}
			continue
		}

		t := m.threads[tid]
		if t.time >= qEnd {
			return
		}

		if t.waiting {
			if t.granted {
				resume := t.grantAt + m.cfg.Policy.HandoffCycles
				if resume > qEnd {
					return
				}
				if resume > t.time {
					t.time = resume
				}
				m.finishWait(t, t.time)
				continue
			}
			// Still waiting: park once the spin grace period expires.
			parkAt := t.waitStart + m.grace(t.kind)
			if parkAt < qEnd {
				t.parked = true
				t.parkedAt = parkAt
				m.os.Block(t.id, parkAt)
				m.coreIdleAt[c] = parkAt
				continue
			}
			return // spinning through the rest of the quantum
		}

		// Preempt on slice expiry when others are ready.
		if m.os.HasReady() && m.os.SliceExpired(c, t.time) {
			m.os.Preempt(c, t.time)
			m.coreIdleAt[c] = t.time
			continue
		}

		if blocked := m.execOps(t, c, qEnd); blocked {
			continue // wait state handled on the next iteration
		}
		if t.finished {
			continue
		}
		return // quantum exhausted
	}
}

// execOps executes thread t's operations on core c until the quantum ends,
// the thread blocks, or it finishes. It reports whether the thread entered
// a blocking wait.
func (m *Machine) execOps(t *thread, c int, qEnd uint64) (blocked bool) {
	pol := &m.cfg.Policy
	for t.time < qEnd && !t.finished {
		op := t.prog.Next(t.fb)
		switch op.Kind {
		case trace.KindCompute:
			t.time += m.cfg.CPU.ComputeCycles(uint64(op.N))
			t.ct.Instrs += uint64(op.N)
			if op.Overhead {
				t.ct.OverheadInstrs += uint64(op.N)
			}

		case trace.KindLoad, trace.KindStore:
			t.ct.Instrs += uint64(op.N)
			if op.Overhead {
				t.ct.OverheadInstrs += uint64(op.N)
			}
			m.memAccess(t, c, op)

		case trace.KindLock:
			t.time += pol.AcquireCycles
			if m.lock(op.ID).Acquire(t.id) {
				break
			}
			m.beginWait(t, waitLock, op.ID)
			return true

		case trace.KindUnlock:
			t.time += pol.AcquireCycles
			if next, transferred := m.lock(op.ID).Release(m.spinning); transferred {
				m.grantWaiter(m.threads[next], t.time, true)
			}

		case trace.KindBarrier:
			t.time += pol.AcquireCycles
			released, last := m.barrier(op.ID).Arrive(t.id)
			if last {
				for _, w := range released {
					m.grantWaiter(m.threads[w], t.time, true)
				}
				break
			}
			m.beginWait(t, waitBarrier, op.ID)
			return true

		case trace.KindPush:
			t.time += pol.QueueOpCycles
			granted, ok := m.queue(op.ID).Push(t.id, m.spinning)
			if ok {
				if granted >= 0 {
					m.grantWaiter(m.threads[granted], t.time, true)
				}
				break
			}
			m.beginWait(t, waitQueuePush, op.ID)
			return true

		case trace.KindPop:
			t.time += pol.QueueOpCycles
			granted, ok, closed := m.queue(op.ID).Pop(t.id, m.spinning)
			if ok {
				t.fb.PopOK = true
				if granted >= 0 {
					m.grantWaiter(m.threads[granted], t.time, true)
				}
				break
			}
			if closed {
				t.fb.PopOK = false
				break
			}
			m.beginWait(t, waitQueuePop, op.ID)
			return true

		case trace.KindCloseQueue:
			t.time += pol.QueueOpCycles
			for _, w := range m.queue(op.ID).Close() {
				m.grantWaiter(m.threads[w], t.time, false)
			}

		case trace.KindEnd:
			t.finished = true
			t.ct.FinishTime = t.time
			m.os.Finish(t.id, t.time)
			m.coreIdleAt[c] = t.time
			m.finished++
			return false

		default:
			panic(fmt.Sprintf("sim: unknown op kind %v", op.Kind))
		}
	}
	return false
}

// spinning reports whether waiter tid is still actively spinning (not yet
// parked); used as the barging preference for lock and queue handoffs.
func (m *Machine) spinning(tid int) bool {
	return !m.threads[tid].parked
}

// beginWait records that t started a blocking wait at its current time.
func (m *Machine) beginWait(t *thread, k waitKind, id uint32) {
	t.waiting = true
	t.kind = k
	t.waitID = id
	t.waitStart = t.time
	t.parked = false
	t.granted = false
	t.grantPopOK = true
}

// grantWaiter delivers a grant (lock ownership, barrier release, queue item
// or close notification) to waiting thread w at time g.
func (m *Machine) grantWaiter(w *thread, g uint64, popOK bool) {
	if !w.waiting || w.granted {
		panic(fmt.Sprintf("sim: grant to thread %d in unexpected state", w.id))
	}
	if g < w.waitStart {
		// Bounded quantum skew can deliver a grant "before" the wait began;
		// clamp so durations stay non-negative.
		g = w.waitStart
	}
	w.granted = true
	w.grantAt = g
	w.grantPopOK = popOK
	grace := m.grace(w.kind)
	if w.parked {
		m.os.Wake(w.id, g)
		return
	}
	if g > w.waitStart+grace {
		// The waiter logically parked before the grant but the engine had
		// not materialized the park yet (it happens lazily at quantum
		// granularity). Park and wake to keep OS bookkeeping exact.
		w.parked = true
		w.parkedAt = w.waitStart + grace
		m.os.Block(w.id, w.parkedAt)
		m.os.Wake(w.id, g)
	}
}

// grace returns the spin-then-yield threshold for a wait kind.
func (m *Machine) grace(k waitKind) uint64 {
	switch k {
	case waitLock:
		return m.cfg.Policy.LockSpinGrace
	case waitBarrier:
		return m.cfg.Policy.BarrierSpinGrace
	default:
		return m.cfg.Policy.QueueSpinGrace
	}
}

// finishWait finalizes accounting when thread t resumes at time resume.
func (m *Machine) finishWait(t *thread, resume uint64) {
	pol := &m.cfg.Policy
	grace := m.grace(t.kind)

	spinEnd := resume
	if t.parked {
		spinEnd = t.parkedAt
		if resume > t.parkedAt {
			t.ct.YieldCycles += resume - t.parkedAt
		}
	}
	if spinEnd > t.waitStart {
		spinDur := spinEnd - t.waitStart
		if spinDur > grace+pol.HandoffCycles {
			spinDur = grace + pol.HandoffCycles
		}
		t.ct.OracleSpinCycles += spinDur
		detected := spin.FeedEpisode(t.det, spin.Episode{
			PC:       syncPC(t.kind, t.waitID),
			Addr:     syncAddr(t.kind, t.waitID),
			Start:    t.waitStart,
			Period:   pol.SpinIterationCycles,
			End:      t.waitStart + spinDur,
			OldValue: 0,
			NewValue: 1,
		})
		t.ct.SpinDetected += detected
	}

	if t.kind == waitQueuePop {
		t.fb.PopOK = t.grantPopOK
	}
	t.waiting = false
	t.kind = waitNone
	t.parked = false
	t.granted = false
}
