package sim

import (
	"repro/internal/core"
)

// Interval accounting: an opt-in mode in which the machine snapshots the
// cumulative per-thread accounting counters every snapEvery committed trace
// operations, feeding time-resolved speedup stacks (internal/stack's
// TimeSeries). Snapshots are pure reads — they copy counters and never
// touch timing state — so enabling them cannot change Tp, any substrate
// statistic, or any component of the aggregate stack; with the option
// disabled the only residue is one predictable branch per op-ring refill
// (pinned by the golden-hash and interval-equivalence tests).

// WithIntervals enables interval accounting: the machine snapshots the
// cumulative per-thread counters every everyOps committed trace operations
// (plus once at completion) into Result.Intervals. Ops are counted at batch
// granularity on the hot path, so snapshot boundaries land on op-ring
// refills — deterministically, but up to one batch (512 ops) past the exact
// multiple. everyOps == 0 leaves interval accounting disabled.
func WithIntervals(everyOps uint64) Option {
	return func(m *Machine) {
		m.snapEvery = everyOps
		m.nextSnap = everyOps
	}
}

// snapshot records the cumulative accounting state at m.ops committed ops
// and advances the next snapshot boundary past m.ops. Called only when
// interval accounting is enabled and m.ops crossed the boundary.
func (m *Machine) snapshot() {
	m.nextSnap = (m.ops/m.snapEvery + 1) * m.snapEvery
	m.snaps = append(m.snaps, m.takeSnapshot())
}

// takeSnapshot copies the cumulative per-thread counters. The copy is taken
// wherever the quantum loop happens to stand, which is a deterministic
// function of (config, programs) like everything else in the engine.
func (m *Machine) takeSnapshot() core.IntervalSnapshot {
	snap := core.IntervalSnapshot{
		Ops:      m.ops,
		Threads:  make([]core.ThreadCounters, len(m.threads)),
		Finished: make([]bool, len(m.threads)),
	}
	for i, t := range m.threads {
		snap.Threads[i] = t.ct
		snap.Finished[i] = t.finished
		if t.time > snap.Time {
			snap.Time = t.time
		}
	}
	return snap
}

// finishIntervals seals the snapshot sequence at run completion: the final
// snapshot carries the end-of-run counters (and Time == Tp), replacing a
// boundary snapshot that already landed on the final op count. The slice is
// handed off to the Result — the machine is pooled, so it must not retain
// it.
func (m *Machine) finishIntervals(tp uint64) []core.IntervalSnapshot {
	final := m.takeSnapshot()
	final.Time = tp
	if n := len(m.snaps); n > 0 && m.snaps[n-1].Ops == final.Ops {
		m.snaps[n-1] = final
	} else {
		m.snaps = append(m.snaps, final)
	}
	out := m.snaps
	m.snaps = nil
	return out
}
