// Package sim implements the CMP simulator that plays the role of the
// paper's gem5 setup: a multi-core machine with private L1s, a shared LLC,
// a banked open-page memory subsystem behind a shared bus, an OS scheduler,
// and the per-thread cycle accounting architecture under evaluation.
//
// The engine is quantum-based (relaxed synchronization, as popularized by
// Graphite/Sniper): cores advance in fixed quanta in core-ID order, and all
// shared resources are reserved against monotone timelines, bounding
// cross-core timing skew by one quantum while keeping whole runs
// deterministic for a fixed configuration and workload seed.
package sim

import (
	"fmt"

	"repro/internal/atd"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/spin"
	"repro/internal/syncprim"
)

// Config assembles the full machine description.
type Config struct {
	// Cores is the number of hardware contexts.
	Cores int
	// Quantum is the relaxed-synchronization quantum in cycles.
	Quantum uint64
	// MaxCycles aborts runaway simulations (safety net, not a tuning knob).
	MaxCycles uint64

	// Mode selects exact (byte-identical) or sampled fast simulation. It is
	// part of the configuration value on purpose: everything keyed by
	// Config — the machine pool, the sweep engine's memo — separates fast
	// and exact state automatically.
	Mode Mode
	// FastSetShift selects the 1-in-2^shift detailed LLC sets in ModeFast
	// (ignored in ModeExact). It must not exceed ATDSampleShift, so every
	// ATD-monitored set is also simulated in detail.
	FastSetShift uint

	CPU cpu.Config
	L1  cache.Config
	LLC cache.Config
	Mem mem.Config
	// ATDSampleShift selects 1-in-2^shift LLC sets for ATD monitoring.
	ATDSampleShift uint
	Spin           spin.Config
	Sched          sched.Config
	Policy         syncprim.Policy
}

// Default returns the paper's machine (Section 5): four-wide out-of-order
// cores, 64 KB private L1 D-caches, a 2 MB 16-way shared LLC, and a shared
// bus in front of 8 memory banks.
func Default() Config {
	return Config{
		Cores:        16,
		Quantum:      100,
		MaxCycles:    4_000_000_000,
		Mode:         ModeExact,
		FastSetShift: 5,
		CPU:          cpu.Default(),
		L1: cache.Config{
			SizeBytes: 64 << 10,
			Ways:      8,
			LineBytes: 64,
		},
		LLC: cache.Config{
			SizeBytes: 2 << 20,
			Ways:      16,
			LineBytes: 64,
		},
		Mem: mem.Config{
			Banks:         8,
			BusCycles:     16,
			RowHitCycles:  90,
			RowMissCycles: 210,
			RowBytes:      4 << 10,
			LineBytes:     64,
			ORAEntries:    8,
		},
		ATDSampleShift: 5,
		Spin: spin.Config{
			TableEntries: 8,
			Threshold:    16,
		},
		Sched:  sched.Default(),
		Policy: syncprim.DefaultPolicy(),
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Cores > 64 {
		return fmt.Errorf("sim: cores must be in [1,64], got %d", c.Cores)
	}
	if c.Quantum == 0 {
		return fmt.Errorf("sim: quantum must be positive")
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.LLC.Validate(); err != nil {
		return err
	}
	if err := c.Mem.Validate(); err != nil {
		return err
	}
	if err := c.Spin.Validate(); err != nil {
		return err
	}
	if err := c.Sched.Validate(); err != nil {
		return err
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if c.LLC.Sets()>>c.ATDSampleShift == 0 {
		return fmt.Errorf("sim: ATD sample shift %d too large for %d LLC sets",
			c.ATDSampleShift, c.LLC.Sets())
	}
	switch c.Mode {
	case ModeExact:
	case ModeFast:
		if c.LLC.Sets()>>c.FastSetShift == 0 {
			return fmt.Errorf("sim: fast set shift %d leaves no detailed sets for %d LLC sets",
				c.FastSetShift, c.LLC.Sets())
		}
		if c.FastSetShift > c.ATDSampleShift {
			return fmt.Errorf("sim: fast set shift %d exceeds ATD sample shift %d (ATD-monitored sets must be simulated in detail)",
				c.FastSetShift, c.ATDSampleShift)
		}
	default:
		return fmt.Errorf("sim: unknown mode %d", c.Mode)
	}
	return nil
}

// WithMode returns a copy of the configuration running in the given mode.
func (c Config) WithMode(m Mode) Config {
	c.Mode = m
	return c
}

// WithCores returns a copy of the configuration resized to n cores.
func (c Config) WithCores(n int) Config {
	c.Cores = n
	return c
}

// WithLLCSize returns a copy with the LLC capacity replaced (Figure 9's
// sweep parameter).
func (c Config) WithLLCSize(bytes int64) Config {
	c.LLC.SizeBytes = bytes
	return c
}

// atdConfig derives the per-core ATD geometry from the LLC.
func (c Config) atdConfig(sampleShift uint) atd.Config {
	return atd.Config{
		Sets:        c.LLC.Sets(),
		Ways:        c.LLC.Ways,
		LineBytes:   c.LLC.LineBytes,
		SampleShift: sampleShift,
		TagBits:     24,
	}
}
