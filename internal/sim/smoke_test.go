package sim

import (
	"testing"

	"repro/internal/trace"
)

// smallConfig returns a fast configuration for engine tests.
func smallConfig(cores int) Config {
	cfg := Default()
	cfg.Cores = cores
	cfg.MaxCycles = 200_000_000
	return cfg
}

// computeOnly builds a program of n compute bursts of width instructions.
func computeOnly(bursts int, width uint32) trace.Program {
	ops := make([]trace.Op, 0, bursts+1)
	for i := 0; i < bursts; i++ {
		ops = append(ops, trace.Compute(width))
	}
	return trace.NewSliceProgram(ops)
}

func TestComputeOnlySingleThread(t *testing.T) {
	cfg := smallConfig(1)
	res, err := Run(cfg, []trace.Program{computeOnly(1000, 400)})
	if err != nil {
		t.Fatal(err)
	}
	wantInstrs := uint64(1000 * 400)
	if res.TotalInstrs != wantInstrs {
		t.Fatalf("instrs = %d, want %d", res.TotalInstrs, wantInstrs)
	}
	// 400k instructions at width 4 = 100k cycles.
	wantCycles := wantInstrs / uint64(cfg.CPU.DispatchWidth)
	if res.Tp != wantCycles {
		t.Fatalf("Tp = %d, want %d", res.Tp, wantCycles)
	}
}

func TestComputeOnlyPerfectScaling(t *testing.T) {
	cfg := smallConfig(4)
	seq, err := RunSequential(cfg, computeOnly(4000, 400))
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]trace.Program, 4)
	for i := range progs {
		progs[i] = computeOnly(1000, 400)
	}
	par, err := Run(cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	s := float64(seq.Tp) / float64(par.Tp)
	if s < 3.99 || s > 4.01 {
		t.Fatalf("speedup = %.3f, want ~4 (seq=%d par=%d)", s, seq.Tp, par.Tp)
	}
	est := par.EstimatedSpeedup()
	if est < 3.9 || est > 4.01 {
		t.Fatalf("estimated speedup = %.3f, want ~4", est)
	}
}

func TestBarrierReleasesAllThreads(t *testing.T) {
	cfg := smallConfig(4)
	progs := make([]trace.Program, 4)
	for i := range progs {
		// Thread i computes i+1 blocks then hits the barrier; everyone then
		// computes one more block.
		ops := []trace.Op{}
		for k := 0; k <= i; k++ {
			ops = append(ops, trace.Compute(40_000))
		}
		ops = append(ops, trace.Barrier(0), trace.Compute(40_000))
		progs[i] = trace.NewSliceProgram(ops)
	}
	res, err := Run(cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	// Thread 0 waited ~3 blocks at the barrier: waiting time must show up
	// as spin + yield.
	ct := res.PerThread[0]
	wait := ct.OracleSpinCycles + ct.YieldCycles
	if wait < 20_000 {
		t.Fatalf("thread 0 wait = %d cycles, want >= 20000", wait)
	}
}

func TestLockMutualExclusionTiming(t *testing.T) {
	cfg := smallConfig(2)
	mk := func() trace.Program {
		ops := []trace.Op{
			trace.Lock(1), trace.Compute(40_000), trace.Unlock(1),
		}
		return trace.NewSliceProgram(ops)
	}
	res, err := Run(cfg, []trace.Program{mk(), mk()})
	if err != nil {
		t.Fatal(err)
	}
	// Critical sections serialize: Tp must be at least 2 CS lengths.
	if res.Tp < 2*10_000 {
		t.Fatalf("Tp = %d, want >= 20000 (serialized critical sections)", res.Tp)
	}
	// One thread must have waited.
	wait := uint64(0)
	for _, ct := range res.PerThread {
		wait += ct.OracleSpinCycles + ct.YieldCycles
	}
	if wait < 8_000 {
		t.Fatalf("aggregate sync wait = %d, want >= 8000", wait)
	}
}

func TestQueuePipelineCompletes(t *testing.T) {
	cfg := smallConfig(2)
	items := 200
	producer := trace.FuncProgram(nil)
	sent := 0
	producer = func(fb trace.Feedback) trace.Op {
		if sent < items {
			sent++
			if sent%2 == 1 {
				return trace.Compute(1000)
			}
			return trace.Push(7)
		}
		if sent == items {
			sent++
			return trace.CloseQueue(7)
		}
		return trace.End()
	}
	state := 0
	consumer := trace.FuncProgram(func(fb trace.Feedback) trace.Op {
		switch state {
		case 0:
			state = 1
			return trace.Pop(7)
		case 1:
			if !fb.PopOK {
				return trace.End()
			}
			state = 0
			return trace.Compute(2000)
		}
		return trace.End()
	})
	res, err := Run(cfg, []trace.Program{producer, consumer}, WithQueue(7, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp == 0 {
		t.Fatal("pipeline run produced zero cycles")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallConfig(4)
	build := func() []trace.Program {
		progs := make([]trace.Program, 4)
		for i := range progs {
			rng := trace.NewRNG(uint64(42 + i))
			n := 0
			progs[i] = trace.FuncProgram(func(fb trace.Feedback) trace.Op {
				if n >= 2000 {
					return trace.End()
				}
				n++
				if rng.Bool(0.3) {
					return trace.Load(rng.Uint64n(1<<22), 0x1000+uint64(n%7)*4)
				}
				return trace.Compute(uint32(20 + rng.Intn(80)))
			})
		}
		return progs
	}
	r1, err := Run(cfg, build())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, build())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tp != r2.Tp || r1.TotalInstrs != r2.TotalInstrs {
		t.Fatalf("nondeterministic: Tp %d vs %d, instrs %d vs %d",
			r1.Tp, r2.Tp, r1.TotalInstrs, r2.TotalInstrs)
	}
	if r1.EstimatedSpeedup() != r2.EstimatedSpeedup() {
		t.Fatalf("nondeterministic estimate: %v vs %v",
			r1.EstimatedSpeedup(), r2.EstimatedSpeedup())
	}
}
