package sim

import "repro/internal/trace"

// memAccess walks one load or store through the memory hierarchy, charging
// stalls to the thread and feeding both the estimator's accounting hardware
// (sampled ATD, ORA-based memory interference) and the oracle (full-coverage
// ATD, exact interference attribution). In ModeFast it dispatches to the
// sampled path (fast.go) instead.
func (m *Machine) memAccess(t *thread, c int, op *trace.Op) {
	if m.fast {
		m.memAccessFast(t, c, op)
		return
	}
	// Dispatch slots of the memory instruction itself.
	t.time += m.computeCycles(uint64(op.N))
	isLoad := op.Kind == trace.KindLoad

	out := m.hier.Access(c, op.Addr, !isLoad)
	if out.L1Hit {
		// L1 hits are hidden by the out-of-order window; upgrades expose a
		// short invalidation round-trip.
		if out.Upgrade {
			t.time += m.cfg.CPU.UpgradeStall
		}
		return
	}

	// The access reaches the shared LLC: update both tag directories. The
	// hardware ATD observes every LLC access of its core (paper Section
	// 4.1); only sampled sets are backed by state. Both directories mirror
	// the LLC's geometry, so the address is decomposed once and the same
	// (set, tag) pair drives the estimator and the oracle walk. With
	// accounting shards active the walks — and the counters derived from
	// their hit/miss answers — are deferred to the owning shard worker
	// instead (shards.go); the record carries everything the walk needs.
	t.ct.LLCAccesses++
	lineAddr := op.Addr >> m.llcLineShift
	estHit, sampled, oraHit := false, false, false
	walked := false
	if m.acct && m.shardN == 0 {
		set, tag := int(lineAddr&m.llcSetMask), lineAddr>>m.llcSetBits
		if m.atds[c].SampledSet(set) {
			estHit, sampled = m.atds[c].AccessSetTag(set, tag)
			t.ct.SampledATDAccesses++
		}
		oraHit, _ = m.oracleATDs[c].AccessSetTag(set, tag)
		t.ct.OracleATDAccesses++
		walked = true
	}

	if out.LLCHit {
		stall := m.cfg.CPU.LLCHitStall
		if out.DirtyForward {
			stall += m.cfg.CPU.CoherenceForwardStall
		}
		if isLoad {
			t.time += stall
			if out.CoherenceMiss {
				// Ground truth only: the estimator ignores coherency
				// (paper Section 4.5).
				t.ct.OracleCoherenceStall += stall
			}
			// Positive interference: a hit that a private LLC would have
			// missed. Loads only — store hits avoid no exposed stall.
			if sampled && !estHit {
				t.ct.SampledInterThreadHits++
			}
			if walked && !oraHit {
				t.ct.OracleInterThreadHits++
			}
		}
		if m.acct && m.shardN > 0 {
			m.shardRecord(c, t.id, lineAddr, isLoad, true, 0, 0, 0)
		}
		return
	}

	// LLC miss: go to memory. Stores also consume bus/bank bandwidth (they
	// interfere with other cores) but retire through the store buffer and
	// do not stall this thread.
	res := m.memc.Access(t.time, c, op.Addr)
	if out.LLCVictimDirty {
		m.memc.Writeback(t.time, c, out.LLCVictimAddr)
	}
	if !isLoad {
		if m.acct && m.shardN > 0 {
			m.shardRecord(c, t.id, lineAddr, false, false, 0, 0, 0)
		}
		return
	}

	stall := m.cfg.CPU.BlockingMissStall(res.Latency)
	t.time += stall
	t.ct.LLCLoadMisses++
	t.ct.StallLLCLoadMiss += stall

	interfEst := m.cfg.CPU.ExposedInterference(res.InterferenceEstimate(), res.Latency)
	interfTruth := m.cfg.CPU.ExposedInterference(res.InterferenceTruth(), res.Latency)
	t.ct.MemInterferenceEst += interfEst
	t.ct.OracleMemInterference += interfTruth

	if sampled && estHit {
		// Inter-thread miss: a private LLC would have hit, so the entire
		// exposed stall is negative LLC interference. Remember its memory
		// interference too, so the post-processing can avoid counting it
		// twice (once in NegLLC, once in NegMem).
		t.ct.SampledInterThreadMissStall += stall
		t.ct.SampledInterThreadMissMemInterf += interfEst
	}
	if oraHit {
		t.ct.OracleInterThreadMissStall += stall
		t.ct.OracleInterThreadMissMemInterf += interfTruth
	}
	if m.acct && m.shardN > 0 {
		m.shardRecord(c, t.id, lineAddr, true, false, stall, interfEst, interfTruth)
	}
}
