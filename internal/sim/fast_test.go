package sim_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// fastRunBench runs a registered workload in the given mode, optionally
// with accounting shards.
func fastRunBench(t *testing.T, name string, threads int, mode sim.Mode, opts ...sim.Option) sim.Result {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	cfg := sim.Default().WithCores(threads).WithMode(mode)
	cfg.Policy = b.Spec.TunePolicy(cfg.Policy)
	progs, err := b.Spec.Parallel(threads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg, progs, append(b.Spec.PipelineOptions(threads), opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want sim.Mode
		ok   bool
	}{
		{"", sim.ModeExact, true},
		{"exact", sim.ModeExact, true},
		{"fast", sim.ModeFast, true},
		{"bogus", sim.ModeExact, false},
		{"FAST", sim.ModeExact, false},
	} {
		got, err := sim.ParseMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if sim.ModeExact.String() != "exact" || sim.ModeFast.String() != "fast" {
		t.Errorf("mode strings: %q, %q", sim.ModeExact, sim.ModeFast)
	}
}

func TestFastConfigValidate(t *testing.T) {
	cfg := sim.Default().WithMode(sim.ModeFast)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default fast config invalid: %v", err)
	}
	bad := cfg
	bad.FastSetShift = bad.ATDSampleShift + 1
	if err := bad.Validate(); err == nil ||
		!strings.Contains(err.Error(), "ATD sample shift") {
		t.Errorf("FastSetShift > ATDSampleShift accepted: %v", err)
	}
	bad = cfg
	bad.Mode = sim.Mode(7)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("unknown mode accepted: %v", err)
	}
}

// TestFastModeDeterministic pins fast mode's own determinism contract:
// approximate relative to exact mode, but a pure function of
// (config, workload) — repeated runs, pooled or fresh, are deeply equal.
func TestFastModeDeterministic(t *testing.T) {
	first := fastRunBench(t, "cholesky_splash2", 8, sim.ModeFast)
	for i := 0; i < 2; i++ {
		again := fastRunBench(t, "cholesky_splash2", 8, sim.ModeFast)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("fast-mode rerun %d differs:\n got %+v\nwant %+v", i, again, first)
		}
	}
}

// TestPoolModeKeying pins the pool-recycling contract across modes: a pool
// alternating fast and exact runs of the same workload must reproduce the
// mode-pure results exactly — fast and exact machines never share recycled
// state (Mode is part of Config, the pool key).
func TestPoolModeKeying(t *testing.T) {
	exact := fastRunBench(t, "ferret_parsec_medium", 4, sim.ModeExact)
	fast := fastRunBench(t, "ferret_parsec_medium", 4, sim.ModeFast)
	if reflect.DeepEqual(exact.PerThread, fast.PerThread) {
		t.Fatal("fast and exact runs produced identical counters; sampling had no effect")
	}
	// The helper goes through the shared default pool, so by now both
	// configurations have pooled machines. Alternate modes and diff.
	for pass := 0; pass < 2; pass++ {
		gotE := fastRunBench(t, "ferret_parsec_medium", 4, sim.ModeExact)
		gotF := fastRunBench(t, "ferret_parsec_medium", 4, sim.ModeFast)
		if !reflect.DeepEqual(gotE, exact) {
			t.Fatalf("pass %d: exact result drifted after fast runs on the pool", pass)
		}
		if !reflect.DeepEqual(gotF, fast) {
			t.Fatalf("pass %d: fast result drifted after exact runs on the pool", pass)
		}
	}
}

// TestAccountingShardsByteIdentical pins the intra-run parallelism
// contract: diverting the tag-directory walks to worker goroutines changes
// wall-clock behavior only — the Result is byte-identical to inline
// accounting in both modes, for any shard count.
func TestAccountingShardsByteIdentical(t *testing.T) {
	for _, mode := range []sim.Mode{sim.ModeExact, sim.ModeFast} {
		inline := fastRunBench(t, "water-nsquared_splash2", 8, mode)
		for _, shards := range []int{1, 3, 8} {
			got := fastRunBench(t, "water-nsquared_splash2", 8, mode,
				sim.WithAccountingShards(shards))
			if !reflect.DeepEqual(got, inline) {
				t.Fatalf("mode=%v shards=%d: sharded result differs from inline", mode, shards)
			}
		}
	}
}

// TestShardsAbortCleanly pins the MaxCycles error path: a run aborted
// mid-flight must still flush and join its shard workers (a leak would
// deadlock or trip the race detector here).
func TestShardsAbortCleanly(t *testing.T) {
	b, _ := workload.ByName("cholesky_splash2")
	cfg := sim.Default().WithCores(8)
	cfg.Policy = b.Spec.TunePolicy(cfg.Policy)
	cfg.MaxCycles = cfg.Quantum // abort after the first quantum
	progs, err := b.Spec.Parallel(8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(cfg, progs, append(b.Spec.PipelineOptions(8),
		sim.WithAccountingShards(4))...)
	if err == nil || !strings.Contains(err.Error(), "MaxCycles") {
		t.Fatalf("expected MaxCycles abort, got %v", err)
	}
}

// TestFastModeSkipsWork sanity-checks that fast mode actually samples: the
// detailed-set subset reaches the memory controller, so fast mode issues
// far fewer DRAM accesses than exact mode for the same workload.
func TestFastModeSkipsWork(t *testing.T) {
	exact := fastRunBench(t, "canneal_parsec_small", 8, sim.ModeExact)
	fast := fastRunBench(t, "canneal_parsec_small", 8, sim.ModeFast)
	if fast.MemStats.Accesses*2 > exact.MemStats.Accesses {
		t.Errorf("fast mode did not reduce memory traffic: %d vs %d DRAM accesses",
			fast.MemStats.Accesses, exact.MemStats.Accesses)
	}
	if fast.TotalOps != exact.TotalOps {
		t.Errorf("fast mode changed the op stream: %d vs %d ops", fast.TotalOps, exact.TotalOps)
	}
}
