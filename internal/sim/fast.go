package sim

import "repro/internal/trace"

// Fast mode (Config.Mode == ModeFast) extends the paper's set-sampling idea
// from the ATD into the simulation itself: only LLC sets with
// set & (2^FastSetShift − 1) == 0 — the "detailed" sets, a deterministic
// 1-in-2^FastSetShift stride — run the full L1/LLC/directory/DRAM model,
// and only their misses generate memory traffic. Accesses to every other
// set never touch the cache arrays at all; their whole hierarchy outcome is
// extrapolated from the detailed sets:
//
//   - The L1 hit/miss outcome is predicted with a Bresenham-style
//     accumulator tracking this core's detailed-set L1 hit rate (predicted
//     hits cost nothing, exactly like real L1 hits; skipped-set store
//     upgrades are not modeled).
//   - A predicted L1 miss flows into a second Bresenham accumulator
//     tracking this core's detailed-set LLC hit rate, so predicted hits are
//     spread evenly through the access stream instead of bursting.
//   - A predicted LLC miss is charged this core's integer-average detailed
//     miss stall and memory interference; before any detailed miss exists
//     the stall falls back to the uncontended memory round trip
//     BlockingMissStall(RowHitCycles + BusCycles), a pure function of the
//     configuration.
//
// The sampled quantum is also coarser: fast mode multiplies the relaxed-
// synchronization quantum by fastQuantumScale, trading bounded extra skew
// for proportionally fewer scheduler sweeps.
//
// Counter semantics feed the unmodified estimator: LLCAccesses counts the
// full population (detailed and skipped) while the ATDs observe only
// detailed sets — FastSetShift ≤ ATDSampleShift guarantees every
// ATD-monitored set is detailed — so the run-time sampling factor
// LLCAccesses/SampledATDAccesses extrapolates the interference counters to
// the full population through the paper's own Section 4.2 machinery. The
// oracle directory likewise samples at FastSetShift and is extrapolated by
// LLCAccesses/OracleATDAccesses in core.OracleComponents.
//
// Everything is a deterministic function of (config, workload): same
// inputs, byte-identical fast-mode results — just not exact-mode results.

// fastQuantumScale multiplies the relaxed-synchronization quantum in fast
// mode. Cross-core event skew stays bounded by the (scaled) quantum; the
// per-quantum scheduler sweep runs proportionally less often.
const fastQuantumScale = 4

// fastCore is the per-core extrapolation state of one fast-mode run.
type fastCore struct {
	// detL1Accesses/detL1Hits count detailed-set accesses and their L1
	// hits; their ratio drives the skipped-set L1 predictor. l1Credit is
	// its Bresenham accumulator.
	detL1Accesses uint64
	detL1Hits     uint64
	l1Credit      uint64
	// detAccesses/detHits count detailed-set accesses that reached the LLC
	// and the subset that hit; their ratio drives the LLC hit predictor.
	detAccesses uint64
	detHits     uint64
	// hitCredit is the Bresenham accumulator: it gains detHits per skipped
	// access and pays detAccesses per predicted hit.
	hitCredit uint64
	// Detailed blocking-load-miss totals, for average-cost charging.
	detMissLoads       uint64
	detMissStall       uint64
	detMissInterfEst   uint64
	detMissInterfTruth uint64
}

// memAccessFast is the ModeFast counterpart of memAccess.
func (m *Machine) memAccessFast(t *thread, c int, op *trace.Op) {
	t.time += m.computeCycles(uint64(op.N))
	isLoad := op.Kind == trace.KindLoad

	lineAddr := op.Addr >> m.llcLineShift
	set := int(lineAddr & m.llcSetMask)
	fc := &m.fastCores[c]
	if uint64(set)&m.fastMask != 0 {
		m.fastSkippedAccess(t, fc, isLoad)
		return
	}

	// Detailed set: the exact-mode path plus extrapolation bookkeeping.
	fc.detL1Accesses++
	out := m.hier.Access(c, op.Addr, !isLoad)
	if out.L1Hit {
		fc.detL1Hits++
		if out.Upgrade {
			t.time += m.cfg.CPU.UpgradeStall
		}
		return
	}

	t.ct.LLCAccesses++
	fc.detAccesses++
	estHit, sampled, oraHit := false, false, false
	walked := false
	if m.acct && m.shardN == 0 {
		tag := lineAddr >> m.llcSetBits
		if m.atds[c].SampledSet(set) {
			estHit, sampled = m.atds[c].AccessSetTag(set, tag)
			t.ct.SampledATDAccesses++
		}
		oraHit, _ = m.oracleATDs[c].AccessSetTag(set, tag)
		t.ct.OracleATDAccesses++
		walked = true
	}

	if out.LLCHit {
		fc.detHits++
		stall := m.cfg.CPU.LLCHitStall
		if out.DirtyForward {
			stall += m.cfg.CPU.CoherenceForwardStall
		}
		if isLoad {
			t.time += stall
			if out.CoherenceMiss {
				t.ct.OracleCoherenceStall += stall
			}
			if sampled && !estHit {
				t.ct.SampledInterThreadHits++
			}
			if walked && !oraHit {
				t.ct.OracleInterThreadHits++
			}
		}
		if m.acct && m.shardN > 0 {
			m.shardRecord(c, t.id, lineAddr, isLoad, true, 0, 0, 0)
		}
		return
	}

	// Detailed-set LLC miss: the only misses that reach the DRAM model in
	// fast mode (the sampled subset of memory traffic).
	res := m.memc.Access(t.time, c, op.Addr)
	if out.LLCVictimDirty {
		m.memc.Writeback(t.time, c, out.LLCVictimAddr)
	}
	if !isLoad {
		if m.acct && m.shardN > 0 {
			m.shardRecord(c, t.id, lineAddr, false, false, 0, 0, 0)
		}
		return
	}

	stall := m.cfg.CPU.BlockingMissStall(res.Latency)
	t.time += stall
	t.ct.LLCLoadMisses++
	t.ct.StallLLCLoadMiss += stall

	interfEst := m.cfg.CPU.ExposedInterference(res.InterferenceEstimate(), res.Latency)
	interfTruth := m.cfg.CPU.ExposedInterference(res.InterferenceTruth(), res.Latency)
	t.ct.MemInterferenceEst += interfEst
	t.ct.OracleMemInterference += interfTruth

	fc.detMissLoads++
	fc.detMissStall += stall
	fc.detMissInterfEst += interfEst
	fc.detMissInterfTruth += interfTruth

	if sampled && estHit {
		t.ct.SampledInterThreadMissStall += stall
		t.ct.SampledInterThreadMissMemInterf += interfEst
	}
	if oraHit {
		t.ct.OracleInterThreadMissStall += stall
		t.ct.OracleInterThreadMissMemInterf += interfTruth
	}
	if m.acct && m.shardN > 0 {
		m.shardRecord(c, t.id, lineAddr, true, false, stall, interfEst, interfTruth)
	}
}

// fastSkippedAccess handles an access to a non-detailed LLC set: predicted
// L1, predicted LLC, no cache-array walk and no memory traffic.
func (m *Machine) fastSkippedAccess(t *thread, fc *fastCore, isLoad bool) {
	// Predicted L1 hit — the common case — costs nothing, like a real one.
	if fc.detL1Accesses > 0 {
		fc.l1Credit += fc.detL1Hits
		if fc.l1Credit >= fc.detL1Accesses {
			fc.l1Credit -= fc.detL1Accesses
			return
		}
	}

	// Predicted L1 miss: full-population access count; the sampling factors
	// extrapolate the detailed-set interference counters over these.
	t.ct.LLCAccesses++
	if fc.detAccesses > 0 {
		fc.hitCredit += fc.detHits
		if fc.hitCredit >= fc.detAccesses {
			fc.hitCredit -= fc.detAccesses
			// Predicted LLC hit.
			if isLoad {
				t.time += m.cfg.CPU.LLCHitStall
			}
			return
		}
	}
	// Predicted LLC miss. Stores retire through the store buffer; loads are
	// charged this core's average detailed miss cost.
	if !isLoad {
		return
	}
	var stall, interfEst, interfTruth uint64
	if fc.detMissLoads > 0 {
		stall = fc.detMissStall / fc.detMissLoads
		interfEst = fc.detMissInterfEst / fc.detMissLoads
		interfTruth = fc.detMissInterfTruth / fc.detMissLoads
	} else {
		stall = m.cfg.CPU.BlockingMissStall(m.cfg.Mem.RowHitCycles + m.cfg.Mem.BusCycles)
	}
	t.time += stall
	t.ct.LLCLoadMisses++
	t.ct.StallLLCLoadMiss += stall
	t.ct.MemInterferenceEst += interfEst
	t.ct.OracleMemInterference += interfTruth
}
