package sim

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Result summarizes one simulation run.
type Result struct {
	// Cores and Threads describe the run shape.
	Cores   int
	Threads int
	// Tp is the parallel-section execution time: the finish time of the
	// slowest thread.
	Tp uint64
	// PerThread holds the raw accounting counters, one per software thread.
	PerThread []core.ThreadCounters
	// SchedStats holds per-thread OS statistics.
	SchedStats []sched.ThreadStats
	// Estimated is the component decomposition the accounting hardware
	// produces (sampled ATD, ORA, Tian detector, OS yield bookkeeping).
	Estimated core.Components
	// Oracle is the ground-truth decomposition from the simulator's
	// omniscient view, including the components hardware cannot see.
	Oracle core.Components
	// CacheStats and MemStats expose substrate-level counters.
	CacheStats cache.HierarchyStats
	MemStats   mem.Stats
	// TotalInstrs and TotalOverheadInstrs aggregate instruction counts.
	TotalInstrs         uint64
	TotalOverheadInstrs uint64
	// TotalOps counts the trace operations the machine consumed from its
	// programs — the unit simulator throughput (ops/sec) is measured in.
	// Counting happens at batch granularity; on completed runs every
	// counted op was executed (program streams end inside their batch).
	TotalOps uint64
	// Intervals holds the cumulative accounting snapshots taken every
	// IntervalEvery committed ops plus one at completion (WithIntervals);
	// nil when interval accounting is disabled. Every other Result field is
	// identical with or without it — snapshots never affect timing.
	Intervals []core.IntervalSnapshot
	// IntervalEvery is the snapshot period in committed ops (0 = disabled).
	IntervalEvery uint64
}

// Stack assembles the estimated speedup stack of the run. If ts (the
// single-threaded execution time of the same work) is non-zero the stack
// also records the actual speedup Ts/Tp.
func (r Result) Stack(ts uint64) core.Stack {
	s := core.Stack{N: r.Threads, Tp: r.Tp, Components: r.Estimated}
	if ts != 0 {
		s.ActualSpeedup = float64(ts) / float64(r.Tp)
	}
	return s
}

// EstimatedSpeedup returns Ŝ per Formula (4).
func (r Result) EstimatedSpeedup() float64 {
	return r.Stack(0).Estimated()
}

// result gathers counters from the machine after completion.
func (m *Machine) result() Result {
	r := Result{
		Cores:   m.cfg.Cores,
		Threads: len(m.threads),
		// Clone: the machine (and its live counter slices) is pooled and
		// reused after this run; the Result must own its statistics.
		CacheStats: m.hier.Stats().Clone(),
		MemStats:   m.memc.Stats(),
		TotalOps:   m.ops,
	}
	r.PerThread = make([]core.ThreadCounters, len(m.threads))
	r.SchedStats = make([]sched.ThreadStats, len(m.threads))
	for i, t := range m.threads {
		r.PerThread[i] = t.ct
		r.SchedStats[i] = m.os.Stats(i)
		if t.ct.FinishTime > r.Tp {
			r.Tp = t.ct.FinishTime
		}
		r.TotalInstrs += t.ct.Instrs
		r.TotalOverheadInstrs += t.ct.OverheadInstrs
	}
	r.Estimated = core.EstimateComponents(r.Tp, r.PerThread)
	r.Oracle = core.OracleComponents(r.Tp, r.PerThread,
		1/float64(m.cfg.CPU.DispatchWidth))
	if m.snapEvery != 0 {
		r.Intervals = m.finishIntervals(r.Tp)
		r.IntervalEvery = m.snapEvery
	}
	return r
}

// Option customizes a machine before it runs.
type Option func(*Machine)

// WithQueue pre-creates bounded queue id with the given capacity.
func WithQueue(id uint32, capacity int) Option {
	return func(m *Machine) { m.RegisterQueue(id, capacity) }
}

// WithBarrier pre-creates barrier id spanning parties threads (default is
// all threads).
func WithBarrier(id uint32, parties int) Option {
	return func(m *Machine) { m.RegisterBarrier(id, parties) }
}

// WithoutAccounting disables the interference-accounting hardware (the
// per-core ATD walks) for the run. Accounting never affects timing — the
// directories only feed the per-thread interference counters — so Tp and
// every substrate statistic are unchanged; only the ATD-derived counters
// (sampled/oracle inter-thread hits and miss attributions) read zero. Use
// it for runs whose accounting nobody consumes: the sequential reference
// contributes only its execution time, and a single-core machine has no
// inter-thread interference to account in the first place.
func WithoutAccounting() Option {
	return func(m *Machine) { m.acct = false }
}

// WithAccountingShards diverts the accounting hardware's tag-directory
// walks to n worker goroutines for the run (intra-run parallelism; see
// shards.go). Results are byte-identical to inline accounting for any n —
// sharding is an execution choice, not a configuration — so it never
// splits the machine pool or a sweep memo. It is ignored (accounting runs
// inline) when accounting is disabled or interval snapshots are active;
// n < 1 means inline.
func WithAccountingShards(n int) Option {
	return func(m *Machine) {
		if n < 1 {
			n = 0
		}
		if n > m.cfg.Cores {
			n = m.cfg.Cores // one shard per core is the maximum useful split
		}
		m.shardN = n
	}
}

// Run executes progs to completion on a machine for cfg. Machines (and the
// multi-megabyte backing arrays inside them) are recycled through a
// process-wide pool keyed by the full configuration, so repeated runs —
// sweeps, service traffic, benchmarks — allocate almost nothing; results
// are identical to building a fresh machine every time.
func Run(cfg Config, progs []trace.Program, opts ...Option) (Result, error) {
	return defaultPool.Run(cfg, progs, opts...)
}

// RunSequential executes prog alone on a single-core machine with the same
// cache and memory parameters; its Tp is the single-threaded reference time
// Ts of the speedup definition, Formula (1).
func RunSequential(cfg Config, prog trace.Program, opts ...Option) (Result, error) {
	return Run(cfg.WithCores(1), []trace.Program{prog}, opts...)
}
