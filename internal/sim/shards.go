package sim

// Accounting shards: intra-run parallelism for the tag-directory walks.
//
// The accounting hardware (per-core sampled ATD + oracle directory) never
// affects timing — its walks only feed per-thread interference counters —
// so they are the one part of a quantum-ordered deterministic simulation
// that can run concurrently with it. With WithAccountingShards(n) the main
// simulation goroutine stops walking the directories inline and instead
// records each LLC access (shardRecord); n worker goroutines replay the
// records against the directories and accumulate the ATD-derived counters
// into per-shard partials, merged into the per-thread counters before the
// Result is assembled.
//
// Determinism is preserved exactly, not approximately:
//
//   - Each core's directories are owned by one worker (shard = core mod n),
//     and records are produced by the single simulation goroutine in
//     program order and delivered over a per-shard FIFO channel — so every
//     directory observes the same access sequence as the inline walk.
//   - Counter accumulation is commutative addition, merged after all
//     workers join, so totals are bit-identical to the inline path.
//
// Shards are an execution option, not part of Config: results are
// byte-identical with any shard count (the shard determinism test pins
// this), so they must not split the machine pool or the sweep memo.
// Sharding is disabled automatically when accounting is off (nothing to
// walk) or interval snapshots are active (snapshots read the cumulative
// counters mid-run, which deferred accounting would lag).

// atdRec is one deferred directory walk: an LLC access with everything the
// walk's counter updates need.
type atdRec struct {
	lineAddr    uint64
	stall       uint64
	interfEst   uint64
	interfTruth uint64
	tid         int32
	isLoad      bool
	llcHit      bool
}

// shardBatch is a run of records for one core, in program order.
type shardBatch struct {
	core int
	recs []atdRec
}

// shardBatchSize is the per-core record buffer capacity; one channel send
// per batch amortizes synchronization over the records.
const shardBatchSize = 256

// shardRecord defers one LLC access's directory walk to core c's shard.
func (m *Machine) shardRecord(c, tid int, lineAddr uint64,
	isLoad, llcHit bool, stall, interfEst, interfTruth uint64) {
	buf := append(m.shardBufs[c], atdRec{
		lineAddr:    lineAddr,
		stall:       stall,
		interfEst:   interfEst,
		interfTruth: interfTruth,
		tid:         int32(tid),
		isLoad:      isLoad,
		llcHit:      llcHit,
	})
	if len(buf) == shardBatchSize {
		m.shardCh[c%m.shardN] <- shardBatch{core: c, recs: buf}
		buf = m.getShardBuf()
	}
	m.shardBufs[c] = buf
}

// startShards launches the worker goroutines for the run.
func (m *Machine) startShards() {
	n := m.shardN
	m.shardCh = make([]chan shardBatch, n)
	for s := range m.shardCh {
		m.shardCh[s] = make(chan shardBatch, 64)
	}
	m.shardBufs = make([][]atdRec, m.cfg.Cores)
	for c := range m.shardBufs {
		m.shardBufs[c] = m.getShardBuf()
	}
	m.shardParts = make([][]threadCounters, n)
	for s := range m.shardParts {
		m.shardParts[s] = make([]threadCounters, len(m.threads))
	}
	m.shardWG.Add(n)
	for s := 0; s < n; s++ {
		go m.shardWorker(s)
	}
}

// drainShards flushes the per-core buffers, joins the workers, and merges
// the per-shard partial counters into the live per-thread counters. It is
// called on every exit from Run — success or MaxCycles abort — so no
// worker goroutine outlives its run.
func (m *Machine) drainShards() {
	for c, buf := range m.shardBufs {
		if len(buf) > 0 {
			m.shardCh[c%m.shardN] <- shardBatch{core: c, recs: buf}
			m.shardBufs[c] = nil
		}
	}
	for _, ch := range m.shardCh {
		close(ch)
	}
	m.shardWG.Wait()
	for _, part := range m.shardParts {
		for tid := range part {
			p := &part[tid]
			ct := &m.threads[tid].ct
			ct.SampledATDAccesses += p.sampledATDAccesses
			ct.SampledInterThreadMissStall += p.sampledInterThreadMissStall
			ct.SampledInterThreadHits += p.sampledInterThreadHits
			ct.SampledInterThreadMissMemInterf += p.sampledInterThreadMissMemInterf
			ct.OracleATDAccesses += p.oracleATDAccesses
			ct.OracleInterThreadMissStall += p.oracleInterThreadMissStall
			ct.OracleInterThreadMissMemInterf += p.oracleInterThreadMissMemInterf
			ct.OracleInterThreadHits += p.oracleInterThreadHits
		}
	}
	m.shardCh, m.shardBufs, m.shardParts = nil, nil, nil
}

// threadCounters is the shard-local accumulator: exactly the ATD-derived
// subset of core.ThreadCounters a worker can touch.
type threadCounters struct {
	sampledATDAccesses              uint64
	sampledInterThreadMissStall     uint64
	sampledInterThreadHits          uint64
	sampledInterThreadMissMemInterf uint64
	oracleATDAccesses               uint64
	oracleInterThreadMissStall      uint64
	oracleInterThreadMissMemInterf  uint64
	oracleInterThreadHits           uint64
}

// shardWorker replays deferred walks for every core owned by shard s.
func (m *Machine) shardWorker(s int) {
	defer m.shardWG.Done()
	part := m.shardParts[s]
	for b := range m.shardCh[s] {
		atds, oracle := m.atds[b.core], m.oracleATDs[b.core]
		for i := range b.recs {
			r := &b.recs[i]
			ct := &part[r.tid]
			set, tag := int(r.lineAddr&m.llcSetMask), r.lineAddr>>m.llcSetBits
			estHit, sampled := false, false
			if atds.SampledSet(set) {
				estHit, sampled = atds.AccessSetTag(set, tag)
				ct.sampledATDAccesses++
			}
			oraHit, _ := oracle.AccessSetTag(set, tag)
			ct.oracleATDAccesses++
			if r.llcHit {
				if r.isLoad {
					if sampled && !estHit {
						ct.sampledInterThreadHits++
					}
					if !oraHit {
						ct.oracleInterThreadHits++
					}
				}
			} else if r.isLoad {
				if sampled && estHit {
					ct.sampledInterThreadMissStall += r.stall
					ct.sampledInterThreadMissMemInterf += r.interfEst
				}
				if oraHit {
					ct.oracleInterThreadMissStall += r.stall
					ct.oracleInterThreadMissMemInterf += r.interfTruth
				}
			}
		}
		m.putShardBuf(b.recs)
	}
}

// getShardBuf returns an empty record buffer, recycled when possible.
func (m *Machine) getShardBuf() []atdRec {
	if p, ok := m.shardBufPool.Get().(*[]atdRec); ok {
		return (*p)[:0]
	}
	return make([]atdRec, 0, shardBatchSize)
}

// putShardBuf recycles a consumed record buffer.
func (m *Machine) putShardBuf(b []atdRec) {
	b = b[:0]
	m.shardBufPool.Put(&b)
}
