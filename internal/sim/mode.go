package sim

import "fmt"

// Mode selects the simulation fidelity of a run.
//
// The two modes are distinct determinism contracts (see ARCHITECTURE.md):
// exact mode is byte-identical — the golden experiments hash pins its
// results — while fast mode is deterministic for a fixed (config, workload)
// but approximate, with its deviation from exact mode bounded by
// FastErrorBounds and pinned in CI.
type Mode uint8

const (
	// ModeExact simulates every LLC set and every memory access in full
	// detail. It is the zero value: existing configurations keep their
	// byte-identical behavior.
	ModeExact Mode = iota
	// ModeFast simulates only the deterministic 1-in-2^FastSetShift subset
	// of LLC sets in detail — extending the ATD's set-sampling gate (paper
	// Section 4.2) into the LLC and memory models — and extrapolates the
	// skipped sets from the detailed ones. Same estimator, cheaper inputs:
	// the run-level factors (sampling factor, average miss penalty) are
	// frozen from the scaled counters exactly as in exact mode.
	ModeFast
)

// String returns the mode's query-parameter / flag spelling.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeFast:
		return "fast"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ParseMode parses a mode name as accepted by `-mode` flags and the
// service's ?mode= parameter. The empty string is ModeExact (the default).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "exact":
		return ModeExact, nil
	case "fast":
		return ModeFast, nil
	default:
		return ModeExact, fmt.Errorf("sim: unknown mode %q (want exact or fast)", s)
	}
}

// FastBounds bounds the deviation of a fast-mode run from the exact-mode
// run of the same (config, workload). Component fields are in speedup units
// (component cycles divided by Tp, the units of the paper's stacks);
// Speedup bounds |Ŝ_fast − Ŝ_exact| and ActualSpeedup bounds
// |S_fast − S_exact| (the timing drift of the sampled machine itself).
type FastBounds struct {
	NegLLC        float64
	PosLLC        float64
	NegMem        float64
	Spin          float64
	Yield         float64
	Imbalance     float64
	Speedup       float64
	ActualSpeedup float64
}

// FastErrorBounds is the documented accuracy contract of ModeFast with the
// default FastSetShift, measured across all 28 registered analogues at 4
// and 16 threads and asserted by the fast-vs-exact regression test in
// internal/exp (which runs under CI's -race job). The values carry
// ~30% headroom over the observed worst-case deviations (NegLLC 0.59,
// PosLLC 0.35, NegMem 2.88, Spin 2.67, Yield 1.05, Imbalance 0.02,
// Speedup 2.77, ActualSpeedup 2.73) so legitimate refactors don't trip
// them, while a regression that breaks the extrapolation fails loudly.
// These are worst single-cell deviations on the 16-thread machine; the
// mean |Ŝ_fast − Ŝ_exact| across the validation grid is 2-5% of N (the
// `experiments fastcompare` table), and fast mode's mean error against the
// actual speedup matches exact mode's.
var FastErrorBounds = FastBounds{
	NegLLC:        0.80,
	PosLLC:        0.50,
	NegMem:        3.75,
	Spin:          3.50,
	Yield:         1.40,
	Imbalance:     0.10,
	Speedup:       3.60,
	ActualSpeedup: 3.60,
}
