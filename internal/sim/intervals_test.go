package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// intervalTestRun builds the programs for one registry benchmark and runs
// it with the given extra options on a small machine.
func intervalTestRun(t *testing.T, bench string, threads int, opts ...sim.Option) sim.Result {
	t.Helper()
	b, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("%s not registered", bench)
	}
	cfg := sim.Default().WithCores(threads)
	cfg.Policy = b.Spec.TunePolicy(cfg.Policy)
	progs, err := b.Spec.Parallel(threads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg, progs, append(b.Spec.PipelineOptions(threads), opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestIntervalsDisabledIdentical pins the tentpole's no-perturbation
// contract: enabling interval accounting changes nothing but the Intervals
// fields — Tp, every counter, every substrate statistic are byte-identical.
// (With the option disabled the golden experiments hash pins the same
// thing against the full evaluation.)
func TestIntervalsDisabledIdentical(t *testing.T) {
	for _, bench := range []string{"bodytrack_parsec_small", "ferret_parsec_small", "cholesky_splash2"} {
		plain := intervalTestRun(t, bench, 4)
		with := intervalTestRun(t, bench, 4, sim.WithIntervals(plain.TotalOps/8+1))
		if len(with.Intervals) == 0 || with.IntervalEvery == 0 {
			t.Fatalf("%s: interval run recorded no snapshots", bench)
		}
		if plain.Intervals != nil || plain.IntervalEvery != 0 {
			t.Fatalf("%s: plain run carries interval state", bench)
		}
		stripped := with
		stripped.Intervals, stripped.IntervalEvery = nil, 0
		if !reflect.DeepEqual(plain, stripped) {
			t.Fatalf("%s: interval accounting perturbed the result:\nplain %+v\nwith  %+v",
				bench, plain, stripped)
		}
	}
}

// TestIntervalSnapshots checks the snapshot sequence contract: cumulative
// ops strictly increase up to TotalOps, snapshot times never move
// backwards and end at Tp, per-thread counters are cumulative, and the
// final snapshot marks every thread finished.
func TestIntervalSnapshots(t *testing.T) {
	res := intervalTestRun(t, "bodytrack_parsec_small", 4, sim.WithIntervals(5000))
	snaps := res.Intervals
	if len(snaps) < 2 {
		t.Fatalf("want several snapshots, got %d", len(snaps))
	}
	var prevOps, prevTime uint64
	for k, s := range snaps {
		if s.Ops <= prevOps && k > 0 {
			t.Fatalf("snapshot %d: ops not increasing (%d after %d)", k, s.Ops, prevOps)
		}
		if s.Time < prevTime {
			t.Fatalf("snapshot %d: time moved backwards (%d after %d)", k, s.Time, prevTime)
		}
		if len(s.Threads) != res.Threads || len(s.Finished) != res.Threads {
			t.Fatalf("snapshot %d: %d counters / %d finished flags for %d threads",
				k, len(s.Threads), len(s.Finished), res.Threads)
		}
		if k > 0 {
			for i := range s.Threads {
				if s.Threads[i].Instrs < snaps[k-1].Threads[i].Instrs {
					t.Fatalf("snapshot %d thread %d: Instrs not cumulative", k, i)
				}
			}
		}
		prevOps, prevTime = s.Ops, s.Time
	}
	last := snaps[len(snaps)-1]
	if last.Ops != res.TotalOps {
		t.Fatalf("final snapshot at %d ops, run committed %d", last.Ops, res.TotalOps)
	}
	if last.Time != res.Tp {
		t.Fatalf("final snapshot time %d, Tp %d", last.Time, res.Tp)
	}
	for i, fin := range last.Finished {
		if !fin {
			t.Fatalf("final snapshot: thread %d not finished", i)
		}
		if last.Threads[i] != res.PerThread[i] {
			t.Fatalf("final snapshot thread %d counters differ from the result's", i)
		}
	}
}

// TestIntervalsPoolReset guards the pooled hot path: a machine recycled
// after an interval-enabled run must not leak interval state into the next
// (plain) run of the same configuration.
func TestIntervalsPoolReset(t *testing.T) {
	with := intervalTestRun(t, "swaptions_parsec_small", 2, sim.WithIntervals(1000))
	if len(with.Intervals) == 0 {
		t.Fatal("interval run recorded no snapshots")
	}
	plain := intervalTestRun(t, "swaptions_parsec_small", 2)
	if plain.Intervals != nil || plain.IntervalEvery != 0 {
		t.Fatal("pooled machine leaked interval accounting into a plain run")
	}
}

// unbatched hides a program's batching interface so the engine falls back
// to per-op Next calls.
type unbatched struct{ p trace.Program }

func (u unbatched) Next(fb trace.Feedback) trace.Op { return u.p.Next(fb) }

// TestIntervalsUnbatchedProgram covers the per-op snapshot path for
// programs without a batching interface.
func TestIntervalsUnbatchedProgram(t *testing.T) {
	cfg := sim.Default().WithCores(1)
	progs := []trace.Program{unbatched{trace.NewSliceProgram(sliceOps(600))}}
	res, err := sim.Run(cfg, progs, sim.WithIntervals(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) < 5 {
		t.Fatalf("want >=5 snapshots for 601 unbatched ops every 100, got %d", len(res.Intervals))
	}
	if res.Intervals[len(res.Intervals)-1].Ops != res.TotalOps {
		t.Fatal("final snapshot does not cover the full op stream")
	}
}

// sliceOps builds n compute ops followed by an end marker.
func sliceOps(n int) []trace.Op {
	ops := make([]trace.Op, 0, n+1)
	for i := 0; i < n; i++ {
		ops = append(ops, trace.Op{Kind: trace.KindCompute, N: 8})
	}
	return append(ops, trace.Op{Kind: trace.KindEnd})
}
