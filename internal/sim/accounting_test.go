package sim_test

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runBench is a helper running a registered workload end to end.
func runBench(t *testing.T, name string, threads int) sim.Result {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	cfg := sim.Default().WithCores(threads)
	cfg.Policy = b.Spec.TunePolicy(cfg.Policy)
	progs, err := b.Spec.Parallel(threads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg, progs, b.Spec.PipelineOptions(threads)...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEstimatedSpeedupWithinBounds(t *testing.T) {
	for _, name := range []string{"lud_rodinia", "canneal_parsec_small", "ferret_parsec_small"} {
		res := runBench(t, name, 8)
		est := res.EstimatedSpeedup()
		if est < 0 || est > float64(res.Threads)+0.01 {
			t.Errorf("%s: estimated speedup %v out of [0, N]", name, est)
		}
	}
}

func TestComponentsNonNegative(t *testing.T) {
	res := runBench(t, "facesim_parsec_small", 8)
	c := res.Estimated
	for name, v := range map[string]float64{
		"negLLC": c.NegLLC, "posLLC": c.PosLLC, "negMem": c.NegMem,
		"spin": c.Spin, "yield": c.Yield, "imbalance": c.Imbalance,
	} {
		if v < 0 {
			t.Errorf("component %s negative: %v", name, v)
		}
	}
}

func TestPerThreadFinishBoundsTp(t *testing.T) {
	res := runBench(t, "bodytrack_parsec_small", 4)
	for i, ct := range res.PerThread {
		if ct.FinishTime > res.Tp {
			t.Errorf("thread %d finished after Tp: %d > %d", i, ct.FinishTime, res.Tp)
		}
	}
}

func TestSpinDetectedNeverExceedsTruthMuch(t *testing.T) {
	// The Tian detector can only miss episodes (below threshold) or match
	// them; it must never charge more than the true spin time.
	res := runBench(t, "cholesky_splash2", 8)
	var det, truth uint64
	for _, ct := range res.PerThread {
		det += ct.SpinDetected
		truth += ct.OracleSpinCycles
	}
	if det > truth {
		t.Fatalf("detected spin %d exceeds ground truth %d", det, truth)
	}
	if truth > 0 && det == 0 {
		t.Fatal("spin-heavy benchmark detected no spinning at all")
	}
}

func TestSequentialRunHasNoInterference(t *testing.T) {
	b, _ := workload.ByName("facesim_parsec_small")
	prog, err := b.Spec.Sequential()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunSequential(sim.Default(), prog)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Estimated
	if c.NegLLC != 0 || c.PosLLC != 0 || c.Spin != 0 || c.Yield != 0 {
		t.Fatalf("single-threaded run shows interference: %+v", c)
	}
	if c.NegMem != 0 {
		t.Fatalf("single-threaded run shows memory interference: %v", c.NegMem)
	}
}

func TestThreadsExceedCores(t *testing.T) {
	b, _ := workload.ByName("ferret_parsec_small")
	cfg := sim.Default().WithCores(4)
	cfg.Policy = b.Spec.TunePolicy(cfg.Policy)
	progs, err := b.Spec.Parallel(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg, progs, b.Spec.PipelineOptions(16)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 16 || res.Cores != 4 {
		t.Fatalf("run shape %d threads / %d cores", res.Threads, res.Cores)
	}
	// Oversubscription must produce context switches.
	var switches uint64
	for _, st := range res.SchedStats {
		switches += st.CtxSwitches
	}
	if switches == 0 {
		t.Fatal("no context switches with 16 threads on 4 cores")
	}
}

func TestLargerLLCReducesNegativeInterference(t *testing.T) {
	b, _ := workload.ByName("facesim_parsec_small")
	run := func(llc int64) float64 {
		cfg := sim.Default().WithCores(16).WithLLCSize(llc)
		cfg.Policy = b.Spec.TunePolicy(cfg.Policy)
		progs, _ := b.Spec.Parallel(16)
		res, err := sim.Run(cfg, progs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Estimated.NegLLC / float64(res.Tp)
	}
	small, large := run(2<<20), run(16<<20)
	if large >= small {
		t.Fatalf("negative interference did not shrink: 2MB=%v 16MB=%v", small, large)
	}
}

func TestMoreThreadsMoreTotalOverheadInstrs(t *testing.T) {
	b, _ := workload.ByName("swaptions_parsec_small") // 26% overhead at 16T
	count := func(threads int) uint64 {
		progs, _ := b.Spec.Parallel(threads)
		cfg := sim.Default().WithCores(threads)
		res, err := sim.Run(cfg, progs)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalOverheadInstrs
	}
	if c2, c16 := count(2), count(16); c16 <= c2 {
		t.Fatalf("overhead instrs did not grow with threads: 2T=%d 16T=%d", c2, c16)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := sim.Default()
	cfg.Cores = 0
	if _, err := sim.Run(cfg, []trace.Program{trace.NewSliceProgram(nil)}); err == nil {
		t.Fatal("zero cores accepted")
	}
	cfg = sim.Default()
	if _, err := sim.Run(cfg, nil); err == nil {
		t.Fatal("no programs accepted")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfg := sim.Default().WithCores(1)
	cfg.MaxCycles = 10_000
	// A thread that waits forever on a barrier nobody else joins.
	progs := []trace.Program{trace.NewSliceProgram([]trace.Op{trace.Barrier(1)})}
	if _, err := sim.Run(cfg, progs, sim.WithBarrier(1, 2)); err == nil {
		t.Fatal("deadlocked run did not error out")
	}
}

func TestStackAttachesActualSpeedup(t *testing.T) {
	res := runBench(t, "lud_rodinia", 4)
	s := res.Stack(4 * res.Tp)
	if s.ActualSpeedup != 4.0 {
		t.Fatalf("actual speedup = %v, want 4", s.ActualSpeedup)
	}
	if s2 := res.Stack(0); s2.ActualSpeedup != 0 {
		t.Fatal("zero Ts should leave actual speedup unset")
	}
}
