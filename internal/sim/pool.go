package sim

import (
	"sync"

	"repro/internal/trace"
)

// Pool recycles Machines — and the multi-megabyte tag-array, ATD and
// controller backings behind them — across runs of the same configuration,
// so steady-state simulation (a sweep engine executing many cells, the
// speedupd service under load) allocates nothing per simulated op and close
// to nothing per run.
//
// Machines are held in one sync.Pool per configuration: idle machines are
// dropped by the garbage collector under memory pressure, so a long-running
// process sweeping many configurations is bounded by its live concurrency,
// not by the number of configurations it has ever seen. Pool is safe for
// concurrent use.
type Pool struct {
	mu    sync.Mutex
	pools map[Config]*sync.Pool
}

// NewPool returns an empty Pool.
func NewPool() *Pool {
	return &Pool{pools: make(map[Config]*sync.Pool)}
}

func (p *Pool) pool(cfg Config) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp := p.pools[cfg]
	if sp == nil {
		sp = &sync.Pool{}
		p.pools[cfg] = sp
	}
	return sp
}

// Run executes progs to completion on a pooled machine for cfg, applying
// opts first, and returns the machine to the pool afterwards. Results are
// identical to building a fresh machine with NewMachine: a reset machine is
// behaviorally indistinguishable from a new one.
func (p *Pool) Run(cfg Config, progs []trace.Program, opts ...Option) (Result, error) {
	sp := p.pool(cfg)
	m, _ := sp.Get().(*Machine)
	if m == nil {
		var err error
		m, err = NewMachine(cfg, progs)
		if err != nil {
			return Result{}, err
		}
	} else if err := m.reset(progs); err != nil {
		return Result{}, err
	}
	for _, o := range opts {
		o(m)
	}
	res, err := m.Run()
	sp.Put(m)
	return res, err
}

// defaultPool backs the package-level Run/RunSequential: every caller —
// the exp sweep engine, the speedupd service, tests — shares the recycled
// machines automatically.
var defaultPool = NewPool()
