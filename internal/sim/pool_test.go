package sim

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// poolTestProgs builds a deterministic multi-threaded program mix touching
// every machine subsystem a reset must restore: caches (loads/stores over
// more lines than the L1 holds), locks, barriers, queues, and compute.
func poolTestProgs() []trace.Program {
	progs := make([]trace.Program, 4)
	for tid := range progs {
		var ops []trace.Op
		for i := 0; i < 3000; i++ {
			addr := uint64(0x1000_0000 + ((tid*3000+i)%4096)*64)
			ops = append(ops, trace.Compute(200), trace.Load(addr, 0x400))
			if i%64 == 0 {
				ops = append(ops, trace.Store(uint64(0x2000_0000+(i%32)*64), 0x404))
			}
			if i%128 == 0 {
				ops = append(ops, trace.Lock(2), trace.Compute(64), trace.Unlock(2))
			}
			if i%512 == 0 {
				ops = append(ops, trace.Barrier(7))
			}
		}
		progs[tid] = trace.NewSliceProgram(ops)
	}
	return progs
}

// TestPoolResetDeterminism pins the pooling contract: a machine recycled
// through reset must produce a Result deeply equal to a freshly
// constructed machine's for the same (config, programs). A field added to
// any pooled component but missed in its Reset fails here.
func TestPoolResetDeterminism(t *testing.T) {
	cfg := Default().WithCores(4)

	fresh, err := NewMachine(cfg, poolTestProgs())
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}

	p := NewPool()
	// First pass populates the pool; second and third pass run on the
	// recycled (reset) machine.
	for pass := 1; pass <= 3; pass++ {
		got, err := p.Run(cfg, poolTestProgs())
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: pooled result differs from fresh machine:\n got %+v\nwant %+v",
				pass, got, want)
		}
	}

	// Cross-workload reuse: run a different program mix on the pooled
	// machine, then the original again; leakage from the interleaved run
	// would perturb the repeat.
	other := func() []trace.Program {
		var ops []trace.Op
		for i := 0; i < 5000; i++ {
			ops = append(ops, trace.Compute(50), trace.Store(uint64(0x3000_0000+(i%8192)*64), 0x500))
		}
		return []trace.Program{trace.NewSliceProgram(ops), trace.NewSliceProgram(ops)}
	}
	if _, err := p.Run(cfg, other()); err != nil {
		t.Fatal(err)
	}
	got, err := p.Run(cfg, poolTestProgs())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pooled result differs after interleaved foreign workload: reset leaks state")
	}
}

// TestSingleQuantumHorizon pins the MaxCycles boundary of the single-pass
// sequential fast path: it must match the quantum-stepped loop's effective
// horizon, so a run finishing inside the final partial quantum completes.
func TestSingleQuantumHorizon(t *testing.T) {
	cfg := Default().WithCores(1)
	cfg.Quantum = 300
	cfg.MaxCycles = 1000
	// One compute burst of 4400 instructions = 1100 cycles at width 4:
	// past MaxCycles but inside the stepped loop's 1200-cycle horizon.
	res, err := Run(cfg, []trace.Program{trace.NewSliceProgram([]trace.Op{trace.Compute(4400)})})
	if err != nil {
		t.Fatalf("run inside the final partial quantum must complete: %v", err)
	}
	if res.Tp != 1100 {
		t.Fatalf("Tp = %d, want 1100", res.Tp)
	}
	// Past the horizon it must still error.
	cfg.MaxCycles = 900
	if _, err := Run(cfg, []trace.Program{trace.NewSliceProgram([]trace.Op{trace.Compute(8000)})}); err == nil {
		t.Fatal("run past the horizon must fail with MaxCycles exceeded")
	}
}
