// Package whatif is the causal what-if engine: it re-evaluates the paper's
// Section 3/4 estimator with one speedup-stack component virtually scaled
// and ranks the resulting interventions by predicted speedup gain.
//
// The speedup stack is additive (Formula (4): Ŝ = N − Σ O_j/Tp + P/Tp), so
// scaling a component's cycle cost by a factor f changes the estimate by
// (1−f)·C/Tp speedup units — a pure re-evaluation, no simulation. What makes
// the prediction falsifiable is the spec vocabulary: every catalog
// intervention is also a concrete workload.Spec or sim.Config mutation
// ("halve the lock hold time" is cs_instr/2, "double the LLC" is a machine
// with twice the capacity), so the mutated workload can actually be
// re-simulated and the predicted gain compared against the measured one.
// The exp package's Engine.WhatIf does exactly that, riding the
// fingerprint-keyed memo so repeated what-ifs cost zero extra simulations;
// this package holds the catalog, the prediction arithmetic, the report
// type and its encoders.
//
// Predictions are first-order by construction: halving a critical section
// more than halves the queueing it causes, and a bigger LLC also speeds up
// the sequential reference the speedup is measured against. The measured
// prediction errors are pinned per intervention in ErrorBounds and asserted
// across the whole registry in CI, mirroring how the paper validates the
// estimator itself (Formula (6)).
package whatif

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// ComponentScale is one virtual scaling: the named stack component's cycle
// cost is multiplied by Factor when re-evaluating the estimator (0 removes
// the component, 0.5 halves it).
type ComponentScale struct {
	// Component is a stack package component name (stack.Comp*).
	Component string `json:"component"`
	// Factor is the multiplier applied to the component, in [0, 1].
	Factor float64 `json:"factor"`
}

// Intervention is one catalog entry: a named, virtually-scalable change to
// the workload or the machine.
type Intervention struct {
	// ID is the stable identifier used on the wire and the command line.
	ID string `json:"id"`
	// Summary is the one-line human description.
	Summary string `json:"summary"`
	// Component is the primary stack component the intervention targets —
	// the hook the advisor uses to attach predicted gains to its
	// component-keyed recommendations.
	Component string `json:"component"`
	// Scales lists every component the intervention virtually scales when
	// predicting (an intervention may touch more than its primary: removing
	// imbalance also removes the yield time skew produces at barriers).
	Scales []ComponentScale `json:"scales"`
}

// ScalesComponent reports whether the intervention virtually scales the
// named component.
func (iv Intervention) ScalesComponent(name string) bool {
	for _, sc := range iv.Scales {
		if sc.Component == name {
			return true
		}
	}
	return false
}

// Mutation is the concrete counterpart of an intervention for one workload:
// the mutated spec (workload-level interventions) or the mutated machine
// (hardware-level ones) — exactly one is non-nil — plus a human description
// of what changed.
type Mutation struct {
	Spec        *workload.Spec
	Config      *sim.Config
	Description string
}

// Catalog intervention IDs.
const (
	HalveLockHold   = "halve_lock_hold"
	RemoveImbalance = "remove_imbalance"
	DoubleLLC       = "double_llc"
	HalveMemLatency = "halve_mem_latency"
)

// catalog is the intervention registry, in presentation order. The entries
// are value types; Catalog returns copies so callers cannot mutate it.
var catalog = []Intervention{
	{
		ID:        HalveLockHold,
		Summary:   "halve the lock hold time (cs_instr / dispatch_instr)",
		Component: stack.CompSpinning,
		Scales: []ComponentScale{
			{Component: stack.CompSpinning, Factor: 0.5},
		},
	},
	{
		ID:        RemoveImbalance,
		Summary:   "remove work imbalance (balance the per-thread shares)",
		Component: stack.CompYielding,
		Scales: []ComponentScale{
			{Component: stack.CompYielding, Factor: 0},
			{Component: stack.CompImbalance, Factor: 0},
		},
	},
	{
		ID:        DoubleLLC,
		Summary:   "double the shared LLC capacity",
		Component: stack.CompCache,
		Scales: []ComponentScale{
			{Component: stack.CompCache, Factor: 0.5},
		},
	},
	{
		ID:        HalveMemLatency,
		Summary:   "halve the DRAM latency and bus occupancy",
		Component: stack.CompMemory,
		Scales: []ComponentScale{
			{Component: stack.CompMemory, Factor: 0.5},
		},
	},
}

// Catalog returns every registered intervention, in presentation order.
func Catalog() []Intervention {
	return append([]Intervention(nil), catalog...)
}

// IDs returns the catalog intervention IDs, in presentation order.
func IDs() []string {
	out := make([]string, len(catalog))
	for i, iv := range catalog {
		out[i] = iv.ID
	}
	return out
}

// ErrUnknownIntervention tags lookups of an ID that is not in the catalog,
// mirroring workload.ErrUnknownBenchmark: callers branch with errors.Is,
// the speedupd service maps it to HTTP 404 with the nearest-ID suggestion.
var ErrUnknownIntervention = errors.New("unknown intervention")

// UnknownInterventionError is the typed form of a failed catalog lookup,
// carrying the nearest catalog ID as a machine-readable suggestion.
type UnknownInterventionError struct {
	// ID is the identifier that failed to resolve; Suggestion the closest
	// catalog ID, or "" when nothing is plausibly intended.
	ID         string
	Suggestion string
}

// Error renders the failed ID, the did-you-mean suggestion when one exists,
// and the full catalog otherwise.
func (e *UnknownInterventionError) Error() string {
	if e.Suggestion != "" {
		return fmt.Sprintf("%v %q (did you mean %q?)", ErrUnknownIntervention, e.ID, e.Suggestion)
	}
	return fmt.Sprintf("%v %q (catalog: %s)", ErrUnknownIntervention, e.ID, strings.Join(IDs(), ", "))
}

// Is makes errors.Is(err, ErrUnknownIntervention) hold for lookup errors.
func (e *UnknownInterventionError) Is(target error) bool { return target == ErrUnknownIntervention }

// ByID resolves a catalog intervention, failing with a typed
// *UnknownInterventionError carrying the nearest-ID suggestion.
func ByID(id string) (Intervention, error) {
	for _, iv := range catalog {
		if iv.ID == id {
			return iv, nil
		}
	}
	return Intervention{}, &UnknownInterventionError{ID: id, Suggestion: suggestID(id)}
}

// suggestID returns the catalog ID closest to id by edit distance, or ""
// when nothing is close enough to be a plausible typo (same cutoff as the
// benchmark registry's suggester).
func suggestID(id string) string {
	in := strings.ToLower(id)
	limit := max(2, len(in)/3)
	best, bestDist := "", limit+1
	for _, iv := range catalog {
		if d := editDistance(in, iv.ID); d < bestDist {
			best, bestDist = iv.ID, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b, two rows at a
// time. Intervention IDs are short, so the quadratic cost is irrelevant.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Mutate builds the intervention's concrete mutation for one workload on
// one machine. ok is false when the intervention does not apply (halving a
// lock hold time needs a lock; removing imbalance needs skewed shares).
// spec should be canonical; mutated specs stay valid whenever the input is,
// which the service's fuzz suite asserts for arbitrary valid specs.
func (iv Intervention) Mutate(spec workload.Spec, cfg sim.Config) (Mutation, bool) {
	switch iv.ID {
	case HalveLockHold:
		return mutateHalveLockHold(spec)
	case RemoveImbalance:
		if spec.Kind == workload.KindPipeline || spec.EffectiveParallelism <= 0 {
			return Mutation{}, false
		}
		m := spec
		desc := fmt.Sprintf("effective_parallelism %g -> 0 (balanced shares)", m.EffectiveParallelism)
		m.EffectiveParallelism = 0
		return Mutation{Spec: &m, Description: desc}, true
	case DoubleLLC:
		c := cfg.WithLLCSize(cfg.LLC.SizeBytes * 2)
		return Mutation{Config: &c,
			Description: fmt.Sprintf("LLC %d KiB -> %d KiB", cfg.LLC.SizeBytes>>10, c.LLC.SizeBytes>>10)}, true
	case HalveMemLatency:
		c := cfg
		c.Mem.RowHitCycles = halveCycles(c.Mem.RowHitCycles)
		c.Mem.RowMissCycles = halveCycles(c.Mem.RowMissCycles)
		c.Mem.BusCycles = halveCycles(c.Mem.BusCycles)
		return Mutation{Config: &c,
			Description: fmt.Sprintf("DRAM row hit/miss %d/%d -> %d/%d cycles, bus %d -> %d",
				cfg.Mem.RowHitCycles, cfg.Mem.RowMissCycles, c.Mem.RowHitCycles, c.Mem.RowMissCycles,
				cfg.Mem.BusCycles, c.Mem.BusCycles)}, true
	}
	return Mutation{}, false
}

// mutateHalveLockHold halves the serial work held under locks: the
// critical-section body for data-parallel workloads, the dispatch section
// (plus any item-level critical section) for task queues. Pipelines have no
// lock knobs, so the intervention does not apply.
func mutateHalveLockHold(spec workload.Spec) (Mutation, bool) {
	m := spec
	switch spec.Kind {
	case workload.KindDataParallel:
		if spec.CSInstr <= 0 || spec.CSPerThreadPerPhase <= 0 {
			return Mutation{}, false
		}
		m.CSInstr = spec.CSInstr / 2
		return Mutation{Spec: &m,
			Description: fmt.Sprintf("cs_instr %d -> %d", spec.CSInstr, m.CSInstr)}, true
	case workload.KindTaskQueue:
		if spec.DispatchInstr <= 0 && spec.CSInstr <= 0 {
			return Mutation{}, false
		}
		var parts []string
		if spec.DispatchInstr > 0 {
			m.DispatchInstr = spec.DispatchInstr / 2
			parts = append(parts, fmt.Sprintf("dispatch_instr %d -> %d", spec.DispatchInstr, m.DispatchInstr))
		}
		if spec.CSInstr > 0 {
			m.CSInstr = spec.CSInstr / 2
			parts = append(parts, fmt.Sprintf("cs_instr %d -> %d", spec.CSInstr, m.CSInstr))
		}
		return Mutation{Spec: &m, Description: strings.Join(parts, ", ")}, true
	}
	return Mutation{}, false
}

// halveCycles halves a latency without reaching zero (mem.Config rejects
// zero-cycle resources).
func halveCycles(v uint64) uint64 {
	if v <= 1 {
		return 1
	}
	return v / 2
}

// PredictGain re-evaluates Formula (4) with the intervention's components
// scaled and returns the predicted speedup change, in speedup units:
// Σ (1−factor)·C/Tp over the scaled components. Components whose current
// value is non-positive (a net-positive LLC interference) contribute
// nothing — the intervention cannot reclaim cycles the workload is not
// losing.
func PredictGain(st core.Stack, iv Intervention) float64 {
	named := stack.Named(st)
	gain := 0.0
	for _, sc := range iv.Scales {
		if v := named[sc.Component]; v > 0 {
			gain += (1 - sc.Factor) * v
		}
	}
	return gain
}

// Prediction is one evaluated intervention: the estimator's prediction and
// the ground truth from re-simulating the mutated workload/machine.
type Prediction struct {
	// Intervention, Summary and Component echo the catalog entry; Mutation
	// describes the concrete spec/config change that was re-simulated.
	Intervention string `json:"intervention"`
	Summary      string `json:"summary"`
	Component    string `json:"component"`
	Mutation     string `json:"mutation"`
	// PredictedGain is the Formula (4) re-evaluation: the speedup units the
	// scaled components currently cost. PredictedSpeedup is the baseline
	// actual speedup plus that gain.
	PredictedGain    float64 `json:"predicted_gain"`
	PredictedSpeedup float64 `json:"predicted_speedup"`
	// ActualSpeedup is the re-simulated mutated workload's measured speedup;
	// ActualGain its change over the baseline.
	ActualSpeedup float64 `json:"actual_speedup"`
	ActualGain    float64 `json:"actual_gain"`
	// Error is the prediction error normalized the paper's way (Formula
	// (6)): (PredictedSpeedup − ActualSpeedup)/N. Positive means the
	// estimator over-promised.
	Error float64 `json:"error"`
}

// Report is the full what-if answer for one (workload, threads) cell:
// every applicable intervention predicted, re-simulated and ranked by
// predicted gain (descending; ties break on intervention ID).
type Report struct {
	// Benchmark labels the workload; Threads (and Cores, when it differs
	// from Threads) the analyzed run shape.
	Benchmark string `json:"benchmark"`
	Threads   int    `json:"threads"`
	Cores     int    `json:"cores,omitempty"`
	// BaselineSpeedup and BaselineEstimated anchor the predictions: the
	// measured and Formula (4) speedups of the unmutated run.
	BaselineSpeedup   float64 `json:"baseline_speedup"`
	BaselineEstimated float64 `json:"baseline_estimated"`
	// Predictions are ranked by predicted gain, largest first.
	Predictions []Prediction `json:"predictions"`
	// Bars carries the baseline and per-intervention re-simulated stacks
	// backing the SVG rendering; it is not part of the JSON wire form.
	Bars []stack.Bar `json:"-"`
}

// Rank sorts predictions in report order: predicted gain descending, ties
// broken by intervention ID so the ranking is total and deterministic.
func Rank(preds []Prediction) {
	sort.SliceStable(preds, func(i, j int) bool {
		if preds[i].PredictedGain != preds[j].PredictedGain {
			return preds[i].PredictedGain > preds[j].PredictedGain
		}
		return preds[i].Intervention < preds[j].Intervention
	})
}

// ErrorBounds documents the maximum |Prediction.Error| each intervention
// exhibits across the full regression grid — every registry analogue at 4
// and 16 threads — with headroom for future calibration drift. The grid is
// asserted against these bounds in CI (internal/exp's what-if regression),
// so a change that degrades the predictor past them fails loudly.
//
// The bounds differ because the interventions break first-order additivity
// differently. Halving the lock hold time is the best-behaved (measured
// worst |error| 0.073): spin cycles shrink close to linearly with the
// critical-section length. The hardware mutations also speed up the
// sequential reference the speedup is measured against, which the stack — a
// property of the parallel run alone — cannot see (measured worst 0.163 for
// the LLC, 0.169 for memory latency). Removing imbalance is the most
// invasive: balancing the per-thread shares re-times every phase, exposing
// lock and memory contention the skewed schedule was hiding, so its
// first-order prediction is systematically optimistic (measured worst
// 0.411, freqmine_parsec_medium x16).
var ErrorBounds = map[string]float64{
	HalveLockHold:   0.10,
	RemoveImbalance: 0.45,
	DoubleLLC:       0.20,
	HalveMemLatency: 0.20,
}
