package whatif

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// TestCatalogShape pins the catalog contract: stable IDs in presentation
// order, unique, every entry's primary component among its scales, every
// factor in [0, 1].
func TestCatalogShape(t *testing.T) {
	want := []string{HalveLockHold, RemoveImbalance, DoubleLLC, HalveMemLatency}
	if got := IDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	seen := make(map[string]bool)
	for _, iv := range Catalog() {
		if seen[iv.ID] {
			t.Errorf("duplicate catalog ID %q", iv.ID)
		}
		seen[iv.ID] = true
		if iv.Summary == "" || iv.Component == "" {
			t.Errorf("%s: empty summary or component", iv.ID)
		}
		if !iv.ScalesComponent(iv.Component) {
			t.Errorf("%s: primary component %q not among its scales", iv.ID, iv.Component)
		}
		for _, sc := range iv.Scales {
			if sc.Factor < 0 || sc.Factor > 1 {
				t.Errorf("%s: factor %g for %q outside [0, 1]", iv.ID, sc.Factor, sc.Component)
			}
		}
	}
}

// TestCatalogReturnsCopies: mutating a Catalog() result must not corrupt the
// registry.
func TestCatalogReturnsCopies(t *testing.T) {
	c := Catalog()
	c[0].ID = "clobbered"
	if got, _ := ByID(HalveLockHold); got.ID != HalveLockHold {
		t.Error("Catalog() exposes the registry backing array")
	}
}

// TestByID resolves every catalog ID and types the failure path: unknown IDs
// fail with *UnknownInterventionError, match errors.Is, and carry a
// nearest-ID suggestion for plausible typos but not for noise.
func TestByID(t *testing.T) {
	for _, id := range IDs() {
		iv, err := ByID(id)
		if err != nil || iv.ID != id {
			t.Errorf("ByID(%q) = %v, %v", id, iv.ID, err)
		}
	}
	_, err := ByID("double_lcc")
	if err == nil {
		t.Fatal("ByID accepted an unknown ID")
	}
	if !errors.Is(err, ErrUnknownIntervention) {
		t.Error("lookup failure does not match ErrUnknownIntervention")
	}
	var typed *UnknownInterventionError
	if !errors.As(err, &typed) {
		t.Fatalf("lookup failure is %T, not *UnknownInterventionError", err)
	}
	if typed.Suggestion != DoubleLLC {
		t.Errorf("suggestion for double_lcc = %q, want %q", typed.Suggestion, DoubleLLC)
	}
	if !strings.Contains(err.Error(), "did you mean") {
		t.Errorf("error %q lacks the did-you-mean hint", err)
	}
	_, err = ByID("zzzzzzzzzzzzzzzzzzzz")
	var noise *UnknownInterventionError
	if !errors.As(err, &noise) {
		t.Fatalf("noise lookup is %T", err)
	}
	if noise.Suggestion != "" {
		t.Errorf("noise ID drew suggestion %q, want none", noise.Suggestion)
	}
	if !strings.Contains(err.Error(), HalveLockHold) {
		t.Errorf("suggestion-less error %q does not list the catalog", err)
	}
}

// testStack builds a hand-sized stack: N=4, Tp=1000 cycles, with every
// overhead component present and positive interference partially offsetting
// the LLC loss.
func testStack() core.Stack {
	return core.Stack{
		N: 4, Tp: 1000,
		Components: core.Components{
			NegLLC: 300, PosLLC: 100, NegMem: 200, Spin: 400, Yield: 150, Imbalance: 250,
		},
		ActualSpeedup: 2.5,
	}
}

// TestPredictGain checks the Formula (4) re-evaluation against hand
// arithmetic on testStack, including the two subtleties: the cache
// component is the net interference, and net-positive components contribute
// nothing.
func TestPredictGain(t *testing.T) {
	st := testStack()
	cases := []struct {
		id   string
		want float64
	}{
		// spinning = 400/1000; halving reclaims half.
		{HalveLockHold, 0.5 * 0.400},
		// yielding 150/1000 and imbalance 250/1000, both fully removed.
		{RemoveImbalance, 0.150 + 0.250},
		// net cache = (300-100)/1000; halving reclaims half.
		{DoubleLLC, 0.5 * 0.200},
		// memory = 200/1000; halved.
		{HalveMemLatency, 0.5 * 0.200},
	}
	for _, c := range cases {
		iv, err := ByID(c.id)
		if err != nil {
			t.Fatal(err)
		}
		if got := PredictGain(st, iv); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PredictGain(%s) = %g, want %g", c.id, got, c.want)
		}
	}
	// A net-positive LLC (PosLLC > NegLLC) must predict zero cache gain: the
	// intervention cannot reclaim cycles the workload is not losing.
	st.Components.PosLLC = 500
	iv, _ := ByID(DoubleLLC)
	if got := PredictGain(st, iv); got != 0 {
		t.Errorf("net-positive LLC predicted gain %g, want 0", got)
	}
}

// mutateSpecs returns one canonical spec per registry family plus targeted
// degenerate variants.
func dpSpec() workload.Spec {
	b, ok := workload.ByName("cholesky_splash2")
	if !ok {
		panic("cholesky_splash2 not registered")
	}
	return b.Spec
}

// TestMutateApplicability walks the applicability matrix: which
// interventions produce a concrete mutation for which workload shapes, and
// that every produced spec mutation is still valid with an unchanged name.
func TestMutateApplicability(t *testing.T) {
	cfg := sim.Default()
	var dp, tq, pipe workload.Spec
	for _, b := range workload.All() {
		switch {
		case b.Spec.Kind == workload.KindDataParallel && dp.Name == "" && b.Spec.CSInstr > 0 && b.Spec.CSPerThreadPerPhase > 0 && b.Spec.EffectiveParallelism > 0:
			dp = b.Spec
		case b.Spec.Kind == workload.KindTaskQueue && tq.Name == "":
			tq = b.Spec
		case b.Spec.Kind == workload.KindPipeline && pipe.Name == "":
			pipe = b.Spec
		}
	}
	if dp.Name == "" || tq.Name == "" || pipe.Name == "" {
		t.Fatal("registry no longer covers all three workload kinds with lock/imbalance knobs")
	}

	for _, c := range []struct {
		name string
		spec workload.Spec
		id   string
		ok   bool
		spc  bool // mutation is a spec (vs config) mutation
	}{
		{"dp halve_lock_hold", dp, HalveLockHold, true, true},
		{"tq halve_lock_hold", tq, HalveLockHold, true, true},
		{"pipeline halve_lock_hold", pipe, HalveLockHold, false, false},
		{"dp remove_imbalance", dp, RemoveImbalance, true, true},
		{"pipeline remove_imbalance", pipe, RemoveImbalance, false, false},
		{"dp double_llc", dp, DoubleLLC, true, false},
		{"pipeline double_llc", pipe, DoubleLLC, true, false},
		{"dp halve_mem_latency", dp, HalveMemLatency, true, false},
	} {
		iv, err := ByID(c.id)
		if err != nil {
			t.Fatal(err)
		}
		m, ok := iv.Mutate(c.spec.Canonical(), cfg)
		if ok != c.ok {
			t.Errorf("%s: applicable = %v, want %v", c.name, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if m.Description == "" {
			t.Errorf("%s: empty mutation description", c.name)
		}
		if (m.Spec != nil) != c.spc || (m.Spec == nil) == (m.Config == nil) {
			t.Errorf("%s: mutation spec/config shape wrong: spec=%v config=%v", c.name, m.Spec != nil, m.Config != nil)
		}
		if m.Spec != nil {
			if err := m.Spec.Validate(); err != nil {
				t.Errorf("%s: mutated spec invalid: %v", c.name, err)
			}
			if m.Spec.Name != c.spec.Name {
				t.Errorf("%s: mutation renamed the workload %q -> %q", c.name, c.spec.Name, m.Spec.Name)
			}
			if m.Spec.Fingerprint() == c.spec.Canonical().Fingerprint() {
				t.Errorf("%s: mutation left the fingerprint unchanged (no-op)", c.name)
			}
		}
		if m.Config != nil {
			if err := m.Config.Validate(); err != nil {
				t.Errorf("%s: mutated config invalid: %v", c.name, err)
			}
			if *m.Config == cfg {
				t.Errorf("%s: mutation left the config unchanged (no-op)", c.name)
			}
		}
	}

	// Degenerate shapes: no critical section, already balanced.
	noCS := dp
	noCS.CSInstr, noCS.CSPerThreadPerPhase = 0, 0
	if iv, _ := ByID(HalveLockHold); func() bool { _, ok := iv.Mutate(noCS.Canonical(), cfg); return ok }() {
		t.Error("halve_lock_hold applied to a lock-free workload")
	}
	balanced := dp
	balanced.EffectiveParallelism = 0
	if iv, _ := ByID(RemoveImbalance); func() bool { _, ok := iv.Mutate(balanced.Canonical(), cfg); return ok }() {
		t.Error("remove_imbalance applied to an already balanced workload")
	}
}

// TestMutateHardwareValues pins the hardware mutations' arithmetic: LLC
// capacity doubles, DRAM and bus latencies halve without reaching zero.
func TestMutateHardwareValues(t *testing.T) {
	cfg := sim.Default()
	iv, _ := ByID(DoubleLLC)
	m, ok := iv.Mutate(dpSpec().Canonical(), cfg)
	if !ok || m.Config.LLC.SizeBytes != 2*cfg.LLC.SizeBytes {
		t.Errorf("double_llc: %d -> %d bytes", cfg.LLC.SizeBytes, m.Config.LLC.SizeBytes)
	}
	iv, _ = ByID(HalveMemLatency)
	m, ok = iv.Mutate(dpSpec().Canonical(), cfg)
	if !ok {
		t.Fatal("halve_mem_latency not applicable")
	}
	if m.Config.Mem.RowHitCycles != cfg.Mem.RowHitCycles/2 ||
		m.Config.Mem.RowMissCycles != cfg.Mem.RowMissCycles/2 ||
		m.Config.Mem.BusCycles != cfg.Mem.BusCycles/2 {
		t.Errorf("halve_mem_latency mutated to %+v", m.Config.Mem)
	}
	if got := halveCycles(1); got != 1 {
		t.Errorf("halveCycles(1) = %d, want 1 (latencies must not reach zero)", got)
	}
}

// TestRank pins the ranking contract: predicted gain descending, ties broken
// by intervention ID ascending, independent of input order.
func TestRank(t *testing.T) {
	preds := []Prediction{
		{Intervention: "b", PredictedGain: 1},
		{Intervention: "d", PredictedGain: 3},
		{Intervention: "a", PredictedGain: 1},
		{Intervention: "c", PredictedGain: 2},
	}
	Rank(preds)
	var got []string
	for _, p := range preds {
		got = append(got, p.Intervention)
	}
	want := []string{"d", "c", "a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Rank order %v, want %v", got, want)
	}
}

// TestErrorBoundsCoverCatalog: every catalog intervention has a documented
// bound, and no bound is stale (documents an intervention that no longer
// exists).
func TestErrorBoundsCoverCatalog(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := ErrorBounds[id]; !ok {
			t.Errorf("no documented error bound for %s", id)
		}
	}
	for id := range ErrorBounds {
		if _, err := ByID(id); err != nil {
			t.Errorf("ErrorBounds documents unknown intervention %q", id)
		}
	}
}

// testReport assembles a two-prediction report with bars for encoder tests.
func testReport() Report {
	st := testStack()
	return Report{
		Benchmark: "cholesky_splash2", Threads: 4,
		BaselineSpeedup: 2.5, BaselineEstimated: 2.9,
		Predictions: []Prediction{
			{Intervention: HalveLockHold, Summary: "halve the lock hold time", Component: stack.CompSpinning,
				Mutation: "cs_instr 3600 -> 1800", PredictedGain: 0.2, PredictedSpeedup: 2.7,
				ActualSpeedup: 2.65, ActualGain: 0.15, Error: 0.0125},
			{Intervention: DoubleLLC, Summary: "double the shared LLC capacity", Component: stack.CompCache,
				Mutation: "LLC 2048 KiB -> 4096 KiB", PredictedGain: 0.1, PredictedSpeedup: 2.6,
				ActualSpeedup: 2.6, ActualGain: 0.1, Error: 0},
		},
		Bars: []stack.Bar{
			{Label: "cholesky_splash2 x4 (baseline)", Stack: st},
			{Label: HalveLockHold, Stack: st},
			{Label: DoubleLLC, Stack: st},
		},
	}
}

// TestEncodeFormats smoke-tests all four encoders and pins the stable
// surface: the CSV header, the JSON field names, the text ranking order, and
// that Bars stay out of the JSON wire form.
func TestEncodeFormats(t *testing.T) {
	rep := testReport()
	var text, jsonb, csvb, svgb bytes.Buffer
	for _, c := range []struct {
		f stack.Format
		w *bytes.Buffer
	}{
		{stack.FormatText, &text}, {stack.FormatJSON, &jsonb},
		{stack.FormatCSV, &csvb}, {stack.FormatSVG, &svgb},
	} {
		if err := Encode(c.w, c.f, rep); err != nil {
			t.Fatalf("Encode(%v): %v", c.f, err)
		}
		if c.w.Len() == 0 {
			t.Fatalf("Encode(%v) wrote nothing", c.f)
		}
	}
	if !strings.Contains(text.String(), "what-if analysis: cholesky_splash2 x4") {
		t.Error("text header missing")
	}
	if i, j := strings.Index(text.String(), HalveLockHold), strings.Index(text.String(), DoubleLLC); i < 0 || j < 0 || i > j {
		t.Error("text report does not list predictions in rank order")
	}
	var decoded map[string]any
	if err := json.Unmarshal(jsonb.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON encoding not valid JSON: %v", err)
	}
	for _, key := range []string{"benchmark", "threads", "baseline_speedup", "baseline_estimated", "predictions"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON report missing %q", key)
		}
	}
	if _, ok := decoded["Bars"]; ok {
		t.Error("Bars leaked into the JSON wire form")
	}
	wantHeader := "benchmark,threads,baseline_speedup,intervention,component,mutation,predicted_speedup,actual_speedup,predicted_gain,actual_gain,error"
	if got := strings.SplitN(csvb.String(), "\n", 2)[0]; got != wantHeader {
		t.Errorf("CSV header %q, want %q", got, wantHeader)
	}
	if !strings.HasPrefix(svgb.String(), "<svg") && !strings.Contains(svgb.String(), "<svg") {
		t.Error("SVG output lacks an <svg> element")
	}
}

// TestEncodeSVGNeedsBars: the SVG encoder needs the re-simulated stacks; a
// bar-less report (e.g. decoded from JSON) must error, not emit an empty
// chart.
func TestEncodeSVGNeedsBars(t *testing.T) {
	rep := testReport()
	rep.Bars = nil
	if err := Encode(&bytes.Buffer{}, stack.FormatSVG, rep); err == nil {
		t.Error("SVG encoding of a bar-less report succeeded")
	}
}
