package whatif

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/stack"
)

// Encode writes a Report to w in the requested format, reusing the stack
// package's format vocabulary: text is the human-readable ranking, JSON the
// Report object, CSV one record per prediction, and SVG the baseline and
// per-intervention re-simulated stacks as one bar chart.
func Encode(w io.Writer, f stack.Format, r Report) error {
	switch f {
	case stack.FormatText, "":
		_, err := io.WriteString(w, Text(r))
		return err
	case stack.FormatJSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	case stack.FormatNDJSON:
		return json.NewEncoder(w).Encode(r)
	case stack.FormatCSV:
		return encodeCSV(w, r)
	case stack.FormatSVG:
		if len(r.Bars) == 0 {
			return fmt.Errorf("whatif: report carries no stacks to draw (SVG needs a locally-computed report)")
		}
		return stack.Encode(w, stack.FormatSVG, r.Bars)
	}
	return fmt.Errorf("whatif: unknown format %q", f)
}

// Text renders the human-readable what-if report: the baseline, then every
// applicable intervention ranked by predicted gain, each with its concrete
// mutation and its predicted-vs-resimulated outcome.
func Text(r Report) string {
	var b strings.Builder
	label := fmt.Sprintf("%s x%d", r.Benchmark, r.Threads)
	if r.Cores != 0 && r.Cores != r.Threads {
		label += fmt.Sprintf(" on %d cores", r.Cores)
	}
	fmt.Fprintf(&b, "what-if analysis: %s\n", label)
	fmt.Fprintf(&b, "baseline: speedup %.2f (estimated %.2f)\n", r.BaselineSpeedup, r.BaselineEstimated)
	if len(r.Predictions) == 0 {
		b.WriteString("\nno catalog intervention applies to this workload\n")
		return b.String()
	}
	fmt.Fprintf(&b, "\n%4s %-18s %-10s %9s %9s %9s %9s %8s\n",
		"rank", "intervention", "component", "predicted", "actual", "gain(est)", "gain(sim)", "error")
	for i, p := range r.Predictions {
		fmt.Fprintf(&b, "%3d. %-18s %-10s %9.2f %9.2f %+9.2f %+9.2f %+8.3f\n",
			i+1, p.Intervention, p.Component, p.PredictedSpeedup, p.ActualSpeedup,
			p.PredictedGain, p.ActualGain, p.Error)
		fmt.Fprintf(&b, "     %s (%s)\n", p.Summary, p.Mutation)
	}
	b.WriteString("\nranked by predicted gain; error = (predicted - resimulated speedup)/N, the paper's Formula (6) normalization\n")
	return b.String()
}

// encodeCSV writes one record per prediction; the per-report baseline
// repeats on every record so the file stays a single flat table.
func encodeCSV(w io.Writer, r Report) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "threads", "baseline_speedup", "intervention", "component",
		"mutation", "predicted_speedup", "actual_speedup", "predicted_gain", "actual_gain", "error"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range r.Predictions {
		rec := []string{
			r.Benchmark, strconv.Itoa(r.Threads), csvF(r.BaselineSpeedup),
			p.Intervention, p.Component, p.Mutation,
			csvF(p.PredictedSpeedup), csvF(p.ActualSpeedup),
			csvF(p.PredictedGain), csvF(p.ActualGain), csvF(p.Error),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func csvF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
