package sched

import "testing"

func TestInitialPlacement(t *testing.T) {
	o := New(Default(), 4, 6)
	for c := 0; c < 4; c++ {
		if o.Running(c) != c {
			t.Fatalf("core %d runs %d, want %d", c, o.Running(c), c)
		}
	}
	if o.ReadyCount() != 2 {
		t.Fatalf("ready = %d, want 2", o.ReadyCount())
	}
	if o.State(4) != StateReady || o.State(0) != StateRunning {
		t.Fatal("unexpected initial states")
	}
}

func TestBlockWakeSchedule(t *testing.T) {
	cfg := Default()
	o := New(cfg, 2, 2)
	o.Block(0, 1000)
	if o.Running(0) != -1 || o.State(0) != StateBlocked {
		t.Fatal("block did not free the core")
	}
	o.Wake(0, 5000)
	if o.State(0) != StateReady {
		t.Fatal("wake did not ready the thread")
	}
	st := o.Stats(0)
	if st.BlockedCycles != 5000-1000+cfg.WakeLatencyCycles {
		t.Fatalf("blocked cycles = %d", st.BlockedCycles)
	}
	tid, startAt := o.Schedule(0, 6000)
	if tid != 0 {
		t.Fatalf("scheduled %d, want 0", tid)
	}
	wantStart := uint64(5000) + cfg.WakeLatencyCycles
	if wantStart < 6000 {
		wantStart = 6000
	}
	wantStart += cfg.CtxSwitchCycles + cfg.DecisionCyclesPerCore*2
	if startAt != wantStart {
		t.Fatalf("startAt = %d, want %d", startAt, wantStart)
	}
}

func TestScheduleAffinity(t *testing.T) {
	// With no never-placed threads in the queue, a woken thread returns to
	// the core it last ran on (wake affinity keeps caches and the per-core
	// accounting hardware warm).
	o := New(Default(), 2, 2)
	o.Block(0, 100)
	o.Block(1, 150)
	o.Wake(1, 200) // queue order: [1]
	o.Wake(0, 250) // queue order: [1, 0]
	tid, _ := o.Schedule(0, 10_000)
	if tid != 0 {
		t.Fatalf("affinity violated: core 0 got thread %d, want 0", tid)
	}
	tid, _ = o.Schedule(1, 10_000)
	if tid != 1 {
		t.Fatalf("core 1 got thread %d, want 1", tid)
	}
}

func TestScheduleFreshBeatsAffinity(t *testing.T) {
	// Never-placed threads are picked ahead of affine ones so preempted
	// threads cannot starve newcomers.
	o := New(Default(), 1, 3)
	o.Preempt(0, 100) // thread 0 requeued behind fresh threads 1, 2
	tid, _ := o.Schedule(0, 200)
	if tid != 1 {
		t.Fatalf("core 0 got thread %d, want fresh thread 1", tid)
	}
}

func TestScheduleFreshThreadPreferred(t *testing.T) {
	o := New(Default(), 1, 3)
	// Threads 1,2 never ran (lastCore -1). Core 0 blocks thread 0.
	o.Block(0, 100)
	tid, _ := o.Schedule(0, 200)
	if tid != 1 {
		t.Fatalf("scheduled %d, want fresh thread 1", tid)
	}
	st := o.Stats(1)
	if st.CtxSwitches != 1 {
		t.Fatalf("ctx switches = %d", st.CtxSwitches)
	}
}

func TestMigrationCost(t *testing.T) {
	cfg := Default()
	o := New(cfg, 2, 2)
	o.Block(0, 100) // frees core 0
	o.Block(1, 100) // frees core 1
	o.Wake(0, 100)
	o.Wake(1, 100)
	// Schedule thread 0 onto core 1: a migration.
	// Affinity first picks thread 1 for core 1 (lastCore match), so drain
	// it, then thread 0 lands on core 1.
	tid, _ := o.Schedule(1, 50_000)
	if tid != 1 {
		t.Fatalf("expected affine thread 1 first, got %d", tid)
	}
	tid, startAt := o.Schedule(0, 50_000)
	if tid != 0 {
		t.Fatalf("expected thread 0, got %d", tid)
	}
	base := uint64(50_000) + cfg.CtxSwitchCycles + cfg.DecisionCyclesPerCore*2
	if startAt != base {
		t.Fatalf("no-migration start = %d, want %d", startAt, base)
	}
	if o.Stats(0).Migrations != 0 {
		t.Fatal("unexpected migration counted")
	}
	// Now force a cross-core resume.
	o.Block(0, 60_000)
	o.Wake(0, 60_000)
	o.Block(1, 60_000) // frees core 1
	tid, startAt = o.Schedule(1, 70_000)
	if tid != 0 {
		t.Fatalf("expected thread 0 on core 1, got %d", tid)
	}
	if o.Stats(0).Migrations != 1 {
		t.Fatal("migration not counted")
	}
	if startAt != 70_000+cfg.CtxSwitchCycles+cfg.DecisionCyclesPerCore*2+cfg.MigrationCycles {
		t.Fatalf("migration start = %d", startAt)
	}
}

func TestPreemptAndSliceExpiry(t *testing.T) {
	cfg := Default()
	o := New(cfg, 1, 2)
	if o.SliceExpired(0, cfg.TimeSliceCycles-1) {
		t.Fatal("slice expired early")
	}
	if !o.SliceExpired(0, cfg.TimeSliceCycles) {
		t.Fatal("slice did not expire")
	}
	o.Preempt(0, cfg.TimeSliceCycles)
	if o.Running(0) != -1 || o.State(0) != StateReady {
		t.Fatal("preempt did not requeue the thread")
	}
	tid, _ := o.Schedule(0, cfg.TimeSliceCycles)
	if tid != 1 {
		t.Fatalf("next thread = %d, want 1 (fresh)", tid)
	}
}

func TestFinish(t *testing.T) {
	o := New(Default(), 1, 1)
	o.Finish(0, 1234)
	if o.State(0) != StateFinished || o.Running(0) != -1 {
		t.Fatal("finish did not clear state")
	}
	if tid, _ := o.Schedule(0, 2000); tid != -1 {
		t.Fatalf("scheduled finished thread %d", tid)
	}
}

func TestReadyWaitAccounting(t *testing.T) {
	cfg := Default()
	o := New(cfg, 1, 2) // thread 1 starts ready
	o.Block(0, 1000)
	_, _ = o.Schedule(0, 9000)
	st := o.Stats(1)
	// Thread 1 was ready from t=0 (readySince 0) until scheduled at 9000.
	if st.ReadyWaitCycles != 9000 {
		t.Fatalf("ready wait = %d, want 9000", st.ReadyWaitCycles)
	}
}

func TestStateString(t *testing.T) {
	if StateRunning.String() != "running" || StateBlocked.String() != "blocked" ||
		StateReady.String() != "ready" || StateFinished.String() != "finished" {
		t.Fatal("state strings wrong")
	}
}
