// Package sched models the operating-system scheduler of the simulated
// machine: thread-to-core placement, a global FIFO run queue with time
// slicing, futex-style blocking and wake-up latencies, context-switch and
// migration costs.
//
// The scheduler is what turns long synchronization waits into the paper's
// *yielding* component: a thread that exceeds its spin grace period is
// descheduled, the OS records the descheduled time, and (when more software
// threads than cores exist, as in Figure 7) another ready thread gets the
// core.
package sched

import "fmt"

// Config describes the scheduler.
type Config struct {
	// TimeSliceCycles is the preemption quantum for ready threads competing
	// for cores. Only relevant when threads > cores.
	TimeSliceCycles uint64
	// CtxSwitchCycles is charged each time a core switches threads.
	CtxSwitchCycles uint64
	// WakeLatencyCycles is the futex wake-up latency: the delay between a
	// wake event and the thread becoming ready.
	WakeLatencyCycles uint64
	// MigrationCycles is the extra cost when a thread resumes on a core
	// different from its last one (cold private caches, in our model a
	// fixed charge).
	MigrationCycles uint64
	// DecisionCyclesPerCore models scheduler bookkeeping that grows with
	// the number of cores; it reproduces the small efficiency loss the
	// paper observes for the 16-core Linux scheduler in Figure 7.
	DecisionCyclesPerCore uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.TimeSliceCycles == 0 {
		return fmt.Errorf("sched: time slice must be positive")
	}
	return nil
}

// Default returns a configuration loosely modeled on a Linux CFS-like
// scheduler at a 2 GHz clock.
func Default() Config {
	return Config{
		TimeSliceCycles:       200_000,
		CtxSwitchCycles:       900,
		WakeLatencyCycles:     2_200,
		MigrationCycles:       1_200,
		DecisionCyclesPerCore: 28,
	}
}

// ThreadState is the scheduler-visible state of a thread.
type ThreadState uint8

// Thread states.
const (
	// StateRunning: assigned to a core and executing.
	StateRunning ThreadState = iota
	// StateReady: runnable, waiting for a core.
	StateReady
	// StateBlocked: descheduled on a synchronization object (futex wait).
	StateBlocked
	// StateFinished: terminated.
	StateFinished
)

// String returns the state name.
func (s ThreadState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateReady:
		return "ready"
	case StateBlocked:
		return "blocked"
	case StateFinished:
		return "finished"
	default:
		return "unknown"
	}
}

// ThreadStats are per-thread scheduler statistics.
type ThreadStats struct {
	// ReadyWaitCycles is time spent runnable but without a core (only
	// non-zero when threads > cores).
	ReadyWaitCycles uint64
	// BlockedCycles is time spent descheduled on a synchronization object,
	// measured from deschedule to becoming ready again (wake latency
	// included). This is the OS-visible part of the yield component.
	BlockedCycles uint64
	// CtxSwitches counts times the thread was switched onto a core.
	CtxSwitches uint64
	// Migrations counts resumes on a different core than last time.
	Migrations uint64
}

type threadInfo struct {
	state        ThreadState
	core         int // current core when running, else -1
	lastCore     int
	readySince   uint64
	blockedSince uint64
	availableAt  uint64 // earliest time a ready thread may start (wake latency)
	sliceStart   uint64
	stats        ThreadStats
}

// OS is the scheduler instance for one simulated machine.
type OS struct {
	cfg     Config
	cores   int
	threads []threadInfo
	running []int // per core: thread id or -1
	readyQ  []int // FIFO of ready thread ids
}

// New builds an OS managing threads software threads over cores cores and
// performs initial placement: thread i starts on core i for i < cores; the
// rest start ready in the run queue.
func New(cfg Config, cores, threads int) *OS {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cores <= 0 || threads <= 0 {
		panic("sched: cores and threads must be positive")
	}
	o := &OS{
		cfg:     cfg,
		cores:   cores,
		threads: make([]threadInfo, threads),
		running: make([]int, cores),
	}
	for c := range o.running {
		o.running[c] = -1
	}
	for t := range o.threads {
		o.threads[t] = threadInfo{state: StateReady, core: -1, lastCore: -1}
		if t < cores {
			o.threads[t].state = StateRunning
			o.threads[t].core = t
			o.threads[t].lastCore = t
			o.running[t] = t
		} else {
			o.readyQ = append(o.readyQ, t)
		}
	}
	return o
}

// Running returns the thread on core, or -1 when the core is idle.
func (o *OS) Running(core int) int { return o.running[core] }

// State returns the scheduler state of thread tid.
func (o *OS) State(tid int) ThreadState { return o.threads[tid].state }

// Stats returns the accumulated statistics of thread tid.
func (o *OS) Stats(tid int) ThreadStats { return o.threads[tid].stats }

// ReadyCount returns the number of threads waiting in the run queue.
func (o *OS) ReadyCount() int { return len(o.readyQ) }

// HasReady reports whether some ready thread could use a core now.
func (o *OS) HasReady() bool { return len(o.readyQ) > 0 }

// Block deschedules the running thread tid at time now (futex wait). Its
// core becomes idle; call Schedule to refill it.
func (o *OS) Block(tid int, now uint64) {
	t := &o.threads[tid]
	if t.state != StateRunning {
		panic(fmt.Sprintf("sched: Block(%d) in state %v", tid, t.state))
	}
	o.running[t.core] = -1
	t.state = StateBlocked
	t.core = -1
	t.blockedSince = now
}

// Wake makes a blocked thread ready at now; it becomes eligible to run
// after the futex wake latency. Safe to call only on blocked threads.
func (o *OS) Wake(tid int, now uint64) {
	t := &o.threads[tid]
	if t.state != StateBlocked {
		panic(fmt.Sprintf("sched: Wake(%d) in state %v", tid, t.state))
	}
	ready := now + o.cfg.WakeLatencyCycles
	t.stats.BlockedCycles += ready - t.blockedSince
	t.state = StateReady
	t.readySince = ready
	t.availableAt = ready
	o.readyQ = append(o.readyQ, tid)
}

// Finish marks a running thread as terminated and frees its core.
func (o *OS) Finish(tid int, now uint64) {
	t := &o.threads[tid]
	if t.state != StateRunning {
		panic(fmt.Sprintf("sched: Finish(%d) in state %v", tid, t.state))
	}
	o.running[t.core] = -1
	t.state = StateFinished
	t.core = -1
}

// Preempt moves the running thread on core back to the ready queue (time
// slice expiry). The caller should only preempt when HasReady() is true.
func (o *OS) Preempt(core int, now uint64) {
	tid := o.running[core]
	if tid < 0 {
		return
	}
	t := &o.threads[tid]
	o.running[core] = -1
	t.state = StateReady
	t.core = -1
	t.readySince = now
	t.availableAt = now
	o.readyQ = append(o.readyQ, tid)
}

// SliceExpired reports whether the thread on core has exhausted its time
// slice at now.
func (o *OS) SliceExpired(core int, now uint64) bool {
	tid := o.running[core]
	if tid < 0 {
		return false
	}
	return now-o.threads[tid].sliceStart >= o.cfg.TimeSliceCycles
}

// Schedule fills an idle core from the run queue at time now. Like Linux's
// wake affinity, it prefers a ready thread that last ran on this core
// (keeping private caches and the per-core accounting hardware warm; with
// one thread per core this yields strict pinning), then a never-placed
// thread, then the queue head. It returns the chosen thread and the time it
// actually starts executing (after wake latency, context switch, migration
// and scheduler decision overhead), or (-1, 0) when no thread is ready.
func (o *OS) Schedule(core int, now uint64) (tid int, startAt uint64) {
	if o.running[core] >= 0 || len(o.readyQ) == 0 {
		return -1, 0
	}
	pick := -1
	for i, cand := range o.readyQ {
		if o.threads[cand].lastCore == -1 {
			pick = i // never-placed threads first: they cannot be starved
			break
		}
	}
	if pick < 0 {
		for i, cand := range o.readyQ {
			if o.threads[cand].lastCore == core {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		pick = 0
	}
	tid = o.readyQ[pick]
	o.readyQ = append(o.readyQ[:pick], o.readyQ[pick+1:]...)
	t := &o.threads[tid]
	start := now
	if t.availableAt > start {
		start = t.availableAt
	}
	if start > t.readySince {
		t.stats.ReadyWaitCycles += start - t.readySince
	}
	start += o.cfg.CtxSwitchCycles + o.cfg.DecisionCyclesPerCore*uint64(o.cores)
	if t.lastCore >= 0 && t.lastCore != core {
		start += o.cfg.MigrationCycles
		t.stats.Migrations++
	}
	t.stats.CtxSwitches++
	t.state = StateRunning
	t.core = core
	t.lastCore = core
	t.sliceStart = start
	o.running[core] = tid
	return tid, start
}
