package syncprim

import (
	"testing"
	"testing/quick"
)

func TestLockUncontended(t *testing.T) {
	l := NewLock()
	if !l.Acquire(3) {
		t.Fatal("free lock refused")
	}
	if l.Owner() != 3 {
		t.Fatalf("owner = %d", l.Owner())
	}
	if next, transferred := l.Release(nil); transferred || next != -1 {
		t.Fatal("release with no waiters transferred")
	}
	if l.Owner() != -1 {
		t.Fatal("lock not freed")
	}
}

func TestLockFIFO(t *testing.T) {
	l := NewLock()
	l.Acquire(0)
	l.Acquire(1)
	l.Acquire(2)
	if l.Waiters() != 2 || l.Contended() != 2 {
		t.Fatalf("waiters=%d contended=%d", l.Waiters(), l.Contended())
	}
	next, transferred := l.Release(nil)
	if !transferred || next != 1 {
		t.Fatalf("handoff to %d, want 1", next)
	}
	next, _ = l.Release(nil)
	if next != 2 {
		t.Fatalf("handoff to %d, want 2", next)
	}
	if l.Acquisitions() != 3 {
		t.Fatalf("acquisitions = %d", l.Acquisitions())
	}
}

func TestLockBarging(t *testing.T) {
	l := NewLock()
	l.Acquire(0)
	l.Acquire(1) // will be "parked"
	l.Acquire(2) // still spinning
	parked := map[int]bool{1: true}
	next, _ := l.Release(func(tid int) bool { return !parked[tid] })
	if next != 2 {
		t.Fatalf("barging picked %d, want spinning waiter 2", next)
	}
	// With everyone parked, FIFO applies.
	l2 := NewLock()
	l2.Acquire(0)
	l2.Acquire(1)
	l2.Acquire(2)
	next, _ = l2.Release(func(int) bool { return false })
	if next != 1 {
		t.Fatalf("all-parked handoff to %d, want 1", next)
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLock().Release(nil)
}

func TestBarrier(t *testing.T) {
	b := NewBarrier(3)
	if _, last := b.Arrive(0); last {
		t.Fatal("first arrival released")
	}
	if _, last := b.Arrive(1); last {
		t.Fatal("second arrival released")
	}
	released, last := b.Arrive(2)
	if !last || len(released) != 2 {
		t.Fatalf("last arrival: last=%v released=%v", last, released)
	}
	if b.Episodes() != 1 {
		t.Fatalf("episodes = %d", b.Episodes())
	}
	// Sense reversal: reusable immediately.
	if _, last := b.Arrive(0); last {
		t.Fatal("barrier not reset")
	}
	if b.Waiting() != 1 {
		t.Fatalf("waiting = %d", b.Waiting())
	}
}

func TestQueueBasicFlow(t *testing.T) {
	q := NewQueue(2)
	if granted, ok := q.Push(0, nil); !ok || granted != -1 {
		t.Fatal("push into empty queue failed")
	}
	if granted, ok, closed := q.Pop(1, nil); !ok || closed || granted != -1 {
		t.Fatal("pop of available item failed")
	}
	if q.Items() != 0 {
		t.Fatalf("items = %d", q.Items())
	}
}

func TestQueueBlockingPopGrantedByPush(t *testing.T) {
	q := NewQueue(2)
	if _, ok, _ := q.Pop(5, nil); ok {
		t.Fatal("pop of empty queue succeeded")
	}
	granted, ok := q.Push(0, nil)
	if !ok || granted != 5 {
		t.Fatalf("push should grant blocked popper 5, got %d", granted)
	}
	if q.Items() != 0 {
		t.Fatal("direct handoff should not change occupancy")
	}
}

func TestQueueBlockingPushGrantedByPop(t *testing.T) {
	q := NewQueue(1)
	q.Push(0, nil)
	if _, ok := q.Push(1, nil); ok {
		t.Fatal("push into full queue succeeded")
	}
	granted, ok, _ := q.Pop(2, nil)
	if !ok || granted != 1 {
		t.Fatalf("pop should admit blocked pusher 1, got %d", granted)
	}
	if q.Items() != 1 {
		t.Fatalf("items = %d, want 1 (admitted push)", q.Items())
	}
}

func TestQueueClose(t *testing.T) {
	q := NewQueue(2)
	q.Pop(7, nil) // blocks
	failed := q.Close()
	if len(failed) != 1 || failed[0] != 7 {
		t.Fatalf("close returned %v", failed)
	}
	if _, ok, closed := q.Pop(8, nil); ok || !closed {
		t.Fatal("pop on closed+empty queue must fail with closed=true")
	}
}

func TestQueueCloseDrainsRemaining(t *testing.T) {
	q := NewQueue(4)
	q.Push(0, nil)
	q.Push(0, nil)
	q.Close()
	// Remaining items still pop successfully.
	if _, ok, _ := q.Pop(1, nil); !ok {
		t.Fatal("pop of remaining item after close failed")
	}
	if _, ok, _ := q.Pop(1, nil); !ok {
		t.Fatal("pop of last item after close failed")
	}
	if _, ok, closed := q.Pop(1, nil); ok || !closed {
		t.Fatal("drained closed queue must report closed")
	}
}

func TestQueuePushClosedPanics(t *testing.T) {
	q := NewQueue(1)
	q.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	q.Push(0, nil)
}

func TestQueueConservation(t *testing.T) {
	// Property: pops never exceed pushes; occupancy = pushes - pops - handoffs.
	f := func(ops []bool) bool {
		q := NewQueue(4)
		for i, push := range ops {
			if push {
				if len(q.pushWaiters) == 0 { // avoid unbounded waiter lists
					q.Push(i, nil)
				}
			} else {
				if len(q.popWaiters) == 0 {
					q.Pop(i, nil)
				}
			}
			if q.Pops() > q.Pushes() {
				return false
			}
			if q.Items() < 0 || q.Items() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	p := DefaultPolicy()
	p.SpinIterationCycles = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero spin iteration accepted")
	}
}
