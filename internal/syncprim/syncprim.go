// Package syncprim implements the synchronization substrate the simulated
// workloads run on: test-and-test-and-set spin locks with FIFO handoff,
// sense-reversing barriers, and bounded task queues for pipeline workloads.
//
// The primitives are pure state machines over thread IDs: *when* waits start
// and end, and how waiting time splits into spinning versus yielding, is
// decided by the simulator's engine using the spin-then-yield policy in
// Policy. Keeping the state machines timing-free makes them independently
// testable and mirrors the real division of labor between a synchronization
// library and the hardware it runs on.
package syncprim

import "fmt"

// Policy captures the synchronization library's cost and back-off model.
// Spin grace periods are per primitive kind because real libraries differ:
// SPLASH-2's PARMACS locks spin (nearly) indefinitely while its barriers
// park on condition variables; PARSEC's pthread mutexes are adaptive with
// short spin phases. This distinction is what separates spin-dominant from
// yield-dominant benchmarks in the paper's Figure 6.
type Policy struct {
	// AcquireCycles is the cost of an uncontended atomic acquire/release
	// (the lock-handling instructions; parallelization overhead per the
	// paper's Section 3.5).
	AcquireCycles uint64
	// HandoffCycles is the cache-line-transfer delay between a release and
	// a spinning waiter's successful acquire.
	HandoffCycles uint64
	// LockSpinGrace is how long a lock waiter spins before the library
	// parks it (futex wait): the spin-then-yield threshold. Waits shorter
	// than this are pure spinning; longer waits spin for the grace period
	// and yield for the rest.
	LockSpinGrace uint64
	// BarrierSpinGrace is the spin-then-yield threshold at barriers.
	BarrierSpinGrace uint64
	// QueueSpinGrace is the spin-then-yield threshold on queue push/pop.
	QueueSpinGrace uint64
	// SpinIterationCycles is the spin-loop body length, which sets the load
	// cadence the Tian detector observes.
	SpinIterationCycles uint64
	// QueueOpCycles is the cost of a queue push/pop critical section.
	QueueOpCycles uint64
}

// Validate reports whether the policy is usable.
func (p Policy) Validate() error {
	if p.SpinIterationCycles == 0 {
		return fmt.Errorf("syncprim: spin iteration cycles must be positive")
	}
	return nil
}

// DefaultPolicy returns a policy modeled on an adaptive pthread library:
// brief spinning, then futex parking.
func DefaultPolicy() Policy {
	return Policy{
		AcquireCycles:       40,
		HandoffCycles:       60,
		LockSpinGrace:       6_000,
		BarrierSpinGrace:    4_000,
		QueueSpinGrace:      150,
		SpinIterationCycles: 12,
		QueueOpCycles:       48,
	}
}

// Lock is a FIFO spin-then-yield mutex. Owner transfer happens at release
// time: the head waiter becomes the owner immediately (the engine applies
// handoff or wake latency before the thread resumes).
type Lock struct {
	owner   int
	waiters []int

	acquisitions uint64
	contended    uint64
}

// NewLock returns an unlocked Lock.
func NewLock() *Lock { return &Lock{owner: -1} }

// Owner returns the current owner or -1.
func (l *Lock) Owner() int { return l.owner }

// Waiters returns the number of queued waiters.
func (l *Lock) Waiters() int { return len(l.waiters) }

// Acquisitions returns the total successful acquisitions.
func (l *Lock) Acquisitions() uint64 { return l.acquisitions }

// Contended returns how many acquisitions had to wait.
func (l *Lock) Contended() uint64 { return l.contended }

// Acquire attempts to take the lock for tid. It returns true on immediate
// success; otherwise tid is appended to the FIFO wait queue.
func (l *Lock) Acquire(tid int) bool {
	if l.owner < 0 {
		l.owner = tid
		l.acquisitions++
		return true
	}
	l.contended++
	l.waiters = append(l.waiters, tid)
	return false
}

// Release releases the lock held by the current owner and transfers it to
// a waiter, if any. prefer selects which waiters are eligible to barge:
// among the FIFO queue, the first waiter satisfying prefer wins; if none
// does (or prefer is nil), strict FIFO applies. Real spin-then-park mutexes
// behave this way: a still-spinning waiter grabs the lock ahead of parked
// ones, avoiding the wake-up convoy. It returns the new owner and whether a
// transfer happened.
func (l *Lock) Release(prefer func(tid int) bool) (next int, transferred bool) {
	if l.owner < 0 {
		panic("syncprim: Release of unheld lock")
	}
	if len(l.waiters) == 0 {
		l.owner = -1
		return -1, false
	}
	idx := pickWaiter(l.waiters, prefer)
	next = l.waiters[idx]
	l.waiters = append(l.waiters[:idx], l.waiters[idx+1:]...)
	l.owner = next
	l.acquisitions++
	return next, true
}

// pickWaiter returns the index of the first waiter satisfying prefer, or 0.
func pickWaiter(waiters []int, prefer func(tid int) bool) int {
	if prefer != nil {
		for i, w := range waiters {
			if prefer(w) {
				return i
			}
		}
	}
	return 0
}

// Barrier is a sense-reversing barrier over a fixed number of parties.
type Barrier struct {
	parties int
	arrived int
	waiters []int

	episodes uint64
}

// NewBarrier returns a barrier for parties threads.
func NewBarrier(parties int) *Barrier {
	if parties <= 0 {
		panic("syncprim: barrier parties must be positive")
	}
	return &Barrier{parties: parties}
}

// Parties returns the barrier width.
func (b *Barrier) Parties() int { return b.parties }

// Waiting returns the number of threads currently blocked at the barrier.
func (b *Barrier) Waiting() int { return len(b.waiters) }

// Episodes returns how many times the barrier has released.
func (b *Barrier) Episodes() uint64 { return b.episodes }

// Arrive registers tid at the barrier. If tid is the last party, it returns
// (released, true) where released are the previously waiting threads (tid
// itself is not included and proceeds immediately). Otherwise tid joins the
// wait set and (nil, false) is returned.
//
// The released slice aliases the barrier's internal wait buffer and is only
// valid until the next Arrive call: consume it before re-entering the
// barrier. Reusing the buffer keeps barrier episodes allocation-free, which
// matters for the simulator's zero-allocations-per-op steady state.
func (b *Barrier) Arrive(tid int) (released []int, last bool) {
	b.arrived++
	if b.arrived == b.parties {
		released = b.waiters
		b.waiters = b.waiters[:0]
		b.arrived = 0
		b.episodes++
		return released, true
	}
	b.waiters = append(b.waiters, tid)
	return nil, false
}

// Queue is a bounded FIFO task queue with blocking push/pop, the substrate
// for pipeline workloads (ferret, dedup analogues). Item payloads are not
// modeled — only occupancy and waiter bookkeeping.
type Queue struct {
	capacity int
	items    int
	closed   bool

	pushWaiters []int
	popWaiters  []int

	pushes, pops uint64
	blockedPush  uint64
	blockedPop   uint64
}

// NewQueue returns a queue holding at most capacity items.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		panic("syncprim: queue capacity must be positive")
	}
	return &Queue{capacity: capacity}
}

// Items returns current occupancy.
func (q *Queue) Items() int { return q.items }

// Closed reports whether the queue is closed.
func (q *Queue) Closed() bool { return q.closed }

// Pushes and Pops return operation counts.
func (q *Queue) Pushes() uint64 { return q.pushes }

// Pops returns the number of successful pops.
func (q *Queue) Pops() uint64 { return q.pops }

// BlockedPushes returns how many pushes had to wait.
func (q *Queue) BlockedPushes() uint64 { return q.blockedPush }

// BlockedPops returns how many pops had to wait.
func (q *Queue) BlockedPops() uint64 { return q.blockedPop }

// Push inserts an item for tid. Outcomes:
//   - granted >= 0: the item was handed directly to blocked popper granted
//     (occupancy unchanged), and the push succeeded.
//   - ok=true, granted=-1: the item was enqueued.
//   - ok=false: the queue is full; tid joined the push-waiter queue.
//
// Pushing to a closed queue panics: workload generators control shutdown.
// prefer selects which blocked popper to hand the item to (see
// Lock.Release).
func (q *Queue) Push(tid int, prefer func(tid int) bool) (granted int, ok bool) {
	if q.closed {
		panic("syncprim: Push on closed queue")
	}
	if len(q.popWaiters) > 0 {
		idx := pickWaiter(q.popWaiters, prefer)
		granted = q.popWaiters[idx]
		q.popWaiters = append(q.popWaiters[:idx], q.popWaiters[idx+1:]...)
		q.pushes++
		q.pops++
		return granted, true
	}
	if q.items < q.capacity {
		q.items++
		q.pushes++
		return -1, true
	}
	q.blockedPush++
	q.pushWaiters = append(q.pushWaiters, tid)
	return -1, false
}

// Pop removes an item for tid. Outcomes:
//   - ok=true, granted>=0: an item was taken and blocked pusher granted's
//     item slot was admitted (wake the pusher).
//   - ok=true, granted=-1: an item was taken.
//   - ok=false, closed=true: queue closed and drained; the pop fails
//     permanently.
//   - ok=false, closed=false: queue empty; tid joined the pop-waiter queue.
func (q *Queue) Pop(tid int, prefer func(tid int) bool) (granted int, ok, closed bool) {
	if q.items > 0 {
		q.items--
		q.pops++
		if len(q.pushWaiters) > 0 {
			idx := pickWaiter(q.pushWaiters, prefer)
			granted = q.pushWaiters[idx]
			q.pushWaiters = append(q.pushWaiters[:idx], q.pushWaiters[idx+1:]...)
			q.items++
			q.pushes++
			return granted, true, false
		}
		return -1, true, false
	}
	if q.closed {
		return -1, false, true
	}
	q.blockedPop++
	q.popWaiters = append(q.popWaiters, tid)
	return -1, false, false
}

// Close marks the queue closed and returns the poppers that must be woken
// with a failed pop. Blocked pushers are impossible on a closed queue by
// construction (producers close only after their last push completed).
func (q *Queue) Close() (failedPoppers []int) {
	q.closed = true
	failed := q.popWaiters
	q.popWaiters = nil
	return failed
}
