package atd

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func fullCfg() Config {
	return Config{Sets: 64, Ways: 4, LineBytes: 64, SampleShift: 0, TagBits: 24}
}

func sampledCfg(shift uint) Config {
	c := fullCfg()
	c.SampleShift = shift
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := fullCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := fullCfg()
	bad.Sets = 63
	if err := bad.Validate(); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
	bad = fullCfg()
	bad.SampleShift = 7 // 64 >> 7 == 0
	if err := bad.Validate(); err == nil {
		t.Fatal("sample shift with no sampled sets accepted")
	}
}

func TestSamplingSelectsSubset(t *testing.T) {
	d := New(sampledCfg(2)) // 1 in 4 sets
	sampledSets := 0
	for set := 0; set < 64; set++ {
		addr := uint64(set * 64)
		if d.Sampled(addr) {
			sampledSets++
			if set%4 != 0 {
				t.Fatalf("set %d sampled, want multiples of 4 only", set)
			}
		}
	}
	if sampledSets != 16 {
		t.Fatalf("sampled sets = %d, want 16", sampledSets)
	}
	if d.Config().SampledSets() != 16 {
		t.Fatalf("SampledSets() = %d", d.Config().SampledSets())
	}
	if d.Config().SamplingFactor() != 4 {
		t.Fatalf("SamplingFactor() = %d", d.Config().SamplingFactor())
	}
}

func TestAccessHitMissLRU(t *testing.T) {
	d := New(fullCfg())
	addr := uint64(0)
	if hit, sampled := d.Access(addr); hit || !sampled {
		t.Fatalf("cold access: hit=%v sampled=%v", hit, sampled)
	}
	if hit, _ := d.Access(addr); !hit {
		t.Fatal("second access must hit")
	}
	// Fill set 0 (stride = 64 sets * 64 B) beyond capacity: LRU evicts addr0.
	stride := uint64(64 * 64)
	for i := 1; i <= 4; i++ {
		d.Access(uint64(i) * stride)
	}
	if hit, _ := d.Access(addr); hit {
		t.Fatal("LRU victim still present after overfill")
	}
}

func TestUnsampledSetsIgnored(t *testing.T) {
	d := New(sampledCfg(3)) // sets 0,8,16,...
	addr := uint64(1 * 64)  // set 1: unsampled
	if _, sampled := d.Access(addr); sampled {
		t.Fatal("set 1 should not be sampled at shift 3")
	}
	if d.SampledAccesses() != 0 {
		t.Fatal("unsampled access counted")
	}
	d.Access(0) // set 0: sampled
	if d.SampledAccesses() != 1 {
		t.Fatal("sampled access not counted")
	}
}

func TestSampledMirrorsFullOnSampledSets(t *testing.T) {
	// Property: on sampled sets, the sampled ATD behaves exactly like the
	// full-coverage one (set sampling does not distort per-set behavior).
	f := func(seed uint64) bool {
		full := New(fullCfg())
		sampled := New(sampledCfg(2))
		rng := trace.NewRNG(seed)
		for i := 0; i < 2000; i++ {
			addr := rng.Uint64n(1<<20) &^ 63
			fh, _ := full.Access(addr)
			sh, ss := sampled.Access(addr)
			if ss && sh != fh {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryModelsPrivateCache(t *testing.T) {
	// The ATD must hit iff a private LLC of the same geometry would hit:
	// compare against a simple per-set LRU oracle.
	cfg := fullCfg()
	d := New(cfg)
	rng := trace.NewRNG(77)
	ref := make(map[int][]uint64)
	for i := 0; i < 20000; i++ {
		addr := rng.Uint64n(1<<22) &^ 63
		si := int(addr / 64 % uint64(cfg.Sets))
		tag := addr / 64 / uint64(cfg.Sets)
		s := ref[si]
		refHit := false
		for j, tg := range s {
			if tg == tag {
				copy(s[1:j+1], s[:j])
				s[0] = tag
				refHit = true
				break
			}
		}
		if !refHit {
			s = append([]uint64{tag}, s...)
			if len(s) > cfg.Ways {
				s = s[:cfg.Ways]
			}
		}
		ref[si] = s
		hit, _ := d.Access(addr)
		if hit != refHit {
			t.Fatalf("access %d: ATD hit=%v oracle=%v", i, hit, refHit)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	d := New(Config{Sets: 2048, Ways: 16, LineBytes: 64, SampleShift: 7, TagBits: 24})
	// 16 sampled sets x 16 ways x 26 bits = 6656 bits = 832 bytes: the
	// paper's ATD share of the 952-byte interference budget.
	if got := d.SizeBytes(); got != 832 {
		t.Fatalf("SizeBytes = %d, want 832", got)
	}
}
