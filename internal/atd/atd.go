// Package atd implements the Auxiliary Tag Directory of the per-thread cycle
// accounting architecture (paper Section 4.1–4.2).
//
// One ATD exists per core. It maintains the tags a *private* LLC of the same
// geometry as the shared LLC would hold for that core alone, so that shared
// vs. private behaviour can be compared access by access:
//
//   - shared-LLC miss that hits in the ATD  -> inter-thread miss
//     (negative interference: sharing evicted this core's data)
//   - shared-LLC hit that misses in the ATD -> inter-thread hit
//     (positive interference: another thread fetched data this core reuses)
//
// To bound hardware cost only a subset of sets is monitored (set sampling);
// penalties measured on sampled sets are extrapolated by the sampling
// factor. A SampleShift of 0 turns the ATD into the full-coverage oracle the
// tests and ground-truth analysis use.
package atd

import (
	"fmt"
	"math/bits"
)

// Config describes one per-core ATD.
type Config struct {
	// Sets and Ways mirror the shared LLC geometry.
	Sets int
	Ways int
	// LineBytes is the cache-line size.
	LineBytes int64
	// SampleShift selects 1-in-2^SampleShift sets for monitoring
	// (set is sampled iff set % 2^SampleShift == 0). Zero monitors all sets.
	SampleShift uint
	// TagBits is the number of tag bits stored per entry, used only by the
	// hardware cost model.
	TagBits int
}

// Validate reports whether the configuration is consistent.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("atd: non-positive geometry %+v", c)
	}
	if c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("atd: set count %d not a power of two", c.Sets)
	}
	if c.Sets>>c.SampleShift == 0 {
		return fmt.Errorf("atd: sample shift %d leaves no sampled sets", c.SampleShift)
	}
	return nil
}

// SamplingFactor returns the nominal extrapolation factor 2^SampleShift.
// The accounting software divides total accesses by sampled accesses at run
// time (the paper's definition); this is the design-time value.
func (c Config) SamplingFactor() uint64 { return 1 << c.SampleShift }

// SampledSets returns the number of monitored sets.
func (c Config) SampledSets() int { return c.Sets >> c.SampleShift }

// Directory is one core's ATD. Only sampled sets are backed by storage.
//
// Tags are stored flat (one backing array, Ways-strided rows) with a +1
// bias so that entry 0 means "empty": the bias folds the valid bit into the
// tag word, halving the state walked per access. The address decomposition
// is precomputed shift/mask arithmetic (set count and line size are powers
// of two), mirroring the LLC's geometry.
type Directory struct {
	cfg  Config
	mask uint64 // set is sampled iff set&mask == 0
	// tags holds Ways-strided MRU-ordered rows of biased tags (tag+1;
	// 0 = empty way).
	tags []uint64

	lineShift uint   // log2(LineBytes)
	setBits   uint   // log2(Sets): tag = lineAddr >> setBits
	setMask   uint64 // Sets-1

	sampledAccesses uint64
}

// New builds a Directory.
func New(cfg Config) *Directory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Directory{
		cfg:       cfg,
		mask:      (1 << cfg.SampleShift) - 1,
		tags:      make([]uint64, cfg.SampledSets()*cfg.Ways),
		lineShift: uint(bits.TrailingZeros64(uint64(cfg.LineBytes))),
		setBits:   uint(bits.TrailingZeros64(uint64(cfg.Sets))),
		setMask:   uint64(cfg.Sets) - 1,
	}
}

// Config returns the directory configuration.
func (d *Directory) Config() Config { return d.cfg }

// Reset empties the directory, reusing its tag storage (machine pooling
// across simulation runs).
func (d *Directory) Reset() {
	for i := range d.tags {
		d.tags[i] = 0
	}
	d.sampledAccesses = 0
}

// setIndex and tag mirror the LLC address mapping.
func (d *Directory) setIndex(addr uint64) int {
	return int((addr >> d.lineShift) & d.setMask)
}

func (d *Directory) tag(addr uint64) uint64 {
	return addr >> d.lineShift >> d.setBits
}

// Sampled reports whether addr falls in a monitored set.
func (d *Directory) Sampled(addr uint64) bool {
	return uint64(d.setIndex(addr))&d.mask == 0
}

// SampledSet reports whether the given set is monitored. It is small enough
// to inline, letting callers skip the AccessSetTag call entirely for the
// (1 - 2^-SampleShift) of accesses that fall outside the sample.
func (d *Directory) SampledSet(set int) bool {
	return uint64(set)&d.mask == 0
}

// Access simulates the private-LLC lookup for addr: it reports whether the
// private cache would have hit, then updates LRU state and installs the line
// on a miss. For non-sampled sets it reports sampled=false and does nothing.
func (d *Directory) Access(addr uint64) (hit, sampled bool) {
	return d.AccessSetTag(d.setIndex(addr), d.tag(addr))
}

// AccessSetTag is Access with the address already decomposed into the LLC's
// (set, tag) pair. The simulator decomposes each LLC access once and feeds
// the same pair to the sampled estimator ATD and the full-coverage oracle
// ATD — their geometries mirror the same LLC, so the mapping is shared.
func (d *Directory) AccessSetTag(set int, tag uint64) (hit, sampled bool) {
	if uint64(set)&d.mask != 0 {
		return false, false
	}
	d.sampledAccesses++
	row := (set >> d.cfg.SampleShift) * d.cfg.Ways
	tags := d.tags[row : row+d.cfg.Ways]
	btag := tag + 1
	// One walk serves both outcomes: the hit check and, for misses, the
	// LRU-most empty way (the last zero seen equals what a backward scan
	// would pick first).
	empty := -1
	for w := range tags {
		if tags[w] == btag {
			// Promote to MRU.
			copy(tags[1:w+1], tags[0:w])
			tags[0] = btag
			return true, true
		}
		if tags[w] == 0 {
			empty = w
		}
	}
	// Miss: install as MRU, evicting LRU (or filling the empty way).
	way := len(tags) - 1
	if empty >= 0 {
		way = empty
	}
	copy(tags[1:way+1], tags[0:way])
	tags[0] = btag
	return false, true
}

// SampledAccesses returns how many accesses fell in monitored sets, used to
// compute the run-time sampling factor (total LLC accesses / sampled
// accesses) per the paper's Section 4.2.
func (d *Directory) SampledAccesses() uint64 { return d.sampledAccesses }

// SizeBytes returns the hardware cost of this ATD: sampled sets × ways ×
// (tag bits + valid + status), rounded up to bytes per entry group. The
// paper budgets 952 bytes per core for the interference accounting
// (ATD + ORA + counters); Cost in internal/core composes this figure.
func (d *Directory) SizeBytes() int {
	bitsPerEntry := d.cfg.TagBits + 2 // tag + valid + dirty/status bit
	totalBits := d.cfg.SampledSets() * d.cfg.Ways * bitsPerEntry
	return (totalBits + 7) / 8
}
