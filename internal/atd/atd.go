// Package atd implements the Auxiliary Tag Directory of the per-thread cycle
// accounting architecture (paper Section 4.1–4.2).
//
// One ATD exists per core. It maintains the tags a *private* LLC of the same
// geometry as the shared LLC would hold for that core alone, so that shared
// vs. private behaviour can be compared access by access:
//
//   - shared-LLC miss that hits in the ATD  -> inter-thread miss
//     (negative interference: sharing evicted this core's data)
//   - shared-LLC hit that misses in the ATD -> inter-thread hit
//     (positive interference: another thread fetched data this core reuses)
//
// To bound hardware cost only a subset of sets is monitored (set sampling);
// penalties measured on sampled sets are extrapolated by the sampling
// factor. A SampleShift of 0 turns the ATD into the full-coverage oracle the
// tests and ground-truth analysis use.
package atd

import "fmt"

// Config describes one per-core ATD.
type Config struct {
	// Sets and Ways mirror the shared LLC geometry.
	Sets int
	Ways int
	// LineBytes is the cache-line size.
	LineBytes int64
	// SampleShift selects 1-in-2^SampleShift sets for monitoring
	// (set is sampled iff set % 2^SampleShift == 0). Zero monitors all sets.
	SampleShift uint
	// TagBits is the number of tag bits stored per entry, used only by the
	// hardware cost model.
	TagBits int
}

// Validate reports whether the configuration is consistent.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("atd: non-positive geometry %+v", c)
	}
	if c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("atd: set count %d not a power of two", c.Sets)
	}
	if c.Sets>>c.SampleShift == 0 {
		return fmt.Errorf("atd: sample shift %d leaves no sampled sets", c.SampleShift)
	}
	return nil
}

// SamplingFactor returns the nominal extrapolation factor 2^SampleShift.
// The accounting software divides total accesses by sampled accesses at run
// time (the paper's definition); this is the design-time value.
func (c Config) SamplingFactor() uint64 { return 1 << c.SampleShift }

// SampledSets returns the number of monitored sets.
func (c Config) SampledSets() int { return c.Sets >> c.SampleShift }

// Directory is one core's ATD. Only sampled sets are backed by storage.
type Directory struct {
	cfg  Config
	mask uint64 // set is sampled iff set&mask == 0
	// tags[sampledSet][way], MRU ordered. A zero tag plus valid=false means
	// empty; tags are stored with a +1 bias so tag 0 is representable.
	tags  [][]uint64
	valid [][]bool

	sampledAccesses uint64
}

// New builds a Directory.
func New(cfg Config) *Directory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Directory{
		cfg:  cfg,
		mask: (1 << cfg.SampleShift) - 1,
	}
	n := cfg.SampledSets()
	d.tags = make([][]uint64, n)
	d.valid = make([][]bool, n)
	tagBacking := make([]uint64, n*cfg.Ways)
	validBacking := make([]bool, n*cfg.Ways)
	for i := 0; i < n; i++ {
		d.tags[i] = tagBacking[i*cfg.Ways : (i+1)*cfg.Ways]
		d.valid[i] = validBacking[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return d
}

// Config returns the directory configuration.
func (d *Directory) Config() Config { return d.cfg }

// setIndex and tag mirror the LLC address mapping.
func (d *Directory) setIndex(addr uint64) int {
	return int(addr / uint64(d.cfg.LineBytes) % uint64(d.cfg.Sets))
}

func (d *Directory) tag(addr uint64) uint64 {
	return addr / uint64(d.cfg.LineBytes) / uint64(d.cfg.Sets)
}

// Sampled reports whether addr falls in a monitored set.
func (d *Directory) Sampled(addr uint64) bool {
	return uint64(d.setIndex(addr))&d.mask == 0
}

// Access simulates the private-LLC lookup for addr: it reports whether the
// private cache would have hit, then updates LRU state and installs the line
// on a miss. For non-sampled sets it reports sampled=false and does nothing.
func (d *Directory) Access(addr uint64) (hit, sampled bool) {
	set := d.setIndex(addr)
	if uint64(set)&d.mask != 0 {
		return false, false
	}
	d.sampledAccesses++
	row := set >> d.cfg.SampleShift
	tag := d.tag(addr)
	tags, valid := d.tags[row], d.valid[row]
	for w := range tags {
		if valid[w] && tags[w] == tag {
			// Promote to MRU.
			copy(tags[1:w+1], tags[0:w])
			copy(valid[1:w+1], valid[0:w])
			tags[0], valid[0] = tag, true
			return true, true
		}
	}
	// Miss: install as MRU, evicting LRU (or filling an empty way).
	way := len(tags) - 1
	for w := len(tags) - 1; w >= 0; w-- {
		if !valid[w] {
			way = w
			break
		}
	}
	copy(tags[1:way+1], tags[0:way])
	copy(valid[1:way+1], valid[0:way])
	tags[0], valid[0] = tag, true
	return false, true
}

// SampledAccesses returns how many accesses fell in monitored sets, used to
// compute the run-time sampling factor (total LLC accesses / sampled
// accesses) per the paper's Section 4.2.
func (d *Directory) SampledAccesses() uint64 { return d.sampledAccesses }

// SizeBytes returns the hardware cost of this ATD: sampled sets × ways ×
// (tag bits + valid + status), rounded up to bytes per entry group. The
// paper budgets 952 bytes per core for the interference accounting
// (ATD + ORA + counters); Cost in internal/core composes this figure.
func (d *Directory) SizeBytes() int {
	bitsPerEntry := d.cfg.TagBits + 2 // tag + valid + dirty/status bit
	totalBits := d.cfg.SampledSets() * d.cfg.Ways * bitsPerEntry
	return (totalBits + 7) / 8
}
