package stack

import (
	"bytes"
	"encoding/xml"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureBars is a hand-built pair of stacks exercising every component,
// including a net-positive LLC balance (beta) and an empty component
// (alpha's yield-dominant profile); values are in cycles.
func fixtureBars() []Bar {
	return []Bar{
		{Label: "alpha_suite", Stack: core.Stack{
			N: 8, Tp: 1000, ActualSpeedup: 5.1,
			Components: core.Components{
				NegLLC: 400, PosLLC: 150, NegMem: 800,
				Spin: 350, Yield: 600, Imbalance: 120,
			},
		}},
		{Label: "beta_suite", Stack: core.Stack{
			N: 16, Tp: 2000, ActualSpeedup: 11.7,
			Components: core.Components{
				NegLLC: 100, PosLLC: 600, NegMem: 1800,
				Yield: 2400, Imbalance: 900,
			},
		}},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/stack -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s output changed; got:\n%s\nwant:\n%s\n(re-bless with -update if intentional)", name, got, want)
	}
}

func TestEncodeGolden(t *testing.T) {
	for _, f := range []Format{FormatJSON, FormatCSV, FormatSVG, FormatText} {
		t.Run(string(f), func(t *testing.T) {
			var b bytes.Buffer
			if err := Encode(&b, f, fixtureBars()); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "report."+string(f)+".golden", b.Bytes())
		})
	}
}

func TestSVGIsWellFormedXML(t *testing.T) {
	doc := SVG(fixtureBars())
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	for _, want := range []string{"measured speedup", "base speedup", "imbalance", "alpha_suite", "beta_suite"} {
		if !strings.Contains(doc, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	doc := SVG([]Bar{{Label: `x<&>"y`, Stack: core.Stack{N: 2, Tp: 100}}})
	if strings.Contains(doc, `x<&>`) {
		t.Errorf("unescaped label in SVG")
	}
	if !strings.Contains(doc, "x&lt;&amp;&gt;&quot;y") {
		t.Errorf("escaped label missing from SVG")
	}
}

func TestRowDerivations(t *testing.T) {
	rows := Rows(fixtureBars())
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	alpha := rows[0]
	if alpha.Benchmark != "alpha_suite" || alpha.Threads != 8 || alpha.TpCycles != 1000 {
		t.Errorf("alpha identity wrong: %+v", alpha)
	}
	// NegLLC 400 vs PosLLC 150 -> net 250 cycles = 0.25 speedup units.
	if alpha.Components.NetLLC != 0.25 {
		t.Errorf("alpha net LLC = %v, want 0.25", alpha.Components.NetLLC)
	}
	// beta's positive interference exceeds the negative: net clamps to 0.
	if rows[1].Components.NetLLC != 0 {
		t.Errorf("beta net LLC = %v, want 0", rows[1].Components.NetLLC)
	}
	if d := alpha.Estimated - (alpha.Base + alpha.Components.PosLLC); math.Abs(d) > 1e-9 {
		t.Errorf("estimated %v != base %v + posLLC %v",
			alpha.Estimated, alpha.Base, alpha.Components.PosLLC)
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"text": FormatText, "TXT": FormatText, " json ": FormatJSON,
		"csv": FormatCSV, "SVG": FormatSVG,
		"ndjson": FormatNDJSON, "jsonl": FormatNDJSON,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "xml", "yaml"} {
		if _, err := ParseFormat(bad); err == nil {
			t.Errorf("ParseFormat(%q) succeeded", bad)
		}
	}
}

func TestNegotiateFormat(t *testing.T) {
	cases := []struct {
		query, accept string
		want          Format
		wantErr       bool
	}{
		{"csv", "application/json", FormatCSV, false}, // query wins
		{"", "application/json", FormatJSON, false},
		{"", "text/csv;q=0.9, application/json", FormatCSV, false}, // first recognized
		{"", "image/svg+xml", FormatSVG, false},
		{"", "text/html, */*", FormatJSON, false}, // browser default falls through
		{"", "", FormatJSON, false},
		{"bogus", "", "", true},
	}
	for _, c := range cases {
		got, err := NegotiateFormat(c.query, c.accept, FormatJSON)
		if (err != nil) != c.wantErr || (err == nil && got != c.want) {
			t.Errorf("NegotiateFormat(%q, %q) = %v, %v; want %v (err=%v)",
				c.query, c.accept, got, err, c.want, c.wantErr)
		}
	}
}

func TestContentTypes(t *testing.T) {
	for f, want := range map[Format]string{
		FormatJSON: "application/json",
		FormatCSV:  "text/csv",
		FormatSVG:  "image/svg+xml",
		FormatText: "text/plain",
	} {
		if ct := f.ContentType(); !strings.HasPrefix(ct, want) {
			t.Errorf("%s content type = %q, want prefix %q", f, ct, want)
		}
	}
}
