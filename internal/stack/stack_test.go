package stack

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func sample() core.Stack {
	return core.Stack{
		N:  16,
		Tp: 1000,
		Components: core.Components{
			NegLLC: 1500, PosLLC: 500, NegMem: 1000,
			Spin: 2000, Yield: 4000, Imbalance: 100,
		},
		ActualSpeedup: 7.2,
	}
}

func TestNamedUsesNetCache(t *testing.T) {
	n := Named(sample())
	if n[CompCache] != 1.0 { // (1500-500)/1000
		t.Fatalf("cache = %v", n[CompCache])
	}
	if n[CompMemory] != 1.0 || n[CompSpinning] != 2.0 || n[CompYielding] != 4.0 {
		t.Fatalf("components wrong: %v", n)
	}
	// Net below zero clamps to zero.
	s := sample()
	s.Components.PosLLC = 5000
	if Named(s)[CompCache] != 0 {
		t.Fatal("negative net not clamped")
	}
}

func TestTopComponentsOrderAndThreshold(t *testing.T) {
	got := TopComponents(sample(), 3)
	want := []string{CompYielding, CompSpinning, CompCache}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	// cache and memory tie at 1.0; tie-break is alphabetical (cache).
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Components below the threshold disappear.
	s := sample()
	s.Components = core.Components{Yield: 4000}
	if got := TopComponents(s, 3); len(got) != 1 || got[0] != CompYielding {
		t.Fatalf("got %v", got)
	}
	// k truncates.
	if got := TopComponents(sample(), 1); len(got) != 1 {
		t.Fatalf("k=1 returned %v", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		s    float64
		want ScalingClass
	}{
		{15.9, ClassGood}, {10.0, ClassGood}, {9.99, ClassModerate},
		{5.0, ClassModerate}, {4.99, ClassPoor}, {1.2, ClassPoor},
	}
	for _, c := range cases {
		if got := Classify(c.s); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestRenderContainsSegmentsAndLegend(t *testing.T) {
	out := Render([]Bar{{Label: "bench", Stack: sample()}}, 64)
	if !strings.Contains(out, "bench") {
		t.Fatal("label missing")
	}
	if !strings.Contains(out, "est=") || !strings.Contains(out, "act=") {
		t.Fatal("speedup annotations missing")
	}
	if !strings.Contains(out, "legend:") {
		t.Fatal("legend missing")
	}
	// Bar body must be width-bounded between the pipes.
	lines := strings.Split(out, "\n")
	bar := lines[0]
	inner := bar[strings.Index(bar, "|")+1 : strings.LastIndex(bar, "|")]
	if len(inner) != 64 {
		t.Fatalf("bar width = %d, want 64", len(inner))
	}
}

func TestRenderSegmentsSumToN(t *testing.T) {
	s := sample()
	total := 0.0
	for _, seg := range segments(s) {
		total += seg.value
	}
	// base + pos + net + mem + spin + yield + imbalance = N (up to the
	// clamping of negative values, absent here).
	if total < 15.99 || total > 16.01 {
		t.Fatalf("segments sum to %v, want 16", total)
	}
}

func TestTableHasAllColumns(t *testing.T) {
	out := Table([]Bar{{Label: "x", Stack: sample()}})
	for _, col := range []string{"est", "actual", "posLLC", "netLLC", "memory", "spin", "yield", "imbal"} {
		if !strings.Contains(out, col) {
			t.Fatalf("column %q missing in %q", col, out)
		}
	}
	if !strings.Contains(out, "7.20") {
		t.Fatal("actual speedup missing from table body")
	}
}

func TestRenderDefaultWidth(t *testing.T) {
	out := Render([]Bar{{Label: "b", Stack: sample()}}, 0)
	if out == "" {
		t.Fatal("empty render")
	}
}
