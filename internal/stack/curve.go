package stack

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Curve charts: the line-chart half of the design system, used by the
// scaling advisor to overlay fitted Amdahl/USL curves on a measured thread
// sweep. The chart shares the bar chart's tokens (surface, ink, grid,
// categorical series colors) so every SVG the repo emits looks like one
// family: measured data wears solid lines with point markers, fitted models
// wear dashed lines, and vertical annotation lines (e.g. the USL optimum N*)
// are recessive hairlines with muted labels.

// CurvePoint is one (x, y) sample of a curve series.
type CurvePoint struct {
	X, Y float64
}

// CurveSeries is one named line on a curve chart.
type CurveSeries struct {
	// Name labels the series in the legend.
	Name string
	// Points are the polyline vertices, ascending by X.
	Points []CurvePoint
	// Dashed draws the line dashed (fitted models); Marker adds circular
	// point markers (measured data).
	Dashed bool
	Marker bool
}

// CurveVLine is a labeled vertical annotation line.
type CurveVLine struct {
	X     float64
	Label string
}

// CurveChart is a standalone line chart in the repo's SVG design system.
type CurveChart struct {
	Title  string
	XLabel string
	YLabel string
	Series []CurveSeries
	// Ideal draws the y = x reference (ideal scaling) as a recessive line.
	Ideal bool
	// VLines are vertical annotations (drawn behind the series).
	VLines []CurveVLine
}

// CurveSVG renders the chart as a standalone SVG document.
func CurveSVG(c CurveChart) string {
	var b strings.Builder
	writeCurveSVG(&b, c)
	return b.String()
}

// EncodeCurveSVG writes the chart's SVG document to w.
func EncodeCurveSVG(w io.Writer, c CurveChart) error {
	var b strings.Builder
	writeCurveSVG(&b, c)
	_, err := io.WriteString(w, b.String())
	return err
}

func writeCurveSVG(b *strings.Builder, c CurveChart) {
	const (
		marginL = 46.0
		marginT = 48.0
		marginB = 40.0
		plotW   = 420.0
		plotH   = 280.0
		legendW = 190.0
	)
	width := marginL + plotW + legendW
	height := marginT + plotH + marginB

	// Scales: 0..max on both axes, from the data (plus annotations and the
	// ideal line, which runs to the x extent).
	xMax, yMax := 1.0, 1.0
	for _, s := range c.Series {
		for _, p := range s.Points {
			xMax = math.Max(xMax, p.X)
			yMax = math.Max(yMax, p.Y)
		}
	}
	for _, v := range c.VLines {
		xMax = math.Max(xMax, v.X)
	}
	if c.Ideal {
		yMax = math.Max(yMax, xMax)
	}
	yMax = math.Ceil(yMax)
	x := func(v float64) float64 { return marginL + v/xMax*plotW }
	y := func(v float64) float64 { return marginT + plotH - v/yMax*plotH }
	xTick := tickStep(xMax)
	yTick := tickStep(yMax)

	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" role="img" aria-label="%s">`+"\n",
		width, height, width, height, xmlEscape(c.Title))
	fmt.Fprintf(b, `<rect width="%.0f" height="%.0f" fill="%s"/>`+"\n", width, height, svgSurface)
	fmt.Fprintf(b, `<text x="%.1f" y="24" font-family='%s' font-size="14" font-weight="600" fill="%s">%s</text>`+"\n",
		marginL, svgFont, svgInk, xmlEscape(c.Title))
	if c.YLabel != "" {
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s">%s</text>`+"\n",
			marginL, marginT-8, svgFont, svgMuted, xmlEscape(c.YLabel))
	}

	// Grid and ticks (hairline, recessive; baseline darker).
	for v := 0.0; v <= yMax+1e-9; v += yTick {
		yy := y(v)
		color := svgGrid
		if v == 0 {
			color = svgBaseline
		}
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			marginL, yy, marginL+plotW, yy, color)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			marginL-6, yy+4, svgFont, svgMuted, tickLabel(v))
	}
	for v := 0.0; v <= xMax+1e-9; v += xTick {
		xx := x(v)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
			xx, marginT+plotH+16, svgFont, svgMuted, tickLabel(v))
	}
	if c.XLabel != "" {
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			marginL+plotW, marginT+plotH+32, svgFont, svgMuted, xmlEscape(c.XLabel))
	}

	// Annotations behind the data: ideal-scaling reference and vertical lines.
	if c.Ideal {
		top := math.Min(xMax, yMax)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="2 3"/>`+"\n",
			x(0), y(0), x(top), y(top), svgBaseline)
	}
	for _, v := range c.VLines {
		xx := x(v.X)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="4 3"/>`+"\n",
			xx, marginT, xx, marginT+plotH, svgBaseline)
		if v.Label != "" {
			fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
				xx, marginT-8, svgFont, svgMuted, xmlEscape(v.Label))
		}
	}

	// Series: fixed categorical slot per index, solid for data, dashed for
	// fits, circular markers where requested.
	for si, s := range c.Series {
		color := svgSeries[si%len(svgSeries)]
		if len(s.Points) > 1 {
			var path strings.Builder
			for i, p := range s.Points {
				cmd := 'L'
				if i == 0 {
					cmd = 'M'
				}
				fmt.Fprintf(&path, "%c%.1f %.1f", cmd, x(p.X), y(p.Y))
			}
			dash := ""
			if s.Dashed {
				dash = ` stroke-dasharray="5 4"`
			}
			fmt.Fprintf(b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"%s/>`+"\n",
				path.String(), color, dash)
		}
		if s.Marker {
			for _, p := range s.Points {
				fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s" stroke="%s" stroke-width="1">`,
					x(p.X), y(p.Y), color, svgSurface)
				fmt.Fprintf(b, `<title>%s: (%.4g, %.4g)</title></circle>`+"\n", xmlEscape(s.Name), p.X, p.Y)
			}
		}
	}

	// Legend: swatch lines mirroring each series' style.
	lx := marginL + plotW + 24
	for si, s := range c.Series {
		yy := marginT + 4 + float64(si)*20
		color := svgSeries[si%len(svgSeries)]
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="5 4"`
		}
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"%s/>`+"\n",
			lx, yy+6, lx+16, yy+6, color, dash)
		if s.Marker {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s" stroke="%s" stroke-width="1"/>`+"\n",
				lx+8, yy+6, color, svgSurface)
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s">%s</text>`+"\n",
			lx+22, yy+10, svgFont, svgInk2, xmlEscape(s.Name))
	}

	b.WriteString("</svg>\n")
}

// tickStep picks a 1/2/5-scaled tick interval giving at most ~8 ticks.
func tickStep(max float64) float64 {
	step := 1.0
	for max/step > 8 {
		switch {
		case max/(step*2) <= 8:
			step *= 2
		case max/(step*5) <= 8:
			step *= 5
		default:
			step *= 10
		}
	}
	return step
}

// tickLabel formats a tick value without trailing zeros.
func tickLabel(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%g", v)
}
