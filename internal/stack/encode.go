package stack

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Format selects a report encoding. The same set of formats is understood by
// the library encoders (Encode), the speedup-stack CLI (-format) and the
// speedupd HTTP service (?format= / Accept negotiation).
type Format string

// The supported report formats.
const (
	// FormatText is the human-oriented ASCII rendering: stacked bars plus
	// the numeric component table.
	FormatText Format = "text"
	// FormatJSON is an indented JSON array of ReportRow objects.
	FormatJSON Format = "json"
	// FormatCSV is one header row plus one record per stack, every
	// component in speedup units.
	FormatCSV Format = "csv"
	// FormatSVG is a standalone SVG document drawing the stacks as
	// vertical stacked bars with a legend and measured-speedup markers.
	FormatSVG Format = "svg"
	// FormatNDJSON is newline-delimited JSON: one compact ReportRow object
	// per line, flushed as results complete — the streaming form of
	// FormatJSON for large batches.
	FormatNDJSON Format = "ndjson"
)

// Formats lists the supported report formats in presentation order.
func Formats() []Format {
	return []Format{FormatText, FormatJSON, FormatNDJSON, FormatCSV, FormatSVG}
}

// ParseFormat resolves a format name ("text", "json", "csv", "svg"; "txt" is
// accepted as an alias) case-insensitively.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "text", "txt":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	case "ndjson", "jsonl":
		return FormatNDJSON, nil
	case "csv":
		return FormatCSV, nil
	case "svg":
		return FormatSVG, nil
	}
	return "", fmt.Errorf("stack: unknown format %q (want one of %v)", s, Formats())
}

// ContentType returns the MIME type a report in this format should be
// served with.
func (f Format) ContentType() string {
	switch f {
	case FormatJSON:
		return "application/json; charset=utf-8"
	case FormatNDJSON:
		return "application/x-ndjson; charset=utf-8"
	case FormatCSV:
		return "text/csv; charset=utf-8"
	case FormatSVG:
		return "image/svg+xml"
	default:
		return "text/plain; charset=utf-8"
	}
}

// acceptFormats maps media types of an HTTP Accept header onto formats.
var acceptFormats = map[string]Format{
	"application/json":     FormatJSON,
	"text/json":            FormatJSON,
	"application/x-ndjson": FormatNDJSON,
	"application/jsonl":    FormatNDJSON,
	"text/csv":             FormatCSV,
	"image/svg+xml":        FormatSVG,
	"text/plain":           FormatText,
}

// NegotiateFormat picks the report format for an HTTP request: an explicit
// query value (?format=csv) wins, then the first recognized media type of
// the Accept header, then def. An unknown query value is an error (the
// caller should answer 400); unrecognized Accept entries are skipped, so a
// browser's default Accept header falls through to def.
func NegotiateFormat(query, accept string, def Format) (Format, error) {
	if query != "" {
		return ParseFormat(query)
	}
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if f, ok := acceptFormats[strings.ToLower(mt)]; ok {
			return f, nil
		}
	}
	return def, nil
}

// ReportComponents are one stack's components in speedup units, named after
// the paper's Figure 5 vocabulary. All values are rounded to 4 decimals.
type ReportComponents struct {
	// PosLLC is positive LLC interference (it raises the speedup).
	PosLLC float64 `json:"pos_llc"`
	// NegLLC is gross negative LLC interference; NetLLC is max(0, neg-pos),
	// the white component of Figure 5.
	NegLLC    float64 `json:"neg_llc"`
	NetLLC    float64 `json:"net_llc"`
	Memory    float64 `json:"memory"`
	Spinning  float64 `json:"spinning"`
	Yielding  float64 `json:"yielding"`
	Imbalance float64 `json:"imbalance"`
}

// ReportRow is the machine-readable form of one speedup stack.
type ReportRow struct {
	Benchmark string `json:"benchmark"`
	Threads   int    `json:"threads"`
	// TpCycles is the multi-threaded execution time in cycles.
	TpCycles uint64 `json:"tp_cycles"`
	// Estimated is Ŝ from the accounting hardware; Actual is the measured
	// Ts/Tp (0 when no sequential reference was run); Base is Formula (5).
	Estimated float64 `json:"estimated_speedup"`
	Actual    float64 `json:"actual_speedup"`
	Base      float64 `json:"base_speedup"`
	// Components are the scaling delimiters in speedup units.
	Components ReportComponents `json:"components"`
}

// round4 keeps report floats stable and readable (4 decimals, matching the
// CSV emitters).
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// Row converts one bar into its report form.
func Row(b Bar) ReportRow {
	s := b.Stack
	tp := float64(s.Tp)
	net := s.Components.Net()
	if net < 0 {
		net = 0
	}
	base := s.Base()
	if base < 0 {
		base = 0
	}
	return ReportRow{
		Benchmark: b.Label,
		Threads:   s.N,
		TpCycles:  s.Tp,
		Estimated: round4(s.Estimated()),
		Actual:    round4(s.ActualSpeedup),
		Base:      round4(base),
		Components: ReportComponents{
			PosLLC:    round4(s.Components.PosLLC / tp),
			NegLLC:    round4(s.Components.NegLLC / tp),
			NetLLC:    round4(net / tp),
			Memory:    round4(s.Components.NegMem / tp),
			Spinning:  round4(s.Components.Spin / tp),
			Yielding:  round4(s.Components.Yield / tp),
			Imbalance: round4(s.Components.Imbalance / tp),
		},
	}
}

// Rows converts a set of bars into report rows, preserving order.
func Rows(bars []Bar) []ReportRow {
	rows := make([]ReportRow, len(bars))
	for i, b := range bars {
		rows[i] = Row(b)
	}
	return rows
}

// EncodeJSON writes the bars as an indented JSON array of ReportRow
// objects, one per stack, terminated by a newline.
func EncodeJSON(w io.Writer, bars []Bar) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Rows(bars))
}

// EncodeNDJSON writes the bars as newline-delimited JSON: one compact
// ReportRow per line. A line is exactly json.Marshal(Row(bar)) plus a
// newline, which is the contract the fleet layer's byte-level sweep
// merging relies on.
func EncodeNDJSON(w io.Writer, bars []Bar) error {
	for _, b := range bars {
		if err := EncodeRowNDJSON(w, Row(b)); err != nil {
			return err
		}
	}
	return nil
}

// EncodeRowNDJSON writes one report row as a single compact JSON line.
func EncodeRowNDJSON(w io.Writer, row ReportRow) error {
	data, err := json.Marshal(row)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// EncodeCSV writes one header row plus one record per stack with every
// component in speedup units. The column layout is shared with the
// experiment harness's figure CSV emitters.
func EncodeCSV(w io.Writer, bars []Bar) error {
	cw := csv.NewWriter(w)
	header := []string{"label", "threads", "estimated", "actual",
		"base", "posLLC", "negLLC", "netLLC", "memory", "spin", "yield", "imbalance"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, b := range bars {
		s := b.Stack
		tp := float64(s.Tp)
		rec := []string{
			b.Label, strconv.Itoa(s.N), csvF(s.Estimated()), csvF(s.ActualSpeedup),
			csvF(s.Base()), csvF(s.Components.PosLLC / tp), csvF(s.Components.NegLLC / tp),
			csvF(s.Components.Net() / tp), csvF(s.Components.NegMem / tp),
			csvF(s.Components.Spin / tp), csvF(s.Components.Yield / tp),
			csvF(s.Components.Imbalance / tp),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func csvF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// Encode writes the bars to w in the requested format. Text combines the
// ASCII rendering with the numeric table; the other formats are the
// machine-readable encoders above.
func Encode(w io.Writer, f Format, bars []Bar) error {
	switch f {
	case FormatText, "":
		if _, err := io.WriteString(w, Render(bars, 64)); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		_, err := io.WriteString(w, Table(bars))
		return err
	case FormatJSON:
		return EncodeJSON(w, bars)
	case FormatNDJSON:
		return EncodeNDJSON(w, bars)
	case FormatCSV:
		return EncodeCSV(w, bars)
	case FormatSVG:
		return EncodeSVG(w, bars)
	}
	return fmt.Errorf("stack: unknown format %q", f)
}
