package stack

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// TimeSeries is the time-resolved form of one speedup stack: the whole-run
// aggregate decomposition plus a sequence of intervals (equal slices of the
// run's committed trace operations) each carrying its own integer-cycle
// component breakdown.
//
// The invariant the type is built around: the componentwise sum of
// Intervals[i].Components over all intervals equals Aggregate exactly, in
// int64 arithmetic. NewTimeSeries guarantees it by construction — every
// interval is the difference of consecutive cumulative estimates
// (core.CumulativeComponents), so the sum telescopes. Individual interval
// components can be transiently negative (see core.IntComponents); the
// renderers clamp negatives visually while the data keeps exact values.
type TimeSeries struct {
	// Label names the measured workload (benchmark FullName).
	Label string
	// N is the thread count of the run.
	N int
	// Tp is the multi-threaded execution time in cycles.
	Tp uint64
	// TotalOps is the run's committed trace operations; the last interval
	// ends there.
	TotalOps uint64
	// EveryOps is the snapshot period the run was measured with.
	EveryOps uint64
	// Aggregate is the whole-run integer-cycle decomposition — exactly the
	// sum of the interval components.
	Aggregate core.IntComponents
	// Stack is the whole-run aggregate speedup stack (the float estimator,
	// with the measured actual speedup attached when known). It is the same
	// decomposition as Aggregate up to integer rounding; the exactness
	// guarantee is stated on Aggregate.
	Stack core.Stack
	// Intervals are the per-interval breakdowns, in run order.
	Intervals []Interval
}

// Interval is one time slice of a TimeSeries: the half-open op range
// (StartOps, EndOps], the wall-cycle span the run covered while committing
// those ops, and the integer-cycle components attributed to the slice.
type Interval struct {
	// Index is the interval's position, starting at 0.
	Index int
	// StartOps and EndOps bound the slice in cumulative committed ops.
	StartOps, EndOps uint64
	// StartCycle and EndCycle bound the slice in cycles (the furthest
	// thread-local time at each boundary; the last EndCycle is Tp).
	StartCycle, EndCycle uint64
	// Components is the slice's integer-cycle decomposition.
	Components core.IntComponents
}

// Capacity returns the interval's total thread-cycle capacity,
// N × (EndCycle − StartCycle) — the denominator that turns component
// cycles into the fraction of compute capacity lost in the slice.
func (iv Interval) Capacity(n int) int64 {
	return int64(n) * int64(iv.EndCycle-iv.StartCycle)
}

// NewTimeSeries assembles the time-resolved stack of one run. agg is the
// run's aggregate stack, final the end-of-run per-thread counters (they
// freeze the extrapolation factors), snaps the cumulative snapshots the
// simulator took (sim.WithIntervals), and everyOps the snapshot period.
func NewTimeSeries(label string, agg core.Stack, final []core.ThreadCounters,
	snaps []core.IntervalSnapshot, everyOps uint64) (TimeSeries, error) {
	if len(snaps) == 0 {
		return TimeSeries{}, fmt.Errorf("stack: no interval snapshots (was the run executed with WithIntervals?)")
	}
	ts := TimeSeries{
		Label:     label,
		N:         agg.N,
		Tp:        agg.Tp,
		TotalOps:  snaps[len(snaps)-1].Ops,
		EveryOps:  everyOps,
		Stack:     agg,
		Intervals: make([]Interval, len(snaps)),
	}
	var prev core.IntComponents
	var prevOps, prevCycle uint64
	for k, snap := range snaps {
		if len(snap.Threads) != len(final) {
			return TimeSeries{}, fmt.Errorf("stack: snapshot %d has %d threads, final counters %d",
				k, len(snap.Threads), len(final))
		}
		if snap.Ops < prevOps {
			return TimeSeries{}, fmt.Errorf("stack: snapshot ops went backwards (%d after %d)", snap.Ops, prevOps)
		}
		cum := core.CumulativeComponents(snap.Threads, final, snap.Finished, snap.Time)
		ts.Intervals[k] = Interval{
			Index:      k,
			StartOps:   prevOps,
			EndOps:     snap.Ops,
			StartCycle: prevCycle,
			EndCycle:   snap.Time,
			Components: cum.Sub(prev),
		}
		prev, prevOps, prevCycle = cum, snap.Ops, snap.Time
	}
	ts.Aggregate = prev
	return ts, nil
}

// TimeSeriesReport is the machine-readable form of a TimeSeries: run
// metadata, the aggregate stack row, the exact integer-cycle aggregate, and
// one row per interval.
type TimeSeriesReport struct {
	// Benchmark and Threads identify the measured run.
	Benchmark string `json:"benchmark"`
	Threads   int    `json:"threads"`
	// TpCycles is the run's execution time; TotalOps its committed trace
	// operations; IntervalOps the snapshot period.
	TpCycles    uint64 `json:"tp_cycles"`
	TotalOps    uint64 `json:"total_ops"`
	IntervalOps uint64 `json:"interval_ops"`
	// Aggregate is the whole-run stack in speedup units (the same row
	// GET /v1/stack serves); AggregateCycles the exact integer form the
	// interval rows sum to.
	Aggregate       ReportRow          `json:"aggregate"`
	AggregateCycles core.IntComponents `json:"aggregate_cycles"`
	// Intervals are the per-interval rows, in run order.
	Intervals []IntervalRow `json:"intervals"`
}

// IntervalRow is one interval of a TimeSeriesReport. Cycles carries the
// exact integer components; summing any field across all rows reproduces
// the matching AggregateCycles field exactly.
type IntervalRow struct {
	Index      int                `json:"index"`
	StartOps   uint64             `json:"start_ops"`
	EndOps     uint64             `json:"end_ops"`
	StartCycle uint64             `json:"start_cycle"`
	EndCycle   uint64             `json:"end_cycle"`
	Cycles     core.IntComponents `json:"cycles"`
}

// Report converts the series into its machine-readable form.
func Report(ts TimeSeries) TimeSeriesReport {
	rows := make([]IntervalRow, len(ts.Intervals))
	for i, iv := range ts.Intervals {
		rows[i] = IntervalRow{
			Index:      iv.Index,
			StartOps:   iv.StartOps,
			EndOps:     iv.EndOps,
			StartCycle: iv.StartCycle,
			EndCycle:   iv.EndCycle,
			Cycles:     iv.Components,
		}
	}
	return TimeSeriesReport{
		Benchmark:       ts.Label,
		Threads:         ts.N,
		TpCycles:        ts.Tp,
		TotalOps:        ts.TotalOps,
		IntervalOps:     ts.EveryOps,
		Aggregate:       Row(Bar{Label: ts.Label, Stack: ts.Stack}),
		AggregateCycles: ts.Aggregate,
		Intervals:       rows,
	}
}

// EncodeTimeSeriesJSON writes the series as one indented JSON
// TimeSeriesReport object terminated by a newline.
func EncodeTimeSeriesJSON(w io.Writer, ts TimeSeries) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report(ts))
}

// EncodeTimeSeriesCSV writes one header row, one record per interval with
// the exact integer-cycle components, and a final "total" record carrying
// the aggregate (to which the interval records sum exactly).
func EncodeTimeSeriesCSV(w io.Writer, ts TimeSeries) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "threads", "interval", "start_ops", "end_ops",
		"start_cycle", "end_cycle", "neg_llc_cycles", "pos_llc_cycles",
		"memory_cycles", "spinning_cycles", "yielding_cycles", "imbalance_cycles"}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := func(slot string, startOps, endOps, startCycle, endCycle uint64, c core.IntComponents) []string {
		return []string{
			ts.Label, strconv.Itoa(ts.N), slot,
			strconv.FormatUint(startOps, 10), strconv.FormatUint(endOps, 10),
			strconv.FormatUint(startCycle, 10), strconv.FormatUint(endCycle, 10),
			strconv.FormatInt(c.NegLLC, 10), strconv.FormatInt(c.PosLLC, 10),
			strconv.FormatInt(c.NegMem, 10), strconv.FormatInt(c.Spin, 10),
			strconv.FormatInt(c.Yield, 10), strconv.FormatInt(c.Imbalance, 10),
		}
	}
	for _, iv := range ts.Intervals {
		if err := cw.Write(rec(strconv.Itoa(iv.Index), iv.StartOps, iv.EndOps,
			iv.StartCycle, iv.EndCycle, iv.Components)); err != nil {
			return err
		}
	}
	if err := cw.Write(rec("total", 0, ts.TotalOps, 0, ts.Tp, ts.Aggregate)); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// TimeSeriesTable renders the series as a fixed-width text table: one row
// per interval showing the op range, the wall-cycle span, and each
// component as a percentage of the interval's thread-cycle capacity
// (N × wall cycles), followed by the aggregate row.
func TimeSeriesTable(ts TimeSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s N=%d  Tp=%d cycles  %d ops in %d intervals (every %d ops)\n",
		ts.Label, ts.N, ts.Tp, ts.TotalOps, len(ts.Intervals), ts.EveryOps)
	fmt.Fprintf(&b, "%9s %22s %22s %7s %7s %7s %7s %7s %7s\n",
		"interval", "ops", "cycles", "netLLC%", "posLLC%", "mem%", "spin%", "yield%", "imbal%")
	pct := func(v int64, cap int64) string {
		if cap <= 0 {
			return "-"
		}
		return strconv.FormatFloat(100*float64(v)/float64(cap), 'f', 2, 64)
	}
	row := func(slot string, startOps, endOps, startCycle, endCycle uint64, c core.IntComponents, cap int64) {
		net := c.NegLLC - c.PosLLC
		if net < 0 {
			net = 0
		}
		fmt.Fprintf(&b, "%9s %10d-%-11d %10d-%-11d %7s %7s %7s %7s %7s %7s\n",
			slot, startOps, endOps, startCycle, endCycle,
			pct(net, cap), pct(c.PosLLC, cap), pct(c.NegMem, cap),
			pct(c.Spin, cap), pct(c.Yield, cap), pct(c.Imbalance, cap))
	}
	for _, iv := range ts.Intervals {
		row(strconv.Itoa(iv.Index), iv.StartOps, iv.EndOps, iv.StartCycle, iv.EndCycle,
			iv.Components, iv.Capacity(ts.N))
	}
	row("total", 0, ts.TotalOps, 0, ts.Tp, ts.Aggregate, int64(ts.N)*int64(ts.Tp))
	return b.String()
}

// EncodeTimeSeries writes the series to w in the requested format: text is
// the fixed-width interval table, json one TimeSeriesReport object, csv one
// record per interval plus a total record, and svg the stacked-timeline
// chart.
func EncodeTimeSeries(w io.Writer, f Format, ts TimeSeries) error {
	switch f {
	case FormatText, "":
		_, err := io.WriteString(w, TimeSeriesTable(ts))
		return err
	case FormatJSON:
		return EncodeTimeSeriesJSON(w, ts)
	case FormatNDJSON:
		// The one-object report as a single compact line, for uniformity
		// with the streaming sweep format.
		return json.NewEncoder(w).Encode(Report(ts))
	case FormatCSV:
		return EncodeTimeSeriesCSV(w, ts)
	case FormatSVG:
		return EncodeTimeSeriesSVG(w, ts)
	}
	return fmt.Errorf("stack: unknown format %q", f)
}
