package stack_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// seriesFor measures one registry benchmark with interval accounting and
// builds its time series.
func seriesFor(t *testing.T, bench string, threads int, every uint64) stack.TimeSeries {
	t.Helper()
	b, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("%s not registered", bench)
	}
	cfg := sim.Default().WithCores(threads)
	cfg.Policy = b.Spec.TunePolicy(cfg.Policy)
	progs, err := b.Spec.Parallel(threads)
	if err != nil {
		t.Fatal(err)
	}
	opts := append(b.Spec.PipelineOptions(threads), sim.WithIntervals(every))
	res, err := sim.Run(cfg, progs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := stack.NewTimeSeries(b.FullName(), res.Stack(0), res.PerThread,
		res.Intervals, res.IntervalEvery)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestTimeSeriesExactSum pins the construction invariant on a real run: the
// componentwise int64 sum of the intervals equals the aggregate exactly,
// and the interval boundaries partition the run.
func TestTimeSeriesExactSum(t *testing.T) {
	ts := seriesFor(t, "fluidanimate_parsec_medium", 4, 9000)
	if len(ts.Intervals) < 4 {
		t.Fatalf("want several intervals, got %d", len(ts.Intervals))
	}
	var sum core.IntComponents
	var prevOps, prevCycle uint64
	for _, iv := range ts.Intervals {
		sum = sum.Add(iv.Components)
		if iv.StartOps != prevOps || iv.StartCycle != prevCycle {
			t.Fatalf("interval %d does not continue its predecessor", iv.Index)
		}
		prevOps, prevCycle = iv.EndOps, iv.EndCycle
	}
	if sum != ts.Aggregate {
		t.Fatalf("interval sum != aggregate:\nsum  %+v\naggr %+v", sum, ts.Aggregate)
	}
	if prevOps != ts.TotalOps || prevCycle != ts.Tp {
		t.Fatalf("intervals do not cover the run: end (%d ops, %d cycles), run (%d, %d)",
			prevOps, prevCycle, ts.TotalOps, ts.Tp)
	}
}

// TestTimeSeriesEncoders smoke-checks every format: JSON round-trips with
// the exact-sum invariant intact, CSV has one record per interval plus the
// total, text includes the total row, and SVG is a standalone document with
// the legend.
func TestTimeSeriesEncoders(t *testing.T) {
	ts := seriesFor(t, "swaptions_parsec_small", 2, 20000)

	var buf bytes.Buffer
	if err := stack.EncodeTimeSeries(&buf, stack.FormatJSON, ts); err != nil {
		t.Fatal(err)
	}
	var rep stack.TimeSeriesReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if rep.Benchmark != ts.Label || len(rep.Intervals) != len(ts.Intervals) {
		t.Fatalf("report lost shape: %q with %d intervals", rep.Benchmark, len(rep.Intervals))
	}
	var sum core.IntComponents
	for _, iv := range rep.Intervals {
		sum = sum.Add(iv.Cycles)
	}
	if sum != rep.AggregateCycles {
		t.Fatalf("decoded interval sum != aggregate_cycles")
	}

	buf.Reset()
	if err := stack.EncodeTimeSeries(&buf, stack.FormatCSV, ts); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ts.Intervals)+2 {
		t.Fatalf("CSV: want header + %d intervals + total, got %d records", len(ts.Intervals), len(recs))
	}
	if got := recs[len(recs)-1][2]; got != "total" {
		t.Fatalf("CSV: last record slot %q, want total", got)
	}

	buf.Reset()
	if err := stack.EncodeTimeSeries(&buf, stack.FormatText, ts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "total") || !strings.Contains(buf.String(), ts.Label) {
		t.Fatal("text table missing label or total row")
	}

	svg := stack.TimelineSVG(ts)
	if !strings.HasPrefix(svg, "<svg xmlns=") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("timeline SVG is not a standalone document")
	}
	for _, want := range []string{"Speedup-stack timeline", "yielding", "committed ops", ts.Label} {
		if !strings.Contains(svg, want) {
			t.Fatalf("timeline SVG missing %q", want)
		}
	}
}

// TestNewTimeSeriesRejectsBadInput covers the constructor's validation.
func TestNewTimeSeriesRejectsBadInput(t *testing.T) {
	agg := core.Stack{N: 1, Tp: 100}
	fin := []core.ThreadCounters{{FinishTime: 100}}
	if _, err := stack.NewTimeSeries("x", agg, fin, nil, 10); err == nil {
		t.Fatal("no error for empty snapshot set")
	}
	bad := []core.IntervalSnapshot{{Ops: 5, Time: 50, Threads: make([]core.ThreadCounters, 2), Finished: make([]bool, 2)}}
	if _, err := stack.NewTimeSeries("x", agg, fin, bad, 10); err == nil {
		t.Fatal("no error for thread-count mismatch")
	}
}
