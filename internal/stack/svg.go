package stack

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// SVG rendering of speedup stacks: one vertical stacked bar per measured
// run, components in the Figure 5 drawing order from the baseline up, a
// measured-speedup marker across each bar, gridlines at whole speedup
// units, and a legend. The output is a standalone SVG document (no external
// fonts or scripts); per-segment <title> elements give native tooltips.
//
// Styling follows a small fixed design system: categorical series colors
// are assigned to components in a fixed order (never cycled), marks are
// thin (24px bars) with 2px surface-colored gaps between stacked segments,
// grid and axes are recessive hairlines, and all text uses ink/gray text
// tokens rather than series colors.

const (
	svgSurface  = "#fcfcfb" // chart surface
	svgInk      = "#0b0b0b" // primary text, measured marker
	svgInk2     = "#52514e" // secondary text (bar labels, legend)
	svgMuted    = "#898781" // axis tick labels
	svgGrid     = "#e1e0d9" // hairline gridlines
	svgBaseline = "#c3c2b7" // axis baseline
	svgFont     = `system-ui, -apple-system, "Segoe UI", sans-serif`
)

// svgSeries is the fixed categorical assignment: component i always wears
// slot i, independent of which components a particular stack exhibits.
var svgSeries = []string{
	"#2a78d6", // base speedup
	"#eb6834", // positive LLC interference
	"#1baf7a", // net negative LLC interference
	"#eda100", // negative memory interference
	"#e87ba4", // spinning
	"#008300", // yielding
	"#4a3aa7", // imbalance
}

// SVG renders the bars as a standalone SVG document.
func SVG(bars []Bar) string {
	var b strings.Builder
	writeSVG(&b, bars)
	return b.String()
}

// EncodeSVG writes the SVG document for the bars to w.
func EncodeSVG(w io.Writer, bars []Bar) error {
	var b strings.Builder
	writeSVG(&b, bars)
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSVG(b *strings.Builder, bars []Bar) {
	const (
		marginL = 46.0  // room for y tick labels
		marginT = 48.0  // title
		plotH   = 280.0 // plot area height
		barW    = 24.0  // bar thickness (capped per mark spec)
		step    = 46.0  // x distance between bar centers
		labelH  = 118.0 // rotated benchmark labels under the baseline
		legendW = 210.0
	)
	n := len(bars)
	if n == 0 {
		n = 1
	}
	plotW := float64(n)*step + 18
	width := marginL + plotW + legendW
	height := marginT + plotH + labelH

	// y scale: 0..yMax speedup units, yMax = the tallest stack's N.
	yMax := 1
	for _, bar := range bars {
		if bar.Stack.N > yMax {
			yMax = bar.Stack.N
		}
	}
	tick := 1
	for yMax/tick > 8 {
		tick *= 2
	}
	y := func(v float64) float64 { return marginT + plotH - v/float64(yMax)*plotH }

	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" role="img" aria-label="Speedup stacks">`+"\n",
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%.0f" height="%.0f" fill="%s"/>`+"\n", width, height, svgSurface)
	fmt.Fprintf(b, `<text x="%.1f" y="24" font-family='%s' font-size="14" font-weight="600" fill="%s">Speedup stacks</text>`+"\n",
		marginL, svgFont, svgInk)
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s">speedup</text>`+"\n",
		marginL, marginT-8, svgFont, svgMuted)

	// Gridlines and y tick labels (hairline, recessive; baseline darker).
	for v := 0; v <= yMax; v += tick {
		yy := y(float64(v))
		color, sw := svgGrid, 1.0
		if v == 0 {
			color = svgBaseline
		}
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.0f"/>`+"\n",
			marginL, yy, marginL+plotW, yy, color, sw)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s" text-anchor="end">%d</text>`+"\n",
			marginL-6, yy+4, svgFont, svgMuted, v)
	}

	// Bars: stacked segments bottom-up with a 2px surface gap between
	// touching segments (1px shaved off each side of an interior boundary);
	// the topmost drawn segment gets the 4px-radius rounded data-end.
	for i, bar := range bars {
		x := marginL + 14 + float64(i)*step
		segs := segments(bar.Stack)
		// Pixel boundaries of the cumulative stack.
		type drawn struct {
			si       int
			y0, y1   float64 // top, bottom (y0 < y1)
			interior bool    // has a drawn segment above it
		}
		var ds []drawn
		cum := 0.0
		for si, seg := range segs {
			if seg.value <= 0 {
				continue
			}
			lo, hi := y(cum+seg.value), y(cum)
			cum += seg.value
			if hi-lo < 1.2 { // too thin to draw; value still advances the stack
				continue
			}
			ds = append(ds, drawn{si: si, y0: lo, y1: hi})
		}
		for di := range ds {
			if di+1 < len(ds) {
				ds[di].interior = true
			}
		}
		for di, d := range ds {
			top, bot := d.y0, d.y1
			if di > 0 {
				bot -= 1 // gap below: this segment's bottom edge
			}
			if d.interior {
				top += 1 // gap above
			}
			seg := segs[d.si]
			fmt.Fprintf(b, `<path d="%s" fill="%s">`, barPath(x, top, barW, bot-top, !d.interior), svgSeries[d.si])
			fmt.Fprintf(b, `<title>%s: %s %.2f</title></path>`+"\n", xmlEscape(bar.Label), seg.name, seg.value)
		}
		// Measured speedup marker: an ink tick across the bar.
		if s := bar.Stack.ActualSpeedup; s > 0 {
			yy := y(s)
			fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2">`,
				x-4, yy, x+barW+4, yy, svgInk)
			fmt.Fprintf(b, `<title>%s: measured speedup %.2f</title></line>`+"\n", xmlEscape(bar.Label), s)
		}
		// Benchmark label, rotated so long name_suite identifiers fit.
		lx, ly := x+barW/2, marginT+plotH+14
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s" text-anchor="end" transform="rotate(-40 %.1f %.1f)">%s</text>`+"\n",
			lx, ly, svgFont, svgInk2, lx, ly, xmlEscape(bar.Label))
	}

	// Legend: one swatch per component (fixed order) plus the marker key.
	lx := marginL + plotW + 24
	ly := marginT + 4
	for si, seg := range segments(core.Stack{N: 1, Tp: 1}) {
		yy := ly + float64(si)*20
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="12" height="12" rx="2" fill="%s"/>`+"\n", lx, yy, svgSeries[si])
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s">%s</text>`+"\n",
			lx+18, yy+10, svgFont, svgInk2, seg.name)
	}
	yy := ly + float64(len(svgSeries))*20
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
		lx, yy+6, lx+12, yy+6, svgInk)
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s">measured speedup</text>`+"\n",
		lx+18, yy+10, svgFont, svgInk2)

	b.WriteString("</svg>\n")
}

// barPath returns a rect path for one segment; the topmost segment of a
// stack gets 4px rounded top corners (square at every interior boundary and
// at the baseline).
func barPath(x, y, w, h float64, roundTop bool) string {
	r := 4.0
	if !roundTop || h < r {
		return fmt.Sprintf("M%.1f %.1fh%.1fv%.1fh-%.1fz", x, y, w, h, w)
	}
	return fmt.Sprintf("M%.1f %.1fv%.1fh%.1fv-%.1fa%.0f %.0f 0 0 0 -%.0f -%.0fh-%.1fa%.0f %.0f 0 0 0 -%.0f %.0fz",
		x, y+r, h-r, w, h-r, r, r, r, r, w-2*r, r, r, r, r)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
