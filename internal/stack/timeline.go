package stack

import (
	"fmt"
	"io"
	"strings"
)

// SVG rendering of a time-resolved speedup stack: the run's committed ops
// on the x axis, and for each interval a stacked column whose bands show
// the fraction of the interval's thread-cycle capacity (N × wall cycles)
// lost to each scaling delimiter. Columns are as wide as the op range they
// cover, so the chart reads as a stacked timeline: phase changes show up as
// the bottleneck mix shifting along x. Colors, fonts and grid styling are
// shared with the aggregate bar chart (svg.go); transiently negative
// interval components are clamped to zero visually (the exact values live
// in the JSON/CSV encodings).

// timelineSeries maps the timeline's stacked bands onto the fixed
// categorical slots of svgSeries, so a component wears the same color in
// the aggregate chart and the timeline.
var timelineSeries = []struct {
	name string
	slot int // index into svgSeries
}{
	{"net negative LLC interference", 2},
	{"negative memory interference", 3},
	{"spinning", 4},
	{"yielding", 5},
	{"imbalance", 6},
}

// timelineBands returns the interval's drawable band heights as fractions
// of its capacity, in timelineSeries order, clamping negatives to zero.
func timelineBands(iv Interval, n int) [5]float64 {
	var out [5]float64
	cap := iv.Capacity(n)
	if cap <= 0 {
		return out
	}
	net := iv.Components.NegLLC - iv.Components.PosLLC
	vals := [5]int64{net, iv.Components.NegMem, iv.Components.Spin,
		iv.Components.Yield, iv.Components.Imbalance}
	for i, v := range vals {
		if v > 0 {
			out[i] = float64(v) / float64(cap)
		}
	}
	return out
}

// TimelineSVG renders the series as a standalone SVG stacked timeline.
func TimelineSVG(ts TimeSeries) string {
	var b strings.Builder
	writeTimelineSVG(&b, ts)
	return b.String()
}

// EncodeTimeSeriesSVG writes the stacked-timeline SVG document for the
// series to w.
func EncodeTimeSeriesSVG(w io.Writer, ts TimeSeries) error {
	var b strings.Builder
	writeTimelineSVG(&b, ts)
	_, err := io.WriteString(w, b.String())
	return err
}

func writeTimelineSVG(b *strings.Builder, ts TimeSeries) {
	const (
		marginL = 52.0
		marginT = 48.0
		plotW   = 640.0
		plotH   = 260.0
		axisH   = 40.0
		legendW = 230.0
	)
	width := marginL + plotW + legendW
	height := marginT + plotH + axisH

	// y scale: 0..yMax fraction of capacity, padded to the next 5% step so
	// the tallest column keeps headroom.
	yMax := 0.0
	for _, iv := range ts.Intervals {
		total := 0.0
		for _, v := range timelineBands(iv, ts.N) {
			total += v
		}
		if total > yMax {
			yMax = total
		}
	}
	// Pad to the next 5% step. The scale may exceed 100%: components are
	// attributed when the accounting hardware records them (a wait charges
	// its yield at resume), so a slice that absorbs waits begun earlier can
	// exceed its own capacity — that spike is the signal phase analysis is
	// after.
	yMax = float64(int(yMax*20)+1) / 20
	y := func(v float64) float64 { return marginT + plotH - v/yMax*plotH }
	x := func(ops uint64) float64 {
		if ts.TotalOps == 0 {
			return marginL
		}
		return marginL + float64(ops)/float64(ts.TotalOps)*plotW
	}

	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" role="img" aria-label="Speedup-stack timeline">`+"\n",
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%.0f" height="%.0f" fill="%s"/>`+"\n", width, height, svgSurface)
	fmt.Fprintf(b, `<text x="%.1f" y="24" font-family='%s' font-size="14" font-weight="600" fill="%s">Speedup-stack timeline — %s (N=%d)</text>`+"\n",
		marginL, svgFont, svgInk, xmlEscape(ts.Label), ts.N)
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s">capacity lost</text>`+"\n",
		marginL, marginT-8, svgFont, svgMuted)

	// Horizontal grid: 4 steps plus the darker baseline, labels in percent.
	for i := 0; i <= 4; i++ {
		v := yMax * float64(i) / 4
		yy := y(v)
		color := svgGrid
		if i == 0 {
			color = svgBaseline
		}
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			marginL, yy, marginL+plotW, yy, color)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s" text-anchor="end">%.0f%%</text>`+"\n",
			marginL-6, yy+4, svgFont, svgMuted, v*100)
	}

	// Columns: one per interval, spanning its op range, bands stacked
	// bottom-up in fixed component order with a 1px surface gap between
	// adjacent columns.
	for _, iv := range ts.Intervals {
		x0, x1 := x(iv.StartOps), x(iv.EndOps)
		if x1-x0 > 2 {
			x0, x1 = x0+0.5, x1-0.5
		}
		if x1 <= x0 {
			continue
		}
		bands := timelineBands(iv, ts.N)
		cum := 0.0
		for si, v := range bands {
			if v <= 0 {
				continue
			}
			top, bot := y(cum+v), y(cum)
			cum += v
			if bot-top < 0.6 {
				continue
			}
			fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s">`,
				x0, top, x1-x0, bot-top, svgSeries[timelineSeries[si].slot])
			fmt.Fprintf(b, `<title>interval %d (ops %d-%d): %s %.1f%%</title></rect>`+"\n",
				iv.Index, iv.StartOps, iv.EndOps, timelineSeries[si].name, v*100)
		}
	}

	// x axis: committed-op ticks at quarters of the run.
	axisY := marginT + plotH
	for i := 0; i <= 4; i++ {
		ops := ts.TotalOps / 4 * uint64(i)
		if i == 4 {
			ops = ts.TotalOps
		}
		xx := x(ops)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			xx, axisY, xx, axisY+4, svgBaseline)
		anchor := "middle"
		if i == 0 {
			anchor = "start"
		} else if i == 4 {
			anchor = "end"
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s" text-anchor="%s">%s</text>`+"\n",
			xx, axisY+18, svgFont, svgMuted, anchor, fmtOps(ops))
	}
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s" text-anchor="middle">committed ops</text>`+"\n",
		marginL+plotW/2, axisY+34, svgFont, svgInk2)

	// Legend, matching the aggregate chart's fixed component colors.
	lx := marginL + plotW + 24
	ly := marginT + 4
	for si, s := range timelineSeries {
		yy := ly + float64(si)*20
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="12" height="12" rx="2" fill="%s"/>`+"\n",
			lx, yy, svgSeries[s.slot])
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family='%s' font-size="11" fill="%s">%s</text>`+"\n",
			lx+18, yy+10, svgFont, svgInk2, s.name)
	}

	b.WriteString("</svg>\n")
}

// fmtOps formats an op count compactly for axis labels (1234567 → "1.2M").
func fmtOps(n uint64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%dk", n/1000)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
