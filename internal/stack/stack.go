// Package stack renders speedup stacks and derives the paper's
// presentation artifacts from them: ASCII stacked bars (Figure 5), the
// benchmark classification tree (Figure 6), and interference-component
// breakdowns (Figures 8 and 9).
package stack

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Component names follow the paper's Figure 5/6 vocabulary.
const (
	CompCache     = "cache"
	CompMemory    = "memory"
	CompSpinning  = "spinning"
	CompYielding  = "yielding"
	CompImbalance = "imbalance"
)

// NegligibleThreshold is the speedup-units floor below which a component is
// not considered a scaling delimiter (used by the Figure 6 classification).
const NegligibleThreshold = 0.30

// Named returns the classification components of a stack in speedup units.
// The cache component is the *net* negative LLC interference, matching how
// Figure 6 ranks delimiters.
func Named(s core.Stack) map[string]float64 {
	tp := float64(s.Tp)
	net := s.Components.Net()
	if net < 0 {
		net = 0
	}
	return map[string]float64{
		CompCache:     net / tp,
		CompMemory:    s.Components.NegMem / tp,
		CompSpinning:  s.Components.Spin / tp,
		CompYielding:  s.Components.Yield / tp,
		CompImbalance: s.Components.Imbalance / tp,
	}
}

// TopComponents returns the up-to-k largest non-negligible components of a
// stack, largest first.
func TopComponents(s core.Stack, k int) []string {
	named := Named(s)
	type kv struct {
		name string
		v    float64
	}
	list := make([]kv, 0, len(named))
	for n, v := range named {
		if v >= NegligibleThreshold {
			list = append(list, kv{n, v})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].v != list[j].v {
			return list[i].v > list[j].v
		}
		return list[i].name < list[j].name
	})
	if len(list) > k {
		list = list[:k]
	}
	out := make([]string, len(list))
	for i, e := range list {
		out[i] = e.name
	}
	return out
}

// ScalingClass is the Figure 6 grouping.
type ScalingClass string

// Scaling classes per the paper: good >= 10x, poor < 5x, else moderate
// (for 16 threads).
const (
	ClassGood     ScalingClass = "good"
	ClassModerate ScalingClass = "moderate"
	ClassPoor     ScalingClass = "poor"
)

// Classify buckets a 16-thread speedup into the paper's classes.
func Classify(speedup float64) ScalingClass {
	switch {
	case speedup >= 10:
		return ClassGood
	case speedup < 5:
		return ClassPoor
	default:
		return ClassModerate
	}
}

// Bar is one rendered speedup stack.
type Bar struct {
	Label string
	Stack core.Stack
}

// Render draws a set of speedup stacks as horizontal ASCII bars, one block
// per segment, in the paper's Figure 5 component order (base speedup at the
// bottom/left, then positive LLC interference, then the delimiters).
func Render(bars []Bar, width int) string {
	if width <= 0 {
		width = 64
	}
	var b strings.Builder
	for _, bar := range bars {
		b.WriteString(renderOne(bar, width))
		b.WriteByte('\n')
	}
	b.WriteString(legend())
	return b.String()
}

type segment struct {
	name  string
	runeC byte
	value float64
}

// segments decomposes a stack into its drawing order. All values are in
// speedup units and sum to N.
func segments(s core.Stack) []segment {
	tp := float64(s.Tp)
	base := s.Base()
	if base < 0 {
		base = 0
	}
	pos := s.Components.PosLLC / tp
	net := s.Components.Net() / tp
	if net < 0 {
		net = 0
	}
	return []segment{
		{"base speedup", '#', base},
		{"positive LLC interference", '+', pos},
		{"net negative LLC interference", '.', net},
		{"negative memory interference", 'm', s.Components.NegMem / tp},
		{"spinning", 's', s.Components.Spin / tp},
		{"yielding", 'y', s.Components.Yield / tp},
		{"imbalance", 'i', s.Components.Imbalance / tp},
	}
}

func renderOne(bar Bar, width int) string {
	s := bar.Stack
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s N=%-3d est=%5.2f", bar.Label, s.N, s.Estimated())
	if s.ActualSpeedup > 0 {
		fmt.Fprintf(&sb, " act=%5.2f", s.ActualSpeedup)
	}
	sb.WriteString(" |")
	perUnit := float64(width) / float64(s.N)
	total := 0
	for _, seg := range segments(s) {
		n := int(seg.value*perUnit + 0.5)
		if total+n > width {
			n = width - total
		}
		for i := 0; i < n; i++ {
			sb.WriteByte(seg.runeC)
		}
		total += n
	}
	for total < width {
		sb.WriteByte(' ')
		total++
	}
	sb.WriteString("|")
	return sb.String()
}

func legend() string {
	return "legend: #=base speedup  +=positive LLC  .=net negative LLC  " +
		"m=memory  s=spinning  y=yielding  i=imbalance\n"
}

// Table renders a numeric component table for a set of stacks, one row per
// bar, in speedup units.
func Table(bars []Bar) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %5s %7s %7s %7s %7s %7s %7s %7s %7s\n",
		"benchmark", "N", "est", "actual", "posLLC", "netLLC", "memory",
		"spin", "yield", "imbal")
	for _, bar := range bars {
		s := bar.Stack
		tp := float64(s.Tp)
		net := s.Components.Net() / tp
		fmt.Fprintf(&b, "%-28s %5d %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f\n",
			bar.Label, s.N, s.Estimated(), s.ActualSpeedup,
			s.Components.PosLLC/tp, net, s.Components.NegMem/tp,
			s.Components.Spin/tp, s.Components.Yield/tp,
			s.Components.Imbalance/tp)
	}
	return b.String()
}
