// Command speedupd serves the speedup-stack analysis pipeline over HTTP:
// a long-running, cached, bounded-concurrency front end to the simulator.
//
// Usage:
//
//	speedupd [-addr :8080] [-workers N] [-cache CELLS] [-sim-timeout 2m]
//	         [-max-sweep-cells 1024] [-drain 10s] [-pprof]
//	         [-max-inflight N] [-rate-limit RPS] [-rate-burst N]
//	         [-self URL -peers URL,URL,...] [-fleet-cache N]
//
// Endpoints (see internal/service):
//
//	GET  /v1/stack?bench=cholesky_splash2&threads=16&format=svg
//	GET  /v1/stack/intervals?bench=bodytrack&threads=16&intervals=32
//	POST /v1/sweep
//	POST /v1/workloads/analyze
//	POST /v1/workloads/validate
//	POST /v1/traces/analyze        (binary op trace from speedup-stack -record)
//	GET  /v1/advise?bench=ferret&max_threads=16
//	GET  /v1/benchmarks
//	GET  /healthz
//	GET  /metrics
//
// Identical concurrent requests collapse onto one simulation, results are
// cached in an LRU keyed by the full machine configuration, and SIGINT or
// SIGTERM drains in-flight requests before exiting. Every /v1 endpoint
// accepts exactly its documented query parameters and answers failures
// with one structured envelope ({"error":{"code","message","suggestion"}});
// the Go package repro/client wraps the whole surface.
//
// Overload protection: -max-inflight bounds concurrently admitted
// simulating requests (excess load is shed with 429 "overloaded" and
// Retry-After) and -rate-limit/-rate-burst add a per-client token bucket
// (429 "rate_limited").
//
// Fleet mode: -self and -peers (every node runs the same -peers list, its
// own address in it as -self) shard the cache across cooperating nodes —
// a consistent-hash ring on the workload fingerprint assigns each
// workload a home node, non-home nodes fill from the home over the /v1
// surface with at most one hop, and the fleet-wide cost of a unique cell
// is one simulation. Responses are byte-identical to a single node's
// (see internal/fleet); /metrics grows speedupd_fleet_* counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "max concurrent simulations")
	cache := flag.Int("cache", 4096, "LRU result cache size in cells (-1 = unbounded)")
	simTimeout := flag.Duration("sim-timeout", 2*time.Minute, "per-request simulation budget (-1s = none)")
	maxSweepCells := flag.Int("max-sweep-cells", 1024, "max cells per /v1/sweep batch")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profile a slow sweep live)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently admitted simulating requests (0 = unbounded; excess sheds 429)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client request rate on simulating endpoints, in req/s (0 = off)")
	rateBurst := flag.Int("rate-burst", 0, "token-bucket burst when -rate-limit is set (default ceil(rate))")
	self := flag.String("self", "", "fleet: this node's address as it appears in -peers")
	peers := flag.String("peers", "", "fleet: comma-separated member addresses, -self included, identical on every node")
	fleetCache := flag.Int("fleet-cache", 0, "fleet: peer-response cache entries (0 = default 4096, -1 = off)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	srv := service.New(service.Options{
		Workers:       *workers,
		CacheCells:    *cache,
		SimTimeout:    *simTimeout,
		MaxSweepCells: *maxSweepCells,
		MaxInFlight:   *maxInflight,
		RateLimit:     *rateLimit,
		RateBurst:     *rateBurst,
	})

	handler := srv.Handler()
	if (*self == "") != (*peers == "") {
		log.Fatal("speedupd: -self and -peers must be set together")
	}
	if *peers != "" {
		members := strings.Split(*peers, ",")
		fh, err := fleet.Wrap(handler, fleet.Options{
			Self:         *self,
			Peers:        members,
			CacheEntries: *fleetCache,
		})
		if err != nil {
			log.Fatalf("speedupd: %v", err)
		}
		handler = fh
		log.Printf("speedupd: fleet member %s of %d nodes", *self, len(members))
	}
	if *pprofOn {
		// Admin mux: the service routes plus the standard pprof endpoints,
		// so a slow sweep can be profiled in production with
		// `go tool pprof http://HOST/debug/pprof/profile`.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("speedupd: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("speedupd: listening on %s (%d workers, cache %d cells, pprof %v)",
		l.Addr(), *workers, *cache, *pprofOn)
	if err := service.Serve(ctx, l, handler, *drain); err != nil {
		log.Fatalf("speedupd: %v", err)
	}
	st := srv.Engine().Stats()
	log.Printf("speedupd: shut down cleanly (%d simulations, %d cache hits)",
		st.CellRuns+st.SeqRuns, st.CellHits+st.SeqHits)
}
