// Command speedupd serves the speedup-stack analysis pipeline over HTTP:
// a long-running, cached, bounded-concurrency front end to the simulator.
//
// Usage:
//
//	speedupd [-addr :8080] [-workers N] [-cache CELLS] [-sim-timeout 2m]
//	         [-max-sweep-cells 1024] [-drain 10s]
//
// Endpoints (see internal/service):
//
//	GET  /v1/stack?bench=cholesky_splash2&threads=16&format=svg
//	POST /v1/sweep
//	GET  /v1/benchmarks
//	GET  /healthz
//	GET  /metrics
//
// Identical concurrent requests collapse onto one simulation, results are
// cached in an LRU keyed by the full machine configuration, and SIGINT or
// SIGTERM drains in-flight requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "max concurrent simulations")
	cache := flag.Int("cache", 4096, "LRU result cache size in cells (-1 = unbounded)")
	simTimeout := flag.Duration("sim-timeout", 2*time.Minute, "per-request simulation budget (-1s = none)")
	maxSweepCells := flag.Int("max-sweep-cells", 1024, "max cells per /v1/sweep batch")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	srv := service.New(service.Options{
		Workers:       *workers,
		CacheCells:    *cache,
		SimTimeout:    *simTimeout,
		MaxSweepCells: *maxSweepCells,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("speedupd: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("speedupd: listening on %s (%d workers, cache %d cells)",
		l.Addr(), *workers, *cache)
	if err := service.Serve(ctx, l, srv.Handler(), *drain); err != nil {
		log.Fatalf("speedupd: %v", err)
	}
	st := srv.Engine().Stats()
	log.Printf("speedupd: shut down cleanly (%d simulations, %d cache hits)",
		st.CellRuns+st.SeqRuns, st.CellHits+st.SeqHits)
}
