// Command experiments regenerates every table and figure of the paper's
// evaluation (Figures 1 and 4–9, the Section 6 validation table, and the
// Section 4.7 hardware cost budget) on the simulated 16-core machine.
//
// All figures share one sweep engine: cells common to several figures
// (e.g. the validation grid reused by Figures 4 and 6) are simulated once,
// fanned out over -workers simulation workers. Figure text goes to stdout
// and is byte-identical regardless of the worker count; timing and
// progress go to stderr.
//
// Usage:
//
//	experiments [flags] [fig1|fig4|fig5|fig6|fig7|fig8|fig9|validation|hwcost|ablation|all]
//	experiments custom -spec mykernel.json
//	experiments phases [-intervals 32] [-outdir DIR]
//	experiments advise [-max-threads 16]
//	experiments whatif [-threads 16]
//	experiments fastcompare
//	experiments all -mode fast
//
// The custom section is the bring-your-own-benchmark path: it sweeps the
// workload described by -spec FILE (a JSON workload spec) across thread
// counts on the same engine, machine and dedup pipeline as the paper's
// figures. The phases section measures the phase-heavy analogues
// time-resolved (-intervals slices per run), printing interval tables and,
// with -outdir, writing stacked-timeline SVGs. The advise section runs the
// scaling advisor (internal/scaling) over every registered analogue:
// Amdahl/USL fits of a 1..-max-threads sweep, the classification, the
// serial-fraction cross-check against the stack, and each benchmark's top
// recommendation. The whatif section runs the causal what-if engine
// (internal/whatif) over every analogue at -threads threads, printing each
// benchmark's top intervention with its predicted and re-simulated gains.
// The fastcompare section runs the full validation grid in both simulation
// modes and prints the validation table with exact-vs-fast delta columns —
// the accuracy evidence behind sim.FastErrorBounds. All five run only when
// named explicitly — "all" regenerates exactly the paper's artifacts.
//
// -mode fast runs every requested section on the sampled fast-mode machine
// (several times faster, deterministic, error-bounded by
// sim.FastErrorBounds); the default is the exact, byte-identical machine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// section is one regenerable artifact: the name selects it on the command
// line, run produces it.
type section struct {
	name string
	run  func(context.Context, *exp.Engine) error
}

// onDemand marks sections that run only when named explicitly, never under
// "all" — "all" regenerates exactly the paper's artifacts.
var onDemand = map[string]bool{"custom": true, "phases": true, "advise": true,
	"whatif": true, "fastcompare": true}

// sections is the single registry the command-line validation and the
// execution loop both read, in output order.
var sections = []section{
	{"fig1", func(ctx context.Context, e *exp.Engine) error {
		curves, err := exp.Figure1(ctx, e)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatCurves(curves))
		return nil
	}},
	{"validation", func(ctx context.Context, e *exp.Engine) error {
		rows, err := exp.Validation(ctx, e)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatValidation(rows))
		return nil
	}},
	{"fig4", func(ctx context.Context, e *exp.Engine) error {
		rows, err := exp.Figure4(ctx, e)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatFigure4(rows))
		return nil
	}},
	{"fig5", func(ctx context.Context, e *exp.Engine) error {
		bars, err := exp.Figure5(ctx, e)
		if err != nil {
			return err
		}
		fmt.Print(stack.Render(bars, 64))
		fmt.Println()
		fmt.Print(stack.Table(bars))
		return nil
	}},
	{"fig6", func(ctx context.Context, e *exp.Engine) error {
		rows, err := exp.Figure6(ctx, e)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatFigure6(rows))
		return nil
	}},
	{"fig7", func(ctx context.Context, e *exp.Engine) error {
		rows, err := exp.Figure7(ctx, e)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatFigure7(rows))
		return nil
	}},
	{"fig8", func(ctx context.Context, e *exp.Engine) error {
		rows, err := exp.Figure8(ctx, e)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatInterference(rows))
		return nil
	}},
	{"fig9", func(ctx context.Context, e *exp.Engine) error {
		rows, err := exp.Figure9(ctx, e)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatInterference(rows))
		return nil
	}},
	{"hwcost", func(ctx context.Context, e *exp.Engine) error {
		fmt.Print(exp.HardwareCostReport())
		return nil
	}},
	{"ablation", func(ctx context.Context, e *exp.Engine) error {
		rows, err := exp.AblationSampling(ctx, e)
		if err != nil {
			return err
		}
		fmt.Println("ATD sampling factor (hardware cost vs accuracy):")
		fmt.Print(exp.FormatSampling(rows))
		th, err := exp.AblationSpinThreshold(ctx, e)
		if err != nil {
			return err
		}
		fmt.Println("\nTian detector threshold:")
		fmt.Print(exp.FormatThreshold(th))
		qr, err := exp.AblationQuantum(ctx, e)
		if err != nil {
			return err
		}
		fmt.Println("\nengine quantum (fidelity check):")
		fmt.Print(exp.FormatQuantum(qr))
		return nil
	}},
	{"phases", func(ctx context.Context, e *exp.Engine) error {
		series, err := exp.Phases(ctx, e, 16, *intervals)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatPhases(series))
		if *outDir == "" {
			return nil
		}
		for _, ts := range series {
			path := filepath.Join(*outDir, "timeline_"+ts.Label+".svg")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = stack.EncodeTimeSeriesSVG(f, ts)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		return nil
	}},
	{"custom", func(ctx context.Context, e *exp.Engine) error {
		if *specPath == "" {
			return errors.New("the custom section needs -spec FILE (a workload spec JSON)")
		}
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		spec, err := workload.ParseSpec(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *specPath, err)
		}
		fmt.Printf("workload %s (fingerprint %s)\n\n",
			workload.Benchmark{Spec: spec}.FullName(), spec.Fingerprint().Short())
		var cells []exp.Cell
		for _, n := range []int{1, 2, 4, 8, 16} {
			cells = append(cells, exp.Cell{Spec: &spec, Threads: n})
		}
		outs, err := e.Sweep(ctx, cells)
		if err != nil {
			return err
		}
		bars := make([]stack.Bar, len(outs))
		for i, o := range outs {
			bars[i] = stack.Bar{
				Label: fmt.Sprintf("%s x%d", o.Bench.FullName(), o.Threads),
				Stack: o.Stack,
			}
		}
		fmt.Print(stack.Render(bars, 64))
		fmt.Println()
		fmt.Print(stack.Table(bars))
		return nil
	}},
	{"whatif", func(ctx context.Context, e *exp.Engine) error {
		names := workload.Names()
		fmt.Printf("causal what-if engine, %d analogues x%d threads (predicted vs re-simulated gains)\n\n",
			len(names), *whatifThreads)
		fmt.Printf("%-26s %8s %-18s %9s %9s %8s\n",
			"benchmark", "baseline", "top intervention", "gain(est)", "gain(sim)", "error")
		for _, name := range names {
			rep, err := e.WhatIf(ctx, exp.Request{Cell: exp.Cell{Bench: name, Threads: *whatifThreads}}, nil)
			if err != nil {
				return err
			}
			if len(rep.Predictions) == 0 {
				fmt.Printf("%-26s %8.2f %-18s\n", name, rep.BaselineSpeedup, "-")
				continue
			}
			p := rep.Predictions[0]
			fmt.Printf("%-26s %8.2f %-18s %+9.2f %+9.2f %+8.3f\n",
				name, rep.BaselineSpeedup, p.Intervention, p.PredictedGain, p.ActualGain, p.Error)
		}
		return nil
	}},
	{"fastcompare", func(ctx context.Context, e *exp.Engine) error {
		rows, err := exp.ValidationCompare(ctx, e)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatValidationCompare(rows))
		return nil
	}},
	{"advise", func(ctx context.Context, e *exp.Engine) error {
		names := workload.Names()
		fmt.Printf("scaling advisor, sweep 1..%d (powers of two), %d analogues\n\n",
			*maxThreads, len(names))
		fmt.Printf("%-26s %-10s %7s %9s %6s %6s %-10s %s\n",
			"benchmark", "class", "sigma", "kappa", "n*", "agree", "bottleneck", "top recommendation")
		for _, name := range names {
			a, err := e.Advise(ctx, exp.Request{Cell: exp.Cell{Bench: name}}, *maxThreads)
			if err != nil {
				return err
			}
			nstar := "-"
			if a.NStar > 0 {
				nstar = fmt.Sprintf("%.1f", a.NStar)
			}
			agree := "yes"
			if !a.SigmaAgrees {
				agree = "NO"
			}
			bottleneck, top := "-", "-"
			if a.Bottleneck != "" {
				bottleneck = a.Bottleneck
			}
			if len(a.Recommendations) > 0 {
				r := a.Recommendations[0]
				if top = r.Field; top == "" {
					top = r.Action
				}
			}
			fmt.Printf("%-26s %-10s %7.4f %9.6f %6s %6s %-10s %s\n",
				name, a.Class, a.USL.Sigma, a.USL.Kappa, nstar, agree, bottleneck, top)
		}
		return nil
	}},
}

// specPath feeds the custom section; intervals and outDir feed the phases
// section; maxThreads feeds the advise section; whatifThreads the whatif
// section. They are flags so they parse alongside the shared
// -workers/-timeout/-q options.
var (
	specPath      = flag.String("spec", "", "workload spec JSON for the custom section")
	intervals     = flag.Int("intervals", 32, "interval count for the phases section")
	outDir        = flag.String("outdir", "", "also write phases timelines as SVG files into DIR")
	maxThreads    = flag.Int("max-threads", 16, "sweep top for the advise section")
	whatifThreads = flag.Int("threads", 16, "thread count for the whatif section")
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "parallel simulation workers")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	quiet := flag.Bool("q", false, "suppress the progress line")
	modeFlag := flag.String("mode", "exact", "simulation fidelity: exact (byte-identical) or fast (sampled, several times faster, error-bounded)")
	flag.Parse()
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
		// flag.Parse stops at the first positional argument; accept flags
		// after the section name too (`experiments all -workers=8`).
		flag.CommandLine.Parse(flag.Args()[1:])
		if flag.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "unexpected arguments %v\n", flag.Args())
			os.Exit(2)
		}
	}
	if which != "all" {
		known := false
		names := make([]string, len(sections))
		for i, s := range sections {
			names[i] = s.name
			known = known || s.name == which
		}
		if !known {
			fmt.Fprintf(os.Stderr, "unknown section %q (want all or one of %v)\n", which, names)
			os.Exit(2)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []exp.Option{exp.WithWorkers(*workers)}
	if !*quiet {
		opts = append(opts, exp.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcells: %d/%d ", done, total)
		}))
	}
	mode, err := sim.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	e := exp.NewEngine(sim.Default().WithMode(mode), opts...)

	failed := 0
	for _, s := range sections {
		if which != "all" && which != s.name {
			continue
		}
		if which == "all" && onDemand[s.name] {
			continue
		}
		t0 := time.Now()
		fmt.Printf("==== %s ====\n", s.name)
		err := s.run(ctx, e)
		if !*quiet {
			fmt.Fprint(os.Stderr, "\r\033[K")
		}
		if err != nil {
			// Keep going: later sections may still complete, and partial
			// results beat losing the figures already printed.
			failed++
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.name, err)
			fmt.Printf("(failed)\n\n")
			continue
		}
		fmt.Fprintf(os.Stderr, "%s done in %.1fs\n", s.name, time.Since(t0).Seconds())
		fmt.Println()
	}

	if st := e.Stats(); !*quiet {
		fmt.Fprintf(os.Stderr, "engine: %d cell + %d sequential simulations, %d cell + %d sequential memo hits\n",
			st.CellRuns, st.SeqRuns, st.CellHits, st.SeqHits)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d section(s) failed\n", failed)
		os.Exit(1)
	}
}
