// Command experiments regenerates every table and figure of the paper's
// evaluation (Figures 1 and 4–9, the Section 6 validation table, and the
// Section 4.7 hardware cost budget) on the simulated 16-core machine.
//
// Usage:
//
//	experiments [flags] [fig1|fig4|fig5|fig6|fig7|fig8|fig9|validation|hwcost|ablation|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stack"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "parallel simulation workers")
	flag.Parse()
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}

	r := exp.NewRunner(sim.Default())
	run := func(name string, f func() error) {
		if which != "all" && which != name {
			return
		}
		t0 := time.Now()
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(t0).Seconds())
	}

	run("fig1", func() error {
		curves, err := exp.Figure1(r)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatCurves(curves))
		return nil
	})
	run("validation", func() error {
		rows, err := exp.Validation(r, *workers)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatValidation(rows))
		return nil
	})
	run("fig4", func() error {
		rows, err := exp.Figure4(r, *workers)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatFigure4(rows))
		return nil
	})
	run("fig5", func() error {
		bars, err := exp.Figure5(r)
		if err != nil {
			return err
		}
		fmt.Print(stack.Render(bars, 64))
		fmt.Println()
		fmt.Print(stack.Table(bars))
		return nil
	})
	run("fig6", func() error {
		rows, err := exp.Figure6(r, *workers)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatFigure6(rows))
		return nil
	})
	run("fig7", func() error {
		rows, err := exp.Figure7(r)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatFigure7(rows))
		return nil
	})
	run("fig8", func() error {
		rows, err := exp.Figure8(r)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatInterference(rows))
		return nil
	})
	run("fig9", func() error {
		rows, err := exp.Figure9(r)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatInterference(rows))
		return nil
	})
	run("hwcost", func() error {
		fmt.Print(exp.HardwareCostReport())
		return nil
	})
	run("ablation", func() error {
		rows, err := exp.AblationSampling(r.Config())
		if err != nil {
			return err
		}
		fmt.Println("ATD sampling factor (hardware cost vs accuracy):")
		fmt.Print(exp.FormatSampling(rows))
		th, err := exp.AblationSpinThreshold(r.Config())
		if err != nil {
			return err
		}
		fmt.Println("\nTian detector threshold:")
		fmt.Print(exp.FormatThreshold(th))
		qr, err := exp.AblationQuantum(r.Config())
		if err != nil {
			return err
		}
		fmt.Println("\nengine quantum (fidelity check):")
		fmt.Print(exp.FormatQuantum(qr))
		return nil
	})
}
