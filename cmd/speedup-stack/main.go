// Command speedup-stack measures and prints the speedup stack of one
// benchmark analogue or of a custom workload spec.
//
// Usage:
//
//	speedup-stack -bench cholesky -threads 16
//	speedup-stack -bench radix_splash2 -threads 8 -format svg > radix.svg
//	speedup-stack -spec mykernel.json -threads 16
//	speedup-stack -list
//
// -spec FILE analyzes a bring-your-own-benchmark workload spec (the JSON
// form of a workload description; see the README's "Custom workloads"
// section) instead of a registered analogue, and takes precedence over
// -bench. -format selects the report encoding: text (ASCII bars, component
// table and top bottlenecks), json, csv, or svg (a standalone chart).
package main

import (
	"flag"
	"fmt"
	"os"

	speedupstack "repro"
)

func main() {
	bench := flag.String("bench", "cholesky_splash2", "benchmark (name or name_suite)")
	spec := flag.String("spec", "", "workload spec JSON file (overrides -bench)")
	threads := flag.Int("threads", 16, "thread count (= core count)")
	format := flag.String("format", "text", "output format: text|json|csv|svg")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	flag.Parse()

	if *list {
		for _, n := range speedupstack.Benchmarks() {
			fmt.Println(n)
		}
		return
	}

	f, err := speedupstack.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := measure(*spec, *bench, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if f == speedupstack.FormatText {
		fmt.Print(speedupstack.Render(res))
		fmt.Println()
		fmt.Print(speedupstack.Table(res))
		fmt.Printf("\ntop bottlenecks: %v\n", speedupstack.TopBottlenecks(res, 3))
		return
	}
	if err := speedupstack.Encode(os.Stdout, f, res); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// measure resolves the workload — a spec file or a registered name — and
// runs it.
func measure(specPath, bench string, threads int) (speedupstack.Result, error) {
	if specPath == "" {
		return speedupstack.Measure(bench, threads)
	}
	data, err := os.ReadFile(specPath)
	if err != nil {
		return speedupstack.Result{}, err
	}
	w, err := speedupstack.ParseWorkload(data)
	if err != nil {
		return speedupstack.Result{}, fmt.Errorf("%s: %w", specPath, err)
	}
	return speedupstack.MeasureSpec(w, threads)
}
