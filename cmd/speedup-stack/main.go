// Command speedup-stack measures and prints the speedup stack of one
// benchmark analogue or of a custom workload spec.
//
// Usage:
//
//	speedup-stack -bench cholesky -threads 16
//	speedup-stack -bench radix_splash2 -threads 8 -format svg > radix.svg
//	speedup-stack -bench bodytrack -threads 16 -intervals 32 -format svg > phases.svg
//	speedup-stack -spec mykernel.json -threads 16
//	speedup-stack -bench ferret -advise [-max-threads 16] [-format svg]
//	speedup-stack -bench cholesky -threads 16 -whatif [-interventions halve_lock_hold,double_llc]
//	speedup-stack -bench cholesky -threads 16 -mode fast
//	speedup-stack -bench cholesky -threads 16 -record cholesky16.trace
//	speedup-stack -trace cholesky16.trace [-format svg]
//	speedup-stack -list
//
// -spec FILE analyzes a bring-your-own-benchmark workload spec (the JSON
// form of a workload description; see the README's "Custom workloads"
// section) instead of a registered analogue, and takes precedence over
// -bench. -format selects the report encoding: text (ASCII bars, component
// table and top bottlenecks), json, csv, or svg (a standalone chart).
//
// -intervals N switches to the time-resolved report: the run is divided
// into N equal slices of its committed trace operations and each slice gets
// its own component breakdown (the slices sum exactly to the aggregate).
// text prints the interval table, json/csv the exact per-interval cycles,
// and svg a stacked timeline instead of the aggregate bar chart.
//
// -advise switches to the scaling advisor: the workload is swept from 1 to
// -max-threads threads (powers of two), Amdahl and USL curves are fitted,
// and the report carries the classification, the diminishing-returns point
// N*, the serial-fraction cross-check against the stack, and ranked
// spec-field recommendations. svg draws the measured sweep with both
// fitted curves overlaid.
//
// -mode fast measures the aggregate stack on the sampled fast-mode machine:
// several times faster, deterministic, with its deviation from the exact
// stack bounded by the documented sim.FastErrorBounds. The default, exact,
// is byte-identical run to run. The advisor, what-if and interval paths
// stay exact in this CLI (the speedupd service serves their fast variants
// via ?mode=fast).
//
// -record FILE runs the workload once and writes the binary op trace of that
// run to FILE: every operation every thread issued, plus the run's machine
// registrations — the compact versioned format specified in internal/trace.
// -trace FILE replays a recorded trace instead of generating a workload and
// prints its speedup stack; the replay reproduces the recorded run's result
// byte-identically, at the trace's recorded thread count (-threads does not
// apply), and the same file uploads to speedupd's POST /v1/traces/analyze.
//
// -whatif switches to the causal what-if engine: each applicable catalog
// intervention (halve the lock hold time, remove imbalance, double the LLC,
// halve the memory latency) is predicted by re-evaluating the estimator
// with its stack components scaled, validated by re-simulating the mutated
// workload or machine, and ranked by predicted gain. -interventions
// restricts the run to a comma-separated subset of catalog IDs; svg draws
// the baseline and per-intervention stacks as one chart.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	speedupstack "repro"
)

func main() {
	bench := flag.String("bench", "cholesky_splash2", "benchmark (name or name_suite)")
	spec := flag.String("spec", "", "workload spec JSON file (overrides -bench)")
	threads := flag.Int("threads", 16, "thread count (= core count)")
	format := flag.String("format", "text", "output format: text|json|csv|svg")
	intervals := flag.Int("intervals", 0, "time-resolve the stack into N intervals (0 = aggregate only)")
	advise := flag.Bool("advise", false, "run the scaling advisor (Amdahl/USL fits and recommendations)")
	maxThreads := flag.Int("max-threads", 16, "sweep top for -advise")
	whatIf := flag.Bool("whatif", false, "run the causal what-if engine (predicted vs re-simulated intervention gains)")
	interventions := flag.String("interventions", "", "comma-separated intervention IDs for -whatif (empty = full catalog)")
	mode := flag.String("mode", "exact", "simulation fidelity: exact (byte-identical) or fast (sampled, several times faster, error-bounded)")
	record := flag.String("record", "", "record the run's binary op trace to FILE instead of reporting")
	tracePath := flag.String("trace", "", "replay a recorded trace FILE instead of generating a workload (overrides -bench/-spec)")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	flag.Parse()

	if *list {
		for _, n := range speedupstack.Benchmarks() {
			fmt.Println(n)
		}
		return
	}

	f, err := speedupstack.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fast := false
	switch *mode {
	case "", "exact":
	case "fast":
		fast = true
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want exact or fast)\n", *mode)
		os.Exit(2)
	}
	if fast && (*whatIf || *advise || *intervals > 0) {
		// The advisor, what-if and interval reports are exact-mode paths in
		// this CLI; the speedupd service serves their fast variants
		// (?mode=fast).
		fmt.Fprintln(os.Stderr, "-mode fast applies to the aggregate stack only; drop -advise/-whatif/-intervals or use speedupd's ?mode=fast")
		os.Exit(2)
	}
	if *record != "" {
		if *tracePath != "" || *whatIf || *advise || *intervals > 0 || fast {
			fmt.Fprintln(os.Stderr, "-record captures one exact aggregate run; drop -trace/-advise/-whatif/-intervals/-mode fast")
			os.Exit(2)
		}
		if err := recordTrace(*spec, *bench, *threads, *record); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *tracePath != "" {
		if *whatIf || *advise || *intervals > 0 || fast {
			// A trace replay is an exact aggregate measurement by contract:
			// the replay must reproduce the recorded run byte-identically.
			fmt.Fprintln(os.Stderr, "-trace replays the recorded run exactly; drop -advise/-whatif/-intervals/-mode fast")
			os.Exit(2)
		}
		res, err := measureTrace(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report(f, res)
		return
	}
	if *whatIf {
		var ids []string
		if *interventions != "" {
			ids = strings.Split(*interventions, ",")
		}
		rep, err := runWhatIf(*spec, *bench, *threads, ids)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := speedupstack.EncodeWhatIf(os.Stdout, f, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *advise {
		a, err := runAdvise(*spec, *bench, *maxThreads)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := speedupstack.EncodeAdvice(os.Stdout, f, a); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *intervals > 0 {
		ts, err := measureIntervals(*spec, *bench, *threads, *intervals)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := speedupstack.EncodeTimeSeries(os.Stdout, f, ts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	res, err := measure(*spec, *bench, *threads, fast)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report(f, res)
}

// report prints one aggregate result in the requested format.
func report(f speedupstack.Format, res speedupstack.Result) {
	if f == speedupstack.FormatText {
		fmt.Print(speedupstack.Render(res))
		fmt.Println()
		fmt.Print(speedupstack.Table(res))
		fmt.Printf("\ntop bottlenecks: %v\n", speedupstack.TopBottlenecks(res, 3))
		return
	}
	if err := speedupstack.Encode(os.Stdout, f, res); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// recordTrace captures one run of the workload as a binary op trace file.
func recordTrace(specPath, bench string, threads int, path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if specPath == "" {
		err = speedupstack.RecordTrace(out, bench, threads)
	} else {
		var w speedupstack.Workload
		if w, err = loadSpec(specPath); err == nil {
			err = speedupstack.RecordTraceWorkload(out, w, threads)
		}
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// measureTrace replays a recorded trace file at its recorded thread count.
func measureTrace(path string) (speedupstack.Result, error) {
	in, err := os.Open(path)
	if err != nil {
		return speedupstack.Result{}, err
	}
	defer in.Close()
	res, err := speedupstack.MeasureTrace(in)
	if err != nil {
		return speedupstack.Result{}, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// measure resolves the workload — a spec file or a registered name — and
// runs it in the requested fidelity.
func measure(specPath, bench string, threads int, fast bool) (speedupstack.Result, error) {
	if specPath == "" {
		if fast {
			return speedupstack.MeasureFast(bench, threads)
		}
		return speedupstack.Measure(bench, threads)
	}
	w, err := loadSpec(specPath)
	if err != nil {
		return speedupstack.Result{}, err
	}
	if fast {
		return speedupstack.MeasureSpecFast(w, threads)
	}
	return speedupstack.MeasureSpec(w, threads)
}

// measureIntervals is measure's time-resolved counterpart.
func measureIntervals(specPath, bench string, threads, intervals int) (speedupstack.TimeSeries, error) {
	if specPath == "" {
		return speedupstack.MeasureIntervals(bench, threads, intervals)
	}
	w, err := loadSpec(specPath)
	if err != nil {
		return speedupstack.TimeSeries{}, err
	}
	return speedupstack.MeasureSpecIntervals(w, threads, intervals)
}

// runAdvise is measure's scaling-advisor counterpart.
func runAdvise(specPath, bench string, maxThreads int) (speedupstack.Advice, error) {
	if specPath == "" {
		return speedupstack.Advise(bench, maxThreads)
	}
	w, err := loadSpec(specPath)
	if err != nil {
		return speedupstack.Advice{}, err
	}
	return speedupstack.AdviseSpec(w, maxThreads)
}

// runWhatIf is measure's causal what-if counterpart.
func runWhatIf(specPath, bench string, threads int, ids []string) (speedupstack.WhatIfReport, error) {
	if specPath == "" {
		return speedupstack.WhatIf(bench, threads, ids...)
	}
	w, err := loadSpec(specPath)
	if err != nil {
		return speedupstack.WhatIfReport{}, err
	}
	return speedupstack.WhatIfSpec(w, threads, ids...)
}

// loadSpec reads and parses a workload spec file.
func loadSpec(path string) (speedupstack.Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return speedupstack.Workload{}, err
	}
	w, err := speedupstack.ParseWorkload(data)
	if err != nil {
		return speedupstack.Workload{}, fmt.Errorf("%s: %w", path, err)
	}
	return w, nil
}
