// Command speedup-stack measures and prints the speedup stack of one
// benchmark analogue.
//
// Usage:
//
//	speedup-stack -bench cholesky -threads 16
//	speedup-stack -list
package main

import (
	"flag"
	"fmt"
	"os"

	speedupstack "repro"
)

func main() {
	bench := flag.String("bench", "cholesky_splash2", "benchmark (name or name_suite)")
	threads := flag.Int("threads", 16, "thread count (= core count)")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	flag.Parse()

	if *list {
		for _, n := range speedupstack.Benchmarks() {
			fmt.Println(n)
		}
		return
	}

	res, err := speedupstack.Measure(*bench, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(speedupstack.Render(res))
	fmt.Println()
	fmt.Print(speedupstack.Table(res))
	fmt.Printf("\ntop bottlenecks: %v\n", speedupstack.TopBottlenecks(res, 3))
}
