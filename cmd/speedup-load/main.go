// Command speedup-load is an open-loop load generator for speedupd: it
// offers requests at a fixed arrival rate — arrivals do not wait for
// completions, so a saturated server shows up as rising latency and shed
// load rather than a silently throttled offered rate — and reports
// achieved throughput, latency quantiles, and the 429 shed count.
//
// Usage:
//
//	speedup-load [-targets URL,URL,...] [-rate RPS] [-duration 10s]
//	             [-benches a,b] [-threads 1,2,4] [-hot 1.0]
//	             [-warmup] [-seed 1] [-max-inflight 512] [-timeout 30s] [-json]
//
// The working set is the cross product of -benches and -threads, requested
// as GET /v1/stack. With -warmup (the default) every working-set query is
// issued once before measurement, so a -hot 1.0 run measures the pure
// cached-query path — the number a fleet scales with node count. A -hot
// fraction below 1 draws the remainder from unwarmed core-count variants
// of the same cells, forcing simulations. Targets are used round-robin,
// and the request schedule is deterministic for a given -seed, so two runs
// against equivalent servers offer identical load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type report struct {
	Targets     int     `json:"targets"`
	OfferedRPS  float64 `json:"offered_rps"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Throttled   int     `json:"throttled"`
	Dropped     int     `json:"dropped"`
	Failed      int     `json:"failed"`
	AchievedRPS float64 `json:"achieved_rps"`
	LatencyMS   latency `json:"latency_ms"`
}

type latency struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("speedup-load: ")
	targets := flag.String("targets", "http://127.0.0.1:8080", "comma-separated speedupd base URLs, used round-robin")
	rate := flag.Float64("rate", 50, "open-loop arrival rate, requests/second")
	duration := flag.Duration("duration", 10*time.Second, "measurement length")
	benches := flag.String("benches", "blackscholes_parsec_small,swaptions_parsec_small", "comma-separated benchmark names")
	threads := flag.String("threads", "1,2,4", "comma-separated thread counts")
	hot := flag.Float64("hot", 1.0, "fraction of requests drawn from the pre-warmed working set")
	warmup := flag.Bool("warmup", true, "issue each working-set query once, uncounted, before measuring")
	seed := flag.Int64("seed", 1, "request-schedule seed")
	maxInflight := flag.Int("max-inflight", 512, "client-side cap on concurrent requests; arrivals past it are dropped and counted")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %v", flag.Args())
	}
	if *rate <= 0 || *duration <= 0 {
		log.Fatal("-rate and -duration must be positive")
	}
	if *hot < 0 || *hot > 1 {
		log.Fatal("-hot must be in [0,1]")
	}

	urls := strings.Split(*targets, ",")
	benchList := strings.Split(*benches, ",")
	var threadList []int
	for _, t := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(t))
		if err != nil || n < 1 {
			log.Fatalf("bad -threads entry %q", t)
		}
		threadList = append(threadList, n)
	}
	working := make([]string, 0, len(benchList)*len(threadList))
	for _, b := range benchList {
		for _, n := range threadList {
			working = append(working, fmt.Sprintf("/v1/stack?bench=%s&threads=%d", strings.TrimSpace(b), n))
		}
	}

	client := &http.Client{Timeout: *timeout}
	if *warmup {
		for _, u := range urls {
			for _, q := range working {
				if code, err := get(client, u+q); err != nil || code != http.StatusOK {
					log.Fatalf("warmup %s%s: status %d err %v", u, q, code, err)
				}
			}
		}
	}

	// Pre-generate the full deterministic schedule so the arrival loop does
	// nothing but pace and dispatch.
	rng := rand.New(rand.NewSource(*seed))
	n := int(*rate * duration.Seconds())
	if n < 1 {
		n = 1
	}
	paths := make([]string, n)
	for i := range paths {
		if rng.Float64() < *hot {
			paths[i] = working[rng.Intn(len(working))]
		} else {
			// A cold query is an unwarmed core-count variant of a working-set
			// cell: a distinct cache identity, so it costs a simulation on
			// first touch.
			paths[i] = working[rng.Intn(len(working))] + "&cores=" + strconv.Itoa(2+rng.Intn(63))
		}
	}

	interval := time.Duration(float64(time.Second) / *rate)
	type outcome struct {
		latency time.Duration
		status  int
		failed  bool
		dropped bool
	}
	outcomes := make([]outcome, n)
	// Past the in-flight cap, an open-loop arrival is dropped (client-side
	// shed) rather than queued: the generator keeps offering at the target
	// rate without hoarding sockets, and a saturated server still shows its
	// true capacity in achieved_rps.
	sem := make(chan struct{}, *maxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			outcomes[i] = outcome{dropped: true}
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			code, err := get(client, urls[i%len(urls)]+paths[i])
			outcomes[i] = outcome{latency: time.Since(t0), status: code, failed: err != nil}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		Targets:     len(urls),
		OfferedRPS:  *rate,
		DurationSec: elapsed.Seconds(),
		Requests:    n,
	}
	var okLatencies []time.Duration
	for _, o := range outcomes {
		switch {
		case o.dropped:
			rep.Dropped++
		case o.status == http.StatusOK:
			rep.OK++
			okLatencies = append(okLatencies, o.latency)
		case o.status == http.StatusTooManyRequests:
			rep.Throttled++
		default:
			rep.Failed++
		}
	}
	rep.AchievedRPS = float64(rep.OK) / elapsed.Seconds()
	if len(okLatencies) > 0 {
		sort.Slice(okLatencies, func(i, j int) bool { return okLatencies[i] < okLatencies[j] })
		q := func(p float64) float64 {
			i := int(p * float64(len(okLatencies)-1))
			return float64(okLatencies[i]) / float64(time.Millisecond)
		}
		rep.LatencyMS = latency{P50: q(0.50), P90: q(0.90), P99: q(0.99),
			Max: float64(okLatencies[len(okLatencies)-1]) / float64(time.Millisecond)}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return
	}
	fmt.Printf("targets %d  offered %.1f req/s  duration %.1fs\n", rep.Targets, rep.OfferedRPS, rep.DurationSec)
	fmt.Printf("requests %d  ok %d  throttled(429) %d  dropped %d  failed %d\n",
		rep.Requests, rep.OK, rep.Throttled, rep.Dropped, rep.Failed)
	fmt.Printf("achieved %.1f ok/s\n", rep.AchievedRPS)
	fmt.Printf("latency ms  p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		rep.LatencyMS.P50, rep.LatencyMS.P90, rep.LatencyMS.P99, rep.LatencyMS.Max)
}

// get performs one GET, drains the body (connection reuse), and returns
// the status code.
func get(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
