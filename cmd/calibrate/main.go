// Command calibrate runs the benchmark analogues at 16 threads and prints
// measured speedups, estimation errors, and dominant speedup-stack
// components next to the paper's Figure 6 targets. It is the tuning loop
// used while matching the workload specs to the published behaviour.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

func main() {
	threads := flag.Int("threads", 16, "thread count (= cores)")
	only := flag.String("only", "", "run a single benchmark (name or name_suite)")
	verbose := flag.Bool("v", false, "print the full component table per benchmark")
	flag.Parse()

	runner := exp.NewRunner(sim.Default())
	benches := workload.All()
	if *only != "" {
		b, ok := workload.ByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *only)
			os.Exit(1)
		}
		benches = []workload.Benchmark{b}
	}

	fmt.Printf("%-28s %7s %7s %7s %7s  %-34s %s\n",
		"benchmark", "paper", "actual", "est", "err%", "components (measured)", "target")
	for _, b := range benches {
		t0 := time.Now()
		out, err := runner.Run(b, *threads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", b.FullName(), err)
			continue
		}
		comps := stack.TopComponents(out.Stack, 3)
		fmt.Printf("%-28s %7.2f %7.2f %7.2f %+6.1f  %-34s %v  (%.2fs)\n",
			b.FullName(), b.PaperSpeedup16, out.Actual, out.Estimated,
			100*out.Error(), fmt.Sprint(comps), b.PaperComponents,
			time.Since(t0).Seconds())
		if *verbose {
			fmt.Print(stack.Table([]stack.Bar{{Label: b.FullName(), Stack: out.Stack}}))
			o := out.Result.Oracle
			tp := float64(out.Tp)
			fmt.Printf("  oracle: posLLC=%.2f negLLC=%.2f mem=%.2f spin=%.2f yield=%.2f imbal=%.2f coher=%.2f ovh=%.2f\n",
				o.PosLLC/tp, o.NegLLC/tp, o.NegMem/tp, o.Spin/tp, o.Yield/tp,
				o.Imbalance/tp, o.Coherence/tp, o.ParallelOverhead/tp)
		}
	}
}
