package speedupstack

import (
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Trace recording and replay. A recorded trace is the compact versioned
// binary op-trace format of internal/trace: every operation every thread
// issued during one run of a workload on the default machine, plus the run's
// queue/barrier registrations and sync-library overrides. Replaying a trace
// reproduces the original run's sim.Result byte-identically, at exactly the
// thread count it was recorded with, and is memoized under the trace's
// content hash (the label does not participate) across MeasureSpec, the
// speedupd service and the fleet.

// RecordTrace runs the named benchmark analogue at the given thread count on
// the default machine and writes the binary op trace of that run to w. The
// written bytes are what POST /v1/traces/analyze, LoadTrace and the
// speedup-stack -trace flag accept.
func RecordTrace(w io.Writer, benchmark string, threads int) error {
	b, ok := workload.ByName(benchmark)
	if !ok {
		return workload.UnknownBenchmarkError(benchmark)
	}
	return RecordTraceWorkload(w, b.Spec, threads)
}

// RecordTraceWorkload is RecordTrace for a custom workload.
func RecordTraceWorkload(w io.Writer, wl Workload, threads int) error {
	f, _, err := workload.Record(sim.Default(), wl, threads)
	if err != nil {
		return err
	}
	return f.Encode(w)
}

// LoadTrace reads a recorded binary op trace and returns the Workload that
// replays it. The workload measures like any other (MeasureSpec,
// MeasureSpecAll, the service), but only at the trace's recorded thread
// count — TraceThreads reports it.
func LoadTrace(r io.Reader) (Workload, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Workload{}, fmt.Errorf("reading trace: %v", err)
	}
	d, err := trace.Decode(data)
	if err != nil {
		return Workload{}, err
	}
	return workload.TraceSpec(d), nil
}

// MeasureTrace loads a recorded trace and measures its replay at the
// recorded thread count — the one-call form of LoadTrace + MeasureSpec.
func MeasureTrace(r io.Reader) (Result, error) {
	w, err := LoadTrace(r)
	if err != nil {
		return Result{}, err
	}
	return MeasureSpec(w, w.TraceThreads())
}
