package speedupstack

import (
	"context"
	"io"
	"runtime"

	"repro/internal/exp"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/stack"
)

// Advice is the scaling advisor's answer for one workload: the measured
// thread sweep, deterministic least-squares fits of Amdahl's law (serial
// fraction σ) and the Universal Scalability Law (σ, κ), the
// diminishing-returns thread count N* = sqrt((1−σ)/κ), a classification of
// the sweep (linear / saturated / negative), a cross-check of the fitted
// serial fraction against the speedup stack's serialization components, and
// ranked workload-field-level recommendations.
type Advice = scaling.Advice

// AdvicePoint is one measured sweep sample.
type AdvicePoint = scaling.Point

// AdviceFit is one fitted scaling model (Amdahl or USL).
type AdviceFit = scaling.Fit

// AdviceRecommendation is one ranked, workload-field-level suggestion.
type AdviceRecommendation = scaling.Recommendation

// AdviceClass is the advisor's sweep classification.
type AdviceClass = scaling.Class

// The advisor's sweep classes.
const (
	AdviceLinear    = scaling.ClassLinear
	AdviceSaturated = scaling.ClassSaturated
	AdviceNegative  = scaling.ClassNegative
)

// Advisor sweep bounds: the USL fit needs a sweep top of at least
// MinAdviseThreads, and the service-aligned ceiling is MaxAdviseThreads.
const (
	MinAdviseThreads = exp.MinAdviseThreads
	MaxAdviseThreads = exp.MaxAdviseThreads
)

// Advise sweeps the named benchmark analogue from 1 to maxThreads (powers
// of two plus the top, threads = cores at every point) on the default
// machine, fits the scaling models, and returns the full advisor answer.
func Advise(benchmark string, maxThreads int) (Advice, error) {
	return AdviseContext(context.Background(), benchmark, maxThreads)
}

// AdviseContext is Advise with cancellation.
func AdviseContext(ctx context.Context, benchmark string, maxThreads int) (Advice, error) {
	return advise(ctx, exp.Cell{Bench: benchmark}, maxThreads)
}

// AdviseSpec is Advise for a custom workload: the same sweep, fits and
// recommendations for a spec that need not be registered, sharing — like
// every other entry point — the fingerprint-keyed simulation identity.
func AdviseSpec(w Workload, maxThreads int) (Advice, error) {
	return AdviseSpecContext(context.Background(), w, maxThreads)
}

// AdviseSpecContext is AdviseSpec with cancellation.
func AdviseSpecContext(ctx context.Context, w Workload, maxThreads int) (Advice, error) {
	return advise(ctx, exp.Cell{Spec: &w}, maxThreads)
}

// advise runs the advisor sweep on a fresh all-CPU default-machine engine —
// the shared back end of Advise and AdviseSpec.
func advise(ctx context.Context, cell exp.Cell, maxThreads int) (Advice, error) {
	e := exp.NewEngine(sim.Default(), exp.WithWorkers(runtime.NumCPU()))
	return e.Advise(ctx, exp.Request{Cell: cell}, maxThreads)
}

// EncodeAdvice writes an Advice to w in the requested format: FormatText is
// the human-readable report, FormatJSON the Advice object, FormatCSV one
// record per sweep point with the fitted values alongside, and FormatSVG a
// standalone fit-curve chart overlaying the measured sweep with both fitted
// models.
func EncodeAdvice(w io.Writer, f Format, a Advice) error {
	return scaling.Encode(w, f, a)
}

// RenderAdviceSVG draws the advisor's fit-curve chart as a standalone SVG.
func RenderAdviceSVG(a Advice) string {
	return stack.CurveSVG(scaling.Chart(a))
}
