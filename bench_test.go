// Benchmark harness: one target per table/figure of the paper's evaluation.
// Each benchmark regenerates its artifact end to end (simulations included)
// and reports domain-specific metrics alongside the usual ns/op. Run with
//
//	go test -bench=. -benchmem -benchtime=1x
//
// to regenerate everything exactly once; cmd/experiments prints the same
// artifacts in human-readable form.
package speedupstack

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// newRunner builds a fresh runner per benchmark iteration so cached
// sequential times do not leak between b.N iterations (the first iteration
// pays for everything; -benchtime=1x is the intended mode).
func newRunner() *exp.Runner { return exp.NewRunner(sim.Default()) }

// BenchmarkFig1SpeedupCurves regenerates Figure 1: speedup as a function of
// the thread count for blackscholes, facesim and cholesky.
func BenchmarkFig1SpeedupCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := exp.Figure1(newRunner())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatCurves(curves))
			last := curves[0].Points[len(curves[0].Points)-1]
			b.ReportMetric(last.Speedup, "blackscholes-x16-speedup")
		}
	}
}

// BenchmarkValidationErrorTable regenerates the Section 6 accuracy table:
// mean absolute estimation error at 2, 4, 8 and 16 threads (paper: 3.0,
// 3.4, 2.8, 5.1 %).
func BenchmarkValidationErrorTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Validation(newRunner(), runtime.NumCPU())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatValidation(rows))
			for _, r := range rows {
				b.ReportMetric(r.MeanAbsErrPct, fmt.Sprintf("mean-abs-err-pct-%dT", r.Threads))
			}
		}
	}
}

// BenchmarkFig4ActualVsEstimated regenerates Figure 4: actual versus
// estimated speedup for all 28 benchmarks at 2-16 threads.
func BenchmarkFig4ActualVsEstimated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure4(newRunner(), runtime.NumCPU())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(rows)), "benchmark-points")
		}
	}
}

// BenchmarkFig5SpeedupStacks regenerates Figure 5: the speedup stacks of
// blackscholes, facesim and cholesky for 2-16 threads.
func BenchmarkFig5SpeedupStacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bars, err := exp.Figure5(newRunner())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", stack.Table(bars))
		}
	}
}

// BenchmarkFig6ClassificationTree regenerates Figure 6: the benchmark
// classification tree at 16 threads.
func BenchmarkFig6ClassificationTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure6(newRunner(), runtime.NumCPU())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			good := 0
			yieldFirst := 0
			for _, r := range rows {
				if r.Class == stack.ClassGood {
					good++
				}
				if len(r.Components) > 0 && r.Components[0] == stack.CompYielding {
					yieldFirst++
				}
			}
			b.ReportMetric(float64(good), "good-scaling-benchmarks")
			b.ReportMetric(float64(yieldFirst), "yield-dominant-benchmarks")
		}
	}
}

// BenchmarkFig7FerretCores regenerates Figure 7: ferret speedup versus core
// count with threads=cores and with 16 software threads.
func BenchmarkFig7FerretCores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure7(newRunner())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatFigure7(rows))
			b.ReportMetric(rows[3].Threads16, "ferret-16t-16c-speedup")
		}
	}
}

// BenchmarkFig8LLCInterference regenerates Figure 8: negative/positive/net
// LLC interference for the positively-sharing benchmarks at 16 cores.
func BenchmarkFig8LLCInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure8(newRunner())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatInterference(rows))
		}
	}
}

// BenchmarkFig9LLCSizeSweep regenerates Figure 9: cholesky interference
// components for 2/4/8/16 MB LLCs.
func BenchmarkFig9LLCSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure9(newRunner())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatInterference(rows))
			b.ReportMetric(rows[0].Net, "net-interference-2MB")
			b.ReportMetric(rows[3].Net, "net-interference-16MB")
		}
	}
}

// BenchmarkHardwareCost regenerates the Section 4.7 hardware budget.
func BenchmarkHardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hw := HardwareCost()
		if i == 0 {
			b.ReportMetric(float64(hw.PerCoreBytes()), "bytes-per-core")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed on one
// 16-thread facesim run (an engine microbenchmark, not a paper artifact).
func BenchmarkSimulatorThroughput(b *testing.B) {
	r := newRunner()
	for i := 0; i < b.N; i++ {
		out, err := r.Run(mustBench(b, "facesim_parsec_small"), 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(out.Result.TotalInstrs), "instructions")
		}
	}
}

// mustBench fetches a registered benchmark or fails the test.
func mustBench(b *testing.B, name string) workload.Benchmark {
	b.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	return w
}
